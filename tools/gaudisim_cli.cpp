// gaudisim command-line tool: run reproduction experiments and custom
// profiles without writing C++.  All logic lives in core/cli.{hpp,cpp}.
#include <iostream>
#include <string>
#include <vector>

#include "core/cli.hpp"

int main(int argc, char** argv) {
  return gaudi::core::run_cli(std::vector<std::string>(argv, argv + argc),
                              std::cout);
}

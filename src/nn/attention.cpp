#include "nn/attention.hpp"

#include <cmath>

namespace gaudi::nn {

using graph::Graph;
using graph::ValueId;

const char* attention_kind_name(AttentionKind k) {
  switch (k) {
    case AttentionKind::kSoftmax: return "softmax";
    case AttentionKind::kLinear: return "linear";
    case AttentionKind::kPerformer: return "performer";
    case AttentionKind::kLinformer: return "linformer";
    case AttentionKind::kLocal: return "local";
  }
  return "?";
}

namespace {

/// phi(x) = act(x) + 1, the positivity-preserving feature map family of the
/// Linear Transformer; GLU routes through a gated projection first.
ValueId feature_map(Graph& g, ParamStore& params, Activation act, ValueId x,
                    ValueId glu_proj, const std::string& label) {
  (void)params;
  ValueId f;
  if (act == Activation::kGlu) {
    GAUDI_CHECK(glu_proj != graph::kInvalidValue,
                "GLU feature map requires its gate projection");
    const ValueId gated = g.matmul(x, glu_proj, false, false, label + ".glu_proj");
    f = apply_activation(g, act, gated, label);
  } else {
    f = apply_activation(g, act, x, label);
  }
  return g.add_scalar(f, 1.0f, label + ".plus1");
}

ValueId softmax_attention(Graph& g, ValueId q, ValueId k, ValueId v,
                          graph::ValueId mask, const std::string& label) {
  const tensor::Shape& qs = g.value(q).shape;
  const auto head_dim = static_cast<float>(qs[qs.rank() - 1]);
  // Scale Q before the product (N*Dh elements) rather than the N*N score
  // matrix — the standard deployment of 1/sqrt(D).
  const ValueId q_scaled = g.mul_scalar(q, 1.0f / std::sqrt(head_dim),
                                        label + ".scale");
  ValueId scores = g.matmul(q_scaled, k, false, true, label + ".qk_t");
  if (mask != graph::kInvalidValue) {
    scores = g.add_op(graph::OpKind::kAddMask2D, {scores, mask}, {},
                      label + ".mask")[0];
  }
  const ValueId probs = g.softmax(scores, label + ".softmax");
  return g.matmul(probs, v, false, false, label + ".av");
}

ValueId linear_attention(Graph& g, ParamStore& params, const AttentionConfig& cfg,
                         ValueId q, ValueId k, ValueId v,
                         const std::string& label) {
  const tensor::Shape& qs = g.value(q).shape;
  const std::int64_t head_dim = qs[qs.rank() - 1];
  const tensor::Shape& vs = g.value(v).shape;
  const std::int64_t d_v = vs[vs.rank() - 1];

  ValueId glu_proj = graph::kInvalidValue;
  if (cfg.feature_map == Activation::kGlu) {
    glu_proj = params.create(g, tensor::Shape{{head_dim, 2 * head_dim}},
                             label + ".glu_gate", Init::kNormal, 0.08f);
  }
  const ValueId qp = feature_map(g, params, cfg.feature_map, q, glu_proj,
                                 label + ".phi_q");
  const ValueId kp = feature_map(g, params, cfg.feature_map, k, glu_proj,
                                 label + ".phi_k");

  // Normalizer: phi(Q) (phi(K)^T 1).
  const tensor::Shape& ks = g.value(kp).shape;
  const ValueId ones =
      g.fill(tensor::Shape{{ks[0], ks[1], ks[2], 1}}, 1.0f, label + ".ones");
  const ValueId norm_k = g.matmul(kp, ones, true, false, label + ".ktones");
  const ValueId att_norm = g.matmul(qp, norm_k, false, false, label + ".qnorm");

  // Attention: phi(Q) (phi(K)^T V) — the associativity rewrite that keeps
  // almost all of the computation on the MME.
  const ValueId kv = g.matmul(kp, v, true, false, label + ".ktv");
  const ValueId att_raw = g.matmul(qp, kv, false, false, label + ".qkv");

  const ValueId norm_b = g.broadcast_last(att_norm, d_v, label + ".norm_bcast");
  return g.div(att_raw, norm_b, label + ".normalize");
}

ValueId performer_attention(Graph& g, ParamStore& params,
                            const AttentionConfig& cfg, ValueId q, ValueId k,
                            ValueId v, const std::string& label) {
  const tensor::Shape& qs = g.value(q).shape;
  const std::int64_t head_dim = qs[qs.rank() - 1];
  const std::int64_t m = cfg.performer_features;
  GAUDI_CHECK(m > 0, "performer_features must be positive");

  // Random (orthogonal-ish) feature matrix: a fixed buffer, not trained.
  const ValueId features =
      params.create(g, tensor::Shape{{head_dim, m}}, label + ".features",
                    Init::kNormal, 1.0f / std::sqrt(static_cast<float>(m)));
  params.mark_buffer(features);

  const float pre_scale =
      1.0f / std::pow(static_cast<float>(head_dim), 0.25f);
  constexpr float kOffset = -0.5f;  // FAVOR stabilizer

  // FAVOR, following the paper's Listing 1 op-for-op.  The q' and k'
  // branches are data-independent; whether they overlap MME with TPC is
  // purely the scheduler's call — the crux of Fig 6.
  const ValueId q_scaled = g.mul_scalar(q, pre_scale, label + ".pre_scale_q");
  const ValueId q_feat = g.matmul(q_scaled, features, false, false,
                                  label + ".q_features");
  const ValueId q_prime =
      g.exp(g.add_scalar(q_feat, kOffset, label + ".q_offset"));

  const ValueId k_scaled = g.mul_scalar(k, pre_scale, label + ".pre_scale_k");
  const ValueId k_feat = g.matmul(k_scaled, features, false, false,
                                  label + ".k_features");
  const ValueId k_prime =
      g.exp(g.add_scalar(k_feat, kOffset, label + ".k_offset"));

  const ValueId ones = g.ones_like(v, label + ".ones_like");
  const ValueId kt_ones = g.matmul(k_prime, ones, true, false, label + ".kt_ones");
  const ValueId att_norm = g.matmul(q_prime, kt_ones, false, false,
                                    label + ".att_norm");
  const ValueId kt_v = g.matmul(k_prime, v, true, false, label + ".kt_v");
  const ValueId att_raw = g.matmul(q_prime, kt_v, false, false, label + ".att_raw");
  return g.div(att_raw, att_norm, label + ".normalize");
}

/// Linformer (Wang et al.): project keys and values along the *sequence*
/// dimension to a fixed length k, making attention O(N k).  We carry the
/// projections transposed — ekt = (E K)^T, vtf = (F V)^T — so every product
/// is a plain MME descriptor (no explicit transpose kernels).
ValueId linformer_attention(Graph& g, ParamStore& params,
                            const AttentionConfig& cfg, ValueId q, ValueId k,
                            ValueId v, const std::string& label) {
  // By value: adding nodes reallocates the graph's value table.
  const tensor::Shape ks = g.value(k).shape;
  const std::int64_t seq = ks[ks.rank() - 2];
  const auto head_dim = static_cast<float>(ks[ks.rank() - 1]);
  const std::int64_t proj_k = cfg.linformer_k;
  GAUDI_CHECK(proj_k > 0, "linformer_k must be positive");

  // Shared projections E^T, F^T in [N, k] layout.
  const ValueId e_proj =
      params.create(g, tensor::Shape{{seq, proj_k}}, label + ".E",
                    Init::kNormal, 1.0f / std::sqrt(static_cast<float>(proj_k)));
  const ValueId f_proj =
      params.create(g, tensor::Shape{{seq, proj_k}}, label + ".F",
                    Init::kNormal, 1.0f / std::sqrt(static_cast<float>(proj_k)));

  const ValueId q_scaled =
      g.mul_scalar(q, 1.0f / std::sqrt(head_dim), label + ".scale");
  // (E K)^T = K^T E^T : [B,H,D,k]
  const ValueId ekt = g.matmul(k, e_proj, true, false, label + ".ek_t");
  const ValueId scores = g.matmul(q_scaled, ekt, false, false, label + ".scores");
  const ValueId probs = g.softmax(scores, label + ".softmax");
  // (F V)^T : [B,H,D,k];  out = probs @ (F V) = probs @ vtf^T.
  const ValueId vtf = g.matmul(v, f_proj, true, false, label + ".fv_t");
  return g.matmul(probs, vtf, false, true, label + ".av");
}

/// Block-local sparse attention: the sequence splits into windows of width
/// w and each query attends within its own window — the "local" component
/// of Child et al.'s sparse patterns, O(N w).  Pure reshapes re-batch the
/// windows, so the blocks become ordinary batched MME products.
ValueId local_attention(Graph& g, ValueId q, ValueId k, ValueId v,
                        std::int64_t window, const std::string& label) {
  // By value: adding nodes reallocates the graph's value table.
  const tensor::Shape qs = g.value(q).shape;
  GAUDI_CHECK(qs.rank() == 4, "local attention expects [B, H, N, D]");
  const std::int64_t bh = qs[0] * qs[1];
  const std::int64_t seq = qs[2];
  const std::int64_t d = qs[3];
  GAUDI_CHECK(window > 0 && seq % window == 0,
              "local window must divide the sequence length");
  const std::int64_t blocks = seq / window;
  const tensor::Shape blocked{{bh * blocks, window, d}};

  const ValueId qb = g.reshape(q, blocked, label + ".q_blocks");
  const ValueId kb = g.reshape(k, blocked, label + ".k_blocks");
  const ValueId vb = g.reshape(v, blocked, label + ".v_blocks");

  const ValueId q_scaled = g.mul_scalar(
      qb, 1.0f / std::sqrt(static_cast<float>(d)), label + ".scale");
  const ValueId scores = g.matmul(q_scaled, kb, false, true, label + ".qk_t");
  const ValueId probs = g.softmax(scores, label + ".softmax");
  const ValueId ctx = g.matmul(probs, vb, false, false, label + ".av");
  return g.reshape(ctx, qs, label + ".unblock");
}

}  // namespace

ValueId build_attention(Graph& g, ParamStore& params, const AttentionConfig& cfg,
                        ValueId q, ValueId k, ValueId v, const std::string& label) {
  switch (cfg.kind) {
    case AttentionKind::kSoftmax:
      return softmax_attention(g, q, k, v, cfg.additive_mask, label);
    case AttentionKind::kLinear:
      return linear_attention(g, params, cfg, q, k, v, label);
    case AttentionKind::kPerformer:
      return performer_attention(g, params, cfg, q, k, v, label);
    case AttentionKind::kLinformer:
      return linformer_attention(g, params, cfg, q, k, v, label);
    case AttentionKind::kLocal:
      return local_attention(g, q, k, v, cfg.local_window, label);
  }
  throw sim::InternalError("unhandled attention kind");
}

MultiHeadAttention::MultiHeadAttention(Graph& g, ParamStore& params,
                                       std::int64_t d_model, std::int64_t heads,
                                       std::int64_t head_dim, AttentionConfig attn,
                                       std::string name)
    : d_model_(d_model),
      heads_(heads),
      head_dim_(head_dim),
      attn_(attn),
      name_(std::move(name)),
      q_proj_(g, params, d_model, heads * head_dim, name_ + ".q_proj"),
      k_proj_(g, params, d_model, heads * head_dim, name_ + ".k_proj"),
      v_proj_(g, params, d_model, heads * head_dim, name_ + ".v_proj"),
      out_proj_(g, params, heads * head_dim, d_model, name_ + ".out_proj") {}

ValueId MultiHeadAttention::operator()(Graph& g, ParamStore& params, ValueId x,
                                       std::int64_t batch,
                                       std::int64_t seq_len) const {
  GAUDI_CHECK(g.value(x).shape.rank() == 2 &&
                  g.value(x).shape[0] == batch * seq_len &&
                  g.value(x).shape[1] == d_model_,
              "MultiHeadAttention expects flattened [B*N, D] input");

  auto split_heads = [&](ValueId t, const std::string& what) {
    const ValueId r = g.reshape(
        t, tensor::Shape{{batch, seq_len, heads_, head_dim_}}, name_ + "." + what +
            ".split");
    return g.swap_axes12(r, name_ + "." + what + ".to_heads");
  };

  const ValueId q = split_heads(q_proj_(g, x), "q");
  const ValueId k = split_heads(k_proj_(g, x), "k");
  const ValueId v = split_heads(v_proj_(g, x), "v");

  const ValueId ctx = build_attention(g, params, attn_, q, k, v, name_ + ".attn");

  const ValueId merged = g.swap_axes12(ctx, name_ + ".from_heads");
  const ValueId flat = g.reshape(
      merged, tensor::Shape{{batch * seq_len, heads_ * head_dim_}},
      name_ + ".merge");
  return out_proj_(g, flat);
}

}  // namespace gaudi::nn

#include "nn/optimizer.hpp"

namespace gaudi::nn {

using graph::Graph;
using graph::OpAttrs;
using graph::OpKind;
using graph::ValueId;

const char* optimizer_kind_name(OptimizerKind k) {
  switch (k) {
    case OptimizerKind::kSgd: return "sgd";
    case OptimizerKind::kSgdMomentum: return "sgd_momentum";
    case OptimizerKind::kAdam: return "adam";
  }
  return "?";
}

OptimizerState append_optimizer(Graph& g, const LanguageModel& model,
                                const OptimizerConfig& cfg) {
  GAUDI_CHECK(model.config.training,
              "optimizer requires a training graph (gradients present)");
  const std::vector<ValueId> trainable = model.params.trainable();
  GAUDI_CHECK(trainable.size() == model.grad_values.size(),
              "gradient list does not match trainable parameters");

  OptimizerState state;
  state.config = cfg;
  state.slots.reserve(trainable.size());

  for (std::size_t i = 0; i < trainable.size(); ++i) {
    OptimizerSlot slot;
    slot.param = trainable[i];
    slot.grad = model.grad_values[i];
    // By value: adding state inputs below reallocates the graph's value
    // table, so references into it dangle.
    const tensor::Shape shape = g.value(slot.param).shape;
    const std::string pname = g.value(slot.param).name;

    OpAttrs attrs;
    attrs.lr = cfg.lr;
    switch (cfg.kind) {
      case OptimizerKind::kSgd: {
        const auto outs = g.add_op(OpKind::kSgdUpdate, {slot.param, slot.grad},
                                   attrs, pname + ".sgd");
        slot.new_param = outs[0];
        break;
      }
      case OptimizerKind::kSgdMomentum: {
        attrs.beta1 = cfg.momentum;
        slot.vel_in = g.input(shape, tensor::DType::F32, pname + ".velocity");
        const auto outs =
            g.add_op(OpKind::kSgdUpdate, {slot.param, slot.grad, slot.vel_in},
                     attrs, pname + ".sgd_m");
        slot.new_param = outs[0];
        slot.vel_out = outs[1];
        g.mark_output(slot.vel_out);
        break;
      }
      case OptimizerKind::kAdam: {
        attrs.beta1 = cfg.beta1;
        attrs.beta2 = cfg.beta2;
        attrs.eps = cfg.eps;
        attrs.step = cfg.step;
        slot.m_in = g.input(shape, tensor::DType::F32, pname + ".adam_m");
        slot.v_in = g.input(shape, tensor::DType::F32, pname + ".adam_v");
        const auto outs = g.add_op(
            OpKind::kAdamUpdate, {slot.param, slot.grad, slot.m_in, slot.v_in},
            attrs, pname + ".adam");
        slot.new_param = outs[0];
        slot.m_out = outs[1];
        slot.v_out = outs[2];
        g.mark_output(slot.m_out);
        g.mark_output(slot.v_out);
        break;
      }
    }
    g.mark_output(slot.new_param);
    state.slots.push_back(slot);
  }
  return state;
}

std::unordered_map<ValueId, tensor::Tensor> OptimizerState::initial_state(
    const graph::Graph& g) const {
  std::unordered_map<ValueId, tensor::Tensor> feeds;
  for (const OptimizerSlot& slot : slots) {
    for (const ValueId v : {slot.vel_in, slot.m_in, slot.v_in}) {
      if (v != graph::kInvalidValue) {
        feeds.emplace(v, tensor::Tensor::zeros(g.value(v).shape));
      }
    }
  }
  return feeds;
}

}  // namespace gaudi::nn

#include "nn/optimizer.hpp"

namespace gaudi::nn {

using graph::Graph;
using graph::OpAttrs;
using graph::OpKind;
using graph::ValueId;

const char* optimizer_kind_name(OptimizerKind k) {
  switch (k) {
    case OptimizerKind::kSgd: return "sgd";
    case OptimizerKind::kSgdMomentum: return "sgd_momentum";
    case OptimizerKind::kAdam: return "adam";
  }
  return "?";
}

namespace {

/// Emits the update op for one slot whose `param`/`grad` are already set,
/// creating any state inputs; marks new param and state as graph outputs.
void append_update_op(Graph& g, OptimizerSlot& slot, const OptimizerConfig& cfg,
                      const tensor::Shape& shape, const std::string& pname) {
  OpAttrs attrs;
  attrs.lr = cfg.lr;
  switch (cfg.kind) {
    case OptimizerKind::kSgd: {
      const auto outs = g.add_op(OpKind::kSgdUpdate, {slot.param, slot.grad},
                                 attrs, pname + ".sgd");
      slot.new_param = outs[0];
      break;
    }
    case OptimizerKind::kSgdMomentum: {
      attrs.beta1 = cfg.momentum;
      slot.vel_in = g.input(shape, tensor::DType::F32, pname + ".velocity");
      const auto outs =
          g.add_op(OpKind::kSgdUpdate, {slot.param, slot.grad, slot.vel_in},
                   attrs, pname + ".sgd_m");
      slot.new_param = outs[0];
      slot.vel_out = outs[1];
      g.mark_output(slot.vel_out);
      break;
    }
    case OptimizerKind::kAdam: {
      attrs.beta1 = cfg.beta1;
      attrs.beta2 = cfg.beta2;
      attrs.eps = cfg.eps;
      attrs.step = cfg.step;
      slot.m_in = g.input(shape, tensor::DType::F32, pname + ".adam_m");
      slot.v_in = g.input(shape, tensor::DType::F32, pname + ".adam_v");
      const auto outs = g.add_op(
          OpKind::kAdamUpdate, {slot.param, slot.grad, slot.m_in, slot.v_in},
          attrs, pname + ".adam");
      slot.new_param = outs[0];
      slot.m_out = outs[1];
      slot.v_out = outs[2];
      g.mark_output(slot.m_out);
      g.mark_output(slot.v_out);
      break;
    }
  }
  g.mark_output(slot.new_param);
}

}  // namespace

OptimizerState append_optimizer(Graph& g, const LanguageModel& model,
                                const OptimizerConfig& cfg) {
  GAUDI_CHECK(model.config.training,
              "optimizer requires a training graph (gradients present)");
  const std::vector<ValueId> trainable = model.params.trainable();
  GAUDI_CHECK(trainable.size() == model.grad_values.size(),
              "gradient list does not match trainable parameters");

  OptimizerState state;
  state.config = cfg;
  state.slots.reserve(trainable.size());

  for (std::size_t i = 0; i < trainable.size(); ++i) {
    OptimizerSlot slot;
    slot.param = trainable[i];
    slot.grad = model.grad_values[i];
    // By value: adding state inputs below reallocates the graph's value
    // table, so references into it dangle.
    const tensor::Shape shape = g.value(slot.param).shape;
    const std::string pname = g.value(slot.param).name;
    append_update_op(g, slot, cfg, shape, pname);
    state.slots.push_back(slot);
  }
  return state;
}

OptimizerState build_update_graph(Graph& g, const graph::Graph& model_graph,
                                  const LanguageModel& model,
                                  const OptimizerConfig& cfg) {
  GAUDI_CHECK(model.config.training,
              "optimizer requires a training graph (gradients present)");
  const std::vector<ValueId> trainable = model.params.trainable();
  GAUDI_CHECK(trainable.size() == model.grad_values.size(),
              "gradient list does not match trainable parameters");

  OptimizerState state;
  state.config = cfg;
  state.slots.reserve(trainable.size());

  for (const ValueId p : trainable) {
    OptimizerSlot slot;
    const tensor::Shape shape = model_graph.value(p).shape;
    const std::string pname = model_graph.value(p).name;
    slot.param = g.input(shape, tensor::DType::F32, pname);
    slot.grad = g.input(shape, tensor::DType::F32, pname + ".grad");
    append_update_op(g, slot, cfg, shape, pname);
    state.slots.push_back(slot);
  }
  return state;
}

std::unordered_map<ValueId, tensor::Tensor> OptimizerState::initial_state(
    const graph::Graph& g) const {
  std::unordered_map<ValueId, tensor::Tensor> feeds;
  for (const OptimizerSlot& slot : slots) {
    for (const ValueId v : {slot.vel_in, slot.m_in, slot.v_in}) {
      if (v != graph::kInvalidValue) {
        feeds.emplace(v, tensor::Tensor::zeros(g.value(v).shape));
      }
    }
  }
  return feeds;
}

std::vector<OptimizerState::StateRef> OptimizerState::state_refs(
    const graph::Graph& g) const {
  std::vector<StateRef> refs;
  for (const OptimizerSlot& slot : slots) {
    for (const auto [in, out] : {std::pair{slot.vel_in, slot.vel_out},
                                 std::pair{slot.m_in, slot.m_out},
                                 std::pair{slot.v_in, slot.v_out}}) {
      if (in != graph::kInvalidValue) {
        refs.push_back(StateRef{g.value(in).name, in, out});
      }
    }
  }
  return refs;
}

}  // namespace gaudi::nn

#include "nn/transformer.hpp"

namespace gaudi::nn {

using graph::Graph;
using graph::ValueId;

TransformerLayer::TransformerLayer(Graph& g, ParamStore& params,
                                   const TransformerLayerConfig& cfg,
                                   std::string name)
    : cfg_(cfg),
      name_(std::move(name)),
      mha_(g, params, cfg.d_model, cfg.heads, cfg.head_dim, cfg.attention,
           name_ + ".mha"),
      ln1_(g, params, cfg.d_model, name_ + ".ln1") {
  if (cfg_.ffn_dim > 0) {
    // GLU halves its input, so the first FFN projection doubles when gated.
    const std::int64_t inner = cfg_.ffn_activation == Activation::kGlu
                                   ? 2 * cfg_.ffn_dim
                                   : cfg_.ffn_dim;
    ffn_in_.emplace(g, params, cfg_.d_model, inner, name_ + ".ffn_in");
    ffn_out_.emplace(g, params, cfg_.ffn_dim, cfg_.d_model, name_ + ".ffn_out");
    ln2_.emplace(g, params, cfg_.d_model, name_ + ".ln2");
  }
}

ValueId TransformerLayer::operator()(Graph& g, ParamStore& params, ValueId x,
                                     std::int64_t batch,
                                     std::int64_t seq_len) const {
  // Post-LN residual block, as in the original Transformer.
  ValueId attn_out = mha_(g, params, x, batch, seq_len);
  if (cfg_.dropout_p > 0.0f) {
    attn_out = g.dropout(attn_out, cfg_.dropout_p,
                         static_cast<std::uint64_t>(g.num_nodes()),
                         name_ + ".attn_dropout");
  }
  ValueId h = ln1_(g, g.add(x, attn_out, name_ + ".residual1"));

  if (!ffn_in_) {
    return h;
  }
  ValueId f = (*ffn_in_)(g, h);
  f = apply_activation(g, cfg_.ffn_activation, f, name_ + ".ffn");
  f = (*ffn_out_)(g, f);
  if (cfg_.dropout_p > 0.0f) {
    f = g.dropout(f, cfg_.dropout_p, static_cast<std::uint64_t>(g.num_nodes()),
                  name_ + ".ffn_dropout");
  }
  return (*ln2_)(g, g.add(h, f, name_ + ".residual2"));
}

}  // namespace gaudi::nn

// Attention mechanisms: softmax attention (Vaswani), linearized attention
// (Katharopoulos et al., the Linear Transformer), and Performer FAVOR
// (Choromanski et al.) — the three mechanisms the paper profiles in §3.3.
//
// All three lower to the same primitive ops the paper's PyTorch code would
// emit, so their engine placement matches Table 1: the attention matmuls hit
// the MME, while softmax / feature maps / exponentials / normalizing
// divisions hit the TPC.  The paper's performance story (softmax-on-TPC
// bottleneck; linearization shifting work to the MME; FAVOR's un-overlapped
// q'/k' branches) emerges from these graphs plus the scheduler policy.
#pragma once

#include <cstdint>
#include <string>

#include "graph/graph.hpp"
#include "nn/layers.hpp"
#include "nn/module.hpp"

namespace gaudi::nn {

enum class AttentionKind : std::uint8_t {
  kSoftmax,    ///< softmax(QK^T / sqrt(D)) V
  kLinear,     ///< phi(Q) (phi(K)^T V) with elementwise feature map
  kPerformer,  ///< FAVOR: random-feature softmax approximation
  kLinformer,  ///< low-rank: softmax(Q (E K)^T / sqrt(D)) (F V)  (Wang et al.)
  kLocal,      ///< block-local sparse attention (Child et al.'s local pattern)
};

[[nodiscard]] const char* attention_kind_name(AttentionKind k);

struct AttentionConfig {
  AttentionKind kind = AttentionKind::kSoftmax;
  /// Feature map for kLinear: phi(x) = act(x) + 1 (ELU is the Linear
  /// Transformer default; Fig 7 sweeps ReLU / LeakyReLU / GELU / GLU).
  Activation feature_map = Activation::kElu;
  /// Random-feature count for kPerformer (m in the FAVOR construction).
  std::int64_t performer_features = 256;
  /// Optional additive attention mask [N, N] (causal masking for decoder
  /// models); applied to the scaled scores before softmax.  Only meaningful
  /// for kSoftmax.
  graph::ValueId additive_mask = graph::kInvalidValue;
  /// Projected sequence length for kLinformer (k in the paper).
  std::int64_t linformer_k = 256;
  /// Window width for kLocal (must divide the sequence length).
  std::int64_t local_window = 256;
};

/// Builds attention over per-head tensors q, k, v of shape [B, H, N, Dh].
/// Returns the context tensor [B, H, N, Dh].
///
/// For the GLU feature map an extra per-head projection to 2m features is
/// required (GLU halves the width); `params` owns it.  For kPerformer the
/// random feature matrix is created as a non-trainable buffer.
[[nodiscard]] graph::ValueId build_attention(graph::Graph& g, ParamStore& params,
                                             const AttentionConfig& cfg,
                                             graph::ValueId q, graph::ValueId k,
                                             graph::ValueId v,
                                             const std::string& label);

/// Full multi-head attention block: QKV projections on flattened tokens
/// [T, D], head split, attention, head merge, output projection.
class MultiHeadAttention {
 public:
  MultiHeadAttention(graph::Graph& g, ParamStore& params, std::int64_t d_model,
                     std::int64_t heads, std::int64_t head_dim,
                     AttentionConfig attn, std::string name);

  /// x: [B*N, D_model] flattened tokens.  Returns [B*N, D_model].
  [[nodiscard]] graph::ValueId operator()(graph::Graph& g, ParamStore& params,
                                          graph::ValueId x, std::int64_t batch,
                                          std::int64_t seq_len) const;

 private:
  std::int64_t d_model_, heads_, head_dim_;
  AttentionConfig attn_;
  std::string name_;
  Linear q_proj_, k_proj_, v_proj_, out_proj_;
};

}  // namespace gaudi::nn

// Autoregressive decoding with KV caches.
//
// The paper profiles training; this extends the library to the inference
// regime a deployed GPT runs in: a *prefill* pass materializes per-layer
// key/value caches for the prompt, then each generated token runs a
// *decode step* — projections for one token, a cache append
// (`concat_rows`), and attention of a single query against the cached
// keys/values.  Decode exposes a very different hardware profile (m = 1
// GEMMs sit at the MME's packing floor; TPC work is proportionally larger),
// which the decode-latency bench quantifies.
//
// Prefill and decode are built as separate graphs; constructing them with
// the same seed yields identical parameter tensors (creation order is
// shared), so caches produced by one feed the other — asserted by the
// prefill/decode consistency test.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "graph/graph.hpp"
#include "graph/runtime.hpp"
#include "nn/module.hpp"

namespace gaudi::nn {

struct DecodeConfig {
  std::int64_t vocab = 50257;
  std::int64_t batch = 1;
  std::int64_t heads = 8;
  std::int64_t head_dim = 64;
  std::int64_t n_layers = 2;
  std::int64_t ffn_dim = 2048;
  /// Position-embedding capacity (prompt + generated tokens must fit).
  std::int64_t max_seq = 8192;

  [[nodiscard]] std::int64_t d_model() const { return heads * head_dim; }

  [[nodiscard]] static DecodeConfig gpt2_paper();
  [[nodiscard]] static DecodeConfig tiny();
};

/// Per-layer cache handles (key, value), each [B, H, rows, head_dim].
struct KvCache {
  graph::ValueId k = graph::kInvalidValue;
  graph::ValueId v = graph::kInvalidValue;
};

struct PrefillGraph {
  DecodeConfig config;
  ParamStore params;
  graph::ValueId token_ids = graph::kInvalidValue;    ///< [B, S] i32
  graph::ValueId causal_mask = graph::kInvalidValue;  ///< [S, S]
  graph::ValueId last_logits = graph::kInvalidValue;  ///< [B, V]
  std::vector<KvCache> caches;                        ///< outputs, rows = S
};

struct DecodeStepGraph {
  DecodeConfig config;
  ParamStore params;
  std::int64_t context_len = 0;
  graph::ValueId token_ids = graph::kInvalidValue;  ///< [B, 1] i32
  std::vector<KvCache> cache_inputs;                ///< rows = context_len
  std::vector<KvCache> cache_outputs;               ///< rows = context_len + 1
  graph::ValueId logits = graph::kInvalidValue;     ///< [B, V]
};

/// Builds the prompt pass over `seq_len` tokens, exposing the KV caches.
[[nodiscard]] PrefillGraph build_gpt_prefill(graph::Graph& g,
                                             const DecodeConfig& cfg,
                                             std::int64_t seq_len,
                                             std::uint64_t seed = 0xDEC0DE);

/// Builds one decode step against caches of length `context_len`.
[[nodiscard]] DecodeStepGraph build_gpt_decode_step(graph::Graph& g,
                                                    const DecodeConfig& cfg,
                                                    std::int64_t context_len,
                                                    std::uint64_t seed = 0xDEC0DE);

/// Compile-once cache for decode-step graphs.
///
/// A generation loop executes one step graph per emitted token; the graph
/// only changes shape when the KV cache grows.  This cache keys compiled
/// artifacts by context length, so the per-token loop pays the full
/// compiler pipeline (mapping, fusion, DMA insertion, memory planning)
/// exactly once per distinct cache length and then just runs.
class DecodeStepCache {
 public:
  struct Entry {
    DecodeStepGraph step;          ///< value ids + params for binding feeds
    graph::CompiledGraph compiled;  ///< owns its copy of the step graph
  };

  DecodeStepCache(const graph::Runtime& rt, DecodeConfig cfg,
                  graph::CompileOptions copts = {},
                  std::uint64_t seed = 0xDEC0DE)
      : rt_(rt), cfg_(std::move(cfg)), copts_(copts), seed_(seed) {}

  /// Returns the compiled step for `context_len`, compiling on first use.
  const Entry& step(std::int64_t context_len);

  /// How many distinct context lengths have been compiled.
  [[nodiscard]] std::size_t compiled_steps() const { return entries_.size(); }

 private:
  graph::Runtime rt_;  // cheap by-value copy: holds only the chip config
  DecodeConfig cfg_;
  graph::CompileOptions copts_;
  std::uint64_t seed_;
  std::map<std::int64_t, Entry> entries_;
};

}  // namespace gaudi::nn

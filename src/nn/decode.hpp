// Autoregressive decoding with KV caches.
//
// The paper profiles training; this extends the library to the inference
// regime a deployed GPT runs in: a *prefill* pass materializes per-layer
// key/value caches for the prompt, then each generated token runs a
// *decode step* — projections for one token, a cache append
// (`concat_rows`), and attention of a single query against the cached
// keys/values.  Decode exposes a very different hardware profile (m = 1
// GEMMs sit at the MME's packing floor; TPC work is proportionally larger),
// which the decode-latency bench quantifies.
//
// Prefill and decode are built as separate graphs; constructing them with
// the same seed yields identical parameter tensors (creation order is
// shared), so caches produced by one feed the other — asserted by the
// prefill/decode consistency test.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <vector>

#include "graph/graph.hpp"
#include "graph/runtime.hpp"
#include "nn/module.hpp"

namespace gaudi::nn {

struct DecodeConfig {
  std::int64_t vocab = 50257;
  std::int64_t batch = 1;
  std::int64_t heads = 8;
  std::int64_t head_dim = 64;
  std::int64_t n_layers = 2;
  std::int64_t ffn_dim = 2048;
  /// Position-embedding capacity (prompt + generated tokens must fit).
  std::int64_t max_seq = 8192;

  [[nodiscard]] std::int64_t d_model() const { return heads * head_dim; }

  [[nodiscard]] static DecodeConfig gpt2_paper();
  [[nodiscard]] static DecodeConfig tiny();
};

/// Per-layer cache handles (key, value), each [B, H, rows, head_dim].
struct KvCache {
  graph::ValueId k = graph::kInvalidValue;
  graph::ValueId v = graph::kInvalidValue;
};

struct PrefillGraph {
  DecodeConfig config;
  ParamStore params;
  graph::ValueId token_ids = graph::kInvalidValue;    ///< [B, S] i32
  graph::ValueId causal_mask = graph::kInvalidValue;  ///< [S, S]
  graph::ValueId last_logits = graph::kInvalidValue;  ///< [B, V]
  std::vector<KvCache> caches;                        ///< outputs, rows = S
};

struct DecodeStepGraph {
  DecodeConfig config;
  ParamStore params;
  std::int64_t context_len = 0;
  graph::ValueId token_ids = graph::kInvalidValue;  ///< [B, 1] i32
  std::vector<KvCache> cache_inputs;                ///< rows = context_len
  std::vector<KvCache> cache_outputs;               ///< rows = context_len + 1
  graph::ValueId logits = graph::kInvalidValue;     ///< [B, V]
};

/// Builds the prompt pass over `seq_len` tokens, exposing the KV caches.
/// Throws sim::InvalidArgument (naming `seq_len` and the `max_seq` limit)
/// when the prompt would overrun the position-embedding table — reachable
/// from serving when a preempted request re-prefills prompt + generated
/// tokens.
[[nodiscard]] PrefillGraph build_gpt_prefill(graph::Graph& g,
                                             const DecodeConfig& cfg,
                                             std::int64_t seq_len,
                                             std::uint64_t seed = 0xDEC0DE);

/// Builds one decode step against caches of length `context_len`.  Throws
/// sim::InvalidArgument (naming `context_len` and the `max_seq` limit) when
/// the appended token at position `context_len` would not fit the position
/// table (`context_len + 1 > max_seq`).
[[nodiscard]] DecodeStepGraph build_gpt_decode_step(graph::Graph& g,
                                                    const DecodeConfig& cfg,
                                                    std::int64_t context_len,
                                                    std::uint64_t seed = 0xDEC0DE);

/// Compile-once cache for decode-step graphs.
///
/// A generation loop executes one step graph per emitted token; the graph
/// only changes shape when the KV cache grows.  This cache keys compiled
/// artifacts by context length, so the per-token loop pays the full
/// compiler pipeline (mapping, fusion, DMA insertion, memory planning)
/// exactly once per distinct cache length and then just runs.
///
/// Under a serving workload the set of live context lengths is unbounded
/// (long, varied contexts each pin a compiled artifact), so the cache takes
/// an optional `max_entries` cap: when exceeded, the least-recently-used
/// entry is discarded and counted in `evictions()`.  The default (0) keeps
/// every entry, preserving the original behavior.
class DecodeStepCache {
 public:
  struct Entry {
    DecodeStepGraph step;          ///< value ids + params for binding feeds
    graph::CompiledGraph compiled;  ///< owns its copy of the step graph
    /// False while the entry is residency bookkeeping only: `step_time`
    /// answered its cost from the process-wide timing memo without building
    /// or compiling the graph.  `step()` materializes on demand.
    bool materialized = false;
  };

  DecodeStepCache(const graph::Runtime& rt, DecodeConfig cfg,
                  graph::CompileOptions copts = {},
                  std::uint64_t seed = 0xDEC0DE, std::size_t max_entries = 0)
      : rt_(rt),
        cfg_(std::move(cfg)),
        copts_(copts),
        seed_(seed),
        max_entries_(max_entries) {}

  /// Returns the compiled step for `context_len`, compiling on first use.
  /// The reference stays valid until `context_len` itself is evicted (it
  /// survives the eviction its own insertion triggers).
  const Entry& step(std::int64_t context_len);

  /// Timing-only makespan of the step at `context_len`: answered from the
  /// process-wide graph::TimingMemo when a previous cache (any instance with
  /// the same chip/model/compile/seed) already measured it, building and
  /// compiling the graph only on a memo miss.  Residency and eviction
  /// bookkeeping runs either way, so `compiled_steps()` / `evictions()`
  /// match a `step()`-based run byte for byte.  `opts.mode` is forced to
  /// timing.  The memo holds *fault-free* times only: when the resolved
  /// fault injector (opts.faults, else the environment) is enabled, the
  /// step is measured live and the memo is neither read nor written.
  sim::SimTime step_time(std::int64_t context_len,
                         const graph::RunOptions& opts);

  /// Distinct context lengths currently *resident* — with an entry cap this
  /// is at most `max_entries`; add `evictions()` for the total number of
  /// compilations performed minus cache hits.
  [[nodiscard]] std::size_t compiled_steps() const { return entries_.size(); }

  /// Entries discarded by the LRU cap (0 while uncapped).  An evicted
  /// context length recompiles on its next use.
  [[nodiscard]] std::size_t evictions() const { return evictions_; }

  [[nodiscard]] std::size_t max_entries() const { return max_entries_; }

 private:
  /// LRU lookup-or-insert without compiling; new entries start
  /// unmaterialized.  The reference follows the same validity rule as
  /// `step()`.
  Entry& touch(std::int64_t context_len);
  /// Builds and compiles the step graph into an unmaterialized entry.
  void materialize(std::int64_t context_len, Entry& e);
  /// Memo key for `step_time`: digest of chip config, model config, compile
  /// options, parameter seed, context length, and schedule policy.
  [[nodiscard]] std::string time_key(std::int64_t context_len,
                                     graph::SchedulePolicy policy) const;

  graph::Runtime rt_;  // cheap by-value copy: holds only the chip config
  DecodeConfig cfg_;
  graph::CompileOptions copts_;
  std::uint64_t seed_;
  std::size_t max_entries_ = 0;  ///< 0 = unlimited
  std::size_t evictions_ = 0;
  std::map<std::int64_t, Entry> entries_;
  /// Recency order, most recent first (only maintained when capped).
  std::list<std::int64_t> recency_;
};

}  // namespace gaudi::nn

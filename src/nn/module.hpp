// Model-building support: parameter registry and initialization.
//
// nn modules are *graph builders*: they append ops to a Graph and register
// their parameters here.  For functional runs the store materializes
// deterministic initial tensors; timing runs need only the shapes.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"
#include "sim/rng.hpp"
#include "tensor/tensor.hpp"

namespace gaudi::nn {

enum class Init : std::uint8_t { kZeros, kOnes, kNormal, kUniform };

/// Registry of graph parameter values with their initializers.
class ParamStore {
 public:
  explicit ParamStore(std::uint64_t seed = 0x5EED) : rng_(seed) {}

  /// Creates a parameter value in `g` and records how to initialize it.
  /// `stddev`/`range` parameterize kNormal/kUniform.
  graph::ValueId create(graph::Graph& g, tensor::Shape shape, std::string name,
                        Init init = Init::kNormal, float scale = 0.02f);

  /// All registered parameter value ids, in creation order.
  [[nodiscard]] const std::vector<graph::ValueId>& params() const { return params_; }

  /// Parameters that should receive gradients (excludes buffers).
  [[nodiscard]] std::vector<graph::ValueId> trainable() const;

  /// Registers `id` as a non-trainable buffer (e.g. Performer's random
  /// feature matrix) after creation.
  void mark_buffer(graph::ValueId id);

  /// Materializes initial tensors for a functional run.
  [[nodiscard]] std::unordered_map<graph::ValueId, tensor::Tensor> init_feeds(
      const graph::Graph& g) const;

  [[nodiscard]] std::size_t count() const { return params_.size(); }

 private:
  struct Spec {
    Init init;
    float scale;
    std::uint64_t stream;
    bool buffer = false;
  };
  sim::CounterRng rng_;
  std::vector<graph::ValueId> params_;
  std::unordered_map<graph::ValueId, Spec> specs_;
  std::uint64_t next_stream_ = 1;
};

}  // namespace gaudi::nn

// Host-driven training loop with dynamic loss scaling for bf16 training.
//
// Gaudi's native training dtype is bf16 (§2 of the paper); bf16 keeps f32's
// exponent range but only 8 mantissa bits, so tiny gradients collapse to
// denormals/zero and transient corruption (an SDC exponent-bit flip, a
// diverging step) can blow a gradient past the finite range.  The standard
// remedy is dynamic loss scaling: differentiate S * loss so gradients ride
// S times higher, check the scaled gradients for overflow before the
// update, unscale and apply on clean steps, and skip + back off S on dirty
// ones.  `GradScaler` is the scale state machine; `train_language_model`
// runs the full loop on the simulator — forward/backward graph, host-side
// gradient sweep (tensor::ops::numerics_sweep), and a standalone update
// graph (nn::build_update_graph) so the update can be withheld when the
// gradients are unusable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/runtime.hpp"
#include "nn/models.hpp"
#include "nn/optimizer.hpp"
#include "scaleout/checkpoint.hpp"

namespace gaudi::nn {

struct GradScalerConfig {
  float init_scale = 65536.0f;  ///< 2^16, the customary starting point
  float growth_factor = 2.0f;   ///< scale-up multiplier on a long clean run
  float backoff_factor = 0.5f;  ///< scale-down multiplier on overflow
  /// Consecutive clean steps before the scale grows (hysteresis: growing on
  /// every clean step would oscillate against the overflow ceiling).
  std::int32_t growth_interval = 50;
  float min_scale = 1.0f;
  float max_scale = 16777216.0f;  ///< 2^24
};

/// Dynamic loss-scale state machine: scale-up after `growth_interval`
/// consecutive clean steps, scale-down and skip the update on overflow.
class GradScaler {
 public:
  explicit GradScaler(GradScalerConfig cfg = {})
      : cfg_(cfg), scale_(cfg.init_scale) {}

  [[nodiscard]] float scale() const { return scale_; }
  [[nodiscard]] std::int64_t skipped_steps() const { return skipped_; }
  [[nodiscard]] std::int32_t clean_streak() const { return streak_; }
  [[nodiscard]] const GradScalerConfig& config() const { return cfg_; }

  /// Advances the state machine once per step.  `overflow` is whether any
  /// gradient came back NaN/Inf (or beyond the bf16 finite range when
  /// gradients are stored as bf16).  Returns true when the step should
  /// apply its update; false when it must be skipped.
  bool update(bool overflow);

  /// Restores the full state machine from a checkpoint.  Together with
  /// scale()/clean_streak()/skipped_steps() this makes the scaler round-trip
  /// exactly: restore(scale(), clean_streak(), skipped_steps()) is an
  /// identity.  Values are validated against the configured ranges.
  void restore(float scale, std::int32_t streak, std::int64_t skipped);

 private:
  GradScalerConfig cfg_;
  float scale_;
  std::int32_t streak_ = 0;
  std::int64_t skipped_ = 0;
};

struct TrainOptions {
  LmConfig model = LmConfig::tiny(LmArch::kGpt2);
  OptimizerConfig optimizer{};
  std::int32_t steps = 4;
  /// Dynamic loss scaling on/off.  Off differentiates the raw loss and
  /// applies every update unconditionally — the unprotected baseline.
  bool loss_scaling = true;
  GradScalerConfig scaler{};
  /// Emulate bf16 gradient storage: gradients round-trip through bf16
  /// before the overflow check and the unscale (master weights stay f32, as
  /// in mixed-precision practice).
  bool bf16_grads = true;
  std::uint64_t seed = 0x7A11;
  /// Per-run options (guard policy, fault injector, validation, policy).
  /// `mode` is forced functional, `fault_epoch` is set per step, and
  /// `corrupt_value` is driven by `corrupt_grad_step`.
  graph::RunOptions run{};
  /// Test hook: at this step, the first parameter gradient has element 0
  /// overwritten with a quiet NaN as it retires (deterministic stand-in for
  /// an SDC hit).  -1 disables.
  std::int32_t corrupt_grad_step = -1;

  /// Crash-consistent checkpointing (scaleout/snapshot.hpp).  Empty
  /// `checkpoint_dir` disables it entirely.  With a directory set, a
  /// snapshot of the complete training state lands after the steps the
  /// policy selects — every `checkpoint_every` steps for kFixedInterval, at
  /// the Young/Daly optimal interval (from `mtbf_steps`, `nominal_step_time`
  /// and the measured snapshot size) for kYoungDaly — and always after the
  /// final step.  kNone never saves.
  std::string checkpoint_dir;
  std::int32_t checkpoint_every = 1;
  scaleout::RecoveryPolicy checkpoint_policy =
      scaleout::RecoveryPolicy::kFixedInterval;
  /// Resume from the newest *valid* snapshot in `checkpoint_dir` before
  /// training.  An empty or nonexistent directory is a clean fresh start
  /// (noted in TrainResult::resume_report); a snapshot whose fingerprint
  /// disagrees with this configuration throws CheckpointShapeMismatch.
  bool resume = false;
  /// Draw a fresh token batch per step (counter streams keyed by the step
  /// index) instead of one fixed batch, making the checkpointed data-order
  /// cursor load-bearing.  Off by default to preserve the historical loop.
  bool resample_data = false;
  /// Inputs to the Young/Daly interval for kYoungDaly.
  double mtbf_steps = 200.0;
  sim::SimTime nominal_step_time = sim::SimTime::from_ms(300.0);
  /// Storage cost model; state_bytes is overridden by the real serialized
  /// payload (scaleout::backed_checkpoint_config).
  scaleout::CheckpointConfig checkpoint_cost{};
};

struct TrainStepInfo {
  float loss = 0.0f;    ///< unscaled loss observed this step
  float scale = 1.0f;   ///< loss scale the step ran with
  bool applied = true;  ///< false: overflow detected, update skipped
  sim::NumericsStats grad_stats{};  ///< merged sweep over all gradients
};

struct TrainResult {
  std::vector<TrainStepInfo> steps;
  std::int64_t skipped_steps = 0;
  float final_scale = 1.0f;
  float final_loss = 0.0f;
  /// Final loss is finite — the headline robustness outcome.
  bool finite = false;
  /// Bit flips the fault injector landed across all runs.
  std::size_t sdc_injections = 0;
  /// Guard anomalies collected across all runs (kWarn only).
  std::size_t anomalies = 0;
  /// Step count the run resumed from (-1: fresh start).  A resumed result
  /// covers only the steps it executed; the restored counters above include
  /// the pre-crash history, so the totals match the uninterrupted run.
  std::int64_t resumed_from_step = -1;
  /// Snapshots written by this run.
  std::uint64_t checkpoints_saved = 0;
  /// Manifest path of the newest snapshot this run wrote (empty if none).
  std::string last_checkpoint;
  /// Structured resume report: the snapshot scan (restored step, every
  /// rejected candidate with its cause) or the fresh-start note.
  std::string resume_report;
};

/// Runs `opts.steps` full training iterations of the configured model on
/// the simulator and reports per-step losses, skip decisions, and the final
/// scale.  Throws sim::NumericsError if a guarded run traps.
[[nodiscard]] TrainResult train_language_model(
    const TrainOptions& opts = {},
    const sim::ChipConfig& chip = sim::ChipConfig::hls1());

}  // namespace gaudi::nn

// On-device optimizers.
//
// `append_optimizer` extends a training graph with parameter-update ops so a
// run is a *complete* training iteration (forward + loss + backward +
// update), all of it scheduled on the chip — updates are element-wise, so
// they run on the TPC like every other non-matmul op.  Updated parameters
// and optimizer state come back as graph outputs that the host feeds into
// the next iteration.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"
#include "nn/models.hpp"

namespace gaudi::nn {

enum class OptimizerKind : std::uint8_t { kSgd, kSgdMomentum, kAdam };

[[nodiscard]] const char* optimizer_kind_name(OptimizerKind k);

struct OptimizerConfig {
  OptimizerKind kind = OptimizerKind::kSgd;
  float lr = 1e-3f;
  float momentum = 0.9f;  ///< kSgdMomentum
  float beta1 = 0.9f;     ///< kAdam
  float beta2 = 0.999f;
  float eps = 1e-8f;
  std::int64_t step = 1;  ///< Adam bias-correction counter for this iteration
};

/// Update plumbing for one trainable parameter.
struct OptimizerSlot {
  graph::ValueId param = graph::kInvalidValue;
  graph::ValueId grad = graph::kInvalidValue;
  graph::ValueId new_param = graph::kInvalidValue;
  // SGD momentum state.
  graph::ValueId vel_in = graph::kInvalidValue;
  graph::ValueId vel_out = graph::kInvalidValue;
  // Adam state.
  graph::ValueId m_in = graph::kInvalidValue;
  graph::ValueId m_out = graph::kInvalidValue;
  graph::ValueId v_in = graph::kInvalidValue;
  graph::ValueId v_out = graph::kInvalidValue;
};

struct OptimizerState {
  OptimizerConfig config{};
  std::vector<OptimizerSlot> slots;

  /// Zero tensors for all state inputs (first iteration).
  [[nodiscard]] std::unordered_map<graph::ValueId, tensor::Tensor> initial_state(
      const graph::Graph& g) const;

  /// Serializable view of one optimizer state tensor: its stable graph name
  /// ("<param>.velocity" / ".adam_m" / ".adam_v"), the input the host feeds
  /// and the output the update graph returns.  A checkpoint stores state by
  /// `name`; resume feeds the loaded tensor back at `in`.
  struct StateRef {
    std::string name;
    graph::ValueId in = graph::kInvalidValue;
    graph::ValueId out = graph::kInvalidValue;
  };
  /// All state refs, in slot order — the complete serializable optimizer
  /// state (save → load → save round-trips byte-identically).
  [[nodiscard]] std::vector<StateRef> state_refs(const graph::Graph& g) const;
};

/// Appends update ops for every trainable parameter of `model`.  New params
/// and state are marked as graph outputs.
[[nodiscard]] OptimizerState append_optimizer(graph::Graph& g,
                                              const LanguageModel& model,
                                              const OptimizerConfig& cfg);

/// Builds a standalone update graph into `g`: each slot's param, gradient,
/// and state enter as inputs and the updated param/state come back as
/// outputs.  Used by the host-driven training loop (nn/train.hpp), which
/// must inspect — and under dynamic loss scaling, unscale or skip —
/// gradients between backward and update, so the update cannot live in the
/// same graph as the backward pass.  `model_graph` is the graph `model` was
/// built into (shapes/names are read from it).
[[nodiscard]] OptimizerState build_update_graph(graph::Graph& g,
                                                const graph::Graph& model_graph,
                                                const LanguageModel& model,
                                                const OptimizerConfig& cfg);

}  // namespace gaudi::nn

#include "nn/models.hpp"

#include "graph/autodiff.hpp"

namespace gaudi::nn {

using graph::Graph;
using graph::ValueId;

const char* lm_arch_name(LmArch a) {
  return a == LmArch::kGpt2 ? "gpt2" : "bert";
}

LmConfig LmConfig::gpt2_paper() {
  LmConfig cfg;
  cfg.arch = LmArch::kGpt2;
  cfg.vocab = 50257;  // GPT-2 BPE vocabulary
  cfg.batch = 8;
  cfg.seq_len = 2048;
  cfg.n_layers = 2;
  cfg.heads = 8;
  cfg.head_dim = 64;
  cfg.ffn_dim = 2048;
  cfg.training = true;
  return cfg;
}

LmConfig LmConfig::bert_paper() {
  LmConfig cfg = gpt2_paper();
  cfg.arch = LmArch::kBert;
  cfg.vocab = 30522;  // BERT WordPiece vocabulary
  return cfg;
}

LmConfig LmConfig::tiny(LmArch arch) {
  LmConfig cfg;
  cfg.arch = arch;
  cfg.vocab = 97;
  cfg.batch = 2;
  cfg.seq_len = 16;
  cfg.n_layers = 2;
  cfg.heads = 2;
  cfg.head_dim = 8;
  cfg.ffn_dim = 32;
  cfg.training = true;
  return cfg;
}

std::size_t LanguageModel::param_count(const graph::Graph& g) const {
  std::size_t total = 0;
  for (ValueId id : params.params()) {
    total += static_cast<std::size_t>(g.value(id).shape.numel());
  }
  return total;
}

tensor::Tensor make_causal_mask(std::int64_t n) {
  tensor::Tensor mask = tensor::Tensor::zeros(tensor::Shape{{n, n}});
  auto m = mask.f32();
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = i + 1; j < n; ++j) {
      m[static_cast<std::size_t>(i * n + j)] = -1e9f;
    }
  }
  return mask;
}

LanguageModel build_language_model(Graph& g, const LmConfig& cfg,
                                   std::uint64_t seed) {
  LanguageModel model;
  model.config = cfg;
  model.params = ParamStore(seed);
  ParamStore& params = model.params;
  const std::string name = lm_arch_name(cfg.arch);
  const std::int64_t d = cfg.d_model();
  const std::int64_t tokens = cfg.tokens();

  model.token_ids = g.input(tensor::Shape{{cfg.batch, cfg.seq_len}},
                            tensor::DType::I32, name + ".token_ids");
  if (cfg.training) {
    model.targets =
        g.input(tensor::Shape{{tokens}}, tensor::DType::I32, name + ".targets");
  }
  if (cfg.arch == LmArch::kGpt2) {
    model.causal_mask = g.input(tensor::Shape{{cfg.seq_len, cfg.seq_len}},
                                tensor::DType::F32, name + ".causal_mask");
  }

  // Embeddings: token lookup plus learned positions, broadcast over batch.
  Embedding tok_emb(g, params, cfg.vocab, d, name + ".wte");
  const ValueId pos_table = params.create(
      g, tensor::Shape{{cfg.seq_len, d}}, name + ".wpe", Init::kNormal, 0.01f);

  const ValueId ids_flat =
      g.reshape(model.token_ids, tensor::Shape{{tokens}}, name + ".flatten_ids");
  const ValueId tok = tok_emb(g, ids_flat);  // [T, D]
  const ValueId tok3 =
      g.reshape(tok, tensor::Shape{{cfg.batch, cfg.seq_len, d}}, name + ".to_bnd");
  const ValueId embedded = g.add_op(graph::OpKind::kAddMask2D, {tok3, pos_table},
                                    {}, name + ".pos_add")[0];
  ValueId x = g.reshape(embedded, tensor::Shape{{tokens, d}}, name + ".to_td");

  if (cfg.arch == LmArch::kBert) {
    // BERT normalizes embeddings before the encoder stack.
    LayerNorm emb_ln(g, params, d, name + ".emb_ln");
    x = emb_ln(g, x);
  }

  // Transformer stack.
  TransformerLayerConfig layer_cfg;
  layer_cfg.d_model = d;
  layer_cfg.heads = cfg.heads;
  layer_cfg.head_dim = cfg.head_dim;
  layer_cfg.ffn_dim = cfg.ffn_dim;
  layer_cfg.ffn_activation = Activation::kGelu;
  layer_cfg.dropout_p = cfg.dropout_p;
  layer_cfg.attention = cfg.attention;
  if (cfg.arch == LmArch::kGpt2) {
    layer_cfg.attention.additive_mask = model.causal_mask;
  }

  std::vector<TransformerLayer> layers;
  layers.reserve(static_cast<std::size_t>(cfg.n_layers));
  for (std::int64_t l = 0; l < cfg.n_layers; ++l) {
    layers.emplace_back(g, params, layer_cfg,
                        name + ".layer" + std::to_string(l));
  }
  for (auto& layer : layers) {
    x = layer(g, params, x, cfg.batch, cfg.seq_len);
  }

  // Language-modeling head.
  if (cfg.arch == LmArch::kGpt2) {
    LayerNorm ln_f(g, params, d, name + ".ln_f");
    x = ln_f(g, x);
    Linear lm_head(g, params, d, cfg.vocab, name + ".lm_head", /*bias=*/false);
    model.logits = lm_head(g, x);
  } else {
    // BertForMaskedLM head: dense + GELU + LayerNorm + decoder.
    Linear transform(g, params, d, d, name + ".mlm.dense");
    x = transform(g, x);
    x = g.gelu(x);
    LayerNorm mlm_ln(g, params, d, name + ".mlm.ln");
    x = mlm_ln(g, x);
    Linear decoder(g, params, d, cfg.vocab, name + ".mlm.decoder");
    model.logits = decoder(g, x);
  }
  g.mark_output(model.logits);

  if (cfg.training) {
    model.loss = g.cross_entropy_mean(model.logits, model.targets,
                                      name + ".loss");
    g.mark_output(model.loss);
    // Dynamic loss scaling differentiates S * loss: every gradient comes
    // back multiplied by S, lifting small bf16 gradients away from the
    // denormal floor.  The host unscales before the update (nn/train.cpp).
    ValueId root = model.loss;
    if (cfg.scaled_loss) {
      model.loss_scale = g.input(tensor::Shape{{1}}, tensor::DType::F32,
                                 name + ".loss_scale");
      model.scaled_loss = g.mul(model.loss, model.loss_scale,
                                name + ".scaled_loss");
      root = model.scaled_loss;
    }
    const std::vector<ValueId> wrt = params.trainable();
    const graph::BackwardResult back = graph::build_backward(g, root, wrt);
    model.grad_values.reserve(wrt.size());
    for (ValueId p : wrt) {
      const ValueId grad = back.grads.at(p);
      g.mark_output(grad);
      model.grad_values.push_back(grad);
    }
  }
  return model;
}

}  // namespace gaudi::nn

// End-to-end language models: a GPT2LMHead-style decoder and a
// BertForMaskedLM-style encoder, built exactly as the paper's §3.4
// experiments configure them (seq 2048, batch 8, 2 layers, 8 heads, head
// size 64), plus a training-step builder (forward + loss + backward) since
// the paper profiles training.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "nn/module.hpp"
#include "nn/transformer.hpp"

namespace gaudi::nn {

enum class LmArch : std::uint8_t { kGpt2, kBert };

[[nodiscard]] const char* lm_arch_name(LmArch a);

struct LmConfig {
  LmArch arch = LmArch::kGpt2;
  std::int64_t vocab = 50257;
  std::int64_t batch = 8;
  std::int64_t seq_len = 2048;
  std::int64_t n_layers = 2;
  std::int64_t heads = 8;
  std::int64_t head_dim = 64;
  std::int64_t ffn_dim = 2048;
  AttentionConfig attention{};
  float dropout_p = 0.0f;
  /// Append loss + backward nodes (a full training step).
  bool training = false;
  /// Training only: differentiate `loss * loss_scale` instead of the raw
  /// loss, where loss_scale is an extra [1] graph input the host feeds each
  /// step (dynamic loss scaling for bf16 training — see nn/train.hpp).  The
  /// unscaled loss stays a graph output; gradients come back scaled and the
  /// host divides by the scale before the update.
  bool scaled_loss = false;

  [[nodiscard]] std::int64_t d_model() const { return heads * head_dim; }
  [[nodiscard]] std::int64_t tokens() const { return batch * seq_len; }

  /// The paper's §3.4 configurations (Figs 8 and 9).
  [[nodiscard]] static LmConfig gpt2_paper();
  [[nodiscard]] static LmConfig bert_paper();
  /// A functionally-testable miniature of the same architecture.
  [[nodiscard]] static LmConfig tiny(LmArch arch);
};

/// Handles into a built model graph.
struct LanguageModel {
  LmConfig config;
  ParamStore params;
  graph::ValueId token_ids = graph::kInvalidValue;  ///< [B, N] i32 input
  graph::ValueId targets = graph::kInvalidValue;    ///< [B*N] i32 input
  graph::ValueId causal_mask = graph::kInvalidValue;  ///< [N, N] input (GPT only)
  graph::ValueId logits = graph::kInvalidValue;     ///< [B*N, V]
  graph::ValueId loss = graph::kInvalidValue;       ///< [1] (training only)
  graph::ValueId loss_scale = graph::kInvalidValue;  ///< [1] input (scaled_loss)
  graph::ValueId scaled_loss = graph::kInvalidValue;  ///< [1] (scaled_loss)
  std::vector<graph::ValueId> grad_values;          ///< parameter gradients

  /// Number of scalar parameters (trainable + buffers).
  [[nodiscard]] std::size_t param_count(const graph::Graph& g) const;
};

/// Builds the model into `g`.
[[nodiscard]] LanguageModel build_language_model(graph::Graph& g,
                                                 const LmConfig& cfg,
                                                 std::uint64_t seed = 0x11A11);

/// Additive causal mask tensor: 0 on/below the diagonal, -1e9 above.
[[nodiscard]] tensor::Tensor make_causal_mask(std::int64_t n);

}  // namespace gaudi::nn

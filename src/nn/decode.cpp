#include "nn/decode.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>

#include "graph/fingerprint.hpp"
#include "graph/timing_memo.hpp"
#include "nn/layers.hpp"
#include "sim/fault.hpp"

namespace gaudi::nn {

using graph::Graph;
using graph::ValueId;

DecodeConfig DecodeConfig::gpt2_paper() { return DecodeConfig{}; }

DecodeConfig DecodeConfig::tiny() {
  DecodeConfig cfg;
  cfg.vocab = 53;
  cfg.batch = 2;
  cfg.heads = 2;
  cfg.head_dim = 4;
  cfg.n_layers = 2;
  cfg.ffn_dim = 8;
  cfg.max_seq = 16;
  return cfg;
}

namespace {

/// Parameters of one decoder layer; creation order is shared by the prefill
/// and decode builders so that equal seeds give equal tensors.
struct LayerParams {
  Linear q_proj, k_proj, v_proj, out_proj, ffn_in, ffn_out;
  LayerNorm ln1, ln2;

  LayerParams(Graph& g, ParamStore& params, const DecodeConfig& cfg,
              const std::string& name)
      : q_proj(g, params, cfg.d_model(), cfg.d_model(), name + ".q_proj"),
        k_proj(g, params, cfg.d_model(), cfg.d_model(), name + ".k_proj"),
        v_proj(g, params, cfg.d_model(), cfg.d_model(), name + ".v_proj"),
        out_proj(g, params, cfg.d_model(), cfg.d_model(), name + ".out_proj"),
        ffn_in(g, params, cfg.d_model(), cfg.ffn_dim, name + ".ffn_in"),
        ffn_out(g, params, cfg.ffn_dim, cfg.d_model(), name + ".ffn_out"),
        ln1(g, params, cfg.d_model(), name + ".ln1"),
        ln2(g, params, cfg.d_model(), name + ".ln2") {}
};

struct GptParams {
  Embedding wte;
  ValueId wpe;
  std::vector<LayerParams> layers;
  LayerNorm ln_f;
  Linear lm_head;

  GptParams(Graph& g, ParamStore& params, const DecodeConfig& cfg)
      : wte(g, params, cfg.vocab, cfg.d_model(), "gpt.wte"),
        wpe(params.create(g, tensor::Shape{{cfg.max_seq, cfg.d_model()}},
                          "gpt.wpe", Init::kNormal, 0.01f)),
        layers([&] {
          std::vector<LayerParams> ls;
          ls.reserve(static_cast<std::size_t>(cfg.n_layers));
          for (std::int64_t l = 0; l < cfg.n_layers; ++l) {
            ls.emplace_back(g, params, cfg,
                            "gpt.layer" + std::to_string(l));
          }
          return ls;
        }()),
        ln_f(g, params, cfg.d_model(), "gpt.ln_f"),
        lm_head(g, params, cfg.d_model(), cfg.vocab, "gpt.lm_head",
                /*bias=*/false) {}
};

/// Post-attention tail shared by both builders: out-proj, residual, LN,
/// FFN, residual, LN.  `x` and `attn_out` are [T, D].
ValueId layer_tail(Graph& g, const LayerParams& lp, ValueId x, ValueId attn_out,
                   const std::string& name) {
  const ValueId h = lp.ln1(g, g.add(x, lp.out_proj(g, attn_out),
                                    name + ".residual1"));
  ValueId f = lp.ffn_in(g, h);
  f = g.gelu(f);
  f = lp.ffn_out(g, f);
  return lp.ln2(g, g.add(h, f, name + ".residual2"));
}

}  // namespace

PrefillGraph build_gpt_prefill(Graph& g, const DecodeConfig& cfg,
                               std::int64_t seq_len, std::uint64_t seed) {
  GAUDI_CHECK(seq_len >= 1 && seq_len <= cfg.max_seq,
              "prefill seq_len " + std::to_string(seq_len) +
                  " is outside [1, max_seq=" + std::to_string(cfg.max_seq) +
                  "]: the prompt must fit the position-embedding table");
  PrefillGraph out;
  out.config = cfg;
  out.params = ParamStore(seed);
  const std::int64_t d = cfg.d_model();
  const std::int64_t tokens = cfg.batch * seq_len;

  out.token_ids = g.input(tensor::Shape{{cfg.batch, seq_len}},
                          tensor::DType::I32, "prefill.token_ids");
  out.causal_mask = g.input(tensor::Shape{{seq_len, seq_len}},
                            tensor::DType::F32, "prefill.causal_mask");

  GptParams p(g, out.params, cfg);

  const ValueId ids_flat =
      g.reshape(out.token_ids, tensor::Shape{{tokens}}, "prefill.flatten");
  const ValueId tok = p.wte(g, ids_flat);
  const ValueId tok3 =
      g.reshape(tok, tensor::Shape{{cfg.batch, seq_len, d}}, "prefill.to_bnd");
  const ValueId pos = g.slice_rows(p.wpe, 0, seq_len, "prefill.pos");
  const ValueId embedded =
      g.add_op(graph::OpKind::kAddMask2D, {tok3, pos}, {}, "prefill.pos_add")[0];
  ValueId x = g.reshape(embedded, tensor::Shape{{tokens, d}}, "prefill.to_td");

  for (std::int64_t l = 0; l < cfg.n_layers; ++l) {
    const LayerParams& lp = p.layers[static_cast<std::size_t>(l)];
    const std::string name = "gpt.layer" + std::to_string(l);
    auto heads4 = [&](ValueId t, const char* what) {
      const ValueId r = g.reshape(
          t, tensor::Shape{{cfg.batch, seq_len, cfg.heads, cfg.head_dim}},
          name + "." + what + ".split");
      return g.swap_axes12(r, name + "." + what + ".to_heads");
    };
    const ValueId q = heads4(lp.q_proj(g, x), "q");
    const ValueId k = heads4(lp.k_proj(g, x), "k");
    const ValueId v = heads4(lp.v_proj(g, x), "v");
    g.mark_output(k);
    g.mark_output(v);
    out.caches.push_back(KvCache{k, v});

    const ValueId q_scaled = g.mul_scalar(
        q, 1.0f / std::sqrt(static_cast<float>(cfg.head_dim)), name + ".scale");
    ValueId scores = g.matmul(q_scaled, k, false, true, name + ".qk_t");
    scores = g.add_op(graph::OpKind::kAddMask2D, {scores, out.causal_mask}, {},
                      name + ".mask")[0];
    const ValueId probs = g.softmax(scores, name + ".softmax");
    const ValueId ctx = g.matmul(probs, v, false, false, name + ".av");
    const ValueId merged = g.reshape(
        g.swap_axes12(ctx, name + ".from_heads"),
        tensor::Shape{{tokens, d}}, name + ".merge");
    x = layer_tail(g, lp, x, merged, name);
  }

  x = p.ln_f(g, x);
  const ValueId x3 = g.reshape(x, tensor::Shape{{cfg.batch, seq_len, d}},
                               "prefill.to_b_s_d");
  const ValueId last = g.reshape(
      g.slice_rows(x3, seq_len - 1, 1, "prefill.last_token"),
      tensor::Shape{{cfg.batch, d}}, "prefill.last_flat");
  out.last_logits = p.lm_head(g, last);
  g.mark_output(out.last_logits);
  return out;
}

DecodeStepGraph build_gpt_decode_step(Graph& g, const DecodeConfig& cfg,
                                      std::int64_t context_len,
                                      std::uint64_t seed) {
  GAUDI_CHECK(context_len >= 1 && context_len < cfg.max_seq,
              "decode context_len " + std::to_string(context_len) +
                  " is outside [1, max_seq=" + std::to_string(cfg.max_seq) +
                  "): the appended token at position context_len must fit "
                  "the position-embedding table");
  DecodeStepGraph out;
  out.config = cfg;
  out.params = ParamStore(seed);
  out.context_len = context_len;
  const std::int64_t d = cfg.d_model();
  const std::int64_t b = cfg.batch;

  out.token_ids =
      g.input(tensor::Shape{{b, 1}}, tensor::DType::I32, "decode.token_id");

  GptParams p(g, out.params, cfg);

  for (std::int64_t l = 0; l < cfg.n_layers; ++l) {
    KvCache cache;
    cache.k = g.input(
        tensor::Shape{{b, cfg.heads, context_len, cfg.head_dim}},
        tensor::DType::F32, "decode.cache_k" + std::to_string(l));
    cache.v = g.input(
        tensor::Shape{{b, cfg.heads, context_len, cfg.head_dim}},
        tensor::DType::F32, "decode.cache_v" + std::to_string(l));
    out.cache_inputs.push_back(cache);
  }

  const ValueId ids_flat =
      g.reshape(out.token_ids, tensor::Shape{{b}}, "decode.flatten");
  const ValueId tok = p.wte(g, ids_flat);  // [B, D]
  const ValueId tok3 = g.reshape(tok, tensor::Shape{{b, 1, d}}, "decode.to_b1d");
  // The new token sits at position `context_len`.
  const ValueId pos = g.slice_rows(p.wpe, context_len, 1, "decode.pos");
  const ValueId embedded =
      g.add_op(graph::OpKind::kAddMask2D, {tok3, pos}, {}, "decode.pos_add")[0];
  ValueId x = g.reshape(embedded, tensor::Shape{{b, d}}, "decode.to_td");

  for (std::int64_t l = 0; l < cfg.n_layers; ++l) {
    const LayerParams& lp = p.layers[static_cast<std::size_t>(l)];
    const std::string name = "gpt.layer" + std::to_string(l);
    auto heads4 = [&](ValueId t, const char* what) {
      const ValueId r =
          g.reshape(t, tensor::Shape{{b, 1, cfg.heads, cfg.head_dim}},
                    name + "." + what + ".split");
      return g.swap_axes12(r, name + "." + what + ".to_heads");
    };
    const ValueId q = heads4(lp.q_proj(g, x), "q");
    const ValueId k_new = heads4(lp.k_proj(g, x), "k");
    const ValueId v_new = heads4(lp.v_proj(g, x), "v");

    // Cache append: the heart of the decode step.
    const KvCache& in_cache = out.cache_inputs[static_cast<std::size_t>(l)];
    KvCache new_cache;
    new_cache.k = g.concat_rows(in_cache.k, k_new, name + ".cache_k_append");
    new_cache.v = g.concat_rows(in_cache.v, v_new, name + ".cache_v_append");
    g.mark_output(new_cache.k);
    g.mark_output(new_cache.v);
    out.cache_outputs.push_back(new_cache);

    // One query attends to all cached positions plus itself; causality is
    // structural — no mask needed.
    const ValueId q_scaled = g.mul_scalar(
        q, 1.0f / std::sqrt(static_cast<float>(cfg.head_dim)), name + ".scale");
    const ValueId scores =
        g.matmul(q_scaled, new_cache.k, false, true, name + ".qk_t");
    const ValueId probs = g.softmax(scores, name + ".softmax");
    const ValueId ctx = g.matmul(probs, new_cache.v, false, false, name + ".av");
    const ValueId merged =
        g.reshape(g.swap_axes12(ctx, name + ".from_heads"),
                  tensor::Shape{{b, d}}, name + ".merge");
    x = layer_tail(g, lp, x, merged, name);
  }

  x = p.ln_f(g, x);
  out.logits = p.lm_head(g, x);
  g.mark_output(out.logits);
  return out;
}

DecodeStepCache::Entry& DecodeStepCache::touch(std::int64_t context_len) {
  const auto it = entries_.find(context_len);
  if (it != entries_.end()) {
    if (max_entries_ > 0) {  // refresh recency on hit
      const auto pos = std::find(recency_.begin(), recency_.end(), context_len);
      GAUDI_ASSERT(pos != recency_.end(),
                   "decode-step cache recency list lost a resident entry");
      recency_.splice(recency_.begin(), recency_, pos);
    }
    return it->second;
  }
  auto& inserted = entries_[context_len];  // default: unmaterialized
  if (max_entries_ > 0) {
    recency_.push_front(context_len);
    // Evict from the cold end until we are back under the cap; the entry we
    // just inserted is at the hot end and always survives.
    while (entries_.size() > max_entries_) {
      const std::int64_t victim = recency_.back();
      recency_.pop_back();
      entries_.erase(victim);
      ++evictions_;
    }
  }
  return inserted;
}

void DecodeStepCache::materialize(std::int64_t context_len, Entry& e) {
  Graph g;
  e.step = build_gpt_decode_step(g, cfg_, context_len, seed_);
  e.compiled = rt_.compile(g, copts_);
  e.materialized = true;
}

const DecodeStepCache::Entry& DecodeStepCache::step(std::int64_t context_len) {
  Entry& e = touch(context_len);
  if (!e.materialized) materialize(context_len, e);
  return e;
}

std::string DecodeStepCache::time_key(std::int64_t context_len,
                                      graph::SchedulePolicy policy) const {
  graph::Fingerprint fp;
  fp.u64(graph::chip_fingerprint(rt_.config()));
  fp.i64(cfg_.vocab);
  fp.i64(cfg_.batch);
  fp.i64(cfg_.heads);
  fp.i64(cfg_.head_dim);
  fp.i64(cfg_.n_layers);
  fp.i64(cfg_.ffn_dim);
  fp.i64(cfg_.max_seq);
  fp.boolean(copts_.fuse_elementwise);
  fp.boolean(copts_.enforce_capacity);
  fp.u64(seed_);
  fp.i64(context_len);
  fp.u8(static_cast<std::uint8_t>(policy));
  std::ostringstream os;
  os << "decode-step:" << std::hex << fp.digest();
  return os.str();
}

sim::SimTime DecodeStepCache::step_time(std::int64_t context_len,
                                        const graph::RunOptions& opts) {
  Entry& e = touch(context_len);
  // The memo caches *fault-free* step times: a run with an enabled fault
  // injector may stretch or stall the makespan, so it must neither answer
  // from the memo nor poison it — mirror the runtime's fault resolution
  // (explicit opts pointer, else the environment) before consulting it.
  const sim::FaultInjector* faults = opts.faults != nullptr
                                         ? opts.faults
                                         : sim::fault_injector_from_env();
  const bool fault_run = faults != nullptr && faults->enabled();
  graph::TimingMemo& memo = graph::TimingMemo::global();
  const std::string key = time_key(context_len, opts.policy);
  if (!fault_run) {
    sim::SimTime cached{};
    if (memo.find_time(key, &cached)) return cached;
  }
  if (!e.materialized) materialize(context_len, e);
  graph::RunOptions ropts = opts;
  ropts.mode = tpc::ExecMode::kTiming;
  const sim::SimTime cost = rt_.run(e.compiled, {}, ropts).makespan;
  if (!fault_run) memo.insert_time(key, cost);
  return cost;
}

}  // namespace gaudi::nn

// Transformer encoder/decoder layer and feed-forward network.
//
// The layer profiled in the paper's §3.3 experiments is an attention block
// (projections + attention + residual + layernorm); the FFN sub-block is
// optional so both the §3.3 layer profiles (attention-only, matching the
// paper's reported totals) and the full end-to-end models (Figs 8, 9) build
// from the same type.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "nn/attention.hpp"
#include "nn/layers.hpp"

namespace gaudi::nn {

struct TransformerLayerConfig {
  std::int64_t d_model = 384;
  std::int64_t heads = 6;
  std::int64_t head_dim = 64;
  AttentionConfig attention{};
  /// FFN inner width; 0 disables the FFN sub-block.
  std::int64_t ffn_dim = 0;
  Activation ffn_activation = Activation::kGelu;
  float dropout_p = 0.0f;
};

class TransformerLayer {
 public:
  TransformerLayer(graph::Graph& g, ParamStore& params,
                   const TransformerLayerConfig& cfg, std::string name);

  /// x: [B*N, D]; returns [B*N, D].
  [[nodiscard]] graph::ValueId operator()(graph::Graph& g, ParamStore& params,
                                          graph::ValueId x, std::int64_t batch,
                                          std::int64_t seq_len) const;

 private:
  TransformerLayerConfig cfg_;
  std::string name_;
  MultiHeadAttention mha_;
  LayerNorm ln1_;
  std::optional<Linear> ffn_in_;
  std::optional<Linear> ffn_out_;
  std::optional<LayerNorm> ln2_;
};

}  // namespace gaudi::nn

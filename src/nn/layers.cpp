#include "nn/layers.hpp"

namespace gaudi::nn {

const char* activation_name(Activation a) {
  switch (a) {
    case Activation::kRelu: return "relu";
    case Activation::kLeakyRelu: return "leaky_relu";
    case Activation::kGelu: return "gelu";
    case Activation::kGlu: return "glu";
    case Activation::kElu: return "elu";
    case Activation::kSigmoid: return "sigmoid";
    case Activation::kTanh: return "tanh";
    case Activation::kIdentity: return "identity";
  }
  return "?";
}

graph::ValueId apply_activation(graph::Graph& g, Activation act, graph::ValueId x,
                                const std::string& label) {
  switch (act) {
    case Activation::kRelu:
      return g.unary(tpc::UnaryKind::kRelu, x, 1.0f, label + ".relu");
    case Activation::kLeakyRelu:
      return g.unary(tpc::UnaryKind::kLeakyRelu, x, 0.01f, label + ".leaky_relu");
    case Activation::kGelu:
      return g.unary(tpc::UnaryKind::kGelu, x, 1.0f, label + ".gelu");
    case Activation::kGlu:
      return g.glu(x, /*requires_recompile=*/true, label + ".glu");
    case Activation::kElu:
      return g.unary(tpc::UnaryKind::kElu, x, 1.0f, label + ".elu");
    case Activation::kSigmoid:
      return g.unary(tpc::UnaryKind::kSigmoid, x, 1.0f, label + ".sigmoid");
    case Activation::kTanh:
      return g.unary(tpc::UnaryKind::kTanh, x, 1.0f, label + ".tanh");
    case Activation::kIdentity:
      return x;
  }
  throw sim::InternalError("unhandled activation");
}

Linear::Linear(graph::Graph& g, ParamStore& params, std::int64_t in,
               std::int64_t out, std::string name, bool bias)
    : name_(std::move(name)) {
  w_ = params.create(g, tensor::Shape{{in, out}}, name_ + ".weight", Init::kNormal,
                     0.02f);
  if (bias) {
    b_ = params.create(g, tensor::Shape{{out}}, name_ + ".bias", Init::kZeros);
  }
}

graph::ValueId Linear::operator()(graph::Graph& g, graph::ValueId x) const {
  if (b_ != graph::kInvalidValue) {
    // The graph compiler fuses the bias add into the MME drain.
    return g.matmul_bias(x, w_, b_, name_ + ".matmul");
  }
  return g.matmul(x, w_, false, false, name_ + ".matmul");
}

LayerNorm::LayerNorm(graph::Graph& g, ParamStore& params, std::int64_t dim,
                     std::string name, float eps)
    : eps_(eps), name_(std::move(name)) {
  gamma_ = params.create(g, tensor::Shape{{dim}}, name_ + ".gamma", Init::kOnes);
  beta_ = params.create(g, tensor::Shape{{dim}}, name_ + ".beta", Init::kZeros);
}

graph::ValueId LayerNorm::operator()(graph::Graph& g, graph::ValueId x) const {
  return g.layernorm(x, gamma_, beta_, eps_, name_)[0];
}

Embedding::Embedding(graph::Graph& g, ParamStore& params, std::int64_t vocab,
                     std::int64_t dim, std::string name)
    : name_(std::move(name)) {
  table_ = params.create(g, tensor::Shape{{vocab, dim}}, name_ + ".table",
                         Init::kNormal, 0.02f);
}

graph::ValueId Embedding::operator()(graph::Graph& g, graph::ValueId ids) const {
  return g.embedding(table_, ids, name_);
}

}  // namespace gaudi::nn

// Basic layers: Linear, LayerNorm, Embedding, activations — each a small
// graph builder that lowers to the primitive ops SynapseAI maps per Table 1
// (the matmul of a Linear goes to the MME, its bias add to the TPC, ...).
#pragma once

#include <cstdint>
#include <string>

#include "graph/graph.hpp"
#include "nn/module.hpp"

namespace gaudi::nn {

/// Which activation a layer applies; mirrors the set evaluated in Fig 7 plus
/// the ELU the Linear Transformer defaults to.
enum class Activation : std::uint8_t {
  kRelu,
  kLeakyRelu,
  kGelu,
  kGlu,
  kElu,
  kSigmoid,
  kTanh,
  kIdentity,
};

[[nodiscard]] const char* activation_name(Activation a);

/// Applies `act` to `x`.  GLU halves the trailing dim (callers must have
/// produced a doubled projection) and is flagged `requires_recompile`,
/// modelling the missing first-class backend support the paper blames for
/// its MME blank area.
[[nodiscard]] graph::ValueId apply_activation(graph::Graph& g, Activation act,
                                              graph::ValueId x,
                                              const std::string& label);

/// y = x @ W + b; x is [T, in], W [in, out].
class Linear {
 public:
  Linear(graph::Graph& g, ParamStore& params, std::int64_t in, std::int64_t out,
         std::string name, bool bias = true);

  [[nodiscard]] graph::ValueId operator()(graph::Graph& g, graph::ValueId x) const;

  [[nodiscard]] graph::ValueId weight() const { return w_; }
  [[nodiscard]] graph::ValueId bias() const { return b_; }

 private:
  graph::ValueId w_;
  graph::ValueId b_ = graph::kInvalidValue;
  std::string name_;
};

/// Layer normalization over the trailing dim with learned gamma/beta.
class LayerNorm {
 public:
  LayerNorm(graph::Graph& g, ParamStore& params, std::int64_t dim, std::string name,
            float eps = 1e-5f);

  [[nodiscard]] graph::ValueId operator()(graph::Graph& g, graph::ValueId x) const;

 private:
  graph::ValueId gamma_;
  graph::ValueId beta_;
  float eps_;
  std::string name_;
};

/// Token/position embedding lookup.
class Embedding {
 public:
  Embedding(graph::Graph& g, ParamStore& params, std::int64_t vocab,
            std::int64_t dim, std::string name);

  [[nodiscard]] graph::ValueId operator()(graph::Graph& g, graph::ValueId ids) const;

  [[nodiscard]] graph::ValueId table() const { return table_; }

 private:
  graph::ValueId table_;
  std::string name_;
};

}  // namespace gaudi::nn

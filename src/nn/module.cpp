#include "nn/module.hpp"

namespace gaudi::nn {

graph::ValueId ParamStore::create(graph::Graph& g, tensor::Shape shape,
                                  std::string name, Init init, float scale) {
  const graph::ValueId id = g.param(std::move(shape), std::move(name));
  params_.push_back(id);
  specs_.emplace(id, Spec{init, scale, next_stream_++, false});
  return id;
}

void ParamStore::mark_buffer(graph::ValueId id) {
  auto it = specs_.find(id);
  GAUDI_CHECK(it != specs_.end(), "mark_buffer: unknown parameter id");
  it->second.buffer = true;
}

std::vector<graph::ValueId> ParamStore::trainable() const {
  std::vector<graph::ValueId> out;
  for (graph::ValueId id : params_) {
    if (!specs_.at(id).buffer) out.push_back(id);
  }
  return out;
}

std::unordered_map<graph::ValueId, tensor::Tensor> ParamStore::init_feeds(
    const graph::Graph& g) const {
  std::unordered_map<graph::ValueId, tensor::Tensor> feeds;
  for (graph::ValueId id : params_) {
    const Spec& spec = specs_.at(id);
    const tensor::Shape& shape = g.value(id).shape;
    const sim::CounterRng stream = rng_.stream(spec.stream);
    switch (spec.init) {
      case Init::kZeros:
        feeds.emplace(id, tensor::Tensor::zeros(shape));
        break;
      case Init::kOnes:
        feeds.emplace(id, tensor::Tensor::full(shape, 1.0f));
        break;
      case Init::kNormal:
        feeds.emplace(id, tensor::Tensor::normal(shape, stream, spec.scale));
        break;
      case Init::kUniform:
        feeds.emplace(id,
                      tensor::Tensor::uniform(shape, stream, -spec.scale, spec.scale));
        break;
    }
  }
  return feeds;
}

}  // namespace gaudi::nn

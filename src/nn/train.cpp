#include "nn/train.hpp"

#include <bit>
#include <cmath>
#include <utility>

#include "scaleout/snapshot.hpp"
#include "tensor/ops.hpp"

namespace gaudi::nn {

using graph::ValueId;
using tensor::Tensor;

namespace {

std::uint64_t f_bits(float v) { return std::bit_cast<std::uint32_t>(v); }
float bits_f(std::uint64_t v) {
  return std::bit_cast<float>(static_cast<std::uint32_t>(v));
}

}  // namespace

bool GradScaler::update(bool overflow) {
  if (overflow) {
    ++skipped_;
    streak_ = 0;
    scale_ = std::max(cfg_.min_scale, scale_ * cfg_.backoff_factor);
    return false;
  }
  if (++streak_ >= cfg_.growth_interval) {
    streak_ = 0;
    scale_ = std::min(cfg_.max_scale, scale_ * cfg_.growth_factor);
  }
  return true;
}

void GradScaler::restore(float scale, std::int32_t streak,
                         std::int64_t skipped) {
  GAUDI_CHECK(std::isfinite(scale) && scale >= cfg_.min_scale &&
                  scale <= cfg_.max_scale,
              "restored loss scale outside the configured [min, max] range");
  GAUDI_CHECK(streak >= 0 && streak < std::max(1, cfg_.growth_interval),
              "restored clean streak outside [0, growth_interval)");
  GAUDI_CHECK(skipped >= 0, "restored skipped-step count is negative");
  scale_ = scale;
  streak_ = streak;
  skipped_ = skipped;
}

TrainResult train_language_model(const TrainOptions& opts,
                                 const sim::ChipConfig& chip) {
  GAUDI_CHECK(opts.steps > 0, "training needs at least one step");
  LmConfig mcfg = opts.model;
  mcfg.training = true;
  mcfg.scaled_loss = opts.loss_scaling;

  graph::Graph g;
  const LanguageModel model = build_language_model(g, mcfg, opts.seed);
  graph::Graph ug;
  const OptimizerState ostate =
      build_update_graph(ug, g, model, opts.optimizer);
  const std::vector<ValueId> trainable = model.params.trainable();
  const std::vector<OptimizerState::StateRef> srefs = ostate.state_refs(ug);

  graph::Runtime rt(chip);
  graph::CompileOptions copts;
  copts.fuse_elementwise = opts.run.fuse_elementwise;
  copts.enforce_capacity = opts.run.account_memory;
  const graph::CompiledGraph cg = rt.compile(g, copts);
  const graph::CompiledGraph cug = rt.compile(ug, copts);

  // Model feeds: parameters (updated in place across steps), token batches,
  // and the loss-scale scalar rewritten before every run.
  std::unordered_map<ValueId, Tensor> feeds = model.params.init_feeds(g);
  sim::CounterRng data_rng{opts.seed ^ 0xDA7Au};
  if (!opts.resample_data) {
    // One fixed batch for the whole run (the historical loop).
    feeds.emplace(model.token_ids,
                  Tensor::random_tokens(
                      tensor::Shape{{mcfg.batch, mcfg.seq_len}},
                      data_rng.stream(1), mcfg.vocab));
    feeds.emplace(model.targets,
                  Tensor::random_tokens(tensor::Shape{{mcfg.tokens()}},
                                        data_rng.stream(2), mcfg.vocab));
  }
  if (model.causal_mask != graph::kInvalidValue) {
    feeds.emplace(model.causal_mask, make_causal_mask(mcfg.seq_len));
  }
  Tensor scale_feed = Tensor::zeros(tensor::Shape{{1}});
  if (model.loss_scale != graph::kInvalidValue) {
    feeds.emplace(model.loss_scale, scale_feed);
  }

  // Optimizer state, zero on the first step and fed back thereafter.
  std::unordered_map<ValueId, Tensor> state_feeds = ostate.initial_state(ug);

  GradScaler scaler(opts.scaler);
  TrainResult result;

  // Configuration fingerprint: every knob that must match for a resumed run
  // to be bitwise-identical to the uninterrupted one.  Floats ride as bit
  // patterns so the comparison is exact.
  const std::vector<std::pair<std::string, std::uint64_t>> fingerprint = [&] {
    const OptimizerConfig& oc = opts.optimizer;
    std::vector<std::pair<std::string, std::uint64_t>> fp;
    fp.emplace_back("model.arch", static_cast<std::uint64_t>(mcfg.arch));
    fp.emplace_back("model.vocab", static_cast<std::uint64_t>(mcfg.vocab));
    fp.emplace_back("model.batch", static_cast<std::uint64_t>(mcfg.batch));
    fp.emplace_back("model.seq_len", static_cast<std::uint64_t>(mcfg.seq_len));
    fp.emplace_back("model.layers", static_cast<std::uint64_t>(mcfg.n_layers));
    fp.emplace_back("model.heads", static_cast<std::uint64_t>(mcfg.heads));
    fp.emplace_back("model.head_dim",
                    static_cast<std::uint64_t>(mcfg.head_dim));
    fp.emplace_back("model.ffn_dim", static_cast<std::uint64_t>(mcfg.ffn_dim));
    fp.emplace_back("opt.kind", static_cast<std::uint64_t>(oc.kind));
    fp.emplace_back("opt.step", static_cast<std::uint64_t>(oc.step));
    fp.emplace_back("opt.lr_bits", f_bits(oc.lr));
    fp.emplace_back("opt.momentum_bits", f_bits(oc.momentum));
    fp.emplace_back("opt.beta1_bits", f_bits(oc.beta1));
    fp.emplace_back("opt.beta2_bits", f_bits(oc.beta2));
    fp.emplace_back("opt.eps_bits", f_bits(oc.eps));
    fp.emplace_back("scaler.init_scale_bits", f_bits(opts.scaler.init_scale));
    fp.emplace_back("scaler.growth_factor_bits",
                    f_bits(opts.scaler.growth_factor));
    fp.emplace_back("scaler.backoff_factor_bits",
                    f_bits(opts.scaler.backoff_factor));
    fp.emplace_back("scaler.growth_interval",
                    static_cast<std::uint64_t>(opts.scaler.growth_interval));
    fp.emplace_back("train.seed", opts.seed);
    fp.emplace_back("train.loss_scaling", opts.loss_scaling ? 1u : 0u);
    fp.emplace_back("train.bf16_grads", opts.bf16_grads ? 1u : 0u);
    fp.emplace_back("train.resample_data", opts.resample_data ? 1u : 0u);
    fp.emplace_back("rng.data_seed", data_rng.seed());
    fp.emplace_back("rng.data_stream", data_rng.stream_id());
    return fp;
  }();

  // Complete training state at `completed` finished steps, as a snapshot.
  // Sections share storage with the live feeds; the snapshot is serialized
  // (or sized) immediately, before the next step mutates them.
  const auto make_snapshot = [&](std::uint64_t completed) {
    scaleout::Snapshot snap;
    snap.step = completed;
    for (const auto& [key, value] : fingerprint) snap.add_meta(key, value);
    snap.add_meta("scaler.scale_bits", f_bits(scaler.scale()));
    snap.add_meta("scaler.streak",
                  static_cast<std::uint64_t>(scaler.clean_streak()));
    snap.add_meta("scaler.skipped",
                  static_cast<std::uint64_t>(scaler.skipped_steps()));
    snap.add_meta("train.data_cursor", completed);
    snap.add_meta("train.sdc_injections", result.sdc_injections);
    snap.add_meta("train.anomalies", result.anomalies);
    for (const ValueId p : trainable) snap.add(g.value(p).name, feeds.at(p));
    for (const OptimizerState::StateRef& ref : srefs) {
      snap.add(ref.name, state_feeds.at(ref.in));
    }
    return snap;
  };

  // Resume: restore the newest valid snapshot, or start fresh when the
  // directory holds none (noted in the report, never an error).
  std::int32_t start_step = 0;
  if (!opts.checkpoint_dir.empty() && opts.resume) {
    scaleout::SnapshotScan scan = scaleout::scan_snapshots(opts.checkpoint_dir);
    result.resume_report = scaleout::to_string(scan);
    if (!scan.found()) {
      result.resume_report += "resume: no valid snapshot, starting fresh\n";
    } else {
      const scaleout::Snapshot& snap = *scan.snapshot;
      for (const auto& [key, expected] : fingerprint) {
        const std::uint64_t got = snap.require_meta(key);
        if (got != expected) {
          throw sim::CheckpointShapeMismatch(
              "snapshot fingerprint mismatch for '" + key +
              "': snapshot has " + std::to_string(got) +
              ", this run expects " + std::to_string(expected));
        }
      }
      GAUDI_CHECK(snap.step < static_cast<std::uint64_t>(opts.steps),
                  "resume snapshot already covers the requested steps");
      const auto restore_tensor = [&](const graph::Graph& owner, ValueId v,
                                      std::unordered_map<ValueId, Tensor>& dst) {
        const graph::ValueInfo& info = owner.value(v);
        const Tensor& t = snap.require(info.name);
        if (!(t.shape() == info.shape) || t.dtype() != info.dtype) {
          throw sim::CheckpointShapeMismatch(
              "snapshot section '" + info.name + "' is " +
              t.shape().to_string() + " " +
              std::string(tensor::dtype_name(t.dtype())) +
              " but the model expects " + info.shape.to_string() + " " +
              std::string(tensor::dtype_name(info.dtype)));
        }
        dst[v] = t.clone();
      };
      for (const ValueId p : trainable) restore_tensor(g, p, feeds);
      for (const OptimizerState::StateRef& ref : srefs) {
        restore_tensor(ug, ref.in, state_feeds);
      }
      scaler.restore(
          bits_f(snap.require_meta("scaler.scale_bits")),
          static_cast<std::int32_t>(snap.require_meta("scaler.streak")),
          static_cast<std::int64_t>(snap.require_meta("scaler.skipped")));
      result.sdc_injections =
          static_cast<std::size_t>(snap.require_meta("train.sdc_injections"));
      result.anomalies =
          static_cast<std::size_t>(snap.require_meta("train.anomalies"));
      result.resumed_from_step = static_cast<std::int64_t>(snap.step);
      start_step = static_cast<std::int32_t>(snap.step);
    }
  }

  // Checkpoint cadence: fixed interval up front; Young/Daly sized lazily
  // from the first snapshot's real payload bytes (0 = not yet computed).
  const bool checkpointing =
      !opts.checkpoint_dir.empty() &&
      opts.checkpoint_policy != scaleout::RecoveryPolicy::kNone;
  std::uint64_t interval = 0;
  if (checkpointing &&
      opts.checkpoint_policy == scaleout::RecoveryPolicy::kFixedInterval) {
    GAUDI_CHECK(opts.checkpoint_every > 0,
                "checkpoint_every must be positive for kFixedInterval");
    interval = static_cast<std::uint64_t>(opts.checkpoint_every);
  }

  result.steps.reserve(static_cast<std::size_t>(opts.steps - start_step));

  for (std::int32_t step = start_step; step < opts.steps; ++step) {
    if (opts.resample_data) {
      // Fresh batch per step, keyed by the step index so the data order is
      // a pure function of (seed, step) — the checkpointed cursor suffices.
      const std::uint64_t cursor = static_cast<std::uint64_t>(step) + 1;
      feeds[model.token_ids] = Tensor::random_tokens(
          tensor::Shape{{mcfg.batch, mcfg.seq_len}},
          data_rng.stream(1).stream(cursor), mcfg.vocab);
      feeds[model.targets] = Tensor::random_tokens(
          tensor::Shape{{mcfg.tokens()}}, data_rng.stream(2).stream(cursor),
          mcfg.vocab);
    }
    const float scale = opts.loss_scaling ? scaler.scale() : 1.0f;
    if (model.loss_scale != graph::kInvalidValue) {
      scale_feed.f32()[0] = scale;
    }

    graph::RunOptions ro = opts.run;
    ro.mode = tpc::ExecMode::kFunctional;
    // Even steps of the epoch counter belong to the model graph, odd to the
    // update graph, so SDC sites never collide across the two.
    ro.fault_epoch = static_cast<std::uint64_t>(step) * 2;
    ro.corrupt_value = (step == opts.corrupt_grad_step &&
                        !model.grad_values.empty())
                           ? model.grad_values.front()
                           : graph::kInvalidValue;
    graph::ProfileResult r = rt.run(cg, feeds, ro);
    result.sdc_injections += r.sdc_injections.size();
    result.anomalies += r.anomalies.size();

    TrainStepInfo info;
    info.loss = r.outputs.at(model.loss).f32()[0];
    info.scale = scale;

    // Host-side gradient audit: one sweep over every (optionally
    // bf16-stored) gradient decides overflow before any update applies.
    std::vector<Tensor> grads;
    grads.reserve(trainable.size());
    for (const ValueId gv : model.grad_values) {
      Tensor t = r.outputs.at(gv).clone();
      if (opts.bf16_grads) {
        for (float& x : t.f32()) x = tensor::round_bf16(x);
      }
      info.grad_stats.merge(tensor::ops::numerics_sweep(t));
      grads.push_back(std::move(t));
    }
    const bool overflow = info.grad_stats.anomalous();
    info.applied = opts.loss_scaling ? scaler.update(overflow) : true;

    if (info.applied) {
      // Unscale into the f32 master gradients and run the update graph.
      const float inv = 1.0f / scale;
      std::unordered_map<ValueId, Tensor> ufeeds = state_feeds;
      for (std::size_t i = 0; i < ostate.slots.size(); ++i) {
        const OptimizerSlot& slot = ostate.slots[i];
        if (scale != 1.0f) {
          for (float& x : grads[i].f32()) x *= inv;
        }
        ufeeds.emplace(slot.param, feeds.at(trainable[i]));
        ufeeds.emplace(slot.grad, std::move(grads[i]));
      }
      graph::RunOptions uro = opts.run;
      uro.mode = tpc::ExecMode::kFunctional;
      uro.fault_epoch = static_cast<std::uint64_t>(step) * 2 + 1;
      uro.corrupt_value = graph::kInvalidValue;
      graph::ProfileResult ur = rt.run(cug, ufeeds, uro);
      result.sdc_injections += ur.sdc_injections.size();
      result.anomalies += ur.anomalies.size();
      for (std::size_t i = 0; i < ostate.slots.size(); ++i) {
        const OptimizerSlot& slot = ostate.slots[i];
        feeds[trainable[i]] = ur.outputs.at(slot.new_param);
        for (const auto [in, outv] :
             {std::pair{slot.vel_in, slot.vel_out},
              std::pair{slot.m_in, slot.m_out},
              std::pair{slot.v_in, slot.v_out}}) {
          if (in != graph::kInvalidValue) {
            state_feeds[in] = ur.outputs.at(outv);
          }
        }
      }
    }
    result.steps.push_back(info);

    if (checkpointing) {
      const std::uint64_t done = static_cast<std::uint64_t>(step) + 1;
      if (interval == 0) {
        const scaleout::Snapshot probe = make_snapshot(done);
        interval = scaleout::young_daly_interval_steps(
            opts.nominal_step_time,
            scaleout::checkpoint_save_time(scaleout::backed_checkpoint_config(
                probe, opts.checkpoint_cost)),
            opts.mtbf_steps);
      }
      if (done % interval == 0 ||
          done == static_cast<std::uint64_t>(opts.steps)) {
        scaleout::SaveOptions sopts;
        sopts.faults = opts.run.faults;
        sopts.site = done;
        result.last_checkpoint =
            scaleout::save_snapshot(opts.checkpoint_dir, make_snapshot(done),
                                    sopts);
        ++result.checkpoints_saved;
      }
    }
  }

  result.skipped_steps = scaler.skipped_steps();
  result.final_scale = opts.loss_scaling ? scaler.scale() : 1.0f;
  result.final_loss = result.steps.back().loss;
  result.finite = std::isfinite(result.final_loss);
  return result;
}

}  // namespace gaudi::nn

#include "nn/train.hpp"

#include <cmath>
#include <utility>

#include "tensor/ops.hpp"

namespace gaudi::nn {

using graph::ValueId;
using tensor::Tensor;

bool GradScaler::update(bool overflow) {
  if (overflow) {
    ++skipped_;
    streak_ = 0;
    scale_ = std::max(cfg_.min_scale, scale_ * cfg_.backoff_factor);
    return false;
  }
  if (++streak_ >= cfg_.growth_interval) {
    streak_ = 0;
    scale_ = std::min(cfg_.max_scale, scale_ * cfg_.growth_factor);
  }
  return true;
}

TrainResult train_language_model(const TrainOptions& opts,
                                 const sim::ChipConfig& chip) {
  GAUDI_CHECK(opts.steps > 0, "training needs at least one step");
  LmConfig mcfg = opts.model;
  mcfg.training = true;
  mcfg.scaled_loss = opts.loss_scaling;

  graph::Graph g;
  const LanguageModel model = build_language_model(g, mcfg, opts.seed);
  graph::Graph ug;
  const OptimizerState ostate =
      build_update_graph(ug, g, model, opts.optimizer);
  const std::vector<ValueId> trainable = model.params.trainable();

  graph::Runtime rt(chip);
  graph::CompileOptions copts;
  copts.fuse_elementwise = opts.run.fuse_elementwise;
  copts.enforce_capacity = opts.run.account_memory;
  const graph::CompiledGraph cg = rt.compile(g, copts);
  const graph::CompiledGraph cug = rt.compile(ug, copts);

  // Model feeds: parameters (updated in place across steps), a fixed batch,
  // and the loss-scale scalar rewritten before every run.
  std::unordered_map<ValueId, Tensor> feeds = model.params.init_feeds(g);
  sim::CounterRng data_rng{opts.seed ^ 0xDA7Au};
  feeds.emplace(model.token_ids,
                Tensor::random_tokens(
                    tensor::Shape{{mcfg.batch, mcfg.seq_len}},
                    data_rng.stream(1), mcfg.vocab));
  feeds.emplace(model.targets,
                Tensor::random_tokens(tensor::Shape{{mcfg.tokens()}},
                                      data_rng.stream(2), mcfg.vocab));
  if (model.causal_mask != graph::kInvalidValue) {
    feeds.emplace(model.causal_mask, make_causal_mask(mcfg.seq_len));
  }
  Tensor scale_feed = Tensor::zeros(tensor::Shape{{1}});
  if (model.loss_scale != graph::kInvalidValue) {
    feeds.emplace(model.loss_scale, scale_feed);
  }

  // Optimizer state, zero on the first step and fed back thereafter.
  std::unordered_map<ValueId, Tensor> state_feeds = ostate.initial_state(ug);

  GradScaler scaler(opts.scaler);
  TrainResult result;
  result.steps.reserve(static_cast<std::size_t>(opts.steps));

  for (std::int32_t step = 0; step < opts.steps; ++step) {
    const float scale = opts.loss_scaling ? scaler.scale() : 1.0f;
    if (model.loss_scale != graph::kInvalidValue) {
      scale_feed.f32()[0] = scale;
    }

    graph::RunOptions ro = opts.run;
    ro.mode = tpc::ExecMode::kFunctional;
    // Even steps of the epoch counter belong to the model graph, odd to the
    // update graph, so SDC sites never collide across the two.
    ro.fault_epoch = static_cast<std::uint64_t>(step) * 2;
    ro.corrupt_value = (step == opts.corrupt_grad_step &&
                        !model.grad_values.empty())
                           ? model.grad_values.front()
                           : graph::kInvalidValue;
    graph::ProfileResult r = rt.run(cg, feeds, ro);
    result.sdc_injections += r.sdc_injections.size();
    result.anomalies += r.anomalies.size();

    TrainStepInfo info;
    info.loss = r.outputs.at(model.loss).f32()[0];
    info.scale = scale;

    // Host-side gradient audit: one sweep over every (optionally
    // bf16-stored) gradient decides overflow before any update applies.
    std::vector<Tensor> grads;
    grads.reserve(trainable.size());
    for (const ValueId gv : model.grad_values) {
      Tensor t = r.outputs.at(gv).clone();
      if (opts.bf16_grads) {
        for (float& x : t.f32()) x = tensor::round_bf16(x);
      }
      info.grad_stats.merge(tensor::ops::numerics_sweep(t));
      grads.push_back(std::move(t));
    }
    const bool overflow = info.grad_stats.anomalous();
    info.applied = opts.loss_scaling ? scaler.update(overflow) : true;

    if (info.applied) {
      // Unscale into the f32 master gradients and run the update graph.
      const float inv = 1.0f / scale;
      std::unordered_map<ValueId, Tensor> ufeeds = state_feeds;
      for (std::size_t i = 0; i < ostate.slots.size(); ++i) {
        const OptimizerSlot& slot = ostate.slots[i];
        if (scale != 1.0f) {
          for (float& x : grads[i].f32()) x *= inv;
        }
        ufeeds.emplace(slot.param, feeds.at(trainable[i]));
        ufeeds.emplace(slot.grad, std::move(grads[i]));
      }
      graph::RunOptions uro = opts.run;
      uro.mode = tpc::ExecMode::kFunctional;
      uro.fault_epoch = static_cast<std::uint64_t>(step) * 2 + 1;
      uro.corrupt_value = graph::kInvalidValue;
      graph::ProfileResult ur = rt.run(cug, ufeeds, uro);
      result.sdc_injections += ur.sdc_injections.size();
      result.anomalies += ur.anomalies.size();
      for (std::size_t i = 0; i < ostate.slots.size(); ++i) {
        const OptimizerSlot& slot = ostate.slots[i];
        feeds[trainable[i]] = ur.outputs.at(slot.new_param);
        for (const auto [in, outv] :
             {std::pair{slot.vel_in, slot.vel_out},
              std::pair{slot.m_in, slot.m_out},
              std::pair{slot.v_in, slot.v_out}}) {
          if (in != graph::kInvalidValue) {
            state_feeds[in] = ur.outputs.at(outv);
          }
        }
      }
    }
    result.steps.push_back(info);
  }

  result.skipped_steps = scaler.skipped_steps();
  result.final_scale = opts.loss_scaling ? scaler.scale() : 1.0f;
  result.final_loss = result.steps.back().loss;
  result.finite = std::isfinite(result.final_loss);
  return result;
}

}  // namespace gaudi::nn

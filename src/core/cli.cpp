#include "core/cli.hpp"

#include <cmath>
#include <optional>
#include <sstream>

#include <fstream>

#include "core/advisor.hpp"
#include "core/batch.hpp"
#include "core/experiments.hpp"
#include "core/html_report.hpp"
#include "core/table.hpp"
#include "graph/printer.hpp"
#include "graph/runtime.hpp"
#include "nn/optimizer.hpp"
#include "nn/train.hpp"
#include "graph/timing_memo.hpp"
#include "scaleout/checkpoint.hpp"
#include "serve/cluster.hpp"
#include "serve/scheduler.hpp"
#include "serve/workload.hpp"
#include "sim/error.hpp"
#include "sim/fault.hpp"
#include "sim/numerics.hpp"

namespace gaudi::core {

namespace {

constexpr const char* kUsage = R"(gaudisim — Gaudi-class accelerator simulator (SC-W 2023 reproduction)

usage: gaudisim_cli <command> [options]

commands:
  op-mapping                     print the operation->engine table (Table 1)
  mme-vs-tpc [--sizes a,b,c]     MME vs TPC batched matmul (Table 2)
  profile-layer [options]        profile one Transformer layer (Figs 4-7)
      --attention softmax|linear|performer|linformer|local   (softmax)
      --feature-map relu|leaky_relu|gelu|glu|elu             (elu)
      --seq N --batch B --heads H --head-dim D --ffn F
      --policy barrier|overlap   scheduler policy             (barrier)
      --fuse                     enable element-wise fusion
      --validate                 run the trace invariant validator
      --compile-stats            print per-pass compiler timings and plans
      --trace FILE               write a Chrome trace
      --html FILE                write a self-contained HTML report
      --seed N                   execution seed               (0x6A0D1)
      --guard off|warn|trap      numerics guard policy (default: GAUDI_GUARD)
      --faults                   inject deterministic hardware faults
      --fault-seed N --mtbf N    fault seed / MTBF in steps (stress profile
                                 when --mtbf is omitted)
      --sdc-rate R               per-node HBM bit-flip probability (0)
  profile-model [options]        profile an LLM training step (Figs 8-9)
      --arch gpt2|bert           (gpt2)
      --seq N --batch B --layers L
      --optimizer none|sgd|sgd_momentum|adam                  (none)
      --policy barrier|overlap --fuse --validate --trace FILE
      --compile-stats            print per-pass compiler timings and plans
      --dot FILE                 write the graph as Graphviz DOT
      --seed N --guard P --faults --fault-seed N --mtbf N --sdc-rate R
  train [options]                run a bf16 training loop (functional) with
                                 dynamic loss scaling and the numerics guard
      --arch gpt2|bert           tiny config of the arch      (gpt2)
      --steps N                  training steps               (8)
      --optimizer sgd|sgd_momentum|adam                       (sgd)
      --no-loss-scaling          differentiate the raw loss; apply every step
      --no-bf16-grads            keep gradients in f32
      --init-scale S             starting loss scale          (65536)
      --growth-interval N        clean steps before scale-up  (50)
      --corrupt-step N           overwrite a gradient element with NaN at
                                 step N (deterministic SDC stand-in)
      --guard off|warn|trap      numerics guard policy (default: GAUDI_GUARD)
      --sdc-rate R --fault-seed N   seeded HBM bit flips in live buffers
      --seed N                   model/data seed              (0x7A11)
      --checkpoint-dir DIR       write crash-consistent snapshots under DIR
      --checkpoint-every N       snapshot every N steps       (1)
      --resume                   resume from the newest valid snapshot in
                                 DIR (empty or missing DIR: fresh start)
      --resample-data            draw a fresh token batch per step; the
                                 data-order cursor rides in the snapshot
  train-resilient [options]      simulate an N-step run under faults with
                                 checkpoint/rollback recovery
      --steps N                  useful steps to complete     (1000)
      --step-ms T                nominal step time in ms      (300)
      --chips P                  chips in the box             (8)
      --mtbf N                   mean steps between failures  (200)
      --recovery none|fixed|young-daly                        (young-daly)
      --interval N               checkpoint interval for 'fixed'
      --fault-seed N             fault schedule seed          (0xFA517)
  serve [options]                multi-tenant serving: continuous batching
                                 over a paged KV cache, SLO tail metrics
      --rate R                   Poisson arrival rate, req/s  (8)
      --requests N               requests in the stream       (32)
      --prompt-min N --prompt-max N    prompt length range    (64..192)
      --output-min N --output-max N    output length range    (16..64)
      --priorities N             priority levels, drawn uniformly (1)
      --deadline-ms T            per-request completion SLO; 0 = none
      --arrivals FILE            replay a trace instead of Poisson
                                 (arrival_ms,prompt,output[,priority
                                 [,deadline_ms]] per line, # comments)
      --max-batch N              concurrent batch slots       (8)
      --prefill-chunk N          prompt tokens prefilled per iteration (128)
      --ctx-bucket N             context-length bucket for compiled steps (64)
      --block-tokens N           KV block size in tokens      (64)
      --kv-mb N                  KV pool budget in MiB        (64)
      --cache-cap N              LRU cap on compiled decode steps; 0 = all
      --seed N                   workload seed                (0x5E21E)
      --faults                   inject chip failures / stalls / stragglers
      --fault-seed N             fault schedule seed          (0xFA517)
      --mtbf N                   mean iterations between failures; absent
                                 with --faults = stress rates
      --retry-max N              chip-failure retries before kFailed (3)
      --watchdog-ms T            abort a request stalled this long; 0 = off
      --shed-queue-depth N       shed lowest-priority arrivals past this
                                 backlog; 0 = off
      --shed-free-blocks N       shed arrivals when free KV blocks dip
                                 below N; 0 = off
      --retry-backoff-ms T       base re-queue delay after a chip failure (5)
      --retry-backoff-max-ms T   ceiling on the doubled backoff     (5000)
      --timing-only on|off       memoized timing fast path (default:
                                 GAUDI_TIMING_ONLY; reports are identical)
  serve-cluster [options]        route one stream across N serving replicas:
                                 failover with KV re-prefill, hedged
                                 requests, per-replica circuit breakers,
                                 live KV migration and graceful draining
                                 (accepts every serve option above except
                                 --sdc-rate; --mtbf is per replica)
      --replicas N               serving replicas               (2)
      --lb P                     round-robin|jsq|least-kv       (round-robin)
      --heartbeat-ms T           replica heartbeat period       (2)
      --suspicion-ms T           silence before a replica is marked down (10)
      --hedge-ms T               duplicate a request with no first token
                                 after T; 0 = off
      --no-breaker               disable the per-replica circuit breaker
      --breaker-window N         sliding outcome window         (8)
      --breaker-min N            samples before the breaker may open (4)
      --breaker-threshold R      failure fraction that opens    (0.5)
      --breaker-cooldown-ms T    open -> half-open probe delay  (100)
      --migrate                  live KV migration: evacuate degraded or
                                 draining replicas by streaming paged KV
                                 blocks over the fabric (no re-prefill)
      --migration-chunk-blocks N paged KV blocks per migration chunk (4)
      --drain-replica R          drain replica R: stop new dispatch, move
                                 its work elsewhere, finish with no failures
      --drain-at-ms T            simulated instant the drain starts  (0)
      --health-window-ms T       sliding window for the replica health
                                 score                          (50)
      --degraded-after N         straggler/HBM-stall events inside the
                                 window before a replica is degraded (3)
  batch FILE [options]           run a declarative experiment grid: FILE
                                 sweeps {command, axes, seeds, repeats}
                                 (see examples/serving_sweep.cfg); replicas
                                 run in parallel, stats reduce to
                                 n/mean/p50/p99 per cell
      --csv FILE                 write the byte-deterministic CSV
      --threads N                replica worker threads; 0 = hardware, 1 =
                                 serial (same output either way)
      --timing-only on|off       default for experiments that do not choose
  help                           this text

Setting GAUDI_VALIDATE=1 in the environment validates every scheduled
trace, same as passing --validate.  GAUDI_FAULTS=1 injects faults into
every scheduled trace (seeded by GAUDI_FAULT_SEED), same as --faults.
)";

nn::AttentionKind parse_attention(const std::string& s) {
  if (s == "softmax") return nn::AttentionKind::kSoftmax;
  if (s == "linear") return nn::AttentionKind::kLinear;
  if (s == "performer") return nn::AttentionKind::kPerformer;
  if (s == "linformer") return nn::AttentionKind::kLinformer;
  if (s == "local") return nn::AttentionKind::kLocal;
  throw sim::InvalidArgument("unknown attention mechanism: " + s);
}

nn::Activation parse_activation(const std::string& s) {
  if (s == "relu") return nn::Activation::kRelu;
  if (s == "leaky_relu") return nn::Activation::kLeakyRelu;
  if (s == "gelu") return nn::Activation::kGelu;
  if (s == "glu") return nn::Activation::kGlu;
  if (s == "elu") return nn::Activation::kElu;
  throw sim::InvalidArgument("unknown feature map: " + s);
}

graph::SchedulePolicy parse_policy(const std::string& s) {
  if (s == "barrier") return graph::SchedulePolicy::kBarrier;
  if (s == "overlap") return graph::SchedulePolicy::kOverlap;
  throw sim::InvalidArgument("unknown scheduler policy: " + s);
}

/// Parses --guard into an explicit policy override; absent defers to the
/// GAUDI_GUARD environment variable (a bare --guard flag means warn).
std::optional<sim::NumericsPolicy> parse_guard(ArgParser& args) {
  const std::string s = args.get("guard", "\x01");
  if (s == "\x01") return std::nullopt;
  if (s == "off") return sim::NumericsPolicy::kOff;
  if (s.empty() || s == "warn") return sim::NumericsPolicy::kWarn;
  if (s == "trap") return sim::NumericsPolicy::kTrap;
  throw sim::InvalidArgument("unknown guard policy: " + s +
                             " (expected off|warn|trap)");
}

/// `parse_i64`'s floating-point sibling: rejects non-numeric input and
/// trailing garbage with an InvalidArgument naming `what`.
double parse_f64(const std::string& text, const std::string& what) {
  std::size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &pos);
  } catch (const std::exception&) {
    throw sim::InvalidArgument(what + " expects a number, got '" + text + "'");
  }
  if (pos != text.size()) {
    throw sim::InvalidArgument(what + " expects a number, got '" + text +
                               "' (trailing '" + text.substr(pos) + "')");
  }
  return value;
}

/// Parses --faults / --fault-seed / --mtbf / --sdc-rate into an injector.
/// Disabled (all rates zero) when --faults is absent and --sdc-rate is zero;
/// --mtbf picks calibrated rates, its absence the aggressive stress profile.
/// --sdc-rate layers HBM bit flips on top (or alone, without --faults).
sim::FaultInjector parse_fault_injector(ArgParser& args,
                                        std::uint32_t chips = 8) {
  const bool on = args.has("faults");
  const auto seed =
      static_cast<std::uint64_t>(args.get_int("fault-seed", 0xFA517));
  const std::int64_t mtbf = args.get_int("mtbf", 0);
  const double sdc_rate =
      parse_f64(args.get("sdc-rate", "0"), "option --sdc-rate");
  GAUDI_CHECK(sdc_rate >= 0.0 && sdc_rate <= 1.0 && std::isfinite(sdc_rate),
              "--sdc-rate expects a probability in [0, 1]");
  // Validate before the disabled early-return: `serve --mtbf -5` without
  // --faults must still be rejected, not silently accepted.
  GAUDI_CHECK(mtbf >= 0, "--mtbf expects a positive step count");
  if (!on && sdc_rate == 0.0) return {};
  sim::FaultProfile profile =
      !on ? sim::FaultProfile::disabled()
      : mtbf > 0
          ? sim::FaultProfile::from_mtbf_steps(static_cast<double>(mtbf), chips)
          : sim::FaultProfile::stress();
  profile.sdc_bit_flip_rate = sdc_rate;
  return sim::FaultInjector{seed, profile};
}

/// Parses --timing-only on|off (a bare flag means on); absent defers to the
/// GAUDI_TIMING_ONLY environment variable.
std::optional<bool> parse_timing_only(ArgParser& args) {
  const std::string s = args.get("timing-only", "\x01");
  if (s == "\x01") return std::nullopt;
  if (s.empty() || s == "on") return true;
  if (s == "off") return false;
  throw sim::InvalidArgument("--timing-only expects on|off, got '" + s + "'");
}

void check_unused(const ArgParser& args) {
  const auto unused = args.unused();
  if (!unused.empty()) {
    throw sim::InvalidArgument("unknown option: --" + unused.front());
  }
}

void print_profile(std::ostream& out, const std::string& title,
                   const graph::ProfileResult& result,
                   const std::string& trace_path,
                   const std::string& html_path = "") {
  const TraceSummary summary = summarize(result.trace);
  out << to_report(summary, title);
  out << result.trace.ascii_timeline(90);
  out << "peak HBM: "
      << TextTable::num(static_cast<double>(result.hbm_peak_bytes) / (1 << 30), 2)
      << " GB of 32 GB\n";
  if (result.guard_policy != sim::NumericsPolicy::kOff) {
    out << "guard: " << sim::numerics_policy_name(result.guard_policy)
        << ", swept " << result.numerics.count << " elements, "
        << result.sdc_injections.size() << " bit flips injected, "
        << result.anomalies.size() << " anomalies\n";
    if (!result.anomalies.empty()) {
      out << result.anomalies.front().report << "\n";
    }
  }
  AdvisorInput in;
  in.summary = summary;
  out << format_findings(advise(in));
  if (!trace_path.empty()) {
    result.trace.write_chrome_json(trace_path);
    out << "chrome trace written to " << trace_path << "\n";
  }
  if (!html_path.empty()) {
    write_html_report(html_path, title, result.trace, sim::ChipConfig::hls1());
    out << "HTML report written to " << html_path << "\n";
  }
}

int cmd_op_mapping(std::ostream& out) {
  out << format_op_mapping(run_op_mapping_probe());
  return 0;
}

int cmd_mme_vs_tpc(ArgParser& args, std::ostream& out) {
  std::vector<std::int64_t> sizes;
  std::stringstream ss(args.get("sizes", "128,256,512,1024,2048"));
  for (std::string part; std::getline(ss, part, ',');) {
    sizes.push_back(parse_i64(part, "option --sizes"));
  }
  check_unused(args);
  out << format_mme_vs_tpc(run_mme_vs_tpc(sim::ChipConfig::hls1(), sizes));
  return 0;
}

int cmd_profile_layer(ArgParser& args, std::ostream& out) {
  LayerExperiment exp;
  exp.attention.kind = parse_attention(args.get("attention", "softmax"));
  exp.attention.feature_map = parse_activation(args.get("feature-map", "elu"));
  exp.seq_len = args.get_int("seq", exp.seq_len);
  exp.batch = args.get_int("batch", exp.batch);
  exp.heads = args.get_int("heads", exp.heads);
  exp.head_dim = args.get_int("head-dim", exp.head_dim);
  exp.ffn_dim = args.get_int("ffn", exp.ffn_dim);
  exp.policy = parse_policy(args.get("policy", "barrier"));
  const bool fuse = args.has("fuse");
  const bool validate = args.has("validate");
  const bool compile_stats = args.has("compile-stats");
  const std::string trace_path = args.get("trace", "");
  const std::string html_path = args.get("html", "");
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 0x6A0D1));
  const std::optional<sim::NumericsPolicy> guard = parse_guard(args);
  const sim::FaultInjector faults = parse_fault_injector(args);
  check_unused(args);

  // Rebuild the layer graph here so fusion can be applied.
  graph::Graph g;
  nn::ParamStore params(0x1A1E);
  nn::TransformerLayerConfig layer_cfg;
  layer_cfg.d_model = exp.heads * exp.head_dim;
  layer_cfg.heads = exp.heads;
  layer_cfg.head_dim = exp.head_dim;
  layer_cfg.attention = exp.attention;
  layer_cfg.ffn_dim = exp.ffn_dim;
  nn::TransformerLayer layer(g, params, layer_cfg, "layer");
  const graph::ValueId x =
      g.input(tensor::Shape{{exp.batch * exp.seq_len, layer_cfg.d_model}},
              tensor::DType::F32, "x");
  g.mark_output(layer(g, params, x, exp.batch, exp.seq_len));

  graph::Runtime rt(sim::ChipConfig::hls1());
  graph::CompileOptions copts;
  copts.fuse_elementwise = fuse;
  const graph::CompiledGraph compiled = rt.compile(g, copts);
  if (compile_stats) out << compiled.stats.to_string();
  graph::RunOptions opts;
  opts.mode = tpc::ExecMode::kTiming;
  opts.policy = exp.policy;
  opts.validate = validate;
  opts.seed = seed;
  opts.guard = guard;
  if (faults.enabled()) opts.faults = &faults;
  print_profile(out,
                std::string("layer / ") +
                    nn::attention_kind_name(exp.attention.kind),
                rt.run(compiled, {}, opts), trace_path, html_path);
  return 0;
}

int cmd_profile_model(ArgParser& args, std::ostream& out) {
  const std::string arch = args.get("arch", "gpt2");
  nn::LmConfig cfg = arch == "bert" ? nn::LmConfig::bert_paper()
                     : arch == "gpt2"
                         ? nn::LmConfig::gpt2_paper()
                         : throw sim::InvalidArgument("unknown arch: " + arch);
  cfg.seq_len = args.get_int("seq", cfg.seq_len);
  cfg.batch = args.get_int("batch", cfg.batch);
  cfg.n_layers = args.get_int("layers", cfg.n_layers);
  const graph::SchedulePolicy policy = parse_policy(args.get("policy", "barrier"));
  const bool fuse = args.has("fuse");
  const bool validate = args.has("validate");
  const bool compile_stats = args.has("compile-stats");
  const std::string optimizer = args.get("optimizer", "none");
  const std::string trace_path = args.get("trace", "");
  const std::string dot_path = args.get("dot", "");
  const std::string html_path = args.get("html", "");
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 0x6A0D1));
  const std::optional<sim::NumericsPolicy> guard = parse_guard(args);
  const sim::FaultInjector faults = parse_fault_injector(args);
  check_unused(args);

  graph::Graph g;
  const nn::LanguageModel model = nn::build_language_model(g, cfg);
  if (optimizer != "none") {
    nn::OptimizerConfig ocfg;
    if (optimizer == "sgd") {
      ocfg.kind = nn::OptimizerKind::kSgd;
    } else if (optimizer == "sgd_momentum") {
      ocfg.kind = nn::OptimizerKind::kSgdMomentum;
    } else if (optimizer == "adam") {
      ocfg.kind = nn::OptimizerKind::kAdam;
    } else {
      throw sim::InvalidArgument("unknown optimizer: " + optimizer);
    }
    (void)nn::append_optimizer(g, model, ocfg);
  }

  if (!dot_path.empty()) {
    graph::write_dot(g, dot_path);
    out << "graph DOT written to " << dot_path << "\n";
  }

  graph::Runtime rt(sim::ChipConfig::hls1());
  graph::CompileOptions copts;
  copts.fuse_elementwise = fuse;
  const graph::CompiledGraph compiled = rt.compile(g, copts);
  if (compile_stats) out << compiled.stats.to_string();
  graph::RunOptions opts;
  opts.mode = tpc::ExecMode::kTiming;
  opts.policy = policy;
  opts.validate = validate;
  opts.seed = seed;
  opts.guard = guard;
  if (faults.enabled()) opts.faults = &faults;
  out << "model: " << nn::lm_arch_name(cfg.arch) << ", "
      << model.param_count(g) << " parameters, " << g.num_nodes()
      << " graph nodes\n";
  print_profile(out, std::string(nn::lm_arch_name(cfg.arch)) + " training step",
                rt.run(compiled, {}, opts), trace_path, html_path);
  return 0;
}

int cmd_train(ArgParser& args, std::ostream& out) {
  nn::TrainOptions topts;
  const std::string arch = args.get("arch", "gpt2");
  if (arch == "gpt2") {
    topts.model = nn::LmConfig::tiny(nn::LmArch::kGpt2);
  } else if (arch == "bert") {
    topts.model = nn::LmConfig::tiny(nn::LmArch::kBert);
  } else {
    throw sim::InvalidArgument("unknown arch: " + arch);
  }
  topts.steps = static_cast<std::int32_t>(args.get_int("steps", 8));
  const std::string optimizer = args.get("optimizer", "sgd");
  if (optimizer == "sgd") {
    topts.optimizer.kind = nn::OptimizerKind::kSgd;
  } else if (optimizer == "sgd_momentum") {
    topts.optimizer.kind = nn::OptimizerKind::kSgdMomentum;
  } else if (optimizer == "adam") {
    topts.optimizer.kind = nn::OptimizerKind::kAdam;
  } else {
    throw sim::InvalidArgument("unknown optimizer: " + optimizer);
  }
  topts.loss_scaling = !args.has("no-loss-scaling");
  topts.bf16_grads = !args.has("no-bf16-grads");
  topts.scaler.init_scale =
      static_cast<float>(args.get_int("init-scale", 65536));
  topts.scaler.growth_interval =
      static_cast<std::int32_t>(args.get_int("growth-interval", 50));
  topts.corrupt_grad_step =
      static_cast<std::int32_t>(args.get_int("corrupt-step", -1));
  topts.seed = static_cast<std::uint64_t>(args.get_int("seed", 0x7A11));
  topts.checkpoint_dir = args.get("checkpoint-dir", "");
  topts.checkpoint_every =
      static_cast<std::int32_t>(args.get_int("checkpoint-every", 1));
  topts.resume = args.has("resume");
  topts.resample_data = args.has("resample-data");
  topts.run.guard = parse_guard(args);
  const sim::FaultInjector faults = parse_fault_injector(args);
  check_unused(args);
  if (faults.enabled()) topts.run.faults = &faults;

  const nn::TrainResult r = nn::train_language_model(topts);
  out << "train: " << arch << " (tiny), " << topts.steps << " steps, "
      << optimizer << ", loss scaling "
      << (topts.loss_scaling ? "on" : "off") << ", bf16 grads "
      << (topts.bf16_grads ? "on" : "off") << "\n";
  // Resume/checkpoint bookkeeping prints before the step lines so the tail
  // of a resumed run (steps + trailer) is byte-comparable against the same
  // tail of an uninterrupted run.
  if (!r.resume_report.empty()) out << r.resume_report;
  if (!topts.checkpoint_dir.empty()) {
    out << "checkpoints: " << r.checkpoints_saved << " saved under "
        << topts.checkpoint_dir << "\n";
  }
  const std::size_t base =
      r.resumed_from_step > 0 ? static_cast<std::size_t>(r.resumed_from_step)
                              : 0;
  for (std::size_t i = 0; i < r.steps.size(); ++i) {
    const nn::TrainStepInfo& s = r.steps[i];
    out << "  step " << base + i << ": loss " << TextTable::num(s.loss, 4)
        << "  scale " << TextTable::num(s.scale, 0) << "  "
        << (s.applied ? "applied" : "skipped (overflow)") << "\n";
  }
  out << "skipped steps: " << r.skipped_steps
      << "   final scale: " << TextTable::num(r.final_scale, 0)
      << "   sdc bit flips: " << r.sdc_injections
      << "   guard anomalies: " << r.anomalies << "\n";
  out << "final loss: " << TextTable::num(r.final_loss, 4) << " ("
      << (r.finite ? "finite" : "NOT finite") << ")\n";
  return r.finite ? 0 : 1;
}

int cmd_train_resilient(ArgParser& args, std::ostream& out) {
  scaleout::TrainingRunConfig cfg;
  cfg.steps = static_cast<std::uint64_t>(args.get_int("steps", 1000));
  cfg.step_time = sim::SimTime::from_ms(
      static_cast<double>(args.get_int("step-ms", 300)));
  cfg.chips = static_cast<std::uint32_t>(args.get_int("chips", 8));
  cfg.mtbf_steps = static_cast<double>(args.get_int("mtbf", 200));
  const std::string recovery = args.get("recovery", "young-daly");
  if (recovery == "none") {
    cfg.policy = scaleout::RecoveryPolicy::kNone;
  } else if (recovery == "fixed") {
    cfg.policy = scaleout::RecoveryPolicy::kFixedInterval;
    cfg.checkpoint_interval =
        static_cast<std::uint64_t>(args.get_int("interval", 50));
  } else if (recovery == "young-daly") {
    cfg.policy = scaleout::RecoveryPolicy::kYoungDaly;
  } else {
    throw sim::InvalidArgument("unknown recovery policy: " + recovery);
  }
  const auto seed =
      static_cast<std::uint64_t>(args.get_int("fault-seed", 0xFA517));
  check_unused(args);

  GAUDI_CHECK(cfg.mtbf_steps > 0.0, "--mtbf expects a positive step count");
  const sim::FaultInjector faults{
      seed, sim::FaultProfile::from_mtbf_steps(cfg.mtbf_steps, cfg.chips)};
  const scaleout::TrainingRunReport rep =
      scaleout::resilient_training_run(cfg, faults);

  const sim::SimTime save = scaleout::checkpoint_save_time(cfg.checkpoint);
  out << "resilient training: " << cfg.steps << " steps x "
      << sim::to_string(cfg.step_time) << " on " << cfg.chips
      << " chips, MTBF " << cfg.mtbf_steps << " steps\n";
  out << "policy " << scaleout::recovery_policy_name(cfg.policy);
  if (rep.interval > 0) {
    out << " (checkpoint every " << rep.interval << " steps; Young/Daly predicts "
        << scaleout::young_daly_interval_steps(cfg.step_time, save,
                                               cfg.mtbf_steps)
        << ")";
  }
  out << "\n";
  out << "failures: " << rep.failures << "   recomputed steps: "
      << rep.recomputed_steps << "   checkpoints: " << rep.checkpoints << "\n";
  out << "checkpoint overhead: " << sim::to_string(rep.checkpoint_time)
      << "   recovery: " << sim::to_string(rep.restore_time)
      << "   recompute: " << sim::to_string(rep.recompute_time)
      << "   stalls: " << sim::to_string(rep.stall_time) << "\n";
  out << "total: " << sim::to_string(rep.total_time) << " (ideal "
      << sim::to_string(rep.compute_time) << ")   goodput: "
      << TextTable::num(rep.goodput * 100.0, 1) << "%\n";
  return 0;
}

/// Workload-stream flags shared by serve and serve-cluster.
struct ServeStreamArgs {
  serve::StreamConfig scfg;
  std::string trace_path;
};

ServeStreamArgs parse_serve_stream(ArgParser& args) {
  ServeStreamArgs s;
  serve::StreamConfig& scfg = s.scfg;
  scfg.arrival_rate_rps = parse_f64(args.get("rate", "8"), "option --rate");
  scfg.num_requests = args.get_int("requests", scfg.num_requests);
  scfg.prompt.lo = args.get_int("prompt-min", scfg.prompt.lo);
  scfg.prompt.hi = args.get_int("prompt-max", scfg.prompt.hi);
  scfg.output.lo = args.get_int("output-min", scfg.output.lo);
  scfg.output.hi = args.get_int("output-max", scfg.output.hi);
  scfg.priority_levels =
      static_cast<std::int32_t>(args.get_int("priorities", 1));
  const std::int64_t deadline_ms = args.get_int("deadline-ms", 0);
  GAUDI_CHECK(deadline_ms >= 0, "--deadline-ms expects a non-negative time");
  if (deadline_ms > 0) {
    scfg.deadline = sim::SimTime::from_ms(static_cast<double>(deadline_ms));
  }
  scfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 0x5E21E));
  s.trace_path = args.get("arrivals", "");
  return s;
}

std::vector<serve::Request> build_serve_stream(const ServeStreamArgs& s) {
  return s.trace_path.empty() ? serve::poisson_stream(s.scfg)
                              : serve::load_trace(s.trace_path);
}

std::string serve_stream_banner(const ServeStreamArgs& s, std::size_t n) {
  std::ostringstream os;
  os << n << " requests ("
     << (s.trace_path.empty()
             ? "poisson @ " + TextTable::num(s.scfg.arrival_rate_rps, 1) +
                   " req/s"
             : "trace " + s.trace_path)
     << ")";
  return os.str();
}

/// Per-replica scheduler flags shared by serve and serve-cluster — every
/// value is validated here with an InvalidArgument naming the option.
/// Faults are NOT parsed: serve wires one injector, the cluster derives one
/// per replica.
serve::ServeConfig parse_serve_scheduler_flags(ArgParser& args,
                                               std::int64_t* kv_mb_out) {
  serve::ServeConfig cfg;
  cfg.max_batch = args.get_int("max-batch", cfg.max_batch);
  GAUDI_CHECK(cfg.max_batch >= 1, "--max-batch expects a positive count");
  cfg.prefill_chunk = args.get_int("prefill-chunk", cfg.prefill_chunk);
  GAUDI_CHECK(cfg.prefill_chunk >= 1,
              "--prefill-chunk expects a positive token count");
  cfg.ctx_bucket = args.get_int("ctx-bucket", cfg.ctx_bucket);
  GAUDI_CHECK(cfg.ctx_bucket >= 1,
              "--ctx-bucket expects a positive token count");
  cfg.block_tokens = args.get_int("block-tokens", cfg.block_tokens);
  GAUDI_CHECK(cfg.block_tokens >= 1,
              "--block-tokens expects a positive token count");
  const std::int64_t kv_mb = args.get_int("kv-mb", 64);
  GAUDI_CHECK(kv_mb >= 1, "--kv-mb expects a positive MiB count");
  cfg.kv_budget_bytes = static_cast<std::size_t>(kv_mb) * 1024 * 1024;
  *kv_mb_out = kv_mb;
  const std::int64_t cache_cap = args.get_int("cache-cap", 0);
  GAUDI_CHECK(cache_cap >= 0, "--cache-cap expects a non-negative count");
  cfg.step_cache_entries = static_cast<std::size_t>(cache_cap);
  cfg.timing_only = parse_timing_only(args);

  cfg.retry_max =
      static_cast<std::int32_t>(args.get_int("retry-max", cfg.retry_max));
  GAUDI_CHECK(cfg.retry_max >= 0, "--retry-max expects a non-negative count");
  const std::int64_t backoff_ms =
      args.get_int("retry-backoff-ms",
                   static_cast<std::int64_t>(cfg.retry_backoff.ms()));
  GAUDI_CHECK(backoff_ms >= 0, "--retry-backoff-ms expects a non-negative time");
  cfg.retry_backoff = sim::SimTime::from_ms(static_cast<double>(backoff_ms));
  const std::int64_t backoff_max_ms = args.get_int(
      "retry-backoff-max-ms",
      static_cast<std::int64_t>(cfg.retry_backoff_max.ms()));
  GAUDI_CHECK(backoff_max_ms > 0,
              "--retry-backoff-max-ms expects a positive time");
  cfg.retry_backoff_max =
      sim::SimTime::from_ms(static_cast<double>(backoff_max_ms));
  const std::int64_t watchdog_ms = args.get_int("watchdog-ms", 0);
  GAUDI_CHECK(watchdog_ms >= 0, "--watchdog-ms expects a non-negative time");
  if (watchdog_ms > 0) {
    cfg.watchdog = sim::SimTime::from_ms(static_cast<double>(watchdog_ms));
  }
  cfg.shed_queue_depth = args.get_int("shed-queue-depth", 0);
  GAUDI_CHECK(cfg.shed_queue_depth >= 0,
              "--shed-queue-depth expects a non-negative depth");
  cfg.shed_min_free_blocks = args.get_int("shed-free-blocks", 0);
  GAUDI_CHECK(cfg.shed_min_free_blocks >= 0,
              "--shed-free-blocks expects a non-negative count");
  return cfg;
}

int cmd_serve(ArgParser& args, std::ostream& out) {
  const ServeStreamArgs s = parse_serve_stream(args);
  std::int64_t kv_mb = 0;
  serve::ServeConfig cfg = parse_serve_scheduler_flags(args, &kv_mb);
  // Fault tolerance: the serving batch runs on one simulated chip, so MTBF
  // is mean iterations between failures.
  cfg.faults = parse_fault_injector(args, /*chips=*/1);
  check_unused(args);

  const std::vector<serve::Request> stream = build_serve_stream(s);

  out << "serve: " << serve_stream_banner(s, stream.size()) << ", batch "
      << cfg.max_batch << ", prefill chunk " << cfg.prefill_chunk << ", kv "
      << kv_mb << " MiB in " << cfg.block_tokens << "-token blocks\n";

  graph::Runtime rt(sim::ChipConfig::hls1());
  serve::ContinuousBatchScheduler sched(rt, cfg);
  out << sched.run(stream).to_report();
  graph::save_memo_to_env_file();
  return 0;
}

int cmd_serve_cluster(ArgParser& args, std::ostream& out) {
  const ServeStreamArgs s = parse_serve_stream(args);
  serve::ClusterConfig ccfg;
  std::int64_t kv_mb = 0;
  ccfg.replica = parse_serve_scheduler_flags(args, &kv_mb);
  ccfg.replicas = args.get_int("replicas", ccfg.replicas);
  GAUDI_CHECK(ccfg.replicas >= 1, "--replicas expects a positive count");
  ccfg.policy =
      serve::parse_load_balance_policy(args.get("lb", "round-robin"));
  const std::int64_t heartbeat_ms =
      args.get_int("heartbeat-ms",
                   static_cast<std::int64_t>(ccfg.heartbeat_interval.ms()));
  GAUDI_CHECK(heartbeat_ms >= 0, "--heartbeat-ms expects a non-negative time");
  ccfg.heartbeat_interval =
      sim::SimTime::from_ms(static_cast<double>(heartbeat_ms));
  const std::int64_t suspicion_ms =
      args.get_int("suspicion-ms",
                   static_cast<std::int64_t>(ccfg.suspicion_timeout.ms()));
  GAUDI_CHECK(suspicion_ms > 0, "--suspicion-ms expects a positive time");
  ccfg.suspicion_timeout =
      sim::SimTime::from_ms(static_cast<double>(suspicion_ms));
  const std::int64_t hedge_ms = args.get_int("hedge-ms", 0);
  GAUDI_CHECK(hedge_ms >= 0, "--hedge-ms expects a non-negative time");
  ccfg.hedge_budget = sim::SimTime::from_ms(static_cast<double>(hedge_ms));
  ccfg.breaker_enabled = !args.has("no-breaker");
  ccfg.breaker_window = args.get_int("breaker-window", ccfg.breaker_window);
  GAUDI_CHECK(ccfg.breaker_window >= 1,
              "--breaker-window expects a positive count");
  ccfg.breaker_min_samples =
      args.get_int("breaker-min", ccfg.breaker_min_samples);
  GAUDI_CHECK(ccfg.breaker_min_samples >= 1,
              "--breaker-min expects a positive count");
  ccfg.breaker_threshold = parse_f64(
      args.get("breaker-threshold", "0.5"), "option --breaker-threshold");
  GAUDI_CHECK(ccfg.breaker_threshold > 0.0 && ccfg.breaker_threshold <= 1.0 &&
                  std::isfinite(ccfg.breaker_threshold),
              "--breaker-threshold expects a fraction in (0, 1]");
  const std::int64_t cooldown_ms =
      args.get_int("breaker-cooldown-ms",
                   static_cast<std::int64_t>(ccfg.breaker_cooldown.ms()));
  GAUDI_CHECK(cooldown_ms > 0,
              "--breaker-cooldown-ms expects a positive time");
  ccfg.breaker_cooldown =
      sim::SimTime::from_ms(static_cast<double>(cooldown_ms));

  // Fault model: one cluster seed; the router derives a decorrelated
  // injector per replica, each chip seeing MTBF iterations between faults.
  const bool faults_on = args.has("faults");
  ccfg.fault_seed =
      static_cast<std::uint64_t>(args.get_int("fault-seed", 0xFA517));
  const std::int64_t mtbf = args.get_int("mtbf", 0);
  GAUDI_CHECK(mtbf >= 0, "--mtbf expects a positive step count");
  if (faults_on) {
    ccfg.fault_profile =
        mtbf > 0 ? sim::FaultProfile::from_mtbf_steps(
                       static_cast<double>(mtbf), /*chips=*/1)
                 : sim::FaultProfile::stress();
  }

  // Live migration & draining (serve/migration.*).
  ccfg.migration.enabled = args.has("migrate");
  ccfg.migration.chunk_blocks =
      args.get_int("migration-chunk-blocks", ccfg.migration.chunk_blocks);
  GAUDI_CHECK(ccfg.migration.chunk_blocks >= 1,
              "--migration-chunk-blocks expects a positive block count");
  ccfg.drain_replica = args.get_int("drain-replica", ccfg.drain_replica);
  if (args.has("drain-replica")) {
    GAUDI_CHECK(ccfg.replicas >= 2,
                "--drain-replica needs at least two replicas");
    GAUDI_CHECK(ccfg.drain_replica >= 0 && ccfg.drain_replica < ccfg.replicas,
                "--drain-replica expects an index below --replicas");
  }
  const std::int64_t drain_at_ms = args.get_int("drain-at-ms", 0);
  if (args.has("drain-at-ms")) {
    GAUDI_CHECK(ccfg.drain_replica >= 0,
                "--drain-at-ms requires --drain-replica");
  }
  GAUDI_CHECK(drain_at_ms >= 0, "--drain-at-ms expects a non-negative time");
  ccfg.drain_at = sim::SimTime::from_ms(static_cast<double>(drain_at_ms));
  const std::int64_t health_window_ms =
      args.get_int("health-window-ms",
                   static_cast<std::int64_t>(ccfg.health_window.ms()));
  GAUDI_CHECK(health_window_ms > 0,
              "--health-window-ms expects a positive time");
  ccfg.health_window =
      sim::SimTime::from_ms(static_cast<double>(health_window_ms));
  ccfg.degraded_after = args.get_int("degraded-after", ccfg.degraded_after);
  GAUDI_CHECK(ccfg.degraded_after >= 1,
              "--degraded-after expects a positive count");
  check_unused(args);

  const std::vector<serve::Request> stream = build_serve_stream(s);

  out << "serve-cluster: " << serve_stream_banner(s, stream.size()) << " x "
      << ccfg.replicas << " replicas ("
      << serve::load_balance_policy_name(ccfg.policy) << "), batch "
      << ccfg.replica.max_batch << ", kv " << kv_mb << " MiB/replica\n";

  graph::Runtime rt(sim::ChipConfig::hls1());
  serve::ClusterRouter router(rt, ccfg);
  out << router.run(stream).to_report();
  graph::save_memo_to_env_file();
  return 0;
}

int cmd_batch(const std::string& config_path, ArgParser& args,
              std::ostream& out) {
  const std::string csv_path = args.get("csv", "");
  const std::int64_t threads = args.get_int("threads", 0);
  GAUDI_CHECK(threads >= 0, "--threads expects a non-negative count");
  BatchOptions bopts;
  bopts.threads = static_cast<std::size_t>(threads);
  bopts.timing_only = parse_timing_only(args);
  check_unused(args);

  const BatchConfig cfg = load_batch_config(config_path);
  const BatchRunResult r = run_batch(cfg, bopts);
  out << "batch: " << cfg.experiments.size() << " experiment(s), " << r.cells
      << " cell(s), " << r.runs << " run(s)\n";
  out << r.table;
  if (!csv_path.empty()) {
    std::ofstream csv(csv_path, std::ios::binary);
    GAUDI_CHECK(static_cast<bool>(csv), "cannot write CSV to " + csv_path);
    csv << r.csv;
    out << "csv written to " << csv_path << "\n";
  }
  graph::save_memo_to_env_file();
  return 0;
}

}  // namespace

std::int64_t parse_i64(const std::string& text, const std::string& what) {
  std::size_t pos = 0;
  std::int64_t value = 0;
  try {
    value = std::stoll(text, &pos);
  } catch (const std::exception&) {
    throw sim::InvalidArgument(what + " expects an integer, got '" + text +
                               "'");
  }
  // stoll stops at the first non-digit; "12abc" must not silently become 12.
  if (pos != text.size()) {
    throw sim::InvalidArgument(what + " expects an integer, got '" + text +
                               "' (trailing '" + text.substr(pos) + "')");
  }
  return value;
}

ArgParser::ArgParser(std::vector<std::string> args) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    GAUDI_CHECK(a.size() > 2 && a.rfind("--", 0) == 0,
                "expected an option starting with --, got '" + a + "'");
    const std::string key = a.substr(2);
    if (i + 1 < args.size() && args[i + 1].rfind("--", 0) != 0) {
      kv_[key] = args[++i];
    } else {
      kv_[key] = "";  // boolean flag
    }
  }
}

bool ArgParser::has(const std::string& key) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return false;
  read_[key] = true;
  return true;
}

std::string ArgParser::get(const std::string& key, const std::string& fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  read_[key] = true;
  return it->second;
}

std::int64_t ArgParser::get_int(const std::string& key, std::int64_t fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  read_[key] = true;
  return parse_i64(it->second, "option --" + key);
}

std::vector<std::string> ArgParser::unused() const {
  std::vector<std::string> result;
  for (const auto& [key, value] : kv_) {
    if (!read_.count(key)) result.push_back(key);
  }
  return result;
}

int run_cli(const std::vector<std::string>& args, std::ostream& out) {
  try {
    if (args.size() < 2 || args[1] == "help" || args[1] == "--help") {
      out << kUsage;
      return args.size() < 2 ? 1 : 0;
    }
    const std::string& command = args[1];
    if (command == "batch") {
      // `batch` takes a positional config path before its options, which
      // the flags-only ArgParser below would reject.
      GAUDI_CHECK(args.size() >= 3 && args[2].rfind("--", 0) != 0,
                  "batch expects a config file path");
      ArgParser bparser(std::vector<std::string>(args.begin() + 3, args.end()));
      return cmd_batch(args[2], bparser, out);
    }
    ArgParser parser(std::vector<std::string>(args.begin() + 2, args.end()));
    if (command == "op-mapping") {
      const auto unused = parser.unused();
      GAUDI_CHECK(unused.empty(), "op-mapping takes no options");
      return cmd_op_mapping(out);
    }
    if (command == "mme-vs-tpc") return cmd_mme_vs_tpc(parser, out);
    if (command == "profile-layer") return cmd_profile_layer(parser, out);
    if (command == "profile-model") return cmd_profile_model(parser, out);
    if (command == "train") return cmd_train(parser, out);
    if (command == "train-resilient") return cmd_train_resilient(parser, out);
    if (command == "serve") return cmd_serve(parser, out);
    if (command == "serve-cluster") return cmd_serve_cluster(parser, out);
    out << "unknown command: " << command << "\n\n" << kUsage;
    return 1;
  } catch (const sim::Error& e) {
    out << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace gaudi::core

// Experiment drivers: one entry point per table/figure of the paper.
//
// These are the library's public reproduction API — the bench binaries are
// thin printers over these functions, and the integration tests assert the
// paper's qualitative claims against their outputs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/analysis.hpp"
#include "graph/runtime.hpp"
#include "nn/models.hpp"
#include "nn/transformer.hpp"

namespace gaudi::core {

// ---------------------------------------------------------------------------
// Table 1: operation -> engine mapping
// ---------------------------------------------------------------------------

struct OpMappingRow {
  std::string operation;    ///< the torch-level spelling
  std::string explanation;  ///< Table 1's description
  graph::Engine engine;     ///< where the compiled graph placed it
};

/// Probes the compiler with each operation from Table 1 by building a real
/// graph and reading back the engine assignment.
[[nodiscard]] std::vector<OpMappingRow> run_op_mapping_probe();

[[nodiscard]] std::string format_op_mapping(const std::vector<OpMappingRow>& rows);

// ---------------------------------------------------------------------------
// Table 2: MME vs TPC batched matmul
// ---------------------------------------------------------------------------

struct MmeVsTpcRow {
  std::int64_t size = 0;
  double t_mme_ms = 0.0;
  double f_mme_tflops = 0.0;
  double t_tpc_ms = 0.0;
  double f_tpc_tflops = 0.0;
  double speedup = 0.0;  ///< T_TPC / T_MME
};

/// Square batched matmuls (batch 64, as §3.2) on both engines.
[[nodiscard]] std::vector<MmeVsTpcRow> run_mme_vs_tpc(
    const sim::ChipConfig& cfg, const std::vector<std::int64_t>& sizes,
    std::int64_t batch = 64);

[[nodiscard]] std::string format_mme_vs_tpc(const std::vector<MmeVsTpcRow>& rows);

// ---------------------------------------------------------------------------
// Figures 4-7: single-Transformer-layer profiles
// ---------------------------------------------------------------------------

/// The §3.3 layer configuration: "input sequence length, batch size, the
/// number of heads, and the hidden size per head as 2048, 128, 6, and 64".
struct LayerExperiment {
  std::int64_t seq_len = 2048;
  std::int64_t batch = 128;
  std::int64_t heads = 6;
  std::int64_t head_dim = 64;
  nn::AttentionConfig attention{};
  std::int64_t ffn_dim = 0;  ///< §3.3 profiles the attention block
  graph::SchedulePolicy policy = graph::SchedulePolicy::kBarrier;
};

struct LayerProfile {
  TraceSummary summary;
  graph::Trace trace;
  std::size_t hbm_peak_bytes = 0;
};

/// Builds one Transformer layer at the experiment's scale and profiles it in
/// timing mode under the given scheduler policy.
[[nodiscard]] LayerProfile run_layer_profile(const LayerExperiment& exp,
                                             const sim::ChipConfig& cfg);

// ---------------------------------------------------------------------------
// Figures 8-9: end-to-end language-model training-step profiles
// ---------------------------------------------------------------------------

struct LlmProfile {
  TraceSummary summary;
  graph::Trace trace;
  std::size_t hbm_peak_bytes = 0;
  std::size_t param_count = 0;
  std::size_t node_count = 0;
};

[[nodiscard]] LlmProfile run_llm_profile(const nn::LmConfig& model_cfg,
                                         graph::SchedulePolicy policy,
                                         const sim::ChipConfig& cfg);

}  // namespace gaudi::core

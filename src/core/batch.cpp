#include "core/batch.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

#include "core/cli.hpp"
#include "core/experiments.hpp"
#include "nn/transformer.hpp"
#include "serve/cluster.hpp"
#include "serve/scheduler.hpp"
#include "serve/workload.hpp"
#include "sim/chip_config.hpp"
#include "sim/error.hpp"
#include "sim/thread_pool.hpp"

namespace gaudi::core {

namespace {

// -- Config parsing ---------------------------------------------------------

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line.substr(0, line.find('#')));
  for (std::string t; is >> t;) tokens.push_back(t);
  return tokens;
}

[[noreturn]] void fail(int line_no, const std::string& what) {
  throw sim::InvalidArgument("batch config line " + std::to_string(line_no) +
                             ": " + what);
}

std::uint64_t parse_seed(const std::string& text, int line_no) {
  // strtoull with base 0 accepts decimal and 0x... hex spellings.
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(text.c_str(), &end, 0);
  if (end == text.c_str() || *end != '\0') {
    fail(line_no, "seeds expects integers, got '" + text + "'");
  }
  return v;
}

bool known_command(const std::string& c) {
  return c == "serve" || c == "serve-cluster" || c == "profile-layer" ||
         c == "profile-model" ||
         c == "mme-vs-tpc";
}

void check_unique_key(const BatchExperiment& e, const std::string& key,
                      int line_no) {
  for (const auto& [k, v] : e.fixed) {
    if (k == key) fail(line_no, "key '" + key + "' already set");
  }
  for (const auto& [k, vs] : e.sweeps) {
    if (k == key) fail(line_no, "key '" + key + "' already swept");
  }
}

// -- Grid expansion ---------------------------------------------------------

using Params = std::vector<std::pair<std::string, std::string>>;

/// One point of an experiment's sweep grid.
struct Cell {
  const BatchExperiment* exp = nullptr;
  Params params;      ///< fixed + this point's sweep assignment
  std::string label;  ///< "rate=8 max-batch=4" in axis order ("-" if none)
};

std::vector<Cell> expand_cells(const BatchExperiment& e) {
  std::vector<Cell> cells;
  std::vector<std::size_t> idx(e.sweeps.size(), 0);
  while (true) {
    Cell c;
    c.exp = &e;
    c.params = e.fixed;
    std::ostringstream label;
    for (std::size_t a = 0; a < e.sweeps.size(); ++a) {
      const auto& [key, values] = e.sweeps[a];
      c.params.emplace_back(key, values[idx[a]]);
      if (a > 0) label << ' ';
      label << key << '=' << values[idx[a]];
    }
    c.label = e.sweeps.empty() ? "-" : label.str();
    cells.push_back(std::move(c));
    // Odometer increment over the axes, last axis fastest.
    std::size_t a = e.sweeps.size();
    while (a > 0) {
      --a;
      if (++idx[a] < e.sweeps[a].second.size()) break;
      idx[a] = 0;
      if (a == 0) return cells;
    }
    if (e.sweeps.empty()) return cells;
  }
}

// -- Typed parameter access -------------------------------------------------

class ParamView {
 public:
  explicit ParamView(const Params& p) : params_(p) {}

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const {
    for (const auto& [k, v] : params_) {
      if (k == key) {
        used_.push_back(key);
        return v;
      }
    }
    return fallback;
  }
  [[nodiscard]] std::int64_t get_i64(const std::string& key,
                                     std::int64_t fallback) const {
    const std::string v = get(key, "");
    return v.empty() && !has(key) ? fallback : parse_i64(v, "key " + key);
  }
  [[nodiscard]] double get_f64(const std::string& key, double fallback) const {
    const std::string v = get(key, "");
    if (v.empty() && !has(key)) return fallback;
    std::size_t pos = 0;
    double d = 0.0;
    try {
      d = std::stod(v, &pos);
    } catch (const std::exception&) {
      pos = std::string::npos;
    }
    if (pos != v.size()) {
      throw sim::InvalidArgument("key " + key + " expects a number, got '" +
                                 v + "'");
    }
    return d;
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return std::any_of(params_.begin(), params_.end(),
                       [&](const auto& kv) { return kv.first == key; });
  }
  /// Throws on parameters the command never read — a typo'd key must not
  /// silently run the default grid.
  void check_all_used() const {
    for (const auto& [k, v] : params_) {
      if (std::find(used_.begin(), used_.end(), k) == used_.end()) {
        throw sim::InvalidArgument("unknown key '" + k + "' for command");
      }
    }
  }

 private:
  const Params& params_;
  mutable std::vector<std::string> used_;
};

// -- Command executors ------------------------------------------------------

using Metrics = std::vector<std::pair<std::string, double>>;

graph::SchedulePolicy parse_policy(const std::string& s) {
  if (s == "barrier") return graph::SchedulePolicy::kBarrier;
  if (s == "overlap") return graph::SchedulePolicy::kOverlap;
  throw sim::InvalidArgument("unknown scheduler policy: " + s);
}

nn::AttentionKind parse_attention(const std::string& s) {
  if (s == "softmax") return nn::AttentionKind::kSoftmax;
  if (s == "linear") return nn::AttentionKind::kLinear;
  if (s == "performer") return nn::AttentionKind::kPerformer;
  if (s == "linformer") return nn::AttentionKind::kLinformer;
  if (s == "local") return nn::AttentionKind::kLocal;
  throw sim::InvalidArgument("unknown attention mechanism: " + s);
}

nn::Activation parse_activation(const std::string& s) {
  if (s == "relu") return nn::Activation::kRelu;
  if (s == "leaky_relu") return nn::Activation::kLeakyRelu;
  if (s == "gelu") return nn::Activation::kGelu;
  if (s == "glu") return nn::Activation::kGlu;
  if (s == "elu") return nn::Activation::kElu;
  throw sim::InvalidArgument("unknown feature map: " + s);
}

serve::StreamConfig batch_stream_config(const ParamView& p,
                                        std::uint64_t seed) {
  serve::StreamConfig scfg;
  scfg.arrival_rate_rps = p.get_f64("rate", scfg.arrival_rate_rps);
  scfg.num_requests = p.get_i64("requests", scfg.num_requests);
  scfg.prompt.lo = p.get_i64("prompt-min", scfg.prompt.lo);
  scfg.prompt.hi = p.get_i64("prompt-max", scfg.prompt.hi);
  scfg.output.lo = p.get_i64("output-min", scfg.output.lo);
  scfg.output.hi = p.get_i64("output-max", scfg.output.hi);
  scfg.priority_levels =
      static_cast<std::int32_t>(p.get_i64("priorities", 1));
  const std::int64_t deadline_ms = p.get_i64("deadline-ms", 0);
  GAUDI_CHECK(deadline_ms >= 0, "deadline-ms expects a non-negative time");
  if (deadline_ms > 0) {
    scfg.deadline = sim::SimTime::from_ms(static_cast<double>(deadline_ms));
  }
  scfg.seed = seed;
  return scfg;
}

/// Per-scheduler keys shared by serve and serve-cluster cells.  Fault keys
/// are left to the callers: a serve cell wires one injector, a cluster cell
/// a per-replica profile.
serve::ServeConfig batch_serve_config(const ParamView& p,
                                      std::optional<bool> timing_only) {
  serve::ServeConfig cfg;
  const std::string model = p.get("model", "gpt2");
  if (model == "tiny") {
    cfg.model = nn::DecodeConfig::tiny();
  } else if (model != "gpt2") {
    throw sim::InvalidArgument("unknown serve model: " + model);
  }
  cfg.max_batch = p.get_i64("max-batch", cfg.max_batch);
  cfg.prefill_chunk = p.get_i64("prefill-chunk", cfg.prefill_chunk);
  cfg.ctx_bucket = p.get_i64("ctx-bucket", cfg.ctx_bucket);
  cfg.block_tokens = p.get_i64("block-tokens", cfg.block_tokens);
  const std::int64_t kv_mb = p.get_i64("kv-mb", 64);
  GAUDI_CHECK(kv_mb >= 1, "kv-mb expects a positive MiB count");
  cfg.kv_budget_bytes = static_cast<std::size_t>(kv_mb) * 1024 * 1024;
  cfg.step_cache_entries =
      static_cast<std::size_t>(p.get_i64("cache-cap", 0));
  cfg.timing_only = timing_only;
  cfg.retry_max =
      static_cast<std::int32_t>(p.get_i64("retry-max", cfg.retry_max));
  GAUDI_CHECK(cfg.retry_max >= 0, "retry-max expects a non-negative count");
  const std::int64_t watchdog_ms = p.get_i64("watchdog-ms", 0);
  GAUDI_CHECK(watchdog_ms >= 0, "watchdog-ms expects a non-negative time");
  if (watchdog_ms > 0) {
    cfg.watchdog = sim::SimTime::from_ms(static_cast<double>(watchdog_ms));
  }
  cfg.shed_queue_depth = p.get_i64("shed-queue-depth", 0);
  GAUDI_CHECK(cfg.shed_queue_depth >= 0,
              "shed-queue-depth expects a non-negative depth");
  cfg.shed_min_free_blocks = p.get_i64("shed-free-blocks", 0);
  GAUDI_CHECK(cfg.shed_min_free_blocks >= 0,
              "shed-free-blocks expects a non-negative count");
  return cfg;
}

Metrics run_serve_cell(const ParamView& p, std::uint64_t seed,
                       std::optional<bool> timing_only) {
  const serve::StreamConfig scfg = batch_stream_config(p, seed);
  serve::ServeConfig cfg = batch_serve_config(p, timing_only);

  // Fault tolerance: `mtbf` (mean iterations between failures) enables the
  // injector; the fault seed is its own key so the workload seed axis does
  // not reshuffle the fault schedule.
  const std::int64_t mtbf = p.get_i64("mtbf", 0);
  GAUDI_CHECK(mtbf >= 0, "mtbf expects a non-negative iteration count");
  if (mtbf > 0) {
    const auto fault_seed =
        static_cast<std::uint64_t>(p.get_i64("fault-seed", 0xFA517));
    cfg.faults = sim::FaultInjector{
        fault_seed, sim::FaultProfile::from_mtbf_steps(
                        static_cast<double>(mtbf), /*chips=*/1)};
  }
  p.check_all_used();

  graph::Runtime rt(sim::ChipConfig::hls1());
  serve::ContinuousBatchScheduler sched(rt, cfg);
  const serve::ServeReport r = sched.run(serve::poisson_stream(scfg));
  const double availability = std::isfinite(r.summary.availability)
                                  ? r.summary.availability
                                  : 0.0;
  return {{"throughput_tok_s", r.summary.throughput_tok_s},
          {"goodput_tok_s", r.summary.goodput_tok_s},
          {"ttft_p99_ms", r.summary.ttft_p99_ms},
          {"itl_p99_ms", r.summary.itl_p99_ms},
          {"completed", static_cast<double>(r.summary.completed)},
          {"dropped", static_cast<double>(r.summary.dropped)},
          {"shed", static_cast<double>(r.summary.shed)},
          {"failed", static_cast<double>(r.summary.failed)},
          {"timed_out", static_cast<double>(r.summary.timed_out)},
          {"availability", availability},
          {"fault_retries", static_cast<double>(r.summary.fault_retries)},
          {"wasted_tokens", static_cast<double>(r.summary.wasted_tokens)},
          {"preemptions", static_cast<double>(r.summary.preemptions)},
          {"makespan_ms", r.summary.makespan.ms()}};
}

Metrics run_serve_cluster_cell(const ParamView& p, std::uint64_t seed,
                               std::optional<bool> timing_only) {
  const serve::StreamConfig scfg = batch_stream_config(p, seed);
  serve::ClusterConfig ccfg;
  ccfg.replica = batch_serve_config(p, timing_only);
  ccfg.replicas = p.get_i64("replicas", ccfg.replicas);
  GAUDI_CHECK(ccfg.replicas >= 1, "replicas expects a positive count");
  ccfg.policy = serve::parse_load_balance_policy(p.get("lb", "round-robin"));
  const std::int64_t heartbeat_ms = p.get_i64(
      "heartbeat-ms", static_cast<std::int64_t>(ccfg.heartbeat_interval.ms()));
  GAUDI_CHECK(heartbeat_ms >= 0, "heartbeat-ms expects a non-negative time");
  ccfg.heartbeat_interval =
      sim::SimTime::from_ms(static_cast<double>(heartbeat_ms));
  const std::int64_t suspicion_ms = p.get_i64(
      "suspicion-ms", static_cast<std::int64_t>(ccfg.suspicion_timeout.ms()));
  GAUDI_CHECK(suspicion_ms > 0, "suspicion-ms expects a positive time");
  ccfg.suspicion_timeout =
      sim::SimTime::from_ms(static_cast<double>(suspicion_ms));
  const std::int64_t hedge_ms = p.get_i64("hedge-ms", 0);
  GAUDI_CHECK(hedge_ms >= 0, "hedge-ms expects a non-negative time");
  ccfg.hedge_budget = sim::SimTime::from_ms(static_cast<double>(hedge_ms));
  ccfg.breaker_enabled = p.get_i64("breaker", 1) != 0;
  const std::int64_t mtbf = p.get_i64("mtbf", 0);
  GAUDI_CHECK(mtbf >= 0, "mtbf expects a non-negative iteration count");
  ccfg.fault_seed =
      static_cast<std::uint64_t>(p.get_i64("fault-seed", 0xFA517));
  if (mtbf > 0) {
    ccfg.fault_profile = sim::FaultProfile::from_mtbf_steps(
        static_cast<double>(mtbf), /*chips=*/1);
  }

  // Live migration & draining (serve/migration.*).
  ccfg.migration.enabled = p.get_i64("migrate", 0) != 0;
  ccfg.migration.chunk_blocks =
      p.get_i64("migration-chunk-blocks", ccfg.migration.chunk_blocks);
  GAUDI_CHECK(ccfg.migration.chunk_blocks >= 1,
              "migration-chunk-blocks expects a positive block count");
  ccfg.drain_replica = p.get_i64("drain-replica", ccfg.drain_replica);
  GAUDI_CHECK(ccfg.drain_replica < ccfg.replicas,
              "drain-replica expects an index below replicas");
  const std::int64_t drain_at_ms = p.get_i64("drain-at-ms", 0);
  GAUDI_CHECK(drain_at_ms >= 0, "drain-at-ms expects a non-negative time");
  ccfg.drain_at = sim::SimTime::from_ms(static_cast<double>(drain_at_ms));
  const std::int64_t health_window_ms = p.get_i64(
      "health-window-ms", static_cast<std::int64_t>(ccfg.health_window.ms()));
  GAUDI_CHECK(health_window_ms > 0, "health-window-ms expects a positive time");
  ccfg.health_window =
      sim::SimTime::from_ms(static_cast<double>(health_window_ms));
  ccfg.degraded_after = p.get_i64("degraded-after", ccfg.degraded_after);
  GAUDI_CHECK(ccfg.degraded_after >= 1,
              "degraded-after expects a positive count");
  p.check_all_used();

  graph::Runtime rt(sim::ChipConfig::hls1());
  serve::ClusterRouter router(rt, ccfg);
  const serve::ClusterReport r = router.run(serve::poisson_stream(scfg));
  const double availability = std::isfinite(r.summary.availability)
                                  ? r.summary.availability
                                  : 0.0;
  Metrics m = {{"throughput_tok_s", r.summary.throughput_tok_s},
               {"goodput_tok_s", r.summary.goodput_tok_s},
               {"ttft_p99_ms", r.summary.ttft_p99_ms},
               {"itl_p99_ms", r.summary.itl_p99_ms},
               {"completed", static_cast<double>(r.summary.completed)},
               {"failed", static_cast<double>(r.summary.failed)},
               {"timed_out", static_cast<double>(r.summary.timed_out)},
               {"availability", availability},
               {"chip_failures", static_cast<double>(r.chip_failures)},
               {"failovers", static_cast<double>(r.failovers)},
               {"hedges_launched", static_cast<double>(r.hedges_launched)},
               {"hedge_wins", static_cast<double>(r.hedge_wins)},
               {"breaker_opens", static_cast<double>(r.breaker_opens)},
               {"wasted_tokens", static_cast<double>(r.summary.wasted_tokens)}};
  // Migration/drain metrics render only when the feature ran — a
  // migration-off cell stays byte-identical to the pre-migration CSV.
  if (r.migration_enabled || r.drain_enabled) {
    m.emplace_back("migrations", static_cast<double>(r.migrations_completed));
    m.emplace_back("migrations_aborted",
                   static_cast<double>(r.migrations_aborted));
    m.emplace_back("migrated_rows", static_cast<double>(r.migrated_rows));
    m.emplace_back("evac_requeues", static_cast<double>(r.evac_requeues));
    m.emplace_back("drain_completed", r.drain_completed ? 1.0 : 0.0);
  }
  m.emplace_back("makespan_ms", r.summary.makespan.ms());
  return m;
}

Metrics run_profile_layer_cell(const ParamView& p) {
  LayerExperiment exp;
  exp.attention.kind = parse_attention(p.get("attention", "softmax"));
  exp.attention.feature_map = parse_activation(p.get("feature-map", "elu"));
  exp.seq_len = p.get_i64("seq", exp.seq_len);
  exp.batch = p.get_i64("batch", exp.batch);
  exp.heads = p.get_i64("heads", exp.heads);
  exp.head_dim = p.get_i64("head-dim", exp.head_dim);
  exp.ffn_dim = p.get_i64("ffn", exp.ffn_dim);
  exp.policy = parse_policy(p.get("policy", "barrier"));
  p.check_all_used();
  const LayerProfile prof = run_layer_profile(exp, sim::ChipConfig::hls1());
  return {{"makespan_ms", prof.summary.makespan.ms()},
          {"mme_utilization", prof.summary.mme_utilization},
          {"tpc_utilization", prof.summary.tpc_utilization},
          {"mme_idle_fraction", prof.summary.mme_idle_fraction}};
}

Metrics run_profile_model_cell(const ParamView& p) {
  const std::string arch = p.get("arch", "gpt2");
  nn::LmConfig cfg = arch == "bert" ? nn::LmConfig::bert_paper()
                     : arch == "gpt2"
                         ? nn::LmConfig::gpt2_paper()
                         : throw sim::InvalidArgument("unknown arch: " + arch);
  cfg.seq_len = p.get_i64("seq", cfg.seq_len);
  cfg.batch = p.get_i64("batch", cfg.batch);
  cfg.n_layers = p.get_i64("layers", cfg.n_layers);
  const graph::SchedulePolicy policy =
      parse_policy(p.get("policy", "barrier"));
  p.check_all_used();
  const LlmProfile prof = run_llm_profile(cfg, policy, sim::ChipConfig::hls1());
  return {{"makespan_ms", prof.summary.makespan.ms()},
          {"mme_utilization", prof.summary.mme_utilization},
          {"tpc_utilization", prof.summary.tpc_utilization},
          {"params", static_cast<double>(prof.param_count)}};
}

Metrics run_mme_vs_tpc_cell(const ParamView& p) {
  const std::int64_t size = p.get_i64("size", 512);
  const std::int64_t batch = p.get_i64("batch", 64);
  p.check_all_used();
  const std::vector<MmeVsTpcRow> rows =
      run_mme_vs_tpc(sim::ChipConfig::hls1(), {size}, batch);
  GAUDI_ASSERT(rows.size() == 1, "one size probes one row");
  return {{"t_mme_ms", rows[0].t_mme_ms},
          {"t_tpc_ms", rows[0].t_tpc_ms},
          {"speedup", rows[0].speedup}};
}

Metrics run_cell_once(const Cell& cell, std::uint64_t seed,
                      std::optional<bool> timing_only_default) {
  const ParamView p(cell.params);
  const std::optional<bool> timing_only = cell.exp->timing_only.has_value()
                                              ? cell.exp->timing_only
                                              : timing_only_default;
  const std::string& cmd = cell.exp->command;
  if (cmd == "serve") return run_serve_cell(p, seed, timing_only);
  if (cmd == "serve-cluster") {
    return run_serve_cluster_cell(p, seed, timing_only);
  }
  if (cmd == "profile-layer") return run_profile_layer_cell(p);
  if (cmd == "profile-model") return run_profile_model_cell(p);
  if (cmd == "mme-vs-tpc") return run_mme_vs_tpc_cell(p);
  throw sim::InvalidArgument("unknown batch command: " + cmd);
}

}  // namespace

BatchConfig parse_batch_config(std::istream& in) {
  BatchConfig cfg;
  BatchExperiment* cur = nullptr;
  bool seeds_set = false;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::vector<std::string> t = tokenize(line);
    if (t.empty()) continue;
    const std::string& d = t[0];
    if (d == "experiment") {
      if (cur != nullptr) fail(line_no, "nested experiment (missing 'end')");
      if (t.size() != 2) fail(line_no, "experiment expects exactly one name");
      for (const BatchExperiment& e : cfg.experiments) {
        if (e.name == t[1]) fail(line_no, "duplicate experiment '" + t[1] + "'");
      }
      cfg.experiments.emplace_back();
      cur = &cfg.experiments.back();
      cur->name = t[1];
      seeds_set = false;
      continue;
    }
    if (cur == nullptr) fail(line_no, "'" + d + "' outside an experiment");
    if (d == "end") {
      if (t.size() != 1) fail(line_no, "end takes nothing");
      if (cur->command.empty()) fail(line_no, "experiment has no command");
      cur = nullptr;
    } else if (d == "command") {
      if (t.size() != 2) fail(line_no, "command expects exactly one word");
      if (!known_command(t[1])) fail(line_no, "unknown command '" + t[1] + "'");
      cur->command = t[1];
    } else if (d == "set") {
      if (t.size() != 3) fail(line_no, "set expects a key and one value");
      check_unique_key(*cur, t[1], line_no);
      cur->fixed.emplace_back(t[1], t[2]);
    } else if (d == "sweep") {
      if (t.size() < 3) fail(line_no, "sweep expects a key and >= 1 value");
      check_unique_key(*cur, t[1], line_no);
      cur->sweeps.emplace_back(
          t[1], std::vector<std::string>(t.begin() + 2, t.end()));
    } else if (d == "seeds") {
      if (t.size() < 2) fail(line_no, "seeds expects >= 1 value");
      if (seeds_set) fail(line_no, "seeds already given");
      seeds_set = true;
      cur->seeds.clear();
      for (std::size_t i = 1; i < t.size(); ++i) {
        cur->seeds.push_back(parse_seed(t[i], line_no));
      }
    } else if (d == "repeats") {
      if (t.size() != 2) fail(line_no, "repeats expects exactly one count");
      cur->repeats = parse_i64(t[1], "repeats");
      if (cur->repeats < 1) fail(line_no, "repeats must be >= 1");
    } else if (d == "timing-only") {
      if (t.size() != 2 || (t[1] != "on" && t[1] != "off")) {
        fail(line_no, "timing-only expects on|off");
      }
      cur->timing_only = t[1] == "on";
    } else {
      fail(line_no, "unknown directive '" + d + "'");
    }
  }
  if (cur != nullptr) {
    fail(line_no, "unterminated experiment '" + cur->name + "'");
  }
  if (cfg.experiments.empty()) fail(line_no, "config defines no experiments");
  return cfg;
}

BatchConfig load_batch_config(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw sim::InvalidArgument("cannot read batch config: " + path);
  }
  return parse_batch_config(in);
}

BatchRunResult run_batch(const BatchConfig& cfg, const BatchOptions& opts) {
  struct Unit {
    const Cell* cell = nullptr;
    std::uint64_t seed = 0;
  };
  // Expand every experiment's grid up front; units carry stable pointers
  // into this list.
  std::vector<std::vector<Cell>> grids;
  grids.reserve(cfg.experiments.size());
  for (const BatchExperiment& e : cfg.experiments) {
    grids.push_back(expand_cells(e));
  }
  std::vector<Unit> units;
  std::size_t cells = 0;
  for (const std::vector<Cell>& grid : grids) {
    for (const Cell& c : grid) {
      ++cells;
      for (const std::uint64_t s : c.exp->seeds) {
        for (std::int64_t r = 0; r < c.exp->repeats; ++r) {
          units.push_back(Unit{&c, s + static_cast<std::uint64_t>(r)});
        }
      }
    }
  }

  // Parallel replicas: every unit writes only its own result slot, and the
  // merge below walks the slots in unit order — the sink never observes the
  // execution interleaving, so thread count cannot change a byte of output.
  std::vector<Metrics> results(units.size());
  sim::ThreadPool pool(opts.threads);
  pool.parallel_for(units.size(), [&](std::size_t i) {
    results[i] = run_cell_once(*units[i].cell, units[i].seed,
                               opts.timing_only);
  });

  StatsSink sink;
  for (std::size_t i = 0; i < units.size(); ++i) {
    for (const auto& [metric, value] : results[i]) {
      sink.add(units[i].cell->exp->name, units[i].cell->label, metric, value);
    }
  }

  BatchRunResult out;
  out.csv = sink.csv();
  out.table = sink.table();
  out.cells = cells;
  out.runs = units.size();
  return out;
}

}  // namespace gaudi::core

// Performance-regression baselines.
//
// A Baseline captures the headline metrics of a profile in a stable
// key=value text format; `compare` flags metrics that drifted beyond a
// tolerance.  Intended for CI: record a baseline once, fail the build when
// a simulator or model change shifts a reproduced figure unexpectedly.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/analysis.hpp"

namespace gaudi::core {

struct Baseline {
  std::map<std::string, double> metrics;

  [[nodiscard]] bool has(const std::string& key) const {
    return metrics.count(key) > 0;
  }
};

/// Headline metrics of a trace summary (times in ms, fractions in [0,1]).
[[nodiscard]] Baseline baseline_from(const TraceSummary& summary);

/// Stable text serialization: one "key = value" per line, sorted by key.
[[nodiscard]] std::string to_string(const Baseline& b);
[[nodiscard]] Baseline parse_baseline(const std::string& text);

void save_baseline(const Baseline& b, const std::string& path);
[[nodiscard]] Baseline load_baseline(const std::string& path);

struct Drift {
  std::string metric;
  double baseline = 0.0;
  double current = 0.0;
  double relative = 0.0;  ///< |current - baseline| / max(|baseline|, eps)
};

/// Metrics whose relative drift exceeds `tolerance`.  Metrics present in
/// only one side are reported with relative = infinity.
[[nodiscard]] std::vector<Drift> compare(const Baseline& baseline,
                                         const Baseline& current,
                                         double tolerance = 0.05);

}  // namespace gaudi::core

#include "core/html_report.hpp"

#include <algorithm>
#include <array>
#include <fstream>
#include <sstream>

#include "core/advisor.hpp"
#include "core/analysis.hpp"
#include "core/roofline.hpp"
#include "core/table.hpp"
#include "sim/error.hpp"

namespace {
std::string TextTableNum(double v) { return gaudi::core::TextTable::num(v); }
}  // namespace

namespace gaudi::core {

namespace {

using graph::Engine;

void html_escape(std::ostream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '<': os << "&lt;"; break;
      case '>': os << "&gt;"; break;
      case '&': os << "&amp;"; break;
      case '"': os << "&quot;"; break;
      default: os << c;
    }
  }
}

const char* engine_fill(Engine e) {
  switch (e) {
    case Engine::kMme: return "#4e79a7";
    case Engine::kTpc: return "#f28e2b";
    case Engine::kDma: return "#59a14f";
    case Engine::kHost: return "#e15759";
    case Engine::kNone: return "#bab0ac";
  }
  return "#000";
}

void emit_timeline_svg(std::ostream& os, const graph::Trace& trace) {
  constexpr std::array<Engine, 4> kRows{Engine::kMme, Engine::kTpc, Engine::kDma,
                                        Engine::kHost};
  constexpr int kWidth = 1100;
  constexpr int kRowHeight = 34;
  constexpr int kLabelWidth = 56;
  const double span_ps = static_cast<double>(trace.makespan().ps());
  if (span_ps <= 0) {
    os << "<p>(empty trace)</p>\n";
    return;
  }
  const double scale = (kWidth - kLabelWidth - 10) / span_ps;

  os << "<svg viewBox=\"0 0 " << kWidth << " " << kRows.size() * kRowHeight + 24
     << "\" xmlns=\"http://www.w3.org/2000/svg\" "
        "style=\"width:100%;font-family:monospace\">\n";
  for (std::size_t r = 0; r < kRows.size(); ++r) {
    const int y = static_cast<int>(r) * kRowHeight;
    os << "<text x=\"0\" y=\"" << y + 20 << "\" font-size=\"13\">"
       << graph::engine_name(kRows[r]) << "</text>\n";
    os << "<rect x=\"" << kLabelWidth << "\" y=\"" << y + 4 << "\" width=\""
       << kWidth - kLabelWidth - 10 << "\" height=\"" << kRowHeight - 8
       << "\" fill=\"#f4f4f4\"/>\n";
  }
  for (const auto& e : trace.events()) {
    const auto row_it = std::find(kRows.begin(), kRows.end(), e.engine);
    if (row_it == kRows.end()) continue;
    const int y = static_cast<int>(row_it - kRows.begin()) * kRowHeight;
    const double x = kLabelWidth + static_cast<double>(e.start.ps()) * scale;
    const double w = std::max(0.5, static_cast<double>(e.duration().ps()) * scale);
    os << "<rect x=\"" << x << "\" y=\"" << y + 4 << "\" width=\"" << w
       << "\" height=\"" << kRowHeight - 8 << "\" fill=\"" << engine_fill(e.engine)
       << "\"><title>";
    html_escape(os, e.name);
    os << " — " << sim::to_string(e.duration()) << " (start "
       << sim::to_string(e.start) << ")</title></rect>\n";
  }
  os << "<text x=\"" << kLabelWidth << "\" y=\""
     << kRows.size() * kRowHeight + 16 << "\" font-size=\"12\">0</text>\n";
  os << "<text x=\"" << kWidth - 90 << "\" y=\""
     << kRows.size() * kRowHeight + 16 << "\" font-size=\"12\">"
     << sim::to_string(trace.makespan()) << "</text>\n";
  os << "</svg>\n";
}

void emit_summary_table(std::ostream& os, const TraceSummary& s) {
  auto row = [&](const char* k, const std::string& v) {
    os << "<tr><td>" << k << "</td><td>" << v << "</td></tr>\n";
  };
  using gaudi::core::pct;
  os << "<table>\n";
  row("total time", sim::to_string(s.makespan));
  row("MME busy", sim::to_string(s.mme_busy) + " (" + pct(s.mme_utilization) +
                      " util, " + std::to_string(s.mme_gap_count) + " gaps)");
  row("TPC busy", sim::to_string(s.tpc_busy) + " (" + pct(s.tpc_utilization) +
                      " util)");
  row("DMA busy", sim::to_string(s.dma_busy));
  if (s.host_busy > sim::SimTime::zero()) {
    row("compiler stalls", sim::to_string(s.host_busy));
  }
  row("softmax / TPC", pct(s.softmax_share_of_tpc));
  row("engine imbalance", pct(s.engine_imbalance));
  os << "</table>\n";
}

void emit_roofline_table(std::ostream& os,
                         const std::vector<RooflinePoint>& points) {
  os << "<table>\n<tr><th>op</th><th>engine</th><th>time</th><th>FLOP/B</th>"
        "<th>achieved TFLOPS</th><th>roof TFLOPS</th><th>bound</th></tr>\n";
  for (std::size_t i = 0; i < std::min<std::size_t>(16, points.size()); ++i) {
    const auto& p = points[i];
    os << "<tr><td>";
    html_escape(os, p.name);
    os << "</td><td>" << graph::engine_name(p.engine) << "</td><td>"
       << sim::to_string(p.time) << "</td><td>" << TextTableNum(p.intensity)
       << "</td><td>" << TextTableNum(p.achieved_tflops) << "</td><td>"
       << TextTableNum(p.roof_tflops) << "</td><td>"
       << (p.memory_bound ? "memory" : "compute") << "</td></tr>\n";
  }
  os << "</table>\n";
}

}  // namespace

std::string html_report(const std::string& title, const graph::Trace& trace,
                        const sim::ChipConfig& cfg) {
  const TraceSummary summary = summarize(trace);
  std::ostringstream os;
  os << "<!DOCTYPE html>\n<html>\n<head>\n<meta charset=\"utf-8\">\n<title>";
  html_escape(os, title);
  os << "</title>\n<style>\n"
        "body{font-family:sans-serif;max-width:1150px;margin:24px auto;"
        "padding:0 12px;color:#222}\n"
        "table{border-collapse:collapse;margin:12px 0}\n"
        "td,th{border:1px solid #ccc;padding:4px 10px;font-size:14px;"
        "text-align:left}\n"
        "h1{font-size:22px}h2{font-size:17px;margin-top:28px}\n"
        ".finding{border-left:4px solid #e15759;background:#fdf3f3;"
        "padding:8px 12px;margin:8px 0;font-size:14px}\n"
        "</style>\n</head>\n<body>\n<h1>";
  html_escape(os, title);
  os << "</h1>\n<h2>Timeline</h2>\n";
  emit_timeline_svg(os, trace);
  os << "<h2>Summary</h2>\n";
  emit_summary_table(os, summary);

  AdvisorInput in;
  in.summary = summary;
  const auto findings = advise(in);
  if (!findings.empty()) {
    os << "<h2>Advisor findings</h2>\n";
    for (const auto& f : findings) {
      os << "<div class=\"finding\"><b>";
      html_escape(os, f.title);
      os << "</b><br>";
      html_escape(os, f.detail);
      os << "</div>\n";
    }
  }

  os << "<h2>Roofline (heaviest ops)</h2>\n";
  emit_roofline_table(os, roofline(trace, cfg));
  os << "</body>\n</html>\n";
  return os.str();
}

void write_html_report(const std::string& path, const std::string& title,
                       const graph::Trace& trace, const sim::ChipConfig& cfg) {
  std::ofstream f(path);
  GAUDI_CHECK(f.good(), "cannot open HTML report file: " + path);
  f << html_report(title, trace, cfg);
}

}  // namespace gaudi::core

// Trace reductions: the quantitative reading of the paper's figures.
#pragma once

#include <string>

#include "graph/trace.hpp"

namespace gaudi::core {

/// The numbers a reader extracts from one of the paper's profiler figures.
struct TraceSummary {
  sim::SimTime makespan{};
  sim::SimTime mme_busy{};
  sim::SimTime tpc_busy{};
  sim::SimTime dma_busy{};
  sim::SimTime host_busy{};          ///< compiler stalls
  double mme_utilization = 0.0;
  double tpc_utilization = 0.0;
  double mme_idle_fraction = 0.0;    ///< the "blank areas in the MME row"
  std::size_t mme_gap_count = 0;
  sim::SimTime mme_longest_gap{};
  double softmax_share_of_tpc = 0.0; ///< softmax ops / TPC busy time
  double exp_share_of_tpc = 0.0;     ///< exponential ops / TPC busy time
  /// | MME busy − TPC busy | / max(...): 0 = balanced, →1 = one-sided.
  double engine_imbalance = 0.0;
};

[[nodiscard]] TraceSummary summarize(const graph::Trace& trace);

/// Multi-line human-readable report of a summary.
[[nodiscard]] std::string to_report(const TraceSummary& s, const std::string& title);

}  // namespace gaudi::core

#include "core/roofline.hpp"

#include <algorithm>
#include <map>

#include "core/table.hpp"
#include "sim/error.hpp"

namespace gaudi::core {

double machine_balance(const sim::ChipConfig& cfg, graph::Engine engine) {
  const double bw = cfg.memory.hbm_bandwidth_bytes_per_s;
  switch (engine) {
    case graph::Engine::kMme:
      return cfg.mme.peak_flops() / bw;
    case graph::Engine::kTpc:
      return cfg.tpc.cluster_peak_flops() / bw;
    default:
      throw sim::InvalidArgument("machine balance defined for compute engines");
  }
}

std::vector<RooflinePoint> roofline(const graph::Trace& trace,
                                    const sim::ChipConfig& cfg) {
  struct Acc {
    sim::SimTime time{};
    std::uint64_t flops = 0;
    std::size_t bytes = 0;
  };
  std::map<std::pair<std::string, graph::Engine>, Acc> by_op;
  for (const auto& e : trace.events()) {
    if (e.engine != graph::Engine::kMme && e.engine != graph::Engine::kTpc) {
      continue;
    }
    Acc& acc = by_op[{e.name, e.engine}];
    acc.time += e.duration();
    acc.flops += e.flops;
    acc.bytes += e.bytes;
  }

  std::vector<RooflinePoint> points;
  points.reserve(by_op.size());
  for (const auto& [key, acc] : by_op) {
    RooflinePoint p;
    p.name = key.first;
    p.engine = key.second;
    p.time = acc.time;
    p.flops = acc.flops;
    p.bytes = acc.bytes;
    if (acc.bytes > 0) {
      p.intensity = static_cast<double>(acc.flops) / static_cast<double>(acc.bytes);
    }
    const double peak = key.second == graph::Engine::kMme
                            ? cfg.mme.peak_flops()
                            : cfg.tpc.cluster_peak_flops();
    p.roof_tflops =
        std::min(peak, p.intensity * cfg.memory.hbm_bandwidth_bytes_per_s) * 1e-12;
    p.memory_bound = p.intensity < machine_balance(cfg, key.second);
    if (p.time > sim::SimTime::zero()) {
      p.achieved_tflops =
          static_cast<double>(acc.flops) / p.time.seconds() * 1e-12;
    }
    if (p.roof_tflops > 0.0) {
      p.roof_fraction = p.achieved_tflops / p.roof_tflops;
    }
    points.push_back(std::move(p));
  }
  std::sort(points.begin(), points.end(),
            [](const RooflinePoint& a, const RooflinePoint& b) {
              return a.time > b.time;
            });
  return points;
}

std::string format_roofline(const std::vector<RooflinePoint>& points,
                            std::size_t top_n) {
  TextTable table({"Op", "Engine", "Time (ms)", "FLOP/B", "Achieved TFLOPS",
                   "Roof TFLOPS", "Bound"});
  for (std::size_t i = 0; i < std::min(top_n, points.size()); ++i) {
    const auto& p = points[i];
    table.add_row({p.name, std::string(graph::engine_name(p.engine)),
                   TextTable::num(p.time.ms()), TextTable::num(p.intensity, 1),
                   TextTable::num(p.achieved_tflops), TextTable::num(p.roof_tflops),
                   p.memory_bound ? "memory" : "compute"});
  }
  return table.to_string();
}

}  // namespace gaudi::core

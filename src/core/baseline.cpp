#include "core/baseline.hpp"

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

#include "sim/error.hpp"

namespace gaudi::core {

Baseline baseline_from(const TraceSummary& summary) {
  Baseline b;
  b.metrics["makespan_ms"] = summary.makespan.ms();
  b.metrics["mme_busy_ms"] = summary.mme_busy.ms();
  b.metrics["tpc_busy_ms"] = summary.tpc_busy.ms();
  b.metrics["dma_busy_ms"] = summary.dma_busy.ms();
  // Degenerate (zero-duration) summaries carry NaN ratios; the key=value
  // format stays parseable only with finite numbers, so store 0.
  auto finite = [](double v) { return std::isfinite(v) ? v : 0.0; };
  b.metrics["mme_idle_fraction"] = finite(summary.mme_idle_fraction);
  b.metrics["softmax_share_of_tpc"] = finite(summary.softmax_share_of_tpc);
  b.metrics["engine_imbalance"] = finite(summary.engine_imbalance);
  return b;
}

std::string to_string(const Baseline& b) {
  std::ostringstream os;
  os.precision(12);
  for (const auto& [key, value] : b.metrics) {
    os << key << " = " << value << "\n";
  }
  return os.str();
}

Baseline parse_baseline(const std::string& text) {
  Baseline b;
  std::istringstream is(text);
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    const auto eq = line.find('=');
    GAUDI_CHECK(eq != std::string::npos,
                "baseline line " + std::to_string(line_no) + " lacks '='");
    std::string key = line.substr(0, eq);
    while (!key.empty() && key.back() == ' ') key.pop_back();
    GAUDI_CHECK(!key.empty(), "baseline line " + std::to_string(line_no) +
                                  " has an empty key");
    try {
      b.metrics[key] = std::stod(line.substr(eq + 1));
    } catch (const std::exception&) {
      throw sim::InvalidArgument("baseline line " + std::to_string(line_no) +
                                 " has a non-numeric value");
    }
  }
  return b;
}

void save_baseline(const Baseline& b, const std::string& path) {
  std::ofstream f(path);
  GAUDI_CHECK(f.good(), "cannot open baseline file for writing: " + path);
  f << to_string(b);
}

Baseline load_baseline(const std::string& path) {
  std::ifstream f(path);
  GAUDI_CHECK(f.good(), "cannot open baseline file: " + path);
  std::ostringstream os;
  os << f.rdbuf();
  return parse_baseline(os.str());
}

std::vector<Drift> compare(const Baseline& baseline, const Baseline& current,
                           double tolerance) {
  std::vector<Drift> drifts;
  auto note = [&](const std::string& key, double base, double cur) {
    constexpr double kEps = 1e-12;
    const double rel = std::abs(cur - base) / std::max(std::abs(base), kEps);
    if (rel > tolerance) {
      drifts.push_back(Drift{key, base, cur, rel});
    }
  };
  for (const auto& [key, base] : baseline.metrics) {
    const auto it = current.metrics.find(key);
    if (it == current.metrics.end()) {
      drifts.push_back(
          Drift{key, base, 0.0, std::numeric_limits<double>::infinity()});
    } else {
      note(key, base, it->second);
    }
  }
  for (const auto& [key, cur] : current.metrics) {
    if (!baseline.has(key)) {
      drifts.push_back(
          Drift{key, 0.0, cur, std::numeric_limits<double>::infinity()});
    }
  }
  return drifts;
}

}  // namespace gaudi::core

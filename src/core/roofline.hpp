// Roofline analysis of a hardware trace.
//
// For every compute op the trace records FLOPs and global-memory traffic;
// against each engine's peak throughput and the HBM bandwidth this yields
// the classic roofline classification: is an op compute-bound or
// memory-bound, and how close does it run to its bound?  This quantifies
// the paper's qualitative reading — softmax and the element-wise ops are
// low-intensity TPC work, matmuls are high-intensity MME work — and makes
// insight #3 ("turn your computation into matmuls") measurable.
#pragma once

#include <string>
#include <vector>

#include "graph/trace.hpp"
#include "sim/chip_config.hpp"

namespace gaudi::core {

struct RooflinePoint {
  std::string name;
  graph::Engine engine = graph::Engine::kNone;
  sim::SimTime time{};                  ///< aggregated over same-name events
  std::uint64_t flops = 0;
  std::size_t bytes = 0;
  double intensity = 0.0;               ///< FLOP per byte of global traffic
  double achieved_tflops = 0.0;
  double roof_tflops = 0.0;             ///< min(peak, intensity * bandwidth)
  bool memory_bound = false;            ///< intensity below machine balance
  double roof_fraction = 0.0;           ///< achieved / roof
};

/// Aggregates the trace by (name, engine) and classifies each op.
[[nodiscard]] std::vector<RooflinePoint> roofline(const graph::Trace& trace,
                                                  const sim::ChipConfig& cfg);

/// Machine balance (FLOP/byte) of an engine against HBM bandwidth.
[[nodiscard]] double machine_balance(const sim::ChipConfig& cfg,
                                     graph::Engine engine);

/// Table sorted by time, heaviest first.
[[nodiscard]] std::string format_roofline(const std::vector<RooflinePoint>& points,
                                          std::size_t top_n = 16);

}  // namespace gaudi::core

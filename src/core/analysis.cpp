#include "core/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "graph/validate.hpp"
#include "sim/error.hpp"

namespace gaudi::core {

using graph::Engine;

TraceSummary summarize(const graph::Trace& trace) {
#ifndef NDEBUG
  // Debug builds sanity-check every trace that reaches analysis: the
  // graph-independent invariants (sane times, no per-engine overlap) must
  // hold for any summary to be meaningful.
  const auto violations = graph::TraceValidator::validate_trace(trace);
  GAUDI_ASSERT(violations.empty(),
               graph::TraceValidator::format(violations));
#endif
  TraceSummary s;
  s.makespan = trace.makespan();
  s.mme_busy = trace.busy(Engine::kMme);
  s.tpc_busy = trace.busy(Engine::kTpc);
  s.dma_busy = trace.busy(Engine::kDma);
  s.host_busy = trace.busy(Engine::kHost);
  s.mme_utilization = trace.utilization(Engine::kMme);
  s.tpc_utilization = trace.utilization(Engine::kTpc);
  s.mme_idle_fraction = 1.0 - s.mme_utilization;

  const auto gaps = trace.gaps(Engine::kMme);
  s.mme_gap_count = gaps.size();
  for (const auto& g : gaps) {
    s.mme_longest_gap = std::max(s.mme_longest_gap, g.duration());
  }

  s.softmax_share_of_tpc = trace.share_of_engine("softmax", Engine::kTpc);
  s.exp_share_of_tpc = trace.share_of_engine("exp", Engine::kTpc) +
                       trace.share_of_engine("offset", Engine::kTpc) +
                       trace.share_of_engine("pre_scale", Engine::kTpc);

  const double m = s.mme_busy.seconds();
  const double t = s.tpc_busy.seconds();
  const double mx = std::max(m, t);
  s.engine_imbalance = mx > 0.0 ? std::abs(m - t) / mx : 0.0;
  return s;
}

std::string to_report(const TraceSummary& s, const std::string& title) {
  std::ostringstream os;
  os << "== " << title << " ==\n";
  os << "  total time       : " << sim::to_string(s.makespan) << "\n";
  os << "  MME busy         : " << sim::to_string(s.mme_busy) << "  ("
     << static_cast<int>(s.mme_utilization * 100.0 + 0.5) << "% util, "
     << static_cast<int>(s.mme_idle_fraction * 100.0 + 0.5) << "% idle, "
     << s.mme_gap_count << " gaps, longest "
     << sim::to_string(s.mme_longest_gap) << ")\n";
  os << "  TPC busy         : " << sim::to_string(s.tpc_busy) << "  ("
     << static_cast<int>(s.tpc_utilization * 100.0 + 0.5) << "% util)\n";
  os << "  DMA busy         : " << sim::to_string(s.dma_busy) << "\n";
  if (s.host_busy > sim::SimTime::zero()) {
    os << "  compiler stalls  : " << sim::to_string(s.host_busy) << "\n";
  }
  os << "  softmax / TPC    : "
     << static_cast<int>(s.softmax_share_of_tpc * 100.0 + 0.5) << "%\n";
  os << "  exp-ops / TPC    : "
     << static_cast<int>(s.exp_share_of_tpc * 100.0 + 0.5) << "%\n";
  os << "  engine imbalance : "
     << static_cast<int>(s.engine_imbalance * 100.0 + 0.5) << "%\n";
  return os.str();
}

}  // namespace gaudi::core

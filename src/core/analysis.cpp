#include "core/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "core/table.hpp"
#include "graph/validate.hpp"
#include "sim/error.hpp"

namespace gaudi::core {

using graph::Engine;

TraceSummary summarize(const graph::Trace& trace) {
#ifndef NDEBUG
  // Debug builds sanity-check every trace that reaches analysis: the
  // graph-independent invariants (sane times, no per-engine overlap) must
  // hold for any summary to be meaningful.
  const auto violations = graph::TraceValidator::validate_trace(trace);
  GAUDI_ASSERT(violations.empty(),
               graph::TraceValidator::format(violations));
#endif
  TraceSummary s;
  s.makespan = trace.makespan();
  s.mme_busy = trace.busy(Engine::kMme);
  s.tpc_busy = trace.busy(Engine::kTpc);
  s.dma_busy = trace.busy(Engine::kDma);
  s.host_busy = trace.busy(Engine::kHost);
  s.mme_utilization = trace.utilization(Engine::kMme);
  s.tpc_utilization = trace.utilization(Engine::kTpc);
  s.mme_idle_fraction = 1.0 - s.mme_utilization;

  const auto gaps = trace.gaps(Engine::kMme);
  s.mme_gap_count = gaps.size();
  for (const auto& g : gaps) {
    s.mme_longest_gap = std::max(s.mme_longest_gap, g.duration());
  }

  s.softmax_share_of_tpc = trace.share_of_engine("softmax", Engine::kTpc);
  s.exp_share_of_tpc = trace.share_of_engine("exp", Engine::kTpc) +
                       trace.share_of_engine("offset", Engine::kTpc) +
                       trace.share_of_engine("pre_scale", Engine::kTpc);

  const double m = s.mme_busy.seconds();
  const double t = s.tpc_busy.seconds();
  const double mx = std::max(m, t);

  // Ratios over a zero denominator are undefined, not zero: carry NaN so
  // report renderers show "n/a" instead of a misleading 0%.
  const double undefined = std::numeric_limits<double>::quiet_NaN();
  if (s.makespan <= sim::SimTime::zero()) {
    s.mme_utilization = s.tpc_utilization = undefined;
    s.mme_idle_fraction = undefined;
  }
  if (s.tpc_busy <= sim::SimTime::zero()) {
    s.softmax_share_of_tpc = s.exp_share_of_tpc = undefined;
  }
  s.engine_imbalance = mx > 0.0 ? std::abs(m - t) / mx : undefined;
  return s;
}

std::string to_report(const TraceSummary& s, const std::string& title) {
  std::ostringstream os;
  os << "== " << title << " ==\n";
  os << "  total time       : " << sim::to_string(s.makespan) << "\n";
  os << "  MME busy         : " << sim::to_string(s.mme_busy) << "  ("
     << pct(s.mme_utilization) << " util, " << pct(s.mme_idle_fraction)
     << " idle, " << s.mme_gap_count << " gaps, longest "
     << sim::to_string(s.mme_longest_gap) << ")\n";
  os << "  TPC busy         : " << sim::to_string(s.tpc_busy) << "  ("
     << pct(s.tpc_utilization) << " util)\n";
  os << "  DMA busy         : " << sim::to_string(s.dma_busy) << "\n";
  if (s.host_busy > sim::SimTime::zero()) {
    os << "  compiler stalls  : " << sim::to_string(s.host_busy) << "\n";
  }
  os << "  softmax / TPC    : " << pct(s.softmax_share_of_tpc) << "\n";
  os << "  exp-ops / TPC    : " << pct(s.exp_share_of_tpc) << "\n";
  os << "  engine imbalance : " << pct(s.engine_imbalance) << "\n";
  return os.str();
}

}  // namespace gaudi::core

#include "core/advisor.hpp"

#include <sstream>

#include "core/table.hpp"

namespace gaudi::core {

std::vector<Finding> advise(const AdvisorInput& input) {
  const TraceSummary& s = input.summary;
  std::vector<Finding> findings;

  if (input.overlap_makespan && s.makespan > sim::SimTime::zero()) {
    const double gain =
        1.0 - input.overlap_makespan->seconds() / s.makespan.seconds();
    if (gain > 0.10) {
      findings.push_back(Finding{
          Severity::kCritical, "Graph compiler misses cross-engine overlap",
          "An independence-aware schedule of the same graph is " + pct(gain) +
              " faster (" + sim::to_string(*input.overlap_makespan) + " vs " +
              sim::to_string(s.makespan) +
              "). Provide all source code so the Graph Compiler can analyze it "
              "thoroughly and generate a good mapping and schedule of MME and "
              "TPC.",
          1});
    }
  }

  if (s.host_busy > sim::SimTime::zero()) {
    findings.push_back(Finding{
        Severity::kWarning, "JIT recompilation stall",
        "The run spent " + sim::to_string(s.host_busy) +
            " in graph-compiler recompilation triggered by an op without "
            "first-class backend support. Use very basic operations provided "
            "by Torch and avoid high-level abstractions for good mapping and "
            "scheduling.",
        2});
  }

  if (s.mme_idle_fraction > 0.30 && s.tpc_busy > s.mme_busy) {
    findings.push_back(Finding{
        Severity::kCritical, "MME idle while TPC is the bottleneck",
        "The MME is idle " + pct(s.mme_idle_fraction) + " of the run (" +
            std::to_string(s.mme_gap_count) + " gaps, longest " +
            sim::to_string(s.mme_longest_gap) +
            ") while the TPC works. Restructure the model so most "
            "calculations become matrix multiplications to exploit the MME's "
            "computational capability.",
        3});
  }

  if (s.softmax_share_of_tpc > 0.50) {
    findings.push_back(Finding{
        Severity::kWarning, "Softmax dominates TPC time",
        "Softmax accounts for " + pct(s.softmax_share_of_tpc) +
            " of TPC busy time; its exponential and reduction operations are "
            "ill-suited to the SIMD TPC. Consider linearized attention, which "
            "maps the bulk of self-attention onto the MME.",
        3});
  }

  if (s.engine_imbalance > 0.5 && s.makespan > sim::SimTime::zero()) {
    findings.push_back(Finding{
        Severity::kInfo, "Unbalanced MME/TPC workload",
        "Engine busy times differ by " + pct(s.engine_imbalance) +
            " (MME " + sim::to_string(s.mme_busy) + ", TPC " +
            sim::to_string(s.tpc_busy) +
            "); the slower engine bounds throughput when the schedule cannot "
            "overlap them.",
        3});
  }

  return findings;
}

std::string format_findings(const std::vector<Finding>& findings) {
  std::ostringstream os;
  if (findings.empty()) {
    os << "advisor: no findings — engines are balanced and overlapped.\n";
    return os.str();
  }
  for (const auto& f : findings) {
    const char* sev = f.severity == Severity::kCritical ? "CRITICAL"
                      : f.severity == Severity::kWarning ? "WARNING"
                                                         : "INFO";
    os << "[" << sev << "] " << f.title;
    if (f.insight > 0) os << "  (paper insight #" << f.insight << ")";
    os << "\n    " << f.detail << "\n";
  }
  return os.str();
}

}  // namespace gaudi::core

// Automated performance advisor implementing the paper's §4 takeaways.
//
// Given a profile, it emits the findings a Gaudi performance engineer would
// write down: unbalanced MME/TPC workloads, softmax-on-TPC bottlenecks,
// recompilation stalls from unsupported ops, and missed overlap between
// independent branches.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/analysis.hpp"
#include "graph/trace.hpp"

namespace gaudi::core {

enum class Severity : std::uint8_t { kInfo, kWarning, kCritical };

struct Finding {
  Severity severity = Severity::kInfo;
  std::string title;
  std::string detail;
  /// Which of the paper's three insights (§4) this instantiates (1-3), or 0.
  int insight = 0;
};

struct AdvisorInput {
  TraceSummary summary;
  /// Makespan of the same graph under the overlap scheduler, if measured;
  /// enables the missed-overlap finding (Insight 1).
  std::optional<sim::SimTime> overlap_makespan;
};

[[nodiscard]] std::vector<Finding> advise(const AdvisorInput& input);

[[nodiscard]] std::string format_findings(const std::vector<Finding>& findings);

}  // namespace gaudi::core

// Command-line front-end logic for the gaudisim tool.
//
// Kept in the library (rather than the tool's main) so the parsing and
// command dispatch are unit-testable; `tools/gaudisim_cli.cpp` is a thin
// wrapper.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace gaudi::core {

/// Parses `text` as a base-10 signed 64-bit integer.  Unlike bare
/// `std::stoll`, this throws sim::InvalidArgument (naming `what`, e.g. the
/// offending flag) on empty input, non-numeric input, trailing garbage
/// ("12abc"), or overflow — the CLI turns that into a usage error instead
/// of std::terminate.
[[nodiscard]] std::int64_t parse_i64(const std::string& text,
                                     const std::string& what);

/// Minimal --flag / --key value parser.
class ArgParser {
 public:
  /// Parses `args` (excluding argv[0] and the subcommand).  Throws
  /// sim::InvalidArgument on a malformed list (missing value, unknown-style
  /// token).
  explicit ArgParser(std::vector<std::string> args);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;
  /// Keys that were provided but never read — surfaced as errors so typos
  /// fail loudly.
  [[nodiscard]] std::vector<std::string> unused() const;

 private:
  std::map<std::string, std::string> kv_;
  mutable std::map<std::string, bool> read_;
};

/// Executes the CLI: `args` is the full argv list (argv[0] included).
/// Output goes to `out`; returns the process exit code.
int run_cli(const std::vector<std::string>& args, std::ostream& out);

}  // namespace gaudi::core

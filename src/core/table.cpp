#include "core/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "sim/error.hpp"

namespace gaudi::core {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  GAUDI_CHECK(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  GAUDI_CHECK(cells.size() == header_.size(),
              "table row width does not match header");
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  if (!std::isfinite(v)) return "n/a";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string pct(double fraction) {
  if (!std::isfinite(fraction)) return "n/a";
  return std::to_string(static_cast<int>(fraction * 100.0 + 0.5)) + "%";
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << " " << row[c] << std::string(width[c] - row[c].size(), ' ') << " |";
    }
    os << "\n";
  };
  auto emit_rule = [&]() {
    os << "+";
    for (std::size_t c = 0; c < width.size(); ++c) {
      os << std::string(width[c] + 2, '-') << "+";
    }
    os << "\n";
  };

  emit_rule();
  emit_row(header_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
  return os.str();
}

}  // namespace gaudi::core

// Unified statistics sink for the batch-experiment runner.
//
// Every command a batch config can launch (serve, profile-layer,
// profile-model, mme-vs-tpc) reports through this one funnel: a flat stream
// of (experiment, cell, metric, value) samples.  The sink groups samples by
// cell — one cell per point of an experiment's sweep grid, accumulating its
// seeds × repeats replicas — and reduces each (cell, metric) series to
// n/mean/p50/p99.  Two renderings share the aggregation: a long-format CSV
// whose bytes are deterministic (the CI smoke lane `cmp`s two runs), and a
// fixed-width text table for the terminal.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace gaudi::core {

class StatsSink {
 public:
  /// Records one replica's value of `metric` for `cell` of `experiment`.
  /// Cells and metrics render in first-insertion order, so callers that add
  /// in a deterministic order get deterministic output.
  void add(const std::string& experiment, const std::string& cell,
           const std::string& metric, double value);

  /// Long format, one aggregated row per (experiment, cell, metric):
  ///   experiment,cell,metric,n,mean,p50,p99
  /// Numbers use "%.9g" so equal doubles always print equal bytes.
  [[nodiscard]] std::string csv() const;

  /// Fixed-width table of the same rows.
  [[nodiscard]] std::string table() const;

  [[nodiscard]] std::size_t samples() const { return samples_; }
  [[nodiscard]] std::size_t series() const { return cells_.size(); }

 private:
  struct Series {
    std::string experiment;
    std::string cell;
    std::string metric;
    std::vector<double> values;
  };
  std::vector<Series> cells_;                 ///< insertion order
  std::map<std::string, std::size_t> index_;  ///< composite key -> cells_ idx
  std::size_t samples_ = 0;
};

}  // namespace gaudi::core

#include "core/experiments.hpp"

#include <utility>

#include "core/table.hpp"
#include "tpc/cluster.hpp"
#include "tpc/kernels.hpp"

namespace gaudi::core {

using graph::Engine;
using graph::Graph;
using graph::OpKind;
using graph::ValueId;

// ---------------------------------------------------------------------------
// Table 1
// ---------------------------------------------------------------------------

std::vector<OpMappingRow> run_op_mapping_probe() {
  Graph g;
  const ValueId a = g.input(tensor::Shape{{8, 8}}, tensor::DType::F32, "a");
  const ValueId b = g.input(tensor::Shape{{8, 8}}, tensor::DType::F32, "b");

  struct Probe {
    std::string op;
    std::string explanation;
    graph::NodeId node;
  };
  std::vector<Probe> probes;
  auto note = [&](std::string op, std::string expl) {
    probes.push_back(
        Probe{std::move(op), std::move(expl),
              static_cast<graph::NodeId>(g.num_nodes() - 1)});
  };

  g.mul(a, b);
  note("torch.mul", "element wise mul");
  g.matmul(a, b);
  note("torch.matmul", "matrix product");
  g.unary(tpc::UnaryKind::kSquare, a);
  note("torch.square", "tensor square");
  g.unary(tpc::UnaryKind::kSquare, a);
  note("**", "tensor square");
  g.add(a, b);
  note("tensor +- tensor", "tensor +- tensor");
  g.mul_scalar(a, 2.0f);
  note("scalar * tensor", "scalar * tensor");
  g.add_scalar(a, 2.0f);
  note("scalar +- tensor", "scalar +- tensor");
  g.unary(tpc::UnaryKind::kSqrt, a);
  note("torch.sqrt", "square root");
  g.unary(tpc::UnaryKind::kLog, a);
  note("torch.log", "natural logarithm");

  std::vector<OpMappingRow> rows;
  rows.reserve(probes.size());
  for (const auto& p : probes) {
    rows.push_back(
        OpMappingRow{p.op, p.explanation, engine_of(g.node(p.node).kind)});
  }
  return rows;
}

std::string format_op_mapping(const std::vector<OpMappingRow>& rows) {
  TextTable t({"Operation", "Explanation", "Mapping"});
  for (const auto& r : rows) {
    t.add_row({r.operation, r.explanation, std::string(engine_name(r.engine))});
  }
  return t.to_string();
}

// ---------------------------------------------------------------------------
// Table 2
// ---------------------------------------------------------------------------

std::vector<MmeVsTpcRow> run_mme_vs_tpc(const sim::ChipConfig& cfg,
                                        const std::vector<std::int64_t>& sizes,
                                        std::int64_t batch) {
  const mme::MmeEngine mme(cfg.mme);
  const tpc::TpcCluster cluster(cfg.tpc);

  std::vector<MmeVsTpcRow> rows;
  rows.reserve(sizes.size());
  for (const std::int64_t s : sizes) {
    MmeVsTpcRow row;
    row.size = s;

    const mme::MmeRunResult rm = mme.cost(mme::GemmShape{batch, s, s, s});
    row.t_mme_ms = rm.duration.ms();
    row.f_mme_tflops = rm.tflops();

    const tensor::Shape shape{{batch, s, s}};
    const tensor::Tensor a = tensor::Tensor::phantom(shape);
    const tensor::Tensor b = tensor::Tensor::phantom(shape);
    const tensor::Tensor c = tensor::Tensor::phantom(shape);
    const tpc::BatchedMatMulTpcKernel kernel(a, b, c);
    const tpc::RunResult rt = cluster.run(kernel, tpc::ExecMode::kTiming);
    row.t_tpc_ms = rt.duration.ms();
    row.f_tpc_tflops = rt.tflops();

    row.speedup = row.t_mme_ms > 0.0 ? row.t_tpc_ms / row.t_mme_ms : 0.0;
    rows.push_back(row);
  }
  return rows;
}

std::string format_mme_vs_tpc(const std::vector<MmeVsTpcRow>& rows) {
  TextTable t({"Size", "T_MME (ms)", "F_MME (TFLOPS)", "T_TPC (ms)",
               "F_TPC (TFLOPS)", "Speedup"});
  for (const auto& r : rows) {
    t.add_row({std::to_string(r.size), TextTable::num(r.t_mme_ms),
               TextTable::num(r.f_mme_tflops), TextTable::num(r.t_tpc_ms),
               TextTable::num(r.f_tpc_tflops), TextTable::num(r.speedup, 1)});
  }
  return t.to_string();
}

// ---------------------------------------------------------------------------
// Figures 4-7
// ---------------------------------------------------------------------------

LayerProfile run_layer_profile(const LayerExperiment& exp,
                               const sim::ChipConfig& cfg) {
  Graph g;
  nn::ParamStore params(0x1A1E);
  const std::int64_t d_model = exp.heads * exp.head_dim;
  const std::int64_t tokens = exp.batch * exp.seq_len;

  const ValueId x = g.input(tensor::Shape{{tokens, d_model}}, tensor::DType::F32,
                            "layer_input");

  nn::TransformerLayerConfig layer_cfg;
  layer_cfg.d_model = d_model;
  layer_cfg.heads = exp.heads;
  layer_cfg.head_dim = exp.head_dim;
  layer_cfg.attention = exp.attention;
  layer_cfg.ffn_dim = exp.ffn_dim;
  nn::TransformerLayer layer(g, params, layer_cfg, "layer");
  const ValueId y = layer(g, params, x, exp.batch, exp.seq_len);
  g.mark_output(y);

  graph::Runtime runtime(cfg);
  const graph::CompiledGraph compiled = runtime.compile(g);
  graph::RunOptions opts;
  opts.mode = tpc::ExecMode::kTiming;
  opts.policy = exp.policy;
  const graph::ProfileResult result = runtime.run(compiled, {}, opts);

  LayerProfile profile;
  profile.summary = summarize(result.trace);
  profile.trace = result.trace;
  profile.hbm_peak_bytes = result.hbm_peak_bytes;
  return profile;
}

// ---------------------------------------------------------------------------
// Figures 8-9
// ---------------------------------------------------------------------------

LlmProfile run_llm_profile(const nn::LmConfig& model_cfg,
                           graph::SchedulePolicy policy,
                           const sim::ChipConfig& cfg) {
  Graph g;
  const nn::LanguageModel model = nn::build_language_model(g, model_cfg);

  graph::Runtime runtime(cfg);
  const graph::CompiledGraph compiled = runtime.compile(g);
  graph::RunOptions opts;
  opts.mode = tpc::ExecMode::kTiming;
  opts.policy = policy;
  const graph::ProfileResult result = runtime.run(compiled, {}, opts);

  LlmProfile profile;
  profile.summary = summarize(result.trace);
  profile.trace = result.trace;
  profile.hbm_peak_bytes = result.hbm_peak_bytes;
  profile.param_count = model.param_count(g);
  profile.node_count = g.num_nodes();
  return profile;
}

}  // namespace gaudi::core

// Declarative batch-experiment runner.
//
// A plain-text config describes a grid of simulator runs; the runner
// expands it, executes every replica — in parallel on a host thread pool
// when asked — and funnels every result through one StatsSink, so a whole
// paper-style sweep (a serving rate × batch grid, a layer-shape study, an
// engine comparison) is reproduced by a single `gaudisim_cli batch` line
// with byte-deterministic CSV output.
//
// Grammar (line-oriented; '#' starts a comment, blank lines ignored):
//
//   experiment <name>
//     command <serve|profile-layer|profile-model|mme-vs-tpc>
//     set <key> <value>          # fixed parameter (CLI option spelling)
//     sweep <key> <v1> <v2> ...  # one grid axis; axes multiply
//     seeds <s1> <s2> ...        # workload seeds (0x... accepted)
//     repeats <n>                # replicas per seed: seed+0 .. seed+n-1
//     timing-only <on|off>       # serve cells only; default defers to env
//   end
//
// Each point of the sweep grid is one *cell*; each cell runs once per
// (seed, repeat) pair with effective seed `seed + repeat`, and the cell's
// replicas aggregate to n/mean/p50/p99 per metric.  Replicas execute on a
// sim::ThreadPool and merge in replica order, so the report is identical
// however many worker threads ran it.  Timing costs flow through the
// process-wide graph::TimingMemo, so replicas of the same model pay for
// graph construction and scheduling once.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/stats_sink.hpp"

namespace gaudi::core {

struct BatchExperiment {
  std::string name;
  std::string command;
  /// Fixed key=value parameters, in file order.
  std::vector<std::pair<std::string, std::string>> fixed;
  /// Sweep axes, in file order; the grid is their cartesian product.
  std::vector<std::pair<std::string, std::vector<std::string>>> sweeps;
  std::vector<std::uint64_t> seeds{0x5E21E};
  std::int64_t repeats = 1;
  /// serve cells only; unset defers to ServeConfig's GAUDI_TIMING_ONLY
  /// fallback.
  std::optional<bool> timing_only{};
};

struct BatchConfig {
  std::vector<BatchExperiment> experiments;
};

/// Parses the grammar above.  Throws sim::InvalidArgument naming the line
/// of the first error (unknown directive, unknown command, empty sweep,
/// duplicate key, missing end, ...).
[[nodiscard]] BatchConfig parse_batch_config(std::istream& in);

/// Reads and parses `path`; throws sim::IoError when unreadable.
[[nodiscard]] BatchConfig load_batch_config(const std::string& path);

struct BatchOptions {
  /// Worker threads for replica execution; 0 picks the hardware default,
  /// 1 forces serial execution (the output is identical either way).
  std::size_t threads = 0;
  /// Explicit timing-only override for experiments that do not set their
  /// own; unset keeps each experiment's (or the environment's) choice.
  std::optional<bool> timing_only{};
};

struct BatchRunResult {
  std::string csv;    ///< StatsSink::csv() — the byte-deterministic artifact
  std::string table;  ///< StatsSink::table()
  std::size_t cells = 0;
  std::size_t runs = 0;
};

/// Expands and executes `cfg`.  Deterministic: same config, same bytes out,
/// regardless of `opts.threads`.
[[nodiscard]] BatchRunResult run_batch(const BatchConfig& cfg,
                                       const BatchOptions& opts = {});

}  // namespace gaudi::core

// Minimal fixed-width text table renderer for experiment reports.
#pragma once

#include <string>
#include <vector>

namespace gaudi::core {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.  Non-finite
  /// values (a ratio over a zero-duration or zero-FLOP trace) render as
  /// "n/a" rather than leaking "nan"/"inf" into reports.
  [[nodiscard]] static std::string num(double v, int precision = 2);

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders a fraction as a rounded integer percentage ("42%"); non-finite
/// fractions — 0/0 utilization of an empty trace, a share of a zero-busy
/// engine — render as "n/a".  Shared by every report surface so degenerate
/// traces never print "nan%".
[[nodiscard]] std::string pct(double fraction);

}  // namespace gaudi::core

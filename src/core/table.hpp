// Minimal fixed-width text table renderer for experiment reports.
#pragma once

#include <string>
#include <vector>

namespace gaudi::core {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  [[nodiscard]] static std::string num(double v, int precision = 2);

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gaudi::core

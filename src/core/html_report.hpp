// Self-contained HTML profile reports.
//
// One file, no external assets: an SVG timeline (the paper's figures,
// interactive — hover for op names and durations), the summary metrics, the
// advisor findings and the per-op roofline table.  The visual counterpart
// of the ASCII timeline for sharing results.
#pragma once

#include <string>

#include "graph/trace.hpp"
#include "sim/chip_config.hpp"

namespace gaudi::core {

[[nodiscard]] std::string html_report(const std::string& title,
                                      const graph::Trace& trace,
                                      const sim::ChipConfig& cfg);

void write_html_report(const std::string& path, const std::string& title,
                       const graph::Trace& trace, const sim::ChipConfig& cfg);

}  // namespace gaudi::core

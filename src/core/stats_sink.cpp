#include "core/stats_sink.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <sstream>

#include "core/table.hpp"
#include "serve/metrics.hpp"

namespace gaudi::core {

namespace {

/// "%.9g": enough digits that distinct doubles rarely collide, few enough
/// that the same double always renders the same bytes on every platform.
std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

double mean_of(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return std::accumulate(v.begin(), v.end(), 0.0) /
         static_cast<double>(v.size());
}

}  // namespace

void StatsSink::add(const std::string& experiment, const std::string& cell,
                    const std::string& metric, double value) {
  // \x1f (unit separator) cannot appear in config tokens, so the composite
  // key is unambiguous.
  const std::string key = experiment + '\x1f' + cell + '\x1f' + metric;
  const auto it = index_.find(key);
  if (it != index_.end()) {
    cells_[it->second].values.push_back(value);
  } else {
    index_.emplace(key, cells_.size());
    cells_.push_back(Series{experiment, cell, metric, {value}});
  }
  ++samples_;
}

std::string StatsSink::csv() const {
  std::ostringstream os;
  os << "experiment,cell,metric,n,mean,p50,p99\n";
  for (const Series& s : cells_) {
    os << s.experiment << ',' << s.cell << ',' << s.metric << ','
       << s.values.size() << ',' << fmt(mean_of(s.values)) << ','
       << fmt(serve::percentile(s.values, 50.0)) << ','
       << fmt(serve::percentile(s.values, 99.0)) << '\n';
  }
  return os.str();
}

std::string StatsSink::table() const {
  TextTable t({"experiment", "cell", "metric", "n", "mean", "p50", "p99"});
  for (const Series& s : cells_) {
    t.add_row({s.experiment, s.cell, s.metric,
               std::to_string(s.values.size()), fmt(mean_of(s.values)),
               fmt(serve::percentile(s.values, 50.0)),
               fmt(serve::percentile(s.values, 99.0))});
  }
  return t.to_string();
}

}  // namespace gaudi::core

// Environment-variable parsing for simulator opt-ins.
//
// The validator (GAUDI_VALIDATE) and the fault-injection layer (GAUDI_FAULTS,
// GAUDI_FAULT_SEED) are switched through the environment so existing benches
// pick them up without flag plumbing.  Parsing is centralized here so every
// variable shares one contract: recognized spellings map to on/off, anything
// else warns once to stderr instead of being silently coerced.
#pragma once

#include <cstdint>
#include <string>

namespace gaudi::sim {

/// Outcome of parsing one environment-variable value as a boolean flag.
enum class EnvFlag : std::uint8_t {
  kUnset,         ///< variable absent
  kOff,           ///< "", "0", "false", "off", "no" (case-insensitive)
  kOn,            ///< "1", "true", "on", "yes" (case-insensitive)
  kUnrecognized,  ///< anything else
};

/// Pure classification of a value string (nullptr means unset).  Exposed
/// separately from the getenv wrapper so the parse itself is unit-testable.
[[nodiscard]] EnvFlag classify_env_flag(const char* value);

/// Reads `name` from the environment and classifies it.  An unrecognized
/// value warns once per variable to stderr (naming the value and the
/// fallback) and yields `fallback_for_unrecognized`; kUnset/kOff/kOn map to
/// false/false/true.
[[nodiscard]] bool env_flag(const char* name, bool fallback_for_unrecognized);

/// Reads an unsigned integer variable; a malformed value warns once to
/// stderr and yields `fallback`.
[[nodiscard]] std::uint64_t env_u64(const char* name, std::uint64_t fallback);

/// Warns once per `key` to stderr.  Shared by every environment knob (and by
/// parsers with non-boolean grammars, e.g. GAUDI_GUARD) so a misspelled
/// setting surfaces without flooding stderr from per-run parses.
void env_warn_once(const std::string& key, const std::string& message);

}  // namespace gaudi::sim

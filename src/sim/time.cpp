#include "sim/time.hpp"

#include <cmath>
#include <cstdio>

namespace gaudi::sim {

std::string to_string(SimTime t) {
  const double ps = static_cast<double>(t.ps());
  char buf[64];
  const double abs_ps = std::abs(ps);
  if (abs_ps >= 1e12) {
    std::snprintf(buf, sizeof(buf), "%.3f s", ps * 1e-12);
  } else if (abs_ps >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", ps * 1e-9);
  } else if (abs_ps >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.3f us", ps * 1e-6);
  } else if (abs_ps >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.3f ns", ps * 1e-3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lld ps", static_cast<long long>(t.ps()));
  }
  return buf;
}

}  // namespace gaudi::sim

// Time base for the simulator.
//
// All simulated durations are carried as integral picoseconds so that
// scheduling arithmetic is exact and deterministic across platforms; cycle
// counts are converted through an engine's clock frequency.
#pragma once

#include <cstdint>
#include <compare>
#include <string>

namespace gaudi::sim {

/// Cycle count on some engine clock.
using Cycles = std::uint64_t;

/// A point in (or span of) simulated time, in integral picoseconds.
///
/// Picoseconds give exact arithmetic up to ~106 days of simulated time in a
/// signed 64-bit value, far beyond any profile this suite produces.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t ps) : ps_(ps) {}

  [[nodiscard]] static constexpr SimTime zero() { return SimTime{0}; }
  [[nodiscard]] static constexpr SimTime from_ps(std::int64_t ps) { return SimTime{ps}; }
  [[nodiscard]] static constexpr SimTime from_ns(double ns) {
    return SimTime{static_cast<std::int64_t>(ns * 1e3 + 0.5)};
  }
  [[nodiscard]] static constexpr SimTime from_us(double us) {
    return SimTime{static_cast<std::int64_t>(us * 1e6 + 0.5)};
  }
  [[nodiscard]] static constexpr SimTime from_ms(double ms) {
    return SimTime{static_cast<std::int64_t>(ms * 1e9 + 0.5)};
  }
  [[nodiscard]] static constexpr SimTime from_seconds(double s) {
    return SimTime{static_cast<std::int64_t>(s * 1e12 + 0.5)};
  }

  [[nodiscard]] constexpr std::int64_t ps() const { return ps_; }
  [[nodiscard]] constexpr double ns() const { return static_cast<double>(ps_) * 1e-3; }
  [[nodiscard]] constexpr double us() const { return static_cast<double>(ps_) * 1e-6; }
  [[nodiscard]] constexpr double ms() const { return static_cast<double>(ps_) * 1e-9; }
  [[nodiscard]] constexpr double seconds() const { return static_cast<double>(ps_) * 1e-12; }

  constexpr SimTime& operator+=(SimTime o) { ps_ += o.ps_; return *this; }
  constexpr SimTime& operator-=(SimTime o) { ps_ -= o.ps_; return *this; }

  friend constexpr SimTime operator+(SimTime a, SimTime b) { return SimTime{a.ps_ + b.ps_}; }
  friend constexpr SimTime operator-(SimTime a, SimTime b) { return SimTime{a.ps_ - b.ps_}; }
  friend constexpr SimTime operator*(SimTime a, std::int64_t k) { return SimTime{a.ps_ * k}; }
  friend constexpr SimTime operator*(std::int64_t k, SimTime a) { return a * k; }
  friend constexpr auto operator<=>(SimTime a, SimTime b) = default;

 private:
  std::int64_t ps_ = 0;
};

/// Engine clock; converts cycle counts to simulated time (rounding up, since
/// a partial cycle still occupies the engine for a full cycle).
class Clock {
 public:
  constexpr Clock() = default;
  constexpr explicit Clock(double hz) : hz_(hz) {}

  [[nodiscard]] constexpr double hz() const { return hz_; }
  [[nodiscard]] constexpr double ghz() const { return hz_ * 1e-9; }

  [[nodiscard]] constexpr SimTime period() const {
    return SimTime::from_ps(static_cast<std::int64_t>(1e12 / hz_ + 0.5));
  }

  [[nodiscard]] SimTime to_time(Cycles cycles) const {
    const double ps = static_cast<double>(cycles) * (1e12 / hz_);
    return SimTime::from_ps(static_cast<std::int64_t>(ps + 0.5));
  }

  [[nodiscard]] Cycles to_cycles(SimTime t) const {
    const double c = t.seconds() * hz_;
    return static_cast<Cycles>(c + 0.999999);  // round up: partial cycle occupies a cycle
  }

 private:
  double hz_ = 1e9;
};

/// Human-readable rendering ("12.34 ms", "987.00 us", ...).
[[nodiscard]] std::string to_string(SimTime t);

}  // namespace gaudi::sim

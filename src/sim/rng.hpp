// Deterministic counter-based random number generation.
//
// A counter-based generator (SplitMix64 core) lets any (seed, stream,
// counter) tuple be evaluated independently — the property TPC hardware RNG
// offers and the property we need so functional results are identical no
// matter how an index space is partitioned across cores or host threads.
#pragma once

#include <cstdint>

namespace gaudi::sim {

/// Stateless mix function: maps a 64-bit input to a well-distributed output.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Counter-based RNG: draw i of stream s under seed k is a pure function of
/// (k, s, i).
class CounterRng {
 public:
  constexpr CounterRng() = default;
  constexpr CounterRng(std::uint64_t seed, std::uint64_t stream = 0)
      : seed_(seed), stream_(stream) {}

  /// 64 uniform random bits for draw index `i`.
  [[nodiscard]] constexpr std::uint64_t bits(std::uint64_t i) const {
    return splitmix64(splitmix64(seed_ ^ (stream_ * 0xD1342543DE82EF95ull)) + i);
  }

  /// Uniform float in [0, 1).
  [[nodiscard]] constexpr float uniform(std::uint64_t i) const {
    return static_cast<float>(bits(i) >> 40) * (1.0f / 16777216.0f);
  }

  /// Uniform in [lo, hi).
  [[nodiscard]] constexpr float uniform(std::uint64_t i, float lo, float hi) const {
    return lo + (hi - lo) * uniform(i);
  }

  /// Standard normal via Box–Muller on two decorrelated uniform draws.
  [[nodiscard]] float normal(std::uint64_t i) const;

  /// Uniform integer in [0, n).
  [[nodiscard]] constexpr std::uint64_t below(std::uint64_t i, std::uint64_t n) const {
    return bits(i) % n;
  }

  /// Derive an independent stream (e.g. per-tensor, per-layer).
  [[nodiscard]] constexpr CounterRng stream(std::uint64_t s) const {
    return CounterRng{seed_, splitmix64(stream_ ^ s)};
  }

  [[nodiscard]] constexpr std::uint64_t seed() const { return seed_; }
  /// The derived-stream id, exposed so (seed(), stream_id()) is the
  /// generator's complete serializable state: a checkpoint stores the pair
  /// and CounterRng{seed, stream} reconstructs a bitwise-identical
  /// generator (there is no other state — draws are pure in the counter).
  [[nodiscard]] constexpr std::uint64_t stream_id() const { return stream_; }

 private:
  std::uint64_t seed_ = 0x5EED5EED5EED5EEDull;
  std::uint64_t stream_ = 0;
};

}  // namespace gaudi::sim

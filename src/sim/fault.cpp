#include "sim/fault.hpp"

#include <algorithm>
#include <sstream>

#include "sim/env.hpp"
#include "sim/error.hpp"

namespace gaudi::sim {

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kTransientLink: return "transient-link";
    case FaultKind::kLinkDegradation: return "link-degradation";
    case FaultKind::kChipFailure: return "chip-failure";
    case FaultKind::kDmaTimeout: return "dma-timeout";
    case FaultKind::kTpcStraggler: return "tpc-straggler";
    case FaultKind::kHbmPressure: return "hbm-pressure";
    case FaultKind::kSdcBitFlip: return "sdc-bit-flip";
    case FaultKind::kCheckpointCorruption: return "checkpoint-corruption";
  }
  return "unknown";
}

double FaultProfile::rate(FaultKind k) const {
  switch (k) {
    case FaultKind::kTransientLink: return transient_link_rate;
    case FaultKind::kLinkDegradation: return link_degradation_rate;
    case FaultKind::kChipFailure: return chip_failure_rate;
    case FaultKind::kDmaTimeout: return dma_timeout_rate;
    case FaultKind::kTpcStraggler: return tpc_straggler_rate;
    case FaultKind::kHbmPressure: return hbm_pressure_rate;
    case FaultKind::kSdcBitFlip: return sdc_bit_flip_rate;
    case FaultKind::kCheckpointCorruption: return checkpoint_corruption_rate;
  }
  return 0.0;
}

bool FaultProfile::any_rate_positive() const {
  return transient_link_rate > 0.0 || link_degradation_rate > 0.0 ||
         chip_failure_rate > 0.0 || dma_timeout_rate > 0.0 ||
         tpc_straggler_rate > 0.0 || hbm_pressure_rate > 0.0 ||
         sdc_bit_flip_rate > 0.0 || checkpoint_corruption_rate > 0.0;
}

FaultProfile FaultProfile::from_mtbf_steps(double mtbf_steps,
                                           std::uint32_t chips) {
  GAUDI_CHECK(mtbf_steps > 1.0, "MTBF must exceed one step");
  GAUDI_CHECK(chips >= 1, "need at least one chip");
  FaultProfile p;
  // A failure lands somewhere in the box every mtbf steps on average; the
  // per-chip-per-step rate divides across the chips.
  p.chip_failure_rate = 1.0 / (mtbf_steps * static_cast<double>(chips));
  // Soft errors are orders of magnitude more frequent than hard failures.
  p.transient_link_rate = std::min(0.25, 100.0 / (mtbf_steps * chips));
  p.link_degradation_rate = std::min(0.1, 10.0 / (mtbf_steps * chips));
  p.tpc_straggler_rate = std::min(0.1, 10.0 / (mtbf_steps * chips));
  p.dma_timeout_rate = std::min(0.1, 10.0 / (mtbf_steps * chips));
  p.hbm_pressure_rate = std::min(0.05, 2.0 / mtbf_steps);
  return p;
}

FaultProfile FaultProfile::stress() {
  FaultProfile p;
  p.transient_link_rate = 0.2;
  p.link_degradation_rate = 0.1;
  p.chip_failure_rate = 0.02;
  p.dma_timeout_rate = 0.25;
  p.tpc_straggler_rate = 0.25;
  p.hbm_pressure_rate = 0.1;
  return p;
}

std::vector<FaultEvent> fault_schedule(const FaultInjector& inj,
                                       std::uint64_t steps,
                                       std::uint32_t chips) {
  std::vector<FaultEvent> out;
  if (!inj.enabled()) return out;
  const FaultProfile& p = inj.profile();
  for (std::uint64_t step = 0; step < steps; ++step) {
    for (std::uint32_t c = 0; c < chips; ++c) {
      const std::uint64_t s = FaultInjector::site(step, c);
      if (inj.fires(FaultKind::kChipFailure, s)) {
        out.push_back(FaultEvent{FaultKind::kChipFailure, step, c, 0.0});
      }
      if (inj.fires(FaultKind::kLinkDegradation, s)) {
        out.push_back(FaultEvent{FaultKind::kLinkDegradation, step, c,
                                 p.degraded_bandwidth_factor});
      }
      if (inj.fires(FaultKind::kTransientLink, s)) {
        out.push_back(FaultEvent{FaultKind::kTransientLink, step, c, 0.0});
      }
      if (inj.fires(FaultKind::kTpcStraggler, s)) {
        out.push_back(FaultEvent{FaultKind::kTpcStraggler, step, c,
                                 p.straggler_slowdown});
      }
      if (inj.fires(FaultKind::kSdcBitFlip, s)) {
        out.push_back(FaultEvent{FaultKind::kSdcBitFlip, step, c, 0.0});
      }
    }
    if (inj.fires(FaultKind::kHbmPressure, FaultInjector::site(step, 0))) {
      out.push_back(FaultEvent{FaultKind::kHbmPressure, step, 0,
                               p.hbm_pressure_stall.seconds()});
    }
    // Checkpoint corruption sites are raw step numbers (one snapshot per
    // step at most), matching the site the snapshot writer queries.
    if (inj.fires(FaultKind::kCheckpointCorruption, step)) {
      out.push_back(FaultEvent{FaultKind::kCheckpointCorruption, step, 0, 0.0});
    }
  }
  return out;
}

std::string to_string(const std::vector<FaultEvent>& schedule) {
  std::ostringstream os;
  for (const FaultEvent& e : schedule) {
    os << "step " << e.step << " unit " << e.unit << " "
       << fault_kind_name(e.kind);
    if (e.magnitude != 0.0) os << " x" << e.magnitude;
    os << "\n";
  }
  return os.str();
}

const FaultInjector* fault_injector_from_env() {
  // Built once: the environment is read at first use and the decision is
  // stable for the process lifetime (same contract as GAUDI_VALIDATE).
  static const FaultInjector* injector = []() -> const FaultInjector* {
    if (!env_flag("GAUDI_FAULTS", /*fallback_for_unrecognized=*/false)) {
      return nullptr;
    }
    const std::uint64_t seed = env_u64("GAUDI_FAULT_SEED", 0xFA517ull);
    static FaultInjector inj(seed, FaultProfile::stress());
    return &inj;
  }();
  return injector;
}

}  // namespace gaudi::sim

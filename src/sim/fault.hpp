// Deterministic fault injection.
//
// Production training on an HLS-1-class box spends real engineering on the
// assumption our happy-path models ignore: links flap, chips die mid-step,
// DMA transfers hang, and individual TPC kernels straggle.  A simulator is
// the ideal place to study the recovery policies those faults demand —
// faults here are *sampled deterministically*: whether fault class K fires
// at site S is a pure function of (seed, K, S) through the counter-based
// RNG, so the same seed reproduces the exact fault schedule, recovery
// decisions, and final numerics on any platform, and a run can re-query any
// site without perturbing the others (no generator state to advance).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace gaudi::sim {

/// Taxonomy of injected faults (see DESIGN.md "Fault model & recovery").
enum class FaultKind : std::uint8_t {
  kTransientLink,    ///< one RoCE transfer drops; a retry succeeds
  kLinkDegradation,  ///< a link runs at reduced bandwidth for a step
  kChipFailure,      ///< a chip dies mid-step and leaves the ring
  kDmaTimeout,       ///< an on-chip DMA transfer times out and retries
  kTpcStraggler,     ///< a TPC kernel runs slower by a multiplicative factor
  kHbmPressure,      ///< HBM capacity pressure stalls a step (paging/compaction)
  kSdcBitFlip,       ///< silent data corruption: an HBM bit flips in a live buffer
  /// A checkpoint write is torn or corrupted on the storage path: the data
  /// file is truncated mid-write, the manifest commit is lost, or a stored
  /// bit flips.  Fired inside the snapshot writer's simulated torn-write
  /// window (scaleout/snapshot.hpp); the writer does not observe it — the
  /// damage is found (and survived) at the next resume.
  kCheckpointCorruption,
};
inline constexpr std::size_t kFaultKindCount = 8;

[[nodiscard]] const char* fault_kind_name(FaultKind k);

/// Per-class fault rates (probability that the class fires at one site) and
/// fault magnitudes.  All rates default to zero: a default-constructed
/// profile never fires, so the injector is free to exist on the default
/// path.
struct FaultProfile {
  double transient_link_rate = 0.0;    ///< per link per ring step
  double link_degradation_rate = 0.0;  ///< per link per training step
  double chip_failure_rate = 0.0;      ///< per chip per training step
  double dma_timeout_rate = 0.0;       ///< per DMA transfer attempt
  double tpc_straggler_rate = 0.0;     ///< per TPC node execution
  double hbm_pressure_rate = 0.0;      ///< per training step
  /// Probability that an HBM bit flips in one node's live output buffer
  /// between its production and its consumption (silent data corruption).
  /// Deliberately absent from stress(): the functional cross-check suites
  /// run under stress rates, and SDC by definition changes the numerics.
  double sdc_bit_flip_rate = 0.0;
  /// Probability that one checkpoint save lands torn or bit-flipped on disk
  /// (per snapshot).  Absent from stress()/from_mtbf_steps() for the same
  /// reason as SDC: it only matters to runs that write snapshots, and those
  /// opt in explicitly.
  double checkpoint_corruption_rate = 0.0;

  /// Duration multiplier of a straggling TPC kernel (> 1).
  double straggler_slowdown = 2.0;
  /// Bandwidth multiplier of a degraded link (in (0, 1]).
  double degraded_bandwidth_factor = 0.5;
  /// Stall charged to a step under HBM capacity pressure.
  SimTime hbm_pressure_stall = SimTime::from_ms(5.0);
  /// First retry delay after a timed-out DMA; doubles per attempt.
  SimTime dma_retry_backoff = SimTime::from_us(5.0);
  /// DMA attempts before the transfer is forced through (the model never
  /// fails a single-chip run terminally; the cost is the point).
  std::uint32_t dma_max_attempts = 4;

  /// All rates zero — the injector never fires.
  [[nodiscard]] static FaultProfile disabled() { return {}; }

  /// Rates derived from a mean-time-between-failures expressed in training
  /// steps: chip failures dominate at 1/mtbf per step (split across the
  /// box), with transient link errors two decades more frequent and the
  /// rest scaled between — the hierarchy reliability studies report.
  [[nodiscard]] static FaultProfile from_mtbf_steps(double mtbf_steps,
                                                    std::uint32_t chips = 8);

  /// Aggressive rates for fuzzing the stall/retry machinery.
  [[nodiscard]] static FaultProfile stress();

  [[nodiscard]] double rate(FaultKind k) const;
  [[nodiscard]] bool any_rate_positive() const;
};

/// One materialized fault, produced when enumerating a schedule up front.
struct FaultEvent {
  FaultKind kind = FaultKind::kTransientLink;
  std::uint64_t step = 0;  ///< training step the fault lands in
  std::uint32_t unit = 0;  ///< chip / link index within the step
  double magnitude = 0.0;  ///< slowdown or bandwidth factor; 0 if n/a
};

/// Deterministic fault oracle.  Copyable, cheap, and stateless after
/// construction; every query is a pure function of (seed, kind, site).
class FaultInjector {
 public:
  /// Disabled injector: `fires` is always false.
  FaultInjector() = default;
  FaultInjector(std::uint64_t seed, FaultProfile profile)
      : rng_(seed, 0xFA517ull), profile_(profile) {}

  [[nodiscard]] bool enabled() const { return profile_.any_rate_positive(); }
  [[nodiscard]] const FaultProfile& profile() const { return profile_; }

  /// Does fault class `kind` fire at `site`?  Site encodings are owned by
  /// the querying layer (see `site()` for the common (step, unit) packing).
  [[nodiscard]] bool fires(FaultKind kind, std::uint64_t site) const {
    const double r = profile_.rate(kind);
    if (r <= 0.0) return false;
    return rng_.stream(static_cast<std::uint64_t>(kind) + 1).uniform(site) <
           static_cast<float>(r);
  }

  /// Packs a (step, unit) pair into a site id.  splitmix64 decorrelates
  /// steps so unit indices never collide across neighbouring steps.
  [[nodiscard]] static std::uint64_t site(std::uint64_t step,
                                          std::uint64_t unit) {
    return splitmix64(step) + unit;
  }

  /// Deterministic coordinates of a fired kSdcBitFlip: which element of the
  /// corrupted buffer flips, and which bit within the element.  Bits are
  /// drawn from the high-mantissa/exponent range ([20, 30] for 32-bit
  /// elements, [4, 14] for 16-bit) — the flips that actually perturb or
  /// explode a value, as opposed to low-mantissa noise.
  [[nodiscard]] std::uint64_t sdc_element(std::uint64_t site,
                                          std::uint64_t count) const {
    if (count == 0) return 0;
    return rng_.stream(kSdcElementStream).below(site, count);
  }
  [[nodiscard]] std::uint32_t sdc_bit(std::uint64_t site,
                                      std::uint32_t element_bits) const {
    const std::uint32_t base = element_bits >= 32 ? 20u : 4u;
    return base + static_cast<std::uint32_t>(
                      rng_.stream(kSdcBitStream).below(site, 11));
  }

  /// Deterministic shape of a fired kCheckpointCorruption: which of `modes`
  /// failure shapes the torn write takes (lost commit, truncation, bit
  /// flip), and a coordinate in [0, n) for where the damage lands.
  [[nodiscard]] std::uint64_t checkpoint_mode(std::uint64_t site,
                                              std::uint64_t modes) const {
    if (modes == 0) return 0;
    return rng_.stream(kCheckpointModeStream).below(site, modes);
  }
  [[nodiscard]] std::uint64_t checkpoint_offset(std::uint64_t site,
                                                std::uint64_t n) const {
    if (n == 0) return 0;
    return rng_.stream(kCheckpointOffsetStream).below(site, n);
  }

 private:
  // Frozen stream indices for the magnitude/coordinate draws above.  fires()
  // occupies streams 1..kFaultKindCount (kind + 1); these sit beyond it.
  // The values are pinned rather than derived from kFaultKindCount so that
  // adding a fault kind never silently reshuffles every seeded schedule.
  static constexpr std::uint64_t kSdcElementStream = 8;
  static constexpr std::uint64_t kSdcBitStream = 9;
  static constexpr std::uint64_t kCheckpointModeStream = 16;
  static constexpr std::uint64_t kCheckpointOffsetStream = 17;

  CounterRng rng_{};
  FaultProfile profile_{};
};

/// Enumerates every fault the injector fires over an N-step run on a
/// `chips`-chip box, in (step, kind, unit) order.  This is the "fault
/// schedule" the determinism tests byte-compare: same (seed, profile) ⇒
/// identical vector ⇒ identical `to_string`.
[[nodiscard]] std::vector<FaultEvent> fault_schedule(const FaultInjector& inj,
                                                     std::uint64_t steps,
                                                     std::uint32_t chips);

/// One line per fault, stable formatting — byte-comparable across runs.
[[nodiscard]] std::string to_string(const std::vector<FaultEvent>& schedule);

/// Injector configured from the environment: GAUDI_FAULTS enables it (same
/// boolean grammar as GAUDI_VALIDATE, hardened in sim/env.hpp), GAUDI_FAULT_SEED
/// seeds it (default 0xFA517).  Returns nullptr when disabled — the runtime's
/// default path never consults the injector.
[[nodiscard]] const FaultInjector* fault_injector_from_env();

}  // namespace gaudi::sim

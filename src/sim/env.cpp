#include "sim/env.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>
#include <string>

namespace gaudi::sim {

namespace {

std::string lower(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(*s))));
  }
  return out;
}

}  // namespace

void env_warn_once(const std::string& key, const std::string& message) {
  static std::mutex mu;
  static std::set<std::string> warned;
  const std::lock_guard<std::mutex> lock(mu);
  if (warned.insert(key).second) {
    std::fprintf(stderr, "gaudisim: %s\n", message.c_str());
  }
}

EnvFlag classify_env_flag(const char* value) {
  if (value == nullptr) return EnvFlag::kUnset;
  const std::string v = lower(value);
  if (v.empty() || v == "0" || v == "false" || v == "off" || v == "no") {
    return EnvFlag::kOff;
  }
  if (v == "1" || v == "true" || v == "on" || v == "yes") {
    return EnvFlag::kOn;
  }
  return EnvFlag::kUnrecognized;
}

bool env_flag(const char* name, bool fallback_for_unrecognized) {
  const char* value = std::getenv(name);
  switch (classify_env_flag(value)) {
    case EnvFlag::kUnset:
    case EnvFlag::kOff:
      return false;
    case EnvFlag::kOn:
      return true;
    case EnvFlag::kUnrecognized:
      break;
  }
  env_warn_once(std::string(name) + "=" + value,
            std::string(name) + "=\"" + value +
                "\" is not a recognized boolean (use 0/1/true/false/on/off/"
                "yes/no); treating it as " +
                (fallback_for_unrecognized ? "on" : "off"));
  return fallback_for_unrecognized;
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 0);
  if (end == value || *end != '\0') {
    env_warn_once(std::string(name) + "=" + value,
              std::string(name) + "=\"" + value +
                  "\" is not an unsigned integer; using " +
                  std::to_string(fallback));
    return fallback;
  }
  return static_cast<std::uint64_t>(parsed);
}

}  // namespace gaudi::sim

#include "sim/rng.hpp"

#include <cmath>
#include <numbers>

namespace gaudi::sim {

float CounterRng::normal(std::uint64_t i) const {
  // Two independent uniforms from disjoint counter ranges.
  const double u1 = static_cast<double>(bits(2 * i) >> 11) * 0x1.0p-53;
  const double u2 = static_cast<double>(bits(2 * i + 1) >> 11) * 0x1.0p-53;
  const double r = std::sqrt(-2.0 * std::log(u1 + 1e-300));
  return static_cast<float>(r * std::cos(2.0 * std::numbers::pi * u2));
}

}  // namespace gaudi::sim

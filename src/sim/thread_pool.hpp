// Host-side worker pool used to parallelize *functional* execution
// (reference GEMMs, TPC index-space sweeps).  Simulated timing never depends
// on host threading: cycle accounting is computed analytically per work item
// and combined deterministically.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace gaudi::sim {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Runs fn(i) for i in [0, n) across the pool and blocks until all
  /// complete.  Work is chunked to limit synchronization overhead.
  /// Exceptions from fn are captured and the first one is rethrown.
  /// Nested use is safe: when called from inside a pool worker (of any
  /// pool), the range runs inline on the calling thread instead of being
  /// queued, which would deadlock against the blocked workers.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Chunked variant: fn(begin, end) over disjoint ranges covering [0, n).
  /// Same inline fallback on nested use as parallel_for.
  void parallel_for_chunks(std::size_t n,
                           const std::function<void(std::size_t, std::size_t)>& fn);

  /// Process-wide pool for functional math (lazily constructed).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace gaudi::sim

#include "sim/numerics.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "sim/env.hpp"

namespace gaudi::sim {

const char* numerics_policy_name(NumericsPolicy p) {
  switch (p) {
    case NumericsPolicy::kOff: return "off";
    case NumericsPolicy::kWarn: return "warn";
    case NumericsPolicy::kTrap: return "trap";
  }
  return "?";
}

NumericsPolicy numerics_policy_from_env() {
  const char* value = std::getenv("GAUDI_GUARD");
  if (value == nullptr) return NumericsPolicy::kOff;
  std::string v;
  for (const char* c = value; *c != '\0'; ++c) {
    v.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(*c))));
  }
  if (v == "trap") return NumericsPolicy::kTrap;
  if (v == "warn") return NumericsPolicy::kWarn;
  switch (classify_env_flag(value)) {
    case EnvFlag::kOn:
      return NumericsPolicy::kWarn;
    case EnvFlag::kUnset:
    case EnvFlag::kOff:
      return NumericsPolicy::kOff;
    case EnvFlag::kUnrecognized:
      break;
  }
  env_warn_once(std::string("GAUDI_GUARD=") + value,
                std::string("GAUDI_GUARD=\"") + value +
                    "\" is not a recognized guard policy (use off/warn/trap "
                    "or a boolean spelling); treating it as off");
  return NumericsPolicy::kOff;
}

void NumericsStats::merge(const NumericsStats& o) {
  count += o.count;
  nan_count += o.nan_count;
  inf_count += o.inf_count;
  denormal_count += o.denormal_count;
  bf16_overflow_count += o.bf16_overflow_count;
  if (o.max_abs > max_abs) max_abs = o.max_abs;
}

std::string NumericsStats::to_string() const {
  std::ostringstream os;
  os << "nan=" << nan_count << " inf=" << inf_count << " denormal="
     << denormal_count << " bf16_overflow=" << bf16_overflow_count
     << " max_abs=" << max_abs << " (" << count << " elements)";
  return os.str();
}

namespace {

/// Smallest |f32| that rounds to bf16 infinity under round-to-nearest-even:
/// bf16's finite max is 0x7F7F; the tie at 0x7F7F8000 already rounds up
/// (0x7F7F is odd), so everything at or above it overflows.
constexpr std::uint32_t kBf16OverflowThreshold = 0x7F7F8000u;

}  // namespace

NumericsStats sweep_f32(std::span<const float> data) {
  NumericsStats s;
  s.count = data.size();
  std::uint32_t max_abs_bits = 0;
  for (const float f : data) {
    std::uint32_t bits;
    std::memcpy(&bits, &f, sizeof(bits));
    const std::uint32_t abs = bits & 0x7FFFFFFFu;
    const std::uint32_t exp = abs >> 23;
    const std::uint32_t mant = abs & 0x7FFFFFu;
    if (exp == 0xFF) {
      if (mant != 0) {
        ++s.nan_count;
        continue;  // NaN never contributes to max_abs
      }
      ++s.inf_count;
    } else {
      if (exp == 0 && mant != 0) ++s.denormal_count;
      if (abs >= kBf16OverflowThreshold) ++s.bf16_overflow_count;
    }
    if (abs > max_abs_bits) max_abs_bits = abs;
  }
  // Non-negative floats order like their bit patterns, so the max transfers.
  std::memcpy(&s.max_abs, &max_abs_bits, sizeof(s.max_abs));
  return s;
}

NumericsStats sweep_bf16(std::span<const std::uint16_t> data) {
  NumericsStats s;
  s.count = data.size();
  std::uint16_t max_abs_bits = 0;
  for (const std::uint16_t b : data) {
    const std::uint16_t abs = b & 0x7FFFu;
    const std::uint16_t exp = static_cast<std::uint16_t>(abs >> 7);
    const std::uint16_t mant = abs & 0x7Fu;
    if (exp == 0xFF) {
      if (mant != 0) {
        ++s.nan_count;
        continue;
      }
      ++s.inf_count;
    } else if (exp == 0 && mant != 0) {
      ++s.denormal_count;
    }
    if (abs > max_abs_bits) max_abs_bits = abs;
  }
  const std::uint32_t widened = static_cast<std::uint32_t>(max_abs_bits) << 16;
  std::memcpy(&s.max_abs, &widened, sizeof(s.max_abs));
  return s;
}

SimTime guard_sweep_time(std::size_t bytes, double hbm_bandwidth_bytes_per_s) {
  // The sweep re-reads the retiring output at 8x the HBM stream rate (it
  // piggybacks on data already in flight), plus a fixed issue cost so even
  // tiny guarded ops carry a visible span.
  constexpr double kSweepSpeedup = 8.0;
  const double seconds =
      hbm_bandwidth_bytes_per_s > 0.0
          ? static_cast<double>(bytes) /
                (hbm_bandwidth_bytes_per_s * kSweepSpeedup)
          : 0.0;
  return SimTime::from_seconds(seconds) + SimTime::from_ns(60.0);
}

}  // namespace gaudi::sim

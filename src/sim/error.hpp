// Error handling for the simulator.
//
// Contract violations and simulated-hardware faults (OOM, rank limits,
// local-memory overflow) throw typed exceptions so tests can assert on the
// exact failure class, mirroring how SynapseAI surfaces device errors.
#pragma once

#include <stdexcept>
#include <string>

namespace gaudi::sim {

/// Base class for all simulator errors.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Violation of an API contract (bad shapes, ranks, null handles, ...).
class InvalidArgument : public Error {
 public:
  using Error::Error;
};

/// Simulated device resource exhaustion (HBM capacity, local memory, ...).
class ResourceExhausted : public Error {
 public:
  using Error::Error;
};

/// Internal invariant broken; indicates a simulator bug, not user error.
class InternalError : public Error {
 public:
  using Error::Error;
};

/// A numerical anomaly (NaN/Inf sweep hit or checksum mismatch) trapped by
/// guarded execution (see sim/numerics.hpp).  The message carries the full
/// anomaly report: offending node, corrupted value, and producer chain.
class NumericsError : public Error {
 public:
  using Error::Error;
};

namespace detail {
[[noreturn]] void throw_check_failed(const char* kind, const char* expr,
                                     const char* file, int line,
                                     const std::string& msg);
}  // namespace detail

}  // namespace gaudi::sim

/// Argument/contract check: throws gaudi::sim::InvalidArgument when false.
#define GAUDI_CHECK(expr, msg)                                                     \
  do {                                                                             \
    if (!(expr)) {                                                                 \
      ::gaudi::sim::detail::throw_check_failed("check", #expr, __FILE__, __LINE__, \
                                               (msg));                             \
    }                                                                              \
  } while (false)

/// Internal invariant check: throws gaudi::sim::InternalError when false.
#define GAUDI_ASSERT(expr, msg)                                                     \
  do {                                                                              \
    if (!(expr)) {                                                                  \
      ::gaudi::sim::detail::throw_check_failed("assert", #expr, __FILE__, __LINE__, \
                                               (msg));                              \
    }                                                                               \
  } while (false)

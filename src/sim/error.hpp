// Error handling for the simulator.
//
// Contract violations and simulated-hardware faults (OOM, rank limits,
// local-memory overflow) throw typed exceptions so tests can assert on the
// exact failure class, mirroring how SynapseAI surfaces device errors.
#pragma once

#include <stdexcept>
#include <string>

namespace gaudi::sim {

/// Base class for all simulator errors.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Violation of an API contract (bad shapes, ranks, null handles, ...).
class InvalidArgument : public Error {
 public:
  using Error::Error;
};

/// Simulated device resource exhaustion (HBM capacity, local memory, ...).
class ResourceExhausted : public Error {
 public:
  using Error::Error;
};

/// Internal invariant broken; indicates a simulator bug, not user error.
class InternalError : public Error {
 public:
  using Error::Error;
};

/// A numerical anomaly (NaN/Inf sweep hit or checksum mismatch) trapped by
/// guarded execution (see sim/numerics.hpp).  The message carries the full
/// anomaly report: offending node, corrupted value, and producer chain.
class NumericsError : public Error {
 public:
  using Error::Error;
};

/// A checkpoint on disk cannot be trusted (see scaleout/snapshot.hpp).  The
/// base class covers structurally garbled manifests; the subclasses give
/// each rejection cause its own type so recovery code can distinguish "this
/// file is damaged, fall back" from "this checkpoint describes a different
/// model, refuse to resume".
class CheckpointError : public Error {
 public:
  using Error::Error;
};

/// Data or manifest file ends before the bytes the manifest promises
/// (a torn write, or a crash between the data write and the commit).
class CheckpointTruncated : public CheckpointError {
 public:
  using CheckpointError::CheckpointError;
};

/// The manifest was written by an incompatible format version.
class CheckpointVersionSkew : public CheckpointError {
 public:
  using CheckpointError::CheckpointError;
};

/// A section's bytes no longer match their recorded FNV-1a checksum
/// (bit rot, a flipped storage bit, or a partially overwritten file).
class CheckpointChecksumMismatch : public CheckpointError {
 public:
  using CheckpointError::CheckpointError;
};

/// The checkpoint is internally consistent but does not describe the model
/// being resumed: a section is missing, a tensor shape/dtype disagrees with
/// the current configuration, or a config fingerprint field differs.
class CheckpointShapeMismatch : public CheckpointError {
 public:
  using CheckpointError::CheckpointError;
};

namespace detail {
[[noreturn]] void throw_check_failed(const char* kind, const char* expr,
                                     const char* file, int line,
                                     const std::string& msg);
}  // namespace detail

}  // namespace gaudi::sim

/// Argument/contract check: throws gaudi::sim::InvalidArgument when false.
#define GAUDI_CHECK(expr, msg)                                                     \
  do {                                                                             \
    if (!(expr)) {                                                                 \
      ::gaudi::sim::detail::throw_check_failed("check", #expr, __FILE__, __LINE__, \
                                               (msg));                             \
    }                                                                              \
  } while (false)

/// Internal invariant check: throws gaudi::sim::InternalError when false.
#define GAUDI_ASSERT(expr, msg)                                                     \
  do {                                                                              \
    if (!(expr)) {                                                                  \
      ::gaudi::sim::detail::throw_check_failed("assert", #expr, __FILE__, __LINE__, \
                                               (msg));                              \
    }                                                                               \
  } while (false)

// Numerics sentinel: per-buffer statistics and the guard policy.
//
// The paper's workloads train in bf16, where a single overflowing cast or a
// flipped exponent bit silently poisons every downstream tensor.  This layer
// gives the simulator the detection primitives real training stacks carry:
// a single vectorizable sweep classifying every element of a buffer
// (NaN / Inf / denormal / would-overflow-in-bf16, plus max-abs), and a
// process-wide policy — off, warn, trap — selecting what a guarded run does
// when a sweep finds an anomaly.  Policy selection mirrors the other opt-ins:
// RunOptions::guard wins, else the GAUDI_GUARD environment variable (parsed
// through the hardened sim::env grammar), else off.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "sim/time.hpp"

namespace gaudi::sim {

/// What a guarded run does when a sweep or checksum finds an anomaly.
enum class NumericsPolicy : std::uint8_t {
  kOff,   ///< no sweeps, no checksums, byte-identical to an unguarded run
  kWarn,  ///< record every anomaly in the ProfileResult and keep going
  kTrap,  ///< throw sim::NumericsError at the first anomaly
};

[[nodiscard]] const char* numerics_policy_name(NumericsPolicy p);

/// Policy from the GAUDI_GUARD environment variable: "trap" and "warn" name
/// the policies directly; the boolean grammar of the other GAUDI_* knobs is
/// honoured too (on-spellings mean warn).  Unrecognized values warn once to
/// stderr and fall back to off.  Re-read on every call (no caching) so tests
/// can toggle the variable.
[[nodiscard]] NumericsPolicy numerics_policy_from_env();

/// Element classification of one buffer, produced by a single sweep.
struct NumericsStats {
  std::uint64_t count = 0;           ///< elements swept
  std::uint64_t nan_count = 0;
  std::uint64_t inf_count = 0;
  std::uint64_t denormal_count = 0;  ///< subnormals (exp 0, mantissa != 0)
  /// Finite f32 values whose round-to-nearest-even bf16 cast overflows to
  /// infinity (|value| rounds past bf16's finite max): the paper's bf16-first
  /// pipelines lose these silently on every cast.
  std::uint64_t bf16_overflow_count = 0;
  float max_abs = 0.0f;              ///< over non-NaN elements

  void merge(const NumericsStats& o);
  /// NaN or Inf present — the conditions a guarded run acts on.
  [[nodiscard]] bool anomalous() const { return nan_count > 0 || inf_count > 0; }
  [[nodiscard]] std::string to_string() const;
};

/// Sweeps an f32 buffer.  Pure bit classification (no FP compares on NaN
/// paths), one pass, vectorizable.
[[nodiscard]] NumericsStats sweep_f32(std::span<const float> data);

/// Sweeps a buffer of raw bf16 encodings.
[[nodiscard]] NumericsStats sweep_bf16(std::span<const std::uint16_t> data);

/// Simulated cost of sweeping (and checksumming) `bytes` of retired output:
/// the sweep rides the kernel's writeback at a multiple of HBM bandwidth,
/// plus a fixed per-launch issue cost.  This is what guarded scheduling
/// charges as the nested kGuard span.
[[nodiscard]] SimTime guard_sweep_time(std::size_t bytes,
                                       double hbm_bandwidth_bytes_per_s);

/// Poison patterns (signaling-NaN encodings) used to pre-fill freshly
/// allocated functional output buffers in guarded runs: a kernel that reads
/// its output before writing it surfaces as a trapped NaN instead of a lucky
/// zero.  (The DeviceAllocator models occupancy, not contents, so the fill
/// lands on the host-side functional buffers that stand in for HBM.)
inline constexpr std::uint32_t kPoisonBitsF32 = 0x7FA00000u;
inline constexpr std::uint16_t kPoisonBitsBf16 = 0x7FA0u;

}  // namespace gaudi::sim

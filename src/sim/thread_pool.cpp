#include "sim/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace gaudi::sim {

namespace {

// Set for the lifetime of any pool worker thread.  A parallel_for issued
// from inside a worker task must run inline: queueing its chunks and
// blocking on their completion deadlocks once every worker is parked in
// such a wait while the chunks that would wake them sit behind it in the
// queue (tensor::ops and tpc::TpcCluster both dispatch through the global
// pool, so the nesting arises naturally, e.g. a reference GEMM inside a
// kernel sweep).
thread_local bool t_on_pool_worker = false;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::worker_loop() {
  t_on_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) {
        return;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for_chunks(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) {
    return;
  }
  if (t_on_pool_worker) {
    fn(0, n);
    return;
  }
  const std::size_t chunks = std::min(n, workers_.size() * 4);
  if (chunks <= 1) {
    fn(0, n);
    return;
  }
  const std::size_t chunk_size = (n + chunks - 1) / chunks;

  std::atomic<std::size_t> remaining{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::mutex done_mutex;
  std::condition_variable done_cv;

  std::size_t submitted = 0;
  {
    std::lock_guard lock(mutex_);
    for (std::size_t begin = 0; begin < n; begin += chunk_size) {
      const std::size_t end = std::min(n, begin + chunk_size);
      ++submitted;
      tasks_.emplace([&, begin, end] {
        try {
          fn(begin, end);
        } catch (...) {
          std::lock_guard elock(error_mutex);
          if (!first_error) {
            first_error = std::current_exception();
          }
        }
        if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          std::lock_guard dlock(done_mutex);
          done_cv.notify_all();
        }
      });
    }
    remaining.store(submitted, std::memory_order_release);
  }
  cv_.notify_all();

  std::unique_lock lock(done_mutex);
  done_cv.wait(lock, [&] { return remaining.load(std::memory_order_acquire) == 0; });
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  parallel_for_chunks(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      fn(i);
    }
  });
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace gaudi::sim

// Chip-level configuration of the simulated Gaudi-class processor.
//
// The default `hls1()` preset is calibrated so that the simulator reproduces
// the measured characteristics from Zhang et al. (SC-W 2023): MME ramping to
// ~14.6 TFLOPS f32 with saturation near matrix size 512, TPC cluster peaking
// near ~2.2 TFLOPS, 4-cycle 2048-bit global vector accesses, 80 KB / 1 KB
// TPC local memories, 32 GB HBM. See DESIGN.md §4 for the calibration notes.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/time.hpp"

namespace gaudi::sim {

/// Matrix Multiplication Engine parameters.
struct MmeConfig {
  /// MAC array geometry (output-stationary systolic model).
  std::uint32_t array_rows = 128;
  std::uint32_t array_cols = 128;
  /// Engine clock.
  double clock_hz = 445e6;
  /// Fixed per-operation launch/descriptor overhead, in MME cycles.  This is
  /// what produces the small-size TFLOPS droop in Table 2.
  Cycles launch_overhead_cycles = 45'000;
  /// Pipeline fill paid once per op (first tile chain), in cycles.
  Cycles pipeline_fill_cycles = 256;
  /// bf16 streams at this multiple of the f32 rate (the array is natively
  /// bf16; f32 issues at half rate).
  double bf16_throughput_multiplier = 2.0;

  [[nodiscard]] Clock clock() const { return Clock{clock_hz}; }
  /// Peak f32 throughput in FLOP/s (2 flops per MAC per cycle).
  [[nodiscard]] double peak_flops() const {
    return 2.0 * array_rows * array_cols * clock_hz;
  }
};

/// Tensor Processing Core parameters (one core; the cluster has `num_cores`).
struct TpcConfig {
  std::uint32_t num_cores = 8;
  /// SIMD width in bits (paper §2.2: 2048-bit vector mechanism).
  std::uint32_t vector_bits = 2048;
  double clock_hz = 2.15e9;
  /// Global memory: average cycles to load/store one full vector (paper §2.2:
  /// "every four cycles can accommodate the loading or writing of a 2048-bit
  /// vector to the global memory").
  Cycles global_access_cycles = 4;
  /// Local memories (paper §2.2).
  std::size_t scalar_local_bytes = 1024;
  std::size_t vector_local_bytes = 80 * 1024;
  /// Fixed kernel launch/teardown overhead per TPC op, in cycles, covering
  /// descriptor parsing and index-space setup.
  Cycles launch_overhead_cycles = 50'000;

  [[nodiscard]] Clock clock() const { return Clock{clock_hz}; }
  [[nodiscard]] std::uint32_t f32_lanes() const { return vector_bits / 32; }
  /// Peak f32 FMA throughput of the whole cluster in FLOP/s.
  [[nodiscard]] double cluster_peak_flops() const {
    return 2.0 * f32_lanes() * clock_hz * num_cores;
  }
};

/// Memory & interconnect parameters.
struct MemoryConfig {
  std::size_t hbm_bytes = 32ull * 1024 * 1024 * 1024;  ///< 32 GB on-chip HBM.
  double hbm_bandwidth_bytes_per_s = 1.0e12;           ///< ~1 TB/s aggregate.
  SimTime hbm_latency = SimTime::from_ns(120.0);
  std::size_t shared_sram_bytes = 24ull * 1024 * 1024;
  /// DMA engine moving data between engines through shared memory.  The
  /// aggregate matches HBM-class bandwidth: inter-engine staging is
  /// pipelined against the producing/consuming engines, so the *exposed*
  /// cost per transfer is the streaming time at full memory bandwidth plus
  /// a setup latency (see DESIGN.md).
  double dma_bandwidth_bytes_per_s = 1.0e12;
  SimTime dma_setup = SimTime::from_ns(400.0);
  std::uint32_t dma_channels = 4;
};

/// Graph-compiler behaviour knobs (modelling observed SynapseAI behaviour).
struct CompilerConfig {
  /// Stall inserted when an op without first-class backend support forces a
  /// just-in-time recompilation (the paper attributes GLU's MME blank area to
  /// "extra compilation during the execution").
  SimTime recompile_stall = SimTime::from_ms(1.2);
};

/// Full chip configuration.
struct ChipConfig {
  MmeConfig mme;
  TpcConfig tpc;
  MemoryConfig memory;
  CompilerConfig compiler;

  /// Preset calibrated against the HLS-1 measurements in the paper.
  [[nodiscard]] static ChipConfig hls1() { return ChipConfig{}; }
};

}  // namespace gaudi::sim

#include "sim/error.hpp"

#include <sstream>
#include <string_view>

namespace gaudi::sim::detail {

void throw_check_failed(const char* kind, const char* expr, const char* file,
                        int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": " << kind << " failed: (" << expr << ") — " << msg;
  if (std::string_view{kind} == "assert") {
    throw InternalError(os.str());
  }
  throw InvalidArgument(os.str());
}

}  // namespace gaudi::sim::detail

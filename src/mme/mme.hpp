// The Matrix Multiplication Engine.
//
// An output-stationary MAC-array model: each 128x128 output tile occupies
// the array for its full k-extent at one column of results per cycle; tile
// chains stream back-to-back, so per-op cost is a fixed launch overhead plus
// one pipeline fill plus sum(k) over output tiles.  Calibrated (DESIGN.md §4)
// so f32 throughput ramps from ~2.3 TFLOPS at size 128 (overhead-bound) to
// ~14.6 TFLOPS at size >= 1024, matching the paper's Table 2 measurements.
//
// Functional execution delegates the numerics to the reference host GEMM;
// only matrix products ever run here — the operation-mapping pass sends
// everything else to the TPC, exactly as SynapseAI does (paper Table 1).
#pragma once

#include <cstdint>

#include "sim/chip_config.hpp"
#include "sim/time.hpp"
#include "tensor/tensor.hpp"

namespace gaudi::mme {

/// Shape of one batched-GEMM launch.
struct GemmShape {
  std::int64_t batch = 1;
  std::int64_t m = 0;
  std::int64_t n = 0;
  std::int64_t k = 0;
  /// Compute precision: bf16 (the engine's native training format) streams
  /// at twice the f32 rate.
  tensor::DType dtype = tensor::DType::F32;

  [[nodiscard]] std::uint64_t flops() const {
    return 2ull * static_cast<std::uint64_t>(batch) * m * n * k;
  }
};

/// Timing outcome of one MME launch.
struct MmeRunResult {
  sim::Cycles cycles = 0;
  sim::SimTime duration{};
  std::uint64_t flops = 0;

  [[nodiscard]] double tflops() const {
    const double s = duration.seconds();
    return s > 0 ? static_cast<double>(flops) / s * 1e-12 : 0.0;
  }
};

class MmeEngine {
 public:
  explicit MmeEngine(const sim::MmeConfig& cfg) : cfg_(cfg) {}

  [[nodiscard]] const sim::MmeConfig& config() const { return cfg_; }

  /// Cycle cost of a batched GEMM launch (timing model only).
  [[nodiscard]] MmeRunResult cost(const GemmShape& shape) const;

  /// Functional batched matmul: a [B.., M, K] @ b [B.., K, N] (b may be
  /// rank-2 and shared across the batch).  Optional operand transposes act
  /// on the trailing two dims, as the engine's descriptor would.
  [[nodiscard]] tensor::Tensor execute(const tensor::Tensor& a,
                                       const tensor::Tensor& b,
                                       bool trans_a = false,
                                       bool trans_b = false) const;

  /// Derives the GemmShape from operand shapes (after transposes); validates
  /// compatibility the same way execute() would.
  [[nodiscard]] static GemmShape shape_of(const tensor::Shape& a,
                                          const tensor::Shape& b, bool trans_a,
                                          bool trans_b);

 private:
  sim::MmeConfig cfg_;
};

}  // namespace gaudi::mme

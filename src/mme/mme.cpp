#include "mme/mme.hpp"

#include <algorithm>

#include "sim/error.hpp"
#include "tensor/ops.hpp"

namespace gaudi::mme {

MmeRunResult MmeEngine::cost(const GemmShape& shape) const {
  GAUDI_CHECK(shape.batch > 0 && shape.m > 0 && shape.n > 0 && shape.k > 0,
              "MME gemm shape must be positive");
  const std::int64_t tile_m =
      (shape.m + cfg_.array_rows - 1) / cfg_.array_rows;
  const std::int64_t tile_n =
      (shape.n + cfg_.array_cols - 1) / cfg_.array_cols;
  const std::uint64_t out_tiles =
      static_cast<std::uint64_t>(shape.batch) * tile_m * tile_n;

  // Each output tile occupies the array for k cycles.  The engine's flexible
  // geometry packs narrow outputs: a tile using only `w` of the array's
  // columns streams at w/array_cols the full-tile cost, floored at a quarter
  // of the array (descriptor granularity).  Tile chains stream back-to-back
  // so fill is paid once per launch.
  const std::int64_t n_tail = shape.n - (tile_n - 1) * cfg_.array_cols;
  const std::int64_t m_tail = shape.m - (tile_m - 1) * cfg_.array_rows;
  const auto packed = [&](std::int64_t used, std::uint32_t full) {
    const std::int64_t floor = full / 4;
    return static_cast<double>(std::clamp<std::int64_t>(used, floor, full)) /
           static_cast<double>(full);
  };
  // Average packing over the tile grid (only the tail row/column of tiles is
  // underfilled).
  const double n_frac =
      (static_cast<double>(tile_n - 1) + packed(n_tail, cfg_.array_cols)) /
      static_cast<double>(tile_n);
  const double m_frac =
      (static_cast<double>(tile_m - 1) + packed(m_tail, cfg_.array_rows)) /
      static_cast<double>(tile_m);

  const double rate = shape.dtype == tensor::DType::BF16
                          ? cfg_.bf16_throughput_multiplier
                          : 1.0;
  const auto compute = static_cast<sim::Cycles>(
      static_cast<double>(out_tiles) * static_cast<double>(shape.k) * n_frac *
          m_frac / rate +
      static_cast<double>(cfg_.pipeline_fill_cycles) + 0.5);

  MmeRunResult r;
  r.cycles = cfg_.launch_overhead_cycles + compute;
  r.duration = cfg_.clock().to_time(r.cycles);
  r.flops = shape.flops();
  return r;
}

GemmShape MmeEngine::shape_of(const tensor::Shape& a, const tensor::Shape& b,
                              bool trans_a, bool trans_b) {
  GAUDI_CHECK(a.rank() >= 2 && b.rank() >= 2, "MME operands must be rank >= 2");
  const std::int64_t a_r = a[a.rank() - 2];
  const std::int64_t a_c = a[a.rank() - 1];
  const std::int64_t b_r = b[b.rank() - 2];
  const std::int64_t b_c = b[b.rank() - 1];
  GemmShape s;
  s.m = trans_a ? a_c : a_r;
  s.k = trans_a ? a_r : a_c;
  const std::int64_t k2 = trans_b ? b_c : b_r;
  s.n = trans_b ? b_r : b_c;
  GAUDI_CHECK(s.k == k2, "MME gemm inner dims mismatch");
  const std::int64_t batch_a = a.batch_count(2);
  const std::int64_t batch_b = b.batch_count(2);
  GAUDI_CHECK(batch_a == batch_b || batch_b == 1,
              "MME gemm batch dims must match (or B be unbatched)");
  s.batch = batch_a;
  return s;
}

tensor::Tensor MmeEngine::execute(const tensor::Tensor& a, const tensor::Tensor& b,
                                  bool trans_a, bool trans_b) const {
  GAUDI_CHECK(a.defined() && b.defined(),
              "MME functional execution requires real tensors");
  (void)shape_of(a.shape(), b.shape(), trans_a, trans_b);  // validate
  // bf16 operands compute through the array's widened accumulators; inputs
  // round through bf16 (they already are) and the result rounds back.
  const bool bf16 = a.dtype() == tensor::DType::BF16 &&
                    b.dtype() == tensor::DType::BF16;
  const tensor::Tensor af = bf16 ? a.to(tensor::DType::F32) : a;
  const tensor::Tensor bf = bf16 ? b.to(tensor::DType::F32) : b;
  const tensor::Tensor at = trans_a ? tensor::ops::transpose_last2(af) : af;
  const tensor::Tensor bt = trans_b ? tensor::ops::transpose_last2(bf) : bf;
  tensor::Tensor c = tensor::ops::matmul(at, bt);
  return bf16 ? c.to(tensor::DType::BF16) : c;
}

}  // namespace gaudi::mme

// Data-parallel training-step model across the HLS-1 box.
//
// Combines a single-chip training-step profile (from the graph runtime)
// with the gradient all-reduce cost: each chip computes on its own batch
// shard, then gradients synchronize over the RoCE ring.  Optionally the
// all-reduce overlaps the backward pass (bucketed gradient sync), bounding
// the step at max(compute, comm) instead of their sum.
#pragma once

#include <cstdint>

#include "scaleout/allreduce.hpp"

namespace gaudi::scaleout {

struct DataParallelConfig {
  RoceConfig roce{};
  std::uint32_t chips = 8;
  /// Overlap gradient sync with the backward pass (bucketed all-reduce).
  bool overlap_comm = false;
  /// Fraction of the step during which buckets can sync when overlapping
  /// (the backward portion of fwd+bwd, roughly 2/3 for transformers).
  double overlappable_fraction = 0.6;
};

struct DataParallelStep {
  sim::SimTime compute{};       ///< per-chip step (same as single chip)
  sim::SimTime comm{};          ///< gradient all-reduce
  sim::SimTime exposed_comm{};  ///< comm not hidden behind compute
  sim::SimTime total{};
  double tokens_per_second = 0.0;
  double scaling_efficiency = 0.0;  ///< vs perfect linear scaling
};

/// Models one synchronous data-parallel step.
/// `single_chip_step`: profiled step time at per-chip batch size;
/// `grad_bytes`: total gradient volume to synchronize;
/// `tokens_per_chip`: tokens consumed per chip per step.
[[nodiscard]] DataParallelStep data_parallel_step(const DataParallelConfig& cfg,
                                                  sim::SimTime single_chip_step,
                                                  std::size_t grad_bytes,
                                                  std::int64_t tokens_per_chip);

}  // namespace gaudi::scaleout

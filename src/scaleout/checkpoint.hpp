// Checkpoint/rollback recovery for long training runs.
//
// A chip failure costs more than the re-formation latency: every step since
// the last checkpoint is lost and must be recomputed.  Periodic snapshots
// bound that loss at the price of checkpoint overhead on the happy path —
// the classic trade-off Young (1974) and Daly (2006) solved in closed form:
// the optimal interval between checkpoints is W_opt = sqrt(2 * delta * MTBF)
// for checkpoint cost delta.  `resilient_training_run` simulates an N-step
// run under a deterministic fault schedule and reports goodput, recomputed
// work, and checkpoint overhead so the prediction can be cross-checked
// against the measured optimum.
#pragma once

#include <cstdint>
#include <string>

#include "sim/fault.hpp"
#include "sim/time.hpp"

namespace gaudi::scaleout {

/// Cost model for saving / restoring a training snapshot.
struct CheckpointConfig {
  /// Bytes of optimizer + model state written per snapshot.
  std::size_t state_bytes = 8ull << 30;
  /// Sustained bandwidth to the checkpoint store.
  double storage_bandwidth_bytes_per_s = 2.0e9;
  /// Per-snapshot fixed cost (barrier, metadata commit).
  sim::SimTime fixed_overhead = sim::SimTime::from_ms(50.0);
};

/// Time to write one snapshot.
[[nodiscard]] sim::SimTime checkpoint_save_time(const CheckpointConfig& cfg);
/// Time to read one snapshot back after a failure.
[[nodiscard]] sim::SimTime checkpoint_restore_time(const CheckpointConfig& cfg);

enum class RecoveryPolicy : std::uint8_t {
  kNone,           ///< no checkpoints; a failure restarts from step 0
  kFixedInterval,  ///< checkpoint every `checkpoint_interval` steps
  kYoungDaly,      ///< checkpoint at the Young/Daly optimal interval
};

[[nodiscard]] const char* recovery_policy_name(RecoveryPolicy p);

/// Young/Daly optimal checkpoint interval, in steps (>= 1):
/// W_opt = sqrt(2 * save_time * MTBF), quantized to whole steps.
[[nodiscard]] std::uint64_t young_daly_interval_steps(sim::SimTime step_time,
                                                      sim::SimTime save_time,
                                                      double mtbf_steps);

struct TrainingRunConfig {
  std::uint64_t steps = 1000;  ///< useful steps the run must complete
  sim::SimTime step_time = sim::SimTime::from_ms(300.0);
  std::uint32_t chips = 8;
  /// MTBF in steps, used for the Young/Daly prediction.  The injector's
  /// chip_failure_rate decides when failures actually land.
  double mtbf_steps = 200.0;
  RecoveryPolicy policy = RecoveryPolicy::kFixedInterval;
  /// Interval for kFixedInterval (ignored by the other policies).
  std::uint64_t checkpoint_interval = 50;
  CheckpointConfig checkpoint{};
  /// Relaunch cost after a failure, on top of the snapshot restore:
  /// process restart, ring re-formation, cache warm-up.
  sim::SimTime restart_overhead = sim::SimTime::from_ms(500.0);
};

struct TrainingRunReport {
  /// False when the run hit its attempt budget before completing — with no
  /// checkpoints and MTBF much shorter than the run, restart-from-zero never
  /// converges; the report then covers the truncated attempt.
  bool finished = true;
  std::uint64_t useful_steps = 0;      ///< == cfg.steps on completion
  std::uint64_t recomputed_steps = 0;  ///< work redone after rollbacks
  std::uint64_t failures = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t restores = 0;
  std::uint64_t interval = 0;  ///< effective checkpoint interval (0 = none)
  sim::SimTime total_time{};
  sim::SimTime compute_time{};     ///< useful step execution
  sim::SimTime recompute_time{};   ///< re-executed + partially-failed steps
  sim::SimTime checkpoint_time{};  ///< snapshot saves
  sim::SimTime restore_time{};     ///< snapshot reads + restart overhead
  sim::SimTime stall_time{};       ///< straggler / HBM pressure stalls
  /// Sustained useful throughput: (useful_steps * step_time) / total_time.
  double goodput = 0.0;
};

/// One line per report, stable formatting — byte-comparable across runs.
[[nodiscard]] std::string to_string(const TrainingRunReport& r);

/// Simulates an N-step run under the injector's fault schedule: steps
/// execute (stretched by stragglers / HBM pressure), snapshots land per the
/// policy, and each chip failure rolls the run back to the latest snapshot
/// (step 0 for kNone) before it grinds forward again.  Deterministic: the
/// same (cfg, injector seed/profile) reproduces the report byte-for-byte.
[[nodiscard]] TrainingRunReport resilient_training_run(
    const TrainingRunConfig& cfg, const sim::FaultInjector& faults);

}  // namespace gaudi::scaleout

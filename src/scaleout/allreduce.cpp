#include "scaleout/allreduce.hpp"

#include <algorithm>

#include "sim/error.hpp"

namespace gaudi::scaleout {

AllReduceResult ring_all_reduce_time(const RoceConfig& cfg, std::size_t bytes,
                                     std::uint32_t chips) {
  GAUDI_CHECK(chips >= 1 && chips <= cfg.num_chips,
              "chip count outside the box");
  AllReduceResult r;
  if (chips == 1 || bytes == 0) {
    return r;
  }
  // 2(P-1) pipelined steps, each transferring ceil(N/P) bytes per chip; all
  // chips move in parallel, so the wall-clock is one chip's sequence.
  const std::size_t chunk = (bytes + chips - 1) / chips;
  r.steps = 2ull * (chips - 1);
  r.bytes_moved_per_chip = static_cast<std::size_t>(r.steps) * chunk;
  for (std::uint64_t s = 0; s < r.steps; ++s) {
    r.duration += p2p_time(cfg, chunk);
  }
  return r;
}

AllReduceResult ring_all_reduce(const RoceConfig& cfg,
                                std::vector<tensor::Tensor>& shards,
                                ReduceOp op) {
  GAUDI_CHECK(!shards.empty(), "all-reduce needs at least one shard");
  const auto chips = static_cast<std::uint32_t>(shards.size());
  const std::int64_t n = shards[0].numel();
  for (const auto& s : shards) {
    GAUDI_CHECK(s.defined() && s.dtype() == tensor::DType::F32,
                "all-reduce shards must be real f32 tensors");
    // Shape (not merely element-count) equality: a [2,3] shard meeting a
    // [3,2] one is a sharding bug upstream, not a reducible pair.
    GAUDI_CHECK(s.shape() == shards[0].shape(),
                "all-reduce shards must have equal shapes");
  }

  const AllReduceResult timing =
      ring_all_reduce_time(cfg, static_cast<std::size_t>(n) * 4, chips);
  if (chips == 1) {
    return timing;
  }

  // Chunk boundaries: chunk c covers [bounds[c], bounds[c+1]).
  std::vector<std::int64_t> bounds(chips + 1);
  for (std::uint32_t c = 0; c <= chips; ++c) {
    bounds[c] = n * c / chips;
  }

  // Reduce-scatter: after step s, chip i holds the running sum of chunk
  // (i - s) from its upstream neighbours.
  for (std::uint32_t s = 0; s < chips - 1; ++s) {
    // All sends happen "simultaneously"; stage into temporaries first.
    std::vector<std::vector<float>> in_flight(chips);
    for (std::uint32_t i = 0; i < chips; ++i) {
      const std::uint32_t chunk = (i + chips - s) % chips;  // chunk to send
      const auto src = shards[i].f32();
      in_flight[(i + 1) % chips].assign(
          src.begin() + bounds[chunk], src.begin() + bounds[chunk + 1]);
    }
    for (std::uint32_t i = 0; i < chips; ++i) {
      const std::uint32_t chunk = (i + chips - 1 - s) % chips;  // received
      auto dst = shards[i].f32();
      const auto& recv = in_flight[i];
      for (std::size_t j = 0; j < recv.size(); ++j) {
        dst[static_cast<std::size_t>(bounds[chunk]) + j] += recv[j];
      }
    }
  }

  // All-gather: circulate the finished chunks.
  for (std::uint32_t s = 0; s < chips - 1; ++s) {
    std::vector<std::vector<float>> in_flight(chips);
    for (std::uint32_t i = 0; i < chips; ++i) {
      const std::uint32_t chunk = (i + 1 + chips - s) % chips;
      const auto src = shards[i].f32();
      in_flight[(i + 1) % chips].assign(
          src.begin() + bounds[chunk], src.begin() + bounds[chunk + 1]);
    }
    for (std::uint32_t i = 0; i < chips; ++i) {
      const std::uint32_t chunk = (i + chips - s) % chips;
      auto dst = shards[i].f32();
      const auto& recv = in_flight[i];
      std::copy(recv.begin(), recv.end(),
                dst.begin() + bounds[chunk]);
    }
  }

  if (op == ReduceOp::kMean) {
    const float inv = 1.0f / static_cast<float>(chips);
    for (auto& s : shards) {
      for (float& x : s.f32()) x *= inv;
    }
  }
  return timing;
}

}  // namespace gaudi::scaleout

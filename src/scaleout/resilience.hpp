// Fault-tolerant scale-out: retry/backoff on RoCE, elastic ring re-formation.
//
// The happy-path collectives in allreduce/data_parallel/pipeline assume
// every link is up and every chip survives the step.  This layer wraps them
// with the recovery machinery a production stack runs:
//
//  * transient link errors — the affected ring step retries with exponential
//    backoff until it succeeds (a later attempt always does; transient means
//    transient), the wall-clock absorbing the wasted attempts;
//  * persistent link degradation — the slowest link paces each ring step, so
//    one degraded port stretches the whole exchange;
//  * chip failure mid-step — elastic re-formation: the ring shrinks from P
//    to P-1 chips, shards redistribute, and the bucket schedule recomputes.
//    The exchange is functional (host tensors), so the surviving chips'
//    reduction stays numerically exact;
//  * TPC stragglers / HBM pressure — the slowest chip paces a synchronous
//    data-parallel step, and capacity pressure stalls it outright.
//
// All fault draws go through sim::FaultInjector, so the same (seed, step)
// reproduces the same recovery sequence bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

#include "scaleout/allreduce.hpp"
#include "scaleout/data_parallel.hpp"
#include "scaleout/pipeline.hpp"
#include "sim/fault.hpp"

namespace gaudi::scaleout {

/// Retry/backoff policy for transient-fault recovery.
struct RetryPolicy {
  std::uint32_t max_attempts = 4;  ///< attempts per transfer before escalation
  sim::SimTime base_backoff = sim::SimTime::from_us(100.0);
  double backoff_multiplier = 2.0;
  /// Time to detect a dead transfer / dead peer (ack timeout).
  sim::SimTime detection_timeout = sim::SimTime::from_us(500.0);
};

/// Backoff delay before retry attempt `attempt` (0-based: the delay paid
/// after the first failed attempt is backoff_delay(policy, 0)).
[[nodiscard]] sim::SimTime backoff_delay(const RetryPolicy& policy,
                                         std::uint32_t attempt);

struct ResilienceConfig {
  RoceConfig roce{};
  RetryPolicy retry{};
  /// Cost of elastic ring re-formation after a chip loss: membership
  /// agreement plus shard-ownership redistribution over the fabric.
  sim::SimTime reformation_latency = sim::SimTime::from_ms(2.0);
};

/// Fault accounting for one wrapped operation.
struct FaultStats {
  std::uint32_t transient_faults = 0;
  std::uint32_t retries = 0;
  std::uint32_t degraded_links = 0;
  std::uint32_t chips_lost = 0;
  std::uint32_t stragglers = 0;
  sim::SimTime retry_overhead{};        ///< wasted attempts + backoff
  sim::SimTime degradation_overhead{};  ///< slow-link stretch
  sim::SimTime reformation_overhead{};  ///< detection + ring re-formation
};

struct ResilientAllReduceResult {
  /// Ideal timing of the exchange actually performed (over the survivors).
  AllReduceResult exchange;
  /// Wall-clock including retries, degradation, and re-formation.
  sim::SimTime duration{};
  std::uint32_t surviving_chips = 0;
  std::vector<std::uint32_t> lost_chips;  ///< original indices, ascending
  FaultStats faults;
};

/// Timing-only fault-aware ring all-reduce.  `step` keys the deterministic
/// fault draws; with a disabled injector the result equals
/// `ring_all_reduce_time(cfg.roce, bytes, chips)` exactly.
/// Throws sim::ResourceExhausted when every chip fails.
[[nodiscard]] ResilientAllReduceResult resilient_ring_all_reduce_time(
    const ResilienceConfig& cfg, const sim::FaultInjector& faults,
    std::uint64_t step, std::size_t bytes, std::uint32_t chips);

/// Functional fault-aware ring all-reduce.  On chip loss the failed chips'
/// shards are dropped (their gradient contribution is lost with them) and
/// `shards` shrinks to the survivors, which then hold the exact element-wise
/// sum (or mean over the survivor count) of the surviving inputs.
ResilientAllReduceResult resilient_ring_all_reduce(
    const ResilienceConfig& cfg, const sim::FaultInjector& faults,
    std::uint64_t step, std::vector<tensor::Tensor>& shards,
    ReduceOp op = ReduceOp::kSum);

struct ResilientStepResult {
  DataParallelStep step;          ///< totals include fault overheads
  std::uint32_t chips_used = 0;   ///< survivors running the step
  sim::SimTime straggler_stall{};
  sim::SimTime hbm_stall{};
  FaultStats faults;
};

/// Fault-aware synchronous data-parallel step: the slowest (possibly
/// straggling) chip paces compute, HBM pressure stalls the step, and the
/// gradient sync runs the resilient all-reduce above.  On chip loss the step
/// completes on the survivors (throughput and tokens scale down with them).
[[nodiscard]] ResilientStepResult resilient_data_parallel_step(
    const ResilienceConfig& cfg, const DataParallelConfig& dp,
    const sim::FaultInjector& faults, std::uint64_t step_index,
    sim::SimTime single_chip_step, std::size_t grad_bytes,
    std::int64_t tokens_per_chip);

struct ResilientPipelineResult {
  PipelineStep step;
  std::uint32_t stages_used = 0;
  FaultStats faults;
};

/// Fault-aware GPipe step: a straggling stage paces every slot, boundary
/// transfers retry transient faults, and a failed chip re-partitions the
/// model over P-1 stages after the re-formation latency.
[[nodiscard]] ResilientPipelineResult resilient_pipeline_step(
    const ResilienceConfig& cfg, const PipelineConfig& pp,
    const sim::FaultInjector& faults, std::uint64_t step_index,
    sim::SimTime full_model_step, std::size_t activation_bytes,
    std::int64_t tokens_per_microbatch);

}  // namespace gaudi::scaleout

#include "scaleout/resilience.hpp"

#include <algorithm>
#include <cmath>

#include "sim/error.hpp"

namespace gaudi::scaleout {

namespace {

/// Scales a duration by a slowdown factor >= 1 (e.g. 1/bandwidth-factor).
sim::SimTime stretch(sim::SimTime t, double factor) {
  if (factor <= 1.0) return t;
  return sim::SimTime::from_ps(
      static_cast<std::int64_t>(static_cast<double>(t.ps()) * factor + 0.5));
}

/// Site for per-(step, link) retry attempt `a`.  Attempt 0 reuses the
/// canonical (step, unit) site so `fault_schedule` enumerates the same
/// first-failure draws this code consumes; later attempts derive from it.
std::uint64_t attempt_site(std::uint64_t step, std::uint32_t link,
                           std::uint32_t attempt) {
  const std::uint64_t s0 = sim::FaultInjector::site(step, link);
  return attempt == 0 ? s0 : sim::splitmix64(s0) + attempt;
}

/// Chips the injector kills at `step`, ascending.  Throws when nobody
/// survives — there is no ring to re-form.
std::vector<std::uint32_t> chips_lost_at(const sim::FaultInjector& faults,
                                         std::uint64_t step,
                                         std::uint32_t chips) {
  std::vector<std::uint32_t> lost;
  for (std::uint32_t c = 0; c < chips; ++c) {
    if (faults.fires(sim::FaultKind::kChipFailure,
                     sim::FaultInjector::site(step, c))) {
      lost.push_back(c);
    }
  }
  if (lost.size() == chips) {
    throw sim::ResourceExhausted(
        "every chip failed at step " + std::to_string(step) +
        "; no surviving ring to re-form");
  }
  return lost;
}

}  // namespace

sim::SimTime backoff_delay(const RetryPolicy& policy, std::uint32_t attempt) {
  return stretch(policy.base_backoff,
                 std::pow(policy.backoff_multiplier, attempt));
}

ResilientAllReduceResult resilient_ring_all_reduce_time(
    const ResilienceConfig& cfg, const sim::FaultInjector& faults,
    std::uint64_t step, std::size_t bytes, std::uint32_t chips) {
  GAUDI_CHECK(chips >= 1 && chips <= cfg.roce.num_chips,
              "chip count outside the box");
  GAUDI_CHECK(cfg.retry.max_attempts >= 1, "retry policy needs >= 1 attempt");

  ResilientAllReduceResult r;
  r.surviving_chips = chips;

  // Chip failures first: they decide the ring the exchange actually runs on.
  if (faults.enabled()) {
    r.lost_chips = chips_lost_at(faults, step, chips);
    if (!r.lost_chips.empty()) {
      r.faults.chips_lost = static_cast<std::uint32_t>(r.lost_chips.size());
      r.surviving_chips = chips - r.faults.chips_lost;
      // Simultaneous losses share one membership round: detection of the
      // dead peer(s), then one re-formation redistributing shard ownership.
      r.faults.reformation_overhead =
          cfg.retry.detection_timeout + cfg.reformation_latency;
      r.duration += r.faults.reformation_overhead;
    }
  }

  const std::uint32_t ring = r.surviving_chips;
  if (ring == 1 || bytes == 0) return r;

  const std::size_t chunk = (bytes + ring - 1) / ring;
  const std::uint64_t steps = 2ull * (ring - 1);
  r.exchange.steps = steps;
  r.exchange.bytes_moved_per_chip = static_cast<std::size_t>(steps) * chunk;
  const sim::SimTime base = p2p_time(cfg.roce, chunk);
  r.exchange.duration = base * static_cast<std::int64_t>(steps);

  // Link state for this step: ring position l is the link chip l sends on
  // after any re-formation.  A degraded link paces every ring step it
  // carries (all of them — the ring rotates through every link each step).
  sim::SimTime slowest = base;
  sim::SimTime max_retry_overhead = sim::SimTime::zero();
  if (faults.enabled()) {
    const double degrade =
        1.0 / std::max(1e-6, faults.profile().degraded_bandwidth_factor);
    for (std::uint32_t l = 0; l < ring; ++l) {
      if (faults.fires(sim::FaultKind::kLinkDegradation,
                       sim::FaultInjector::site(step, l))) {
        ++r.faults.degraded_links;
        slowest = std::max(slowest, stretch(base, degrade));
      }
      // Transient errors: the link drops its transfer; each failed attempt
      // costs the ack timeout plus exponential backoff, then the retry
      // succeeds (the last permitted attempt always goes through).
      sim::SimTime link_overhead = sim::SimTime::zero();
      for (std::uint32_t a = 0; a + 1 < cfg.retry.max_attempts; ++a) {
        if (!faults.fires(sim::FaultKind::kTransientLink,
                          attempt_site(step, l, a))) {
          break;
        }
        ++r.faults.transient_faults;
        ++r.faults.retries;
        link_overhead += cfg.retry.detection_timeout + backoff_delay(cfg.retry, a);
      }
      max_retry_overhead = std::max(max_retry_overhead, link_overhead);
    }
  }
  // Links run in parallel within a ring step, so the slowest link paces each
  // step and the worst retry chain gates the pipeline once.
  r.faults.retry_overhead = max_retry_overhead;
  r.faults.degradation_overhead =
      (slowest - base) * static_cast<std::int64_t>(steps);
  r.duration += slowest * static_cast<std::int64_t>(steps) + max_retry_overhead;
  return r;
}

ResilientAllReduceResult resilient_ring_all_reduce(
    const ResilienceConfig& cfg, const sim::FaultInjector& faults,
    std::uint64_t step, std::vector<tensor::Tensor>& shards, ReduceOp op) {
  GAUDI_CHECK(!shards.empty(), "all-reduce needs at least one shard");
  for (const auto& s : shards) {
    GAUDI_CHECK(s.defined() && s.dtype() == tensor::DType::F32,
                "all-reduce shards must be real f32 tensors");
    GAUDI_CHECK(s.shape() == shards[0].shape(),
                "all-reduce shards must have equal shapes");
  }
  const auto chips = static_cast<std::uint32_t>(shards.size());
  const std::size_t bytes = static_cast<std::size_t>(shards[0].numel()) * 4;

  ResilientAllReduceResult r =
      resilient_ring_all_reduce_time(cfg, faults, step, bytes, chips);

  // Elastic re-formation: drop the failed chips' shards (their gradient
  // contribution died with them) and reduce over the survivors.  The
  // exchange is functional, so the survivors' sum/mean is exact.
  for (auto it = r.lost_chips.rbegin(); it != r.lost_chips.rend(); ++it) {
    shards.erase(shards.begin() + *it);
  }
  if (shards.size() > 1) {
    (void)ring_all_reduce(cfg.roce, shards, op);
  }
  return r;
}

ResilientStepResult resilient_data_parallel_step(
    const ResilienceConfig& cfg, const DataParallelConfig& dp,
    const sim::FaultInjector& faults, std::uint64_t step_index,
    sim::SimTime single_chip_step, std::size_t grad_bytes,
    std::int64_t tokens_per_chip) {
  GAUDI_CHECK(dp.chips >= 1, "need at least one chip");
  GAUDI_CHECK(single_chip_step > sim::SimTime::zero(),
              "single-chip step time must be positive");
  GAUDI_CHECK(dp.overlappable_fraction >= 0.0 && dp.overlappable_fraction <= 1.0,
              "overlappable_fraction must lie in [0, 1]");

  ResilientStepResult out;

  // Gradient sync first: its chip-failure draws decide who survives the
  // step, and a synchronous step only completes on the survivors.
  ResilienceConfig comm_cfg = cfg;
  comm_cfg.roce = dp.roce;
  const ResilientAllReduceResult comm = resilient_ring_all_reduce_time(
      comm_cfg, faults, step_index, grad_bytes, dp.chips);
  out.chips_used = comm.surviving_chips;
  out.faults = comm.faults;

  // The slowest surviving chip paces the synchronous compute phase.
  double slow = 1.0;
  if (faults.enabled()) {
    for (std::uint32_t c = 0; c < out.chips_used; ++c) {
      if (faults.fires(sim::FaultKind::kTpcStraggler,
                       sim::FaultInjector::site(step_index, c))) {
        ++out.faults.stragglers;
        slow = std::max(slow, faults.profile().straggler_slowdown);
      }
    }
    if (faults.fires(sim::FaultKind::kHbmPressure,
                     sim::FaultInjector::site(step_index, 0))) {
      out.hbm_stall = faults.profile().hbm_pressure_stall;
    }
  }
  sim::SimTime compute = stretch(single_chip_step, slow);
  out.straggler_stall = compute - single_chip_step;
  compute += out.hbm_stall;

  DataParallelStep& step = out.step;
  step.compute = compute;
  step.comm = comm.duration;
  // Only the clean exchange can hide behind the backward pass; retry,
  // degradation, and re-formation overheads are exposed by construction
  // (the bucket schedule stalls while recovery runs).
  const sim::SimTime overhead = comm.duration - comm.exchange.duration;
  if (dp.overlap_comm && out.chips_used > 1) {
    const sim::SimTime window = sim::SimTime::from_seconds(
        compute.seconds() * dp.overlappable_fraction);
    step.exposed_comm = (comm.exchange.duration > window
                             ? comm.exchange.duration - window
                             : sim::SimTime::zero()) +
                        overhead;
  } else {
    step.exposed_comm = step.comm;
  }
  step.total = step.compute + step.exposed_comm;

  if (step.total <= sim::SimTime::zero()) return out;
  const double tokens =
      static_cast<double>(tokens_per_chip) * out.chips_used;
  step.tokens_per_second = tokens / step.total.seconds();
  const double single_rate =
      static_cast<double>(tokens_per_chip) / single_chip_step.seconds();
  // Efficiency is judged against the full box: chip loss shows up here.
  step.scaling_efficiency =
      step.tokens_per_second / (single_rate * static_cast<double>(dp.chips));
  return out;
}

ResilientPipelineResult resilient_pipeline_step(
    const ResilienceConfig& cfg, const PipelineConfig& pp,
    const sim::FaultInjector& faults, std::uint64_t step_index,
    sim::SimTime full_model_step, std::size_t activation_bytes,
    std::int64_t tokens_per_microbatch) {
  GAUDI_CHECK(pp.stages >= 1, "pipeline needs at least one stage");
  GAUDI_CHECK(pp.microbatches >= 1, "pipeline needs at least one microbatch");
  GAUDI_CHECK(full_model_step > sim::SimTime::zero(),
              "model step time must be positive");

  ResilientPipelineResult out;
  out.stages_used = pp.stages;

  sim::SimTime reformation = sim::SimTime::zero();
  double slow = 1.0;
  sim::SimTime retry_overhead = sim::SimTime::zero();
  double boundary_degrade = 1.0;
  if (faults.enabled()) {
    const std::vector<std::uint32_t> lost =
        chips_lost_at(faults, step_index, pp.stages);
    if (!lost.empty()) {
      out.faults.chips_lost = static_cast<std::uint32_t>(lost.size());
      out.stages_used = pp.stages - out.faults.chips_lost;
      // Losing a stage forces a re-partition of the layers over the
      // survivors before the step can run.
      out.faults.reformation_overhead =
          cfg.retry.detection_timeout + cfg.reformation_latency;
      reformation = out.faults.reformation_overhead;
    }
    for (std::uint32_t s = 0; s < out.stages_used; ++s) {
      if (faults.fires(sim::FaultKind::kTpcStraggler,
                       sim::FaultInjector::site(step_index, s))) {
        ++out.faults.stragglers;
        slow = std::max(slow, faults.profile().straggler_slowdown);
      }
      if (s + 1 < out.stages_used) {  // boundary link s -> s+1
        if (faults.fires(sim::FaultKind::kLinkDegradation,
                         sim::FaultInjector::site(step_index, s))) {
          ++out.faults.degraded_links;
          boundary_degrade = std::max(
              boundary_degrade,
              1.0 / std::max(1e-6, faults.profile().degraded_bandwidth_factor));
        }
        for (std::uint32_t a = 0; a + 1 < cfg.retry.max_attempts; ++a) {
          if (!faults.fires(sim::FaultKind::kTransientLink,
                            attempt_site(step_index, s, a))) {
            break;
          }
          ++out.faults.transient_faults;
          ++out.faults.retries;
          retry_overhead +=
              cfg.retry.detection_timeout + backoff_delay(cfg.retry, a);
        }
      }
    }
    out.faults.retry_overhead = retry_overhead;
  }

  PipelineStep& step = out.step;
  // A straggling stage paces every slot: the GPipe schedule is synchronous
  // per slot, so the whole pipeline marches at the slowest stage's beat.
  step.stage_time = stretch(
      sim::SimTime::from_seconds(full_model_step.seconds() /
                                 static_cast<double>(out.stages_used)),
      slow);
  step.boundary_comm =
      out.stages_used > 1
          ? stretch(p2p_time(pp.roce, activation_bytes), boundary_degrade)
          : sim::SimTime::zero();
  step.slot_time = step.stage_time + step.boundary_comm;
  const std::uint64_t slots = pp.microbatches + out.stages_used - 1;
  step.total = step.slot_time * static_cast<std::int64_t>(slots) + reformation +
               retry_overhead;
  step.bubble_fraction = static_cast<double>(out.stages_used - 1) /
                         static_cast<double>(slots);
  step.utilization = 1.0 - step.bubble_fraction;

  if (step.total <= sim::SimTime::zero()) return out;
  const double tokens =
      static_cast<double>(tokens_per_microbatch) * pp.microbatches;
  step.tokens_per_second = tokens / step.total.seconds();
  const double single_chip_s =
      full_model_step.seconds() * static_cast<double>(pp.microbatches);
  step.speedup_vs_single_chip = single_chip_s / step.total.seconds();
  return out;
}

}  // namespace gaudi::scaleout

#include "scaleout/pipeline.hpp"

#include "sim/error.hpp"

namespace gaudi::scaleout {

PipelineStep pipeline_step(const PipelineConfig& cfg, sim::SimTime full_model_step,
                           std::size_t activation_bytes,
                           std::int64_t tokens_per_microbatch) {
  GAUDI_CHECK(cfg.stages >= 1, "pipeline needs at least one stage");
  GAUDI_CHECK(cfg.microbatches >= 1, "pipeline needs at least one microbatch");
  GAUDI_CHECK(full_model_step > sim::SimTime::zero(),
              "model step time must be positive");

  PipelineStep step;
  step.stage_time = sim::SimTime::from_seconds(full_model_step.seconds() /
                                               static_cast<double>(cfg.stages));
  step.boundary_comm =
      cfg.stages > 1 ? p2p_time(cfg.roce, activation_bytes) : sim::SimTime::zero();

  // A slot advances every stage by one microbatch; the boundary transfer
  // serializes with the slot (no overlap modelled — conservative).
  step.slot_time = step.stage_time + step.boundary_comm;
  const std::uint64_t slots = cfg.microbatches + cfg.stages - 1;
  step.total = step.slot_time * static_cast<std::int64_t>(slots);

  step.bubble_fraction = static_cast<double>(cfg.stages - 1) /
                         static_cast<double>(slots);
  step.utilization = 1.0 - step.bubble_fraction;

  // full_model_step > 0 makes total positive, but guard the divisions so a
  // zero step can never turn into inf/nan rates downstream.
  if (step.total <= sim::SimTime::zero()) return step;
  const double tokens =
      static_cast<double>(tokens_per_microbatch) * cfg.microbatches;
  step.tokens_per_second = tokens / step.total.seconds();

  const double single_chip_s =
      full_model_step.seconds() * static_cast<double>(cfg.microbatches);
  step.speedup_vs_single_chip = single_chip_s / step.total.seconds();
  return step;
}

}  // namespace gaudi::scaleout

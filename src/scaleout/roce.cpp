#include "scaleout/roce.hpp"

namespace gaudi::scaleout {

sim::SimTime p2p_time(const RoceConfig& cfg, std::size_t bytes) {
  const double stream_s =
      static_cast<double>(bytes) / cfg.link_bandwidth_bytes_per_s;
  return cfg.link_latency + sim::SimTime::from_seconds(stream_s);
}

double p2p_effective_bandwidth(const RoceConfig& cfg, std::size_t bytes) {
  const sim::SimTime t = p2p_time(cfg, bytes);
  return t > sim::SimTime::zero() ? static_cast<double>(bytes) / t.seconds() : 0.0;
}

}  // namespace gaudi::scaleout

// Ring all-reduce over the in-box RoCE links.
//
// The standard bandwidth-optimal algorithm: P chips, tensor split into P
// chunks; P-1 reduce-scatter steps followed by P-1 all-gather steps, each
// step moving N/P bytes per chip.  `ring_all_reduce` executes the exchange
// *functionally* on host tensors (so numerics are exact and testable) and
// returns the simulated completion time from the link model.
#pragma once

#include <cstdint>
#include <vector>

#include "scaleout/roce.hpp"
#include "tensor/tensor.hpp"

namespace gaudi::scaleout {

enum class ReduceOp : std::uint8_t { kSum, kMean };

struct AllReduceResult {
  sim::SimTime duration{};
  std::uint64_t steps = 0;
  std::size_t bytes_moved_per_chip = 0;
};

/// In-place ring all-reduce across `shards` (one tensor per chip, equal
/// shapes).  After the call every shard holds the element-wise sum (or
/// mean) of all inputs.  A single shard completes immediately.
AllReduceResult ring_all_reduce(const RoceConfig& cfg,
                                std::vector<tensor::Tensor>& shards,
                                ReduceOp op = ReduceOp::kSum);

/// Timing-only variant for paper-scale gradient volumes.
[[nodiscard]] AllReduceResult ring_all_reduce_time(const RoceConfig& cfg,
                                                   std::size_t bytes,
                                                   std::uint32_t chips);

}  // namespace gaudi::scaleout

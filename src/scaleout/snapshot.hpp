// Crash-consistent training snapshots with deterministic resume.
//
// scaleout/checkpoint.hpp prices recovery (Young/Daly); this module makes it
// real: a snapshot serializes the complete training state as named tensor
// sections plus a small ordered metadata map, and the on-disk protocol is
// built so that a crash at *any* byte boundary leaves the directory
// recoverable.  Each checkpoint is a pair of files:
//
//   step-000000042.gsnap     raw section payloads, concatenated
//   step-000000042.manifest  text manifest: version, step, metadata, and per
//                            section (name, dtype, shape, offset, nbytes,
//                            FNV-1a checksum), closed by a checksum of the
//                            manifest body itself
//
// Both files are written to a ".tmp" sibling and renamed into place; the
// manifest rename is the commit point.  A crash before it leaves an orphan
// data file the scanner reports as uncommitted; a torn data write or a
// flipped storage bit is caught by the per-section checksums.  The
// FaultInjector can fire FaultKind::kCheckpointCorruption inside the write
// window to simulate exactly those failures, deterministically.
//
// Loading verifies version, manifest integrity, file sizes, and every
// section checksum, throwing a distinct sim::Checkpoint* error per cause.
// scan_snapshots() walks a directory newest-first and falls back to the
// newest *valid* snapshot, surfacing a structured report of everything it
// rejected and why — a corrupted checkpoint must never load silently.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "scaleout/checkpoint.hpp"
#include "sim/fault.hpp"
#include "tensor/tensor.hpp"

namespace gaudi::scaleout {

/// On-disk format version; bumped on any incompatible layout change.
inline constexpr std::uint32_t kSnapshotFormatVersion = 1;

/// One named tensor in a snapshot (a parameter, an optimizer slot, ...).
struct SnapshotSection {
  std::string name;
  tensor::Tensor data;
};

/// A complete training snapshot: the step cursor, an ordered u64 metadata
/// map (floats ride as bit patterns), and the tensor sections.
struct Snapshot {
  std::uint64_t step = 0;
  std::vector<std::pair<std::string, std::uint64_t>> meta;
  std::vector<SnapshotSection> sections;

  /// Appends a metadata entry (keys must be unique and whitespace-free).
  void add_meta(const std::string& key, std::uint64_t value);
  [[nodiscard]] std::optional<std::uint64_t> meta_value(
      const std::string& key) const;
  /// Like meta_value but throws CheckpointShapeMismatch when absent.
  [[nodiscard]] std::uint64_t require_meta(const std::string& key) const;

  /// Appends a tensor section (names must be unique and whitespace-free).
  void add(std::string name, tensor::Tensor data);
  [[nodiscard]] const tensor::Tensor* find(const std::string& name) const;
  /// Like find but throws CheckpointShapeMismatch when absent.
  [[nodiscard]] const tensor::Tensor& require(const std::string& name) const;

  /// Total serialized payload bytes (the .gsnap file size).
  [[nodiscard]] std::size_t payload_bytes() const;
};

/// "step-000000042" — the shared basename of a checkpoint's file pair.
[[nodiscard]] std::string snapshot_basename(std::uint64_t step);

struct SaveOptions {
  /// When set, FaultKind::kCheckpointCorruption is queried at `site` and a
  /// fired fault leaves the write torn (see the corruption modes in the
  /// header comment).  The writer does not report the damage — like a real
  /// torn write, it is discovered at load time.
  const sim::FaultInjector* faults = nullptr;
  std::uint64_t site = 0;
  /// Test hook: write this format version instead of the current one, so
  /// version-skew handling can be exercised without a format archaeology.
  std::uint32_t version = kSnapshotFormatVersion;
};

/// Atomically writes `snap` into `dir` (created if missing) and returns the
/// manifest path that commits it.  Throws sim::Error on real I/O failure;
/// simulated corruption is silent by design.
std::string save_snapshot(const std::string& dir, const Snapshot& snap,
                          const SaveOptions& opts = {});

/// Loads and fully verifies the checkpoint committed by `manifest_path`.
/// Throws CheckpointVersionSkew / CheckpointTruncated /
/// CheckpointChecksumMismatch / CheckpointError per cause.
[[nodiscard]] Snapshot load_snapshot(const std::string& manifest_path);

/// Why a checkpoint candidate was rejected during a directory scan.
enum class SnapshotReject : std::uint8_t {
  kUncommitted,       ///< data file present, manifest never committed
  kMissingData,       ///< manifest present, data file gone
  kBadManifest,       ///< manifest unparseable / structurally invalid
  kVersionSkew,       ///< written by an incompatible format version
  kTruncated,         ///< file ends before the promised bytes
  kChecksumMismatch,  ///< stored bytes no longer match their checksum
};

[[nodiscard]] const char* snapshot_reject_name(SnapshotReject r);

struct RejectedSnapshot {
  std::uint64_t step = 0;
  std::string path;
  SnapshotReject reason = SnapshotReject::kBadManifest;
  std::string detail;
};

/// Result of scanning a checkpoint directory: the newest snapshot that
/// verified end-to-end (if any), plus every newer candidate that was
/// rejected, newest first, with its cause.
struct SnapshotScan {
  std::optional<Snapshot> snapshot;
  std::uint64_t step = 0;   ///< == snapshot->step when found
  std::string path;         ///< manifest path of the restored snapshot
  std::vector<RejectedSnapshot> rejected;

  [[nodiscard]] bool found() const { return snapshot.has_value(); }
};

/// Scans `dir` for checkpoints and loads the newest valid one.  Damaged or
/// torn candidates are rejected (never thrown) and reported; an empty or
/// nonexistent directory yields a clean not-found scan.
[[nodiscard]] SnapshotScan scan_snapshots(const std::string& dir);

/// One line per decision, stable formatting — the structured report a
/// resume surfaces to the operator.
[[nodiscard]] std::string to_string(const SnapshotScan& scan);

/// A CheckpointConfig whose state_bytes is the snapshot's real serialized
/// payload, so the Young/Daly cost model is backed by measured bytes
/// instead of an assumed 8 GB.
[[nodiscard]] CheckpointConfig backed_checkpoint_config(
    const Snapshot& snap, CheckpointConfig base = {});

}  // namespace gaudi::scaleout

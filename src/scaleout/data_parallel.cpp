#include "scaleout/data_parallel.hpp"

#include <algorithm>

#include "sim/error.hpp"

namespace gaudi::scaleout {

DataParallelStep data_parallel_step(const DataParallelConfig& cfg,
                                    sim::SimTime single_chip_step,
                                    std::size_t grad_bytes,
                                    std::int64_t tokens_per_chip) {
  GAUDI_CHECK(cfg.chips >= 1, "need at least one chip");
  GAUDI_CHECK(single_chip_step > sim::SimTime::zero(),
              "single-chip step time must be positive");
  GAUDI_CHECK(cfg.overlappable_fraction >= 0.0 && cfg.overlappable_fraction <= 1.0,
              "overlappable_fraction must lie in [0, 1]");

  DataParallelStep step;
  step.compute = single_chip_step;
  step.comm = ring_all_reduce_time(cfg.roce, grad_bytes, cfg.chips).duration;

  if (cfg.overlap_comm && cfg.chips > 1) {
    // Buckets sync during the backward window; only the excess is exposed.
    const sim::SimTime window = sim::SimTime::from_seconds(
        single_chip_step.seconds() * cfg.overlappable_fraction);
    step.exposed_comm =
        step.comm > window ? step.comm - window : sim::SimTime::zero();
  } else {
    step.exposed_comm = step.comm;
  }
  step.total = step.compute + step.exposed_comm;

  // The checks above keep total positive, but guard the divisions anyway so
  // a zero step can never turn into inf/nan rates downstream.
  if (step.total <= sim::SimTime::zero()) return step;
  const double tokens = static_cast<double>(tokens_per_chip) * cfg.chips;
  step.tokens_per_second = tokens / step.total.seconds();
  const double single_rate =
      static_cast<double>(tokens_per_chip) / single_chip_step.seconds();
  step.scaling_efficiency =
      step.tokens_per_second / (single_rate * static_cast<double>(cfg.chips));
  return step;
}

}  // namespace gaudi::scaleout

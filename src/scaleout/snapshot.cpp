#include "scaleout/snapshot.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "memory/checksum.hpp"
#include "sim/error.hpp"

namespace gaudi::scaleout {

namespace fs = std::filesystem;

namespace {

constexpr const char* kManifestMagic = "gsnap-manifest";
constexpr const char* kDataSuffix = ".gsnap";
constexpr const char* kManifestSuffix = ".manifest";
constexpr const char* kTmpSuffix = ".tmp";

std::uint64_t checksum_of(const std::string& bytes) {
  return memory::fnv1a64(reinterpret_cast<const std::byte*>(bytes.data()),
                         bytes.size());
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

bool plain_token(const std::string& s) {
  return !s.empty() &&
         s.find_first_of(" \t\r\n") == std::string::npos;
}

tensor::DType parse_dtype(const std::string& s) {
  for (const tensor::DType d :
       {tensor::DType::F32, tensor::DType::BF16, tensor::DType::I32,
        tensor::DType::I16, tensor::DType::I8}) {
    if (s == tensor::dtype_name(d)) return d;
  }
  throw sim::CheckpointError("snapshot manifest names unknown dtype '" + s + "'");
}

/// Writes `bytes` to `path` via a temp-file-then-rename so a crash never
/// leaves a half-written file under the final name.
void write_file_atomic(const fs::path& path, const std::string& bytes) {
  const fs::path tmp = path.string() + kTmpSuffix;
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw sim::Error("snapshot: cannot open '" + tmp.string() +
                       "' for writing");
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out.good()) {
      throw sim::Error("snapshot: short write to '" + tmp.string() + "'");
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    throw sim::Error("snapshot: cannot commit '" + path.string() +
                     "': " + ec.message());
  }
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw sim::CheckpointError("snapshot: cannot open '" + path.string() + "'");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

/// The manifest body (everything the trailing checksum line covers).
std::string manifest_body(const Snapshot& snap, std::uint32_t version,
                          const std::vector<std::uint64_t>& offsets,
                          const std::vector<std::uint64_t>& sums) {
  std::ostringstream os;
  os << kManifestMagic << " " << version << "\n";
  os << "step " << snap.step << "\n";
  os << "meta " << snap.meta.size() << "\n";
  for (const auto& [key, value] : snap.meta) {
    os << "m " << key << " " << value << "\n";
  }
  os << "sections " << snap.sections.size() << "\n";
  for (std::size_t i = 0; i < snap.sections.size(); ++i) {
    const SnapshotSection& s = snap.sections[i];
    os << "s " << s.name << " " << tensor::dtype_name(s.data.dtype()) << " "
       << s.data.shape().rank();
    for (const std::int64_t d : s.data.shape().dims()) os << " " << d;
    os << " " << offsets[i] << " " << s.data.nbytes() << " " << hex16(sums[i])
       << "\n";
  }
  return std::move(os).str();
}

SnapshotReject reject_reason(const sim::CheckpointError& e) {
  if (dynamic_cast<const sim::CheckpointVersionSkew*>(&e)) {
    return SnapshotReject::kVersionSkew;
  }
  if (dynamic_cast<const sim::CheckpointTruncated*>(&e)) {
    return SnapshotReject::kTruncated;
  }
  if (dynamic_cast<const sim::CheckpointChecksumMismatch*>(&e)) {
    return SnapshotReject::kChecksumMismatch;
  }
  return SnapshotReject::kBadManifest;
}

}  // namespace

void Snapshot::add_meta(const std::string& key, std::uint64_t value) {
  GAUDI_CHECK(plain_token(key), "snapshot meta key must be non-empty and "
                                "whitespace-free: '" + key + "'");
  GAUDI_CHECK(!meta_value(key).has_value(),
              "duplicate snapshot meta key: '" + key + "'");
  meta.emplace_back(key, value);
}

std::optional<std::uint64_t> Snapshot::meta_value(const std::string& key) const {
  for (const auto& [k, v] : meta) {
    if (k == key) return v;
  }
  return std::nullopt;
}

std::uint64_t Snapshot::require_meta(const std::string& key) const {
  const std::optional<std::uint64_t> v = meta_value(key);
  if (!v) {
    throw sim::CheckpointShapeMismatch("snapshot has no meta key '" + key +
                                       "'");
  }
  return *v;
}

void Snapshot::add(std::string name, tensor::Tensor data) {
  GAUDI_CHECK(plain_token(name), "snapshot section name must be non-empty and "
                                 "whitespace-free: '" + name + "'");
  GAUDI_CHECK(data.defined(), "snapshot section '" + name +
                              "' has no storage (phantom tensor)");
  GAUDI_CHECK(find(name) == nullptr,
              "duplicate snapshot section: '" + name + "'");
  sections.push_back(SnapshotSection{std::move(name), std::move(data)});
}

const tensor::Tensor* Snapshot::find(const std::string& name) const {
  for (const SnapshotSection& s : sections) {
    if (s.name == name) return &s.data;
  }
  return nullptr;
}

const tensor::Tensor& Snapshot::require(const std::string& name) const {
  const tensor::Tensor* t = find(name);
  if (t == nullptr) {
    throw sim::CheckpointShapeMismatch("snapshot has no section '" + name +
                                       "'");
  }
  return *t;
}

std::size_t Snapshot::payload_bytes() const {
  std::size_t total = 0;
  for (const SnapshotSection& s : sections) total += s.data.nbytes();
  return total;
}

std::string snapshot_basename(std::uint64_t step) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "step-%09llu",
                static_cast<unsigned long long>(step));
  return buf;
}

std::string save_snapshot(const std::string& dir, const Snapshot& snap,
                          const SaveOptions& opts) {
  GAUDI_CHECK(!dir.empty(), "snapshot directory must not be empty");
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    throw sim::Error("snapshot: cannot create directory '" + dir +
                     "': " + ec.message());
  }

  // Serialize the payload and the manifest that describes it.
  std::string payload;
  payload.reserve(snap.payload_bytes());
  std::vector<std::uint64_t> offsets, sums;
  offsets.reserve(snap.sections.size());
  sums.reserve(snap.sections.size());
  for (const SnapshotSection& s : snap.sections) {
    offsets.push_back(payload.size());
    sums.push_back(memory::fnv1a64(s.data.raw(), s.data.nbytes()));
    payload.append(reinterpret_cast<const char*>(s.data.raw()),
                   s.data.nbytes());
  }
  std::string manifest = manifest_body(snap, opts.version, offsets, sums);
  manifest += "checksum " + hex16(checksum_of(manifest)) + "\n";

  const fs::path base = fs::path(dir) / snapshot_basename(snap.step);
  const fs::path data_path = base.string() + kDataSuffix;
  const fs::path manifest_path = base.string() + kManifestSuffix;

  // Simulated torn-write window: a fired kCheckpointCorruption damages the
  // write in one of three shapes.  The writer does not observe any of them
  // (the bytes "landed" as far as it knows); the next resume must.
  enum { kLostCommit, kTornData, kBitFlip };
  int mode = -1;
  if (opts.faults != nullptr &&
      opts.faults->fires(sim::FaultKind::kCheckpointCorruption, opts.site)) {
    mode = payload.empty()
               ? kLostCommit
               : static_cast<int>(opts.faults->checkpoint_mode(opts.site, 3));
    if (mode == kTornData) {
      payload.resize(static_cast<std::size_t>(
          opts.faults->checkpoint_offset(opts.site, payload.size())));
    } else if (mode == kBitFlip) {
      const std::uint64_t bit =
          opts.faults->checkpoint_offset(opts.site, payload.size() * 8);
      payload[static_cast<std::size_t>(bit / 8)] =
          static_cast<char>(payload[static_cast<std::size_t>(bit / 8)] ^
                            (1u << (bit % 8)));
    }
  }

  write_file_atomic(data_path, payload);
  if (mode != kLostCommit) {
    write_file_atomic(manifest_path, manifest);
  }
  return manifest_path.string();
}

Snapshot load_snapshot(const std::string& manifest_path) {
  const std::string text = read_file(manifest_path);

  // Version first: a future format may not even keep the checksum trailer,
  // so skew must be reported as skew, not as structural damage.
  {
    std::istringstream head(text);
    std::string magic;
    std::uint32_t version = 0;
    if (!(head >> magic) || magic != kManifestMagic) {
      throw sim::CheckpointError("snapshot manifest '" + manifest_path +
                                 "' does not start with '" +
                                 std::string(kManifestMagic) + "'");
    }
    if (!(head >> version)) {
      throw sim::CheckpointError("snapshot manifest '" + manifest_path +
                                 "' has no format version");
    }
    if (version != kSnapshotFormatVersion) {
      throw sim::CheckpointVersionSkew(
          "snapshot manifest '" + manifest_path + "' is format version " +
          std::to_string(version) + ", this build reads version " +
          std::to_string(kSnapshotFormatVersion));
    }
  }

  // Manifest self-integrity: the trailing line checksums the body above it.
  const std::size_t trailer = text.rfind("\nchecksum ");
  if (trailer == std::string::npos) {
    throw sim::CheckpointTruncated("snapshot manifest '" + manifest_path +
                                   "' ends before its checksum trailer");
  }
  const std::string body = text.substr(0, trailer + 1);
  {
    std::istringstream tail(text.substr(trailer + 1));
    std::string word, hex;
    if (!(tail >> word >> hex) || word != "checksum" ||
        hex != hex16(checksum_of(body))) {
      throw sim::CheckpointChecksumMismatch(
          "snapshot manifest '" + manifest_path +
          "' fails its own body checksum");
    }
  }

  const auto parse_error = [&manifest_path](const std::string& what) {
    return sim::CheckpointError("snapshot manifest '" + manifest_path +
                                "' parse error: " + what);
  };

  Snapshot snap;
  std::vector<std::uint64_t> offsets, nbytes, sums;
  std::istringstream in(body);
  {
    std::string magic;
    std::uint32_t version = 0;
    std::string word;
    std::size_t count = 0;
    if (!(in >> magic >> version)) throw parse_error("header");
    if (!(in >> word >> snap.step) || word != "step") {
      throw parse_error("step line");
    }
    if (!(in >> word >> count) || word != "meta") {
      throw parse_error("meta count");
    }
    for (std::size_t i = 0; i < count; ++i) {
      std::string key;
      std::uint64_t value = 0;
      if (!(in >> word >> key >> value) || word != "m") {
        throw parse_error("meta entry " + std::to_string(i));
      }
      snap.meta.emplace_back(key, value);
    }
    if (!(in >> word >> count) || word != "sections") {
      throw parse_error("section count");
    }
    for (std::size_t i = 0; i < count; ++i) {
      std::string name, dtype_text, hex;
      std::size_t rank = 0;
      std::uint64_t offset = 0, size = 0;
      if (!(in >> word >> name >> dtype_text >> rank) || word != "s") {
        throw parse_error("section entry " + std::to_string(i));
      }
      if (rank < 1 || rank > tensor::kMaxRank) {
        throw parse_error("section '" + name + "' rank " +
                          std::to_string(rank));
      }
      std::vector<std::int64_t> dims(rank);
      for (std::int64_t& d : dims) {
        if (!(in >> d) || d <= 0) {
          throw parse_error("section '" + name + "' dims");
        }
      }
      if (!(in >> offset >> size >> hex)) {
        throw parse_error("section '" + name + "' extent");
      }
      const tensor::DType dtype = parse_dtype(dtype_text);
      const tensor::Shape shape{std::span<const std::int64_t>(dims)};
      if (static_cast<std::uint64_t>(shape.numel()) *
              tensor::dtype_size(dtype) != size) {
        throw parse_error("section '" + name +
                          "' nbytes disagrees with its shape");
      }
      if (hex.size() != 16 ||
          hex.find_first_not_of("0123456789abcdef") != std::string::npos) {
        throw parse_error("section '" + name + "' checksum");
      }
      const std::uint64_t sum = std::strtoull(hex.c_str(), nullptr, 16);
      snap.sections.push_back(
          SnapshotSection{name, tensor::Tensor::zeros(shape, dtype)});
      offsets.push_back(offset);
      nbytes.push_back(size);
      sums.push_back(sum);
    }
  }

  // The payload: existence, extent, and per-section checksums.
  const std::string data_path =
      manifest_path.substr(0, manifest_path.size() -
                                  std::strlen(kManifestSuffix)) +
      kDataSuffix;
  if (!fs::exists(data_path)) {
    throw sim::CheckpointTruncated("snapshot data file '" + data_path +
                                   "' is missing (uncommitted or deleted)");
  }
  const std::string payload = read_file(data_path);
  for (std::size_t i = 0; i < snap.sections.size(); ++i) {
    SnapshotSection& s = snap.sections[i];
    if (offsets[i] + nbytes[i] > payload.size()) {
      throw sim::CheckpointTruncated(
          "snapshot data file '" + data_path + "' holds " +
          std::to_string(payload.size()) + " bytes but section '" + s.name +
          "' needs [" + std::to_string(offsets[i]) + ", " +
          std::to_string(offsets[i] + nbytes[i]) + ") — torn write");
    }
    const auto* bytes =
        reinterpret_cast<const std::byte*>(payload.data()) + offsets[i];
    if (memory::fnv1a64(bytes, nbytes[i]) != sums[i]) {
      throw sim::CheckpointChecksumMismatch(
          "snapshot section '" + s.name + "' in '" + data_path +
          "' fails its checksum — corrupted bytes");
    }
    std::memcpy(s.data.raw(), bytes, nbytes[i]);
  }
  return snap;
}

const char* snapshot_reject_name(SnapshotReject r) {
  switch (r) {
    case SnapshotReject::kUncommitted: return "uncommitted";
    case SnapshotReject::kMissingData: return "missing-data";
    case SnapshotReject::kBadManifest: return "bad-manifest";
    case SnapshotReject::kVersionSkew: return "version-skew";
    case SnapshotReject::kTruncated: return "truncated";
    case SnapshotReject::kChecksumMismatch: return "checksum-mismatch";
  }
  return "?";
}

SnapshotScan scan_snapshots(const std::string& dir) {
  SnapshotScan scan;
  std::error_code ec;
  if (dir.empty() || !fs::is_directory(dir, ec)) return scan;

  // Collect candidate steps and which half of the file pair each has.
  struct Candidate {
    bool has_data = false;
    bool has_manifest = false;
  };
  std::vector<std::pair<std::uint64_t, Candidate>> candidates;
  const auto candidate_for = [&candidates](std::uint64_t step) -> Candidate& {
    for (auto& [s, c] : candidates) {
      if (s == step) return c;
    }
    candidates.emplace_back(step, Candidate{});
    return candidates.back().second;
  };
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    for (const char* suffix : {kDataSuffix, kManifestSuffix}) {
      const std::size_t n = std::strlen(suffix);
      if (name.size() <= 5 + n || name.rfind("step-", 0) != 0 ||
          name.compare(name.size() - n, n, suffix) != 0) {
        continue;
      }
      const std::string digits = name.substr(5, name.size() - 5 - n);
      if (digits.empty() ||
          digits.find_first_not_of("0123456789") != std::string::npos) {
        continue;
      }
      Candidate& c = candidate_for(std::stoull(digits));
      (suffix == kDataSuffix ? c.has_data : c.has_manifest) = true;
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  // Newest first: the first candidate that verifies end-to-end wins; every
  // newer one is rejected with its cause.
  for (const auto& [step, c] : candidates) {
    const std::string base =
        (fs::path(dir) / snapshot_basename(step)).string();
    if (!c.has_manifest) {
      scan.rejected.push_back(
          {step, base + kDataSuffix, SnapshotReject::kUncommitted,
           "data file present but the manifest was never committed "
           "(crash before the rename)"});
      continue;
    }
    if (!c.has_data) {
      scan.rejected.push_back({step, base + kManifestSuffix,
                               SnapshotReject::kMissingData,
                               "manifest present but the data file is gone"});
      continue;
    }
    try {
      scan.snapshot = load_snapshot(base + kManifestSuffix);
      scan.step = step;
      scan.path = base + kManifestSuffix;
      break;
    } catch (const sim::CheckpointError& e) {
      scan.rejected.push_back(
          {step, base + kManifestSuffix, reject_reason(e), e.what()});
    } catch (const sim::Error& e) {
      scan.rejected.push_back({step, base + kManifestSuffix,
                               SnapshotReject::kBadManifest, e.what()});
    }
  }
  return scan;
}

std::string to_string(const SnapshotScan& scan) {
  std::ostringstream os;
  if (scan.found()) {
    os << "snapshot scan: restored step " << scan.step << " from " << scan.path
       << "\n";
  } else {
    os << "snapshot scan: no valid snapshot found\n";
  }
  for (const RejectedSnapshot& r : scan.rejected) {
    os << "  rejected step " << r.step << " ["
       << snapshot_reject_name(r.reason) << "]: " << r.detail << "\n";
  }
  return std::move(os).str();
}

CheckpointConfig backed_checkpoint_config(const Snapshot& snap,
                                          CheckpointConfig base) {
  base.state_bytes = snap.payload_bytes();
  return base;
}

}  // namespace gaudi::scaleout

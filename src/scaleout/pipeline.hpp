// Pipeline-parallel step model (GPipe-style schedule).
//
// The model's layers split into stages across chips; a step runs M
// microbatches through the pipeline, so (M + P - 1) stage slots elapse and
// the bubble fraction (P-1)/(M+P-1) is pure idle time — the other axis of
// the HLS-1's "expanding and multiplying setups" (paper §2.1) besides data
// parallelism.  Activations cross stage boundaries over the RoCE links.
#pragma once

#include <cstdint>

#include "scaleout/roce.hpp"

namespace gaudi::scaleout {

struct PipelineConfig {
  RoceConfig roce{};
  std::uint32_t stages = 8;        ///< chips, one stage each
  std::uint32_t microbatches = 8;  ///< M per step
};

struct PipelineStep {
  sim::SimTime stage_time{};     ///< compute per stage per microbatch
  sim::SimTime boundary_comm{};  ///< activation transfer per boundary
  sim::SimTime slot_time{};      ///< stage + exposed comm
  sim::SimTime total{};          ///< (M + P - 1) slots
  double bubble_fraction = 0.0;  ///< (P-1)/(M+P-1)
  double utilization = 0.0;      ///< 1 - bubble
  double tokens_per_second = 0.0;
  /// Throughput relative to one chip running the whole model (which takes
  /// P * stage_time per microbatch).
  double speedup_vs_single_chip = 0.0;
};

/// Models one pipeline step.
/// `full_model_step`: single-chip time for one *microbatch* through the
/// whole model (split evenly into `stages`);
/// `activation_bytes`: per-microbatch activation volume at each boundary;
/// `tokens_per_microbatch`: tokens consumed by one microbatch.
[[nodiscard]] PipelineStep pipeline_step(const PipelineConfig& cfg,
                                         sim::SimTime full_model_step,
                                         std::size_t activation_bytes,
                                         std::int64_t tokens_per_microbatch);

}  // namespace gaudi::scaleout

// Tensor-parallel (Megatron-style) step model.
//
// Attention heads and FFN columns shard across chips; each transformer
// layer then needs two all-reduces per forward pass (after the attention
// output projection and after the FFN) and two more in backward.  Compute
// divides by the shard count; the all-reduces are the price — the third
// parallelism axis available to the HLS-1 box next to data and pipeline
// parallelism.
#pragma once

#include <cstdint>

#include "scaleout/allreduce.hpp"

namespace gaudi::scaleout {

struct TensorParallelConfig {
  RoceConfig roce{};
  std::uint32_t shards = 8;
  /// All-reduces per layer per step (2 forward + 2 backward for training).
  std::uint32_t allreduces_per_layer = 4;
};

struct TensorParallelStep {
  sim::SimTime compute{};   ///< sharded compute (single-chip / shards)
  sim::SimTime comm{};      ///< activation all-reduces
  sim::SimTime total{};
  double tokens_per_second = 0.0;
  double speedup_vs_single_chip = 0.0;
  double comm_fraction = 0.0;
};

/// Models one tensor-parallel training step.
/// `single_chip_step`: unsharded step time; `layers`: transformer layers;
/// `activation_bytes`: per-all-reduce activation volume ([tokens, d_model]);
/// `tokens_per_step`: tokens in the (unchanged) global batch.
[[nodiscard]] TensorParallelStep tensor_parallel_step(
    const TensorParallelConfig& cfg, sim::SimTime single_chip_step,
    std::int64_t layers, std::size_t activation_bytes,
    std::int64_t tokens_per_step);

}  // namespace gaudi::scaleout

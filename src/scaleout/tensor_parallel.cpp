#include "scaleout/tensor_parallel.hpp"

#include "sim/error.hpp"

namespace gaudi::scaleout {

TensorParallelStep tensor_parallel_step(const TensorParallelConfig& cfg,
                                        sim::SimTime single_chip_step,
                                        std::int64_t layers,
                                        std::size_t activation_bytes,
                                        std::int64_t tokens_per_step) {
  GAUDI_CHECK(cfg.shards >= 1, "need at least one shard");
  GAUDI_CHECK(layers >= 1, "need at least one layer");
  GAUDI_CHECK(single_chip_step > sim::SimTime::zero(),
              "step time must be positive");

  TensorParallelStep step;
  step.compute = sim::SimTime::from_seconds(single_chip_step.seconds() /
                                            static_cast<double>(cfg.shards));
  if (cfg.shards > 1) {
    const AllReduceResult one =
        ring_all_reduce_time(cfg.roce, activation_bytes, cfg.shards);
    step.comm = one.duration *
                static_cast<std::int64_t>(layers * cfg.allreduces_per_layer);
  }
  step.total = step.compute + step.comm;
  step.tokens_per_second =
      static_cast<double>(tokens_per_step) / step.total.seconds();
  step.speedup_vs_single_chip = single_chip_step.seconds() / step.total.seconds();
  step.comm_fraction = step.comm.seconds() / step.total.seconds();
  return step;
}

}  // namespace gaudi::scaleout

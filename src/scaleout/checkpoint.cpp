#include "scaleout/checkpoint.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "sim/error.hpp"

namespace gaudi::scaleout {

sim::SimTime checkpoint_save_time(const CheckpointConfig& cfg) {
  GAUDI_CHECK(cfg.storage_bandwidth_bytes_per_s > 0.0,
              "checkpoint storage bandwidth must be positive");
  return cfg.fixed_overhead +
         sim::SimTime::from_seconds(static_cast<double>(cfg.state_bytes) /
                                    cfg.storage_bandwidth_bytes_per_s);
}

sim::SimTime checkpoint_restore_time(const CheckpointConfig& cfg) {
  // Reads run at the same sustained bandwidth as writes in this model.
  return checkpoint_save_time(cfg);
}

const char* recovery_policy_name(RecoveryPolicy p) {
  switch (p) {
    case RecoveryPolicy::kNone: return "none";
    case RecoveryPolicy::kFixedInterval: return "fixed-interval";
    case RecoveryPolicy::kYoungDaly: return "young-daly";
  }
  return "?";
}

std::uint64_t young_daly_interval_steps(sim::SimTime step_time,
                                        sim::SimTime save_time,
                                        double mtbf_steps) {
  GAUDI_CHECK(step_time > sim::SimTime::zero(), "step time must be positive");
  GAUDI_CHECK(mtbf_steps > 0.0, "MTBF must be positive");
  const double mtbf_s = mtbf_steps * step_time.seconds();
  const double w_opt = std::sqrt(2.0 * save_time.seconds() * mtbf_s);
  const auto steps =
      static_cast<std::uint64_t>(std::llround(w_opt / step_time.seconds()));
  return std::max<std::uint64_t>(1, steps);
}

std::string to_string(const TrainingRunReport& r) {
  std::ostringstream os;
  os << "finished=" << (r.finished ? 1 : 0) << " steps=" << r.useful_steps
     << " recomputed=" << r.recomputed_steps
     << " failures=" << r.failures << " checkpoints=" << r.checkpoints
     << " restores=" << r.restores << " interval=" << r.interval
     << " total_ps=" << r.total_time.ps() << " goodput_pct="
     << static_cast<std::int64_t>(r.goodput * 10000.0 + 0.5);
  return os.str();
}

TrainingRunReport resilient_training_run(const TrainingRunConfig& cfg,
                                         const sim::FaultInjector& faults) {
  GAUDI_CHECK(cfg.steps >= 1, "run needs at least one step");
  GAUDI_CHECK(cfg.step_time > sim::SimTime::zero(),
              "step time must be positive");
  GAUDI_CHECK(cfg.chips >= 1, "run needs at least one chip");

  const sim::SimTime save = checkpoint_save_time(cfg.checkpoint);
  const sim::SimTime restore = checkpoint_restore_time(cfg.checkpoint);

  TrainingRunReport rep;
  switch (cfg.policy) {
    case RecoveryPolicy::kNone:
      rep.interval = 0;
      break;
    case RecoveryPolicy::kFixedInterval:
      GAUDI_CHECK(cfg.checkpoint_interval >= 1,
                  "fixed-interval policy needs interval >= 1");
      rep.interval = cfg.checkpoint_interval;
      break;
    case RecoveryPolicy::kYoungDaly:
      rep.interval =
          young_daly_interval_steps(cfg.step_time, save, cfg.mtbf_steps);
      break;
  }

  // `attempt` counts wall-clock step executions (useful or recomputed), so
  // fault draws advance monotonically: a step that failed once is not
  // identically doomed when it re-runs after the rollback.
  std::uint64_t completed = 0;
  std::uint64_t last_checkpoint = 0;
  std::uint64_t attempt = 0;
  const std::uint64_t attempt_budget = cfg.steps * 100 + 10000;

  while (completed < cfg.steps) {
    if (attempt >= attempt_budget) {
      // Restart-from-zero under a short MTBF never converges; report the
      // truncated attempt instead of spinning forever.
      rep.finished = false;
      break;
    }
    const std::uint64_t site_step = attempt++;

    // Failure check: any chip dying kills the synchronous step.
    bool failed = false;
    for (std::uint32_t c = 0; c < cfg.chips && !failed; ++c) {
      failed = faults.fires(sim::FaultKind::kChipFailure,
                            sim::FaultInjector::site(site_step, c));
    }
    if (failed) {
      ++rep.failures;
      ++rep.restores;
      // The failing step's partial work is lost, detected at step granularity.
      rep.total_time += cfg.step_time;
      rep.recompute_time += cfg.step_time;
      rep.recomputed_steps += completed - last_checkpoint;
      completed = last_checkpoint;
      const sim::SimTime recovery =
          cfg.restart_overhead +
          (rep.interval > 0 && rep.checkpoints > 0 ? restore
                                                   : sim::SimTime::zero());
      rep.total_time += recovery;
      rep.restore_time += recovery;
      continue;
    }

    // Step executes; stragglers and HBM pressure stretch it.
    sim::SimTime dur = cfg.step_time;
    double slow = 1.0;
    for (std::uint32_t c = 0; c < cfg.chips; ++c) {
      if (faults.fires(sim::FaultKind::kTpcStraggler,
                       sim::FaultInjector::site(site_step, c))) {
        slow = std::max(slow, faults.profile().straggler_slowdown);
      }
    }
    if (slow > 1.0) {
      const sim::SimTime stretched = sim::SimTime::from_ps(
          static_cast<std::int64_t>(static_cast<double>(dur.ps()) * slow + 0.5));
      rep.stall_time += stretched - dur;
      dur = stretched;
    }
    if (faults.fires(sim::FaultKind::kHbmPressure,
                     sim::FaultInjector::site(site_step, 0))) {
      rep.stall_time += faults.profile().hbm_pressure_stall;
      dur += faults.profile().hbm_pressure_stall;
    }
    rep.total_time += dur;
    ++completed;

    // Checkpoint per policy (skipping a useless snapshot at the finish line).
    if (rep.interval > 0 && completed % rep.interval == 0 &&
        completed < cfg.steps) {
      ++rep.checkpoints;
      rep.checkpoint_time += save;
      rep.total_time += save;
      last_checkpoint = completed;
    }
  }

  rep.useful_steps = rep.finished ? cfg.steps : completed;
  // Everything executed = useful + recomputed; compute_time is the useful
  // share at nominal step cost (stall stretch is accounted separately).
  rep.compute_time = cfg.step_time * static_cast<std::int64_t>(rep.useful_steps);
  rep.recompute_time +=
      cfg.step_time * static_cast<std::int64_t>(rep.recomputed_steps);
  if (rep.total_time > sim::SimTime::zero()) {
    rep.goodput = rep.compute_time.seconds() / rep.total_time.seconds();
  }
  return rep;
}

}  // namespace gaudi::scaleout

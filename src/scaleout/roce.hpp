// Inter-processor communication model.
//
// Each Gaudi integrates ten 100 GbE ports with RoCE v2 engines ("for
// communications between different processors, GAUDI includes on-chip RoCE
// v2 engines", paper §2.1); inside an HLS-1, seven ports connect each
// processor to the other seven (all-to-all), the rest leave the box.  The
// link model costs point-to-point transfers; collectives build on it.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/time.hpp"

namespace gaudi::scaleout {

struct RoceConfig {
  /// Usable payload bandwidth of one 100 GbE port after protocol overhead.
  double link_bandwidth_bytes_per_s = 11.0e9;
  /// One-way message latency (NIC + switchless in-box hop).
  sim::SimTime link_latency = sim::SimTime::from_us(2.0);
  /// Ports available toward in-box peers (HLS-1: all-to-all over 7).
  std::uint32_t intra_box_ports = 7;
  /// Processors in the box.
  std::uint32_t num_chips = 8;
};

/// Time to move `bytes` point-to-point over one link.
[[nodiscard]] sim::SimTime p2p_time(const RoceConfig& cfg, std::size_t bytes);

/// Effective bandwidth of a point-to-point transfer including latency.
[[nodiscard]] double p2p_effective_bandwidth(const RoceConfig& cfg,
                                             std::size_t bytes);

}  // namespace gaudi::scaleout

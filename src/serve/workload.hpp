// Request-stream generation: the "heavy traffic" side of the serving study.
//
// Two sources produce the same `Request` records: a seeded Poisson process
// (exponential inter-arrivals, per-request length draws through the
// counter-based RNG, so a (seed, index) pair fully determines every field)
// and a trace file for replaying captured workloads.  Both are pure
// functions of their inputs — two runs over the same config are
// byte-identical, which is what makes serving metrics diffable.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "serve/request.hpp"

namespace gaudi::serve {

/// Closed integer range a per-request length is drawn from (uniform).
/// lo == hi pins the value.
struct LengthRange {
  std::int64_t lo = 1;
  std::int64_t hi = 1;
};

struct StreamConfig {
  /// Mean arrival rate of the Poisson process, requests per second.
  double arrival_rate_rps = 8.0;
  std::int64_t num_requests = 32;
  LengthRange prompt{64, 192};
  LengthRange output{16, 64};
  /// Priorities are drawn uniformly from [0, priority_levels).
  std::int32_t priority_levels = 1;
  /// Per-request completion budget from arrival; zero disables deadlines.
  sim::SimTime deadline{};
  std::uint64_t seed = 0x5E21E;
};

/// Generates `cfg.num_requests` Poisson arrivals, sorted by arrival time
/// (ids follow arrival order).  Throws sim::InvalidArgument on a
/// non-positive rate/count or an empty/inverted length range.
[[nodiscard]] std::vector<Request> poisson_stream(const StreamConfig& cfg);

/// Parses a trace: one request per line,
///   arrival_ms,prompt_len,output_len[,priority[,deadline_ms]]
/// Blank lines and lines starting with '#' are skipped.  Throws
/// sim::InvalidArgument naming the offending line on malformed input.
[[nodiscard]] std::vector<Request> parse_trace(std::istream& in);

/// `parse_trace` over a file path; throws sim::InvalidArgument when the
/// file cannot be opened.
[[nodiscard]] std::vector<Request> load_trace(const std::string& path);

}  // namespace gaudi::serve

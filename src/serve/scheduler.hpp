// Continuous-batching scheduler: iteration-level serving on the simulated
// chip.
//
// Following Orca's iteration-level scheduling with Sarathi-style chunked
// prefill, the scheduler admits requests into a bounded set of batch slots
// and, each iteration, runs (a) one prefill chunk for the oldest request
// still materializing its KV cache and (b) one fused decode step for every
// request already generating — new requests join and finished requests
// leave between iterations, never waiting for a batch to drain.
//
// Costs come from the compile/execute split: decode-step graphs are
// compiled once per bucketed context length through `nn::DecodeStepCache`
// (batch shape fixed at `max_batch` — partially filled iterations ride the
// compiled shape with idle slots, exactly as static-shape serving does on
// real accelerators) and prefill chunks once per bucketed chunk length;
// both are replayed from a memoized timing table afterwards.  An iteration
// is billed as prefill-chunk time plus decode-step time: the two phases
// share the engines serially, which is the pessimistic (barrier) reading
// of the paper's scheduler study.
//
// KV capacity is enforced by the paged allocator: admission reserves the
// prompt up front, decode grows one token at a time, and when the pool is
// exhausted the lowest-priority (then youngest) running request is
// preempted — its blocks freed, its prompt+generated tokens requeued for
// recomputation.  A request that cannot fit even an empty pool is rejected
// at admission with the same typed validation the graph builders apply.
//
// Fault tolerance (see DESIGN.md §11): an optional seeded FaultInjector is
// consulted once per iteration.  kTpcStraggler and kHbmPressure stretch the
// iteration's cost; kChipFailure aborts the batch mid-iteration — every
// running request's paged KV blocks are invalidated and the requests
// re-queue with exponential backoff under a bounded retry budget (exhausted
// budget → kFailed).  A per-request watchdog aborts requests whose next
// token has been pending too long (kTimedOut), and admission-time overload
// control sheds the lowest-priority waiting arrivals when the backlog or KV
// headroom crosses a threshold (kShed).  Every fault decision is a pure
// function of (seed, iteration), so the same (stream, config, fault seed)
// reproduces a byte-identical report; a disabled injector leaves the
// schedule byte-identical to a fault-free configuration.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "graph/runtime.hpp"
#include "nn/decode.hpp"
#include "serve/kv_cache.hpp"
#include "serve/metrics.hpp"
#include "serve/request.hpp"
#include "sim/fault.hpp"

namespace gaudi::serve {

/// HBM bytes one token's K+V rows occupy across all layers of `cfg` for a
/// single sequence (f32 rows, K and V, every layer).
[[nodiscard]] std::size_t kv_bytes_per_token(const nn::DecodeConfig& cfg);

struct ServeConfig {
  nn::DecodeConfig model = nn::DecodeConfig::gpt2_paper();
  /// Concurrent batch slots (also the compiled decode batch shape).
  std::int64_t max_batch = 8;
  /// Prompt tokens prefilled per iteration for the request in prefill.
  std::int64_t prefill_chunk = 128;
  /// Context lengths are rounded up to this bucket before compiling a
  /// decode step, bounding the number of distinct compiled graphs.
  std::int64_t ctx_bucket = 64;
  /// KV pool geometry; `num_blocks` is derived from `kv_budget_bytes`.
  std::int64_t block_tokens = 64;
  std::size_t kv_budget_bytes = 64ull * 1024 * 1024;
  /// LRU cap on resident compiled decode steps (0 = unlimited).
  std::size_t step_cache_entries = 0;
  graph::CompileOptions compile{};
  std::uint64_t param_seed = 0xDEC0DE;
  /// Cost iterations through the timing-only fast path: decode-step and
  /// prefill-chunk makespans answer from the process-wide graph::TimingMemo,
  /// so repeated shapes — across iterations and across scheduler instances
  /// of the same model — skip graph construction, compilation, and
  /// scheduling entirely.  Reports are byte-identical either way.  Unset
  /// defers to the GAUDI_TIMING_ONLY environment variable.
  std::optional<bool> timing_only{};

  // -- Fault tolerance (DESIGN.md §11) --------------------------------------
  /// Deterministic fault oracle, queried once per iteration for
  /// kChipFailure / kHbmPressure / kTpcStraggler.  The default-constructed
  /// injector is disabled and leaves the schedule byte-identical to a
  /// fault-free run.  Serving uses chips=1 in FaultProfile::from_mtbf_steps:
  /// the batch runs on one simulated chip, so MTBF is per-iteration.
  sim::FaultInjector faults{};
  /// Chip-failure re-queues a request survives before kFailed (0 = the
  /// first failure is terminal).  In cluster mode the same budget bounds
  /// failovers to surviving replicas (serve/cluster.*).
  std::int32_t retry_max = 3;
  /// Re-admission delay after the first chip failure; doubles per retry up
  /// to `retry_backoff_max`.
  sim::SimTime retry_backoff = sim::SimTime::from_ms(5.0);
  /// Ceiling on the doubled retry/hedge backoff: without it a generous
  /// retry budget grows the delay unboundedly (2^retry_max), which turns a
  /// flapping chip into a de-facto hang.  Must be positive.
  sim::SimTime retry_backoff_max = sim::SimTime::from_ms(5000.0);
  /// Dead time after a chip failure before the replacement chip serves
  /// (restart + HBM re-init in the simulated fleet).
  sim::SimTime chip_restart = sim::SimTime::from_ms(50.0);
  /// Per-request watchdog: abort a request whose next token (first or
  /// subsequent) has been pending longer than this.  Zero disables.
  sim::SimTime watchdog{};
  /// Overload control: after admission, shed the lowest-priority waiting
  /// arrivals while the backlog (waiting + requeued) exceeds this depth.
  /// Zero disables.  Retried/preempted requests are never shed.
  std::int64_t shed_queue_depth = 0;
  /// Overload control: shed every waiting arrival while fewer than this
  /// many KV blocks are free.  Zero disables.
  std::int64_t shed_min_free_blocks = 0;
};

/// Everything a serving run reports.
struct ServeReport {
  ServeSummary summary;
  std::vector<RequestMetrics> requests;
  std::int64_t iterations = 0;
  std::int64_t decode_steps = 0;
  std::int64_t prefill_chunks = 0;
  /// Requests abandoned because their deadline had already expired when a
  /// slot opened — at first admission or at re-admission after preemption
  /// or a fault retry (RequestOutcome::kDropped).
  std::int64_t deadline_drops = 0;
  /// Injected-fault counters; the "faults:" report line renders only when
  /// the injector is enabled, keeping disabled runs byte-identical to a
  /// fault-free configuration.
  bool faults_enabled = false;
  std::int64_t chip_failures = 0;
  std::int64_t hbm_stalls = 0;
  std::int64_t tpc_stragglers = 0;
  std::size_t compiled_decode_steps = 0;  ///< resident in the step cache
  std::size_t step_cache_evictions = 0;
  std::int64_t kv_total_blocks = 0;
  std::int64_t kv_peak_blocks = 0;
  std::int64_t kv_peak_fragmented_tokens = 0;

  /// Deterministic multi-line rendering: summary plus scheduler counters.
  [[nodiscard]] std::string to_report() const;
};

/// Exponential backoff with a cap: `base * 2^(attempt-1)` clamped to `cap`.
/// `attempt` counts from 1 (the first retry); the shift saturates before it
/// can overflow.  Shared by the single-replica retry path and the cluster
/// router's failover/hedge backoff.
[[nodiscard]] sim::SimTime retry_backoff_delay(sim::SimTime base,
                                               sim::SimTime cap,
                                               std::int32_t attempt);

/// One observable scheduler event.  In cluster mode (serve/cluster.*) the
/// scheduler surfaces these to the router instead of driving its private
/// MetricsSink: the router owns request identity (hedged copies map back to
/// their original id) and fleet-level accounting.
enum class ReplicaEventKind : std::uint8_t {
  kFirstToken,
  kToken,     ///< aux = inter-token gap in ps (the ITL sample)
  kComplete,
  kReject,
  kDrop,
  kShed,
  kTimeout,
  kPreempt,   ///< aux = prompt/output rows to recompute
};

struct ReplicaEvent {
  ReplicaEventKind kind = ReplicaEventKind::kToken;
  std::int64_t id = 0;
  sim::SimTime at{};
  std::int64_t aux = 0;
};

class ContinuousBatchScheduler {
 public:
  ContinuousBatchScheduler(const graph::Runtime& rt, ServeConfig cfg);

  /// Simulates serving `stream` to completion and returns the metrics.
  /// Deterministic: same stream + config => byte-identical report.
  [[nodiscard]] ServeReport run(const std::vector<Request>& stream);

  // --- Cluster-replica interface (serve/cluster.*) -------------------------
  // A cluster-bound scheduler is driven one iteration at a time by the
  // router: requests arrive via enqueue()/enqueue_resume(), each step()
  // returns the observable events instead of feeding the private sink, and
  // a chip failure is surfaced (chip_failed) rather than handled locally —
  // the router drains the dead replica and fails the work over.

  /// What one driven iteration produced.  `worked == false` means nothing
  /// was admissible at `now` (ask next_wake() for the earliest retry
  /// window); events still carry any admission-time drops/sheds/rejects.
  struct StepResult {
    bool worked = false;
    bool chip_failed = false;  ///< cluster mode only: this replica just died
    /// Fault-stretched iteration signals (kTpcStraggler / kHbmPressure) —
    /// the router's heartbeat-latency proxy for per-replica health scoring
    /// (serve/migration.*).  Both false on a clean iteration.
    bool straggled = false;
    bool hbm_stalled = false;
    sim::SimTime end{};        ///< simulated instant the results landed
    std::vector<ReplicaEvent> events;
  };

  /// A request stripped from a failed replica, with enough progress state
  /// to resume (re-prefill prompt + generated prefix) on a survivor.
  struct DrainedRequest {
    Request req;
    std::int64_t generated = 0;
    sim::SimTime last_token{};
    std::int64_t lost_rows = 0;  ///< computed KV rows the failure threw away
  };

  /// Switches this scheduler into cluster mode (before any work arrives).
  void bind_cluster();
  /// Hands a fresh request to this replica; it joins the waiting queue and
  /// is admitted by the next step().
  void enqueue(const Request& r);
  /// Re-admits a failed-over request: its full context (prompt + generated
  /// prefix) re-prefills from scratch on this replica's cold KV pool.
  void enqueue_resume(const Request& r, std::int64_t generated,
                      sim::SimTime last_token, sim::SimTime now);
  /// Admits a live-migrated request whose first `rows_ready` KV rows arrive
  /// with it over the fabric (serve/migration.*): admission reserves the
  /// full context as usual but skips re-prefilling the migrated rows — a
  /// fully synced decode-phase request resumes decoding with zero prefill
  /// chunks.  Unlike enqueue_resume, `generated == 0` (a request migrated
  /// mid-prefill) is legal.
  void enqueue_migrated(const Request& r, std::int64_t generated,
                        sim::SimTime last_token, std::int64_t rows_ready,
                        sim::SimTime now);
  /// Migration progress snapshot of one *running* request.
  struct Progress {
    std::int64_t generated = 0;
    sim::SimTime last_token{};
    std::int64_t rows = 0;  ///< KV rows computed so far (the migratable state)
  };
  /// Snapshot of a running request's progress (nullopt when `id` is not
  /// running here — waiting/requeued requests hold no KV worth streaming).
  [[nodiscard]] std::optional<Progress> running_progress(std::int64_t id) const;
  /// Removes one request wherever it sits (running, requeued, or waiting)
  /// and returns its progress state, releasing any KV *without* billing the
  /// rows as wasted.  Running extraction is the migration cutover (the
  /// caller moved the rows over the fabric); queued extraction carries zero
  /// rows (no KV held) and backs queue evacuation off a draining replica.
  /// Returns nullopt when `id` is not here (died / completed since).
  [[nodiscard]] std::optional<DrainedRequest> extract(std::int64_t id);
  /// Runs one iteration at `now` (admission, overload control, prefill +
  /// decode, fault oracle, token emission, watchdog).
  [[nodiscard]] StepResult step(sim::SimTime now);
  /// Any request anywhere in the machine (running, requeued, or waiting)?
  [[nodiscard]] bool has_work() const;
  /// Earliest backoff window opening among requeued requests — the instant
  /// an idle (`worked == false`) replica becomes schedulable again.
  [[nodiscard]] std::optional<sim::SimTime> next_wake() const;
  /// Strips every request (running first, then requeued, then waiting) and
  /// releases their KV; the replica is left empty for its warm restart.
  [[nodiscard]] std::vector<DrainedRequest> drain_all();
  /// Removes one request wherever it sits (hedge loser), releasing its KV.
  /// Returns the computed rows thrown away, or -1 if the id is not here.
  std::int64_t cancel(std::int64_t id);
  /// Queue pressure (running + requeued + waiting) for join-shortest-queue.
  [[nodiscard]] std::int64_t load() const;
  [[nodiscard]] std::int64_t free_kv_blocks() const;
  [[nodiscard]] std::int64_t iterations() const { return iterations_; }
  /// Allocator ownership-invariant check (router-side GAUDI_VALIDATE after a
  /// migration cutover: no KV block owned by two replicas).
  void audit_kv() const { kv_.audit(); }
  [[nodiscard]] bool holds_kv(std::int64_t id) const { return kv_.holds(id); }

 private:
  struct Active {
    Request req;
    std::int64_t prefill_needed = 0;  ///< prompt (+ regenerated KV on resume)
    std::int64_t prefilled = 0;
    std::int64_t generated = 0;
    sim::SimTime last_token{};
    std::int32_t fault_retries = 0;  ///< chip-failure re-queues so far
    sim::SimTime eligible_at{};      ///< earliest re-admission (retry backoff)
    /// KV rows that arrived via live migration and skip re-prefill at the
    /// next admission (serve/migration.*); zero on every other path.
    std::int64_t migrated_rows = 0;

    /// KV rows the request occupies right now.  The first output token
    /// falls out of prefill's last logits without a cache append, so `g`
    /// generated tokens pin prompt + max(g - 1, 0) rows; the peak (one row
    /// before the final token) is prompt + output - 1, which is exactly
    /// what admission validates against the pool.
    [[nodiscard]] std::int64_t kv_tokens() const {
      return req.prompt_len + std::max<std::int64_t>(generated - 1, 0);
    }
    [[nodiscard]] bool in_prefill() const { return prefilled < prefill_needed; }
    [[nodiscard]] bool done() const { return generated >= req.output_len; }
  };

  [[nodiscard]] std::int64_t ctx_to_bucket(std::int64_t ctx) const;
  [[nodiscard]] sim::SimTime decode_step_cost(std::int64_t ctx_bucket);
  [[nodiscard]] sim::SimTime prefill_chunk_cost(std::int64_t chunk);
  /// TimingMemo key for a prefill chunk of `bucket` tokens.
  [[nodiscard]] std::string prefill_time_key(std::int64_t bucket) const;
  /// Frees KV until `tokens` fit, preempting victims other than `self`.
  /// Returns false when no victim remains and the pool still cannot fit.
  bool make_room(std::int64_t tokens, std::int64_t self_id);
  void preempt(std::size_t victim_index);
  /// Admits eligible requeued requests, then waiting arrivals, into free
  /// batch slots (rejecting/dropping as it goes).
  void admit(sim::SimTime now);
  /// Overload control: sheds lowest-priority waiting arrivals while the
  /// post-admission backlog or KV headroom crosses the configured
  /// thresholds.
  void shed_overload(sim::SimTime now);
  /// Chip failure: abort the batch's in-flight work — invalidate every
  /// running request's KV blocks and re-queue (or fail) each one.
  void on_chip_failure(sim::SimTime now);
  /// Aborts running/requeued requests whose next token has been pending
  /// longer than the watchdog timeout.
  void run_watchdog(sim::SimTime now);
  /// KV rows `a` has computed so far — the work a chip failure throws away.
  [[nodiscard]] static std::int64_t computed_rows(const Active& a) {
    return a.in_prefill() ? a.prefilled : a.kv_tokens();
  }
  /// Routes an observable event to the cluster's event buffer (cluster
  /// mode) or the private MetricsSink (standalone run()).
  void emit(ReplicaEventKind kind, std::int64_t id, sim::SimTime at,
            std::int64_t aux = 0);

  graph::Runtime rt_;
  ServeConfig cfg_;
  bool timing_only_ = false;  ///< resolved from cfg_.timing_only / env
  bool validate_ = false;     ///< resolved from GAUDI_VALIDATE at construction
  bool cluster_ = false;      ///< bound to a ClusterRouter (see bind_cluster)
  std::vector<ReplicaEvent>* events_ = nullptr;  ///< step() event buffer
  nn::DecodeStepCache steps_;
  memory::DeviceAllocator hbm_;
  PagedKvAllocator kv_;
  MetricsSink sink_;
  std::map<std::int64_t, sim::SimTime> decode_cost_;   ///< by ctx bucket
  std::map<std::int64_t, sim::SimTime> prefill_cost_;  ///< by chunk bucket
  std::vector<Active> running_;
  std::deque<Active> requeued_;  ///< preempted/retrying, awaiting re-admission
  std::deque<Request> waiting_;  ///< arrived, not yet admitted or shed
  std::int64_t iterations_ = 0;
  std::int64_t decode_steps_ = 0;
  std::int64_t prefill_chunks_ = 0;
  std::int64_t deadline_drops_ = 0;
  std::int64_t kv_peak_frag_ = 0;
  std::int64_t chip_failures_ = 0;
  std::int64_t hbm_stalls_ = 0;
  std::int64_t tpc_stragglers_ = 0;
};

}  // namespace gaudi::serve

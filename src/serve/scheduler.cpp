#include "serve/scheduler.hpp"

#include <algorithm>
#include <sstream>

#include "graph/fingerprint.hpp"
#include "graph/timing_memo.hpp"
#include "sim/env.hpp"
#include "sim/error.hpp"

namespace gaudi::serve {

std::size_t kv_bytes_per_token(const nn::DecodeConfig& cfg) {
  // K and V rows of [heads, head_dim] f32 per layer, one sequence.
  return static_cast<std::size_t>(cfg.n_layers) * 2u *
         static_cast<std::size_t>(cfg.heads) *
         static_cast<std::size_t>(cfg.head_dim) * sizeof(float);
}

namespace {

nn::DecodeConfig decode_model(const ServeConfig& cfg) {
  nn::DecodeConfig m = cfg.model;
  m.batch = cfg.max_batch;
  return m;
}

/// Explicitly disabled injector handed to cost-probe runs: the per-bucket
/// cost tables are clean baselines, so a process-wide GAUDI_FAULTS opt-in
/// must not perturb them — serve-level faults apply at iteration
/// granularity, on top of the clean costs.  (The runtime treats a pointer
/// to a disabled injector as "faults off", overriding the env fallback.)
const sim::FaultInjector kNoFaults{};

PagedKvConfig kv_config(const ServeConfig& cfg) {
  PagedKvConfig kv;
  kv.block_tokens = cfg.block_tokens;
  kv.bytes_per_token = kv_bytes_per_token(cfg.model);
  const std::size_t block_bytes =
      static_cast<std::size_t>(cfg.block_tokens) * kv.bytes_per_token;
  GAUDI_CHECK(block_bytes > 0, "KV block size must be positive");
  kv.num_blocks = static_cast<std::int64_t>(cfg.kv_budget_bytes / block_bytes);
  GAUDI_CHECK(kv.num_blocks >= 1,
              "KV budget of " + std::to_string(cfg.kv_budget_bytes) +
                  " bytes holds no " + std::to_string(block_bytes) +
                  "-byte block");
  return kv;
}

}  // namespace

sim::SimTime retry_backoff_delay(sim::SimTime base, sim::SimTime cap,
                                 std::int32_t attempt) {
  GAUDI_ASSERT(attempt >= 1, "backoff attempts count from 1");
  const std::int64_t factor =
      std::int64_t{1} << std::min<std::int32_t>(attempt - 1, 20);
  return std::min(base * factor, cap);
}

ContinuousBatchScheduler::ContinuousBatchScheduler(const graph::Runtime& rt,
                                                   ServeConfig cfg)
    : rt_(rt),
      cfg_(std::move(cfg)),
      timing_only_(cfg_.timing_only.has_value()
                       ? *cfg_.timing_only
                       : graph::timing_only_from_env()),
      validate_(sim::env_flag("GAUDI_VALIDATE", false)),
      steps_(rt_, decode_model(cfg_), cfg_.compile, cfg_.param_seed,
             cfg_.step_cache_entries),
      hbm_(rt_.config().memory),
      kv_(kv_config(cfg_), &hbm_) {
  GAUDI_CHECK(cfg_.max_batch >= 1, "max_batch must be >= 1");
  GAUDI_CHECK(cfg_.prefill_chunk >= 1, "prefill_chunk must be >= 1");
  GAUDI_CHECK(cfg_.ctx_bucket >= 1, "ctx_bucket must be >= 1");
  GAUDI_CHECK(cfg_.retry_max >= 0, "retry_max must be >= 0");
  GAUDI_CHECK(cfg_.retry_backoff >= sim::SimTime::zero() &&
                  cfg_.chip_restart >= sim::SimTime::zero() &&
                  cfg_.watchdog >= sim::SimTime::zero(),
              "fault-tolerance timings must be >= 0");
  GAUDI_CHECK(cfg_.retry_backoff_max > sim::SimTime::zero(),
              "retry_backoff_max must be positive");
  GAUDI_CHECK(cfg_.shed_queue_depth >= 0 && cfg_.shed_min_free_blocks >= 0,
              "overload-shedding thresholds must be >= 0");
}

void ContinuousBatchScheduler::emit(ReplicaEventKind kind, std::int64_t id,
                                    sim::SimTime at, std::int64_t aux) {
  if (cluster_) {
    GAUDI_ASSERT(events_ != nullptr,
                 "cluster-mode event outside a driven step");
    events_->push_back({kind, id, at, aux});
    return;
  }
  switch (kind) {
    case ReplicaEventKind::kFirstToken: sink_.on_first_token(id, at); break;
    case ReplicaEventKind::kToken:
      sink_.on_token(id, sim::SimTime::from_ps(aux));
      break;
    case ReplicaEventKind::kComplete: sink_.on_complete(id, at); break;
    case ReplicaEventKind::kReject: sink_.on_reject(id, at); break;
    case ReplicaEventKind::kDrop: sink_.on_drop(id, at); break;
    case ReplicaEventKind::kShed: sink_.on_shed(id, at); break;
    case ReplicaEventKind::kTimeout: sink_.on_timeout(id, at); break;
    case ReplicaEventKind::kPreempt: sink_.on_preempt(id, aux); break;
  }
}

std::int64_t ContinuousBatchScheduler::ctx_to_bucket(std::int64_t ctx) const {
  const std::int64_t b = cfg_.ctx_bucket;
  const std::int64_t rounded = (ctx + b - 1) / b * b;
  return std::clamp<std::int64_t>(rounded, 1, cfg_.model.max_seq - 1);
}

sim::SimTime ContinuousBatchScheduler::decode_step_cost(
    std::int64_t ctx_bucket) {
  const auto it = decode_cost_.find(ctx_bucket);
  if (it != decode_cost_.end()) return it->second;
  graph::RunOptions opts;
  opts.mode = tpc::ExecMode::kTiming;
  opts.timing_only = timing_only_;
  // Cost tables are pure timing: guard sweeps (e.g. a process-wide
  // GAUDI_GUARD) must not inflate serving costs in one mode and not the
  // other, and env-level fault injection must not perturb them either.
  opts.guard = sim::NumericsPolicy::kOff;
  opts.faults = &kNoFaults;
  sim::SimTime cost{};
  if (timing_only_) {
    cost = steps_.step_time(ctx_bucket, opts);
  } else {
    const nn::DecodeStepCache::Entry& entry = steps_.step(ctx_bucket);
    cost = rt_.run(entry.compiled, {}, opts).makespan;
  }
  decode_cost_.emplace(ctx_bucket, cost);
  return cost;
}

std::string ContinuousBatchScheduler::prefill_time_key(
    std::int64_t bucket) const {
  graph::Fingerprint fp;
  fp.u64(graph::chip_fingerprint(rt_.config()));
  fp.i64(cfg_.model.vocab);
  fp.i64(cfg_.model.heads);
  fp.i64(cfg_.model.head_dim);
  fp.i64(cfg_.model.n_layers);
  fp.i64(cfg_.model.ffn_dim);
  fp.i64(cfg_.model.max_seq);
  fp.boolean(cfg_.compile.fuse_elementwise);
  fp.boolean(cfg_.compile.enforce_capacity);
  fp.u64(cfg_.param_seed);
  fp.i64(bucket);
  std::ostringstream os;
  os << "prefill-chunk:" << std::hex << fp.digest();
  return os.str();
}

sim::SimTime ContinuousBatchScheduler::prefill_chunk_cost(std::int64_t chunk) {
  const std::int64_t bucket =
      std::min(ctx_to_bucket(chunk), cfg_.model.max_seq);
  const auto it = prefill_cost_.find(bucket);
  if (it != prefill_cost_.end()) return it->second;
  graph::TimingMemo& memo = graph::TimingMemo::global();
  const std::string key = timing_only_ ? prefill_time_key(bucket) : "";
  if (timing_only_) {
    sim::SimTime cached{};
    if (memo.find_time(key, &cached)) {
      prefill_cost_.emplace(bucket, cached);
      return cached;
    }
  }
  graph::Graph g;
  nn::DecodeConfig m = cfg_.model;
  m.batch = 1;  // prefill chunks run one request at a time
  const nn::PrefillGraph pre =
      nn::build_gpt_prefill(g, m, bucket, cfg_.param_seed);
  (void)pre;
  const graph::CompiledGraph compiled = rt_.compile(g, cfg_.compile);
  graph::RunOptions opts;
  opts.mode = tpc::ExecMode::kTiming;
  opts.timing_only = timing_only_;
  opts.guard = sim::NumericsPolicy::kOff;  // see decode_step_cost
  opts.faults = &kNoFaults;                // see decode_step_cost
  const sim::SimTime cost = rt_.run(compiled, {}, opts).makespan;
  if (timing_only_) memo.insert_time(key, cost);
  prefill_cost_.emplace(bucket, cost);
  return cost;
}

void ContinuousBatchScheduler::preempt(std::size_t victim_index) {
  Active a = running_[victim_index];
  kv_.release(a.req.id);
  emit(ReplicaEventKind::kPreempt, a.req.id, sim::SimTime::zero(),
       a.prefilled);
  a.prefilled = 0;
  a.prefill_needed = 0;  // recomputed at re-admission
  requeued_.push_back(a);
  running_.erase(running_.begin() +
                 static_cast<std::ptrdiff_t>(victim_index));
}

bool ContinuousBatchScheduler::make_room(std::int64_t tokens,
                                         std::int64_t self_id) {
  while (!kv_.can_reserve(tokens)) {
    // Victim: lowest priority, then youngest arrival, then highest id —
    // never the request asking for room.
    std::size_t victim = running_.size();
    for (std::size_t i = 0; i < running_.size(); ++i) {
      const Active& c = running_[i];
      if (c.req.id == self_id) continue;
      if (victim == running_.size()) {
        victim = i;
        continue;
      }
      const Active& v = running_[victim];
      const bool worse =
          c.req.priority != v.req.priority
              ? c.req.priority < v.req.priority
              : (c.req.arrival != v.req.arrival ? c.req.arrival > v.req.arrival
                                                : c.req.id > v.req.id);
      if (worse) victim = i;
    }
    if (victim == running_.size()) return false;
    preempt(victim);
  }
  return true;
}

void ContinuousBatchScheduler::admit(sim::SimTime now) {
  // A deadline that expired while the request sat preempted or in retry
  // backoff can never contribute goodput: drop it instead of re-reserving
  // KV and recomputing work the front-end already abandoned.
  for (auto it = requeued_.begin(); it != requeued_.end();) {
    if (it->req.deadline > sim::SimTime::zero() &&
        now > it->req.arrival + it->req.deadline) {
      emit(ReplicaEventKind::kDrop, it->req.id, now);
      ++deadline_drops_;
      it = requeued_.erase(it);
    } else {
      ++it;
    }
  }

  while (static_cast<std::int64_t>(running_.size()) < cfg_.max_batch) {
    // Requeued (preempted or retrying) requests re-admit first, in queue
    // order, once their backoff window has passed.
    const auto rq =
        std::find_if(requeued_.begin(), requeued_.end(),
                     [&](const Active& a) { return a.eligible_at <= now; });
    if (rq != requeued_.end()) {
      Active a = *rq;
      const std::int64_t rows = a.kv_tokens();
      if (!kv_.can_reserve(rows)) break;  // head-of-line blocking
      const bool reserved = kv_.reserve(a.req.id, rows);
      GAUDI_ASSERT(reserved, "reserve after can_reserve");
      a.prefill_needed = rows;
      a.prefilled = 0;
      if (a.migrated_rows > 0) {
        // Live-migrated rows arrived over the fabric and skip re-prefill.
        // A request that has not yet emitted its first token keeps one row
        // to prefill so the first-token path still fires here; a fully
        // synced decode-phase request resumes with zero prefill chunks.
        const std::int64_t cap = a.generated >= 1 ? rows : rows - 1;
        a.prefilled = std::clamp<std::int64_t>(a.migrated_rows, 0, cap);
        a.migrated_rows = 0;
      }
      requeued_.erase(rq);
      running_.push_back(a);
      continue;
    }
    if (waiting_.empty()) break;
    const Request r = waiting_.front();
    const std::int64_t max_rows = r.prompt_len + r.output_len - 1;
    const bool valid =
        r.prompt_len >= 1 && r.output_len >= 1 &&
        max_rows <= cfg_.model.max_seq &&
        (max_rows + cfg_.block_tokens - 1) / cfg_.block_tokens <=
            kv_.total_blocks();
    if (!valid) {
      emit(ReplicaEventKind::kReject, r.id, now);
      waiting_.pop_front();
      continue;
    }
    // A deadline that expired while the request queued can never
    // contribute goodput: drop it at admission instead of spending KV
    // blocks and iterations on work the front-end already abandoned.
    if (r.deadline > sim::SimTime::zero() && now > r.arrival + r.deadline) {
      emit(ReplicaEventKind::kDrop, r.id, now);
      ++deadline_drops_;
      waiting_.pop_front();
      continue;
    }
    if (!kv_.can_reserve(r.prompt_len)) break;  // head-of-line blocking
    const bool reserved = kv_.reserve(r.id, r.prompt_len);
    GAUDI_ASSERT(reserved, "reserve after can_reserve");
    Active a;
    a.req = r;
    a.prefill_needed = r.prompt_len;
    running_.push_back(a);
    waiting_.pop_front();
  }
}

void ContinuousBatchScheduler::shed_overload(sim::SimTime now) {
  if (cfg_.shed_queue_depth <= 0 && cfg_.shed_min_free_blocks <= 0) return;
  // Victim choice mirrors preemption: lowest priority, then latest arrival,
  // then highest id.  Only never-admitted arrivals shed — preempted or
  // retrying requests already have compute invested in them.
  const auto shed_one = [&] {
    std::size_t victim = 0;
    for (std::size_t i = 1; i < waiting_.size(); ++i) {
      const Request& c = waiting_[i];
      const Request& v = waiting_[victim];
      const bool worse =
          c.priority != v.priority
              ? c.priority < v.priority
              : (c.arrival != v.arrival ? c.arrival > v.arrival
                                        : c.id > v.id);
      if (worse) victim = i;
    }
    emit(ReplicaEventKind::kShed, waiting_[victim].id, now);
    waiting_.erase(waiting_.begin() + static_cast<std::ptrdiff_t>(victim));
  };
  if (cfg_.shed_queue_depth > 0) {
    while (!waiting_.empty() &&
           static_cast<std::int64_t>(waiting_.size() + requeued_.size()) >
               cfg_.shed_queue_depth) {
      shed_one();
    }
  }
  if (cfg_.shed_min_free_blocks > 0 &&
      kv_.free_blocks() < cfg_.shed_min_free_blocks) {
    while (!waiting_.empty()) shed_one();
  }
}

void ContinuousBatchScheduler::on_chip_failure(sim::SimTime now) {
  GAUDI_ASSERT(!cluster_,
               "cluster-mode chip failures are handled by the router");
  ++chip_failures_;
  // The batch's in-flight work aborts: every running request loses its
  // paged KV blocks (the replacement chip's HBM starts cold) and either
  // re-queues with capped exponential backoff or — with the retry budget
  // spent — ends in the typed kFailed outcome.  Nothing is lost silently.
  for (Active& a : running_) {
    kv_.release(a.req.id);
    const std::int64_t wasted = computed_rows(a);
    if (a.fault_retries >= cfg_.retry_max) {
      sink_.on_fail(a.req.id, now, wasted);
      continue;
    }
    a.fault_retries += 1;
    sink_.on_fault_retry(a.req.id, wasted);
    a.prefilled = 0;
    a.prefill_needed = 0;  // recomputed at re-admission
    a.eligible_at = now + retry_backoff_delay(cfg_.retry_backoff,
                                              cfg_.retry_backoff_max,
                                              a.fault_retries);
    requeued_.push_back(a);
  }
  running_.clear();
  GAUDI_ASSERT(kv_.free_blocks() == kv_.total_blocks(),
               "a chip failure must leave the KV pool empty");
}

void ContinuousBatchScheduler::run_watchdog(sim::SimTime now) {
  if (cfg_.watchdog <= sim::SimTime::zero()) return;
  // A request's next-token clock runs from arrival until the first token
  // (TTFT) and from the previous token afterwards (ITL); preemption and
  // retry backoff do not pause it — the client experiences the stall either
  // way.  Aborting frees the slot and the KV blocks immediately.
  for (std::size_t i = running_.size(); i-- > 0;) {
    const Active& a = running_[i];
    const sim::SimTime since = a.generated == 0 ? a.req.arrival : a.last_token;
    if (now - since <= cfg_.watchdog) continue;
    kv_.release(a.req.id);
    emit(ReplicaEventKind::kTimeout, a.req.id, now);
    running_.erase(running_.begin() + static_cast<std::ptrdiff_t>(i));
  }
  for (auto it = requeued_.begin(); it != requeued_.end();) {
    const sim::SimTime since =
        it->generated == 0 ? it->req.arrival : it->last_token;
    if (now - since > cfg_.watchdog) {
      emit(ReplicaEventKind::kTimeout, it->req.id, now);
      it = requeued_.erase(it);
    } else {
      ++it;
    }
  }
}

void ContinuousBatchScheduler::bind_cluster() {
  GAUDI_CHECK(iterations_ == 0 && running_.empty() && requeued_.empty() &&
                  waiting_.empty(),
              "bind_cluster must precede any scheduled work");
  cluster_ = true;
}

void ContinuousBatchScheduler::enqueue(const Request& r) {
  GAUDI_ASSERT(cluster_, "enqueue is cluster-mode only; use run()");
  waiting_.push_back(r);
}

void ContinuousBatchScheduler::enqueue_resume(const Request& r,
                                              std::int64_t generated,
                                              sim::SimTime last_token,
                                              sim::SimTime now) {
  GAUDI_ASSERT(cluster_, "enqueue_resume is cluster-mode only");
  GAUDI_ASSERT(generated >= 1, "resume carries at least the first token");
  Active a;
  a.req = r;
  a.generated = generated;
  a.last_token = last_token;
  a.prefilled = 0;
  a.prefill_needed = 0;  // recomputed (prompt + generated prefix) at admission
  a.eligible_at = now;
  requeued_.push_back(a);
}

void ContinuousBatchScheduler::enqueue_migrated(const Request& r,
                                                std::int64_t generated,
                                                sim::SimTime last_token,
                                                std::int64_t rows_ready,
                                                sim::SimTime now) {
  GAUDI_ASSERT(cluster_, "enqueue_migrated is cluster-mode only");
  GAUDI_ASSERT(generated >= 0 && rows_ready >= 0,
               "migrated progress cannot be negative");
  Active a;
  a.req = r;
  a.generated = generated;
  a.last_token = last_token;
  a.prefilled = 0;
  a.prefill_needed = 0;  // recomputed at admission; migrated rows skip it
  a.migrated_rows = rows_ready;
  a.eligible_at = now;
  requeued_.push_back(a);
}

std::optional<ContinuousBatchScheduler::Progress>
ContinuousBatchScheduler::running_progress(std::int64_t id) const {
  for (const Active& a : running_) {
    if (a.req.id != id) continue;
    return Progress{a.generated, a.last_token, computed_rows(a)};
  }
  return std::nullopt;
}

std::optional<ContinuousBatchScheduler::DrainedRequest>
ContinuousBatchScheduler::extract(std::int64_t id) {
  for (std::size_t i = 0; i < running_.size(); ++i) {
    Active& a = running_[i];
    if (a.req.id != id) continue;
    DrainedRequest out{a.req, a.generated, a.last_token, computed_rows(a)};
    kv_.release(id);
    running_.erase(running_.begin() + static_cast<std::ptrdiff_t>(i));
    return out;
  }
  // Queued entries hold no KV (preempted requests surrendered theirs at
  // preemption; waiting ones never reserved any), so they carry zero rows.
  for (auto it = requeued_.begin(); it != requeued_.end(); ++it) {
    if (it->req.id != id) continue;
    DrainedRequest out{it->req, it->generated, it->last_token, 0};
    requeued_.erase(it);
    return out;
  }
  for (auto it = waiting_.begin(); it != waiting_.end(); ++it) {
    if (it->id != id) continue;
    DrainedRequest out{*it, 0, sim::SimTime::zero(), 0};
    waiting_.erase(it);
    return out;
  }
  return std::nullopt;
}

bool ContinuousBatchScheduler::has_work() const {
  return !running_.empty() || !requeued_.empty() || !waiting_.empty();
}

std::optional<sim::SimTime> ContinuousBatchScheduler::next_wake() const {
  std::optional<sim::SimTime> wake;
  for (const Active& a : requeued_) {
    if (!wake || a.eligible_at < *wake) wake = a.eligible_at;
  }
  return wake;
}

std::vector<ContinuousBatchScheduler::DrainedRequest>
ContinuousBatchScheduler::drain_all() {
  std::vector<DrainedRequest> out;
  out.reserve(running_.size() + requeued_.size() + waiting_.size());
  for (const Active& a : running_) {
    kv_.release(a.req.id);
    out.push_back({a.req, a.generated, a.last_token, computed_rows(a)});
  }
  running_.clear();
  // Requeued/waiting requests hold no KV here: preempted entries already
  // surrendered theirs (and were billed), waiting ones never reserved any.
  for (const Active& a : requeued_) {
    out.push_back({a.req, a.generated, a.last_token, 0});
  }
  requeued_.clear();
  for (const Request& r : waiting_) {
    out.push_back({r, 0, sim::SimTime::zero(), 0});
  }
  waiting_.clear();
  GAUDI_ASSERT(kv_.free_blocks() == kv_.total_blocks(),
               "a drained replica must leave its KV pool empty");
  return out;
}

std::int64_t ContinuousBatchScheduler::cancel(std::int64_t id) {
  for (std::size_t i = 0; i < running_.size(); ++i) {
    if (running_[i].req.id != id) continue;
    const std::int64_t rows = computed_rows(running_[i]);
    kv_.release(id);
    running_.erase(running_.begin() + static_cast<std::ptrdiff_t>(i));
    return rows;
  }
  for (auto it = requeued_.begin(); it != requeued_.end(); ++it) {
    if (it->req.id != id) continue;
    requeued_.erase(it);
    return 0;
  }
  for (auto it = waiting_.begin(); it != waiting_.end(); ++it) {
    if (it->id != id) continue;
    waiting_.erase(it);
    return 0;
  }
  return -1;
}

std::int64_t ContinuousBatchScheduler::load() const {
  return static_cast<std::int64_t>(running_.size() + requeued_.size() +
                                   waiting_.size());
}

std::int64_t ContinuousBatchScheduler::free_kv_blocks() const {
  return kv_.free_blocks();
}

ContinuousBatchScheduler::StepResult ContinuousBatchScheduler::step(
    sim::SimTime now) {
  StepResult out;
  events_ = &out.events;
  const bool faults_on = cfg_.faults.enabled();

  // --- Admission, then overload control over the leftover backlog. ---
  admit(now);
  shed_overload(now);

  if (running_.empty()) {
    GAUDI_ASSERT(waiting_.empty(),
                 "waiting arrival failed to admit into an empty machine");
    out.end = now;
    events_ = nullptr;
    return out;
  }

  out.worked = true;
  ++iterations_;

    // --- KV growth for this iteration's decode appends (may preempt). ---
    // Snapshot decode-eligible ids; growth walks them in admission order so
    // victim choices (and therefore metrics) are deterministic.
    struct DecodeSlot {
      std::int64_t id = 0;
      std::int64_t ctx_in = 0;  ///< KV rows the step attends over
    };
    std::vector<DecodeSlot> decode_set;
    for (const Active& a : running_) {
      if (!a.in_prefill() && !a.done() && a.generated >= 1) {
        decode_set.push_back({a.req.id, a.kv_tokens()});
      }
    }
    std::vector<DecodeSlot> survivors;
    for (const DecodeSlot& slot : decode_set) {
      const auto it = std::find_if(
          running_.begin(), running_.end(),
          [&](const Active& a) { return a.req.id == slot.id; });
      if (it == running_.end()) continue;  // preempted by an earlier grower
      const std::int64_t rows_after = it->kv_tokens() + 1;
      if (!kv_.grow(slot.id, rows_after)) {
        const std::int64_t short_tokens =
            rows_after - kv_.reserved_tokens(slot.id);
        if (!make_room(short_tokens, slot.id)) {
          // Alone and still does not fit — admission validated against this,
          // so treat it as an internal inconsistency rather than losing the
          // request silently.
          throw sim::InternalError(
              "KV pool cannot hold a single admitted request");
        }
        const bool grown = kv_.grow(slot.id, rows_after);
        GAUDI_ASSERT(grown, "grow after make_room");
      }
      survivors.push_back(slot);
    }
    // A later grower may preempt an earlier survivor within the same
    // iteration; the victim's appended row went back with its blocks, so it
    // must not be billed or emit a token this round.
    survivors.erase(
        std::remove_if(survivors.begin(), survivors.end(),
                       [&](const DecodeSlot& slot) {
                         return std::none_of(running_.begin(), running_.end(),
                                             [&](const Active& a) {
                                               return a.req.id == slot.id;
                                             });
                       }),
        survivors.end());

    // --- Select the prefill chunk (after preemption settled the set). ---
    sim::SimTime iter_time = sim::SimTime::zero();
    std::int64_t prefill_id = -1;
    for (Active& a : running_) {
      if (!a.in_prefill()) continue;
      const std::int64_t chunk =
          std::min(cfg_.prefill_chunk, a.prefill_needed - a.prefilled);
      iter_time += prefill_chunk_cost(chunk);
      a.prefilled += chunk;
      prefill_id = a.req.id;
      ++prefill_chunks_;
      break;  // one prefill request per iteration
    }

    if (!survivors.empty()) {
      std::int64_t max_ctx = 1;
      for (const DecodeSlot& slot : survivors) {
        max_ctx = std::max(max_ctx, slot.ctx_in);
      }
      iter_time += decode_step_cost(ctx_to_bucket(max_ctx));
      ++decode_steps_;
    }

    GAUDI_ASSERT(iter_time > sim::SimTime::zero(),
                 "scheduler iteration performed no work");

    // --- Fault injection: one oracle query per kind per iteration. ---
    // The site is a pure function of the iteration index, so the same
    // (stream, config, fault seed) replays the same fault schedule even
    // across timing-only and functional builds of the run.
    bool chip_died = false;
    if (faults_on) {
      const std::uint64_t site = sim::FaultInjector::site(
          static_cast<std::uint64_t>(iterations_ - 1), 0);
      const sim::FaultProfile& prof = cfg_.faults.profile();
      if (cfg_.faults.fires(sim::FaultKind::kTpcStraggler, site)) {
        ++tpc_stragglers_;
        out.straggled = true;
        iter_time = sim::SimTime::from_ps(static_cast<std::int64_t>(
            static_cast<double>(iter_time.ps()) * prof.straggler_slowdown +
            0.5));
      }
      if (cfg_.faults.fires(sim::FaultKind::kHbmPressure, site)) {
        ++hbm_stalls_;
        out.hbm_stalled = true;
        iter_time += prof.hbm_pressure_stall;
      }
      chip_died = cfg_.faults.fires(sim::FaultKind::kChipFailure, site);
    }
    now += iter_time;

    if (chip_died && cluster_) {
      // Cluster mode surfaces the death instead of recovering locally: the
      // router bills the restart downtime, drains this replica's work
      // (drain_all releases the KV), and fails it over to survivors.  The
      // half-finished iteration's tokens never materialize.
      ++chip_failures_;
      out.chip_failed = true;
    } else if (chip_died) {
      // The chip died mid-iteration: the step's results never materialize,
      // so no tokens emit this round — the computed KV rows are invalidated
      // and every running request retries or fails (see on_chip_failure).
      now += cfg_.chip_restart;
      on_chip_failure(now);
    } else {
      // --- Token emission & completion. ---
      for (const DecodeSlot& slot : survivors) {
        const auto it = std::find_if(
            running_.begin(), running_.end(),
            [&](const Active& a) { return a.req.id == slot.id; });
        GAUDI_ASSERT(it != running_.end(), "surviving decode request vanished");
        it->generated += 1;
        emit(ReplicaEventKind::kToken, slot.id, now,
             (now - it->last_token).ps());
        it->last_token = now;
      }
      if (prefill_id >= 0) {
        const auto it = std::find_if(
            running_.begin(), running_.end(),
            [&](const Active& a) { return a.req.id == prefill_id; });
        if (it != running_.end() && !it->in_prefill() && it->generated == 0) {
          // Prefill just completed: the prompt's last logits yield the first
          // output token with no separate decode step.
          it->generated = 1;
          it->last_token = now;
          emit(ReplicaEventKind::kFirstToken, prefill_id, now);
        }
      }
      for (std::size_t i = running_.size(); i-- > 0;) {
        if (!running_[i].done()) continue;
        kv_.release(running_[i].req.id);
        emit(ReplicaEventKind::kComplete, running_[i].req.id, now);
        running_.erase(running_.begin() + static_cast<std::ptrdiff_t>(i));
      }
    }

    if (!out.chip_failed) run_watchdog(now);

    kv_peak_frag_ = std::max(kv_peak_frag_, kv_.stats().fragmented_tokens);
    if (validate_ && !out.chip_failed) kv_.audit();

  out.end = now;
  events_ = nullptr;
  return out;
}

ServeReport ContinuousBatchScheduler::run(const std::vector<Request>& stream) {
  GAUDI_CHECK(!cluster_,
              "a cluster-bound scheduler is driven by its router, not run()");
  GAUDI_CHECK(iterations_ == 0 && running_.empty() && requeued_.empty() &&
                  waiting_.empty(),
              "ContinuousBatchScheduler::run is one-shot; construct a fresh "
              "scheduler per stream");

  std::vector<Request> pending(stream);
  std::stable_sort(pending.begin(), pending.end(),
                   [](const Request& a, const Request& b) {
                     return a.arrival != b.arrival ? a.arrival < b.arrival
                                                   : a.id < b.id;
                   });
  for (const Request& r : pending) sink_.on_offered(r);

  std::size_t next = 0;
  sim::SimTime now = sim::SimTime::zero();

  while (true) {
    // --- Arrivals ripen into the waiting queue. ---
    while (next < pending.size() && pending[next].arrival <= now) {
      waiting_.push_back(pending[next]);
      ++next;
    }

    const StepResult sr = step(now);
    if (!sr.worked) {
      // Idle: jump to the next actionable instant — an arrival or a retry
      // backoff window opening.
      bool have = false;
      sim::SimTime next_event{};
      if (next < pending.size()) {
        next_event = pending[next].arrival;
        have = true;
      }
      if (const std::optional<sim::SimTime> wake = next_wake()) {
        if (!have || *wake < next_event) next_event = *wake;
        have = true;
      }
      if (!have) break;  // drained
      GAUDI_ASSERT(next_event > now, "idle scheduler failed to advance time");
      now = next_event;
      continue;
    }
    now = sr.end;
  }

  ServeReport report;
  report.summary = sink_.summary(now);
  report.requests = sink_.requests();
  report.iterations = iterations_;
  report.decode_steps = decode_steps_;
  report.prefill_chunks = prefill_chunks_;
  report.deadline_drops = deadline_drops_;
  report.faults_enabled = cfg_.faults.enabled();
  report.chip_failures = chip_failures_;
  report.hbm_stalls = hbm_stalls_;
  report.tpc_stragglers = tpc_stragglers_;
  report.compiled_decode_steps = steps_.compiled_steps();
  report.step_cache_evictions = steps_.evictions();
  report.kv_total_blocks = kv_.total_blocks();
  report.kv_peak_blocks = kv_.peak_used_blocks();
  report.kv_peak_fragmented_tokens = kv_peak_frag_;
  return report;
}

std::string ServeReport::to_report() const {
  std::ostringstream os;
  os << summary.to_report();
  os << "schedule: " << iterations << " iterations (" << decode_steps
     << " decode steps, " << prefill_chunks << " prefill chunks), "
     << compiled_decode_steps << " compiled step graphs resident, "
     << step_cache_evictions << " evicted\n";
  os << "kv pool:  " << kv_peak_blocks << " of " << kv_total_blocks
     << " blocks at peak, " << kv_peak_fragmented_tokens
     << " token slots fragmented at peak\n";
  if (faults_enabled) {
    // Rendered only when the injector is enabled so a disabled injector
    // stays byte-identical to a fault-free configuration.
    os << "faults:   " << chip_failures << " chip failures, " << hbm_stalls
       << " hbm stalls, " << tpc_stragglers << " tpc stragglers injected\n";
  }
  return os.str();
}

}  // namespace gaudi::serve

#include "serve/kv_cache.hpp"

#include <algorithm>
#include <numeric>
#include <string>

#include "sim/error.hpp"

namespace gaudi::serve {

PagedKvAllocator::PagedKvAllocator(PagedKvConfig cfg,
                                   memory::DeviceAllocator* hbm)
    : cfg_(cfg), hbm_(hbm) {
  GAUDI_CHECK(cfg_.block_tokens >= 1, "KV block size must be >= 1 token");
  GAUDI_CHECK(cfg_.num_blocks >= 1, "KV pool needs at least one block");
  if (hbm_ != nullptr) {
    const std::size_t bytes = static_cast<std::size_t>(cfg_.num_blocks) *
                              static_cast<std::size_t>(cfg_.block_tokens) *
                              cfg_.bytes_per_token;
    backing_ = hbm_->allocate(bytes, "kv-cache pool");
  }
  owner_.assign(static_cast<std::size_t>(cfg_.num_blocks), -1);
  // Free list is LIFO over descending ids so blocks hand out in 0,1,2,...
  // order — an arbitrary but fixed convention that keeps runs deterministic.
  free_.resize(static_cast<std::size_t>(cfg_.num_blocks));
  std::iota(free_.rbegin(), free_.rend(), std::int64_t{0});
}

PagedKvAllocator::~PagedKvAllocator() {
  if (hbm_ != nullptr && backing_.valid()) hbm_->release(backing_);
}

bool PagedKvAllocator::can_reserve(std::int64_t tokens) const {
  if (tokens <= 0) return true;
  return blocks_for(tokens, cfg_.block_tokens) <= free_blocks();
}

bool PagedKvAllocator::reserve(std::int64_t request_id, std::int64_t tokens) {
  GAUDI_CHECK(tokens >= 1, "KV reservation must cover at least one token");
  GAUDI_CHECK(requests_.count(request_id) == 0,
              "request " + std::to_string(request_id) +
                  " already holds a KV reservation");
  const std::int64_t need = blocks_for(tokens, cfg_.block_tokens);
  if (need > free_blocks()) return false;
  Reservation r;
  r.used_tokens = tokens;
  r.blocks.reserve(static_cast<std::size_t>(need));
  for (std::int64_t i = 0; i < need; ++i) {
    const std::int64_t b = free_.back();
    free_.pop_back();
    GAUDI_ASSERT(owner_[static_cast<std::size_t>(b)] == -1,
                 "block handed out twice");
    owner_[static_cast<std::size_t>(b)] = request_id;
    r.blocks.push_back(b);
  }
  requests_.emplace(request_id, std::move(r));
  peak_used_ = std::max(peak_used_, cfg_.num_blocks - free_blocks());
  return true;
}

bool PagedKvAllocator::grow(std::int64_t request_id, std::int64_t tokens) {
  const auto it = requests_.find(request_id);
  GAUDI_CHECK(it != requests_.end(),
              "grow on request " + std::to_string(request_id) +
                  " which holds no KV reservation");
  Reservation& r = it->second;
  GAUDI_CHECK(tokens >= r.used_tokens, "KV reservations never shrink");
  const std::int64_t have = static_cast<std::int64_t>(r.blocks.size());
  const std::int64_t need = blocks_for(tokens, cfg_.block_tokens) - have;
  if (need > free_blocks()) return false;
  for (std::int64_t i = 0; i < need; ++i) {
    const std::int64_t b = free_.back();
    free_.pop_back();
    GAUDI_ASSERT(owner_[static_cast<std::size_t>(b)] == -1,
                 "block handed out twice");
    owner_[static_cast<std::size_t>(b)] = request_id;
    r.blocks.push_back(b);
  }
  r.used_tokens = tokens;
  peak_used_ = std::max(peak_used_, cfg_.num_blocks - free_blocks());
  return true;
}

void PagedKvAllocator::release(std::int64_t request_id) {
  const auto it = requests_.find(request_id);
  GAUDI_CHECK(it != requests_.end(),
              "release of request " + std::to_string(request_id) +
                  " which holds no KV reservation");
  for (const std::int64_t b : it->second.blocks) {
    GAUDI_ASSERT(owner_[static_cast<std::size_t>(b)] == request_id,
                 "released block not owned by the releasing request");
    owner_[static_cast<std::size_t>(b)] = -1;
    free_.push_back(b);
  }
  requests_.erase(it);
}

std::int64_t PagedKvAllocator::reserved_tokens(std::int64_t request_id) const {
  const auto it = requests_.find(request_id);
  if (it == requests_.end()) return 0;
  return static_cast<std::int64_t>(it->second.blocks.size()) *
         cfg_.block_tokens;
}

KvStats PagedKvAllocator::stats() const {
  KvStats s;
  s.capacity_tokens = cfg_.num_blocks * cfg_.block_tokens;
  s.free_blocks = free_blocks();
  s.used_blocks = cfg_.num_blocks - s.free_blocks;
  s.free_tokens = s.free_blocks * cfg_.block_tokens;
  for (const auto& [id, r] : requests_) {
    (void)id;
    s.used_tokens += r.used_tokens;
    s.fragmented_tokens +=
        static_cast<std::int64_t>(r.blocks.size()) * cfg_.block_tokens -
        r.used_tokens;
  }
  return s;
}

void PagedKvAllocator::audit() const {
  std::vector<std::int64_t> seen(owner_.size(), -1);
  std::int64_t held = 0;
  for (const auto& [id, r] : requests_) {
    GAUDI_ASSERT(r.used_tokens <= static_cast<std::int64_t>(r.blocks.size()) *
                                      cfg_.block_tokens,
                 "reservation uses more tokens than its blocks hold");
    for (const std::int64_t b : r.blocks) {
      GAUDI_ASSERT(b >= 0 && b < cfg_.num_blocks, "block id out of range");
      GAUDI_ASSERT(seen[static_cast<std::size_t>(b)] == -1,
                   "block owned by two requests");
      GAUDI_ASSERT(owner_[static_cast<std::size_t>(b)] == id,
                   "ownership table disagrees with reservation");
      seen[static_cast<std::size_t>(b)] = id;
      ++held;
    }
  }
  for (const std::int64_t b : free_) {
    GAUDI_ASSERT(b >= 0 && b < cfg_.num_blocks, "free block id out of range");
    GAUDI_ASSERT(seen[static_cast<std::size_t>(b)] == -1,
                 "free block also owned by a request");
    GAUDI_ASSERT(owner_[static_cast<std::size_t>(b)] == -1,
                 "free block has a recorded owner");
    seen[static_cast<std::size_t>(b)] = -2;
  }
  GAUDI_ASSERT(held + free_blocks() == cfg_.num_blocks,
               "blocks leaked: held + free != total");
  const KvStats s = stats();
  GAUDI_ASSERT(
      s.used_tokens + s.fragmented_tokens + s.free_tokens == s.capacity_tokens,
      "token accounting does not sum to capacity");
}

}  // namespace gaudi::serve

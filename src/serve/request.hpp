// Serving requests: the unit of work a multi-tenant inference front-end
// schedules.
//
// A request arrives at a simulated instant carrying a prompt to prefill and
// a number of tokens to generate; priorities order preemption when the KV
// pool runs out, and an optional deadline feeds the goodput accounting
// ("useful tokens" = tokens of requests that finished inside their budget).
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace gaudi::serve {

struct Request {
  std::int64_t id = 0;
  sim::SimTime arrival{};
  std::int64_t prompt_len = 0;  ///< tokens prefilled before the first output
  std::int64_t output_len = 0;  ///< tokens to generate (>= 1)
  /// Higher values are preempted later; ties break toward earlier arrivals.
  std::int32_t priority = 0;
  /// Completion budget measured from arrival; zero means no deadline.
  sim::SimTime deadline{};

  /// KV rows the request occupies once fully generated.
  [[nodiscard]] std::int64_t total_tokens() const {
    return prompt_len + output_len;
  }
};

/// Terminal state of a request after the simulation.  Every offered request
/// ends in exactly one of these — the scheduler never loses one silently,
/// including across chip failures (see ContinuousBatchScheduler).
enum class RequestOutcome : std::uint8_t {
  kCompleted,  ///< generated all of output_len
  kRejected,   ///< refused at admission (can never fit the pool / max_seq)
  kDropped,    ///< abandoned because its deadline expired while queued
  kShed,       ///< refused by overload control (queue depth / KV headroom)
  kTimedOut,   ///< aborted by the per-request TTFT/ITL watchdog
  kFailed,     ///< chip failures exhausted the retry budget
};

[[nodiscard]] const char* outcome_name(RequestOutcome o);

}  // namespace gaudi::serve

#include "serve/migration.hpp"

#include <algorithm>

namespace gaudi::serve {

const char* replica_health_name(ReplicaHealth h) {
  switch (h) {
    case ReplicaHealth::kHealthy: return "healthy";
    case ReplicaHealth::kDegraded: return "degraded";
    case ReplicaHealth::kDraining: return "draining";
    case ReplicaHealth::kDead: return "dead";
  }
  return "unknown";
}

TransferPlan plan_kv_transfer(const MigrationConfig& cfg,
                              const sim::FaultInjector& faults,
                              std::uint64_t transfer_seq, std::int64_t rows,
                              std::int64_t block_tokens,
                              std::size_t bytes_per_token) {
  TransferPlan plan{};
  if (rows <= 0) return plan;
  const std::int64_t bt = std::max<std::int64_t>(block_tokens, 1);
  const std::int64_t per_chunk = std::max<std::int64_t>(cfg.chunk_blocks, 1);
  plan.blocks = (rows + bt - 1) / bt;
  plan.chunks = (plan.blocks + per_chunk - 1) / per_chunk;
  const std::uint32_t attempts = std::max<std::uint32_t>(cfg.retry.max_attempts, 1u);

  std::int64_t blocks_left = plan.blocks;
  for (std::int64_t c = 0; c < plan.chunks; ++c) {
    const std::int64_t blocks_here = std::min<std::int64_t>(per_chunk, blocks_left);
    blocks_left -= blocks_here;
    // A paged block streams whole: the wire carries block_tokens rows even
    // when the tail block is partially filled.
    const auto bytes = static_cast<std::size_t>(blocks_here * bt) * bytes_per_token;
    sim::SimTime wire = scaleout::p2p_time(cfg.roce, bytes);

    const auto chunk_u = static_cast<std::uint64_t>(c);
    if (faults.fires(sim::FaultKind::kLinkDegradation,
                     sim::FaultInjector::site(transfer_seq, chunk_u))) {
      const double factor =
          std::clamp(faults.profile().degraded_bandwidth_factor, 1e-6, 1.0);
      wire = sim::SimTime::from_ps(
          static_cast<std::int64_t>(static_cast<double>(wire.ps()) / factor + 0.5));
      plan.degraded_chunks += 1;
    }

    // Transient drops retry under the scaleout backoff discipline; the last
    // attempt is forced through (transient means transient — the stream
    // never fails terminally, the cost is the point).
    for (std::uint32_t a = 0; a < attempts; ++a) {
      const bool last = a + 1 == attempts;
      if (!last &&
          faults.fires(sim::FaultKind::kTransientLink,
                       sim::FaultInjector::site(
                           transfer_seq, chunk_u * attempts + a))) {
        plan.duration += cfg.retry.detection_timeout + backoff_delay(cfg.retry, a);
        plan.link_retries += 1;
        continue;
      }
      plan.duration += wire;
      break;
    }
  }
  return plan;
}

void HealthTracker::record(sim::SimTime now) {
  // Age out events that can no longer influence any verdict at t >= now.
  while (!events_.empty() && events_.front() + window_ <= now) events_.pop_front();
  events_.push_back(now);
}

std::int64_t HealthTracker::score(sim::SimTime now) const {
  std::int64_t n = 0;
  for (const auto t : events_) {
    if (t <= now && now < t + window_) n += 1;
  }
  return n;
}

bool HealthTracker::degraded(sim::SimTime now) const {
  return degraded_after_ > 0 && score(now) >= degraded_after_;
}

std::optional<sim::SimTime> HealthTracker::next_decay(sim::SimTime now) const {
  std::optional<sim::SimTime> best;
  for (const auto t : events_) {
    const sim::SimTime out = t + window_;
    if (out > now && (!best || out < *best)) best = out;
  }
  return best;
}

}  // namespace gaudi::serve

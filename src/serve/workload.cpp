#include "serve/workload.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "sim/error.hpp"
#include "sim/rng.hpp"

namespace gaudi::serve {

const char* outcome_name(RequestOutcome o) {
  switch (o) {
    case RequestOutcome::kCompleted: return "completed";
    case RequestOutcome::kRejected: return "rejected";
    case RequestOutcome::kDropped: return "dropped";
    case RequestOutcome::kShed: return "shed";
    case RequestOutcome::kTimedOut: return "timed-out";
    case RequestOutcome::kFailed: return "failed";
  }
  return "?";
}

namespace {

// Dedicated RNG streams so adding a field never shifts another field's draws.
constexpr std::uint64_t kArrivalStream = 1;
constexpr std::uint64_t kPromptStream = 2;
constexpr std::uint64_t kOutputStream = 3;
constexpr std::uint64_t kPriorityStream = 4;

std::int64_t draw_len(const sim::CounterRng& rng, std::uint64_t i,
                      const LengthRange& r) {
  return r.lo + static_cast<std::int64_t>(
                    rng.below(i, static_cast<std::uint64_t>(r.hi - r.lo + 1)));
}

}  // namespace

std::vector<Request> poisson_stream(const StreamConfig& cfg) {
  GAUDI_CHECK(cfg.arrival_rate_rps > 0.0 && std::isfinite(cfg.arrival_rate_rps),
              "arrival rate must be a positive requests/s value");
  GAUDI_CHECK(cfg.num_requests >= 1, "stream needs at least one request");
  GAUDI_CHECK(cfg.prompt.lo >= 1 && cfg.prompt.lo <= cfg.prompt.hi,
              "prompt length range must satisfy 1 <= lo <= hi");
  GAUDI_CHECK(cfg.output.lo >= 1 && cfg.output.lo <= cfg.output.hi,
              "output length range must satisfy 1 <= lo <= hi");
  GAUDI_CHECK(cfg.priority_levels >= 1, "need at least one priority level");

  const sim::CounterRng root{cfg.seed};
  const sim::CounterRng arrivals = root.stream(kArrivalStream);
  const sim::CounterRng prompts = root.stream(kPromptStream);
  const sim::CounterRng outputs = root.stream(kOutputStream);
  const sim::CounterRng priorities = root.stream(kPriorityStream);

  std::vector<Request> stream;
  stream.reserve(static_cast<std::size_t>(cfg.num_requests));
  double t_seconds = 0.0;
  for (std::int64_t i = 0; i < cfg.num_requests; ++i) {
    const auto idx = static_cast<std::uint64_t>(i);
    // Exponential inter-arrival; 1 - u stays in (0, 1] so the log is finite.
    const double u = arrivals.uniform(idx);
    t_seconds += -std::log(1.0 - static_cast<double>(u)) / cfg.arrival_rate_rps;
    Request r;
    r.id = i;
    r.arrival = sim::SimTime::from_seconds(t_seconds);
    r.prompt_len = draw_len(prompts, idx, cfg.prompt);
    r.output_len = draw_len(outputs, idx, cfg.output);
    r.priority = static_cast<std::int32_t>(priorities.below(
        idx, static_cast<std::uint64_t>(cfg.priority_levels)));
    r.deadline = cfg.deadline;
    stream.push_back(r);
  }
  return stream;  // arrivals are cumulative, so already sorted
}

namespace {

std::int64_t parse_field(const std::string& text, const char* what,
                         std::size_t line_no) {
  std::size_t pos = 0;
  std::int64_t v = 0;
  bool ok = !text.empty();
  if (ok) {
    try {
      v = std::stoll(text, &pos);
    } catch (const std::exception&) {
      ok = false;
    }
  }
  if (!ok || pos != text.size()) {
    throw sim::InvalidArgument("trace line " + std::to_string(line_no) + ": " +
                               what + " expects an integer, got '" + text + "'");
  }
  return v;
}

}  // namespace

std::vector<Request> parse_trace(std::istream& in) {
  std::vector<Request> stream;
  std::string line;
  std::size_t line_no = 0;
  std::int64_t next_id = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line.front() == '#') continue;
    std::vector<std::string> fields;
    std::stringstream ss(line);
    for (std::string part; std::getline(ss, part, ',');) fields.push_back(part);
    if (fields.size() < 3 || fields.size() > 5) {
      throw sim::InvalidArgument(
          "trace line " + std::to_string(line_no) +
          ": expected arrival_ms,prompt_len,output_len[,priority[,deadline_ms]]");
    }
    Request r;
    r.id = next_id++;
    const std::int64_t arrival_ms =
        parse_field(fields[0], "arrival_ms", line_no);
    GAUDI_CHECK(arrival_ms >= 0, "trace line " + std::to_string(line_no) +
                                     ": arrival_ms must be >= 0");
    r.arrival = sim::SimTime::from_ms(static_cast<double>(arrival_ms));
    r.prompt_len = parse_field(fields[1], "prompt_len", line_no);
    r.output_len = parse_field(fields[2], "output_len", line_no);
    GAUDI_CHECK(r.prompt_len >= 1 && r.output_len >= 1,
                "trace line " + std::to_string(line_no) +
                    ": prompt_len and output_len must be >= 1");
    if (fields.size() >= 4) {
      r.priority =
          static_cast<std::int32_t>(parse_field(fields[3], "priority", line_no));
    }
    if (fields.size() == 5) {
      const std::int64_t deadline_ms =
          parse_field(fields[4], "deadline_ms", line_no);
      GAUDI_CHECK(deadline_ms >= 0, "trace line " + std::to_string(line_no) +
                                        ": deadline_ms must be >= 0");
      r.deadline = sim::SimTime::from_ms(static_cast<double>(deadline_ms));
    }
    stream.push_back(r);
  }
  std::stable_sort(stream.begin(), stream.end(),
                   [](const Request& a, const Request& b) {
                     return a.arrival < b.arrival;
                   });
  return stream;
}

std::vector<Request> load_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw sim::InvalidArgument("cannot open trace file: " + path);
  }
  return parse_trace(in);
}

}  // namespace gaudi::serve

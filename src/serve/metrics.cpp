#include "serve/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "sim/error.hpp"

namespace gaudi::serve {

double percentile(std::vector<double> samples, double p) {
  GAUDI_CHECK(p >= 0.0 && p <= 100.0 && std::isfinite(p),
              "percentile expects p in [0, 100]");
  if (samples.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::sort(samples.begin(), samples.end());
  const auto n = static_cast<double>(samples.size());
  auto rank = static_cast<std::size_t>(std::ceil(p / 100.0 * n));
  rank = std::min(std::max<std::size_t>(rank, 1), samples.size());
  return samples[rank - 1];
}

namespace {

/// Fixed-precision rendering; non-finite (empty-sample percentiles) → "n/a".
std::string num(double v, int precision = 2) {
  if (!std::isfinite(v)) return "n/a";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

}  // namespace

std::string ServeSummary::to_report() const {
  std::ostringstream os;
  os << "requests: " << offered << " offered, " << completed << " completed, "
     << rejected << " rejected, " << dropped << " dropped, " << preemptions
     << " preemptions\n";
  os << "tokens:   " << tokens_out << " generated, " << recomputed_tokens
     << " recomputed after preemption\n";
  os << "TTFT:     p50 " << num(ttft_p50_ms) << " ms, p99 "
     << num(ttft_p99_ms) << " ms, mean " << num(ttft_mean_ms) << " ms\n";
  os << "ITL:      p50 " << num(itl_p50_ms) << " ms, p99 " << num(itl_p99_ms)
     << " ms\n";
  os << "rate:     " << num(throughput_tok_s, 1) << " tok/s throughput, "
     << num(goodput_tok_s, 1) << " tok/s goodput (" << deadline_met << " of "
     << completed << " inside deadline) over " << sim::to_string(makespan)
     << "\n";
  return os.str();
}

void MetricsSink::on_offered(const Request& r) {
  GAUDI_CHECK(index_.count(r.id) == 0,
              "request id " + std::to_string(r.id) + " offered twice");
  RequestMetrics m;
  m.id = r.id;
  m.arrival = r.arrival;
  index_.emplace(r.id, records_.size());
  records_.push_back(m);
  deadlines_.push_back(r.deadline);
}

RequestMetrics& MetricsSink::slot(std::int64_t id) {
  const auto it = index_.find(id);
  if (it == index_.end()) {
    throw sim::InternalError("metrics for unknown request id " +
                             std::to_string(id));
  }
  return records_[it->second];
}

void MetricsSink::on_first_token(std::int64_t id, sim::SimTime now) {
  RequestMetrics& m = slot(id);
  m.first_token = now;
  m.tokens_out += 1;  // the first token is real output, it just has no gap
  ttft_ms_.push_back((now - m.arrival).ms());
}

void MetricsSink::on_token(std::int64_t id, sim::SimTime gap) {
  slot(id).tokens_out += 1;
  itl_ms_.push_back(gap.ms());
}

void MetricsSink::on_preempt(std::int64_t id, std::int64_t recomputed_tokens) {
  slot(id).preemptions += 1;
  preemptions_ += 1;
  recomputed_tokens_ += recomputed_tokens;
}

void MetricsSink::on_complete(std::int64_t id, sim::SimTime now) {
  RequestMetrics& m = slot(id);
  m.outcome = RequestOutcome::kCompleted;
  m.finish = now;
  const sim::SimTime deadline = deadlines_[index_.at(id)];
  m.met_deadline =
      deadline == sim::SimTime::zero() || now - m.arrival <= deadline;
}

void MetricsSink::on_reject(std::int64_t id, sim::SimTime now) {
  RequestMetrics& m = slot(id);
  m.outcome = RequestOutcome::kRejected;
  m.finish = now;
}

void MetricsSink::on_drop(std::int64_t id, sim::SimTime now) {
  RequestMetrics& m = slot(id);
  m.outcome = RequestOutcome::kDropped;
  m.finish = now;
}

ServeSummary MetricsSink::summary(sim::SimTime makespan) const {
  ServeSummary s;
  s.offered = static_cast<std::int64_t>(records_.size());
  s.preemptions = preemptions_;
  s.recomputed_tokens = recomputed_tokens_;
  s.makespan = makespan;
  std::int64_t good_tokens = 0;
  for (const RequestMetrics& m : records_) {
    s.tokens_out += m.tokens_out;
    switch (m.outcome) {
      case RequestOutcome::kCompleted:
        s.completed += 1;
        if (m.met_deadline) {
          s.deadline_met += 1;
          good_tokens += m.tokens_out;
        }
        break;
      case RequestOutcome::kRejected: s.rejected += 1; break;
      case RequestOutcome::kDropped: s.dropped += 1; break;
    }
  }
  s.ttft_p50_ms = percentile(ttft_ms_, 50.0);
  s.ttft_p99_ms = percentile(ttft_ms_, 99.0);
  if (!ttft_ms_.empty()) {
    double sum = 0.0;
    for (const double v : ttft_ms_) sum += v;
    s.ttft_mean_ms = sum / static_cast<double>(ttft_ms_.size());
  } else {
    s.ttft_mean_ms = std::numeric_limits<double>::quiet_NaN();
  }
  s.itl_p50_ms = percentile(itl_ms_, 50.0);
  s.itl_p99_ms = percentile(itl_ms_, 99.0);
  const double seconds = makespan.seconds();
  s.throughput_tok_s =
      seconds > 0.0 ? static_cast<double>(s.tokens_out) / seconds : 0.0;
  s.goodput_tok_s =
      seconds > 0.0 ? static_cast<double>(good_tokens) / seconds : 0.0;
  return s;
}

std::vector<RequestMetrics> MetricsSink::requests() const {
  std::vector<RequestMetrics> out = records_;
  std::sort(out.begin(), out.end(),
            [](const RequestMetrics& a, const RequestMetrics& b) {
              return a.id < b.id;
            });
  return out;
}

}  // namespace gaudi::serve

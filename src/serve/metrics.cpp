#include "serve/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "sim/error.hpp"

namespace gaudi::serve {

double percentile(std::vector<double> samples, double p) {
  GAUDI_CHECK(p >= 0.0 && p <= 100.0 && std::isfinite(p),
              "percentile expects p in [0, 100]");
  if (samples.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::sort(samples.begin(), samples.end());
  const auto n = static_cast<double>(samples.size());
  auto rank = static_cast<std::size_t>(std::ceil(p / 100.0 * n));
  rank = std::min(std::max<std::size_t>(rank, 1), samples.size());
  return samples[rank - 1];
}

namespace {

/// Fixed-precision rendering; non-finite (empty-sample percentiles) → "n/a".
std::string num(double v, int precision = 2) {
  if (!std::isfinite(v)) return "n/a";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

}  // namespace

std::string ServeSummary::to_report() const {
  std::ostringstream os;
  const std::string avail = std::isfinite(availability)
                                ? num(availability * 100.0, 1) + "%"
                                : "n/a";
  os << "requests: " << offered << " offered, " << completed << " completed, "
     << preemptions << " preemptions, availability " << avail << "\n";
  os << "outcomes: " << rejected << " rejected, " << dropped << " dropped, "
     << shed << " shed, " << failed << " failed, " << timed_out
     << " timed-out\n";
  os << "tokens:   " << tokens_out << " generated, " << recomputed_tokens
     << " recomputed after preemption, " << wasted_tokens
     << " wasted by faults (" << fault_retries << " retries)\n";
  os << "TTFT:     p50 " << num(ttft_p50_ms) << " ms, p99 "
     << num(ttft_p99_ms) << " ms, mean " << num(ttft_mean_ms) << " ms\n";
  os << "ITL:      p50 " << num(itl_p50_ms) << " ms, p99 " << num(itl_p99_ms)
     << " ms\n";
  os << "rate:     " << num(throughput_tok_s, 1) << " tok/s throughput, "
     << num(goodput_tok_s, 1) << " tok/s goodput (" << deadline_met << " of "
     << completed << " inside deadline) over " << sim::to_string(makespan)
     << "\n";
  return os.str();
}

void MetricsSink::on_offered(const Request& r) {
  GAUDI_CHECK(index_.count(r.id) == 0,
              "request id " + std::to_string(r.id) + " offered twice");
  RequestMetrics m;
  m.id = r.id;
  m.arrival = r.arrival;
  index_.emplace(r.id, records_.size());
  records_.push_back(m);
  deadlines_.push_back(r.deadline);
  samples_.emplace_back();
}

RequestMetrics& MetricsSink::slot(std::int64_t id) {
  const auto it = index_.find(id);
  if (it == index_.end()) {
    throw sim::InternalError("metrics for unknown request id " +
                             std::to_string(id));
  }
  return records_[it->second];
}

void MetricsSink::on_first_token(std::int64_t id, sim::SimTime now) {
  RequestMetrics& m = slot(id);
  m.first_token = now;
  m.tokens_out += 1;  // the first token is real output, it just has no gap
  Samples& s = samples_[index_.at(id)];
  s.ttft_ms = (now - m.arrival).ms();
  s.has_ttft = true;
}

void MetricsSink::on_token(std::int64_t id, sim::SimTime gap) {
  slot(id).tokens_out += 1;
  samples_[index_.at(id)].itl_ms.push_back(gap.ms());
}

void MetricsSink::on_preempt(std::int64_t id, std::int64_t recomputed_tokens) {
  slot(id).preemptions += 1;
  preemptions_ += 1;
  recomputed_tokens_ += recomputed_tokens;
}

void MetricsSink::on_complete(std::int64_t id, sim::SimTime now) {
  RequestMetrics& m = slot(id);
  m.outcome = RequestOutcome::kCompleted;
  m.finish = now;
  const sim::SimTime deadline = deadlines_[index_.at(id)];
  m.met_deadline =
      deadline == sim::SimTime::zero() || now - m.arrival <= deadline;
}

void MetricsSink::on_reject(std::int64_t id, sim::SimTime now) {
  RequestMetrics& m = slot(id);
  m.outcome = RequestOutcome::kRejected;
  m.finish = now;
}

void MetricsSink::on_drop(std::int64_t id, sim::SimTime now) {
  RequestMetrics& m = slot(id);
  m.outcome = RequestOutcome::kDropped;
  m.finish = now;
}

void MetricsSink::on_shed(std::int64_t id, sim::SimTime now) {
  RequestMetrics& m = slot(id);
  m.outcome = RequestOutcome::kShed;
  m.finish = now;
}

void MetricsSink::on_timeout(std::int64_t id, sim::SimTime now) {
  RequestMetrics& m = slot(id);
  m.outcome = RequestOutcome::kTimedOut;
  m.finish = now;
}

void MetricsSink::on_fault_retry(std::int64_t id, std::int64_t wasted_rows) {
  slot(id).fault_retries += 1;
  fault_retries_ += 1;
  wasted_tokens_ += wasted_rows;
}

void MetricsSink::on_fail(std::int64_t id, sim::SimTime now,
                          std::int64_t wasted_rows) {
  RequestMetrics& m = slot(id);
  m.outcome = RequestOutcome::kFailed;
  m.finish = now;
  wasted_tokens_ += wasted_rows;
}

void MetricsSink::on_wasted(std::int64_t rows) { wasted_tokens_ += rows; }

void MetricsSink::on_migrated(std::int64_t id, std::int64_t rows) {
  slot(id).migrations += 1;
  migrations_ += 1;
  migrated_rows_ += rows;
}

ServeSummary MetricsSink::summary(sim::SimTime makespan) const {
  ServeSummary s;
  s.offered = static_cast<std::int64_t>(records_.size());
  s.preemptions = preemptions_;
  s.recomputed_tokens = recomputed_tokens_;
  s.fault_retries = fault_retries_;
  s.wasted_tokens = wasted_tokens_;
  s.migrations = migrations_;
  s.migrated_rows = migrated_rows_;
  s.makespan = makespan;
  std::int64_t good_tokens = 0;
  // Percentiles reduce the samples of completed requests only: a request
  // the service gave up on must not shift the latency tails it reports.
  std::vector<double> ttft_ms;
  std::vector<double> itl_ms;
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const RequestMetrics& m = records_[i];
    s.tokens_out += m.tokens_out;
    switch (m.outcome) {
      case RequestOutcome::kCompleted: {
        s.completed += 1;
        if (m.met_deadline) {
          s.deadline_met += 1;
          good_tokens += m.tokens_out;
        }
        const Samples& sam = samples_[i];
        if (sam.has_ttft) ttft_ms.push_back(sam.ttft_ms);
        itl_ms.insert(itl_ms.end(), sam.itl_ms.begin(), sam.itl_ms.end());
        break;
      }
      case RequestOutcome::kRejected: s.rejected += 1; break;
      case RequestOutcome::kDropped: s.dropped += 1; break;
      case RequestOutcome::kShed: s.shed += 1; break;
      case RequestOutcome::kTimedOut: s.timed_out += 1; break;
      case RequestOutcome::kFailed: s.failed += 1; break;
    }
  }
  const std::int64_t admissible = s.offered - s.rejected;
  s.availability = admissible > 0 ? static_cast<double>(s.completed) /
                                        static_cast<double>(admissible)
                                  : std::numeric_limits<double>::quiet_NaN();
  s.ttft_p50_ms = percentile(ttft_ms, 50.0);
  s.ttft_p99_ms = percentile(ttft_ms, 99.0);
  if (!ttft_ms.empty()) {
    double sum = 0.0;
    for (const double v : ttft_ms) sum += v;
    s.ttft_mean_ms = sum / static_cast<double>(ttft_ms.size());
  } else {
    s.ttft_mean_ms = std::numeric_limits<double>::quiet_NaN();
  }
  s.itl_p50_ms = percentile(itl_ms, 50.0);
  s.itl_p99_ms = percentile(itl_ms, 99.0);
  const double seconds = makespan.seconds();
  s.throughput_tok_s =
      seconds > 0.0 ? static_cast<double>(s.tokens_out) / seconds : 0.0;
  s.goodput_tok_s =
      seconds > 0.0 ? static_cast<double>(good_tokens) / seconds : 0.0;
  return s;
}

std::vector<RequestMetrics> MetricsSink::requests() const {
  std::vector<RequestMetrics> out = records_;
  std::sort(out.begin(), out.end(),
            [](const RequestMetrics& a, const RequestMetrics& b) {
              return a.id < b.id;
            });
  return out;
}

}  // namespace gaudi::serve

#include "serve/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "sim/env.hpp"
#include "sim/error.hpp"
#include "sim/rng.hpp"

namespace gaudi::serve {

namespace {

/// Side ids of hedged duplicates live above this base so they can never
/// collide with stream request ids (validated at run()).
constexpr std::int64_t kHedgeIdBase = std::int64_t{1} << 40;

std::string pct(double v) {
  if (!std::isfinite(v)) return "n/a";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1f%%", v * 100.0);
  return buf;
}

}  // namespace

const char* load_balance_policy_name(LoadBalancePolicy p) {
  switch (p) {
    case LoadBalancePolicy::kRoundRobin: return "round-robin";
    case LoadBalancePolicy::kJoinShortestQueue: return "jsq";
    case LoadBalancePolicy::kLeastKvLoad: return "least-kv";
  }
  return "unknown";
}

LoadBalancePolicy parse_load_balance_policy(const std::string& name) {
  if (name == "round-robin") return LoadBalancePolicy::kRoundRobin;
  if (name == "jsq") return LoadBalancePolicy::kJoinShortestQueue;
  if (name == "least-kv") return LoadBalancePolicy::kLeastKvLoad;
  throw sim::InvalidArgument("unknown load-balance policy '" + name +
                             "' (expected round-robin | jsq | least-kv)");
}

ClusterRouter::ClusterRouter(const graph::Runtime& rt, ClusterConfig cfg)
    : rt_(rt), cfg_(std::move(cfg)) {
  GAUDI_CHECK(cfg_.replicas >= 1, "a cluster needs at least one replica");
  GAUDI_CHECK(!cfg_.replica.faults.enabled(),
              "cluster replicas draw fault streams from "
              "ClusterConfig::fault_profile, not ServeConfig::faults");
  GAUDI_CHECK(cfg_.suspicion_timeout > sim::SimTime::zero(),
              "suspicion_timeout must be positive");
  GAUDI_CHECK(cfg_.heartbeat_interval >= sim::SimTime::zero(),
              "heartbeat_interval must be >= 0");
  GAUDI_CHECK(cfg_.hedge_budget >= sim::SimTime::zero(),
              "hedge_budget must be >= 0");
  if (cfg_.breaker_enabled) {
    GAUDI_CHECK(cfg_.breaker_window >= 1, "breaker_window must be >= 1");
    GAUDI_CHECK(cfg_.breaker_min_samples >= 1 &&
                    cfg_.breaker_min_samples <= cfg_.breaker_window,
                "breaker_min_samples must be in [1, breaker_window]");
    GAUDI_CHECK(cfg_.breaker_threshold > 0.0 && cfg_.breaker_threshold <= 1.0,
                "breaker_threshold must be in (0, 1]");
    GAUDI_CHECK(cfg_.breaker_cooldown > sim::SimTime::zero(),
                "breaker_cooldown must be positive");
  }
  if (cfg_.migration.enabled) {
    GAUDI_CHECK(cfg_.migration.chunk_blocks >= 1,
                "migration chunk_blocks must be >= 1");
  }
  if (cfg_.drain_replica >= 0) {
    GAUDI_CHECK(cfg_.replicas >= 2,
                "draining a replica needs at least two replicas");
    GAUDI_CHECK(cfg_.drain_replica < cfg_.replicas,
                "drain_replica must index a configured replica");
    GAUDI_CHECK(cfg_.drain_at >= sim::SimTime::zero(),
                "drain_at must be >= 0");
  }
  health_on_ = cfg_.health_enabled();
  if (health_on_) {
    GAUDI_CHECK(cfg_.health_window > sim::SimTime::zero(),
                "health_window must be positive");
    GAUDI_CHECK(cfg_.degraded_after >= 1, "degraded_after must be >= 1");
    validate_ = sim::env_flag("GAUDI_VALIDATE", false);
  }
  const bool faults_on = cfg_.fault_profile.any_rate_positive();
  if (faults_on && cfg_.migration.enabled) {
    // The migration path's fabric link draws from its own decorrelated
    // stream: seed ^ salt so it never collides with a replica's
    // splitmix64(seed + r + 1) iteration stream.
    link_faults_ = sim::FaultInjector{
        sim::splitmix64(cfg_.fault_seed ^ 0x4B56ACEull), cfg_.fault_profile};
  }
  replicas_.resize(static_cast<std::size_t>(cfg_.replicas));
  for (std::int64_t r = 0; r < cfg_.replicas; ++r) {
    ServeConfig rcfg = cfg_.replica;
    if (faults_on) {
      // One cluster seed, N decorrelated per-replica streams: splitmix64
      // spreads neighbouring replica indices across the counter-RNG space.
      rcfg.faults = sim::FaultInjector{
          sim::splitmix64(cfg_.fault_seed + static_cast<std::uint64_t>(r) + 1),
          cfg_.fault_profile};
    }
    Replica& rep = replicas_[static_cast<std::size_t>(r)];
    rep.sched = std::make_unique<ContinuousBatchScheduler>(rt_, rcfg);
    rep.sched->bind_cluster();
    if (health_on_) {
      rep.health = HealthTracker{cfg_.health_window, cfg_.degraded_after};
    }
  }
}

bool ClusterRouter::evacuating(const Replica& rep, sim::SimTime now) const {
  if (rep.draining) return true;
  // Degraded health evacuates proactively only when migration can actually
  // move the work; a drain-only configuration leaves sick-but-alive
  // replicas in rotation exactly as before.
  return cfg_.migration.enabled && rep.health.degraded(now);
}

sim::SimTime ClusterRouter::heartbeat_ceil(sim::SimTime t) const {
  const std::int64_t hb = cfg_.heartbeat_interval.ps();
  if (hb <= 0) return t;
  const std::int64_t ticks = (t.ps() + hb - 1) / hb;
  return sim::SimTime::from_ps(ticks * hb);
}

bool ClusterRouter::breaker_allows(Replica& rep, sim::SimTime now) const {
  if (!cfg_.breaker_enabled) return true;
  if (rep.breaker == BreakerState::kOpen && now >= rep.open_until) {
    // Cooldown expired: half-open, awaiting a single probe.
    rep.breaker = BreakerState::kHalfOpen;
    rep.probe_live = false;
    rep.probe_id = -1;
  }
  switch (rep.breaker) {
    case BreakerState::kClosed: return true;
    case BreakerState::kOpen: return false;
    case BreakerState::kHalfOpen: return !rep.probe_live;
  }
  return true;
}

void ClusterRouter::breaker_record(std::int64_t r, bool ok, sim::SimTime now) {
  if (!cfg_.breaker_enabled) return;
  Replica& rep = replicas_[static_cast<std::size_t>(r)];
  const auto open_now = [&] {
    rep.breaker = BreakerState::kOpen;
    rep.open_until = now + cfg_.breaker_cooldown;
    rep.outcomes.clear();
    rep.probe_live = false;
    rep.probe_id = -1;
    rep.stats.breaker_opens += 1;
    ++breaker_opens_;
  };
  switch (rep.breaker) {
    case BreakerState::kClosed: {
      rep.outcomes.push_back(ok);
      while (static_cast<std::int64_t>(rep.outcomes.size()) >
             cfg_.breaker_window) {
        rep.outcomes.pop_front();
      }
      if (ok) return;
      const auto samples = static_cast<std::int64_t>(rep.outcomes.size());
      if (samples < cfg_.breaker_min_samples) return;
      std::int64_t failures = 0;
      for (const bool o : rep.outcomes) failures += o ? 0 : 1;
      if (static_cast<double>(failures) >=
          cfg_.breaker_threshold * static_cast<double>(samples)) {
        open_now();
      }
      return;
    }
    case BreakerState::kHalfOpen: {
      // The probe's fate decides; a failure from any lingering pre-open
      // request is equally disqualifying.
      if (!ok) {
        open_now();
      } else if (rep.probe_live) {
        rep.breaker = BreakerState::kClosed;
        rep.outcomes.clear();
        rep.probe_live = false;
        rep.probe_id = -1;
      }
      return;
    }
    case BreakerState::kOpen:
      return;  // outcomes of pre-open residue carry no new information
  }
}

std::int64_t ClusterRouter::pick_replica(sim::SimTime now,
                                         std::int64_t exclude) {
  const std::int64_t n = cfg_.replicas;
  const auto eligible = [&](std::int64_t idx) {
    Replica& rep = replicas_[static_cast<std::size_t>(idx)];
    // An undetected-dead replica is still believed up: dispatches to it
    // strand until the suspicion timeout — the cost of slow detection.
    // The evacuation check precedes breaker_allows so a draining replica
    // never consumes the open->half-open transition or hosts a probe.
    if (idx == exclude || rep.suspected) return false;
    if (health_on_ && evacuating(rep, now)) return false;
    return breaker_allows(rep, now);
  };
  switch (cfg_.policy) {
    case LoadBalancePolicy::kRoundRobin: {
      for (std::int64_t k = 0; k < n; ++k) {
        const std::int64_t idx = (rr_cursor_ + k) % n;
        if (!eligible(idx)) continue;
        rr_cursor_ = idx + 1;
        return idx;
      }
      return -1;
    }
    case LoadBalancePolicy::kJoinShortestQueue: {
      std::int64_t best = -1;
      std::int64_t best_load = 0;
      for (std::int64_t idx = 0; idx < n; ++idx) {
        if (!eligible(idx)) continue;
        const Replica& rep = replicas_[static_cast<std::size_t>(idx)];
        const std::int64_t load =
            rep.sched->load() +
            static_cast<std::int64_t>(rep.stranded.size());
        if (best < 0 || load < best_load) {
          best = idx;
          best_load = load;
        }
      }
      return best;
    }
    case LoadBalancePolicy::kLeastKvLoad: {
      std::int64_t best = -1;
      std::int64_t best_free = -1;
      for (std::int64_t idx = 0; idx < n; ++idx) {
        if (!eligible(idx)) continue;
        const std::int64_t free =
            replicas_[static_cast<std::size_t>(idx)].sched->free_kv_blocks();
        if (free > best_free) {
          best = idx;
          best_free = free;
        }
      }
      return best;
    }
  }
  return -1;
}

void ClusterRouter::place(const Routed& routed, std::int64_t r,
                          sim::SimTime now) {
  Replica& rep = replicas_[static_cast<std::size_t>(r)];
  const std::int64_t sid = routed.req.id;
  const std::int64_t orig = sid >= kHedgeIdBase ? sid - kHedgeIdBase : sid;
  Track& t = tracks_.at(orig);
  t.sides[sid] = r;
  side_to_orig_[sid] = orig;
  rep.stats.dispatched += 1;
  if (cfg_.breaker_enabled && rep.breaker == BreakerState::kHalfOpen &&
      !rep.probe_live) {
    rep.probe_live = true;
    rep.probe_id = orig;
  }
  if (!rep.up) {
    // The chip is dead and the router does not know yet: the request is
    // lost on the wire until the suspicion timeout fails it over.
    rep.stranded.push_back(routed);
  } else if (routed.generated >= 1) {
    rep.sched->enqueue_resume(routed.req, routed.generated, routed.last_token,
                              now);
  } else {
    rep.sched->enqueue(routed.req);
  }
  if (sid == orig) {
    t.dispatch_time = now;
    if (cfg_.hedge_budget > sim::SimTime::zero() && !t.hedged && !t.started &&
        routed.generated == 0) {
      hedges_.push_back({now + cfg_.hedge_budget, orig, now});
    }
  }
}

ClusterRouter::Track* ClusterRouter::drop_side(std::int64_t sid,
                                               std::int64_t* orig_out) {
  const auto sit = side_to_orig_.find(sid);
  if (sit == side_to_orig_.end()) return nullptr;
  const std::int64_t orig = sit->second;
  side_to_orig_.erase(sit);
  Track& t = tracks_.at(orig);
  t.sides.erase(sid);
  *orig_out = orig;
  return &t;
}

void ClusterRouter::cancel_side(std::int64_t sid, std::int64_t r) {
  std::int64_t orig = 0;
  if (drop_side(sid, &orig) == nullptr) return;
  Replica& rep = replicas_[static_cast<std::size_t>(r)];
  std::int64_t rows = rep.sched->cancel(sid);
  if (rows < 0) {
    // Not in the machine: the side strands on a dead replica's wire.
    rows = 0;
    rep.stranded.erase(
        std::remove_if(rep.stranded.begin(), rep.stranded.end(),
                       [&](const Routed& q) { return q.req.id == sid; }),
        rep.stranded.end());
  }
  if (rows > 0) {
    sink_.on_wasted(rows);
    hedge_wasted_ += rows;
  }
  // A cancelled probe proves nothing about the replica: allow a new probe.
  if (cfg_.breaker_enabled && rep.breaker == BreakerState::kHalfOpen &&
      rep.probe_live && rep.probe_id == orig) {
    rep.probe_live = false;
    rep.probe_id = -1;
  }
}

void ClusterRouter::finish_track(std::int64_t orig) {
  const auto it = tracks_.find(orig);
  GAUDI_ASSERT(it != tracks_.end(), "finishing an unknown request");
  for (const auto& [sid, r] : it->second.sides) {
    (void)r;
    side_to_orig_.erase(sid);
  }
  tracks_.erase(it);
  // A probe that ends in a non-breaker outcome (shed, rejected, dropped)
  // proves nothing: free the half-open slot or the replica wedges shut.
  for (Replica& rep : replicas_) {
    if (rep.breaker == BreakerState::kHalfOpen && rep.probe_live &&
        rep.probe_id == orig) {
      rep.probe_live = false;
      rep.probe_id = -1;
    }
  }
}

void ClusterRouter::process_death(std::int64_t r, sim::SimTime now) {
  Replica& rep = replicas_[static_cast<std::size_t>(r)];
  rep.up = false;
  rep.death_pending = true;
  rep.dead_work = rep.sched->drain_all();
  rep.rejoin_time = now + cfg_.replica.chip_restart;
  // Detection: suspicion timeout, or the restarted chip's first heartbeat
  // announcing a new incarnation — whichever heartbeat tick comes first.
  rep.detect_time = heartbeat_ceil(
      now + std::min(cfg_.suspicion_timeout, cfg_.replica.chip_restart));
  ++chip_failures_;
  rep.stats.chip_failures += 1;
  rep.stats.down_time += cfg_.replica.chip_restart;
  if (!migrations_.empty()) {
    // A migration interrupted by the chip loss aborts on either end.  A
    // dead source drained the side into dead_work, so the existing
    // re-prefill failover re-queues it exactly like today — no request
    // lost, no tokens double-billed; a dead destination leaves the side
    // running at the source, and evacuation retries toward a survivor.
    migrations_.erase(
        std::remove_if(migrations_.begin(), migrations_.end(),
                       [&](const Migration& m) {
                         if (m.src != r && m.dst != r) return false;
                         ++migrations_aborted_;
                         return true;
                       }),
        migrations_.end());
  }
}

void ClusterRouter::process_detection(std::int64_t r, sim::SimTime now) {
  Replica& rep = replicas_[static_cast<std::size_t>(r)];
  rep.death_pending = false;
  if (!rep.up) rep.suspected = true;

  std::vector<std::pair<Routed, std::int64_t>> lost;  // (side, wasted rows)
  lost.reserve(rep.dead_work.size() + rep.stranded.size());
  for (const ContinuousBatchScheduler::DrainedRequest& d : rep.dead_work) {
    lost.push_back({Routed{d.req, d.generated, d.last_token}, d.lost_rows});
  }
  for (const Routed& q : rep.stranded) lost.push_back({q, 0});
  rep.dead_work.clear();
  rep.stranded.clear();

  for (const auto& [side, wasted] : lost) {
    std::int64_t orig = 0;
    Track* t = drop_side(side.req.id, &orig);
    if (t == nullptr) continue;  // cancelled before the chip died
    breaker_record(r, false, now);
    rep.stats.failed_over += 1;
    const bool is_loser = t->started && side.req.id != t->winner;
    if (is_loser || !t->sides.empty()) {
      // A twin survives on another replica (a cancelled-too-late hedge
      // loser, or an unstarted hedge pair losing one side): the surviving
      // side carries the request, only the computed rows are lost.
      if (wasted > 0) {
        sink_.on_wasted(wasted);
        hedge_wasted_ += wasted;
      }
      continue;
    }
    // Last live side lost: fail over with a full re-prefill, consuming one
    // unit of the retry budget — or end kFailed when it is spent.
    t->attempts += 1;
    if (t->attempts > cfg_.replica.retry_max) {
      sink_.on_fail(orig, now, wasted);
      finish_track(orig);
      continue;
    }
    sink_.on_fault_retry(orig, wasted);
    // The re-dispatched side (id = orig) carries the request from here on:
    // its token events must count, and a later chip loss must read it as
    // the last live side — not as a dead hedge winner's leftover twin.
    if (t->started) t->winner = orig;
    ++failovers_;
    Routed resume;
    resume.req = t->req;
    resume.generated = side.generated;
    resume.last_token = side.last_token;
    queue_.push_back(
        {resume, now + retry_backoff_delay(cfg_.replica.retry_backoff,
                                           cfg_.replica.retry_backoff_max,
                                           t->attempts)});
  }
}

void ClusterRouter::apply_events(std::int64_t r,
                                 const std::vector<ReplicaEvent>& events) {
  Replica& rep = replicas_[static_cast<std::size_t>(r)];
  for (const ReplicaEvent& e : events) {
    const auto sit = side_to_orig_.find(e.id);
    if (sit == side_to_orig_.end()) continue;  // stale side (cancelled)
    const std::int64_t orig = sit->second;
    Track& t = tracks_.at(orig);
    switch (e.kind) {
      case ReplicaEventKind::kFirstToken: {
        if (t.started) {
          // Photo finish: the twin won at this same instant and was
          // processed first (replica-index order); this side loses.
          cancel_side(e.id, r);
          break;
        }
        t.started = true;
        t.winner = e.id;
        sink_.on_first_token(orig, e.at);
        if (e.id != orig) ++hedge_wins_;
        std::vector<std::pair<std::int64_t, std::int64_t>> losers;
        for (const auto& [sid, sr] : t.sides) {
          if (sid != e.id) losers.push_back({sid, sr});
        }
        for (const auto& [sid, sr] : losers) cancel_side(sid, sr);
        break;
      }
      case ReplicaEventKind::kToken:
        if (t.winner == e.id) {
          sink_.on_token(orig, sim::SimTime::from_ps(e.aux));
        }
        break;
      case ReplicaEventKind::kComplete: {
        sink_.on_complete(orig, e.at);
        rep.stats.completed += 1;
        if (cfg_.breaker_enabled && rep.breaker == BreakerState::kHalfOpen &&
            rep.probe_live && rep.probe_id != orig) {
          // Pre-open residue completing is healthy but not the probe.
          finish_track(orig);
          break;
        }
        breaker_record(r, true, e.at);
        finish_track(orig);
        break;
      }
      case ReplicaEventKind::kPreempt:
        sink_.on_preempt(orig, e.aux);
        break;
      case ReplicaEventKind::kTimeout:
      case ReplicaEventKind::kDrop:
      case ReplicaEventKind::kShed:
      case ReplicaEventKind::kReject: {
        std::int64_t dropped_orig = 0;
        Track* dt = drop_side(e.id, &dropped_orig);
        GAUDI_ASSERT(dt != nullptr, "terminal event for an unmapped side");
        if (e.kind == ReplicaEventKind::kTimeout) {
          breaker_record(r, false, e.at);
        }
        if (!dt->sides.empty()) break;  // the twin carries the request on
        switch (e.kind) {
          case ReplicaEventKind::kTimeout:
            sink_.on_timeout(dropped_orig, e.at);
            break;
          case ReplicaEventKind::kDrop:
            sink_.on_drop(dropped_orig, e.at);
            ++deadline_drops_;
            break;
          case ReplicaEventKind::kShed:
            sink_.on_shed(dropped_orig, e.at);
            break;
          default:
            sink_.on_reject(dropped_orig, e.at);
            break;
        }
        finish_track(dropped_orig);
        break;
      }
    }
  }
}

void ClusterRouter::process_hedges(sim::SimTime now) {
  std::vector<HedgeTimer> due;
  for (auto it = hedges_.begin(); it != hedges_.end();) {
    if (it->fire <= now) {
      due.push_back(*it);
      it = hedges_.erase(it);
    } else {
      ++it;
    }
  }
  std::stable_sort(due.begin(), due.end(),
                   [](const HedgeTimer& a, const HedgeTimer& b) {
                     return a.fire != b.fire ? a.fire < b.fire
                                             : a.orig < b.orig;
                   });
  for (const HedgeTimer& timer : due) {
    const auto tit = tracks_.find(timer.orig);
    if (tit == tracks_.end()) continue;
    Track& t = tit->second;
    if (t.started || t.hedged) continue;
    if (t.dispatch_time != timer.armed_at) continue;  // re-armed since
    if (t.sides.size() != 1) continue;  // back in the router queue
    if (!migrations_.empty() &&
        std::any_of(migrations_.begin(), migrations_.end(),
                    [&](const Migration& m) { return m.orig == timer.orig; })) {
      // A live migration already has a second copy of this request's state
      // in flight; adopt it as the hedge instead of launching a third copy
      // — exactly one duplicate ever exists, so no double completion and
      // no double-billed KV.
      t.hedged = true;
      continue;
    }
    const std::int64_t primary = t.sides.begin()->second;
    t.hedged = true;  // one duplicate per request, launched or not
    const std::int64_t r = pick_replica(now, primary);
    if (r < 0) continue;  // no second replica admits work right now
    Routed copy;
    copy.req = t.req;
    copy.req.id = t.req.id + kHedgeIdBase;
    ++hedges_launched_;
    place(copy, r, now);
  }
}

void ClusterRouter::start_migration(std::int64_t sid, std::int64_t orig,
                                    std::int64_t src, std::int64_t dst,
                                    std::int64_t rows, sim::SimTime now) {
  const TransferPlan plan = plan_kv_transfer(
      cfg_.migration, link_faults_, migration_seq_++, rows,
      cfg_.replica.block_tokens, kv_bytes_per_token(cfg_.replica.model));
  Migration m;
  m.sid = sid;
  m.orig = orig;
  m.src = src;
  m.dst = dst;
  m.phase = 0;
  m.for_drain = replicas_[static_cast<std::size_t>(src)].draining;
  m.rows_synced = rows;
  m.done_at = now + plan.duration;
  migrations_.push_back(m);
  ++migrations_started_;
  migrated_blocks_ += plan.blocks;
  migration_link_retries_ += plan.link_retries;
  migration_time_ += plan.duration;
}

void ClusterRouter::process_migrations(sim::SimTime now) {
  for (std::size_t i = 0; i < migrations_.size();) {
    Migration& m = migrations_[i];
    const auto abort = [&] {
      ++migrations_aborted_;
      migrations_.erase(migrations_.begin() +
                        static_cast<std::ptrdiff_t>(i));
    };
    // Stale: the side completed, was cancelled, or was failed over (its
    // mapping died with the track or moved replicas).  The re-prefill
    // failover path already owns the request; nothing to cut over.
    const auto sit = side_to_orig_.find(m.sid);
    bool stale = sit == side_to_orig_.end();
    if (!stale) {
      const Track& t = tracks_.at(m.orig);
      const auto side_it = t.sides.find(m.sid);
      stale = side_it == t.sides.end() || side_it->second != m.src;
    }
    if (stale) {
      abort();
      continue;
    }
    if (m.done_at > now) {
      ++i;
      continue;
    }
    Replica& src = replicas_[static_cast<std::size_t>(m.src)];
    // The source keeps decoding while a leg flies; its scheduler state is
    // consistent only at iteration boundaries, so a leg that lands while
    // the source is mid-iteration settles when that iteration does.
    if (src.busy) {
      ++i;
      continue;
    }
    const auto prog = src.sched->running_progress(m.sid);
    if (!prog) {
      // No longer running at the source (preempted back to its queue
      // between legs): evacuation re-routes the queued copy instead.
      abort();
      continue;
    }
    const std::int64_t delta = prog->rows - m.rows_synced;
    if (m.phase == 0 && delta > 0) {
      // Delta sync: one extra leg for the rows generated while the base
      // copy was on the wire.  Rows generated during *this* leg ride the
      // cutover message itself — the transfer converges in two legs.
      const TransferPlan plan = plan_kv_transfer(
          cfg_.migration, link_faults_, migration_seq_++, delta,
          cfg_.replica.block_tokens, kv_bytes_per_token(cfg_.replica.model));
      m.phase = 1;
      m.rows_synced = prog->rows;
      m.done_at = now + plan.duration;
      migrated_blocks_ += plan.blocks;
      migration_link_retries_ += plan.link_retries;
      migration_time_ += plan.duration;
      ++i;
      continue;
    }
    Replica& dst = replicas_[static_cast<std::size_t>(m.dst)];
    if (!dst.up || dst.suspected || evacuating(dst, now)) {
      // The destination got sick while the KV flew: abort, leave the side
      // running at the source, and let evacuation retry toward a healthy
      // peer.
      abort();
      continue;
    }
    // --- Atomic cutover. ---
    const auto d = src.sched->extract(m.sid);
    GAUDI_ASSERT(d.has_value(), "cutover extract after running_progress");
    Track& t = tracks_.at(m.orig);
    t.sides[m.sid] = m.dst;
    if (!m.for_drain) t.health_migrated = true;
    dst.sched->enqueue_migrated(d->req, d->generated, d->last_token,
                                d->lost_rows, now);
    sink_.on_migrated(m.orig, d->lost_rows);
    src.stats.migrated_out += 1;
    dst.stats.migrated_in += 1;
    ++migrations_completed_;
    migrated_rows_ += d->lost_rows;
    // A migrated-away probe proves nothing about the source: free the
    // half-open slot or the breaker wedges shut (mirrors cancel_side).
    if (cfg_.breaker_enabled && src.breaker == BreakerState::kHalfOpen &&
        src.probe_live && src.probe_id == m.orig) {
      src.probe_live = false;
      src.probe_id = -1;
    }
    if (validate_) {
      // Kill-and-migrate invariant: after cutover no KV block is owned by
      // two replicas — the source released the blocks before the
      // destination admits (and re-reserves) the request.
      src.sched->audit_kv();
      dst.sched->audit_kv();
      GAUDI_ASSERT(!src.sched->holds_kv(m.sid),
                   "source still holds KV after cutover");
    }
    migrations_.erase(migrations_.begin() + static_cast<std::ptrdiff_t>(i));
  }
}

void ClusterRouter::evacuation_round(sim::SimTime now) {
  for (std::int64_t r = 0; r < cfg_.replicas; ++r) {
    Replica& rep = replicas_[static_cast<std::size_t>(r)];
    if (!rep.up || rep.suspected) continue;
    if (!evacuating(rep, now)) continue;
    // Snapshot this replica's sides in ascending side-id order (std::map)
    // so evacuation decisions are deterministic; each entry is re-validated
    // against the live maps because earlier moves mutate them.
    std::vector<std::pair<std::int64_t, std::int64_t>> sides;  // (sid, orig)
    for (const auto& [sid, orig] : side_to_orig_) {
      const Track& t = tracks_.at(orig);
      const auto it = t.sides.find(sid);
      if (it != t.sides.end() && it->second == r) sides.push_back({sid, orig});
    }
    for (const auto& [sid, orig] : sides) {
      const auto sit = side_to_orig_.find(sid);
      if (sit == side_to_orig_.end()) continue;
      Track& t = tracks_.at(orig);
      const auto side_it = t.sides.find(sid);
      if (side_it == t.sides.end() || side_it->second != r) continue;
      if (std::any_of(migrations_.begin(), migrations_.end(),
                      [&](const Migration& m) { return m.sid == sid; })) {
        continue;  // already on the wire
      }
      // Twin rule: if another side of this request lives on a healthy
      // replica, the local copy is redundant — cancel it instead of
      // spending fabric time on it.  Never cancel the side streaming
      // tokens to the client.
      if (t.sides.size() > 1 && !(t.started && t.winner == sid)) {
        bool twin_ok = false;
        for (const auto& [osid, orep] : t.sides) {
          if (osid == sid) continue;
          const Replica& other = replicas_[static_cast<std::size_t>(orep)];
          if (other.up && !other.suspected && !evacuating(other, now)) {
            twin_ok = true;
            break;
          }
        }
        if (twin_ok) {
          cancel_side(sid, r);
          continue;
        }
      }
      const auto prog = rep.sched->running_progress(sid);
      if (prog && prog->rows > 0 && cfg_.migration.enabled) {
        // Damping: degraded-health evacuation moves a request at most once
        // (drains always may) — without this, fleet-wide degradation would
        // ping-pong the same KV across the fabric indefinitely.
        if (!rep.draining && t.health_migrated) continue;
        const std::int64_t dst = pick_replica(now, r);
        if (dst < 0) continue;  // no healthy target yet; retry next round
        start_migration(sid, orig, r, dst, prog->rows, now);
        continue;
      }
      // Queued work (waiting / requeued / zero-row running / stranded)
      // holds no KV worth streaming: re-route it for free — no retry
      // budget consumed, no rows billed.  Running work evacuated without
      // migration (a drain on the pre-migration path) is preempted
      // instead: its KV releases here and the full context re-prefills on
      // a peer — lossless, but the recomputed rows are the price live
      // migration exists to avoid.
      std::int64_t gen = 0;
      sim::SimTime last{};
      if (const auto d = rep.sched->extract(sid)) {
        gen = d->generated;
        last = d->last_token;
        if (d->lost_rows > 0) sink_.on_preempt(orig, d->lost_rows);
      } else {
        const auto qit = std::find_if(
            rep.stranded.begin(), rep.stranded.end(),
            [&](const Routed& q) { return q.req.id == sid; });
        if (qit == rep.stranded.end()) continue;
        gen = qit->generated;
        last = qit->last_token;
        rep.stranded.erase(qit);
      }
      std::int64_t dropped_orig = 0;
      Track* dt = drop_side(sid, &dropped_orig);
      GAUDI_ASSERT(dt != nullptr, "evacuating an unmapped side");
      // The re-routed side re-dispatches under the original id; if this
      // side was the winner, the successor must inherit that role.
      if (dt->started && dt->winner == sid) dt->winner = dropped_orig;
      Routed resume;
      resume.req = dt->req;
      resume.generated = gen;
      resume.last_token = last;
      queue_.push_back({resume, now});
      ++evac_requeues_;
    }
  }
}

void ClusterRouter::process_drain(sim::SimTime now) {
  if (cfg_.drain_replica >= 0 && !drain_fired_ && cfg_.drain_at <= now) {
    drain_fired_ = true;
    replicas_[static_cast<std::size_t>(cfg_.drain_replica)].draining = true;
  }
  for (Replica& rep : replicas_) {
    if (!rep.draining || rep.drain_done) continue;
    if (rep.up && !rep.busy && !rep.sched->has_work() &&
        rep.stranded.empty()) {
      rep.drain_done = true;
      if (validate_) rep.sched->audit_kv();
    }
  }
}

void ClusterRouter::dispatch_round(sim::SimTime now) {
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->eligible_at > now) {
      ++it;
      continue;
    }
    const std::int64_t r = pick_replica(now, -1);
    if (r < 0) break;  // nothing admits dispatches; retry at the next event
    place(it->routed, r, now);
    it = queue_.erase(it);
  }
}

ClusterReport ClusterRouter::run(const std::vector<Request>& stream) {
  GAUDI_CHECK(!ran_,
              "ClusterRouter::run is one-shot; construct a fresh router per "
              "stream");
  ran_ = true;

  std::vector<Request> pending(stream);
  std::stable_sort(pending.begin(), pending.end(),
                   [](const Request& a, const Request& b) {
                     return a.arrival != b.arrival ? a.arrival < b.arrival
                                                   : a.id < b.id;
                   });
  for (const Request& q : pending) {
    GAUDI_CHECK(q.id >= 0 && q.id < kHedgeIdBase,
                "request ids must stay below the hedge id base");
    sink_.on_offered(q);
  }

  const std::int64_t n = cfg_.replicas;
  std::size_t arr = 0;
  sim::SimTime now = sim::SimTime::zero();

  while (true) {
    // Everything actionable at `now`, in a fixed order: rejoins, then
    // detections, then arrivals, then iteration completions (by replica
    // index), then hedge deadlines, then dispatch, then new iterations.
    for (std::int64_t r = 0; r < n; ++r) {
      Replica& rep = replicas_[static_cast<std::size_t>(r)];
      if (!rep.up && rep.rejoin_time <= now) {
        // Warm spare rejoins: empty KV pool, heartbeats resume.
        rep.up = true;
        rep.suspected = false;
      }
    }
    for (std::int64_t r = 0; r < n; ++r) {
      Replica& rep = replicas_[static_cast<std::size_t>(r)];
      if (rep.death_pending && rep.detect_time <= now) {
        process_detection(r, now);
      }
    }
    while (arr < pending.size() && pending[arr].arrival <= now) {
      const Request& q = pending[arr];
      Track t;
      t.req = q;
      tracks_.emplace(q.id, t);
      queue_.push_back({Routed{q, 0, sim::SimTime::zero()}, q.arrival});
      ++arr;
    }
    for (std::int64_t r = 0; r < n; ++r) {
      Replica& rep = replicas_[static_cast<std::size_t>(r)];
      if (!rep.busy || rep.busy_until > now) continue;
      rep.busy = false;
      const ContinuousBatchScheduler::StepResult result =
          std::move(rep.pending);
      rep.pending = {};
      if (health_on_ && (result.straggled || result.hbm_stalled)) {
        // A fault-stretched iteration delays this replica's heartbeats —
        // the router-visible health signal (serve/migration.*).
        rep.health.record(result.end);
      }
      apply_events(r, result.events);
      if (result.chip_failed) process_death(r, result.end);
    }
    if (health_on_) {
      process_drain(now);
      process_migrations(now);
      evacuation_round(now);
      process_drain(now);
    }
    process_hedges(now);
    dispatch_round(now);
    bool replay = false;
    for (std::int64_t r = 0; r < n; ++r) {
      Replica& rep = replicas_[static_cast<std::size_t>(r)];
      if (!rep.up || rep.busy || !rep.sched->has_work()) continue;
      ContinuousBatchScheduler::StepResult sr = rep.sched->step(now);
      if (!sr.worked) {
        // Only backed-off work was queued, but admission may still have
        // shed or deadline-dropped at `now` — apply those outcomes and
        // replay the at-now phases, since a freed probe slot or finished
        // track can unblock the dispatch round that already ran.
        if (!sr.events.empty()) {
          apply_events(r, sr.events);
          replay = true;
        }
        continue;
      }
      rep.busy = true;
      rep.busy_until = sr.end;
      rep.pending = std::move(sr);
    }
    if (replay) continue;

    if (arr >= pending.size() && tracks_.empty()) break;

    // --- Next event horizon. ---
    bool have = false;
    sim::SimTime next{};
    const auto consider = [&](sim::SimTime t) {
      if (t <= now) return;
      if (!have || t < next) {
        next = t;
        have = true;
      }
    };
    if (arr < pending.size()) consider(pending[arr].arrival);
    for (std::int64_t r = 0; r < n; ++r) {
      Replica& rep = replicas_[static_cast<std::size_t>(r)];
      if (rep.busy) consider(rep.busy_until);
      if (rep.death_pending) consider(rep.detect_time);
      if (!rep.up) consider(rep.rejoin_time);
      if (cfg_.breaker_enabled && rep.breaker == BreakerState::kOpen) {
        consider(rep.open_until);
      }
      if (rep.up && !rep.busy && rep.sched->has_work()) {
        if (const std::optional<sim::SimTime> wake = rep.sched->next_wake()) {
          consider(*wake);
        }
      }
    }
    for (const QueueEntry& q : queue_) consider(q.eligible_at);
    for (const HedgeTimer& h : hedges_) consider(h.fire);
    if (health_on_) {
      if (cfg_.drain_replica >= 0 && !drain_fired_) consider(cfg_.drain_at);
      for (const Migration& m : migrations_) consider(m.done_at);
      if (cfg_.migration.enabled) {
        // A degraded replica re-enters rotation when enough health events
        // age out of the window; without this instant on the horizon a
        // fleet that is all-degraded would stall instead of recovering.
        for (const Replica& rep : replicas_) {
          if (!rep.health.degraded(now)) continue;
          if (const auto decay = rep.health.next_decay(now)) consider(*decay);
        }
      }
    }
    if (!have) {
      std::ostringstream dump;
      dump << "cluster stalled with " << tracks_.size()
           << " unresolved requests and no future event";
      dump << "; queue=" << queue_.size() << " now=" << now.ps();
      for (std::size_t r = 0; r < replicas_.size(); ++r) {
        const Replica& rep = replicas_[r];
        dump << " [r" << r << " up=" << rep.up << " susp=" << rep.suspected
             << " busy=" << rep.busy << " dp=" << rep.death_pending
             << " brk=" << static_cast<int>(rep.breaker)
             << " probe=" << rep.probe_live
             << " load=" << rep.sched->load()
             << " work=" << rep.sched->has_work()
             << " stranded=" << rep.stranded.size() << "]";
      }
      for (const auto& [orig, t] : tracks_) {
        dump << " {track " << orig << " attempts=" << t.attempts
             << " started=" << t.started << " hedged=" << t.hedged
             << " winner=" << t.winner << " sides=";
        for (const auto& [sid, sr] : t.sides) dump << sid << "@r" << sr << ",";
        dump << "}";
      }
      throw sim::InternalError(dump.str());
    }
    GAUDI_ASSERT(next > now, "cluster failed to advance time");
    now = next;
  }

  GAUDI_ASSERT(tracks_.empty() && side_to_orig_.empty(),
               "every offered request must end in exactly one typed outcome");

  ClusterReport report;
  report.summary = sink_.summary(now);
  report.requests = sink_.requests();
  report.replicas = n;
  report.policy = cfg_.policy;
  report.faults_enabled = cfg_.fault_profile.any_rate_positive();
  report.hedging_enabled = cfg_.hedge_budget > sim::SimTime::zero();
  report.chip_failures = chip_failures_;
  report.failovers = failovers_;
  report.hedges_launched = hedges_launched_;
  report.hedge_wins = hedge_wins_;
  report.hedge_wasted_tokens = hedge_wasted_;
  report.breaker_opens = breaker_opens_;
  report.deadline_drops = deadline_drops_;
  report.migration_enabled = cfg_.migration.enabled;
  report.drain_enabled = cfg_.drain_replica >= 0;
  report.drain_replica = cfg_.drain_replica;
  report.drain_completed =
      report.drain_enabled &&
      replicas_[static_cast<std::size_t>(cfg_.drain_replica)].drain_done;
  report.migrations_started = migrations_started_;
  report.migrations_completed = migrations_completed_;
  report.migrations_aborted = migrations_aborted_;
  report.migrated_rows = migrated_rows_;
  report.migrated_blocks = migrated_blocks_;
  report.migration_link_retries = migration_link_retries_;
  report.migration_time = migration_time_;
  report.evac_requeues = evac_requeues_;
  report.per_replica.reserve(replicas_.size());
  for (Replica& rep : replicas_) {
    rep.stats.iterations = rep.sched->iterations();
    report.per_replica.push_back(rep.stats);
  }
  return report;
}

std::string ClusterReport::to_report() const {
  std::ostringstream os;
  os << summary.to_report();
  os << "cluster:  " << replicas << " replicas ("
     << load_balance_policy_name(policy) << "), " << failovers
     << " failovers, " << breaker_opens << " breaker opens\n";
  if (hedging_enabled) {
    const double win_rate =
        hedges_launched > 0 ? static_cast<double>(hedge_wins) /
                                  static_cast<double>(hedges_launched)
                            : std::nan("");
    os << "hedges:   " << hedges_launched << " launched, " << hedge_wins
       << " won (" << pct(win_rate) << "), " << hedge_wasted_tokens
       << " rows wasted by losers\n";
  }
  if (faults_enabled) {
    // Rendered only when the injector is enabled so a disabled injector
    // stays byte-identical to a fault-free configuration.
    os << "faults:   " << chip_failures << " chip failures across the fleet\n";
  }
  if (migration_enabled) {
    os << "migrate:  " << migrations_started << " started, "
       << migrations_completed << " cut over, " << migrations_aborted
       << " aborted; " << migrated_rows << " rows kept ("
       << migrated_blocks << " blocks, " << migration_link_retries
       << " link retries, " << sim::to_string(migration_time)
       << " on the wire), " << evac_requeues << " queue evacuations\n";
  }
  if (drain_enabled) {
    os << "drain:    replica " << drain_replica << " "
       << (drain_completed ? "drained cleanly" : "still draining at end");
    if (!migration_enabled) {
      os << ", " << evac_requeues << " queue evacuations";
    }
    os << "\n";
  }
  for (std::size_t r = 0; r < per_replica.size(); ++r) {
    const ReplicaStats& s = per_replica[r];
    const double avail =
        s.dispatched > 0 ? static_cast<double>(s.completed) /
                               static_cast<double>(s.dispatched)
                         : std::nan("");
    os << "replica " << r << ": " << s.dispatched << " dispatched, "
       << s.completed << " completed, " << s.chip_failures
       << " chip failures, " << s.failed_over
       << " failed over, availability " << pct(avail);
    if (migration_enabled || drain_enabled) {
      os << ", " << s.migrated_in << " migrated in, " << s.migrated_out
         << " out";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace gaudi::serve

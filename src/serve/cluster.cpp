#include "serve/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "sim/error.hpp"
#include "sim/rng.hpp"

namespace gaudi::serve {

namespace {

/// Side ids of hedged duplicates live above this base so they can never
/// collide with stream request ids (validated at run()).
constexpr std::int64_t kHedgeIdBase = std::int64_t{1} << 40;

std::string pct(double v) {
  if (!std::isfinite(v)) return "n/a";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1f%%", v * 100.0);
  return buf;
}

}  // namespace

const char* load_balance_policy_name(LoadBalancePolicy p) {
  switch (p) {
    case LoadBalancePolicy::kRoundRobin: return "round-robin";
    case LoadBalancePolicy::kJoinShortestQueue: return "jsq";
    case LoadBalancePolicy::kLeastKvLoad: return "least-kv";
  }
  return "unknown";
}

LoadBalancePolicy parse_load_balance_policy(const std::string& name) {
  if (name == "round-robin") return LoadBalancePolicy::kRoundRobin;
  if (name == "jsq") return LoadBalancePolicy::kJoinShortestQueue;
  if (name == "least-kv") return LoadBalancePolicy::kLeastKvLoad;
  throw sim::InvalidArgument("unknown load-balance policy '" + name +
                             "' (expected round-robin | jsq | least-kv)");
}

ClusterRouter::ClusterRouter(const graph::Runtime& rt, ClusterConfig cfg)
    : rt_(rt), cfg_(std::move(cfg)) {
  GAUDI_CHECK(cfg_.replicas >= 1, "a cluster needs at least one replica");
  GAUDI_CHECK(!cfg_.replica.faults.enabled(),
              "cluster replicas draw fault streams from "
              "ClusterConfig::fault_profile, not ServeConfig::faults");
  GAUDI_CHECK(cfg_.suspicion_timeout > sim::SimTime::zero(),
              "suspicion_timeout must be positive");
  GAUDI_CHECK(cfg_.heartbeat_interval >= sim::SimTime::zero(),
              "heartbeat_interval must be >= 0");
  GAUDI_CHECK(cfg_.hedge_budget >= sim::SimTime::zero(),
              "hedge_budget must be >= 0");
  if (cfg_.breaker_enabled) {
    GAUDI_CHECK(cfg_.breaker_window >= 1, "breaker_window must be >= 1");
    GAUDI_CHECK(cfg_.breaker_min_samples >= 1 &&
                    cfg_.breaker_min_samples <= cfg_.breaker_window,
                "breaker_min_samples must be in [1, breaker_window]");
    GAUDI_CHECK(cfg_.breaker_threshold > 0.0 && cfg_.breaker_threshold <= 1.0,
                "breaker_threshold must be in (0, 1]");
    GAUDI_CHECK(cfg_.breaker_cooldown > sim::SimTime::zero(),
                "breaker_cooldown must be positive");
  }
  const bool faults_on = cfg_.fault_profile.any_rate_positive();
  replicas_.resize(static_cast<std::size_t>(cfg_.replicas));
  for (std::int64_t r = 0; r < cfg_.replicas; ++r) {
    ServeConfig rcfg = cfg_.replica;
    if (faults_on) {
      // One cluster seed, N decorrelated per-replica streams: splitmix64
      // spreads neighbouring replica indices across the counter-RNG space.
      rcfg.faults = sim::FaultInjector{
          sim::splitmix64(cfg_.fault_seed + static_cast<std::uint64_t>(r) + 1),
          cfg_.fault_profile};
    }
    Replica& rep = replicas_[static_cast<std::size_t>(r)];
    rep.sched = std::make_unique<ContinuousBatchScheduler>(rt_, rcfg);
    rep.sched->bind_cluster();
  }
}

sim::SimTime ClusterRouter::heartbeat_ceil(sim::SimTime t) const {
  const std::int64_t hb = cfg_.heartbeat_interval.ps();
  if (hb <= 0) return t;
  const std::int64_t ticks = (t.ps() + hb - 1) / hb;
  return sim::SimTime::from_ps(ticks * hb);
}

bool ClusterRouter::breaker_allows(Replica& rep, sim::SimTime now) const {
  if (!cfg_.breaker_enabled) return true;
  if (rep.breaker == BreakerState::kOpen && now >= rep.open_until) {
    // Cooldown expired: half-open, awaiting a single probe.
    rep.breaker = BreakerState::kHalfOpen;
    rep.probe_live = false;
    rep.probe_id = -1;
  }
  switch (rep.breaker) {
    case BreakerState::kClosed: return true;
    case BreakerState::kOpen: return false;
    case BreakerState::kHalfOpen: return !rep.probe_live;
  }
  return true;
}

void ClusterRouter::breaker_record(std::int64_t r, bool ok, sim::SimTime now) {
  if (!cfg_.breaker_enabled) return;
  Replica& rep = replicas_[static_cast<std::size_t>(r)];
  const auto open_now = [&] {
    rep.breaker = BreakerState::kOpen;
    rep.open_until = now + cfg_.breaker_cooldown;
    rep.outcomes.clear();
    rep.probe_live = false;
    rep.probe_id = -1;
    rep.stats.breaker_opens += 1;
    ++breaker_opens_;
  };
  switch (rep.breaker) {
    case BreakerState::kClosed: {
      rep.outcomes.push_back(ok);
      while (static_cast<std::int64_t>(rep.outcomes.size()) >
             cfg_.breaker_window) {
        rep.outcomes.pop_front();
      }
      if (ok) return;
      const auto samples = static_cast<std::int64_t>(rep.outcomes.size());
      if (samples < cfg_.breaker_min_samples) return;
      std::int64_t failures = 0;
      for (const bool o : rep.outcomes) failures += o ? 0 : 1;
      if (static_cast<double>(failures) >=
          cfg_.breaker_threshold * static_cast<double>(samples)) {
        open_now();
      }
      return;
    }
    case BreakerState::kHalfOpen: {
      // The probe's fate decides; a failure from any lingering pre-open
      // request is equally disqualifying.
      if (!ok) {
        open_now();
      } else if (rep.probe_live) {
        rep.breaker = BreakerState::kClosed;
        rep.outcomes.clear();
        rep.probe_live = false;
        rep.probe_id = -1;
      }
      return;
    }
    case BreakerState::kOpen:
      return;  // outcomes of pre-open residue carry no new information
  }
}

std::int64_t ClusterRouter::pick_replica(sim::SimTime now,
                                         std::int64_t exclude) {
  const std::int64_t n = cfg_.replicas;
  const auto eligible = [&](std::int64_t idx) {
    Replica& rep = replicas_[static_cast<std::size_t>(idx)];
    // An undetected-dead replica is still believed up: dispatches to it
    // strand until the suspicion timeout — the cost of slow detection.
    return idx != exclude && !rep.suspected && breaker_allows(rep, now);
  };
  switch (cfg_.policy) {
    case LoadBalancePolicy::kRoundRobin: {
      for (std::int64_t k = 0; k < n; ++k) {
        const std::int64_t idx = (rr_cursor_ + k) % n;
        if (!eligible(idx)) continue;
        rr_cursor_ = idx + 1;
        return idx;
      }
      return -1;
    }
    case LoadBalancePolicy::kJoinShortestQueue: {
      std::int64_t best = -1;
      std::int64_t best_load = 0;
      for (std::int64_t idx = 0; idx < n; ++idx) {
        if (!eligible(idx)) continue;
        const Replica& rep = replicas_[static_cast<std::size_t>(idx)];
        const std::int64_t load =
            rep.sched->load() +
            static_cast<std::int64_t>(rep.stranded.size());
        if (best < 0 || load < best_load) {
          best = idx;
          best_load = load;
        }
      }
      return best;
    }
    case LoadBalancePolicy::kLeastKvLoad: {
      std::int64_t best = -1;
      std::int64_t best_free = -1;
      for (std::int64_t idx = 0; idx < n; ++idx) {
        if (!eligible(idx)) continue;
        const std::int64_t free =
            replicas_[static_cast<std::size_t>(idx)].sched->free_kv_blocks();
        if (free > best_free) {
          best = idx;
          best_free = free;
        }
      }
      return best;
    }
  }
  return -1;
}

void ClusterRouter::place(const Routed& routed, std::int64_t r,
                          sim::SimTime now) {
  Replica& rep = replicas_[static_cast<std::size_t>(r)];
  const std::int64_t sid = routed.req.id;
  const std::int64_t orig = sid >= kHedgeIdBase ? sid - kHedgeIdBase : sid;
  Track& t = tracks_.at(orig);
  t.sides[sid] = r;
  side_to_orig_[sid] = orig;
  rep.stats.dispatched += 1;
  if (cfg_.breaker_enabled && rep.breaker == BreakerState::kHalfOpen &&
      !rep.probe_live) {
    rep.probe_live = true;
    rep.probe_id = orig;
  }
  if (!rep.up) {
    // The chip is dead and the router does not know yet: the request is
    // lost on the wire until the suspicion timeout fails it over.
    rep.stranded.push_back(routed);
  } else if (routed.generated >= 1) {
    rep.sched->enqueue_resume(routed.req, routed.generated, routed.last_token,
                              now);
  } else {
    rep.sched->enqueue(routed.req);
  }
  if (sid == orig) {
    t.dispatch_time = now;
    if (cfg_.hedge_budget > sim::SimTime::zero() && !t.hedged && !t.started &&
        routed.generated == 0) {
      hedges_.push_back({now + cfg_.hedge_budget, orig, now});
    }
  }
}

ClusterRouter::Track* ClusterRouter::drop_side(std::int64_t sid,
                                               std::int64_t* orig_out) {
  const auto sit = side_to_orig_.find(sid);
  if (sit == side_to_orig_.end()) return nullptr;
  const std::int64_t orig = sit->second;
  side_to_orig_.erase(sit);
  Track& t = tracks_.at(orig);
  t.sides.erase(sid);
  *orig_out = orig;
  return &t;
}

void ClusterRouter::cancel_side(std::int64_t sid, std::int64_t r) {
  std::int64_t orig = 0;
  if (drop_side(sid, &orig) == nullptr) return;
  Replica& rep = replicas_[static_cast<std::size_t>(r)];
  std::int64_t rows = rep.sched->cancel(sid);
  if (rows < 0) {
    // Not in the machine: the side strands on a dead replica's wire.
    rows = 0;
    rep.stranded.erase(
        std::remove_if(rep.stranded.begin(), rep.stranded.end(),
                       [&](const Routed& q) { return q.req.id == sid; }),
        rep.stranded.end());
  }
  if (rows > 0) {
    sink_.on_wasted(rows);
    hedge_wasted_ += rows;
  }
  // A cancelled probe proves nothing about the replica: allow a new probe.
  if (cfg_.breaker_enabled && rep.breaker == BreakerState::kHalfOpen &&
      rep.probe_live && rep.probe_id == orig) {
    rep.probe_live = false;
    rep.probe_id = -1;
  }
}

void ClusterRouter::finish_track(std::int64_t orig) {
  const auto it = tracks_.find(orig);
  GAUDI_ASSERT(it != tracks_.end(), "finishing an unknown request");
  for (const auto& [sid, r] : it->second.sides) {
    (void)r;
    side_to_orig_.erase(sid);
  }
  tracks_.erase(it);
  // A probe that ends in a non-breaker outcome (shed, rejected, dropped)
  // proves nothing: free the half-open slot or the replica wedges shut.
  for (Replica& rep : replicas_) {
    if (rep.breaker == BreakerState::kHalfOpen && rep.probe_live &&
        rep.probe_id == orig) {
      rep.probe_live = false;
      rep.probe_id = -1;
    }
  }
}

void ClusterRouter::process_death(std::int64_t r, sim::SimTime now) {
  Replica& rep = replicas_[static_cast<std::size_t>(r)];
  rep.up = false;
  rep.death_pending = true;
  rep.dead_work = rep.sched->drain_all();
  rep.rejoin_time = now + cfg_.replica.chip_restart;
  // Detection: suspicion timeout, or the restarted chip's first heartbeat
  // announcing a new incarnation — whichever heartbeat tick comes first.
  rep.detect_time = heartbeat_ceil(
      now + std::min(cfg_.suspicion_timeout, cfg_.replica.chip_restart));
  ++chip_failures_;
  rep.stats.chip_failures += 1;
  rep.stats.down_time += cfg_.replica.chip_restart;
}

void ClusterRouter::process_detection(std::int64_t r, sim::SimTime now) {
  Replica& rep = replicas_[static_cast<std::size_t>(r)];
  rep.death_pending = false;
  if (!rep.up) rep.suspected = true;

  std::vector<std::pair<Routed, std::int64_t>> lost;  // (side, wasted rows)
  lost.reserve(rep.dead_work.size() + rep.stranded.size());
  for (const ContinuousBatchScheduler::DrainedRequest& d : rep.dead_work) {
    lost.push_back({Routed{d.req, d.generated, d.last_token}, d.lost_rows});
  }
  for (const Routed& q : rep.stranded) lost.push_back({q, 0});
  rep.dead_work.clear();
  rep.stranded.clear();

  for (const auto& [side, wasted] : lost) {
    std::int64_t orig = 0;
    Track* t = drop_side(side.req.id, &orig);
    if (t == nullptr) continue;  // cancelled before the chip died
    breaker_record(r, false, now);
    rep.stats.failed_over += 1;
    const bool is_loser = t->started && side.req.id != t->winner;
    if (is_loser || !t->sides.empty()) {
      // A twin survives on another replica (a cancelled-too-late hedge
      // loser, or an unstarted hedge pair losing one side): the surviving
      // side carries the request, only the computed rows are lost.
      if (wasted > 0) {
        sink_.on_wasted(wasted);
        hedge_wasted_ += wasted;
      }
      continue;
    }
    // Last live side lost: fail over with a full re-prefill, consuming one
    // unit of the retry budget — or end kFailed when it is spent.
    t->attempts += 1;
    if (t->attempts > cfg_.replica.retry_max) {
      sink_.on_fail(orig, now, wasted);
      finish_track(orig);
      continue;
    }
    sink_.on_fault_retry(orig, wasted);
    // The re-dispatched side (id = orig) carries the request from here on:
    // its token events must count, and a later chip loss must read it as
    // the last live side — not as a dead hedge winner's leftover twin.
    if (t->started) t->winner = orig;
    ++failovers_;
    Routed resume;
    resume.req = t->req;
    resume.generated = side.generated;
    resume.last_token = side.last_token;
    queue_.push_back(
        {resume, now + retry_backoff_delay(cfg_.replica.retry_backoff,
                                           cfg_.replica.retry_backoff_max,
                                           t->attempts)});
  }
}

void ClusterRouter::apply_events(std::int64_t r,
                                 const std::vector<ReplicaEvent>& events) {
  Replica& rep = replicas_[static_cast<std::size_t>(r)];
  for (const ReplicaEvent& e : events) {
    const auto sit = side_to_orig_.find(e.id);
    if (sit == side_to_orig_.end()) continue;  // stale side (cancelled)
    const std::int64_t orig = sit->second;
    Track& t = tracks_.at(orig);
    switch (e.kind) {
      case ReplicaEventKind::kFirstToken: {
        if (t.started) {
          // Photo finish: the twin won at this same instant and was
          // processed first (replica-index order); this side loses.
          cancel_side(e.id, r);
          break;
        }
        t.started = true;
        t.winner = e.id;
        sink_.on_first_token(orig, e.at);
        if (e.id != orig) ++hedge_wins_;
        std::vector<std::pair<std::int64_t, std::int64_t>> losers;
        for (const auto& [sid, sr] : t.sides) {
          if (sid != e.id) losers.push_back({sid, sr});
        }
        for (const auto& [sid, sr] : losers) cancel_side(sid, sr);
        break;
      }
      case ReplicaEventKind::kToken:
        if (t.winner == e.id) {
          sink_.on_token(orig, sim::SimTime::from_ps(e.aux));
        }
        break;
      case ReplicaEventKind::kComplete: {
        sink_.on_complete(orig, e.at);
        rep.stats.completed += 1;
        if (cfg_.breaker_enabled && rep.breaker == BreakerState::kHalfOpen &&
            rep.probe_live && rep.probe_id != orig) {
          // Pre-open residue completing is healthy but not the probe.
          finish_track(orig);
          break;
        }
        breaker_record(r, true, e.at);
        finish_track(orig);
        break;
      }
      case ReplicaEventKind::kPreempt:
        sink_.on_preempt(orig, e.aux);
        break;
      case ReplicaEventKind::kTimeout:
      case ReplicaEventKind::kDrop:
      case ReplicaEventKind::kShed:
      case ReplicaEventKind::kReject: {
        std::int64_t dropped_orig = 0;
        Track* dt = drop_side(e.id, &dropped_orig);
        GAUDI_ASSERT(dt != nullptr, "terminal event for an unmapped side");
        if (e.kind == ReplicaEventKind::kTimeout) {
          breaker_record(r, false, e.at);
        }
        if (!dt->sides.empty()) break;  // the twin carries the request on
        switch (e.kind) {
          case ReplicaEventKind::kTimeout:
            sink_.on_timeout(dropped_orig, e.at);
            break;
          case ReplicaEventKind::kDrop:
            sink_.on_drop(dropped_orig, e.at);
            ++deadline_drops_;
            break;
          case ReplicaEventKind::kShed:
            sink_.on_shed(dropped_orig, e.at);
            break;
          default:
            sink_.on_reject(dropped_orig, e.at);
            break;
        }
        finish_track(dropped_orig);
        break;
      }
    }
  }
}

void ClusterRouter::process_hedges(sim::SimTime now) {
  std::vector<HedgeTimer> due;
  for (auto it = hedges_.begin(); it != hedges_.end();) {
    if (it->fire <= now) {
      due.push_back(*it);
      it = hedges_.erase(it);
    } else {
      ++it;
    }
  }
  std::stable_sort(due.begin(), due.end(),
                   [](const HedgeTimer& a, const HedgeTimer& b) {
                     return a.fire != b.fire ? a.fire < b.fire
                                             : a.orig < b.orig;
                   });
  for (const HedgeTimer& timer : due) {
    const auto tit = tracks_.find(timer.orig);
    if (tit == tracks_.end()) continue;
    Track& t = tit->second;
    if (t.started || t.hedged) continue;
    if (t.dispatch_time != timer.armed_at) continue;  // re-armed since
    if (t.sides.size() != 1) continue;  // back in the router queue
    const std::int64_t primary = t.sides.begin()->second;
    t.hedged = true;  // one duplicate per request, launched or not
    const std::int64_t r = pick_replica(now, primary);
    if (r < 0) continue;  // no second replica admits work right now
    Routed copy;
    copy.req = t.req;
    copy.req.id = t.req.id + kHedgeIdBase;
    ++hedges_launched_;
    place(copy, r, now);
  }
}

void ClusterRouter::dispatch_round(sim::SimTime now) {
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->eligible_at > now) {
      ++it;
      continue;
    }
    const std::int64_t r = pick_replica(now, -1);
    if (r < 0) break;  // nothing admits dispatches; retry at the next event
    place(it->routed, r, now);
    it = queue_.erase(it);
  }
}

ClusterReport ClusterRouter::run(const std::vector<Request>& stream) {
  GAUDI_CHECK(!ran_,
              "ClusterRouter::run is one-shot; construct a fresh router per "
              "stream");
  ran_ = true;

  std::vector<Request> pending(stream);
  std::stable_sort(pending.begin(), pending.end(),
                   [](const Request& a, const Request& b) {
                     return a.arrival != b.arrival ? a.arrival < b.arrival
                                                   : a.id < b.id;
                   });
  for (const Request& q : pending) {
    GAUDI_CHECK(q.id >= 0 && q.id < kHedgeIdBase,
                "request ids must stay below the hedge id base");
    sink_.on_offered(q);
  }

  const std::int64_t n = cfg_.replicas;
  std::size_t arr = 0;
  sim::SimTime now = sim::SimTime::zero();

  while (true) {
    // Everything actionable at `now`, in a fixed order: rejoins, then
    // detections, then arrivals, then iteration completions (by replica
    // index), then hedge deadlines, then dispatch, then new iterations.
    for (std::int64_t r = 0; r < n; ++r) {
      Replica& rep = replicas_[static_cast<std::size_t>(r)];
      if (!rep.up && rep.rejoin_time <= now) {
        // Warm spare rejoins: empty KV pool, heartbeats resume.
        rep.up = true;
        rep.suspected = false;
      }
    }
    for (std::int64_t r = 0; r < n; ++r) {
      Replica& rep = replicas_[static_cast<std::size_t>(r)];
      if (rep.death_pending && rep.detect_time <= now) {
        process_detection(r, now);
      }
    }
    while (arr < pending.size() && pending[arr].arrival <= now) {
      const Request& q = pending[arr];
      Track t;
      t.req = q;
      tracks_.emplace(q.id, t);
      queue_.push_back({Routed{q, 0, sim::SimTime::zero()}, q.arrival});
      ++arr;
    }
    for (std::int64_t r = 0; r < n; ++r) {
      Replica& rep = replicas_[static_cast<std::size_t>(r)];
      if (!rep.busy || rep.busy_until > now) continue;
      rep.busy = false;
      const ContinuousBatchScheduler::StepResult result =
          std::move(rep.pending);
      rep.pending = {};
      apply_events(r, result.events);
      if (result.chip_failed) process_death(r, result.end);
    }
    process_hedges(now);
    dispatch_round(now);
    bool replay = false;
    for (std::int64_t r = 0; r < n; ++r) {
      Replica& rep = replicas_[static_cast<std::size_t>(r)];
      if (!rep.up || rep.busy || !rep.sched->has_work()) continue;
      ContinuousBatchScheduler::StepResult sr = rep.sched->step(now);
      if (!sr.worked) {
        // Only backed-off work was queued, but admission may still have
        // shed or deadline-dropped at `now` — apply those outcomes and
        // replay the at-now phases, since a freed probe slot or finished
        // track can unblock the dispatch round that already ran.
        if (!sr.events.empty()) {
          apply_events(r, sr.events);
          replay = true;
        }
        continue;
      }
      rep.busy = true;
      rep.busy_until = sr.end;
      rep.pending = std::move(sr);
    }
    if (replay) continue;

    if (arr >= pending.size() && tracks_.empty()) break;

    // --- Next event horizon. ---
    bool have = false;
    sim::SimTime next{};
    const auto consider = [&](sim::SimTime t) {
      if (t <= now) return;
      if (!have || t < next) {
        next = t;
        have = true;
      }
    };
    if (arr < pending.size()) consider(pending[arr].arrival);
    for (std::int64_t r = 0; r < n; ++r) {
      Replica& rep = replicas_[static_cast<std::size_t>(r)];
      if (rep.busy) consider(rep.busy_until);
      if (rep.death_pending) consider(rep.detect_time);
      if (!rep.up) consider(rep.rejoin_time);
      if (cfg_.breaker_enabled && rep.breaker == BreakerState::kOpen) {
        consider(rep.open_until);
      }
      if (rep.up && !rep.busy && rep.sched->has_work()) {
        if (const std::optional<sim::SimTime> wake = rep.sched->next_wake()) {
          consider(*wake);
        }
      }
    }
    for (const QueueEntry& q : queue_) consider(q.eligible_at);
    for (const HedgeTimer& h : hedges_) consider(h.fire);
    if (!have) {
      std::ostringstream dump;
      dump << "cluster stalled with " << tracks_.size()
           << " unresolved requests and no future event";
      dump << "; queue=" << queue_.size() << " now=" << now.ps();
      for (std::size_t r = 0; r < replicas_.size(); ++r) {
        const Replica& rep = replicas_[r];
        dump << " [r" << r << " up=" << rep.up << " susp=" << rep.suspected
             << " busy=" << rep.busy << " dp=" << rep.death_pending
             << " brk=" << static_cast<int>(rep.breaker)
             << " probe=" << rep.probe_live
             << " load=" << rep.sched->load()
             << " work=" << rep.sched->has_work()
             << " stranded=" << rep.stranded.size() << "]";
      }
      for (const auto& [orig, t] : tracks_) {
        dump << " {track " << orig << " attempts=" << t.attempts
             << " started=" << t.started << " hedged=" << t.hedged
             << " winner=" << t.winner << " sides=";
        for (const auto& [sid, sr] : t.sides) dump << sid << "@r" << sr << ",";
        dump << "}";
      }
      throw sim::InternalError(dump.str());
    }
    GAUDI_ASSERT(next > now, "cluster failed to advance time");
    now = next;
  }

  GAUDI_ASSERT(tracks_.empty() && side_to_orig_.empty(),
               "every offered request must end in exactly one typed outcome");

  ClusterReport report;
  report.summary = sink_.summary(now);
  report.requests = sink_.requests();
  report.replicas = n;
  report.policy = cfg_.policy;
  report.faults_enabled = cfg_.fault_profile.any_rate_positive();
  report.hedging_enabled = cfg_.hedge_budget > sim::SimTime::zero();
  report.chip_failures = chip_failures_;
  report.failovers = failovers_;
  report.hedges_launched = hedges_launched_;
  report.hedge_wins = hedge_wins_;
  report.hedge_wasted_tokens = hedge_wasted_;
  report.breaker_opens = breaker_opens_;
  report.deadline_drops = deadline_drops_;
  report.per_replica.reserve(replicas_.size());
  for (Replica& rep : replicas_) {
    rep.stats.iterations = rep.sched->iterations();
    report.per_replica.push_back(rep.stats);
  }
  return report;
}

std::string ClusterReport::to_report() const {
  std::ostringstream os;
  os << summary.to_report();
  os << "cluster:  " << replicas << " replicas ("
     << load_balance_policy_name(policy) << "), " << failovers
     << " failovers, " << breaker_opens << " breaker opens\n";
  if (hedging_enabled) {
    const double win_rate =
        hedges_launched > 0 ? static_cast<double>(hedge_wins) /
                                  static_cast<double>(hedges_launched)
                            : std::nan("");
    os << "hedges:   " << hedges_launched << " launched, " << hedge_wins
       << " won (" << pct(win_rate) << "), " << hedge_wasted_tokens
       << " rows wasted by losers\n";
  }
  if (faults_enabled) {
    // Rendered only when the injector is enabled so a disabled injector
    // stays byte-identical to a fault-free configuration.
    os << "faults:   " << chip_failures << " chip failures across the fleet\n";
  }
  for (std::size_t r = 0; r < per_replica.size(); ++r) {
    const ReplicaStats& s = per_replica[r];
    const double avail =
        s.dispatched > 0 ? static_cast<double>(s.completed) /
                               static_cast<double>(s.dispatched)
                         : std::nan("");
    os << "replica " << r << ": " << s.dispatched << " dispatched, "
       << s.completed << " completed, " << s.chip_failures
       << " chip failures, " << s.failed_over
       << " failed over, availability " << pct(avail) << "\n";
  }
  return os.str();
}

}  // namespace gaudi::serve

// SLO metrics for the serving simulator.
//
// Serving quality is distributional: the paper-style mean utilization
// numbers say nothing about the tail a user-facing SLO is written against.
// The sink collects per-request time-to-first-token (TTFT), per-token
// inter-token latencies (ITL), and completion records, and reduces them to
// p50/p99 tails, throughput, and goodput-under-deadline.  Everything is a
// pure function of the recorded samples — same simulation, same bytes out.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "serve/request.hpp"

namespace gaudi::serve {

/// Nearest-rank percentile of `samples` (p in [0, 100]): the smallest
/// sample at or above the p-th fraction of the sorted data, computed as
/// sorted[ceil(p/100 * N)] with rank clamped to [1, N].  Empty input
/// returns a quiet NaN (rendered as "n/a" downstream), never throws;
/// a single sample is every percentile of itself.
[[nodiscard]] double percentile(std::vector<double> samples, double p);

/// Terminal record of one request.
struct RequestMetrics {
  std::int64_t id = 0;
  RequestOutcome outcome = RequestOutcome::kCompleted;
  sim::SimTime arrival{};
  sim::SimTime first_token{};  ///< absolute time; zero if never reached
  sim::SimTime finish{};       ///< completion/rejection/drop time
  std::int64_t tokens_out = 0;
  std::int64_t preemptions = 0;
  bool met_deadline = false;  ///< completed within its budget (or no budget)
};

/// Aggregated serving report.
struct ServeSummary {
  std::int64_t offered = 0;
  std::int64_t completed = 0;
  std::int64_t rejected = 0;
  std::int64_t dropped = 0;
  std::int64_t preemptions = 0;
  std::int64_t tokens_out = 0;
  /// Prompt/output tokens re-prefilled because of preemption.
  std::int64_t recomputed_tokens = 0;
  std::int64_t deadline_met = 0;   ///< completed requests inside their budget
  double ttft_p50_ms = 0.0;
  double ttft_p99_ms = 0.0;
  double ttft_mean_ms = 0.0;
  double itl_p50_ms = 0.0;
  double itl_p99_ms = 0.0;
  double throughput_tok_s = 0.0;  ///< generated tokens / makespan
  double goodput_tok_s = 0.0;     ///< tokens of deadline-met requests / makespan
  sim::SimTime makespan{};

  /// Deterministic multi-line rendering (the byte-comparable artifact).
  [[nodiscard]] std::string to_report() const;
};

/// Collects per-request events during a simulation and reduces them.
class MetricsSink {
 public:
  void on_offered(const Request& r);
  void on_first_token(std::int64_t id, sim::SimTime now);
  /// One generated token; `gap` is the latency since the previous token of
  /// the same request (the ITL sample).
  void on_token(std::int64_t id, sim::SimTime gap);
  void on_preempt(std::int64_t id, std::int64_t recomputed_tokens);
  void on_complete(std::int64_t id, sim::SimTime now);
  void on_reject(std::int64_t id, sim::SimTime now);
  void on_drop(std::int64_t id, sim::SimTime now);

  [[nodiscard]] ServeSummary summary(sim::SimTime makespan) const;
  /// Per-request records sorted by id (terminal states only).
  [[nodiscard]] std::vector<RequestMetrics> requests() const;

 private:
  RequestMetrics& slot(std::int64_t id);
  std::vector<RequestMetrics> records_;  ///< indexed by offer order
  std::map<std::int64_t, std::size_t> index_;
  std::vector<sim::SimTime> deadlines_;
  std::vector<double> ttft_ms_;
  std::vector<double> itl_ms_;
  std::int64_t preemptions_ = 0;
  std::int64_t recomputed_tokens_ = 0;
};

}  // namespace gaudi::serve

// SLO metrics for the serving simulator.
//
// Serving quality is distributional: the paper-style mean utilization
// numbers say nothing about the tail a user-facing SLO is written against.
// The sink collects per-request time-to-first-token (TTFT), per-token
// inter-token latencies (ITL), and completion records, and reduces them to
// p50/p99 tails, throughput, and goodput-under-deadline.  Everything is a
// pure function of the recorded samples — same simulation, same bytes out.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "serve/request.hpp"

namespace gaudi::serve {

/// Nearest-rank percentile of `samples` (p in [0, 100]): the smallest
/// sample at or above the p-th fraction of the sorted data, computed as
/// sorted[ceil(p/100 * N)] with rank clamped to [1, N].  Empty input
/// returns a quiet NaN (rendered as "n/a" downstream), never throws;
/// a single sample is every percentile of itself.
[[nodiscard]] double percentile(std::vector<double> samples, double p);

/// Terminal record of one request.
struct RequestMetrics {
  std::int64_t id = 0;
  RequestOutcome outcome = RequestOutcome::kCompleted;
  sim::SimTime arrival{};
  sim::SimTime first_token{};  ///< absolute time; zero if never reached
  sim::SimTime finish{};       ///< completion/rejection/drop/abort time
  std::int64_t tokens_out = 0;
  std::int64_t preemptions = 0;
  std::int64_t fault_retries = 0;  ///< chip-failure re-queues survived
  std::int64_t migrations = 0;     ///< live KV migrations survived (cluster)
  bool met_deadline = false;  ///< completed within its budget (or no budget)
};

/// Aggregated serving report.
struct ServeSummary {
  std::int64_t offered = 0;
  std::int64_t completed = 0;
  std::int64_t rejected = 0;
  std::int64_t dropped = 0;
  std::int64_t shed = 0;       ///< refused by overload control
  std::int64_t timed_out = 0;  ///< aborted by the TTFT/ITL watchdog
  std::int64_t failed = 0;     ///< chip failures exhausted the retry budget
  std::int64_t preemptions = 0;
  std::int64_t fault_retries = 0;  ///< chip-failure re-queues across requests
  std::int64_t tokens_out = 0;
  /// Prompt/output tokens re-prefilled because of preemption.
  std::int64_t recomputed_tokens = 0;
  /// KV rows computed and then invalidated by chip failures (in-flight work
  /// thrown away, whether or not the request later completed).
  std::int64_t wasted_tokens = 0;
  /// Live KV migrations across requests, and the KV rows they carried over
  /// the fabric instead of re-prefilling (cluster mode; see
  /// serve/migration.*).  Not rendered by to_report() — the cluster report
  /// owns the migration lines — so single-replica bytes are unchanged.
  std::int64_t migrations = 0;
  std::int64_t migrated_rows = 0;
  std::int64_t deadline_met = 0;   ///< completed requests inside their budget
  /// completed / (offered - rejected): the fraction of admissible requests
  /// the service answered.  NaN (rendered "n/a") when nothing was admissible.
  double availability = 0.0;
  double ttft_p50_ms = 0.0;
  double ttft_p99_ms = 0.0;
  double ttft_mean_ms = 0.0;
  double itl_p50_ms = 0.0;
  double itl_p99_ms = 0.0;
  double throughput_tok_s = 0.0;  ///< generated tokens / makespan
  double goodput_tok_s = 0.0;     ///< tokens of deadline-met requests / makespan
  sim::SimTime makespan{};

  /// Deterministic multi-line rendering (the byte-comparable artifact).
  [[nodiscard]] std::string to_report() const;
};

/// Collects per-request events during a simulation and reduces them.
///
/// TTFT/ITL samples are kept per request and only the samples of *completed*
/// requests enter the percentile reductions: a request aborted mid-stream
/// (watchdog, exhausted retry budget, deadline drop after preemption) must
/// not pollute the latency distribution the SLO is written against — its
/// fate is counted in the per-outcome breakdown instead.
class MetricsSink {
 public:
  void on_offered(const Request& r);
  void on_first_token(std::int64_t id, sim::SimTime now);
  /// One generated token; `gap` is the latency since the previous token of
  /// the same request (the ITL sample).
  void on_token(std::int64_t id, sim::SimTime gap);
  void on_preempt(std::int64_t id, std::int64_t recomputed_tokens);
  void on_complete(std::int64_t id, sim::SimTime now);
  void on_reject(std::int64_t id, sim::SimTime now);
  void on_drop(std::int64_t id, sim::SimTime now);
  void on_shed(std::int64_t id, sim::SimTime now);
  void on_timeout(std::int64_t id, sim::SimTime now);
  /// A chip failure invalidated `wasted_rows` of the request's computed KV;
  /// the request re-queues for another attempt.
  void on_fault_retry(std::int64_t id, std::int64_t wasted_rows);
  /// A chip failure invalidated `wasted_rows` and the retry budget is spent:
  /// the request ends kFailed.
  void on_fail(std::int64_t id, sim::SimTime now, std::int64_t wasted_rows);
  /// Computed KV rows thrown away without a retry or terminal failure — a
  /// cancelled hedge loser, or a dead hedge sibling whose twin carries on
  /// (cluster mode).  Aggregate-only: no per-request record changes.
  void on_wasted(std::int64_t rows);
  /// The request's `rows` computed KV rows moved to another replica over
  /// the fabric (live migration): re-prefill work saved, nothing wasted.
  void on_migrated(std::int64_t id, std::int64_t rows);

  [[nodiscard]] ServeSummary summary(sim::SimTime makespan) const;
  /// Per-request records sorted by id (terminal states only).
  [[nodiscard]] std::vector<RequestMetrics> requests() const;

 private:
  /// Per-request latency samples, excluded from the reductions unless the
  /// request completes.
  struct Samples {
    double ttft_ms = 0.0;
    bool has_ttft = false;
    std::vector<double> itl_ms;
  };

  RequestMetrics& slot(std::int64_t id);
  std::vector<RequestMetrics> records_;  ///< indexed by offer order
  std::map<std::int64_t, std::size_t> index_;
  std::vector<sim::SimTime> deadlines_;
  std::vector<Samples> samples_;  ///< parallel to records_
  std::int64_t preemptions_ = 0;
  std::int64_t recomputed_tokens_ = 0;
  std::int64_t fault_retries_ = 0;
  std::int64_t wasted_tokens_ = 0;
  std::int64_t migrations_ = 0;
  std::int64_t migrated_rows_ = 0;
};

}  // namespace gaudi::serve

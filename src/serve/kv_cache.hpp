// Paged KV-cache allocation for multi-tenant serving.
//
// A growing per-request KV cache is the memory problem of LLM serving: a
// contiguous reservation sized for the worst case strands most of HBM, while
// exact-fit reallocation fragments it.  Following vLLM's PagedAttention, the
// pool is carved into fixed-size blocks of `block_tokens` KV rows; a request
// holds an ordered list of blocks and grows one token at a time, wasting at
// most one partial block (internal fragmentation, which this allocator
// accounts for exactly).  The pool's bytes are backed by a real reservation
// in the simulated HBM model (`memory::DeviceAllocator`), so KV capacity
// competes with everything else on the chip and oversized pools fail the
// same way any other allocation does.
//
// Invariants (checked by `audit()`, fuzzed in tests):
//   * every block is owned by exactly one request or on the free list;
//   * free + used + fragmented token slots always sum to pool capacity;
//   * releasing a request returns exactly the blocks it held.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "memory/device_memory.hpp"

namespace gaudi::serve {

struct PagedKvConfig {
  /// KV rows (tokens) per block.
  std::int64_t block_tokens = 64;
  /// Total blocks in the pool.
  std::int64_t num_blocks = 0;
  /// HBM bytes one token's K+V rows occupy across all layers (see
  /// `kv_bytes_per_token`); used to size the backing HBM reservation.
  std::size_t bytes_per_token = 0;
};

/// Occupancy snapshot; all quantities in token slots unless named otherwise.
struct KvStats {
  std::int64_t capacity_tokens = 0;
  std::int64_t used_tokens = 0;        ///< rows actually written
  std::int64_t fragmented_tokens = 0;  ///< allocated-but-unused slots
  std::int64_t free_tokens = 0;        ///< slots on the free list
  std::int64_t used_blocks = 0;
  std::int64_t free_blocks = 0;
};

class PagedKvAllocator {
 public:
  /// Carves `cfg.num_blocks` blocks out of `hbm` (one pool reservation of
  /// num_blocks * block_tokens * bytes_per_token bytes, released on
  /// destruction).  Throws sim::ResourceExhausted when HBM cannot back the
  /// pool.  A null `hbm` skips the backing reservation (unit tests).
  explicit PagedKvAllocator(PagedKvConfig cfg,
                            memory::DeviceAllocator* hbm = nullptr);
  ~PagedKvAllocator();

  PagedKvAllocator(const PagedKvAllocator&) = delete;
  PagedKvAllocator& operator=(const PagedKvAllocator&) = delete;

  /// Whether `tokens` more rows could be reserved right now (admission
  /// control: counts whole blocks, so the answer is exact, not optimistic).
  [[nodiscard]] bool can_reserve(std::int64_t tokens) const;

  /// Reserves capacity for `tokens` rows under `request_id` (which must not
  /// already hold a reservation).  Returns false — allocating nothing — when
  /// the free list cannot cover it.
  [[nodiscard]] bool reserve(std::int64_t request_id, std::int64_t tokens);

  /// Grows `request_id`'s reservation to `tokens` total rows, allocating
  /// blocks only when the current tail block is full.  Returns false — and
  /// changes nothing — when the pool cannot cover the growth.
  [[nodiscard]] bool grow(std::int64_t request_id, std::int64_t tokens);

  /// Returns every block held by `request_id` to the free list.
  void release(std::int64_t request_id);

  [[nodiscard]] bool holds(std::int64_t request_id) const {
    return requests_.count(request_id) != 0;
  }
  [[nodiscard]] std::int64_t reserved_tokens(std::int64_t request_id) const;

  [[nodiscard]] KvStats stats() const;
  [[nodiscard]] std::int64_t total_blocks() const {
    return cfg_.num_blocks;
  }
  [[nodiscard]] std::int64_t free_blocks() const {
    return static_cast<std::int64_t>(free_.size());
  }
  /// High-water mark of blocks in use since construction.
  [[nodiscard]] std::int64_t peak_used_blocks() const { return peak_used_; }

  /// Verifies the ownership and accounting invariants; throws
  /// sim::InternalError on violation.  Cheap enough to run per scheduler
  /// iteration under GAUDI_VALIDATE.
  void audit() const;

 private:
  [[nodiscard]] static std::int64_t blocks_for(std::int64_t tokens,
                                               std::int64_t block_tokens) {
    return (tokens + block_tokens - 1) / block_tokens;
  }

  struct Reservation {
    std::vector<std::int64_t> blocks;
    std::int64_t used_tokens = 0;
  };

  PagedKvConfig cfg_;
  memory::DeviceAllocator* hbm_ = nullptr;
  memory::Allocation backing_{};
  std::vector<std::int64_t> free_;         ///< LIFO free list (deterministic)
  std::vector<std::int64_t> owner_;        ///< block -> request id, -1 if free
  std::map<std::int64_t, Reservation> requests_;
  std::int64_t peak_used_ = 0;
};

}  // namespace gaudi::serve

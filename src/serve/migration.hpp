// Live KV migration & health-driven replica draining (DESIGN.md §13).
//
// The cluster's original answer to a sick replica was abrupt failover with a
// FULL re-prefill: every computed KV row thrown away, even when the failure
// was detected early.  This subsystem moves the paged KV blocks instead —
// chunked streaming over the scaleout RoCE fabric (scaleout/roce.*), with
// link faults (sim/fault.* kTransientLink / kLinkDegradation) retried under
// the scaleout backoff discipline (scaleout/resilience.*), a delta-sync pass
// for the tokens the source generated while the base copy was in flight, and
// an atomic cutover after which the destination decodes from the migrated
// blocks with zero re-prefill.
//
// Health scoring: the router cannot see inside a replica, but it can see
// heartbeats arrive late — and in this model an iteration runs long exactly
// when the fault oracle stretched it (kTpcStraggler) or stalled it
// (kHbmPressure).  Each stretched iteration is therefore one health event;
// a replica whose events within a sliding window reach a threshold is
// kDegraded and is proactively evacuated before the chip dies outright.
// Administrative drains (planned maintenance) enter kDraining directly.
//
// Everything here is a pure function of (seed, transfer sequence) through
// the counter-based RNG: the same cluster run replays the same chunk-level
// fault schedule byte-for-byte, and a disabled migration config leaves the
// cluster byte-identical to the pre-migration path.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "scaleout/resilience.hpp"
#include "scaleout/roce.hpp"
#include "sim/fault.hpp"
#include "sim/time.hpp"

namespace gaudi::serve {

/// Router-side health of one replica (healthy → degraded → draining → dead).
enum class ReplicaHealth : std::uint8_t {
  kHealthy,   ///< in rotation
  kDegraded,  ///< fault-stretched heartbeats crossed the window threshold
  kDraining,  ///< administrative drain: evacuating, no new dispatches
  kDead,      ///< down (or suspected down) awaiting restart
};

[[nodiscard]] const char* replica_health_name(ReplicaHealth h);

/// Knobs of the live-migration path.  Disabled (the default) is inert: no
/// draws, no report lines, byte-identical to the pre-migration cluster.
struct MigrationConfig {
  bool enabled = false;
  /// Paged KV blocks streamed per fabric chunk (one p2p transfer each).
  std::int64_t chunk_blocks = 4;
  /// Link model the KV stream rides (paper §2.1 RoCE ports).
  scaleout::RoceConfig roce{};
  /// Transient-fault backoff discipline, shared with the resilient
  /// collectives: a dropped chunk pays detection + backoff and retries; the
  /// last attempt is forced through (transient means transient).
  scaleout::RetryPolicy retry{};
};

/// Deterministic cost of one KV transfer leg (base copy or delta sync).
struct TransferPlan {
  sim::SimTime duration{};          ///< payload + retries + degradation
  std::int64_t blocks = 0;          ///< KV blocks carried
  std::int64_t chunks = 0;          ///< fabric transfers issued
  std::int64_t link_retries = 0;    ///< kTransientLink drops retried
  std::int64_t degraded_chunks = 0; ///< chunks paced by a degraded link
};

/// Plans the transfer of `rows` KV rows (grouped into `block_tokens`-row
/// paged blocks, `bytes_per_token` bytes each row) over one fabric link.
/// Fault draws key off (`transfer_seq`, chunk, attempt) through the
/// injector's counter RNG, so the plan is a pure function of its inputs —
/// re-planning the same leg returns identical bytes.  A disabled injector
/// yields the clean chunked p2p time exactly.
[[nodiscard]] TransferPlan plan_kv_transfer(const MigrationConfig& cfg,
                                            const sim::FaultInjector& faults,
                                            std::uint64_t transfer_seq,
                                            std::int64_t rows,
                                            std::int64_t block_tokens,
                                            std::size_t bytes_per_token);

/// Sliding-window health score: counts fault-stretched iterations (the
/// heartbeat-latency proxy) within `window`; at or past `degraded_after`
/// events the replica reads kDegraded until enough events age out.  The
/// verdict is a pure function of (recorded events, now) — no hidden decay
/// state — so the router can query it at any instant deterministically.
class HealthTracker {
 public:
  HealthTracker() = default;
  HealthTracker(sim::SimTime window, std::int64_t degraded_after)
      : window_(window), degraded_after_(degraded_after) {}

  /// Records one stretched-heartbeat event at `now`.
  void record(sim::SimTime now);
  /// Events still inside the window at `now`.
  [[nodiscard]] std::int64_t score(sim::SimTime now) const;
  [[nodiscard]] bool degraded(sim::SimTime now) const;
  /// Earliest instant after `now` at which an event ages out of the window
  /// (the next instant the degraded verdict can flip back); nullopt when no
  /// recorded event outlives `now`.
  [[nodiscard]] std::optional<sim::SimTime> next_decay(sim::SimTime now) const;

 private:
  sim::SimTime window_{};
  std::int64_t degraded_after_ = 0;
  std::deque<sim::SimTime> events_;
};

}  // namespace gaudi::serve

// Multi-replica serving cluster: a front-end router over N independent
// serving replicas.
//
// One fault-tolerant scheduler (serve/scheduler.*) models a single chip: a
// kChipFailure stalls everything it serves for `chip_restart`.  Production
// inference survives hardware loss by running replicas — each with its own
// continuous-batching scheduler, paged KV pool, and (derived from one
// cluster seed) its own fault-injector stream — behind a router that:
//
//  * balances load (round-robin, join-shortest-queue, least-free-KV-blocks);
//  * detects failures from heartbeats: a replica that goes silent past a
//    suspicion timeout is marked down, its in-flight requests fail over to
//    survivors with a FULL re-prefill of prompt + generated prefix (paged KV
//    does not survive the chip), every thrown-away row counted as wasted;
//    the replica rejoins as a warm spare after `chip_restart`;
//  * hedges slow requests: a request still waiting for its first token past
//    a latency budget is duplicated to a second replica — first token wins,
//    the loser is cancelled, its KV blocks returned, its rows wasted;
//  * circuit-breaks flapping replicas: closed → open when the recent
//    failure rate crosses a threshold, half-open after a cooldown admits a
//    single probe, and the probe's fate decides closed vs open again.
//
// Determinism discipline is inherited from the scheduler: every router
// decision is a pure function of (stream, config, seed) — same inputs, same
// bytes out — and a cluster whose injector is disabled is byte-identical to
// a fault-free configuration.  Time is event-driven: the router advances a
// global clock over arrival, iteration-completion, detection, rejoin,
// hedge-deadline, and breaker-cooldown instants, with replica-index order
// breaking every tie.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "graph/runtime.hpp"
#include "serve/migration.hpp"
#include "serve/scheduler.hpp"

namespace gaudi::serve {

enum class LoadBalancePolicy : std::uint8_t {
  kRoundRobin,         ///< rotate dispatches across believed-up replicas
  kJoinShortestQueue,  ///< fewest queued + running requests wins
  kLeastKvLoad,        ///< most free KV blocks wins
};

[[nodiscard]] const char* load_balance_policy_name(LoadBalancePolicy p);
/// Parses "round-robin" | "jsq" | "least-kv"; throws sim::InvalidArgument
/// naming the unrecognized value otherwise.
[[nodiscard]] LoadBalancePolicy parse_load_balance_policy(
    const std::string& name);

struct ClusterConfig {
  /// Per-replica scheduler configuration.  `replica.faults` must stay
  /// disabled — cluster faults come from `fault_profile`/`fault_seed` below
  /// so each replica draws an independent stream.  `replica.retry_max`
  /// bounds the failovers a request survives before kFailed, and
  /// `replica.retry_backoff`/`retry_backoff_max` pace re-dispatch.
  ServeConfig replica;
  std::int64_t replicas = 2;
  LoadBalancePolicy policy = LoadBalancePolicy::kRoundRobin;

  /// Fault model: replica r queries FaultInjector(splitmix64(fault_seed +
  /// r + 1), fault_profile) — one cluster seed, N decorrelated streams.  A
  /// disabled profile (the default) leaves the run byte-identical to a
  /// fault-free configuration.
  sim::FaultProfile fault_profile{};
  std::uint64_t fault_seed = 0xFA517;

  /// Failure detection.  Replicas heartbeat every `heartbeat_interval`;
  /// the router suspects a replica once it has been silent for
  /// `suspicion_timeout`, rounded up to the next heartbeat tick.  A replica
  /// that restarts sooner announces its new incarnation on the first
  /// heartbeat after `chip_restart`, so detection lands at
  /// death + min(suspicion_timeout, chip_restart), tick-quantized.
  sim::SimTime heartbeat_interval = sim::SimTime::from_ms(2.0);
  sim::SimTime suspicion_timeout = sim::SimTime::from_ms(10.0);

  /// Hedged requests: duplicate a dispatched request that has produced no
  /// first token within this budget onto a second replica.  Zero disables.
  /// At most one hedge per request.
  sim::SimTime hedge_budget{};

  /// Per-replica circuit breaker (closed → open → half-open).  A replica
  /// whose recent outcome window of `breaker_window` samples holds at least
  /// `breaker_min_samples` outcomes with a failure fraction >=
  /// `breaker_threshold` opens; after `breaker_cooldown` it admits a single
  /// probe request whose fate decides closed vs open again.
  bool breaker_enabled = true;
  std::int64_t breaker_window = 8;
  std::int64_t breaker_min_samples = 4;
  double breaker_threshold = 0.5;
  sim::SimTime breaker_cooldown = sim::SimTime::from_ms(100.0);

  /// Live KV migration over the scaleout fabric (serve/migration.*): an
  /// evacuating replica streams each running request's paged KV blocks to a
  /// healthy peer, delta-syncs the rows generated in flight, and cuts over
  /// with zero re-prefill.  Disabled (with no drain scheduled) the cluster
  /// is byte-identical to the pre-migration path.
  MigrationConfig migration{};
  /// Administrative drain for planned maintenance: at `drain_at` the named
  /// replica stops taking dispatches and evacuates — running work migrates
  /// (or, without migration, completes in place), queued work re-routes —
  /// with zero request failures.  -1 disables.
  std::int64_t drain_replica = -1;
  sim::SimTime drain_at{};
  /// Health scoring (migration runs only): a replica whose fault-stretched
  /// iterations — the straggler/HBM-pressure signals that delay its
  /// heartbeats — reach `degraded_after` within a sliding `health_window`
  /// reads degraded and is proactively evacuated before the chip dies.
  sim::SimTime health_window = sim::SimTime::from_ms(50.0);
  std::int64_t degraded_after = 3;

  /// Any of the new health-driven machinery active?  False keeps every new
  /// code path (health recording, evacuation, report lines, extra event
  /// horizons) dormant for byte-identity with the pre-migration cluster.
  [[nodiscard]] bool health_enabled() const {
    return migration.enabled || drain_replica >= 0;
  }
};

/// Per-replica slice of the fleet report.
struct ReplicaStats {
  std::int64_t dispatched = 0;  ///< requests (incl. hedge copies) routed here
  std::int64_t completed = 0;
  std::int64_t chip_failures = 0;
  std::int64_t failed_over = 0;  ///< requests stripped off this replica
  std::int64_t iterations = 0;
  std::int64_t breaker_opens = 0;
  std::int64_t migrated_out = 0;  ///< requests live-migrated off this replica
  std::int64_t migrated_in = 0;   ///< requests live-migrated onto it
  sim::SimTime down_time{};  ///< chip_failures x chip_restart
};

/// Everything a cluster run reports.  `summary` aggregates the fleet
/// exactly like a single-replica ServeSummary (availability, tails,
/// goodput); the cluster-only counters and the per-replica breakdown extend
/// it below the shared lines.
struct ClusterReport {
  ServeSummary summary;
  std::vector<RequestMetrics> requests;
  std::int64_t replicas = 0;
  LoadBalancePolicy policy = LoadBalancePolicy::kRoundRobin;
  bool faults_enabled = false;
  bool hedging_enabled = false;
  std::int64_t chip_failures = 0;  ///< fleet-wide injected chip deaths
  /// Requests re-dispatched to a survivor after losing their replica (each
  /// consumed one unit of the retry budget and re-prefills from scratch).
  std::int64_t failovers = 0;
  std::int64_t hedges_launched = 0;
  std::int64_t hedge_wins = 0;  ///< the duplicate beat the primary
  /// KV rows computed by cancelled hedge losers (and by dead siblings of
  /// hedged requests) — wasted work that never reached a client.
  std::int64_t hedge_wasted_tokens = 0;
  std::int64_t breaker_opens = 0;
  std::int64_t deadline_drops = 0;
  /// Live migration & draining (serve/migration.*).  The "migrate:" /
  /// "drain:" report lines render only when the feature is enabled.
  bool migration_enabled = false;
  bool drain_enabled = false;
  std::int64_t drain_replica = -1;
  bool drain_completed = false;
  std::int64_t migrations_started = 0;
  std::int64_t migrations_completed = 0;  ///< cut over with zero re-prefill
  std::int64_t migrations_aborted = 0;    ///< fell back to re-prefill failover
  /// KV rows that cut over instead of re-prefilling: the prefill work the
  /// migration path saved versus the wasted_tokens a failover would bill.
  std::int64_t migrated_rows = 0;
  std::int64_t migrated_blocks = 0;        ///< paged blocks on the wire
  std::int64_t migration_link_retries = 0; ///< transient link drops retried
  sim::SimTime migration_time{};           ///< total fabric time, all legs
  /// Queued (no-KV) requests re-routed off evacuating replicas — free moves
  /// that consume no retry budget and waste no rows.
  std::int64_t evac_requeues = 0;
  std::vector<ReplicaStats> per_replica;

  /// Deterministic multi-line rendering (the byte-comparable artifact).
  /// Fault- and hedge-dependent lines render only when the corresponding
  /// feature is enabled, preserving disabled-injector byte-identity.
  [[nodiscard]] std::string to_report() const;
};

class ClusterRouter {
 public:
  ClusterRouter(const graph::Runtime& rt, ClusterConfig cfg);

  /// Simulates serving `stream` across the fleet to completion.
  /// Deterministic: same stream + config => byte-identical report.  Every
  /// offered request ends in exactly one typed outcome.
  [[nodiscard]] ClusterReport run(const std::vector<Request>& stream);

 private:
  enum class BreakerState : std::uint8_t { kClosed, kOpen, kHalfOpen };

  /// A request (or hedge copy) on its way to a replica, with the progress
  /// state a failover resume must carry.
  struct Routed {
    Request req;  ///< id is the side id (original, or original + hedge base)
    std::int64_t generated = 0;
    sim::SimTime last_token{};
  };

  struct QueueEntry {
    Routed routed;
    sim::SimTime eligible_at{};
  };

  struct Replica {
    std::unique_ptr<ContinuousBatchScheduler> sched;
    bool up = true;         ///< actually serving (false death..rejoin)
    bool suspected = false; ///< router knows it is down (detection..rejoin)
    bool busy = false;
    sim::SimTime busy_until{};
    ContinuousBatchScheduler::StepResult pending;  ///< valid while busy
    bool death_pending = false;  ///< drained, failover awaiting detection
    sim::SimTime detect_time{};
    sim::SimTime rejoin_time{};
    std::vector<ContinuousBatchScheduler::DrainedRequest> dead_work;
    /// Dispatched between death and detection — lost on the dead chip, the
    /// router just does not know yet.  Failed over at detection.
    std::vector<Routed> stranded;
    BreakerState breaker = BreakerState::kClosed;
    std::deque<bool> outcomes;  ///< true = success, sliding breaker window
    sim::SimTime open_until{};
    bool probe_live = false;
    std::int64_t probe_id = -1;
    /// Administrative drain (sticky: survives a death/rejoin cycle).
    bool draining = false;
    bool drain_done = false;
    /// Sliding window of fault-stretched iterations (serve/migration.*);
    /// only consulted when ClusterConfig::health_enabled().
    HealthTracker health;
    ReplicaStats stats;
  };

  /// Router-side state of one original request.
  struct Track {
    Request req;
    std::int32_t attempts = 0;  ///< failovers consumed (vs retry_max)
    bool started = false;       ///< first token delivered to the client
    bool hedged = false;        ///< a duplicate was (or will never be) sent
    /// Migration damping: a request moves off a *degraded* (not draining)
    /// replica at most once, so fleet-wide degradation cannot ping-pong the
    /// same KV across the fabric forever.
    bool health_migrated = false;
    std::int64_t winner = -1;   ///< side id that produced the first token
    sim::SimTime dispatch_time{};  ///< latest primary dispatch (hedge base)
    std::map<std::int64_t, std::int64_t> sides;  ///< side id -> replica
  };

  struct HedgeTimer {
    sim::SimTime fire{};
    std::int64_t orig = 0;
    sim::SimTime armed_at{};  ///< stale once the primary re-dispatches
  };

  /// One in-flight live migration of side `sid` from `src` to `dst`.  The
  /// source keeps decoding while a leg is on the wire; the delta-sync leg
  /// carries the rows generated meanwhile, and the last few in-flight
  /// tokens ride the cutover message itself.
  struct Migration {
    std::int64_t sid = 0;
    std::int64_t orig = 0;
    std::int64_t src = 0;
    std::int64_t dst = 0;
    int phase = 0;                 ///< 0 = base copy, 1 = delta sync
    bool for_drain = false;        ///< triggered by a drain, not health
    sim::SimTime done_at{};        ///< current leg lands
    std::int64_t rows_synced = 0;  ///< rows covered by the legs sent so far
  };

  [[nodiscard]] sim::SimTime heartbeat_ceil(sim::SimTime t) const;
  [[nodiscard]] bool breaker_allows(Replica& rep, sim::SimTime now) const;
  void breaker_record(std::int64_t r, bool ok, sim::SimTime now);
  /// Picks the dispatch target among believed-up, breaker-admitting
  /// replicas (optionally excluding one); -1 when none qualifies.
  [[nodiscard]] std::int64_t pick_replica(sim::SimTime now,
                                          std::int64_t exclude);
  void place(const Routed& routed, std::int64_t r, sim::SimTime now);
  void process_death(std::int64_t r, sim::SimTime now);
  void process_detection(std::int64_t r, sim::SimTime now);
  void apply_events(std::int64_t r,
                    const std::vector<ReplicaEvent>& events);
  /// Removes side `sid` from its track and the side map; returns the track
  /// or nullptr if the side is stale (already cancelled/finished).
  Track* drop_side(std::int64_t sid, std::int64_t* orig_out);
  void cancel_side(std::int64_t sid, std::int64_t r);
  void finish_track(std::int64_t orig);
  void dispatch_round(sim::SimTime now);
  void process_hedges(sim::SimTime now);
  /// Is this replica shedding its work (admin drain, or degraded health
  /// with migration enabled)?  Evacuating replicas take no new dispatches
  /// — in particular no half-open breaker probes.
  [[nodiscard]] bool evacuating(const Replica& rep, sim::SimTime now) const;
  /// Launches the base-copy leg of a live migration for `rows` KV rows.
  void start_migration(std::int64_t sid, std::int64_t orig, std::int64_t src,
                       std::int64_t dst, std::int64_t rows, sim::SimTime now);
  /// Advances in-flight migrations whose current leg has landed: delta-sync
  /// legs launch, finished transfers cut over, stale ones abort (the side
  /// completed, was cancelled, or lost its replica — the existing re-prefill
  /// failover owns those paths).
  void process_migrations(sim::SimTime now);
  /// Walks evacuating replicas and moves their work off: redundant hedge
  /// twins cancel, running requests migrate (or finish in place without
  /// migration), queued requests re-route for free.
  void evacuation_round(sim::SimTime now);
  /// Fires the administrative drain and detects drain completion.
  void process_drain(sim::SimTime now);

  graph::Runtime rt_;
  ClusterConfig cfg_;
  std::vector<Replica> replicas_;
  MetricsSink sink_;  ///< fleet-level; sees original request ids only
  std::deque<QueueEntry> queue_;
  std::map<std::int64_t, Track> tracks_;
  std::map<std::int64_t, std::int64_t> side_to_orig_;
  std::vector<HedgeTimer> hedges_;
  std::vector<Migration> migrations_;
  /// Deterministic fault stream for the migration path's fabric link,
  /// decorrelated from every replica's iteration stream.
  sim::FaultInjector link_faults_{};
  std::uint64_t migration_seq_ = 0;  ///< transfer-leg counter (fault sites)
  bool health_on_ = false;           ///< cached cfg_.health_enabled()
  bool drain_fired_ = false;
  bool validate_ = false;  ///< GAUDI_VALIDATE: audit allocators at cutover
  std::int64_t rr_cursor_ = 0;
  std::int64_t chip_failures_ = 0;
  std::int64_t failovers_ = 0;
  std::int64_t hedges_launched_ = 0;
  std::int64_t hedge_wins_ = 0;
  std::int64_t hedge_wasted_ = 0;
  std::int64_t breaker_opens_ = 0;
  std::int64_t deadline_drops_ = 0;
  std::int64_t migrations_started_ = 0;
  std::int64_t migrations_completed_ = 0;
  std::int64_t migrations_aborted_ = 0;
  std::int64_t migrated_rows_ = 0;
  std::int64_t migrated_blocks_ = 0;
  std::int64_t migration_link_retries_ = 0;
  sim::SimTime migration_time_{};
  std::int64_t evac_requeues_ = 0;
  bool ran_ = false;
};

}  // namespace gaudi::serve

#include "graph/timing_memo.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "graph/runtime.hpp"
#include "memory/checksum.hpp"
#include "sim/env.hpp"
#include "sim/error.hpp"

namespace gaudi::graph {

namespace {

constexpr const char* kMemoMagic = "gaudi-timing-memo v1";

std::uint64_t checksum_of(const std::string& bytes) {
  return memory::fnv1a64(reinterpret_cast<const std::byte*>(bytes.data()),
                         bytes.size());
}

}  // namespace

TimingMemo& TimingMemo::global() {
  static TimingMemo memo;
  static const bool loaded = [] {
    const std::string path = memo_file_from_env();
    if (path.empty()) return false;
    if (!std::ifstream(path).good()) return false;  // fresh cache file
    try {
      memo.load_times(path);
    } catch (const sim::CheckpointError& e) {
      // Persistence accelerates, it never gates: a damaged cache file is
      // reported once and the memo starts empty.
      std::fprintf(stderr, "warning: ignoring damaged GAUDI_MEMO_FILE %s: %s\n",
                   path.c_str(), e.what());
    }
    return true;
  }();
  (void)loaded;
  return memo;
}

std::shared_ptr<const ProfileResult> TimingMemo::find_profile(
    const std::string& key) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = profiles_.find(key);
  if (it == profiles_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return it->second;
}

void TimingMemo::insert_profile(const std::string& key,
                                std::shared_ptr<const ProfileResult> result) {
  const std::lock_guard<std::mutex> lock(mu_);
  profiles_.emplace(key, std::move(result));
}

bool TimingMemo::find_time(const std::string& key, sim::SimTime* out) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = times_.find(key);
  if (it == times_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  *out = it->second;
  return true;
}

void TimingMemo::insert_time(const std::string& key, sim::SimTime t) {
  const std::lock_guard<std::mutex> lock(mu_);
  times_.emplace(key, t);
}

std::size_t TimingMemo::save_times(const std::string& path) const {
  std::vector<std::pair<std::string, sim::SimTime>> entries;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    entries.assign(times_.begin(), times_.end());
  }
  std::sort(entries.begin(), entries.end());
  std::ostringstream body;
  body << kMemoMagic << "\n";
  body << "count " << entries.size() << "\n";
  for (const auto& [key, t] : entries) body << key << ' ' << t.ps() << "\n";
  std::ostringstream file;
  file << body.str();
  char sum[32];
  std::snprintf(sum, sizeof sum, "%016llx",
                static_cast<unsigned long long>(checksum_of(body.str())));
  file << "checksum " << sum << "\n";
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    GAUDI_CHECK(out.good(), "cannot write timing-memo file " + tmp);
    out << file.str();
    out.flush();
    GAUDI_CHECK(out.good(), "short write to timing-memo file " + tmp);
  }
  GAUDI_CHECK(std::rename(tmp.c_str(), path.c_str()) == 0,
              "cannot commit timing-memo file " + path);
  return entries.size();
}

std::size_t TimingMemo::load_times(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    throw sim::CheckpointError("cannot read timing-memo file " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string::npos) break;  // trailing garbage caught below
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  if (lines.empty()) {
    throw sim::CheckpointTruncated("timing-memo file " + path + " is empty");
  }
  if (lines[0] != kMemoMagic) {
    throw sim::CheckpointVersionSkew("timing-memo file " + path +
                                     " has magic '" + lines[0] +
                                     "', expected '" + kMemoMagic + "'");
  }
  if (lines.size() < 2 || lines[1].rfind("count ", 0) != 0) {
    throw sim::CheckpointTruncated("timing-memo file " + path +
                                   " is missing its entry count");
  }
  std::size_t count = 0;
  try {
    count = std::stoull(lines[1].substr(6));
  } catch (const std::exception&) {
    throw sim::CheckpointError("timing-memo file " + path +
                               " has a garbled entry count '" + lines[1] +
                               "'");
  }
  if (lines.size() != count + 3) {
    throw sim::CheckpointTruncated(
        "timing-memo file " + path + " promises " + std::to_string(count) +
        " entries but holds " +
        std::to_string(lines.size() >= 3 ? lines.size() - 3 : 0));
  }
  const std::string& sum_line = lines.back();
  if (sum_line.rfind("checksum ", 0) != 0) {
    throw sim::CheckpointTruncated("timing-memo file " + path +
                                   " is missing its checksum trailer");
  }
  // The checksum covers every byte before the trailer line.
  const std::size_t body_len = text.rfind("checksum ");
  char expect[32];
  std::snprintf(expect, sizeof expect, "%016llx",
                static_cast<unsigned long long>(
                    checksum_of(text.substr(0, body_len))));
  if (sum_line.substr(9) != expect) {
    throw sim::CheckpointChecksumMismatch("timing-memo file " + path +
                                          " fails its checksum");
  }

  std::vector<std::pair<std::string, sim::SimTime>> entries;
  entries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::string& line = lines[2 + i];
    const std::size_t sp = line.rfind(' ');
    if (sp == std::string::npos || sp == 0 || sp + 1 >= line.size()) {
      throw sim::CheckpointError("timing-memo file " + path +
                                 " has a garbled entry '" + line + "'");
    }
    std::int64_t ps = 0;
    try {
      std::size_t used = 0;
      ps = std::stoll(line.substr(sp + 1), &used);
      if (used != line.size() - sp - 1) throw std::invalid_argument("");
    } catch (const std::exception&) {
      throw sim::CheckpointError("timing-memo file " + path +
                                 " has a garbled entry '" + line + "'");
    }
    if (ps < 0) {
      throw sim::CheckpointError("timing-memo file " + path +
                                 " holds a negative makespan in '" + line +
                                 "'");
    }
    entries.emplace_back(line.substr(0, sp), sim::SimTime::from_ps(ps));
  }

  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, t] : entries) times_.emplace(std::move(key), t);
  return entries.size();
}

std::uint64_t TimingMemo::hits() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t TimingMemo::misses() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::size_t TimingMemo::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return profiles_.size() + times_.size();
}

void TimingMemo::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  profiles_.clear();
  times_.clear();
  hits_ = 0;
  misses_ = 0;
}

bool timing_only_from_env() { return sim::env_flag("GAUDI_TIMING_ONLY", false); }

std::string memo_file_from_env() {
  const char* path = std::getenv("GAUDI_MEMO_FILE");
  return path == nullptr ? std::string{} : std::string{path};
}

std::size_t save_memo_to_env_file() {
  const std::string path = memo_file_from_env();
  if (path.empty()) return 0;
  return TimingMemo::global().save_times(path);
}

bool timing_only_enabled(const RunOptions& opts) {
  if (opts.timing_only.has_value()) return *opts.timing_only;
  return opts.mode == tpc::ExecMode::kTiming && timing_only_from_env();
}

std::string timing_memo_key(const CompiledGraph& cg, const RunOptions& opts) {
  // The fingerprint covers graph + chip + compile options; of the run
  // options only the scheduler policy changes a timing-mode trace (the seed
  // feeds functional RNG, guards are forced off on this path, and faults
  // bypass the memo entirely).
  std::ostringstream os;
  os << "run:" << cg.fingerprint << ':'
     << static_cast<int>(opts.policy);
  return os.str();
}

}  // namespace gaudi::graph

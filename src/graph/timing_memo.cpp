#include "graph/timing_memo.hpp"

#include <sstream>

#include "graph/runtime.hpp"
#include "sim/env.hpp"

namespace gaudi::graph {

TimingMemo& TimingMemo::global() {
  static TimingMemo memo;
  return memo;
}

std::shared_ptr<const ProfileResult> TimingMemo::find_profile(
    const std::string& key) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = profiles_.find(key);
  if (it == profiles_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return it->second;
}

void TimingMemo::insert_profile(const std::string& key,
                                std::shared_ptr<const ProfileResult> result) {
  const std::lock_guard<std::mutex> lock(mu_);
  profiles_.emplace(key, std::move(result));
}

bool TimingMemo::find_time(const std::string& key, sim::SimTime* out) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = times_.find(key);
  if (it == times_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  *out = it->second;
  return true;
}

void TimingMemo::insert_time(const std::string& key, sim::SimTime t) {
  const std::lock_guard<std::mutex> lock(mu_);
  times_.emplace(key, t);
}

std::uint64_t TimingMemo::hits() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t TimingMemo::misses() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::size_t TimingMemo::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return profiles_.size() + times_.size();
}

void TimingMemo::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  profiles_.clear();
  times_.clear();
  hits_ = 0;
  misses_ = 0;
}

bool timing_only_from_env() { return sim::env_flag("GAUDI_TIMING_ONLY", false); }

bool timing_only_enabled(const RunOptions& opts) {
  if (opts.timing_only.has_value()) return *opts.timing_only;
  return opts.mode == tpc::ExecMode::kTiming && timing_only_from_env();
}

std::string timing_memo_key(const CompiledGraph& cg, const RunOptions& opts) {
  // The fingerprint covers graph + chip + compile options; of the run
  // options only the scheduler policy changes a timing-mode trace (the seed
  // feeds functional RNG, guards are forced off on this path, and faults
  // bypass the memo entirely).
  std::ostringstream os;
  os << "run:" << cg.fingerprint << ':'
     << static_cast<int>(opts.policy);
  return os.str();
}

}  // namespace gaudi::graph

#include "graph/fingerprint.hpp"

#include <cstring>

#include "graph/compiler.hpp"
#include "graph/graph.hpp"

namespace gaudi::graph {

void Fingerprint::bytes(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h_ ^= p[i];
    h_ *= 1099511628211ull;  // FNV prime
  }
}

void Fingerprint::u64(std::uint64_t v) {
  unsigned char enc[8];
  for (int i = 0; i < 8; ++i) enc[i] = static_cast<unsigned char>(v >> (8 * i));
  bytes(enc, sizeof(enc));
}

void Fingerprint::f32(float v) {
  std::uint32_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void Fingerprint::f64(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void Fingerprint::str(std::string_view s) {
  u64(s.size());
  bytes(s.data(), s.size());
}

namespace {

void ingest_shape(Fingerprint& fp, const tensor::Shape& s) {
  fp.u64(static_cast<std::uint64_t>(s.rank()));
  for (std::size_t d = 0; d < s.rank(); ++d) fp.i64(s.dim(d));
}

void ingest_attrs(Fingerprint& fp, const OpAttrs& a) {
  fp.u8(static_cast<std::uint8_t>(a.unary));
  fp.f32(a.alpha);
  fp.f32(a.scalar);
  fp.f32(a.eps);
  fp.f32(a.p);
  fp.f32(a.scale);
  fp.u64(a.seed);
  fp.f32(a.lr);
  fp.f32(a.beta1);
  fp.f32(a.beta2);
  fp.i64(a.step);
  fp.i64(a.dim);
  fp.i64(a.count);
  fp.u8(static_cast<std::uint8_t>(a.cast_to));
  ingest_shape(fp, a.shape);
  fp.boolean(a.trans_a);
  fp.boolean(a.trans_b);
  fp.boolean(a.requires_recompile);
}

}  // namespace

std::uint64_t chip_fingerprint(const sim::ChipConfig& cfg) {
  Fingerprint fp;
  fp.u64(cfg.mme.array_rows);
  fp.u64(cfg.mme.array_cols);
  fp.f64(cfg.mme.clock_hz);
  fp.u64(cfg.mme.launch_overhead_cycles);
  fp.u64(cfg.mme.pipeline_fill_cycles);
  fp.f64(cfg.mme.bf16_throughput_multiplier);
  fp.u64(cfg.tpc.num_cores);
  fp.u64(cfg.tpc.vector_bits);
  fp.f64(cfg.tpc.clock_hz);
  fp.u64(cfg.tpc.global_access_cycles);
  fp.u64(cfg.tpc.scalar_local_bytes);
  fp.u64(cfg.tpc.vector_local_bytes);
  fp.u64(cfg.tpc.launch_overhead_cycles);
  fp.u64(cfg.memory.hbm_bytes);
  fp.f64(cfg.memory.hbm_bandwidth_bytes_per_s);
  fp.i64(cfg.memory.hbm_latency.ps());
  fp.u64(cfg.memory.shared_sram_bytes);
  fp.f64(cfg.memory.dma_bandwidth_bytes_per_s);
  fp.i64(cfg.memory.dma_setup.ps());
  fp.u64(cfg.memory.dma_channels);
  fp.i64(cfg.compiler.recompile_stall.ps());
  return fp.digest();
}

std::uint64_t compile_fingerprint(const Graph& g, const sim::ChipConfig& cfg,
                                  const CompileOptions& opts) {
  Fingerprint fp;
  fp.u64(chip_fingerprint(cfg));
  fp.boolean(opts.fuse_elementwise);
  fp.boolean(opts.enforce_capacity);

  fp.u64(g.num_values());
  for (ValueId v = 0; v < static_cast<ValueId>(g.num_values()); ++v) {
    const ValueInfo& info = g.value(v);
    ingest_shape(fp, info.shape);
    fp.u8(static_cast<std::uint8_t>(info.dtype));
    fp.u8(static_cast<std::uint8_t>(info.role));
    fp.str(info.name);
    fp.boolean(info.is_output);
  }
  fp.u64(g.num_nodes());
  for (NodeId n = 0; n < static_cast<NodeId>(g.num_nodes()); ++n) {
    const Node& node = g.node(n);
    fp.u8(static_cast<std::uint8_t>(node.kind));
    ingest_attrs(fp, node.attrs);
    fp.str(node.label);
    fp.u64(node.inputs.size());
    for (ValueId v : node.inputs) fp.i64(v);
    fp.u64(node.outputs.size());
    for (ValueId v : node.outputs) fp.i64(v);
  }
  return fp.digest();
}

}  // namespace gaudi::graph

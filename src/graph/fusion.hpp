// Element-wise fusion pass.
//
// SynapseAI's graph compiler fuses chains of element-wise TPC ops into one
// kernel so intermediates stay in registers instead of round-tripping
// through global memory, and only one kernel launch is paid.  This pass
// finds maximal single-consumer chains of flat element-wise ops and
// provides a fused kernel that executes a whole chain per vector; the
// runtime applies it when RunOptions::fuse_elementwise is set, and the
// fusion ablation bench quantifies the win.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "tpc/kernel.hpp"

namespace gaudi::graph {

/// One fusable chain, in program order (length >= 2).
struct FusionGroup {
  std::vector<NodeId> nodes;

  [[nodiscard]] NodeId first() const { return nodes.front(); }
  [[nodiscard]] NodeId last() const { return nodes.back(); }
};

struct FusionPlan {
  std::vector<FusionGroup> groups;
  /// Per node: index into `groups`, or -1 when unfused.
  std::vector<std::int32_t> group_of;
  /// Values produced and consumed strictly inside a group — they never
  /// materialize in device memory.
  std::vector<bool> internal_value;

  [[nodiscard]] bool fused(NodeId n) const {
    return group_of[static_cast<std::size_t>(n)] >= 0;
  }
  [[nodiscard]] bool is_group_tail(const Graph& g, NodeId n) const;
};

/// True for ops the fuser may place inside a chain: flat element-wise ops
/// whose output has the same element count as every input.
[[nodiscard]] bool is_fusible_elementwise(OpKind kind);

/// Builds the fusion plan for `g` (chains of length >= 2 only).
[[nodiscard]] FusionPlan plan_fusion(const Graph& g);

/// One link of a pre-bound chain: which op to apply to the chain register,
/// and where its external operand (if any) comes from.
struct FusedChainStep {
  OpKind kind{};
  OpAttrs attrs{};
  /// External operand value, kInvalidValue when the step consumes only the
  /// chain register.
  ValueId external = kInvalidValue;
  /// Whether the chain value is the *second* operand of a binary op.
  bool chain_is_rhs = false;

  [[nodiscard]] bool has_external() const { return external != kInvalidValue; }
};

/// Compile-time description of a whole fusion group, derived once by the
/// graph compiler and bound to a run's tensors when the tail executes —
/// so the per-run loop neither re-plans the chain nor re-walks the graph.
struct FusedChainSpec {
  ValueId chain_input = kInvalidValue;
  ValueId output = kInvalidValue;
  NodeId tail = -1;
  std::int64_t numel = 0;
  std::vector<FusedChainStep> steps;
  std::string label;
};

/// Derives the chain spec for one fusion group.
[[nodiscard]] FusedChainSpec build_chain_spec(const Graph& g,
                                              const FusionGroup& group);

/// Executes an entire fusion group: external operands are loaded from
/// global memory, the chain value flows through vector registers, only the
/// tail result is stored.  `tensors` is indexed by ValueId; internal values
/// need no storage.
class FusedChainKernel final : public tpc::Kernel {
 public:
  /// Binds a compile-time chain spec to this run's tensors.
  FusedChainKernel(const FusedChainSpec& spec,
                   const std::vector<tensor::Tensor>& tensors);
  /// Convenience: derives the spec on the fly (one-shot callers and tests).
  FusedChainKernel(const Graph& g, const FusionGroup& group,
                   const std::vector<tensor::Tensor>& tensors);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] tpc::IndexSpace index_space() const override;
  void execute(tpc::KernelContext& ctx, const tpc::Member& m) const override;
  [[nodiscard]] std::uint64_t flop_count() const override;

 private:
  struct Step {
    OpKind kind{};
    OpAttrs attrs{};
    /// External operand (empty span for chain-register operands), and
    /// whether the chain value is the *second* operand of a binary op.
    tensor::Tensor external;
    bool chain_is_rhs = false;
    bool has_external = false;
  };

  std::vector<Step> steps_;
  tensor::Tensor chain_input_;
  tensor::Tensor output_;
  std::int64_t numel_ = 0;
  std::string label_;
};

}  // namespace gaudi::graph

#include "graph/scheduler.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "memory/dma.hpp"

namespace gaudi::graph {

const char* schedule_policy_name(SchedulePolicy p) {
  return p == SchedulePolicy::kBarrier ? "barrier" : "overlap";
}

namespace {

/// Engine availability and issue bookkeeping during list scheduling.
struct SchedState {
  sim::SimTime engine_free[5]{};  // indexed by Engine
  sim::SimTime global_last_end{};
  Engine last_issued = Engine::kNone;
  bool recompiled = false;

  sim::SimTime& free(Engine e) { return engine_free[static_cast<std::size_t>(e)]; }
};

}  // namespace

Trace schedule(const Graph& g, const std::vector<NodeExec>& execs,
               const sim::ChipConfig& cfg, SchedulePolicy policy) {
  GAUDI_CHECK(execs.size() == g.num_nodes(),
              "scheduler needs one NodeExec per graph node");

  Trace trace;
  SchedState st;

  // When each value becomes available on its producing engine; and, after a
  // DMA, when it becomes available to a *different* engine.
  std::vector<sim::SimTime> value_ready(g.num_values(), sim::SimTime::zero());
  // Engine that materialized each value (kNone for inputs/params — engines
  // read those straight from HBM, no inter-engine DMA involved).
  std::vector<Engine> value_engine(g.num_values(), Engine::kNone);
  // DMA completion per (value, destination engine), deduplicated.
  std::map<std::pair<ValueId, Engine>, sim::SimTime> dma_done;

  const bool barrier = policy == SchedulePolicy::kBarrier;

  auto issue = [&](Engine eng, sim::SimTime ready, sim::SimTime dur,
                   TraceEvent ev) -> sim::SimTime {
    sim::SimTime start = std::max(ready, st.free(eng));
    if (barrier && st.last_issued != Engine::kNone && st.last_issued != eng) {
      start = std::max(start, st.global_last_end);
    }
    const sim::SimTime end = start + dur;
    ev.start = start;
    ev.end = end;
    trace.add(std::move(ev));
    st.free(eng) = end;
    st.global_last_end = std::max(st.global_last_end, end);
    st.last_issued = eng;
    return end;
  };

  for (NodeId nid = 0; nid < static_cast<NodeId>(g.num_nodes()); ++nid) {
    const Node& n = g.node(nid);
    const NodeExec& ex = execs[static_cast<std::size_t>(nid)];

    // Metadata ops: propagate readiness, consume no engine time.
    if (ex.engine == Engine::kNone) {
      sim::SimTime ready = sim::SimTime::zero();
      Engine src_engine = Engine::kNone;
      for (ValueId v : n.inputs) {
        ready = std::max(ready, value_ready[static_cast<std::size_t>(v)]);
        src_engine = value_engine[static_cast<std::size_t>(v)];
      }
      for (ValueId v : n.outputs) {
        value_ready[static_cast<std::size_t>(v)] = ready;
        value_engine[static_cast<std::size_t>(v)] = src_engine;
      }
      continue;
    }

    // JIT recompilation stall: the graph compiler halts the device once for
    // an op without first-class backend support (observed for GLU, §3.3).
    if (n.attrs.requires_recompile && !st.recompiled) {
      st.recompiled = true;
      TraceEvent ev;
      ev.engine = Engine::kHost;
      ev.name = "graph_compiler.recompile(" + n.label + ")";
      ev.node = nid;
      issue(Engine::kHost, st.global_last_end, cfg.compiler.recompile_stall,
            std::move(ev));
    }

    // Input readiness, inserting DMA for cross-engine edges.
    sim::SimTime ready = sim::SimTime::zero();
    for (ValueId v : n.inputs) {
      const auto vi = static_cast<std::size_t>(v);
      sim::SimTime r = value_ready[vi];
      const Engine src = value_engine[vi];
      if (src != Engine::kNone && src != ex.engine) {
        const auto key = std::make_pair(v, ex.engine);
        auto it = dma_done.find(key);
        if (it == dma_done.end()) {
          const std::size_t bytes = g.value(v).nbytes();
          TraceEvent ev;
          ev.engine = Engine::kDma;
          ev.name = "dma:" + g.value(v).name;
          ev.node = nid;
          ev.bytes = bytes;
          const sim::SimTime end =
              issue(Engine::kDma, r, memory::dma_transfer_time(cfg.memory, bytes),
                    std::move(ev));
          it = dma_done.emplace(key, end).first;
        }
        r = it->second;
      }
      ready = std::max(ready, r);
    }

    TraceEvent ev;
    ev.engine = ex.engine;
    ev.name = ex.label.empty() ? n.label : ex.label;
    ev.node = nid;
    ev.flops = ex.flops;
    ev.bytes = ex.bytes;
    const sim::SimTime end = issue(ex.engine, ready, ex.duration, std::move(ev));

    for (ValueId v : n.outputs) {
      value_ready[static_cast<std::size_t>(v)] = end;
      value_engine[static_cast<std::size_t>(v)] = ex.engine;
    }
  }

  return trace;
}

}  // namespace gaudi::graph

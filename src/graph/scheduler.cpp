#include "graph/scheduler.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "graph/compiler.hpp"
#include "memory/dma.hpp"

namespace gaudi::graph {

const char* schedule_policy_name(SchedulePolicy p) {
  return p == SchedulePolicy::kBarrier ? "barrier" : "overlap";
}

namespace {

constexpr std::uint8_t engine_bit(Engine e) {
  return static_cast<std::uint8_t>(1u << static_cast<unsigned>(e));
}

/// Engine availability and issue bookkeeping during list scheduling.
struct SchedState {
  sim::SimTime engine_free[kEngineCount]{};  // indexed by Engine
  sim::SimTime global_last_end{};
  Engine last_issued = Engine::kNone;
  bool recompiled = false;

  sim::SimTime& free(Engine e) { return engine_free[static_cast<std::size_t>(e)]; }
};

/// Shared list-scheduling core.  When `static_sources` is non-null (the
/// compiled path), per-value source-engine sets come precomputed from the
/// DMA-insertion pass; otherwise they are derived on the fly while
/// scheduling (the legacy path).  Both derivations agree: values are
/// single-assignment, so a value's source set is fixed once its producer
/// issues, and every consumer issues later in program order.
Trace schedule_impl(const Graph& g, const std::vector<NodeExec>& execs,
                    const sim::ChipConfig& cfg, SchedulePolicy policy,
                    const std::vector<std::uint8_t>* static_sources,
                    const sim::FaultInjector* faults) {
  GAUDI_CHECK(execs.size() == g.num_nodes(),
              "scheduler needs one NodeExec per graph node");
  if (faults != nullptr && !faults->enabled()) faults = nullptr;

  Trace trace;
  SchedState st;
  // Monotonic DMA transfer index: the deterministic site for kDmaTimeout
  // draws (program order is stable across runs of the same graph).
  std::uint64_t dma_index = 0;

  // When each value becomes available on its producing engine; and, after a
  // DMA, when it becomes available to a *different* engine.
  std::vector<sim::SimTime> value_ready(g.num_values(), sim::SimTime::zero());
  // Bitmask of engines whose buffers back each value (empty for inputs and
  // params — engines read those straight from HBM, no inter-engine DMA
  // involved).  A metadata op is a view over its inputs, so its outputs can
  // be backed by buffers on *several* engines at once; a consumer needs a
  // DMA whenever any backing engine differs from its own.
  std::vector<std::uint8_t> derived_sources;
  if (static_sources == nullptr) {
    derived_sources.assign(g.num_values(), 0);
  }
  const std::vector<std::uint8_t>& value_sources =
      static_sources ? *static_sources : derived_sources;
  std::uint8_t* mutable_sources =
      static_sources ? nullptr : derived_sources.data();
  // DMA completion per (value, destination engine), deduplicated.
  std::map<std::pair<ValueId, Engine>, sim::SimTime> dma_done;

  const bool barrier = policy == SchedulePolicy::kBarrier;

  auto issue = [&](Engine eng, sim::SimTime ready, sim::SimTime dur,
                   TraceEvent ev) -> sim::SimTime {
    sim::SimTime start = std::max(ready, st.free(eng));
    if (barrier && st.last_issued != Engine::kNone && st.last_issued != eng) {
      start = std::max(start, st.global_last_end);
    }
    const sim::SimTime end = start + dur;
    ev.start = start;
    ev.end = end;
    trace.add(std::move(ev));
    st.free(eng) = end;
    st.global_last_end = std::max(st.global_last_end, end);
    st.last_issued = eng;
    return end;
  };

  for (NodeId nid = 0; nid < static_cast<NodeId>(g.num_nodes()); ++nid) {
    const Node& n = g.node(nid);
    const NodeExec& ex = execs[static_cast<std::size_t>(nid)];

    // Metadata ops: propagate readiness, consume no engine time.  Outputs
    // become ready once every input is, and are backed by the union of the
    // inputs' source engines — tracking only one producing engine dropped
    // required DMAs when inputs came from different engines (e.g. a fused
    // chain link fed by both an MME matmul and a TPC op).
    if (ex.engine == Engine::kNone) {
      sim::SimTime ready = sim::SimTime::zero();
      std::uint8_t sources = 0;
      for (ValueId v : n.inputs) {
        ready = std::max(ready, value_ready[static_cast<std::size_t>(v)]);
        sources |= value_sources[static_cast<std::size_t>(v)];
      }
      for (ValueId v : n.outputs) {
        value_ready[static_cast<std::size_t>(v)] = ready;
        if (mutable_sources) {
          mutable_sources[static_cast<std::size_t>(v)] = sources;
        }
      }
      continue;
    }

    // JIT recompilation stall: the graph compiler halts the device once for
    // an op without first-class backend support (observed for GLU, §3.3).
    // The triggering node cannot start before the stall completes (under
    // kBarrier the engine-switch barrier already enforced this; kOverlap
    // needs the explicit dependency).
    sim::SimTime recompile_done = sim::SimTime::zero();
    if (n.attrs.requires_recompile && !st.recompiled) {
      st.recompiled = true;
      TraceEvent ev;
      ev.engine = Engine::kHost;
      ev.kind = TraceEventKind::kRecompile;
      ev.name = "graph_compiler.recompile(" + n.label + ")";
      ev.node = nid;
      recompile_done = issue(Engine::kHost, st.global_last_end,
                             cfg.compiler.recompile_stall, std::move(ev));
    }

    // Input readiness, inserting DMA for cross-engine edges.
    sim::SimTime ready = recompile_done;
    for (ValueId v : n.inputs) {
      const auto vi = static_cast<std::size_t>(v);
      sim::SimTime r = value_ready[vi];
      if ((value_sources[vi] & ~engine_bit(ex.engine)) != 0) {
        const auto key = std::make_pair(v, ex.engine);
        auto it = dma_done.find(key);
        if (it == dma_done.end()) {
          const std::size_t bytes = g.value(v).nbytes();
          // Fault injection: a timed-out transfer re-issues after exponential
          // backoff; each attempt is its own kDma event with an increasing
          // `retry` index, and consumers wait for the last attempt.
          std::uint32_t attempts = 1;
          if (faults != nullptr) {
            const std::uint32_t cap =
                std::max<std::uint32_t>(1, faults->profile().dma_max_attempts);
            while (attempts < cap &&
                   faults->fires(sim::FaultKind::kDmaTimeout,
                                 sim::FaultInjector::site(dma_index,
                                                          attempts - 1))) {
              ++attempts;
            }
          }
          ++dma_index;
          sim::SimTime end = sim::SimTime::zero();
          sim::SimTime attempt_ready = r;
          for (std::uint32_t a = 0; a < attempts; ++a) {
            TraceEvent ev;
            ev.engine = Engine::kDma;
            ev.kind = TraceEventKind::kDma;
            ev.name = "dma:" + g.value(v).name;
            ev.node = nid;
            ev.value = v;
            ev.dma_dst = ex.engine;
            ev.bytes = bytes;
            ev.retry = a;
            end = issue(Engine::kDma, attempt_ready,
                        memory::dma_transfer_time(cfg.memory, bytes),
                        std::move(ev));
            if (a + 1 < attempts) {
              attempt_ready =
                  end + faults->profile().dma_retry_backoff *
                            static_cast<std::int64_t>(1u << a);
            }
          }
          it = dma_done.emplace(key, end).first;
        }
        r = it->second;
      }
      ready = std::max(ready, r);
    }

    // Fault injection: a straggling TPC kernel stretches its compute span;
    // the extension is made explicit as a kStall nested over the tail so the
    // trace (and its invariants) show the stall instead of silently
    // mistiming the kernel.
    sim::SimTime dur = ex.duration;
    sim::SimTime straggle = sim::SimTime::zero();
    if (faults != nullptr && ex.engine == Engine::kTpc &&
        faults->fires(sim::FaultKind::kTpcStraggler,
                      static_cast<std::uint64_t>(nid))) {
      const sim::SimTime stretched = sim::SimTime::from_ps(
          static_cast<std::int64_t>(static_cast<double>(dur.ps()) *
                                        faults->profile().straggler_slowdown +
                                    0.5));
      straggle = stretched - dur;
      dur = stretched;
    }
    // Numerics guard: the sweep of the retiring outputs extends the exec
    // span; like the straggler stall it is made explicit as a nested
    // annotation (kGuard, carrying the sweep's stats) over the tail, so
    // guard overhead is visible in the trace instead of silently inflating
    // the kernel.  The guard runs after any straggle (sweeps wait for the
    // data).
    const sim::SimTime guard = ex.guard_time;
    dur += guard;
    TraceEvent ev;
    ev.engine = ex.engine;
    ev.name = ex.label.empty() ? n.label : ex.label;
    ev.node = nid;
    ev.flops = ex.flops;
    ev.bytes = ex.bytes;
    const sim::SimTime end = issue(ex.engine, ready, dur, std::move(ev));
    if (straggle > sim::SimTime::zero()) {
      TraceEvent stall;
      stall.engine = ex.engine;
      stall.kind = TraceEventKind::kStall;
      stall.name = (ex.label.empty() ? n.label : ex.label) + ".straggle";
      stall.node = nid;
      stall.start = end - guard - straggle;
      stall.end = end - guard;
      trace.add(std::move(stall));
    }
    if (guard > sim::SimTime::zero()) {
      TraceEvent sweep;
      sweep.engine = ex.engine;
      sweep.kind = TraceEventKind::kGuard;
      sweep.name = (ex.label.empty() ? n.label : ex.label) + ".guard";
      sweep.node = nid;
      sweep.start = end - guard;
      sweep.end = end;
      sweep.has_stats = ex.has_stats;
      sweep.stats = ex.stats;
      trace.add(std::move(sweep));
    }

    for (ValueId v : n.outputs) {
      value_ready[static_cast<std::size_t>(v)] = end;
      if (mutable_sources) {
        mutable_sources[static_cast<std::size_t>(v)] = engine_bit(ex.engine);
      }
    }
  }

  return trace;
}

}  // namespace

Trace schedule(const Graph& g, const std::vector<NodeExec>& execs,
               const sim::ChipConfig& cfg, SchedulePolicy policy,
               const sim::FaultInjector* faults) {
  return schedule_impl(g, execs, cfg, policy, nullptr, faults);
}

Trace schedule(const CompiledGraph& cg, const std::vector<NodeExec>& execs,
               SchedulePolicy policy, const sim::FaultInjector* faults) {
  return schedule_impl(cg.graph, execs, cg.config, policy, &cg.value_sources,
                       faults);
}

}  // namespace gaudi::graph

#include "graph/trace.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "sim/error.hpp"

namespace gaudi::graph {

void Trace::add(TraceEvent e) {
  GAUDI_CHECK(e.end >= e.start, "trace event ends before it starts");
  events_.push_back(std::move(e));
}

sim::SimTime Trace::makespan() const {
  sim::SimTime m = sim::SimTime::zero();
  for (const auto& e : events_) m = std::max(m, e.end);
  return m;
}

sim::SimTime Trace::busy(Engine eng) const {
  sim::SimTime b = sim::SimTime::zero();
  for (const auto& e : events_) {
    // kStall/kGuard nest inside their parent span; counting them would
    // double-bill.
    if (is_nested_annotation(e.kind)) continue;
    if (e.engine == eng) b += e.duration();
  }
  return b;
}

double Trace::utilization(Engine eng) const {
  const sim::SimTime m = makespan();
  if (m <= sim::SimTime::zero()) return 0.0;
  return busy(eng).seconds() / m.seconds();
}

std::vector<Gap> Trace::gaps(Engine eng) const {
  std::vector<TraceEvent> mine;
  for (const auto& e : events_) {
    if (e.engine == eng) mine.push_back(e);
  }
  std::sort(mine.begin(), mine.end(),
            [](const TraceEvent& a, const TraceEvent& b) { return a.start < b.start; });

  std::vector<Gap> gaps;
  sim::SimTime cursor = sim::SimTime::zero();
  for (const auto& e : mine) {
    if (e.start > cursor) gaps.push_back(Gap{cursor, e.start});
    cursor = std::max(cursor, e.end);
  }
  const sim::SimTime m = makespan();
  if (m > cursor) gaps.push_back(Gap{cursor, m});
  return gaps;
}

namespace {

bool is_word_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0;
}

/// True when `pattern` occurs in `name` with both ends on token boundaries
/// (string edge or non-alphanumeric neighbour).  Bare substring search let
/// "exp" match unrelated kernels like "expand"; boundary matching keeps
/// "exp", "h0.q_exp" and "exp_grad" while rejecting "expand"/"index".
bool matches_on_token_boundary(const std::string& name,
                               const std::string& pattern) {
  if (pattern.empty()) return true;
  std::size_t pos = 0;
  while ((pos = name.find(pattern, pos)) != std::string::npos) {
    const std::size_t end = pos + pattern.size();
    const bool left_ok = pos == 0 || !is_word_char(name[pos - 1]);
    const bool right_ok = end == name.size() || !is_word_char(name[end]);
    if (left_ok && right_ok) return true;
    ++pos;
  }
  return false;
}

}  // namespace

sim::SimTime Trace::busy_matching(const std::string& substr, Engine eng) const {
  sim::SimTime b = sim::SimTime::zero();
  for (const auto& e : events_) {
    if (is_nested_annotation(e.kind)) continue;
    if (eng != Engine::kNone && e.engine != eng) continue;
    if (matches_on_token_boundary(e.name, substr)) b += e.duration();
  }
  return b;
}

double Trace::share_of_engine(const std::string& substr, Engine eng) const {
  const sim::SimTime total = busy(eng);
  if (total <= sim::SimTime::zero()) return 0.0;
  return busy_matching(substr, eng).seconds() / total.seconds();
}

std::map<std::string, sim::SimTime> Trace::busy_by_name(Engine eng) const {
  std::map<std::string, sim::SimTime> by_name;
  for (const auto& e : events_) {
    if (is_nested_annotation(e.kind)) continue;
    if (e.engine == eng) by_name[e.name] += e.duration();
  }
  return by_name;
}

namespace {

void json_escape(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      case '\b': os << "\\b"; break;
      case '\f': os << "\\f"; break;
      default:
        if (u < 0x20) {
          // Remaining control characters are only legal as \uXXXX escapes;
          // raw bytes make chrome://tracing and Perfetto reject the file.
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", u);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

std::string Trace::to_chrome_json() const {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& e : events_) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"";
    json_escape(os, e.name);
    os << "\",\"ph\":\"X\",\"pid\":0,\"tid\":\"" << engine_name(e.engine)
       << "\",\"ts\":" << e.start.us() << ",\"dur\":" << e.duration().us()
       << ",\"args\":{\"node\":" << e.node << ",\"flops\":" << e.flops
       << ",\"bytes\":" << e.bytes;
    // Fault-only and guard-only fields are emitted conditionally so
    // fault-free, unguarded traces stay byte-identical to earlier builds.
    if (e.retry > 0) os << ",\"retry\":" << e.retry;
    if (e.kind == TraceEventKind::kStall) os << ",\"stall\":true";
    if (e.kind == TraceEventKind::kGuard) os << ",\"guard\":true";
    if (e.has_stats) {
      os << ",\"nan\":" << e.stats.nan_count << ",\"inf\":" << e.stats.inf_count
         << ",\"denormal\":" << e.stats.denormal_count
         << ",\"bf16_overflow\":" << e.stats.bf16_overflow_count
         << ",\"max_abs\":" << e.stats.max_abs;
    }
    os << "}}";
  }
  os << "],\"displayTimeUnit\":\"ms\"}";
  return os.str();
}

void Trace::write_chrome_json(const std::string& path) const {
  std::ofstream f(path);
  GAUDI_CHECK(f.good(), "cannot open trace output file: " + path);
  f << to_chrome_json();
}

std::string Trace::ascii_timeline(int width) const {
  GAUDI_CHECK(width >= 10, "timeline width too small");
  const sim::SimTime m = makespan();
  std::ostringstream os;
  if (m <= sim::SimTime::zero()) {
    os << "(empty trace)\n";
    return os.str();
  }
  const double scale = static_cast<double>(width) / static_cast<double>(m.ps());
  constexpr std::array<Engine, 4> rows{Engine::kMme, Engine::kTpc, Engine::kDma,
                                       Engine::kHost};
  for (Engine eng : rows) {
    std::string line(static_cast<std::size_t>(width), '.');
    bool any = false;
    // Two passes: stall ('~') and guard ('+') markers paint over the busy
    // span they nest in.
    for (const bool annotation_pass : {false, true}) {
      for (const auto& e : events_) {
        if (e.engine != eng) continue;
        if (is_nested_annotation(e.kind) != annotation_pass) continue;
        any = true;
        auto b = static_cast<std::int64_t>(static_cast<double>(e.start.ps()) * scale);
        auto en = static_cast<std::int64_t>(static_cast<double>(e.end.ps()) * scale);
        b = std::clamp<std::int64_t>(b, 0, width - 1);
        en = std::clamp<std::int64_t>(en, b, width - 1);
        const char mark = annotation_pass
                              ? (e.kind == TraceEventKind::kGuard ? '+' : '~')
                              : (e.engine == Engine::kHost ? '!' : '#');
        for (std::int64_t i = b; i <= en; ++i) line[static_cast<std::size_t>(i)] = mark;
      }
    }
    if (!any && (eng == Engine::kDma || eng == Engine::kHost)) continue;
    os << (engine_name(eng).size() == 3 ? std::string(engine_name(eng)) + " "
                                        : std::string(engine_name(eng)))
       << " |" << line << "| " << (eng == Engine::kMme || eng == Engine::kTpc
                                       ? sim::to_string(busy(eng)) + " busy"
                                       : "")
       << "\n";
  }
  os << "t = 0 .. " << sim::to_string(m) << "  ('#' busy, '.' idle, '!' compile stall)\n";
  return os.str();
}

}  // namespace gaudi::graph

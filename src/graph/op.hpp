// Operation vocabulary of the graph IR.
//
// This mirrors the PyTorch-on-SynapseAI operator set the paper profiles
// (Table 1), plus the fused backward ops a training step needs.  The
// mapping rule is the paper's central observation: *only matrix products
// run on the MME; everything else — element-wise ops, reductions, softmax,
// even scalar*tensor — runs on the TPC.*
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "tensor/shape.hpp"
#include "tpc/kernels.hpp"

namespace gaudi::graph {

enum class OpKind : std::uint8_t {
  // MME
  kMatMul,
  // Element-wise binary (TPC)
  kAdd, kSub, kMul, kDiv, kMaxEw,
  // Element-wise with a scalar immediate (TPC)
  kAddScalar, kSubScalar, kRsubScalar, kMulScalar,
  // Element-wise unary (TPC); the unary flavour lives in OpAttrs::unary
  kUnary,
  kUnaryGrad,
  // Structured TPC ops
  kGlu, kGluGrad,
  kDropout,
  kSoftmax, kSoftmaxGrad,
  kLayerNorm, kLayerNormInputGrad, kLayerNormParamGrad,
  kReduceSum, kReduceMax, kReduceMean,
  kBroadcastLast,
  kAddRowvec, kMulRowvec,
  kColumnSum,
  kFill,
  kTranspose,
  kSwapAxes12,
  kAddMask2D,
  kConcatRows,
  kSliceRows,
  kEmbedding, kEmbeddingGrad,
  kCrossEntropyMean, kCrossEntropyGrad,
  kSgdUpdate, kAdamUpdate,
  kCast,
  // Metadata-only (no engine time; the compiler elides it)
  kReshape,
};

[[nodiscard]] std::string_view op_kind_name(OpKind k);

/// Compute engines of the chip, as they appear in hardware traces.
enum class Engine : std::uint8_t {
  kMme,
  kTpc,
  kDma,
  kHost,  ///< graph-compiler activity (e.g. JIT recompilation stalls)
  kNone,  ///< metadata ops that consume no engine time
};

[[nodiscard]] std::string_view engine_name(Engine e);

/// Number of Engine enumerators.  Sized from the enum so per-engine arrays
/// (scheduler timelines, validator bookkeeping) can never be indexed out of
/// bounds by a newly added engine variant.
inline constexpr std::size_t kEngineCount =
    static_cast<std::size_t>(Engine::kNone) + 1;
static_assert(static_cast<std::size_t>(Engine::kMme) == 0 &&
                  static_cast<std::size_t>(Engine::kTpc) == 1 &&
                  static_cast<std::size_t>(Engine::kDma) == 2 &&
                  static_cast<std::size_t>(Engine::kHost) == 3 &&
                  static_cast<std::size_t>(Engine::kNone) == kEngineCount - 1,
              "Engine enumerators must stay dense with kNone last; per-engine "
              "arrays are sized by kEngineCount");

/// Static attributes of an op.
struct OpAttrs {
  tpc::UnaryKind unary = tpc::UnaryKind::kRelu;  ///< for kUnary/kUnaryGrad
  float alpha = 1.0f;       ///< leaky slope / ELU alpha
  float scalar = 0.0f;      ///< immediate for scalar ops
  float eps = 1e-5f;        ///< layernorm epsilon
  float p = 0.0f;           ///< dropout probability
  float scale = 1.0f;       ///< cross-entropy-grad scale
  std::uint64_t seed = 0;   ///< dropout RNG offset
  float lr = 1e-3f;         ///< optimizer learning rate
  float beta1 = 0.9f;       ///< Adam first-moment decay / SGD momentum
  float beta2 = 0.999f;     ///< Adam second-moment decay
  std::int64_t step = 1;    ///< Adam bias-correction step counter
  std::int64_t dim = 0;     ///< broadcast width / embedding vocab / slice begin
  std::int64_t count = 0;   ///< slice row count
  tensor::DType cast_to = tensor::DType::F32;  ///< target dtype for kCast
  tensor::Shape shape{};    ///< target shape for kFill / kReshape
  bool trans_a = false;     ///< matmul operand transposes
  bool trans_b = false;
  /// The op lacks first-class backend support and forces a JIT recompile on
  /// first execution (the paper's explanation of GLU's MME blank area).
  bool requires_recompile = false;
};

/// The operation -> engine mapping (paper Table 1): matrix products to the
/// MME, everything else to the TPC; pure-metadata ops run nowhere.
[[nodiscard]] constexpr Engine engine_of(OpKind k) {
  switch (k) {
    case OpKind::kMatMul:
      return Engine::kMme;
    case OpKind::kReshape:
      return Engine::kNone;
    default:
      return Engine::kTpc;
  }
}

}  // namespace gaudi::graph

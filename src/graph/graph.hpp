// Graph IR: values, nodes, and a builder with shape inference.
//
// A Graph is the unit SynapseAI compiles: values are tensors (inputs,
// parameters, intermediates), nodes are ops.  Construction performs shape
// inference and validation; execution and scheduling live in runtime.hpp.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/op.hpp"
#include "tensor/shape.hpp"

namespace gaudi::graph {

using ValueId = std::int32_t;
using NodeId = std::int32_t;
inline constexpr ValueId kInvalidValue = -1;

/// How a value enters the graph.
enum class ValueRole : std::uint8_t {
  kInput,         ///< fed at run time (activations, token ids)
  kParam,         ///< persistent parameter (weights)
  kIntermediate,  ///< produced by a node
};

struct ValueInfo {
  tensor::Shape shape;
  tensor::DType dtype = tensor::DType::F32;
  ValueRole role = ValueRole::kIntermediate;
  std::string name;
  NodeId producer = -1;       ///< -1 for inputs/params
  std::vector<NodeId> consumers;
  bool is_output = false;     ///< kept alive until the end of the run

  [[nodiscard]] std::size_t nbytes() const {
    return static_cast<std::size_t>(shape.numel()) * tensor::dtype_size(dtype);
  }
};

struct Node {
  OpKind kind{};
  OpAttrs attrs{};
  std::string label;
  std::vector<ValueId> inputs;
  std::vector<ValueId> outputs;
};

class Graph {
 public:
  // -- Value creation ---------------------------------------------------------

  ValueId input(tensor::Shape shape, tensor::DType dtype = tensor::DType::F32,
                std::string name = "input");
  ValueId param(tensor::Shape shape, std::string name = "param");

  /// Marks a value as a graph output (kept alive; returned from runs).
  void mark_output(ValueId v);

  // -- Generic op insertion ----------------------------------------------------

  /// Appends a node; output shapes are inferred from the op kind and inputs.
  /// Returns the new node's outputs.
  std::vector<ValueId> add_op(OpKind kind, std::vector<ValueId> inputs,
                              OpAttrs attrs = {}, std::string label = "");

  // -- Convenience builders (single-output ops) --------------------------------

  ValueId matmul(ValueId a, ValueId b, bool trans_a = false, bool trans_b = false,
                 std::string label = "matmul");
  /// Matmul with the bias add fused into the MME drain (as the graph
  /// compiler does for Linear layers).
  ValueId matmul_bias(ValueId a, ValueId b, ValueId bias,
                      std::string label = "matmul_bias");
  ValueId add(ValueId a, ValueId b, std::string label = "add");
  ValueId sub(ValueId a, ValueId b, std::string label = "sub");
  ValueId mul(ValueId a, ValueId b, std::string label = "mul");
  ValueId div(ValueId a, ValueId b, std::string label = "div");
  ValueId add_scalar(ValueId a, float s, std::string label = "add_scalar");
  ValueId mul_scalar(ValueId a, float s, std::string label = "mul_scalar");
  ValueId unary(tpc::UnaryKind kind, ValueId x, float alpha = 1.0f,
                std::string label = "");
  ValueId exp(ValueId x) { return unary(tpc::UnaryKind::kExp, x, 1.0f, "exp"); }
  ValueId relu(ValueId x) { return unary(tpc::UnaryKind::kRelu, x, 1.0f, "relu"); }
  ValueId gelu(ValueId x) { return unary(tpc::UnaryKind::kGelu, x, 1.0f, "gelu"); }
  ValueId elu(ValueId x, float alpha = 1.0f) {
    return unary(tpc::UnaryKind::kElu, x, alpha, "elu");
  }
  ValueId sigmoid(ValueId x) {
    return unary(tpc::UnaryKind::kSigmoid, x, 1.0f, "sigmoid");
  }
  ValueId glu(ValueId x, bool requires_recompile = true,
              std::string label = "glu");
  ValueId softmax(ValueId x, std::string label = "softmax");
  /// Returns {y, saved_mean, saved_rstd}.
  std::vector<ValueId> layernorm(ValueId x, ValueId gamma, ValueId beta,
                                 float eps = 1e-5f, std::string label = "layernorm");
  ValueId reduce_sum(ValueId x, std::string label = "reduce_sum");
  ValueId reduce_mean(ValueId x, std::string label = "reduce_mean");
  ValueId broadcast_last(ValueId x, std::int64_t d,
                         std::string label = "broadcast_last");
  ValueId add_rowvec(ValueId x, ValueId v, std::string label = "bias_add");
  ValueId transpose(ValueId x, std::string label = "transpose");
  /// [A,B,C,D] -> [A,C,B,D] (multi-head head split/merge).
  ValueId swap_axes12(ValueId x, std::string label = "swap_axes12");
  /// Concatenate along the row (rank-2) axis: the KV-cache append.
  ValueId concat_rows(ValueId a, ValueId b, std::string label = "concat_rows");
  /// Slice `count` rows starting at `begin` along the row axis.
  ValueId slice_rows(ValueId x, std::int64_t begin, std::int64_t count,
                     std::string label = "slice_rows");
  ValueId reshape(ValueId x, tensor::Shape new_shape, std::string label = "reshape");
  /// Precision cast (f32 <-> bf16) on the TPC.
  ValueId cast(ValueId x, tensor::DType to, std::string label = "cast");
  ValueId fill(tensor::Shape shape, float value, std::string label = "fill");
  ValueId ones_like(ValueId x, std::string label = "ones_like");
  ValueId dropout(ValueId x, float p, std::uint64_t seed,
                  std::string label = "dropout");
  ValueId embedding(ValueId table, ValueId ids, std::string label = "embedding");
  /// Mean cross-entropy over [N, V] logits and [N] i32 targets -> scalar [1].
  ValueId cross_entropy_mean(ValueId logits, ValueId targets,
                             std::string label = "cross_entropy");

  // -- Introspection -----------------------------------------------------------

  [[nodiscard]] const std::vector<ValueInfo>& values() const { return values_; }
  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }
  [[nodiscard]] const ValueInfo& value(ValueId v) const;
  [[nodiscard]] const Node& node(NodeId n) const;
  [[nodiscard]] std::size_t num_values() const { return values_.size(); }
  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }

  /// Total bytes of all parameter values.
  [[nodiscard]] std::size_t param_bytes() const;

 private:
  ValueId new_value(tensor::Shape shape, tensor::DType dtype, ValueRole role,
                    std::string name, NodeId producer);
  /// Infers output ValueInfos for a node being added.
  std::vector<ValueId> infer_outputs(OpKind kind, const OpAttrs& attrs,
                                     const std::vector<ValueId>& inputs,
                                     const std::string& label, NodeId node_id);

  std::vector<ValueInfo> values_;
  std::vector<Node> nodes_;
};

}  // namespace gaudi::graph

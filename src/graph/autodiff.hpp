// Reverse-mode differentiation over the graph IR.
//
// `build_backward` appends gradient nodes to the same graph, so a training
// step (forward + loss + backward) is a single compiled graph — matching how
// PyTorch-on-SynapseAI hands the whole training iteration to the Graph
// Compiler, which is the regime the paper's end-to-end profiles (Figs 8, 9)
// run in.  Gradients flow through every op the model library emits; ops with
// no sensible gradient (argmax-style reductions) throw.
#pragma once

#include <span>
#include <unordered_map>

#include "graph/graph.hpp"

namespace gaudi::graph {

struct BackwardResult {
  /// Gradient value for each requested value id.
  std::unordered_map<ValueId, ValueId> grads;
};

/// Appends backward nodes for scalar `loss` and returns gradients for each
/// value in `wrt` (typically the parameter values).  The seed gradient
/// d loss/d loss = 1 is implicit: terminal fused losses (kCrossEntropyMean)
/// fold it into their grad op, other paths materialize a fill(1).
[[nodiscard]] BackwardResult build_backward(Graph& g, ValueId loss,
                                            std::span<const ValueId> wrt);

}  // namespace gaudi::graph

// Process-wide memo for the timing-only fast path.
//
// A timing-only run (`RunOptions::timing_only` / GAUDI_TIMING_ONLY) exists
// to be repeated: serving sweeps execute the same compiled decode step for
// millions of simulated tokens, and batch experiments re-simulate the same
// cell across seeds and rates.  The first such run of a compiled graph pays
// the real executor + scheduler once and deposits its ProfileResult here,
// keyed by the artifact's structural fingerprint plus the RunOptions that
// affect timing (scheduler policy; the execution seed does not — timing-mode
// durations are analytic functions of shapes).  Every later run of an
// equal-fingerprint artifact is a table lookup — no kernel math, no buffer
// traffic, no re-scheduling.
//
// Higher layers key coarser entries through the same store: the serving
// scheduler and nn::DecodeStepCache memoize per-step *makespans* so a
// repeated decode step costs one mutex-guarded map probe, without even
// building or compiling the step graph.
//
// The memo is deliberately process-global (guarded by a mutex, safe for the
// batch runner's parallel replicas): the entries are pure functions of their
// keys, so sharing across Runtime instances, threads, and schedulers can
// never change a result — only make it arrive faster.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "sim/time.hpp"

namespace gaudi::graph {

struct CompiledGraph;
struct ProfileResult;
struct RunOptions;

class TimingMemo {
 public:
  /// The process-wide instance every timing-only run shares.
  [[nodiscard]] static TimingMemo& global();

  /// Full-profile entries (Runtime::run fast path). ------------------------
  [[nodiscard]] std::shared_ptr<const ProfileResult> find_profile(
      const std::string& key);
  void insert_profile(const std::string& key,
                      std::shared_ptr<const ProfileResult> result);

  /// Makespan-only entries (decode-step / prefill-chunk cost tables). ------
  [[nodiscard]] bool find_time(const std::string& key, sim::SimTime* out);
  void insert_time(const std::string& key, sim::SimTime t);

  /// Cross-process persistence. --------------------------------------------
  /// The makespan entries are pure functions of their fingerprint keys, so
  /// they survive the process: a sweep can deposit its cost tables on disk
  /// and the next process warm-starts instead of re-simulating the first
  /// cell.  Only `times_` persists — full ProfileResults are cheap to
  /// rebuild and expensive to serialize.
  ///
  /// `save_times` writes a sorted, checksummed text file atomically
  /// (tmp + rename); returns the number of entries written.
  std::size_t save_times(const std::string& path) const;
  /// Loads `path` and merges its entries (existing keys win).  Rejects
  /// damage with the checkpoint error hierarchy: CheckpointVersionSkew for
  /// a foreign magic/version, CheckpointTruncated for a file that ends
  /// early, CheckpointChecksumMismatch for bit rot, CheckpointError for
  /// garbled entries.  Returns the number of entries merged.
  std::size_t load_times(const std::string& path);

  /// Lookup counters, over both entry kinds.  A hit proves the O(1) path
  /// was taken; tests and bench_serving assert on the deltas.
  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;
  /// Resident entries (profiles + makespans).
  [[nodiscard]] std::size_t size() const;
  /// Drops every entry and zeroes the counters (tests only).
  void clear();

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const ProfileResult>> profiles_;
  std::unordered_map<std::string, sim::SimTime> times_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// True when GAUDI_TIMING_ONLY requests the fast path for timing-mode runs.
[[nodiscard]] bool timing_only_from_env();

/// The GAUDI_MEMO_FILE path, or empty when unset.  When set, the global
/// memo auto-loads the file on first access (a damaged file warns once on
/// stderr and starts empty — persistence is an accelerator, never a gate),
/// and the CLI / bench sweeps save back on exit.
[[nodiscard]] std::string memo_file_from_env();

/// Saves the global memo's makespan entries to GAUDI_MEMO_FILE if set.
/// Returns the number of entries written (0 when unset or empty).
std::size_t save_memo_to_env_file();

/// Resolves RunOptions::timing_only: an explicit setting wins; unset defers
/// to GAUDI_TIMING_ONLY, which only ever applies to runs already in timing
/// mode (a functional run's outputs are its contract — the environment
/// cannot silently turn them into phantoms).
[[nodiscard]] bool timing_only_enabled(const RunOptions& opts);

/// Memo key for a full Runtime::run profile of `cg` under `opts`.
[[nodiscard]] std::string timing_memo_key(const CompiledGraph& cg,
                                          const RunOptions& opts);

}  // namespace gaudi::graph

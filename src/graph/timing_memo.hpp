// Process-wide memo for the timing-only fast path.
//
// A timing-only run (`RunOptions::timing_only` / GAUDI_TIMING_ONLY) exists
// to be repeated: serving sweeps execute the same compiled decode step for
// millions of simulated tokens, and batch experiments re-simulate the same
// cell across seeds and rates.  The first such run of a compiled graph pays
// the real executor + scheduler once and deposits its ProfileResult here,
// keyed by the artifact's structural fingerprint plus the RunOptions that
// affect timing (scheduler policy; the execution seed does not — timing-mode
// durations are analytic functions of shapes).  Every later run of an
// equal-fingerprint artifact is a table lookup — no kernel math, no buffer
// traffic, no re-scheduling.
//
// Higher layers key coarser entries through the same store: the serving
// scheduler and nn::DecodeStepCache memoize per-step *makespans* so a
// repeated decode step costs one mutex-guarded map probe, without even
// building or compiling the step graph.
//
// The memo is deliberately process-global (guarded by a mutex, safe for the
// batch runner's parallel replicas): the entries are pure functions of their
// keys, so sharing across Runtime instances, threads, and schedulers can
// never change a result — only make it arrive faster.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "sim/time.hpp"

namespace gaudi::graph {

struct CompiledGraph;
struct ProfileResult;
struct RunOptions;

class TimingMemo {
 public:
  /// The process-wide instance every timing-only run shares.
  [[nodiscard]] static TimingMemo& global();

  /// Full-profile entries (Runtime::run fast path). ------------------------
  [[nodiscard]] std::shared_ptr<const ProfileResult> find_profile(
      const std::string& key);
  void insert_profile(const std::string& key,
                      std::shared_ptr<const ProfileResult> result);

  /// Makespan-only entries (decode-step / prefill-chunk cost tables). ------
  [[nodiscard]] bool find_time(const std::string& key, sim::SimTime* out);
  void insert_time(const std::string& key, sim::SimTime t);

  /// Lookup counters, over both entry kinds.  A hit proves the O(1) path
  /// was taken; tests and bench_serving assert on the deltas.
  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;
  /// Resident entries (profiles + makespans).
  [[nodiscard]] std::size_t size() const;
  /// Drops every entry and zeroes the counters (tests only).
  void clear();

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const ProfileResult>> profiles_;
  std::unordered_map<std::string, sim::SimTime> times_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// True when GAUDI_TIMING_ONLY requests the fast path for timing-mode runs.
[[nodiscard]] bool timing_only_from_env();

/// Resolves RunOptions::timing_only: an explicit setting wins; unset defers
/// to GAUDI_TIMING_ONLY, which only ever applies to runs already in timing
/// mode (a functional run's outputs are its contract — the environment
/// cannot silently turn them into phantoms).
[[nodiscard]] bool timing_only_enabled(const RunOptions& opts);

/// Memo key for a full Runtime::run profile of `cg` under `opts`.
[[nodiscard]] std::string timing_memo_key(const CompiledGraph& cg,
                                          const RunOptions& opts);

}  // namespace gaudi::graph

#include "graph/compiler.hpp"

#include <algorithm>
#include <chrono>
#include <iomanip>
#include <map>
#include <sstream>
#include <utility>

#include "graph/fingerprint.hpp"

namespace gaudi::graph {

namespace {

constexpr std::uint8_t engine_bit(Engine e) {
  return static_cast<std::uint8_t>(1u << static_cast<unsigned>(e));
}

std::string format_bytes(std::size_t bytes) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2)
     << static_cast<double>(bytes) / (1 << 20) << " MB";
  return os.str();
}

// -- Passes -----------------------------------------------------------------

void pass_engine_mapping(CompiledGraph& cg) {
  const Graph& g = cg.graph;
  cg.node_engine.resize(g.num_nodes());
  for (NodeId n = 0; n < static_cast<NodeId>(g.num_nodes()); ++n) {
    cg.node_engine[static_cast<std::size_t>(n)] = engine_of(g.node(n).kind);
  }
}

void pass_fusion(CompiledGraph& cg) {
  const Graph& g = cg.graph;
  if (!cg.options.fuse_elementwise) {
    cg.fusion.group_of.assign(g.num_nodes(), -1);
    cg.fusion.internal_value.assign(g.num_values(), false);
    return;
  }
  cg.fusion = plan_fusion(g);
  cg.chains.reserve(cg.fusion.groups.size());
  for (const FusionGroup& group : cg.fusion.groups) {
    cg.chains.push_back(build_chain_spec(g, group));
    cg.stats.fused_nodes += group.nodes.size();
    // Non-tail links are absorbed into the tail's fused kernel: they run on
    // no engine of their own.
    for (std::size_t i = 0; i + 1 < group.nodes.size(); ++i) {
      cg.node_engine[static_cast<std::size_t>(group.nodes[i])] = Engine::kNone;
    }
  }
  cg.stats.fusion_groups = cg.fusion.groups.size();
}

void pass_dma_insertion(CompiledGraph& cg) {
  const Graph& g = cg.graph;
  cg.value_sources.assign(g.num_values(), 0);
  std::map<std::pair<ValueId, Engine>, bool> seen;
  for (NodeId nid = 0; nid < static_cast<NodeId>(g.num_nodes()); ++nid) {
    const Node& n = g.node(nid);
    const Engine eng = cg.node_engine[static_cast<std::size_t>(nid)];
    if (eng == Engine::kNone) {
      // Metadata (and fused non-tail) outputs are views over their inputs:
      // backed by the union of the inputs' source engines.
      std::uint8_t sources = 0;
      for (ValueId v : n.inputs) {
        sources |= cg.value_sources[static_cast<std::size_t>(v)];
      }
      for (ValueId v : n.outputs) {
        cg.value_sources[static_cast<std::size_t>(v)] = sources;
      }
      continue;
    }
    for (ValueId v : n.inputs) {
      const auto vi = static_cast<std::size_t>(v);
      if ((cg.value_sources[vi] & ~engine_bit(eng)) == 0) continue;
      if (!seen.emplace(std::make_pair(v, eng), true).second) continue;
      cg.dmas.push_back(PlannedDma{v, eng, nid, g.value(v).nbytes()});
    }
    for (ValueId v : n.outputs) {
      cg.value_sources[static_cast<std::size_t>(v)] = engine_bit(eng);
    }
  }
  cg.stats.planned_dmas = cg.dmas.size();
}

void pass_liveness(CompiledGraph& cg) {
  const Graph& g = cg.graph;
  // A fused chain reads every external operand when its tail launches, so a
  // value consumed by a mid-chain link stays live until the group's tail.
  const auto consume_step = [&cg](NodeId consumer) -> std::int64_t {
    const std::int32_t gi =
        cg.fusion.group_of[static_cast<std::size_t>(consumer)];
    return gi >= 0 ? cg.fusion.groups[static_cast<std::size_t>(gi)].last()
                   : consumer;
  };
  cg.placements.assign(g.num_values(), ValuePlacement{});
  for (ValueId v = 0; v < static_cast<ValueId>(g.num_values()); ++v) {
    const ValueInfo& info = g.value(v);
    ValuePlacement& p = cg.placements[static_cast<std::size_t>(v)];
    p.bytes = info.nbytes();
    if (info.role != ValueRole::kIntermediate) {
      // Inputs and parameters are resident before the first node and are
      // never freed.
      p.has_buffer = true;
      continue;
    }
    p.def = info.producer;
    // Fusion-internal chain links live in vector registers; reshape outputs
    // alias their input's storage.  Neither owns device bytes.
    if (cg.fusion.internal_value[static_cast<std::size_t>(v)]) continue;
    if (g.node(info.producer).kind == OpKind::kReshape) continue;
    p.has_buffer = true;
    if (info.is_output) continue;  // kept alive until the end of the run
    // Freed by the step that consumes it last — or immediately by its
    // producer when nothing consumes it.
    if (info.consumers.empty()) {
      p.freed_at = info.producer;
    } else {
      std::int64_t last = -1;
      for (const NodeId c : info.consumers) {
        last = std::max(last, consume_step(c));
      }
      p.freed_at = last;
    }
  }
}

void pass_memory_planning(CompiledGraph& cg) {
  const Graph& g = cg.graph;
  // Intervals in the dynamic allocator's order: inputs/params in ValueId
  // order before the first node, then each node's outputs (ascending
  // ValueIds by construction).
  std::vector<memory::BufferInterval> intervals;
  std::vector<ValueId> interval_value;
  for (ValueId v = 0; v < static_cast<ValueId>(g.num_values()); ++v) {
    const ValuePlacement& p = cg.placements[static_cast<std::size_t>(v)];
    if (!p.has_buffer) continue;
    memory::BufferInterval iv;
    iv.def = p.def;
    iv.free = p.freed_at;
    iv.bytes = p.bytes;
    iv.tag = g.value(v).name;
    intervals.push_back(std::move(iv));
    interval_value.push_back(v);
  }
  const std::size_t capacity =
      cg.options.enforce_capacity ? cg.config.memory.hbm_bytes : 0;
  const memory::MemoryPlan plan = memory::plan_memory(intervals, capacity);
  for (std::size_t i = 0; i < interval_value.size(); ++i) {
    cg.placements[static_cast<std::size_t>(interval_value[i])].offset =
        plan.buffers[i].offset;
  }
  cg.stats.planned_buffers = intervals.size();
  cg.stats.total_bytes = plan.total_bytes;
  cg.stats.peak_bytes = plan.peak_bytes;
  cg.stats.arena_bytes = plan.arena_bytes;
}

void pass_topological_order(CompiledGraph& cg) {
  const Graph& g = cg.graph;
  cg.order.resize(g.num_nodes());
  for (NodeId nid = 0; nid < static_cast<NodeId>(g.num_nodes()); ++nid) {
    for (ValueId v : g.node(nid).inputs) {
      GAUDI_CHECK(g.value(v).producer < nid,
                  "graph is not topologically ordered at node '" +
                      g.node(nid).label + "'");
    }
    cg.order[static_cast<std::size_t>(nid)] = nid;
  }
}

}  // namespace

std::string CompileStats::to_string() const {
  std::ostringstream os;
  os << "graph compiler:\n";
  for (const Pass& p : passes) {
    os << "  " << std::left << std::setw(20) << p.name << std::right
       << std::fixed << std::setprecision(1) << std::setw(9) << p.microseconds
       << " us";
    if (p.name == "fingerprint") {
      os << "   (0x" << std::hex << fingerprint << std::dec << ")";
    }
    if (p.name == "elementwise-fusion" && fusion_groups > 0) {
      os << "   (" << fusion_groups << " groups, " << fused_nodes << " nodes)";
    }
    if (p.name == "dma-insertion") {
      os << "   (" << planned_dmas << " transfers)";
    }
    if (p.name == "memory-planning") {
      os << "   (" << planned_buffers << " buffers, peak "
         << format_bytes(peak_bytes) << ", arena " << format_bytes(arena_bytes)
         << ", reuse saved " << format_bytes(reuse_saved_bytes()) << ")";
    }
    os << "\n";
  }
  return os.str();
}

CompiledGraph compile_graph(const Graph& g, const sim::ChipConfig& cfg,
                            const CompileOptions& opts) {
  CompiledGraph cg;
  cg.graph = g;
  cg.config = cfg;
  cg.options = opts;

  const auto timed = [&cg](const char* name, auto&& pass) {
    const auto t0 = std::chrono::steady_clock::now();
    pass(cg);
    const auto t1 = std::chrono::steady_clock::now();
    cg.stats.passes.push_back(CompileStats::Pass{
        name,
        std::chrono::duration<double, std::micro>(t1 - t0).count()});
  };

  timed("fingerprint", [](CompiledGraph& c) {
    c.fingerprint = compile_fingerprint(c.graph, c.config, c.options);
    c.stats.fingerprint = c.fingerprint;
  });
  timed("engine-mapping", pass_engine_mapping);
  timed("elementwise-fusion", pass_fusion);
  timed("dma-insertion", pass_dma_insertion);
  timed("liveness", pass_liveness);
  timed("memory-planning", pass_memory_planning);
  timed("topological-order", pass_topological_order);
  return cg;
}

}  // namespace gaudi::graph

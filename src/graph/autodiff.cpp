#include "graph/autodiff.hpp"

#include <unordered_set>

namespace gaudi::graph {

namespace {

/// Book-keeping for reverse accumulation.  The seed gradient (d loss/d loss
/// = 1) is kept *implicit* until an op actually needs it as a tensor; fused
/// terminal losses (cross-entropy-mean) absorb it into their grad op.
class GradMap {
 public:
  explicit GradMap(Graph& g) : g_(&g) {}

  void seed(ValueId v) { implicit_one_.insert(v); }

  [[nodiscard]] bool has(ValueId v) const {
    return grads_.count(v) > 0 || implicit_one_.count(v) > 0;
  }
  [[nodiscard]] bool is_implicit_one(ValueId v) const {
    return implicit_one_.count(v) > 0;
  }

  /// Returns the gradient tensor value, materializing an implicit 1.
  [[nodiscard]] ValueId get(ValueId v) {
    if (auto it = grads_.find(v); it != grads_.end()) return it->second;
    GAUDI_CHECK(implicit_one_.count(v) > 0, "no gradient recorded for value");
    const ValueId one = g_->fill(g_->value(v).shape, 1.0f, "grad_seed");
    implicit_one_.erase(v);
    grads_.emplace(v, one);
    return one;
  }

  void accumulate(ValueId v, ValueId grad) {
    auto it = grads_.find(v);
    if (it == grads_.end()) {
      grads_.emplace(v, grad);
    } else {
      it->second = g_->add(it->second, grad, "grad_accum");
    }
  }

 private:
  Graph* g_;
  std::unordered_map<ValueId, ValueId> grads_;
  std::unordered_set<ValueId> implicit_one_;
};

[[noreturn]] void unsupported(const Node& n) {
  throw sim::InvalidArgument("autodiff: no gradient rule for op '" +
                             std::string(op_kind_name(n.kind)) + "' (node '" +
                             n.label + "')");
}

}  // namespace

BackwardResult build_backward(Graph& g, ValueId loss,
                              std::span<const ValueId> wrt) {
  GAUDI_CHECK(g.value(loss).shape.numel() == 1,
              "autodiff: loss must be a scalar value");
  const auto num_forward_nodes = static_cast<NodeId>(g.num_nodes());

  GradMap grads(g);
  grads.seed(loss);

  for (NodeId nid = num_forward_nodes - 1; nid >= 0; --nid) {
    // Copy what we need: adding grad nodes may reallocate the node vector.
    const Node n = g.node(nid);

    bool any_output_grad = false;
    for (ValueId v : n.outputs) any_output_grad = any_output_grad || grads.has(v);
    if (!any_output_grad) continue;

    auto gy = [&](std::size_t i = 0) { return grads.get(n.outputs[i]); };
    auto acc = [&](std::size_t input_idx, ValueId grad) {
      grads.accumulate(n.inputs[input_idx], grad);
    };

    switch (n.kind) {
      case OpKind::kMatMul: {
        const ValueId a = n.inputs[0];
        const ValueId b = n.inputs[1];
        const bool ta = n.attrs.trans_a;
        const bool tb = n.attrs.trans_b;
        const bool a_batched = g.value(a).shape.rank() > 2;
        const bool b_batched = g.value(b).shape.rank() > 2;
        const ValueId gyv = gy();
        ValueId da;
        if (!ta) {
          da = g.matmul(gyv, b, false, !tb, n.label + ".dA");
        } else if (b_batched || !a_batched) {
          da = g.matmul(b, gyv, tb, true, n.label + ".dA");
        } else {
          // ta with batched A and shared B: keep the batched operand first
          // (dA_b = (dC_b op_b(B)^T)^T), since only the right matmul operand
          // may be unbatched.
          da = g.transpose(g.matmul(gyv, b, false, !tb, n.label + ".dA_t"),
                           n.label + ".dA");
        }
        acc(0, da);

        ValueId db;
        if (a_batched && !b_batched) {
          // Shared right operand: dB sums over the batch.  Flattening the
          // batch and row dims into one contraction axis performs the
          // reduction inside a single MME product:
          //   dB = sum_b op_a(A_b)^T gy_b = flat(op_a(A))^T flat(gy).
          const tensor::Shape a_shape = g.value(a).shape;
          const tensor::Shape gy_shape = g.value(gyv).shape;
          const std::int64_t k_dim =
              ta ? a_shape[a_shape.rank() - 2] : a_shape[a_shape.rank() - 1];
          const std::int64_t n_dim = gy_shape[gy_shape.rank() - 1];
          const ValueId a_rows =
              ta ? g.transpose(a, n.label + ".dB_at") : a;
          const ValueId a_flat = g.reshape(
              a_rows, tensor::Shape{{g.value(a_rows).shape.numel() / k_dim, k_dim}},
              n.label + ".dB_aflat");
          const ValueId gy_flat = g.reshape(
              gyv, tensor::Shape{{gy_shape.numel() / n_dim, n_dim}},
              n.label + ".dB_gflat");
          db = g.matmul(a_flat, gy_flat, true, false, n.label + ".dB");
          if (tb) db = g.transpose(db, n.label + ".dB_t");
        } else {
          db = tb ? g.matmul(gyv, a, true, ta, n.label + ".dB")
                  : g.matmul(a, gyv, !ta, false, n.label + ".dB");
        }
        acc(1, db);
        if (n.inputs.size() == 3) {
          acc(2, g.add_op(OpKind::kColumnSum, {gyv}, {}, n.label + ".dbias")[0]);
        }
        break;
      }
      case OpKind::kAdd:
        acc(0, gy());
        acc(1, gy());
        break;
      case OpKind::kSub:
        acc(0, gy());
        acc(1, g.unary(tpc::UnaryKind::kNeg, gy(), 1.0f, n.label + ".dB"));
        break;
      case OpKind::kMul:
        acc(0, g.mul(gy(), n.inputs[1], n.label + ".dA"));
        acc(1, g.mul(gy(), n.inputs[0], n.label + ".dB"));
        break;
      case OpKind::kDiv: {
        const ValueId t = g.div(gy(), n.inputs[1], n.label + ".dA");
        acc(0, t);
        const ValueId tb2 = g.mul(t, n.outputs[0], n.label + ".t");
        acc(1, g.unary(tpc::UnaryKind::kNeg, tb2, 1.0f, n.label + ".dB"));
        break;
      }
      case OpKind::kAddScalar:
      case OpKind::kSubScalar:
        acc(0, gy());
        break;
      case OpKind::kRsubScalar:
        acc(0, g.unary(tpc::UnaryKind::kNeg, gy(), 1.0f, n.label + ".dx"));
        break;
      case OpKind::kMulScalar:
        acc(0, g.mul_scalar(gy(), n.attrs.scalar, n.label + ".dx"));
        break;
      case OpKind::kUnary: {
        OpAttrs attrs;
        attrs.unary = n.attrs.unary;
        attrs.alpha = n.attrs.alpha;
        acc(0, g.add_op(OpKind::kUnaryGrad, {n.inputs[0], gy()}, attrs,
                        n.label + ".dx")[0]);
        break;
      }
      case OpKind::kGlu:
        acc(0, g.add_op(OpKind::kGluGrad, {n.inputs[0], gy()}, {},
                        n.label + ".dx")[0]);
        break;
      case OpKind::kDropout: {
        // Inverted dropout's backward reapplies the identical mask, which
        // the counter-based RNG regenerates from the same seed.
        OpAttrs attrs;
        attrs.p = n.attrs.p;
        attrs.seed = n.attrs.seed;
        acc(0, g.add_op(OpKind::kDropout, {gy()}, attrs, n.label + ".dx")[0]);
        break;
      }
      case OpKind::kSoftmax:
        acc(0, g.add_op(OpKind::kSoftmaxGrad, {n.outputs[0], gy()}, {},
                        n.label + ".dx")[0]);
        break;
      case OpKind::kLayerNorm: {
        GAUDI_CHECK(grads.has(n.outputs[0]),
                    "autodiff: layernorm y gradient missing");
        const ValueId gyv = gy(0);
        acc(0, g.add_op(OpKind::kLayerNormInputGrad,
                        {n.inputs[0], n.inputs[1], n.outputs[1], n.outputs[2], gyv},
                        {}, n.label + ".dx")[0]);
        const auto dparams = g.add_op(
            OpKind::kLayerNormParamGrad,
            {n.inputs[0], n.outputs[1], n.outputs[2], gyv}, {}, n.label + ".dparam");
        acc(1, dparams[0]);
        acc(2, dparams[1]);
        break;
      }
      case OpKind::kReduceSum: {
        const std::int64_t d =
            g.value(n.inputs[0]).shape[g.value(n.inputs[0]).shape.rank() - 1];
        acc(0, g.broadcast_last(gy(), d, n.label + ".dx"));
        break;
      }
      case OpKind::kReduceMean: {
        const std::int64_t d =
            g.value(n.inputs[0]).shape[g.value(n.inputs[0]).shape.rank() - 1];
        const ValueId b = g.broadcast_last(gy(), d, n.label + ".dx_b");
        acc(0, g.mul_scalar(b, 1.0f / static_cast<float>(d), n.label + ".dx"));
        break;
      }
      case OpKind::kBroadcastLast:
        acc(0, g.reduce_sum(gy(), n.label + ".dx"));
        break;
      case OpKind::kAddRowvec:
        acc(0, gy());
        acc(1, g.add_op(OpKind::kColumnSum, {gy()}, {}, n.label + ".dbias")[0]);
        break;
      case OpKind::kMulRowvec: {
        acc(0, g.add_op(OpKind::kMulRowvec, {gy(), n.inputs[1]}, {},
                        n.label + ".dx")[0]);
        const ValueId t = g.mul(gy(), n.inputs[0], n.label + ".t");
        acc(1, g.add_op(OpKind::kColumnSum, {t}, {}, n.label + ".dvec")[0]);
        break;
      }
      case OpKind::kFill:
        break;  // no inputs
      case OpKind::kTranspose:
        acc(0, g.transpose(gy(), n.label + ".dx"));
        break;
      case OpKind::kSwapAxes12:
        acc(0, g.swap_axes12(gy(), n.label + ".dx"));
        break;
      case OpKind::kAddMask2D: {
        acc(0, gy());
        // The broadcast operand only needs a gradient when it is learned
        // (e.g. position embeddings); constant masks (causal) are inputs.
        if (g.value(n.inputs[1]).role == ValueRole::kParam) {
          // By value: appending gradient nodes below reallocates the graph's
          // value table, so references into it dangle.
          const tensor::Shape ms = g.value(n.inputs[1]).shape;
          const tensor::Shape xs = g.value(n.inputs[0]).shape;
          const std::int64_t batch = xs.numel() / ms.numel();
          const ValueId flat = g.reshape(
              gy(), tensor::Shape{{batch, ms.numel()}}, n.label + ".dmask_flat");
          const ValueId summed =
              g.add_op(OpKind::kColumnSum, {flat}, {}, n.label + ".dmask_sum")[0];
          acc(1, g.reshape(summed, ms, n.label + ".dmask"));
        }
        break;
      }
      case OpKind::kReshape:
        acc(0, g.reshape(gy(), g.value(n.inputs[0]).shape, n.label + ".dx"));
        break;
      case OpKind::kCast:
        acc(0, g.cast(gy(), g.value(n.inputs[0]).dtype, n.label + ".dx"));
        break;
      case OpKind::kConcatRows: {
        const tensor::Shape& sa = g.value(n.inputs[0]).shape;
        const std::int64_t rows_a = sa[sa.rank() - 2];
        const tensor::Shape& sb = g.value(n.inputs[1]).shape;
        const std::int64_t rows_b = sb[sb.rank() - 2];
        const ValueId gyv = gy();
        acc(0, g.slice_rows(gyv, 0, rows_a, n.label + ".dA"));
        acc(1, g.slice_rows(gyv, rows_a, rows_b, n.label + ".dB"));
        break;
      }
      case OpKind::kEmbedding: {
        OpAttrs attrs;
        attrs.dim = g.value(n.inputs[0]).shape[0];  // vocab size
        acc(0, g.add_op(OpKind::kEmbeddingGrad, {n.inputs[1], gy()}, attrs,
                        n.label + ".dtable")[0]);
        break;
      }
      case OpKind::kCrossEntropyMean: {
        OpAttrs attrs;
        attrs.scale =
            1.0f / static_cast<float>(g.value(n.inputs[0]).shape[0]);
        ValueId dl = g.add_op(OpKind::kCrossEntropyGrad,
                              {n.inputs[0], n.inputs[1]}, attrs,
                              n.label + ".dlogits")[0];
        if (!grads.is_implicit_one(n.outputs[0])) {
          // A scalar upstream gradient (the dynamic loss scale) multiplies
          // the whole gradient: broadcast it across the vocab axis.
          const ValueId gyv = gy();
          GAUDI_CHECK(g.value(gyv).shape.numel() == 1,
                      "autodiff: cross_entropy_mean upstream gradient must "
                      "be scalar");
          const ValueId row =
              g.broadcast_last(gyv, g.value(n.inputs[0]).shape[1],
                               n.label + ".dscale_row");
          dl = g.add_op(OpKind::kMulRowvec, {dl, row}, {},
                        n.label + ".dlogits_scaled")[0];
        }
        acc(0, dl);
        break;
      }
      default:
        unsupported(n);
    }
  }

  BackwardResult result;
  for (ValueId v : wrt) {
    GAUDI_CHECK(grads.has(v), "autodiff: requested value receives no gradient: " +
                                  g.value(v).name);
    result.grads.emplace(v, grads.get(v));
  }
  return result;
}

}  // namespace gaudi::graph

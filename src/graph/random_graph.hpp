// Seeded random DAG generation over the real op inventory.
//
// The schedule fuzzer (tests/test_schedule_fuzz.cpp) builds a few hundred of
// these, schedules them under both policies, and runs TraceValidator plus
// functional-executor cross-checks over the results.  Generation is a pure
// function of the seed (CounterRng underneath), so a failing seed reproduces
// exactly on any platform.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "graph/graph.hpp"
#include "tensor/tensor.hpp"

namespace gaudi::graph {

struct RandomDagOptions {
  int min_nodes = 8;
  int max_nodes = 24;
  /// Allow a GLU node whose `requires_recompile` triggers the one-time HOST
  /// stall path.
  bool allow_recompile = false;
};

struct RandomDag {
  Graph graph;
};

/// Builds a random, shape-valid DAG mixing MME matmuls, TPC element-wise /
/// reduction / normalization / structured ops, and metadata reshapes, with
/// tensors small enough for functional execution.  All sink values are
/// marked as graph outputs.
[[nodiscard]] RandomDag random_dag(std::uint64_t seed,
                                   const RandomDagOptions& opts = {});

/// Deterministic feeds for every input/param value of `g` (uniform values in
/// [-1, 1); i32 tensors get small non-negative ints), keyed by the same seed
/// scheme as random_dag.
[[nodiscard]] std::unordered_map<ValueId, tensor::Tensor> random_feeds(
    const Graph& g, std::uint64_t seed);

/// Inject-NaN-at-a-random-node fuzz mode: picks a deterministic corruption
/// target — a produced, consumed, floating-point value — for
/// RunOptions::corrupt_value.  A guarded run must then blame exactly this
/// value (or one downstream of it) when the corruption is read, and an
/// unguarded run must stay silent.  Returns kInvalidValue when the DAG has
/// no such value.
[[nodiscard]] ValueId pick_corruption_target(const Graph& g,
                                             std::uint64_t seed);

/// Value ids reachable downstream of `v` through consumer edges, including
/// `v` itself: the set an anomaly report may legitimately blame after `v`
/// is corrupted.  Blaming anything outside this set is a false positive.
[[nodiscard]] std::vector<ValueId> contamination_cone(const Graph& g,
                                                      ValueId v);

}  // namespace gaudi::graph

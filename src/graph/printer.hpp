// Graph inspection: human-readable dumps and Graphviz DOT export.
//
// The paper's insight #1 asks users to hand the graph compiler enough
// visibility to schedule well; these printers give the *human* the same
// visibility — engine coloring makes MME/TPC placement obvious at a glance.
#pragma once

#include <string>

#include "graph/graph.hpp"

namespace gaudi::graph {

/// One line per node: id, engine, label, shapes.
[[nodiscard]] std::string to_text(const Graph& g);

/// Graphviz DOT: nodes colored by engine (MME blue, TPC orange, metadata
/// gray), edges labeled with tensor shapes.  Render with `dot -Tsvg`.
[[nodiscard]] std::string to_dot(const Graph& g);

void write_dot(const Graph& g, const std::string& path);

}  // namespace gaudi::graph

#include "graph/random_graph.hpp"

#include <string>
#include <vector>

#include "sim/rng.hpp"
#include "tpc/kernels.hpp"

namespace gaudi::graph {

namespace {

/// Seeded builder state: a pool of rank-2 f32 values the next op can draw
/// operands from, plus a draw counter so generation is a pure function of
/// the seed.
struct DagBuilder {
  Graph g;
  sim::CounterRng rng;
  std::uint64_t counter = 0;
  std::vector<ValueId> pool;

  explicit DagBuilder(std::uint64_t seed) : rng(seed) {}

  std::uint64_t draw(std::uint64_t n) { return rng.below(counter++, n); }
  std::int64_t dim() { return std::int64_t{4} << draw(3); }  // 4, 8, or 16

  ValueId fresh_input(std::int64_t rows, std::int64_t cols) {
    const ValueId v =
        g.input(tensor::Shape{{rows, cols}}, tensor::DType::F32,
                "in" + std::to_string(g.num_values()));
    pool.push_back(v);
    return v;
  }

  ValueId pick() { return pool[draw(pool.size())]; }

  /// A pool value with the exact shape, or a fresh input of that shape.
  ValueId pick_shape(std::int64_t rows, std::int64_t cols) {
    std::vector<ValueId> matches;
    for (const ValueId v : pool) {
      const tensor::Shape& s = g.value(v).shape;
      if (s.rank() == 2 && s[0] == rows && s[1] == cols) matches.push_back(v);
    }
    if (matches.empty()) return fresh_input(rows, cols);
    return matches[draw(matches.size())];
  }

  /// A pool value whose trailing dim is `cols` (any row count), or fresh.
  ValueId pick_cols(std::int64_t cols) {
    std::vector<ValueId> matches;
    for (const ValueId v : pool) {
      const tensor::Shape& s = g.value(v).shape;
      if (s.rank() == 2 && s[1] == cols) matches.push_back(v);
    }
    if (matches.empty()) return fresh_input(dim(), cols);
    return matches[draw(matches.size())];
  }

  std::int64_t rows_of(ValueId v) const { return g.value(v).shape[0]; }
  std::int64_t cols_of(ValueId v) const { return g.value(v).shape[1]; }
};

}  // namespace

RandomDag random_dag(std::uint64_t seed, const RandomDagOptions& opts) {
  DagBuilder b(seed);

  const int n_inputs = 2 + static_cast<int>(b.draw(2));
  for (int i = 0; i < n_inputs; ++i) b.fresh_input(b.dim(), b.dim());

  const int n_nodes =
      opts.min_nodes +
      static_cast<int>(b.draw(static_cast<std::uint64_t>(
          opts.max_nodes - opts.min_nodes + 1)));
  bool recompile_used = false;

  for (int i = 0; i < n_nodes; ++i) {
    const std::string tag = "n" + std::to_string(i);
    // The first node is always a matmul so every DAG exercises the MME (and
    // the MME<->TPC DMA edges the validator exists for).
    const std::uint64_t op = i == 0 ? 0 : b.draw(14);
    switch (op) {
      case 0:
      case 1: {  // matmul: [m,k] x [k,n]
        const ValueId a = b.pick();
        const ValueId w = b.pick_shape(b.cols_of(a), b.dim());
        b.pool.push_back(b.g.matmul(a, w, false, false, tag + ".matmul"));
        break;
      }
      case 2: {  // element-wise binary
        const ValueId a = b.pick();
        const ValueId c = b.pick_shape(b.rows_of(a), b.cols_of(a));
        const std::uint64_t which = b.draw(3);
        const ValueId y = which == 0 ? b.g.add(a, c, tag + ".add")
                          : which == 1 ? b.g.mul(a, c, tag + ".mul")
                                       : b.g.sub(a, c, tag + ".sub");
        b.pool.push_back(y);
        break;
      }
      case 3: {  // scalar immediate
        const ValueId a = b.pick();
        const float s = b.rng.uniform(b.counter++, -2.0f, 2.0f);
        b.pool.push_back(b.draw(2) == 0
                             ? b.g.add_scalar(a, s, tag + ".add_scalar")
                             : b.g.mul_scalar(a, s, tag + ".mul_scalar"));
        break;
      }
      case 4: {  // unary
        constexpr tpc::UnaryKind kinds[] = {
            tpc::UnaryKind::kRelu, tpc::UnaryKind::kGelu, tpc::UnaryKind::kExp,
            tpc::UnaryKind::kSigmoid};
        const tpc::UnaryKind kind = kinds[b.draw(4)];
        b.pool.push_back(b.g.unary(kind, b.pick(), 1.0f, tag + ".unary"));
        break;
      }
      case 5:
        b.pool.push_back(b.g.softmax(b.pick(), tag + ".softmax"));
        break;
      case 6: {  // reduction to [r, 1], often re-broadcast
        const ValueId a = b.pick();
        const ValueId r = b.draw(2) == 0 ? b.g.reduce_sum(a, tag + ".reduce_sum")
                                         : b.g.reduce_mean(a, tag + ".reduce_mean");
        if (b.draw(2) == 0) {
          b.pool.push_back(
              b.g.broadcast_last(r, b.cols_of(a), tag + ".broadcast"));
        } else {
          b.pool.push_back(r);
        }
        break;
      }
      case 7:
        b.pool.push_back(b.g.transpose(b.pick(), tag + ".transpose"));
        break;
      case 8: {  // metadata reshape [m,n] -> [n,m]
        const ValueId a = b.pick();
        b.pool.push_back(b.g.reshape(
            a, tensor::Shape{{b.cols_of(a), b.rows_of(a)}}, tag + ".reshape"));
        break;
      }
      case 9: {  // concat along rows
        const ValueId a = b.pick();
        const ValueId c = b.pick_cols(b.cols_of(a));
        b.pool.push_back(b.g.concat_rows(a, c, tag + ".concat"));
        break;
      }
      case 10: {  // slice rows
        const ValueId a = b.pick();
        const std::int64_t rows = b.rows_of(a);
        if (rows < 2) {
          b.pool.push_back(b.g.relu(a));
          break;
        }
        b.pool.push_back(
            b.g.slice_rows(a, 0, rows / 2, tag + ".slice"));
        break;
      }
      case 11: {  // layernorm (multi-output node; params feed the run)
        const ValueId a = b.pick();
        const std::int64_t d = b.cols_of(a);
        const ValueId gamma = b.g.param(tensor::Shape{{d}}, tag + ".gamma");
        const ValueId beta = b.g.param(tensor::Shape{{d}}, tag + ".beta");
        const auto outs = b.g.layernorm(a, gamma, beta, 1e-5f, tag + ".layernorm");
        b.pool.push_back(outs[0]);
        break;
      }
      case 12:
        b.pool.push_back(b.g.dropout(b.pick(), 0.25f, seed + i, tag + ".dropout"));
        break;
      case 13: {  // glu (optionally with the recompile stall) or a fill
        const ValueId a = b.pick();
        if (opts.allow_recompile && !recompile_used && b.cols_of(a) % 2 == 0 &&
            b.cols_of(a) >= 4) {
          recompile_used = true;
          b.pool.push_back(b.g.glu(a, /*requires_recompile=*/true, tag + ".glu"));
        } else {
          b.pool.push_back(
              b.g.fill(tensor::Shape{{b.dim(), b.dim()}},
                       b.rng.uniform(b.counter++, -1.0f, 1.0f), tag + ".fill"));
        }
        break;
      }
      default:
        b.pool.push_back(b.g.relu(b.pick()));
        break;
    }
  }

  // Every dead-end intermediate becomes a graph output so nothing is
  // trivially eliminated and functional runs return comparable tensors.
  for (ValueId v = 0; v < static_cast<ValueId>(b.g.num_values()); ++v) {
    const ValueInfo& info = b.g.value(v);
    if (info.role == ValueRole::kIntermediate && info.consumers.empty()) {
      b.g.mark_output(v);
    }
  }

  RandomDag result;
  result.graph = std::move(b.g);
  return result;
}

std::unordered_map<ValueId, tensor::Tensor> random_feeds(const Graph& g,
                                                         std::uint64_t seed) {
  std::unordered_map<ValueId, tensor::Tensor> feeds;
  for (ValueId v = 0; v < static_cast<ValueId>(g.num_values()); ++v) {
    const ValueInfo& info = g.value(v);
    if (info.role == ValueRole::kIntermediate) continue;
    const sim::CounterRng rng(seed, static_cast<std::uint64_t>(v) + 1);
    tensor::Tensor t = tensor::Tensor::zeros(info.shape, info.dtype);
    if (info.dtype == tensor::DType::I32) {
      auto span = t.i32_mut();
      for (std::size_t i = 0; i < span.size(); ++i) {
        span[i] = static_cast<std::int32_t>(rng.below(i, 4));
      }
    } else {
      auto span = t.f32_mut();
      for (std::size_t i = 0; i < span.size(); ++i) {
        span[i] = rng.uniform(i, -1.0f, 1.0f);
      }
    }
    feeds.emplace(v, std::move(t));
  }
  return feeds;
}

ValueId pick_corruption_target(const Graph& g, std::uint64_t seed) {
  std::vector<ValueId> candidates;
  for (ValueId v = 0; v < static_cast<ValueId>(g.num_values()); ++v) {
    const ValueInfo& info = g.value(v);
    if (info.producer < 0) continue;  // feeds are checksummed, not corrupted
    if (!tensor::is_floating(info.dtype)) continue;
    if (info.consumers.empty()) continue;  // must be read for blame to land
    candidates.push_back(v);
  }
  if (candidates.empty()) return kInvalidValue;
  const sim::CounterRng rng(seed ^ 0xC0881u);
  return candidates[rng.below(0, candidates.size())];
}

std::vector<ValueId> contamination_cone(const Graph& g, ValueId v) {
  std::vector<char> in_cone(g.num_values(), 0);
  std::vector<ValueId> stack{v};
  in_cone[static_cast<std::size_t>(v)] = 1;
  while (!stack.empty()) {
    const ValueId cur = stack.back();
    stack.pop_back();
    for (const NodeId nid : g.value(cur).consumers) {
      for (const ValueId out : g.node(nid).outputs) {
        if (!in_cone[static_cast<std::size_t>(out)]) {
          in_cone[static_cast<std::size_t>(out)] = 1;
          stack.push_back(out);
        }
      }
    }
  }
  std::vector<ValueId> cone;
  for (ValueId u = 0; u < static_cast<ValueId>(g.num_values()); ++u) {
    if (in_cone[static_cast<std::size_t>(u)]) cone.push_back(u);
  }
  return cone;
}

}  // namespace gaudi::graph

#include "graph/fusion.hpp"

#include <algorithm>
#include <cmath>

namespace gaudi::graph {

bool is_fusible_elementwise(OpKind kind) {
  switch (kind) {
    case OpKind::kAdd:
    case OpKind::kSub:
    case OpKind::kMul:
    case OpKind::kDiv:
    case OpKind::kMaxEw:
    case OpKind::kAddScalar:
    case OpKind::kSubScalar:
    case OpKind::kRsubScalar:
    case OpKind::kMulScalar:
    case OpKind::kUnary:
      return true;
    default:
      return false;
  }
}

bool FusionPlan::is_group_tail(const Graph& g, NodeId n) const {
  (void)g;
  const std::int32_t gi = group_of[static_cast<std::size_t>(n)];
  return gi >= 0 && groups[static_cast<std::size_t>(gi)].last() == n;
}

FusionPlan plan_fusion(const Graph& g) {
  FusionPlan plan;
  plan.group_of.assign(g.num_nodes(), -1);
  plan.internal_value.assign(g.num_values(), false);

  auto single_consumer = [&](ValueId v) -> NodeId {
    const ValueInfo& info = g.value(v);
    if (info.is_output || info.consumers.size() != 1) return -1;
    return info.consumers.front();
  };

  for (NodeId n = 0; n < static_cast<NodeId>(g.num_nodes()); ++n) {
    if (plan.group_of[static_cast<std::size_t>(n)] >= 0) continue;
    if (!is_fusible_elementwise(g.node(n).kind)) continue;

    FusionGroup group;
    group.nodes.push_back(n);
    NodeId cur = n;
    for (;;) {
      const ValueId out = g.node(cur).outputs[0];
      const NodeId next = single_consumer(out);
      if (next < 0) break;
      const Node& m = g.node(next);
      if (!is_fusible_elementwise(m.kind)) break;
      if (plan.group_of[static_cast<std::size_t>(next)] >= 0) break;
      if (g.value(m.outputs[0]).shape.numel() != g.value(out).shape.numel()) break;
      group.nodes.push_back(next);
      cur = next;
    }
    if (group.nodes.size() < 2) continue;

    const auto gi = static_cast<std::int32_t>(plan.groups.size());
    for (std::size_t i = 0; i < group.nodes.size(); ++i) {
      plan.group_of[static_cast<std::size_t>(group.nodes[i])] = gi;
      if (i + 1 < group.nodes.size()) {
        // Output feeds the next chain op only: never materialized.
        plan.internal_value[static_cast<std::size_t>(
            g.node(group.nodes[i]).outputs[0])] = true;
      }
    }
    plan.groups.push_back(std::move(group));
  }
  return plan;
}

// ---------------------------------------------------------------------------
// FusedChainSpec / FusedChainKernel
// ---------------------------------------------------------------------------

FusedChainSpec build_chain_spec(const Graph& g, const FusionGroup& group) {
  GAUDI_CHECK(group.nodes.size() >= 2, "fusion group must have >= 2 nodes");

  FusedChainSpec spec;
  const Node& head = g.node(group.first());
  spec.chain_input = head.inputs[0];
  spec.numel = g.value(head.outputs[0]).shape.numel();
  spec.tail = group.last();
  spec.output = g.node(group.last()).outputs[0];

  spec.label = "fused[";
  ValueId chain_value = kInvalidValue;
  for (std::size_t i = 0; i < group.nodes.size(); ++i) {
    const Node& n = g.node(group.nodes[i]);
    GAUDI_CHECK(is_fusible_elementwise(n.kind), "non-fusible op in fusion group");
    FusedChainStep step;
    step.kind = n.kind;
    step.attrs = n.attrs;
    if (i == 0) {
      // Head: operand 0 is the chain input; a second operand is external.
      if (n.inputs.size() == 2) step.external = n.inputs[1];
    } else {
      GAUDI_CHECK(std::find(n.inputs.begin(), n.inputs.end(), chain_value) !=
                      n.inputs.end(),
                  "fusion chain link broken");
      if (n.inputs.size() == 2) {
        const bool chain_is_first = n.inputs[0] == chain_value;
        const ValueId ext = chain_is_first ? n.inputs[1] : n.inputs[0];
        // x op x (both operands are the chain value) needs no external load.
        if (ext != chain_value) {
          step.external = ext;
          step.chain_is_rhs = !chain_is_first;
        }
      }
    }
    spec.steps.push_back(step);
    chain_value = n.outputs[0];
    spec.label += std::string(i ? "+" : "") + std::string(op_kind_name(n.kind));
  }
  spec.label += "]";
  return spec;
}

FusedChainKernel::FusedChainKernel(const FusedChainSpec& spec,
                                   const std::vector<tensor::Tensor>& tensors)
    : chain_input_(tensors[static_cast<std::size_t>(spec.chain_input)]),
      output_(tensors[static_cast<std::size_t>(spec.output)]),
      numel_(spec.numel),
      label_(spec.label) {
  steps_.reserve(spec.steps.size());
  for (const FusedChainStep& s : spec.steps) {
    Step step;
    step.kind = s.kind;
    step.attrs = s.attrs;
    step.chain_is_rhs = s.chain_is_rhs;
    if (s.has_external()) {
      step.external = tensors[static_cast<std::size_t>(s.external)];
      step.has_external = true;
    }
    steps_.push_back(std::move(step));
  }
}

FusedChainKernel::FusedChainKernel(const Graph& g, const FusionGroup& group,
                                   const std::vector<tensor::Tensor>& tensors)
    : FusedChainKernel(build_chain_spec(g, group), tensors) {}

std::string FusedChainKernel::name() const { return label_; }

tpc::IndexSpace FusedChainKernel::index_space() const {
  // Same 512-element granularity as the library element-wise kernels.
  return tpc::IndexSpace{{(numel_ + 511) / 512}};
}

void FusedChainKernel::execute(tpc::KernelContext& ctx,
                               const tpc::Member& m) const {
  const auto in = tpc::ro(chain_input_);
  auto out = tpc::rw(output_);
  const std::int64_t begin = m.linear * 512;
  const std::int64_t end = std::min(numel_, begin + 512);

  for (std::int64_t off = begin; off < end; off += tpc::kLanes) {
    const int count = static_cast<int>(std::min<std::int64_t>(tpc::kLanes, end - off));
    tpc::VecF reg = ctx.v_ld_g(in, off, count);

    for (const Step& s : steps_) {
      tpc::VecF ext{};
      if (s.has_external) {
        ext = ctx.v_ld_g(tpc::ro(s.external), off, count);
      }
      const tpc::VecF& a = s.chain_is_rhs ? ext : reg;
      const tpc::VecF& b = s.chain_is_rhs ? reg : (s.has_external ? ext : reg);
      switch (s.kind) {
        case OpKind::kAdd: reg = ctx.v_add(a, b); break;
        case OpKind::kSub: reg = ctx.v_sub(a, b); break;
        case OpKind::kMul: reg = ctx.v_mul(a, b); break;
        case OpKind::kDiv: reg = ctx.v_mul(a, ctx.v_recip(b)); break;
        case OpKind::kMaxEw: reg = ctx.v_max(a, b); break;
        case OpKind::kAddScalar: reg = ctx.v_add_s(reg, s.attrs.scalar); break;
        case OpKind::kSubScalar: reg = ctx.v_add_s(reg, -s.attrs.scalar); break;
        case OpKind::kRsubScalar:
          reg = ctx.v_add_s(ctx.v_neg(reg), s.attrs.scalar);
          break;
        case OpKind::kMulScalar: reg = ctx.v_mul_s(reg, s.attrs.scalar); break;
        case OpKind::kUnary:
          switch (s.attrs.unary) {
            case tpc::UnaryKind::kExp: reg = ctx.v_exp(reg); break;
            case tpc::UnaryKind::kLog: reg = ctx.v_log(reg); break;
            case tpc::UnaryKind::kSqrt: reg = ctx.v_sqrt(reg); break;
            case tpc::UnaryKind::kSquare: reg = ctx.v_mul(reg, reg); break;
            case tpc::UnaryKind::kRecip: reg = ctx.v_recip(reg); break;
            case tpc::UnaryKind::kRelu:
              reg = ctx.v_max(reg, ctx.v_mov(0.0f));
              break;
            case tpc::UnaryKind::kLeakyRelu:
              reg = ctx.v_sel_gtz(reg, reg, ctx.v_mul_s(reg, s.attrs.alpha));
              break;
            case tpc::UnaryKind::kElu: reg = ctx.v_elu(reg, s.attrs.alpha); break;
            case tpc::UnaryKind::kGelu: reg = ctx.v_gelu(reg); break;
            case tpc::UnaryKind::kSigmoid: reg = ctx.v_sigmoid(reg); break;
            case tpc::UnaryKind::kTanh: reg = ctx.v_tanh(reg); break;
            case tpc::UnaryKind::kNeg: reg = ctx.v_neg(reg); break;
            case tpc::UnaryKind::kAbs: reg = ctx.v_abs(reg); break;
          }
          break;
        default:
          throw sim::InternalError("non-fusible op reached fused kernel");
      }
    }
    ctx.v_st_g(out, off, reg, count);
  }
}

std::uint64_t FusedChainKernel::flop_count() const {
  return static_cast<std::uint64_t>(numel_) * steps_.size();
}

}  // namespace gaudi::graph

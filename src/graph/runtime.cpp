#include "graph/runtime.hpp"

#include <algorithm>
#include <optional>

#include "graph/fusion.hpp"
#include "graph/validate.hpp"
#include "tpc/cluster.hpp"

namespace gaudi::graph {

ProfileResult Runtime::run(const Graph& g,
                           const std::unordered_map<ValueId, tensor::Tensor>& feeds,
                           const RunOptions& opts) const {
  const bool functional = opts.mode == tpc::ExecMode::kFunctional;

  std::vector<tensor::Tensor> tensors(g.num_values());
  memory::DeviceAllocator hbm(cfg_.memory);
  std::vector<memory::Allocation> allocs(g.num_values());
  // Remaining consumers per value; freed when it reaches zero.
  std::vector<std::int32_t> pending(g.num_values(), 0);

  // Bind inputs/params and allocate their device residency.
  for (ValueId v = 0; v < static_cast<ValueId>(g.num_values()); ++v) {
    const ValueInfo& info = g.value(v);
    pending[static_cast<std::size_t>(v)] =
        static_cast<std::int32_t>(info.consumers.size());
    if (info.role == ValueRole::kIntermediate) continue;

    if (functional) {
      auto it = feeds.find(v);
      GAUDI_CHECK(it != feeds.end(),
                  "functional run is missing a feed for '" + info.name + "'");
      GAUDI_CHECK(it->second.shape() == info.shape,
                  "feed shape mismatch for '" + info.name + "'");
      GAUDI_CHECK(it->second.dtype() == info.dtype,
                  "feed dtype mismatch for '" + info.name + "'");
      tensors[static_cast<std::size_t>(v)] = it->second;
    } else {
      tensors[static_cast<std::size_t>(v)] =
          tensor::Tensor::phantom(info.shape, info.dtype);
    }
    if (opts.account_memory) {
      allocs[static_cast<std::size_t>(v)] = hbm.allocate(info.nbytes(), info.name);
    }
  }

  NodeExecutor executor(cfg_, sim::CounterRng{opts.seed});
  std::vector<NodeExec> execs(g.num_nodes());

  std::optional<FusionPlan> fusion;
  if (opts.fuse_elementwise) {
    fusion.emplace(plan_fusion(g));
  }
  auto is_internal = [&](ValueId v) {
    return fusion && fusion->internal_value[static_cast<std::size_t>(v)];
  };

  auto release_if_dead = [&](ValueId v) {
    const auto vi = static_cast<std::size_t>(v);
    const ValueInfo& info = g.value(v);
    if (pending[vi] == 0 && !info.is_output &&
        info.role == ValueRole::kIntermediate) {
      if (opts.account_memory && allocs[vi].valid()) {
        hbm.release(allocs[vi]);
        allocs[vi] = memory::Allocation{};
      }
      if (!info.is_output) {
        tensors[vi] = tensor::Tensor{};  // drop host storage too
      }
    }
  };

  for (NodeId nid = 0; nid < static_cast<NodeId>(g.num_nodes()); ++nid) {
    const Node& n = g.node(nid);
    // Allocate outputs (reshape aliases its input; fused-chain intermediates
    // live in vector registers — neither takes device bytes).
    if (opts.account_memory && n.kind != OpKind::kReshape) {
      for (ValueId v : n.outputs) {
        if (is_internal(v)) continue;
        allocs[static_cast<std::size_t>(v)] =
            hbm.allocate(g.value(v).nbytes(), g.value(v).name);
      }
    }
    execs[static_cast<std::size_t>(nid)] = executor.run(g, nid, tensors, opts.mode);

    if (fusion && fusion->fused(nid)) {
      NodeExec& exec = execs[static_cast<std::size_t>(nid)];
      if (fusion->is_group_tail(g, nid)) {
        // The whole chain executes as one kernel; charge its cost here.
        // Numerics were already produced by the per-op path above, so the
        // fused kernel runs in timing mode only.
        const FusionGroup& group =
            fusion->groups[static_cast<std::size_t>(
                fusion->group_of[static_cast<std::size_t>(nid)])];
        const FusedChainKernel kernel(g, group, tensors);
        const tpc::RunResult r =
            executor.cluster().run(kernel, tpc::ExecMode::kTiming);
        exec.engine = Engine::kTpc;
        exec.duration = r.duration;
        exec.flops = r.flops;
        exec.label = kernel.name();
      } else {
        // Non-tail links contribute no separate engine time.
        exec.engine = Engine::kNone;
        exec.duration = sim::SimTime::zero();
        exec.flops = 0;
      }
    }

    for (ValueId v : n.inputs) {
      auto& p = pending[static_cast<std::size_t>(v)];
      GAUDI_ASSERT(p > 0, "consumer refcount underflow");
      --p;
      release_if_dead(v);
    }
    // Outputs nobody consumes (and not marked graph outputs) die immediately.
    for (ValueId v : n.outputs) release_if_dead(v);
  }

  ProfileResult result;
  result.trace = schedule(g, execs, cfg_, opts.policy);
  if (opts.validate || validation_requested_from_env()) {
    validate_or_throw(g, execs, result.trace, opts.policy, cfg_);
  }
  result.makespan = result.trace.makespan();
  result.hbm_peak_bytes = hbm.peak();
  result.hbm_capacity_bytes = hbm.capacity();
  result.node_execs = std::move(execs);
  for (ValueId v = 0; v < static_cast<ValueId>(g.num_values()); ++v) {
    if (g.value(v).is_output) {
      result.outputs.emplace(v, tensors[static_cast<std::size_t>(v)]);
    }
  }
  return result;
}

}  // namespace gaudi::graph

#include "graph/runtime.hpp"

#include <algorithm>
#include <cstring>
#include <iostream>
#include <sstream>
#include <utility>

#include "graph/fusion.hpp"
#include "graph/timing_memo.hpp"
#include "graph/validate.hpp"
#include "memory/checksum.hpp"
#include "tensor/ops.hpp"
#include "tpc/cluster.hpp"

namespace gaudi::graph {

CompiledGraph Runtime::compile(const Graph& g, const CompileOptions& opts) const {
  return compile_graph(g, cfg_, opts);
}

ProfileResult Runtime::run(const CompiledGraph& cg,
                           const std::unordered_map<ValueId, tensor::Tensor>& feeds,
                           const RunOptions& opts) const {
  const Graph& g = cg.graph;
  const bool functional = opts.mode == tpc::ExecMode::kFunctional;
  const sim::NumericsPolicy guard_policy =
      opts.guard.has_value() ? *opts.guard : sim::numerics_policy_from_env();
  const bool guarded = guard_policy != sim::NumericsPolicy::kOff;
  const sim::FaultInjector* faults =
      opts.faults != nullptr ? opts.faults : sim::fault_injector_from_env();
  if (faults != nullptr && !faults->enabled()) faults = nullptr;

  // Timing-only fast path: replay the memoized schedule when an artifact
  // with this fingerprint already ran under these options; otherwise take
  // the real pipeline exactly once — in timing mode, with the numerics
  // machinery and allocator replay off — and deposit the result.  Fault
  // injection and the corruption hook fall through to the full path: their
  // schedules depend on epoch state the memo key does not carry.
  if (timing_only_enabled(opts) && faults == nullptr &&
      opts.corrupt_value == kInvalidValue) {
    TimingMemo& memo = TimingMemo::global();
    const std::string key = timing_memo_key(cg, opts);
    if (std::shared_ptr<const ProfileResult> cached = memo.find_profile(key)) {
      ProfileResult replay = *cached;
      replay.memo_hit = true;
      replay.memo_hits = memo.hits();
      return replay;
    }
    RunOptions first = opts;
    first.timing_only = false;  // run the real scheduler exactly once
    first.mode = tpc::ExecMode::kTiming;
    first.guard = sim::NumericsPolicy::kOff;
    first.account_memory = false;
    ProfileResult result = run(cg, {}, first);
    result.timing_only = true;
    result.memo_hits = memo.hits();
    memo.insert_profile(key, std::make_shared<const ProfileResult>(result));
    return result;
  }

  std::vector<tensor::Tensor> tensors(g.num_values());
  // The static plan already fixed every buffer's offset; the dynamic
  // allocator is replayed as a debug cross-check (and to enforce capacity
  // for artifacts compiled without enforcement).
  memory::DeviceAllocator hbm(cg.config.memory);
  std::vector<memory::Allocation> allocs(g.num_values());
  // Remaining consumers per value; storage is dropped when it reaches zero.
  std::vector<std::int32_t> pending(g.num_values(), 0);

  // Numerics-guard state (functional guarded runs).  The ledger holds a
  // checksum of every live external buffer; a mismatch at a consumer means
  // the bytes changed between ops — silent data corruption.  value_anomalous
  // tracks which values carry NaN/Inf so an anomaly report can walk the
  // contamination path back to its origin.
  memory::ChecksumLedger ledger;
  std::vector<char> value_anomalous(g.num_values(), 0);
  std::vector<NumericsAnomaly> anomalies;
  std::vector<SdcInjection> sdc_injections;
  sim::NumericsStats total_stats;
  bool warned_first = false;

  // Bind inputs/params and allocate their device residency.
  for (ValueId v = 0; v < static_cast<ValueId>(g.num_values()); ++v) {
    const ValueInfo& info = g.value(v);
    pending[static_cast<std::size_t>(v)] =
        static_cast<std::int32_t>(info.consumers.size());
    if (info.role == ValueRole::kIntermediate) continue;

    if (functional) {
      auto it = feeds.find(v);
      GAUDI_CHECK(it != feeds.end(),
                  "functional run is missing a feed for '" + info.name + "'");
      GAUDI_CHECK(it->second.shape() == info.shape,
                  "feed shape mismatch for '" + info.name + "'");
      GAUDI_CHECK(it->second.dtype() == info.dtype,
                  "feed dtype mismatch for '" + info.name + "'");
      tensors[static_cast<std::size_t>(v)] = it->second;
      if (guarded) {
        const tensor::Tensor& t = it->second;
        ledger.record(v, t.raw(), t.nbytes());
        // A non-finite feed is the user's data, not an op's fault: mark it so
        // contamination paths can start at the feed, but report nothing here.
        if (tensor::is_floating(t.dtype()) &&
            tensor::ops::numerics_sweep(t).anomalous()) {
          value_anomalous[static_cast<std::size_t>(v)] = 1;
        }
      }
    } else {
      tensors[static_cast<std::size_t>(v)] =
          tensor::Tensor::phantom(info.shape, info.dtype);
    }
    if (opts.account_memory) {
      allocs[static_cast<std::size_t>(v)] = hbm.allocate(info.nbytes(), info.name);
    }
  }

  NodeExecutor executor(cg.config, sim::CounterRng{opts.seed});
  std::vector<NodeExec> execs(g.num_nodes());

  auto is_internal = [&](ValueId v) {
    return cg.fusion.internal_value[static_cast<std::size_t>(v)];
  };

  auto release_if_dead = [&](ValueId v) {
    const auto vi = static_cast<std::size_t>(v);
    const ValueInfo& info = g.value(v);
    if (pending[vi] == 0 && !info.is_output &&
        info.role == ValueRole::kIntermediate) {
      if (opts.account_memory && allocs[vi].valid()) {
        hbm.release(allocs[vi]);
        allocs[vi] = memory::Allocation{};
      }
      tensors[vi] = tensor::Tensor{};  // drop host storage too
    }
  };

  auto node_desc = [&](NodeId nid) {
    return "'" + g.node(nid).label + "' (node " + std::to_string(nid) + ")";
  };
  auto value_desc = [&](ValueId v) {
    return "'" + g.value(v).name + "' (value " + std::to_string(v) + ")";
  };
  auto producer_desc = [&](ValueId v) -> std::string {
    const NodeId p = g.value(v).producer;
    if (p < 0) return "graph feed";
    return node_desc(p);
  };

  // Raises one detected anomaly according to the policy: kTrap aborts the
  // run at the first one; kWarn prints the first to stderr and collects all.
  auto raise_anomaly = [&](NumericsAnomaly a) {
    if (guard_policy == sim::NumericsPolicy::kTrap) {
      throw sim::NumericsError(a.report);
    }
    if (!warned_first) {
      std::cerr << "[gaudisim] numerics guard: " << a.report << "\n";
      warned_first = true;
    }
    anomalies.push_back(std::move(a));
  };

  // Walks the contamination back from `bad` through anomalous inputs to the
  // earliest tainted value, then narrates the path feed-to-fault in
  // topological order.
  auto contamination_report = [&](NodeId nid, ValueId bad,
                                  const sim::NumericsStats& s) {
    std::vector<ValueId> path;
    ValueId cur = bad;
    while (cur != kInvalidValue) {
      path.push_back(cur);
      const NodeId p = g.value(cur).producer;
      if (p < 0) break;
      ValueId next = kInvalidValue;
      for (ValueId in : g.node(p).inputs) {
        if (value_anomalous[static_cast<std::size_t>(in)] != 0) {
          next = in;
          break;
        }
      }
      cur = next;
    }
    std::reverse(path.begin(), path.end());
    std::ostringstream os;
    os << "non-finite output at " << node_desc(nid) << ": " << value_desc(bad)
       << " has " << s.to_string() << "\n";
    os << "  contamination path (feed -> fault):\n";
    for (ValueId v : path) {
      os << "    " << value_desc(v) << " <- " << producer_desc(v) << "\n";
    }
    return os.str();
  };

  // Checksum verification of one external input buffer before a consumer
  // reads it: a mismatch means the bytes changed since the producer retired.
  auto verify_input = [&](NodeId nid, ValueId v) {
    const auto vi = static_cast<std::size_t>(v);
    const tensor::Tensor& t = tensors[vi];
    if (!t.defined() || !ledger.has(static_cast<std::int64_t>(v))) return;
    if (ledger.verify(static_cast<std::int64_t>(v), t.raw(), t.nbytes())) return;
    value_anomalous[vi] = 1;
    NumericsAnomaly a;
    a.kind = NumericsAnomaly::Kind::kSdc;
    a.node = nid;
    a.value = v;
    a.report = "silent data corruption: " + value_desc(v) +
               " failed its checksum when read by " + node_desc(nid) +
               "; produced by " + producer_desc(v) +
               " (bytes changed after the producer retired)";
    // Accept the corrupted bytes as the new baseline so kWarn reports each
    // corruption once, not at every later consumer.
    ledger.record(static_cast<std::int64_t>(v), t.raw(), t.nbytes());
    raise_anomaly(std::move(a));
  };

  // Sweeps one retiring external output, merges stats into the node's exec,
  // and originates an anomaly when NaN/Inf appear that no input carried.
  auto sweep_output = [&](NodeExec& exec, NodeId nid, ValueId v,
                          bool inherited) {
    const auto vi = static_cast<std::size_t>(v);
    const tensor::Tensor& t = tensors[vi];
    if (!t.defined()) return;
    if (tensor::is_floating(t.dtype())) {
      const sim::NumericsStats s = tensor::ops::numerics_sweep(t);
      exec.stats.merge(s);
      total_stats.merge(s);
      if (s.anomalous()) {
        value_anomalous[vi] = 1;
        if (!inherited) {
          NumericsAnomaly a;
          a.node = nid;
          a.value = v;
          a.stats = s;
          a.report = contamination_report(nid, v, s);
          raise_anomaly(std::move(a));
        }
      }
    }
    exec.has_stats = true;
    ledger.record(static_cast<std::int64_t>(v), t.raw(), t.nbytes());
  };

  // Simulated cost of the guard pass over this node's retiring outputs (one
  // fused sweep + checksum per buffer).  Charged in both execution modes so
  // timing studies see the guard's overhead.
  auto guard_cost = [&](NodeExec& exec, const std::vector<ValueId>& outs) {
    if (exec.engine == Engine::kNone) return;
    std::size_t bytes = 0;
    for (ValueId v : outs) {
      if (!is_internal(v)) bytes += g.value(v).nbytes();
    }
    exec.guard_time = sim::guard_sweep_time(
        bytes, cg.config.memory.hbm_bandwidth_bytes_per_s);
    if (!functional) {
      // Timing mode has no data to sweep; the stats record only coverage.
      exec.has_stats = true;
      for (ValueId v : outs) {
        if (!is_internal(v)) {
          exec.stats.count +=
              static_cast<std::uint64_t>(g.value(v).shape.numel());
        }
      }
      total_stats.count += exec.stats.count;
    }
  };

  // Deterministic corruption of a just-retired buffer, after its checksum is
  // recorded — so the damage is silent until a guarded consumer looks.
  auto inject_sdc = [&](NodeId nid, const std::vector<ValueId>& outs) {
    if (opts.corrupt_value != kInvalidValue) {
      for (ValueId v : outs) {
        if (v != opts.corrupt_value) continue;
        tensor::Tensor& t = tensors[static_cast<std::size_t>(v)];
        if (!t.defined() || t.numel() == 0 ||
            !tensor::is_floating(t.dtype())) {
          break;
        }
        if (t.dtype() == tensor::DType::F32) {
          const std::uint32_t qnan = 0x7FC00000u;
          std::memcpy(t.raw(), &qnan, sizeof(qnan));
        } else {
          const std::uint16_t qnan = 0x7FC0u;
          std::memcpy(t.raw(), &qnan, sizeof(qnan));
        }
      }
    }
    if (faults == nullptr ||
        !faults->fires(sim::FaultKind::kSdcBitFlip,
                       sim::FaultInjector::site(
                           opts.fault_epoch, static_cast<std::uint64_t>(
                                                 static_cast<std::uint32_t>(nid))))) {
      return;
    }
    for (ValueId v : outs) {
      if (is_internal(v)) continue;
      tensor::Tensor& t = tensors[static_cast<std::size_t>(v)];
      if (!t.defined() || t.numel() == 0 || !tensor::is_floating(t.dtype())) {
        continue;
      }
      const std::uint64_t site = sim::FaultInjector::site(
          opts.fault_epoch, static_cast<std::uint64_t>(
                                static_cast<std::uint32_t>(nid)));
      const std::uint64_t element =
          faults->sdc_element(site, static_cast<std::uint64_t>(t.numel()));
      const std::uint32_t element_bits =
          t.dtype() == tensor::DType::F32 ? 32u : 16u;
      const std::uint32_t bit = faults->sdc_bit(site, element_bits);
      std::byte* base = t.raw() + element * (element_bits / 8);
      if (element_bits == 32) {
        std::uint32_t word;
        std::memcpy(&word, base, sizeof(word));
        word ^= (1u << bit);
        std::memcpy(base, &word, sizeof(word));
      } else {
        std::uint16_t word;
        std::memcpy(&word, base, sizeof(word));
        word = static_cast<std::uint16_t>(word ^ (1u << bit));
        std::memcpy(base, &word, sizeof(word));
      }
      sdc_injections.push_back(SdcInjection{
          nid, v, static_cast<std::int64_t>(element), bit});
      break;  // one flip per firing: a single upset hits one buffer
    }
  };

  for (const NodeId nid : cg.order) {
    const Node& n = g.node(nid);
    // Allocate outputs (reshape aliases its input; fused-chain intermediates
    // live in vector registers — neither takes device bytes).
    if (opts.account_memory && n.kind != OpKind::kReshape) {
      for (ValueId v : n.outputs) {
        if (is_internal(v)) continue;
        allocs[static_cast<std::size_t>(v)] =
            hbm.allocate(g.value(v).nbytes(), g.value(v).name);
      }
    }

    NodeExec& exec = execs[static_cast<std::size_t>(nid)];
    if (!cg.fusion.fused(nid)) {
      if (guarded && functional) {
        for (ValueId v : n.inputs) verify_input(nid, v);
      }
      exec = executor.run(g, nid, tensors, opts.mode,
                          /*poison_outputs=*/guarded && functional);
      if (guarded) {
        guard_cost(exec, n.outputs);
        if (functional) {
          bool inherited = false;
          for (ValueId v : n.inputs) {
            inherited |= value_anomalous[static_cast<std::size_t>(v)] != 0;
          }
          for (ValueId v : n.outputs) {
            if (!is_internal(v)) sweep_output(exec, nid, v, inherited);
          }
        }
      }
      if (functional) inject_sdc(nid, n.outputs);
      for (ValueId v : n.inputs) {
        auto& p = pending[static_cast<std::size_t>(v)];
        GAUDI_ASSERT(p > 0, "consumer refcount underflow");
        --p;
        release_if_dead(v);
      }
      // Outputs nobody consumes (and not marked graph outputs) die
      // immediately.
      for (ValueId v : n.outputs) release_if_dead(v);
    } else if (cg.fusion.is_group_tail(g, nid)) {
      // The whole chain executes as the pre-bound fused kernel — numerics
      // and timing in one launch, in the run's mode.
      const FusedChainSpec& spec =
          cg.chains[static_cast<std::size_t>(
              cg.fusion.group_of[static_cast<std::size_t>(nid)])];
      const FusionGroup& group =
          cg.fusion.groups[static_cast<std::size_t>(
              cg.fusion.group_of[static_cast<std::size_t>(nid)])];
      // The fused launch reads every chain member's external operands, so
      // the guard verifies (and blame-checks) the whole group's inputs here.
      bool inherited = false;
      if (guarded && functional) {
        for (const NodeId member : group.nodes) {
          for (ValueId v : g.node(member).inputs) {
            if (is_internal(v)) continue;
            verify_input(nid, v);
            inherited |= value_anomalous[static_cast<std::size_t>(v)] != 0;
          }
        }
      }
      const ValueInfo& out_info = g.value(spec.output);
      tensors[static_cast<std::size_t>(spec.output)] = make_output_tensor(
          out_info, opts.mode, /*poison=*/guarded && functional);
      const FusedChainKernel kernel(spec, tensors);
      const tpc::RunResult r = executor.cluster().run(kernel, opts.mode);
      exec.engine = Engine::kTpc;
      exec.duration = r.duration;
      exec.flops = r.flops;
      exec.label = spec.label;
      for (ValueId v : n.inputs) exec.bytes += g.value(v).nbytes();
      for (ValueId v : n.outputs) exec.bytes += g.value(v).nbytes();
      if (guarded) {
        guard_cost(exec, n.outputs);
        if (functional) {
          for (ValueId v : n.outputs) {
            if (!is_internal(v)) sweep_output(exec, nid, v, inherited);
          }
        }
      }
      if (functional) inject_sdc(nid, n.outputs);
      // The fused launch read every chain member's operands just now, so
      // the whole group's consumption lands here — releasing an external at
      // the link that names it would free bytes the tail still reads.
      for (const NodeId member : group.nodes) {
        for (ValueId v : g.node(member).inputs) {
          auto& p = pending[static_cast<std::size_t>(v)];
          GAUDI_ASSERT(p > 0, "consumer refcount underflow");
          --p;
          release_if_dead(v);
        }
      }
      for (ValueId v : n.outputs) release_if_dead(v);
    } else {
      // Non-tail links are absorbed into the tail's kernel: no engine time,
      // no consumption yet (the fused launch reads every operand at the
      // tail), and the chain value never materializes.
      exec.engine = Engine::kNone;
    }
  }

  // End-of-run audit: a graph output corrupted after its last consumer (or
  // one nothing ever read) would otherwise leave the run with no verifier.
  if (guarded && functional) {
    for (ValueId v = 0; v < static_cast<ValueId>(g.num_values()); ++v) {
      if (!g.value(v).is_output) continue;
      const tensor::Tensor& t = tensors[static_cast<std::size_t>(v)];
      if (!t.defined() || !ledger.has(static_cast<std::int64_t>(v))) continue;
      if (ledger.verify(static_cast<std::int64_t>(v), t.raw(), t.nbytes())) {
        continue;
      }
      NumericsAnomaly a;
      a.kind = NumericsAnomaly::Kind::kSdc;
      a.value = v;
      a.report = "silent data corruption: graph output " + value_desc(v) +
                 " failed its checksum at end of run; produced by " +
                 producer_desc(v) +
                 " (bytes changed after the producer retired)";
      raise_anomaly(std::move(a));
    }
  }

  ProfileResult result;
  result.guard_policy = guard_policy;
  result.anomalies = std::move(anomalies);
  result.sdc_injections = std::move(sdc_injections);
  result.numerics = total_stats;
  result.trace = schedule(cg, execs, opts.policy, faults);
  if (opts.validate || validation_requested_from_env()) {
    validate_or_throw(g, execs, result.trace, opts.policy, cg.config);
    std::vector<Violation> violations = validate_memory_plan(cg);
    if (opts.account_memory && hbm.peak() != cg.stats.peak_bytes) {
      std::ostringstream os;
      os << "planned peak " << cg.stats.peak_bytes
         << " bytes != dynamic allocator peak " << hbm.peak() << " bytes";
      violations.push_back(Violation{"memory-plan-peak", os.str(), -1});
    }
    if (!violations.empty()) {
      throw sim::InternalError("memory-plan validation failed:\n" +
                               TraceValidator::format(violations));
    }
  }
  result.makespan = result.trace.makespan();
  result.hbm_peak_bytes = cg.stats.peak_bytes;
  result.hbm_capacity_bytes = hbm.capacity();
  result.node_execs = std::move(execs);
  for (ValueId v = 0; v < static_cast<ValueId>(g.num_values()); ++v) {
    if (g.value(v).is_output) {
      result.outputs.emplace(v, tensors[static_cast<std::size_t>(v)]);
    }
  }
  return result;
}

ProfileResult Runtime::run(const Graph& g,
                           const std::unordered_map<ValueId, tensor::Tensor>& feeds,
                           const RunOptions& opts) const {
  CompileOptions copts;
  copts.fuse_elementwise = opts.fuse_elementwise;
  copts.enforce_capacity = opts.account_memory;
  return run(compile(g, copts), feeds, opts);
}

}  // namespace gaudi::graph

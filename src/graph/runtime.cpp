#include "graph/runtime.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "graph/fusion.hpp"
#include "graph/validate.hpp"
#include "tpc/cluster.hpp"

namespace gaudi::graph {

CompiledGraph Runtime::compile(const Graph& g, const CompileOptions& opts) const {
  return compile_graph(g, cfg_, opts);
}

ProfileResult Runtime::run(const CompiledGraph& cg,
                           const std::unordered_map<ValueId, tensor::Tensor>& feeds,
                           const RunOptions& opts) const {
  const Graph& g = cg.graph;
  const bool functional = opts.mode == tpc::ExecMode::kFunctional;

  std::vector<tensor::Tensor> tensors(g.num_values());
  // The static plan already fixed every buffer's offset; the dynamic
  // allocator is replayed as a debug cross-check (and to enforce capacity
  // for artifacts compiled without enforcement).
  memory::DeviceAllocator hbm(cg.config.memory);
  std::vector<memory::Allocation> allocs(g.num_values());
  // Remaining consumers per value; storage is dropped when it reaches zero.
  std::vector<std::int32_t> pending(g.num_values(), 0);

  // Bind inputs/params and allocate their device residency.
  for (ValueId v = 0; v < static_cast<ValueId>(g.num_values()); ++v) {
    const ValueInfo& info = g.value(v);
    pending[static_cast<std::size_t>(v)] =
        static_cast<std::int32_t>(info.consumers.size());
    if (info.role == ValueRole::kIntermediate) continue;

    if (functional) {
      auto it = feeds.find(v);
      GAUDI_CHECK(it != feeds.end(),
                  "functional run is missing a feed for '" + info.name + "'");
      GAUDI_CHECK(it->second.shape() == info.shape,
                  "feed shape mismatch for '" + info.name + "'");
      GAUDI_CHECK(it->second.dtype() == info.dtype,
                  "feed dtype mismatch for '" + info.name + "'");
      tensors[static_cast<std::size_t>(v)] = it->second;
    } else {
      tensors[static_cast<std::size_t>(v)] =
          tensor::Tensor::phantom(info.shape, info.dtype);
    }
    if (opts.account_memory) {
      allocs[static_cast<std::size_t>(v)] = hbm.allocate(info.nbytes(), info.name);
    }
  }

  NodeExecutor executor(cg.config, sim::CounterRng{opts.seed});
  std::vector<NodeExec> execs(g.num_nodes());

  auto is_internal = [&](ValueId v) {
    return cg.fusion.internal_value[static_cast<std::size_t>(v)];
  };

  auto release_if_dead = [&](ValueId v) {
    const auto vi = static_cast<std::size_t>(v);
    const ValueInfo& info = g.value(v);
    if (pending[vi] == 0 && !info.is_output &&
        info.role == ValueRole::kIntermediate) {
      if (opts.account_memory && allocs[vi].valid()) {
        hbm.release(allocs[vi]);
        allocs[vi] = memory::Allocation{};
      }
      tensors[vi] = tensor::Tensor{};  // drop host storage too
    }
  };

  for (const NodeId nid : cg.order) {
    const Node& n = g.node(nid);
    // Allocate outputs (reshape aliases its input; fused-chain intermediates
    // live in vector registers — neither takes device bytes).
    if (opts.account_memory && n.kind != OpKind::kReshape) {
      for (ValueId v : n.outputs) {
        if (is_internal(v)) continue;
        allocs[static_cast<std::size_t>(v)] =
            hbm.allocate(g.value(v).nbytes(), g.value(v).name);
      }
    }

    NodeExec& exec = execs[static_cast<std::size_t>(nid)];
    if (!cg.fusion.fused(nid)) {
      exec = executor.run(g, nid, tensors, opts.mode);
      for (ValueId v : n.inputs) {
        auto& p = pending[static_cast<std::size_t>(v)];
        GAUDI_ASSERT(p > 0, "consumer refcount underflow");
        --p;
        release_if_dead(v);
      }
      // Outputs nobody consumes (and not marked graph outputs) die
      // immediately.
      for (ValueId v : n.outputs) release_if_dead(v);
    } else if (cg.fusion.is_group_tail(g, nid)) {
      // The whole chain executes as the pre-bound fused kernel — numerics
      // and timing in one launch, in the run's mode.
      const FusedChainSpec& spec =
          cg.chains[static_cast<std::size_t>(
              cg.fusion.group_of[static_cast<std::size_t>(nid)])];
      const ValueInfo& out_info = g.value(spec.output);
      tensors[static_cast<std::size_t>(spec.output)] =
          functional ? tensor::Tensor::zeros(out_info.shape, out_info.dtype)
                     : tensor::Tensor::phantom(out_info.shape, out_info.dtype);
      const FusedChainKernel kernel(spec, tensors);
      const tpc::RunResult r = executor.cluster().run(kernel, opts.mode);
      exec.engine = Engine::kTpc;
      exec.duration = r.duration;
      exec.flops = r.flops;
      exec.label = spec.label;
      for (ValueId v : n.inputs) exec.bytes += g.value(v).nbytes();
      for (ValueId v : n.outputs) exec.bytes += g.value(v).nbytes();
      // The fused launch read every chain member's operands just now, so
      // the whole group's consumption lands here — releasing an external at
      // the link that names it would free bytes the tail still reads.
      const FusionGroup& group =
          cg.fusion.groups[static_cast<std::size_t>(
              cg.fusion.group_of[static_cast<std::size_t>(nid)])];
      for (const NodeId member : group.nodes) {
        for (ValueId v : g.node(member).inputs) {
          auto& p = pending[static_cast<std::size_t>(v)];
          GAUDI_ASSERT(p > 0, "consumer refcount underflow");
          --p;
          release_if_dead(v);
        }
      }
      for (ValueId v : n.outputs) release_if_dead(v);
    } else {
      // Non-tail links are absorbed into the tail's kernel: no engine time,
      // no consumption yet (the fused launch reads every operand at the
      // tail), and the chain value never materializes.
      exec.engine = Engine::kNone;
    }
  }

  ProfileResult result;
  const sim::FaultInjector* faults =
      opts.faults != nullptr ? opts.faults : sim::fault_injector_from_env();
  result.trace = schedule(cg, execs, opts.policy, faults);
  if (opts.validate || validation_requested_from_env()) {
    validate_or_throw(g, execs, result.trace, opts.policy, cg.config);
    std::vector<Violation> violations = validate_memory_plan(cg);
    if (opts.account_memory && hbm.peak() != cg.stats.peak_bytes) {
      std::ostringstream os;
      os << "planned peak " << cg.stats.peak_bytes
         << " bytes != dynamic allocator peak " << hbm.peak() << " bytes";
      violations.push_back(Violation{"memory-plan-peak", os.str(), -1});
    }
    if (!violations.empty()) {
      throw sim::InternalError("memory-plan validation failed:\n" +
                               TraceValidator::format(violations));
    }
  }
  result.makespan = result.trace.makespan();
  result.hbm_peak_bytes = cg.stats.peak_bytes;
  result.hbm_capacity_bytes = hbm.capacity();
  result.node_execs = std::move(execs);
  for (ValueId v = 0; v < static_cast<ValueId>(g.num_values()); ++v) {
    if (g.value(v).is_output) {
      result.outputs.emplace(v, tensors[static_cast<std::size_t>(v)]);
    }
  }
  return result;
}

ProfileResult Runtime::run(const Graph& g,
                           const std::unordered_map<ValueId, tensor::Tensor>& feeds,
                           const RunOptions& opts) const {
  CompileOptions copts;
  copts.fuse_elementwise = opts.fuse_elementwise;
  copts.enforce_capacity = opts.account_memory;
  return run(compile(g, copts), feeds, opts);
}

}  // namespace gaudi::graph

#include "graph/graph.hpp"

#include <utility>

#include "mme/mme.hpp"

namespace gaudi::graph {

std::string_view op_kind_name(OpKind k) {
  switch (k) {
    case OpKind::kMatMul: return "matmul";
    case OpKind::kAdd: return "add";
    case OpKind::kSub: return "sub";
    case OpKind::kMul: return "mul";
    case OpKind::kDiv: return "div";
    case OpKind::kMaxEw: return "max";
    case OpKind::kAddScalar: return "add_scalar";
    case OpKind::kSubScalar: return "sub_scalar";
    case OpKind::kRsubScalar: return "rsub_scalar";
    case OpKind::kMulScalar: return "mul_scalar";
    case OpKind::kUnary: return "unary";
    case OpKind::kUnaryGrad: return "unary_grad";
    case OpKind::kGlu: return "glu";
    case OpKind::kGluGrad: return "glu_grad";
    case OpKind::kDropout: return "dropout";
    case OpKind::kSoftmax: return "softmax";
    case OpKind::kSoftmaxGrad: return "softmax_grad";
    case OpKind::kLayerNorm: return "layernorm";
    case OpKind::kLayerNormInputGrad: return "layernorm_dx";
    case OpKind::kLayerNormParamGrad: return "layernorm_dparam";
    case OpKind::kReduceSum: return "reduce_sum";
    case OpKind::kReduceMax: return "reduce_max";
    case OpKind::kReduceMean: return "reduce_mean";
    case OpKind::kBroadcastLast: return "broadcast_last";
    case OpKind::kAddRowvec: return "add_rowvec";
    case OpKind::kMulRowvec: return "mul_rowvec";
    case OpKind::kColumnSum: return "column_sum";
    case OpKind::kFill: return "fill";
    case OpKind::kTranspose: return "transpose";
    case OpKind::kSwapAxes12: return "swap_axes12";
    case OpKind::kAddMask2D: return "add_mask";
    case OpKind::kConcatRows: return "concat_rows";
    case OpKind::kSliceRows: return "slice_rows";
    case OpKind::kEmbedding: return "embedding";
    case OpKind::kEmbeddingGrad: return "embedding_grad";
    case OpKind::kCrossEntropyMean: return "cross_entropy";
    case OpKind::kCrossEntropyGrad: return "cross_entropy_grad";
    case OpKind::kSgdUpdate: return "sgd_update";
    case OpKind::kAdamUpdate: return "adam_update";
    case OpKind::kCast: return "cast";
    case OpKind::kReshape: return "reshape";
  }
  return "?";
}

std::string_view engine_name(Engine e) {
  switch (e) {
    case Engine::kMme: return "MME";
    case Engine::kTpc: return "TPC";
    case Engine::kDma: return "DMA";
    case Engine::kHost: return "HOST";
    case Engine::kNone: return "-";
  }
  return "?";
}

ValueId Graph::new_value(tensor::Shape shape, tensor::DType dtype, ValueRole role,
                         std::string name, NodeId producer) {
  ValueInfo info;
  info.shape = std::move(shape);
  info.dtype = dtype;
  info.role = role;
  info.name = std::move(name);
  info.producer = producer;
  values_.push_back(std::move(info));
  return static_cast<ValueId>(values_.size() - 1);
}

ValueId Graph::input(tensor::Shape shape, tensor::DType dtype, std::string name) {
  return new_value(std::move(shape), dtype, ValueRole::kInput, std::move(name), -1);
}

ValueId Graph::param(tensor::Shape shape, std::string name) {
  return new_value(std::move(shape), tensor::DType::F32, ValueRole::kParam,
                   std::move(name), -1);
}

void Graph::mark_output(ValueId v) {
  GAUDI_CHECK(v >= 0 && v < static_cast<ValueId>(values_.size()),
              "mark_output: invalid value id");
  values_[static_cast<std::size_t>(v)].is_output = true;
}

const ValueInfo& Graph::value(ValueId v) const {
  GAUDI_CHECK(v >= 0 && v < static_cast<ValueId>(values_.size()),
              "invalid value id");
  return values_[static_cast<std::size_t>(v)];
}

const Node& Graph::node(NodeId n) const {
  GAUDI_CHECK(n >= 0 && n < static_cast<NodeId>(nodes_.size()), "invalid node id");
  return nodes_[static_cast<std::size_t>(n)];
}

std::size_t Graph::param_bytes() const {
  std::size_t total = 0;
  for (const auto& v : values_) {
    if (v.role == ValueRole::kParam) total += v.nbytes();
  }
  return total;
}

namespace {

[[nodiscard]] tensor::Shape reduced_last(const tensor::Shape& s) {
  std::vector<std::int64_t> dims(s.dims().begin(), s.dims().end());
  dims.back() = 1;
  return tensor::Shape{std::span<const std::int64_t>(dims)};
}

[[nodiscard]] tensor::Shape with_last(const tensor::Shape& s, std::int64_t d) {
  std::vector<std::int64_t> dims(s.dims().begin(), s.dims().end());
  dims.back() = d;
  return tensor::Shape{std::span<const std::int64_t>(dims)};
}

[[nodiscard]] tensor::Shape transposed_last2(const tensor::Shape& s) {
  std::vector<std::int64_t> dims(s.dims().begin(), s.dims().end());
  GAUDI_CHECK(dims.size() >= 2, "transpose expects rank >= 2");
  std::swap(dims[dims.size() - 2], dims[dims.size() - 1]);
  return tensor::Shape{std::span<const std::int64_t>(dims)};
}

[[nodiscard]] std::int64_t rows_of(const tensor::Shape& s) {
  return s.numel() / s[s.rank() - 1];
}

}  // namespace

std::vector<ValueId> Graph::infer_outputs(OpKind kind, const OpAttrs& attrs,
                                          const std::vector<ValueId>& inputs,
                                          const std::string& label, NodeId node_id) {
  auto in_shape = [&](std::size_t i) -> const tensor::Shape& {
    GAUDI_CHECK(i < inputs.size(), "op is missing an input");
    return value(inputs[i]).shape;
  };
  auto in_dtype = [&](std::size_t i) { return value(inputs[i]).dtype; };
  auto out = [&](tensor::Shape s, tensor::DType d = tensor::DType::F32) {
    return new_value(std::move(s), d, ValueRole::kIntermediate,
                     label + ":" + std::to_string(node_id), node_id);
  };
  auto same_shape_binary = [&]() {
    GAUDI_CHECK(inputs.size() == 2, "binary op expects two inputs");
    GAUDI_CHECK(in_shape(0).numel() == in_shape(1).numel(),
                "binary op element count mismatch");
    return std::vector<ValueId>{out(in_shape(0))};
  };

  switch (kind) {
    case OpKind::kMatMul: {
      GAUDI_CHECK(inputs.size() == 2 || inputs.size() == 3,
                  "matmul expects (a, b) or (a, b, bias)");
      const mme::GemmShape gs = mme::MmeEngine::shape_of(
          in_shape(0), in_shape(1), attrs.trans_a, attrs.trans_b);
      const bool bf16 = in_dtype(0) == tensor::DType::BF16 &&
                        in_dtype(1) == tensor::DType::BF16;
      if (inputs.size() == 3) {
        GAUDI_CHECK(in_shape(2).rank() == 1 && in_shape(2)[0] == gs.n,
                    "matmul bias must be [n]");
        GAUDI_CHECK(!bf16, "fused bias requires f32 operands");
      }
      const tensor::Shape& a = in_shape(0);
      std::vector<std::int64_t> dims(a.dims().begin(), a.dims().end());
      dims[dims.size() - 2] = gs.m;
      dims[dims.size() - 1] = gs.n;
      return {out(tensor::Shape{std::span<const std::int64_t>(dims)},
                  bf16 ? tensor::DType::BF16 : tensor::DType::F32)};
    }
    case OpKind::kAdd:
    case OpKind::kSub:
    case OpKind::kMul:
    case OpKind::kDiv:
    case OpKind::kMaxEw:
      return same_shape_binary();
    case OpKind::kAddScalar:
    case OpKind::kSubScalar:
    case OpKind::kRsubScalar:
    case OpKind::kMulScalar:
    case OpKind::kUnary:
    case OpKind::kDropout:
      GAUDI_CHECK(inputs.size() == 1, "unary-style op expects one input");
      return {out(in_shape(0))};
    case OpKind::kUnaryGrad:
      GAUDI_CHECK(inputs.size() == 2, "unary grad expects (x, dy)");
      return {out(in_shape(0))};
    case OpKind::kGlu: {
      GAUDI_CHECK(inputs.size() == 1, "glu expects one input");
      const std::int64_t d2 = in_shape(0)[in_shape(0).rank() - 1];
      GAUDI_CHECK(d2 % 2 == 0, "glu trailing dim must be even");
      return {out(with_last(in_shape(0), d2 / 2))};
    }
    case OpKind::kGluGrad:
      GAUDI_CHECK(inputs.size() == 2, "glu grad expects (x, dout)");
      return {out(in_shape(0))};
    case OpKind::kSoftmax:
      GAUDI_CHECK(inputs.size() == 1, "softmax expects one input");
      return {out(in_shape(0))};
    case OpKind::kSoftmaxGrad:
      GAUDI_CHECK(inputs.size() == 2, "softmax grad expects (y, dy)");
      return {out(in_shape(0))};
    case OpKind::kLayerNorm: {
      GAUDI_CHECK(inputs.size() == 3, "layernorm expects (x, gamma, beta)");
      const std::int64_t rows = rows_of(in_shape(0));
      return {out(in_shape(0)), out(tensor::Shape{{rows}}),
              out(tensor::Shape{{rows}})};
    }
    case OpKind::kLayerNormInputGrad:
      GAUDI_CHECK(inputs.size() == 5,
                  "layernorm dx expects (x, gamma, mean, rstd, dy)");
      return {out(in_shape(0))};
    case OpKind::kLayerNormParamGrad: {
      GAUDI_CHECK(inputs.size() == 4,
                  "layernorm dparam expects (x, mean, rstd, dy)");
      const std::int64_t d = in_shape(0)[in_shape(0).rank() - 1];
      return {out(tensor::Shape{{d}}), out(tensor::Shape{{d}})};
    }
    case OpKind::kReduceSum:
    case OpKind::kReduceMax:
    case OpKind::kReduceMean:
      GAUDI_CHECK(inputs.size() == 1, "reduce expects one input");
      return {out(reduced_last(in_shape(0)))};
    case OpKind::kBroadcastLast: {
      GAUDI_CHECK(inputs.size() == 1, "broadcast expects one input");
      GAUDI_CHECK(attrs.dim > 0, "broadcast width must be set in attrs.dim");
      GAUDI_CHECK(in_shape(0)[in_shape(0).rank() - 1] == 1,
                  "broadcast input must be [..., 1]");
      return {out(with_last(in_shape(0), attrs.dim))};
    }
    case OpKind::kAddRowvec:
    case OpKind::kMulRowvec:
      GAUDI_CHECK(inputs.size() == 2, "rowvec op expects (x, v)");
      GAUDI_CHECK(in_shape(1).rank() == 1 &&
                      in_shape(1)[0] == in_shape(0)[in_shape(0).rank() - 1],
                  "rowvec vector must match trailing dim");
      return {out(in_shape(0))};
    case OpKind::kColumnSum: {
      GAUDI_CHECK(inputs.size() == 1, "column sum expects one input");
      const std::int64_t d = in_shape(0)[in_shape(0).rank() - 1];
      return {out(tensor::Shape{{d}})};
    }
    case OpKind::kFill:
      GAUDI_CHECK(inputs.empty(), "fill takes no inputs");
      GAUDI_CHECK(attrs.shape.rank() >= 1, "fill requires attrs.shape");
      return {out(attrs.shape)};
    case OpKind::kTranspose:
      GAUDI_CHECK(inputs.size() == 1, "transpose expects one input");
      return {out(transposed_last2(in_shape(0)))};
    case OpKind::kSwapAxes12: {
      GAUDI_CHECK(inputs.size() == 1, "swap_axes12 expects one input");
      const tensor::Shape& s = in_shape(0);
      GAUDI_CHECK(s.rank() == 4, "swap_axes12 expects rank-4 input");
      return {out(tensor::Shape{{s[0], s[2], s[1], s[3]}})};
    }
    case OpKind::kConcatRows: {
      GAUDI_CHECK(inputs.size() == 2, "concat_rows expects two inputs");
      const tensor::Shape& sa = in_shape(0);
      const tensor::Shape& sb = in_shape(1);
      GAUDI_CHECK(sa.rank() >= 2 && sa.rank() == sb.rank(),
                  "concat_rows rank mismatch");
      GAUDI_CHECK(sa[sa.rank() - 1] == sb[sb.rank() - 1],
                  "concat_rows trailing dims must match");
      GAUDI_CHECK(sa.batch_count(2) == sb.batch_count(2),
                  "concat_rows batch dims must match");
      std::vector<std::int64_t> dims(sa.dims().begin(), sa.dims().end());
      dims[dims.size() - 2] += sb[sb.rank() - 2];
      return {out(tensor::Shape{std::span<const std::int64_t>(dims)})};
    }
    case OpKind::kSliceRows: {
      GAUDI_CHECK(inputs.size() == 1, "slice_rows expects one input");
      const tensor::Shape& s = in_shape(0);
      GAUDI_CHECK(s.rank() >= 2, "slice_rows expects rank >= 2");
      GAUDI_CHECK(attrs.count > 0 && attrs.dim >= 0 &&
                      attrs.dim + attrs.count <= s[s.rank() - 2],
                  "slice_rows range out of bounds");
      std::vector<std::int64_t> dims(s.dims().begin(), s.dims().end());
      dims[dims.size() - 2] = attrs.count;
      return {out(tensor::Shape{std::span<const std::int64_t>(dims)})};
    }
    case OpKind::kAddMask2D: {
      GAUDI_CHECK(inputs.size() == 2, "add_mask expects (x, mask)");
      const tensor::Shape& s = in_shape(0);
      GAUDI_CHECK(in_shape(1).rank() == 2 &&
                      in_shape(1)[0] == s[s.rank() - 2] &&
                      in_shape(1)[1] == s[s.rank() - 1],
                  "add_mask mask must match trailing dims");
      return {out(s)};
    }
    case OpKind::kEmbedding: {
      GAUDI_CHECK(inputs.size() == 2, "embedding expects (table, ids)");
      GAUDI_CHECK(in_shape(0).rank() == 2, "embedding table must be [V, D]");
      GAUDI_CHECK(in_dtype(1) == tensor::DType::I32, "embedding ids must be i32");
      std::vector<std::int64_t> dims(in_shape(1).dims().begin(),
                                     in_shape(1).dims().end());
      dims.push_back(in_shape(0)[1]);
      return {out(tensor::Shape{std::span<const std::int64_t>(dims)})};
    }
    case OpKind::kEmbeddingGrad: {
      GAUDI_CHECK(inputs.size() == 2, "embedding grad expects (ids, dy)");
      GAUDI_CHECK(attrs.dim > 0, "embedding grad needs vocab size in attrs.dim");
      const std::int64_t d = in_shape(1)[in_shape(1).rank() - 1];
      return {out(tensor::Shape{{attrs.dim, d}})};
    }
    case OpKind::kCrossEntropyMean:
      GAUDI_CHECK(inputs.size() == 2, "cross entropy expects (logits, targets)");
      GAUDI_CHECK(in_shape(0).rank() == 2, "cross entropy logits must be [N, V]");
      GAUDI_CHECK(in_dtype(1) == tensor::DType::I32,
                  "cross entropy targets must be i32");
      return {out(tensor::Shape{{1}})};
    case OpKind::kCrossEntropyGrad:
      GAUDI_CHECK(inputs.size() == 2, "cross entropy grad expects (logits, targets)");
      return {out(in_shape(0))};
    case OpKind::kSgdUpdate: {
      GAUDI_CHECK(inputs.size() == 2 || inputs.size() == 3,
                  "sgd update expects (param, grad[, velocity])");
      GAUDI_CHECK(in_shape(0).numel() == in_shape(1).numel(),
                  "sgd update shape mismatch");
      std::vector<ValueId> outs{out(in_shape(0))};
      if (inputs.size() == 3) outs.push_back(out(in_shape(0)));  // velocity'
      return outs;
    }
    case OpKind::kAdamUpdate: {
      GAUDI_CHECK(inputs.size() == 4, "adam update expects (param, grad, m, v)");
      for (std::size_t i = 1; i < 4; ++i) {
        GAUDI_CHECK(in_shape(i).numel() == in_shape(0).numel(),
                    "adam update shape mismatch");
      }
      return {out(in_shape(0)), out(in_shape(0)), out(in_shape(0))};
    }
    case OpKind::kCast: {
      GAUDI_CHECK(inputs.size() == 1, "cast expects one input");
      GAUDI_CHECK(tensor::is_floating(in_dtype(0)) &&
                      tensor::is_floating(attrs.cast_to) &&
                      in_dtype(0) != attrs.cast_to,
                  "cast converts between distinct floating dtypes");
      return {out(in_shape(0), attrs.cast_to)};
    }
    case OpKind::kReshape:
      GAUDI_CHECK(inputs.size() == 1, "reshape expects one input");
      GAUDI_CHECK(attrs.shape.numel() == in_shape(0).numel(),
                  "reshape changes element count");
      return {out(attrs.shape, in_dtype(0))};
  }
  throw sim::InternalError("unhandled op kind in shape inference");
}

std::vector<ValueId> Graph::add_op(OpKind kind, std::vector<ValueId> inputs,
                                   OpAttrs attrs, std::string label) {
  for (ValueId v : inputs) {
    GAUDI_CHECK(v >= 0 && v < static_cast<ValueId>(values_.size()),
                "op references an invalid value");
  }
  const NodeId id = static_cast<NodeId>(nodes_.size());
  if (label.empty()) label = std::string(op_kind_name(kind));

  Node n;
  n.kind = kind;
  n.attrs = attrs;
  n.label = std::move(label);
  n.inputs = inputs;
  n.outputs = infer_outputs(kind, attrs, inputs, n.label, id);
  for (ValueId v : inputs) {
    values_[static_cast<std::size_t>(v)].consumers.push_back(id);
  }
  nodes_.push_back(std::move(n));
  return nodes_.back().outputs;
}

// -- Convenience builders ------------------------------------------------------

ValueId Graph::matmul(ValueId a, ValueId b, bool trans_a, bool trans_b,
                      std::string label) {
  OpAttrs attrs;
  attrs.trans_a = trans_a;
  attrs.trans_b = trans_b;
  return add_op(OpKind::kMatMul, {a, b}, attrs, std::move(label))[0];
}

ValueId Graph::matmul_bias(ValueId a, ValueId b, ValueId bias, std::string label) {
  return add_op(OpKind::kMatMul, {a, b, bias}, {}, std::move(label))[0];
}

ValueId Graph::add(ValueId a, ValueId b, std::string label) {
  return add_op(OpKind::kAdd, {a, b}, {}, std::move(label))[0];
}
ValueId Graph::sub(ValueId a, ValueId b, std::string label) {
  return add_op(OpKind::kSub, {a, b}, {}, std::move(label))[0];
}
ValueId Graph::mul(ValueId a, ValueId b, std::string label) {
  return add_op(OpKind::kMul, {a, b}, {}, std::move(label))[0];
}
ValueId Graph::div(ValueId a, ValueId b, std::string label) {
  return add_op(OpKind::kDiv, {a, b}, {}, std::move(label))[0];
}

ValueId Graph::add_scalar(ValueId a, float s, std::string label) {
  OpAttrs attrs;
  attrs.scalar = s;
  return add_op(OpKind::kAddScalar, {a}, attrs, std::move(label))[0];
}
ValueId Graph::mul_scalar(ValueId a, float s, std::string label) {
  OpAttrs attrs;
  attrs.scalar = s;
  return add_op(OpKind::kMulScalar, {a}, attrs, std::move(label))[0];
}

ValueId Graph::unary(tpc::UnaryKind kind, ValueId x, float alpha, std::string label) {
  OpAttrs attrs;
  attrs.unary = kind;
  attrs.alpha = alpha;
  if (label.empty()) label = tpc::unary_kind_name(kind);
  return add_op(OpKind::kUnary, {x}, attrs, std::move(label))[0];
}

ValueId Graph::glu(ValueId x, bool requires_recompile, std::string label) {
  OpAttrs attrs;
  attrs.requires_recompile = requires_recompile;
  return add_op(OpKind::kGlu, {x}, attrs, std::move(label))[0];
}

ValueId Graph::softmax(ValueId x, std::string label) {
  return add_op(OpKind::kSoftmax, {x}, {}, std::move(label))[0];
}

std::vector<ValueId> Graph::layernorm(ValueId x, ValueId gamma, ValueId beta,
                                      float eps, std::string label) {
  OpAttrs attrs;
  attrs.eps = eps;
  return add_op(OpKind::kLayerNorm, {x, gamma, beta}, attrs, std::move(label));
}

ValueId Graph::reduce_sum(ValueId x, std::string label) {
  return add_op(OpKind::kReduceSum, {x}, {}, std::move(label))[0];
}
ValueId Graph::reduce_mean(ValueId x, std::string label) {
  return add_op(OpKind::kReduceMean, {x}, {}, std::move(label))[0];
}

ValueId Graph::broadcast_last(ValueId x, std::int64_t d, std::string label) {
  OpAttrs attrs;
  attrs.dim = d;
  return add_op(OpKind::kBroadcastLast, {x}, attrs, std::move(label))[0];
}

ValueId Graph::add_rowvec(ValueId x, ValueId v, std::string label) {
  return add_op(OpKind::kAddRowvec, {x, v}, {}, std::move(label))[0];
}

ValueId Graph::transpose(ValueId x, std::string label) {
  return add_op(OpKind::kTranspose, {x}, {}, std::move(label))[0];
}

ValueId Graph::swap_axes12(ValueId x, std::string label) {
  return add_op(OpKind::kSwapAxes12, {x}, {}, std::move(label))[0];
}

ValueId Graph::reshape(ValueId x, tensor::Shape new_shape, std::string label) {
  OpAttrs attrs;
  attrs.shape = std::move(new_shape);
  return add_op(OpKind::kReshape, {x}, attrs, std::move(label))[0];
}

ValueId Graph::concat_rows(ValueId a, ValueId b, std::string label) {
  return add_op(OpKind::kConcatRows, {a, b}, {}, std::move(label))[0];
}

ValueId Graph::slice_rows(ValueId x, std::int64_t begin, std::int64_t count,
                          std::string label) {
  OpAttrs attrs;
  attrs.dim = begin;
  attrs.count = count;
  return add_op(OpKind::kSliceRows, {x}, attrs, std::move(label))[0];
}

ValueId Graph::cast(ValueId x, tensor::DType to, std::string label) {
  OpAttrs attrs;
  attrs.cast_to = to;
  return add_op(OpKind::kCast, {x}, attrs, std::move(label))[0];
}

ValueId Graph::fill(tensor::Shape shape, float v, std::string label) {
  OpAttrs attrs;
  attrs.shape = std::move(shape);
  attrs.scalar = v;
  return add_op(OpKind::kFill, {}, attrs, std::move(label))[0];
}

ValueId Graph::ones_like(ValueId x, std::string label) {
  return fill(value(x).shape, 1.0f, std::move(label));
}

ValueId Graph::dropout(ValueId x, float p, std::uint64_t seed, std::string label) {
  OpAttrs attrs;
  attrs.p = p;
  attrs.seed = seed;
  return add_op(OpKind::kDropout, {x}, attrs, std::move(label))[0];
}

ValueId Graph::embedding(ValueId table, ValueId ids, std::string label) {
  return add_op(OpKind::kEmbedding, {table, ids}, {}, std::move(label))[0];
}

ValueId Graph::cross_entropy_mean(ValueId logits, ValueId targets,
                                  std::string label) {
  return add_op(OpKind::kCrossEntropyMean, {logits, targets}, {},
                std::move(label))[0];
}

}  // namespace gaudi::graph

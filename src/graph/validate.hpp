// Schedule/trace invariant validation.
//
// Every number this reproduction reports — Fig 4's MME idle gaps, Fig 6's
// missing q'/k' overlap, the §4 advisor findings — is a reduction over
// `Trace` objects emitted by the list scheduler, so a silent scheduling bug
// corrupts every downstream figure.  TraceValidator checks a scheduled
// (Graph, execs, Trace) triple against the full invariant set promised in
// DESIGN.md §5 and reports violations instead of asserting, so callers can
// aggregate, log, or throw as appropriate:
//
//  * event-times     — 0 <= start <= end for every event
//  * engine-overlap  — per-engine intervals never overlap (half-open)
//  * issue-order     — per-engine starts are non-decreasing in issue order
//  * exec-count      — exactly one compute event per engine-bearing node,
//                      none for metadata nodes, no duplicates or strays
//  * exec-match      — event duration/flops/bytes equal the node's NodeExec;
//                      DMA bytes equal the moved value's size
//  * dependency      — no node starts before all inputs are ready, counting
//                      inter-engine DMA completion and the one-time JIT
//                      recompile stall
//  * missing-dma     — a cross-engine edge with no DMA event
//  * spurious-dma    — a DMA event no consumer needed
//  * barrier         — under kBarrier, every engine switch serializes
//  * overlap-slower  — kOverlap makespan must not exceed kBarrier on the
//                      same (graph, execs)
//  * stall-nesting   — injected kStall and kGuard events nest inside an
//                      event of their own (engine, node); never free-standing
//                      engine time
//  * retry-overlap   — fault-retried DMA attempts of one transfer carry
//                      consecutive retry indices and never overlap their
//                      failed predecessor
//  * guard-span      — the kGuard sweep time nested in each compute span
//                      equals the node's NodeExec::guard_time (zero for
//                      unguarded runs: no kGuard events at all)
//  * guard-stats     — numerics stats appear only on kGuard events, so
//                      unguarded traces serialize byte-identically to
//                      pre-guard builds
//
// Wire-up: `Runtime::run` validates when RunOptions::validate is set or the
// GAUDI_VALIDATE environment variable is enabled (covers every figure
// bench); `gaudisim_cli profile-*` exposes `--validate`; debug builds of
// `core::summarize` run the trace-only subset on every summarized trace.
#pragma once

#include <string>
#include <vector>

#include "graph/executor.hpp"
#include "graph/graph.hpp"
#include "graph/scheduler.hpp"
#include "graph/trace.hpp"
#include "sim/chip_config.hpp"

namespace gaudi::graph {

/// One broken invariant.
struct Violation {
  std::string invariant;  ///< short id, e.g. "engine-overlap"
  std::string detail;     ///< human-readable specifics
  NodeId node = -1;       ///< offending node, when attributable
};

class TraceValidator {
 public:
  /// Trace-only invariants (event-times, engine-overlap): applicable to any
  /// trace, including hand-built ones, without the producing graph.
  [[nodiscard]] static std::vector<Violation> validate_trace(const Trace& trace);

  /// Full invariant set for a scheduled (Graph, execs, Trace) triple.
  /// `policy` must be the policy the trace was scheduled under; `cfg` is
  /// needed to re-derive the recompile stall and the cross-policy makespan
  /// comparison.  Returns an empty vector when every invariant holds.
  [[nodiscard]] static std::vector<Violation> validate(
      const Graph& g, const std::vector<NodeExec>& execs, const Trace& trace,
      SchedulePolicy policy, const sim::ChipConfig& cfg);

  /// Multi-line report, one violation per line; empty string for no
  /// violations.
  [[nodiscard]] static std::string format(const std::vector<Violation>& violations);
};

struct CompiledGraph;

/// Memory-plan invariants for a compiled artifact:
///
///  * plan-bounds   — every planned buffer lies inside the arena
///  * plan-liveness — liveness intervals are well-formed (def <= free)
///  * plan-overlap  — no two simultaneously-live buffers share bytes
///
/// (`Runtime::run` additionally cross-checks the planned peak against the
/// dynamic allocator's observed peak when validation is enabled.)
[[nodiscard]] std::vector<Violation> validate_memory_plan(const CompiledGraph& cg);

/// True when the GAUDI_VALIDATE environment variable is set to anything but
/// "" or "0" — the opt-in used by the figure benches.
[[nodiscard]] bool validation_requested_from_env();

/// Runs the full validator and throws sim::InternalError listing every
/// violation when any invariant is broken.
void validate_or_throw(const Graph& g, const std::vector<NodeExec>& execs,
                       const Trace& trace, SchedulePolicy policy,
                       const sim::ChipConfig& cfg);

}  // namespace gaudi::graph

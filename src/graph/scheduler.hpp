// Engine-level schedulers.
//
// Two policies model the two compiler behaviours the paper contrasts:
//
//  * kBarrier — what the traces show SynapseAI doing on these graphs: ops
//    issue in program order and every engine switch acts as a full barrier,
//    so MME and TPC never overlap ("There is no good overlap between MME and
//    TPC", §3.4; "Graph Compiler does not detect this independence", §3.3).
//
//  * kOverlap — the independence-aware schedule the paper says the compiler
//    *should* produce: dependency-driven list scheduling with in-order issue
//    per engine, which lets e.g. FAVOR's q′ and k′ branches overlap MME and
//    TPC work.
//
// Both insert DMA transfers on MME<->TPC edges (data moves through shared
// memory via the DMA engine, paper §2.1) and a HOST stall for ops flagged
// `requires_recompile` (the paper's explanation of GLU's blank area).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/executor.hpp"
#include "graph/graph.hpp"
#include "graph/trace.hpp"
#include "sim/chip_config.hpp"
#include "sim/fault.hpp"

namespace gaudi::graph {

enum class SchedulePolicy : std::uint8_t {
  kBarrier,  ///< observed SynapseAI behaviour: engine switches serialize
  kOverlap,  ///< independence-aware: dataflow-limited overlap
};

[[nodiscard]] const char* schedule_policy_name(SchedulePolicy p);

/// Places node executions on engine timelines and returns the trace.
/// `execs` must be indexed by NodeId (one entry per graph node).
///
/// `faults` (optional) injects deterministic hardware faults into the
/// schedule instead of letting them silently mistime it: a straggling TPC
/// kernel stretches its compute event and nests a kStall over the extension,
/// and a timed-out DMA re-issues the transfer as extra kDma attempts with
/// increasing `retry` indices separated by exponential backoff.  A null
/// injector (the default) takes the exact pre-fault code path, so fault-free
/// traces are bit-identical to earlier builds.
[[nodiscard]] Trace schedule(const Graph& g, const std::vector<NodeExec>& execs,
                             const sim::ChipConfig& cfg, SchedulePolicy policy,
                             const sim::FaultInjector* faults = nullptr);

struct CompiledGraph;

/// Plan-driven variant: per-value source-engine sets come from the compiled
/// artifact's DMA-insertion pass instead of being re-derived, so the
/// per-run loop makes no mapping decisions.  Produces the same trace as the
/// legacy overload for the execs the compiled runtime emits.
[[nodiscard]] Trace schedule(const CompiledGraph& cg,
                             const std::vector<NodeExec>& execs,
                             SchedulePolicy policy,
                             const sim::FaultInjector* faults = nullptr);

}  // namespace gaudi::graph

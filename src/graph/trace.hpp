// Hardware-trace representation and analysis.
//
// The paper's evidence is SynapseAI profiler traces (Figures 4-9): per-engine
// timelines whose blank areas are the story.  Trace captures the same
// intervals and provides the quantitative reductions the figures are read
// for — busy/idle fractions, idle-gap inventories, per-op time shares — plus
// Chrome-trace JSON export for visual inspection in a trace viewer.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "graph/op.hpp"
#include "sim/numerics.hpp"
#include "sim/time.hpp"

namespace gaudi::graph {

/// What kind of activity an event records; lets the validator (and trace
/// viewers) tell node work apart from the transfers and stalls the scheduler
/// inserts around it.
enum class TraceEventKind : std::uint8_t {
  kCompute,    ///< a graph node executing on its engine
  kDma,        ///< inter-engine transfer inserted by the scheduler
  kRecompile,  ///< one-time graph-compiler stall (HOST row)
  kStall,      ///< injected-fault stall nested inside its parent span
  kGuard,      ///< numerics-guard sweep nested at the tail of its exec span
};

/// True for the annotation kinds that nest inside a parent span and are
/// excluded from busy-time accounting (counting them would double-bill the
/// engine).
[[nodiscard]] constexpr bool is_nested_annotation(TraceEventKind k) {
  return k == TraceEventKind::kStall || k == TraceEventKind::kGuard;
}

struct TraceEvent {
  Engine engine = Engine::kNone;
  TraceEventKind kind = TraceEventKind::kCompute;
  std::string name;
  std::int32_t node = -1;
  /// For kDma events: the ValueId being moved and the engine it is moved to
  /// (-1 / kNone otherwise).  Keys the scheduler's per-(value, destination)
  /// transfer dedup so the validator can reconstruct it.
  std::int32_t value = -1;
  Engine dma_dst = Engine::kNone;
  sim::SimTime start{};
  sim::SimTime end{};
  std::uint64_t flops = 0;
  std::size_t bytes = 0;
  /// Retry attempt index for fault-injected kDma re-transfers (0 = first
  /// attempt).  Attempts of one transfer share (value, dma_dst) and carry
  /// strictly increasing retry indices.
  std::uint32_t retry = 0;
  /// Numerics sweep results attached to kGuard events by guarded runs
  /// (has_stats is false on every event of an unguarded run, keeping those
  /// traces byte-identical to pre-guard builds).
  bool has_stats = false;
  sim::NumericsStats stats{};

  [[nodiscard]] sim::SimTime duration() const { return end - start; }
};

/// An idle interval on one engine.
struct Gap {
  sim::SimTime start{};
  sim::SimTime end{};
  [[nodiscard]] sim::SimTime duration() const { return end - start; }
};

class Trace {
 public:
  void add(TraceEvent e);

  [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }
  [[nodiscard]] bool empty() const { return events_.empty(); }

  /// End of the last event (start of the first is defined to be t=0).
  [[nodiscard]] sim::SimTime makespan() const;

  /// Sum of event durations on one engine.
  [[nodiscard]] sim::SimTime busy(Engine e) const;

  /// busy(e) / makespan(); 0 when the trace is empty.
  [[nodiscard]] double utilization(Engine e) const;

  /// Idle fraction of the engine across the whole makespan.
  [[nodiscard]] double idle_fraction(Engine e) const { return 1.0 - utilization(e); }

  /// Idle intervals on `e` between t=0 and the makespan, longest first
  /// omitted — returned in time order.  These are the "blank areas" of the
  /// paper's figures.
  [[nodiscard]] std::vector<Gap> gaps(Engine e) const;

  /// Total busy time of events whose name contains `substr` on a token
  /// boundary, on `e` (or on all engines when e == Engine::kNone).  A match
  /// must start and end at a non-alphanumeric neighbour (or the string edge):
  /// "exp" matches "h0.q_exp" and "exp" but not "expand" or "index".
  [[nodiscard]] sim::SimTime busy_matching(const std::string& substr,
                                           Engine e = Engine::kNone) const;

  /// Share of engine-busy time taken by events matching `substr` (same
  /// token-boundary rule as busy_matching).
  [[nodiscard]] double share_of_engine(const std::string& substr, Engine e) const;

  /// Busy time grouped by event name (per engine).
  [[nodiscard]] std::map<std::string, sim::SimTime> busy_by_name(Engine e) const;

  /// Chrome-trace JSON ("catapult" format) — loadable in a trace viewer.
  [[nodiscard]] std::string to_chrome_json() const;
  void write_chrome_json(const std::string& path) const;

  /// Compact fixed-width ASCII rendering of the per-engine timelines, the
  /// textual analogue of the paper's figures.
  [[nodiscard]] std::string ascii_timeline(int width = 100) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace gaudi::graph

// Structural fingerprinting of graphs and chip configurations.
//
// The timing-only fast path (graph/timing_memo.hpp) replays memoized
// schedules across *separately compiled* artifacts, so it needs a key that
// identifies "the same compilation": the FNV-1a digest of everything the
// pass pipeline consumes — every value's shape/dtype/role/name, every
// node's kind/attrs/operands/label, the chip configuration, and the
// compile options.  Two CompiledGraphs with equal fingerprints schedule
// identically in timing mode; the digest is stored on the artifact by the
// compiler's `fingerprint` pass and surfaced through CompileStats.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "sim/chip_config.hpp"

namespace gaudi::graph {

class Graph;
struct CompileOptions;

/// Incremental FNV-1a (64-bit) accumulator.  Every ingest method folds a
/// fixed-width encoding so digests are identical across platforms.
class Fingerprint {
 public:
  void bytes(const void* data, std::size_t n);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void u8(std::uint8_t v) { bytes(&v, 1); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  /// Bit pattern of the float/double (exact, not value-rounded).
  void f32(float v);
  void f64(double v);
  /// Length-prefixed, so ("ab","c") and ("a","bc") digest differently.
  void str(std::string_view s);

  [[nodiscard]] std::uint64_t digest() const { return h_; }

 private:
  std::uint64_t h_ = 1469598103934665603ull;  // FNV offset basis
};

/// Digest of every timing-relevant chip parameter.
[[nodiscard]] std::uint64_t chip_fingerprint(const sim::ChipConfig& cfg);

/// Digest of the full compilation input: graph structure, chip config, and
/// compile options.  This is what CompiledGraph::fingerprint stores.
[[nodiscard]] std::uint64_t compile_fingerprint(const Graph& g,
                                                const sim::ChipConfig& cfg,
                                                const CompileOptions& opts);

}  // namespace gaudi::graph

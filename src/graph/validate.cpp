#include "graph/validate.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <sstream>
#include <utility>

#include "graph/compiler.hpp"
#include "sim/env.hpp"
#include "sim/error.hpp"

namespace gaudi::graph {

namespace {

constexpr std::uint8_t engine_bit(Engine e) {
  return static_cast<std::uint8_t>(1u << static_cast<unsigned>(e));
}

std::string ts(sim::SimTime t) { return sim::to_string(t); }

void report(std::vector<Violation>& out, std::string invariant,
            std::string detail, NodeId node = -1) {
  out.push_back(Violation{std::move(invariant), std::move(detail), node});
}

}  // namespace

std::vector<Violation> TraceValidator::validate_trace(const Trace& trace) {
  std::vector<Violation> out;
  const auto& events = trace.events();

  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (e.start < sim::SimTime::zero() || e.end < e.start) {
      report(out, "event-times",
             "event '" + e.name + "' has start " + ts(e.start) + ", end " +
                 ts(e.end),
             e.node);
    }
    if (e.engine == Engine::kNone) {
      report(out, "event-times",
             "event '" + e.name + "' is placed on no engine", e.node);
    }
  }

  // Guard-only payloads stay off every other event kind so unguarded traces
  // serialize byte-identically to pre-guard builds.
  for (const auto& e : events) {
    if (e.has_stats && e.kind != TraceEventKind::kGuard) {
      report(out, "guard-stats",
             "event '" + e.name + "' carries numerics stats but is not a "
                 "kGuard sweep",
             e.node);
    }
  }

  // Per-engine interval non-overlap, independent of insertion order.
  // kStall/kGuard events are excluded: they intentionally nest inside their
  // parent span (checked separately below).
  for (std::size_t eng = 0; eng + 1 < kEngineCount; ++eng) {
    std::vector<const TraceEvent*> mine;
    for (const auto& e : events) {
      if (is_nested_annotation(e.kind)) continue;
      if (e.engine == static_cast<Engine>(eng)) mine.push_back(&e);
    }
    std::sort(mine.begin(), mine.end(), [](const TraceEvent* a, const TraceEvent* b) {
      return std::make_pair(a->start, a->end) < std::make_pair(b->start, b->end);
    });
    for (std::size_t i = 0; i + 1 < mine.size(); ++i) {
      if (mine[i + 1]->start < mine[i]->end) {
        report(out, "engine-overlap",
               std::string(engine_name(static_cast<Engine>(eng))) + ": '" +
                   mine[i]->name + "' [" + ts(mine[i]->start) + ", " +
                   ts(mine[i]->end) + ") overlaps '" + mine[i + 1]->name +
                   "' starting " + ts(mine[i + 1]->start),
               mine[i + 1]->node);
      }
    }
  }

  // Stall/guard nesting: every kStall and kGuard must lie inside a
  // non-annotation event with the same (engine, node) — annotations mark a
  // portion of a span, never free-standing engine time.
  for (const auto& s : events) {
    if (!is_nested_annotation(s.kind)) continue;
    bool nested = false;
    for (const auto& e : events) {
      if (is_nested_annotation(e.kind)) continue;
      if (e.engine == s.engine && e.node == s.node && e.start <= s.start &&
          s.end <= e.end) {
        nested = true;
        break;
      }
    }
    if (!nested) {
      report(out, "stall-nesting",
             std::string(s.kind == TraceEventKind::kGuard ? "guard sweep '"
                                                          : "stall '") +
                 s.name + "' [" + ts(s.start) + ", " + ts(s.end) +
                 ") is not nested inside any event of its node",
             s.node);
    }
  }

  // Retry ordering: attempts of one transfer — kDma events sharing
  // (value, destination) — must carry consecutive retry indices starting at
  // 0 and must not overlap their predecessor (a retry re-issues only after
  // the failed attempt has drained).
  {
    std::map<std::pair<std::int32_t, Engine>, const TraceEvent*> last_attempt;
    for (const auto& e : events) {
      if (e.kind != TraceEventKind::kDma || e.value < 0) continue;
      const auto key = std::make_pair(e.value, e.dma_dst);
      const auto it = last_attempt.find(key);
      const std::uint32_t expected =
          it == last_attempt.end() ? 0 : it->second->retry + 1;
      if (e.retry != expected) {
        report(out, "retry-overlap",
               "DMA attempt '" + e.name + "' carries retry index " +
                   std::to_string(e.retry) + ", expected " +
                   std::to_string(expected),
               e.node);
      }
      if (it != last_attempt.end() && e.start < it->second->end) {
        report(out, "retry-overlap",
               "DMA retry '" + e.name + "' starts " + ts(e.start) +
                   " before the failed attempt ends at " + ts(it->second->end),
               e.node);
      }
      last_attempt[key] = &e;
    }
  }
  return out;
}

std::vector<Violation> TraceValidator::validate(const Graph& g,
                                                const std::vector<NodeExec>& execs,
                                                const Trace& trace,
                                                SchedulePolicy policy,
                                                const sim::ChipConfig& cfg) {
  std::vector<Violation> out = validate_trace(trace);
  if (execs.size() != g.num_nodes()) {
    report(out, "exec-count",
           "expected one NodeExec per node: " + std::to_string(execs.size()) +
               " execs for " + std::to_string(g.num_nodes()) + " nodes");
    return out;
  }

  const auto& events = trace.events();

  // Issue order: the scheduler appends events as it issues them, and issue is
  // in-order per engine, so per-engine starts must be non-decreasing in trace
  // order.
  {
    sim::SimTime last_start[kEngineCount]{};
    for (const auto& e : events) {
      if (e.engine == Engine::kNone) continue;
      auto& prev = last_start[static_cast<std::size_t>(e.engine)];
      if (e.start < prev) {
        report(out, "issue-order",
               std::string(engine_name(e.engine)) + ": '" + e.name +
                   "' starts " + ts(e.start) + " before the previously issued " +
                   ts(prev),
               e.node);
      }
      prev = std::max(prev, e.start);
    }
  }

  // Barrier policy: an event issued after one on a different engine may not
  // start before everything issued so far has drained.
  if (policy == SchedulePolicy::kBarrier) {
    Engine last = Engine::kNone;
    sim::SimTime global_end = sim::SimTime::zero();
    for (const auto& e : events) {
      // Stalls/guards nest inside an already-issued span; they are not issues.
      if (is_nested_annotation(e.kind)) continue;
      if (last != Engine::kNone && e.engine != last && e.start < global_end) {
        report(out, "barrier",
               "engine switch to '" + e.name + "' on " +
                   std::string(engine_name(e.engine)) + " starts " + ts(e.start) +
                   " before the global drain at " + ts(global_end),
               e.node);
      }
      global_end = std::max(global_end, e.end);
      last = e.engine;
    }
  }

  // Index events by role.  A fault-injected transfer may appear as several
  // kDma attempts sharing (value, destination): the first attempt gates the
  // value-readiness check, the last gates the consumer.
  std::vector<std::int64_t> compute_event_of(g.num_nodes(), -1);
  std::map<std::pair<ValueId, Engine>, std::size_t> dma_first_of;
  std::map<std::pair<ValueId, Engine>, std::size_t> dma_event_of;
  std::vector<bool> dma_needed(events.size(), false);
  std::map<NodeId, std::size_t> recompile_event_of;
  // Injected stall time nested in each node's compute span: the span is the
  // NodeExec duration plus these stalls.
  std::map<NodeId, sim::SimTime> stall_of;
  // Guard-sweep time nested in each node's compute span (guarded runs only);
  // cross-checked against NodeExec::guard_time below.
  std::map<NodeId, sim::SimTime> guard_of;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    switch (e.kind) {
      case TraceEventKind::kCompute: {
        if (e.node < 0 || e.node >= static_cast<std::int32_t>(g.num_nodes())) {
          report(out, "exec-count",
                 "compute event '" + e.name + "' names unknown node " +
                     std::to_string(e.node));
          break;
        }
        if (compute_event_of[static_cast<std::size_t>(e.node)] != -1) {
          report(out, "exec-count",
                 "node has two compute events ('" + e.name + "')", e.node);
          break;
        }
        compute_event_of[static_cast<std::size_t>(e.node)] =
            static_cast<std::int64_t>(i);
        break;
      }
      case TraceEventKind::kDma: {
        const auto key = std::make_pair(static_cast<ValueId>(e.value), e.dma_dst);
        if (e.value < 0 || e.value >= static_cast<std::int32_t>(g.num_values()) ||
            e.dma_dst == Engine::kNone) {
          report(out, "exec-match",
                 "DMA event '" + e.name + "' lacks a valid (value, destination)",
                 e.node);
          break;
        }
        dma_first_of.emplace(key, i);
        const auto [it, inserted] = dma_event_of.emplace(key, i);
        if (!inserted) {
          if (e.retry == 0) {
            // A second retry-0 transfer of the same value to the same engine
            // defeats the scheduler's dedup; retries carry increasing indices
            // (validated above in the trace-only pass).
            report(out, "spurious-dma",
                   "duplicate DMA of value '" + g.value(e.value).name + "' to " +
                       std::string(engine_name(e.dma_dst)),
                   e.node);
          }
          it->second = i;  // last attempt gates the consumer
        }
        break;
      }
      case TraceEventKind::kRecompile: {
        if (!recompile_event_of.emplace(e.node, i).second) {
          report(out, "exec-count", "node has two recompile stalls", e.node);
        }
        break;
      }
      case TraceEventKind::kStall: {
        if (e.node >= 0) stall_of[e.node] += e.duration();
        break;
      }
      case TraceEventKind::kGuard: {
        if (e.node >= 0) {
          guard_of[e.node] += e.duration();
        } else {
          report(out, "guard-span",
                 "guard sweep '" + e.name + "' names no node");
        }
        break;
      }
    }
  }

  // Replay the graph in program order, independently re-deriving the earliest
  // legal start of every node from value availability and DMA completion.
  std::vector<sim::SimTime> avail(g.num_values(), sim::SimTime::zero());
  std::vector<std::uint8_t> sources(g.num_values(), 0);
  std::size_t expected_recompiles = 0;
  bool recompiled = false;

  for (NodeId nid = 0; nid < static_cast<NodeId>(g.num_nodes()); ++nid) {
    const Node& n = g.node(nid);
    const NodeExec& ex = execs[static_cast<std::size_t>(nid)];

    if (ex.engine == Engine::kNone) {
      if (compute_event_of[static_cast<std::size_t>(nid)] != -1) {
        report(out, "exec-count",
               "metadata node '" + n.label + "' has a compute event", nid);
      }
      sim::SimTime ready = sim::SimTime::zero();
      std::uint8_t srcs = 0;
      for (ValueId v : n.inputs) {
        ready = std::max(ready, avail[static_cast<std::size_t>(v)]);
        srcs |= sources[static_cast<std::size_t>(v)];
      }
      for (ValueId v : n.outputs) {
        avail[static_cast<std::size_t>(v)] = ready;
        sources[static_cast<std::size_t>(v)] = srcs;
      }
      continue;
    }

    sim::SimTime required = sim::SimTime::zero();

    if (n.attrs.requires_recompile && !recompiled) {
      recompiled = true;
      ++expected_recompiles;
      const auto it = recompile_event_of.find(nid);
      if (it == recompile_event_of.end()) {
        report(out, "dependency",
               "node '" + n.label +
                   "' requires a recompile but the trace has no stall for it",
               nid);
      } else {
        const TraceEvent& r = events[it->second];
        if (r.duration() != cfg.compiler.recompile_stall) {
          report(out, "exec-match",
                 "recompile stall lasts " + ts(r.duration()) + ", configured " +
                     ts(cfg.compiler.recompile_stall),
                 nid);
        }
        required = std::max(required, r.end);
      }
    }

    const std::int64_t ei = compute_event_of[static_cast<std::size_t>(nid)];
    if (ei < 0) {
      report(out, "exec-count",
             "node '" + n.label + "' on " + std::string(engine_name(ex.engine)) +
                 " has no compute event",
             nid);
      // Keep replaying with a best-effort availability so one missing event
      // does not cascade into spurious dependency violations downstream.
      for (ValueId v : n.outputs) {
        avail[static_cast<std::size_t>(v)] = required;
        sources[static_cast<std::size_t>(v)] = engine_bit(ex.engine);
      }
      continue;
    }
    const TraceEvent& e = events[static_cast<std::size_t>(ei)];

    for (ValueId v : n.inputs) {
      const auto vi = static_cast<std::size_t>(v);
      if ((sources[vi] & ~engine_bit(ex.engine)) != 0) {
        const auto it = dma_event_of.find(std::make_pair(v, ex.engine));
        if (it == dma_event_of.end()) {
          report(out, "missing-dma",
                 "'" + n.label + "' reads '" + g.value(v).name +
                     "' produced on another engine, but no DMA to " +
                     std::string(engine_name(ex.engine)) + " exists",
                 nid);
          required = std::max(required, avail[vi]);
          continue;
        }
        dma_needed[it->second] = true;
        const TraceEvent& d = events[it->second];
        const TraceEvent& d0 = events[dma_first_of.at(std::make_pair(v, ex.engine))];
        if (d0.start < avail[vi]) {
          report(out, "dependency",
                 "DMA of '" + g.value(v).name + "' starts " + ts(d0.start) +
                     " before the value is ready at " + ts(avail[vi]),
                 nid);
        }
        if (d.bytes != g.value(v).nbytes()) {
          report(out, "exec-match",
                 "DMA of '" + g.value(v).name + "' moves " +
                     std::to_string(d.bytes) + " bytes; the value holds " +
                     std::to_string(g.value(v).nbytes()),
                 nid);
        }
        required = std::max(required, d.end);
      } else {
        required = std::max(required, avail[vi]);
      }
    }

    if (e.start < required) {
      report(out, "dependency",
             "'" + e.name + "' starts " + ts(e.start) +
                 " before its inputs are ready at " + ts(required),
             nid);
    }
    if (e.engine != ex.engine) {
      report(out, "exec-match",
             "'" + e.name + "' runs on " + std::string(engine_name(e.engine)) +
                 ", NodeExec says " + std::string(engine_name(ex.engine)),
             nid);
    }
    // A stretched span must equal the NodeExec duration plus exactly the
    // stall and guard time nested inside it — no silent mistiming either way.
    const auto stall_it = stall_of.find(nid);
    const auto guard_it = guard_of.find(nid);
    const sim::SimTime stall_time =
        stall_it == stall_of.end() ? sim::SimTime::zero() : stall_it->second;
    const sim::SimTime guard_time =
        guard_it == guard_of.end() ? sim::SimTime::zero() : guard_it->second;
    const sim::SimTime expected_dur = ex.duration + stall_time + guard_time;
    if (e.duration() != expected_dur) {
      report(out, "exec-match",
             "'" + e.name + "' lasts " + ts(e.duration()) + ", NodeExec says " +
                 ts(ex.duration) +
                 (stall_it == stall_of.end()
                      ? std::string()
                      : " plus " + ts(stall_time) + " injected stall") +
                 (guard_it == guard_of.end()
                      ? std::string()
                      : " plus " + ts(guard_time) + " guard sweep"),
             nid);
    }
    // The guard sweep nested in the span must match the NodeExec exactly: a
    // guarded exec with no kGuard event (or vice versa) means the schedule
    // dropped or invented sweep time.
    if (guard_time != ex.guard_time) {
      report(out, "guard-span",
             "'" + e.name + "' nests " + ts(guard_time) +
                 " of guard sweeps, NodeExec says " + ts(ex.guard_time),
             nid);
    }
    if (e.flops != ex.flops || e.bytes != ex.bytes) {
      report(out, "exec-match",
             "'" + e.name + "' records flops=" + std::to_string(e.flops) +
                 " bytes=" + std::to_string(e.bytes) + ", NodeExec says flops=" +
                 std::to_string(ex.flops) + " bytes=" + std::to_string(ex.bytes),
             nid);
    }

    for (ValueId v : n.outputs) {
      avail[static_cast<std::size_t>(v)] = e.end;
      sources[static_cast<std::size_t>(v)] = engine_bit(ex.engine);
    }
  }

  for (const auto& [key, idx] : dma_event_of) {
    if (!dma_needed[idx]) {
      report(out, "spurious-dma",
             "DMA of value '" + g.value(key.first).name + "' to " +
                 std::string(engine_name(key.second)) + " that no consumer needs",
             events[idx].node);
    }
  }
  if (recompile_event_of.size() != expected_recompiles) {
    report(out, "exec-count",
           "trace holds " + std::to_string(recompile_event_of.size()) +
               " recompile stalls; the graph warrants " +
               std::to_string(expected_recompiles));
  }

  // Cross-policy sanity: independence-aware scheduling must never lose to
  // the full-barrier schedule on the same (graph, execs).
  const sim::SimTime barrier_makespan =
      schedule(g, execs, cfg, SchedulePolicy::kBarrier).makespan();
  const sim::SimTime overlap_makespan =
      schedule(g, execs, cfg, SchedulePolicy::kOverlap).makespan();
  if (overlap_makespan > barrier_makespan) {
    report(out, "overlap-slower",
           "kOverlap makespan " + ts(overlap_makespan) + " exceeds kBarrier " +
               ts(barrier_makespan));
  }

  return out;
}

std::string TraceValidator::format(const std::vector<Violation>& violations) {
  std::ostringstream os;
  for (const auto& v : violations) {
    os << "[" << v.invariant << "]";
    if (v.node >= 0) os << " node " << v.node;
    os << ": " << v.detail << "\n";
  }
  return os.str();
}

std::vector<Violation> validate_memory_plan(const CompiledGraph& cg) {
  std::vector<Violation> out;

  struct Placed {
    ValueId value;
    const ValuePlacement* p;
  };
  std::vector<Placed> placed;
  for (ValueId v = 0; v < static_cast<ValueId>(cg.graph.num_values()); ++v) {
    const ValuePlacement& p = cg.placements[static_cast<std::size_t>(v)];
    if (!p.has_buffer) continue;
    if (p.def > p.freed_at) {
      report(out, "plan-liveness",
             "'" + cg.graph.value(v).name + "' is freed (step " +
                 std::to_string(p.freed_at) + ") before it is defined (step " +
                 std::to_string(p.def) + ")");
    }
    if (p.offset + p.bytes > cg.stats.arena_bytes) {
      report(out, "plan-bounds",
             "'" + cg.graph.value(v).name + "' at [" +
                 std::to_string(p.offset) + ", " +
                 std::to_string(p.offset + p.bytes) + ") exceeds the " +
                 std::to_string(cg.stats.arena_bytes) + "-byte arena");
    }
    if (p.bytes > 0) placed.push_back(Placed{v, &p});
  }

  // No two simultaneously-live buffers may share bytes.  Liveness overlap is
  // inclusive at the boundary step: a buffer allocated in the step another
  // is freed coexists with it, because allocations precede frees within a
  // step.  Sorting by offset keeps the address scan near-linear.
  std::sort(placed.begin(), placed.end(), [](const Placed& a, const Placed& b) {
    return a.p->offset < b.p->offset;
  });
  for (std::size_t i = 0; i < placed.size(); ++i) {
    const ValuePlacement& a = *placed[i].p;
    for (std::size_t j = i + 1; j < placed.size(); ++j) {
      const ValuePlacement& b = *placed[j].p;
      if (b.offset >= a.offset + a.bytes) break;  // no address overlap further
      const bool live_together = a.def <= b.freed_at && b.def <= a.freed_at;
      if (!live_together) continue;
      report(out, "plan-overlap",
             "'" + cg.graph.value(placed[i].value).name + "' [" +
                 std::to_string(a.offset) + ", " +
                 std::to_string(a.offset + a.bytes) + ") and '" +
                 cg.graph.value(placed[j].value).name + "' [" +
                 std::to_string(b.offset) + ", " +
                 std::to_string(b.offset + b.bytes) +
                 ") are live at the same time and share bytes");
    }
  }
  return out;
}

bool validation_requested_from_env() {
  // Unrecognized values warn once to stderr and conservatively enable
  // validation (the safe direction for a checking knob).
  return sim::env_flag("GAUDI_VALIDATE", /*fallback_for_unrecognized=*/true);
}

void validate_or_throw(const Graph& g, const std::vector<NodeExec>& execs,
                       const Trace& trace, SchedulePolicy policy,
                       const sim::ChipConfig& cfg) {
  const auto violations = TraceValidator::validate(g, execs, trace, policy, cfg);
  if (!violations.empty()) {
    throw sim::InternalError(
        "schedule validation failed under policy '" +
        std::string(schedule_policy_name(policy)) + "' (" +
        std::to_string(violations.size()) + " violation(s)):\n" +
        TraceValidator::format(violations));
  }
}

}  // namespace gaudi::graph

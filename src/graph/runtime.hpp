// Graph runtime: the execute side of the compile/execute split.
//
// `Runtime::compile` runs the ahead-of-time pass pipeline (engine mapping,
// element-wise fusion, DMA insertion, liveness, static memory planning,
// topological order — see graph/compiler.hpp) and returns an immutable
// CompiledGraph.  `Runtime::run(const CompiledGraph&, feeds)` is the thin
// run-many loop: it executes nodes in the compiled order (numerics or
// timing-only), replays the dynamic HBM allocator as a debug cross-check of
// the static memory plan, schedules the node durations onto engine
// timelines under the selected policy, and returns the hardware trace plus
// any requested outputs.  The single-graph `run(const Graph&, ...)`
// overload compiles and runs in one call for one-shot callers.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/compiler.hpp"
#include "graph/executor.hpp"
#include "graph/graph.hpp"
#include "graph/scheduler.hpp"
#include "graph/trace.hpp"
#include "memory/device_memory.hpp"
#include "sim/chip_config.hpp"
#include "sim/numerics.hpp"

namespace gaudi::graph {

struct RunOptions {
  tpc::ExecMode mode = tpc::ExecMode::kFunctional;
  SchedulePolicy policy = SchedulePolicy::kBarrier;
  std::uint64_t seed = 0x6A0D1;
  /// Timing-only fast path: skip kernel math, buffer traffic, checksums,
  /// and guard sweeps, and replay the memoized schedule of this compiled
  /// graph from the process-wide TimingMemo (first run of a fingerprint
  /// executes the real scheduler once; see graph/timing_memo.hpp).  Unset
  /// defers to GAUDI_TIMING_ONLY, which applies only to runs already in
  /// timing mode — a functional run's outputs stay real unless the caller
  /// explicitly opts in here.  Fault injection and corruption hooks bypass
  /// the memo (their schedules are epoch-dependent).
  std::optional<bool> timing_only{};
  /// Replay the dynamic HBM allocator alongside the static plan and enforce
  /// the capacity (throws sim::ResourceExhausted on overflow).  Via the
  /// compile-and-run overload this also gates compile-time capacity
  /// enforcement.
  bool account_memory = true;
  /// Apply the element-wise fusion pass when compiling: single-consumer
  /// chains of element-wise TPC ops execute as one fused kernel, their
  /// intermediates never touching device memory (see graph/fusion.hpp).
  /// Ignored by the CompiledGraph overload — fusion is decided at compile
  /// time.
  bool fuse_elementwise = false;
  /// Run TraceValidator on the scheduled trace (plus the memory-plan
  /// invariants on the compiled artifact) and throw sim::InternalError on
  /// any violation (see graph/validate.hpp).  Also enabled globally by the
  /// GAUDI_VALIDATE environment variable.
  bool validate = false;
  /// Deterministic fault injection for the schedule (see sim/fault.hpp):
  /// TPC stragglers stretch their span with an explicit nested kStall, and
  /// timed-out DMAs re-issue with backoff as extra retry attempts.  Null
  /// (the default) falls back to the process-wide injector configured by
  /// GAUDI_FAULTS / GAUDI_FAULT_SEED; when that is absent too, the schedule
  /// is bit-identical to a fault-free build.
  const sim::FaultInjector* faults = nullptr;
  /// Numerics guard (see sim/numerics.hpp).  Unset falls back to the
  /// GAUDI_GUARD environment variable.  Under kWarn/kTrap a functional run
  /// sweeps every op's retiring outputs for NaN/Inf/denormals, checksums
  /// live buffers to catch silent data corruption between ops, and
  /// poison-fills fresh outputs with a signaling-NaN pattern so
  /// reads-before-writes surface; the sweep cost is billed as a nested
  /// kGuard trace span.  kTrap throws sim::NumericsError at the first
  /// anomaly; kWarn collects them in ProfileResult::anomalies.  kOff keeps
  /// traces and numerics byte-identical to a guard-free build.
  std::optional<sim::NumericsPolicy> guard{};
  /// Epoch mixed into SDC bit-flip fault sites so multi-step callers (the
  /// training loop) draw fresh corruption sites each step.
  std::uint64_t fault_epoch = 0;
  /// Test hook: right after this value's producer retires (and its checksum
  /// is recorded), overwrite element 0 with a quiet NaN — a deterministic
  /// stand-in for an SDC hit on exactly this buffer.
  ValueId corrupt_value = kInvalidValue;
};

/// One anomaly detected by the numerics guard (functional runs only).
struct NumericsAnomaly {
  enum class Kind {
    kNonFinite,  ///< NaN/Inf appeared in an op's swept output
    kSdc,        ///< a live buffer's checksum changed between ops
  };
  Kind kind = Kind::kNonFinite;
  /// Op at which the anomaly was detected (-1: end-of-run output audit).
  NodeId node = -1;
  /// Offending value (the non-finite output, or the corrupted buffer).
  ValueId value = kInvalidValue;
  sim::NumericsStats stats{};
  /// Human-readable report naming the offending node, its producers, and the
  /// feed-to-fault contamination path in topological order.
  std::string report;
};

/// One bit flip the fault injector landed in a live buffer (kSdcBitFlip).
struct SdcInjection {
  NodeId node = -1;           ///< producer whose retired output was hit
  ValueId value = kInvalidValue;
  std::int64_t element = 0;   ///< flat element index
  std::uint32_t bit = 0;      ///< flipped bit position within the element
};

struct ProfileResult {
  Trace trace;
  sim::SimTime makespan{};
  /// Graph outputs (functional mode only; phantom tensors otherwise).
  std::unordered_map<ValueId, tensor::Tensor> outputs;
  /// Peak simulated HBM occupancy — the static plan's peak, which equals
  /// the dynamic allocator's observed peak (cross-checked when validating).
  std::size_t hbm_peak_bytes = 0;
  std::size_t hbm_capacity_bytes = 0;
  /// Per-node execution records (indexed by NodeId).
  std::vector<NodeExec> node_execs;
  /// Guard policy the run resolved (RunOptions::guard or GAUDI_GUARD).
  sim::NumericsPolicy guard_policy = sim::NumericsPolicy::kOff;
  /// Anomalies in detection order (kWarn collects every origination; kTrap
  /// throws at the first, so trapped runs never return this).
  std::vector<NumericsAnomaly> anomalies;
  /// Bit flips the fault injector landed in live buffers this run —
  /// recorded whether or not the guard was on, so tests can cross-check
  /// detection against injection.
  std::vector<SdcInjection> sdc_injections;
  /// Merged numerics stats over every swept output (guarded functional
  /// runs; zero otherwise).
  sim::NumericsStats numerics{};
  /// True when this result came from the timing-only fast path (first run
  /// or replay; trace and summaries are byte-identical either way).
  bool timing_only = false;
  /// True when the result was replayed from the TimingMemo in O(1) instead
  /// of re-executing the scheduler.
  bool memo_hit = false;
  /// Process-wide TimingMemo hit count observed when this run returned —
  /// the counter that proves repeated decode steps are table lookups.
  std::uint64_t memo_hits = 0;
};

class Runtime {
 public:
  explicit Runtime(sim::ChipConfig cfg = sim::ChipConfig::hls1()) : cfg_(cfg) {}

  [[nodiscard]] const sim::ChipConfig& config() const { return cfg_; }

  /// Runs the compiler pass pipeline once; the artifact can be executed any
  /// number of times (and outlives both graph and runtime).
  [[nodiscard]] CompiledGraph compile(const Graph& g,
                                      const CompileOptions& opts = {}) const;

  /// Executes a compiled artifact.  In functional mode every kInput/kParam
  /// value must appear in `feeds`; in timing mode feeds are ignored.
  ProfileResult run(const CompiledGraph& cg,
                    const std::unordered_map<ValueId, tensor::Tensor>& feeds,
                    const RunOptions& opts = {}) const;

  /// Compiles and runs `g` in one call.  Callers that execute a graph
  /// repeatedly should compile once and use the CompiledGraph overload.
  ProfileResult run(const Graph& g,
                    const std::unordered_map<ValueId, tensor::Tensor>& feeds,
                    const RunOptions& opts = {}) const;

 private:
  sim::ChipConfig cfg_;
};

}  // namespace gaudi::graph

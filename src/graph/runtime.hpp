// Graph runtime: compile-and-run with profiling, the SynapseAI analogue.
//
// A run executes every node (functional numerics or timing-only), accounts
// simulated HBM occupancy with liveness-based freeing (so the paper's
// memory-limited configurations are enforced), schedules the node durations
// onto engine timelines under the selected policy, and returns the hardware
// trace plus any requested outputs.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "graph/executor.hpp"
#include "graph/graph.hpp"
#include "graph/scheduler.hpp"
#include "graph/trace.hpp"
#include "memory/device_memory.hpp"
#include "sim/chip_config.hpp"

namespace gaudi::graph {

struct RunOptions {
  tpc::ExecMode mode = tpc::ExecMode::kFunctional;
  SchedulePolicy policy = SchedulePolicy::kBarrier;
  std::uint64_t seed = 0x6A0D1;
  /// Enforce the HBM capacity (throws sim::ResourceExhausted on overflow).
  bool account_memory = true;
  /// Apply the element-wise fusion pass: single-consumer chains of
  /// element-wise TPC ops execute as one fused kernel, their intermediates
  /// never touching device memory (see graph/fusion.hpp).
  bool fuse_elementwise = false;
  /// Run TraceValidator on the scheduled trace and throw
  /// sim::InternalError on any invariant violation (see graph/validate.hpp).
  /// Also enabled globally by the GAUDI_VALIDATE environment variable.
  bool validate = false;
};

struct ProfileResult {
  Trace trace;
  sim::SimTime makespan{};
  /// Graph outputs (functional mode only; phantom tensors otherwise).
  std::unordered_map<ValueId, tensor::Tensor> outputs;
  /// Peak simulated HBM occupancy over the run.
  std::size_t hbm_peak_bytes = 0;
  std::size_t hbm_capacity_bytes = 0;
  /// Per-node execution records (indexed by NodeId).
  std::vector<NodeExec> node_execs;
};

class Runtime {
 public:
  explicit Runtime(sim::ChipConfig cfg = sim::ChipConfig::hls1()) : cfg_(cfg) {}

  [[nodiscard]] const sim::ChipConfig& config() const { return cfg_; }

  /// Runs `g`.  In functional mode every kInput/kParam value must appear in
  /// `feeds`; in timing mode feeds are ignored.
  ProfileResult run(const Graph& g,
                    const std::unordered_map<ValueId, tensor::Tensor>& feeds,
                    const RunOptions& opts = {}) const;

 private:
  sim::ChipConfig cfg_;
};

}  // namespace gaudi::graph

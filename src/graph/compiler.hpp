// The graph compiler: an explicit ahead-of-time pass pipeline producing an
// immutable CompiledGraph artifact.
//
// SynapseAI separates compiling a graph (op->engine mapping, fusion, DMA
// insertion, memory planning) from running it; a deployed model is compiled
// once and executed for every batch/token.  This module is that split:
//
//   engine mapping      -> Engine per node (paper Table 1)
//   element-wise fusion -> chains collapsed into pre-bound FusedChainSpecs
//   DMA insertion       -> per-value source-engine sets + deduplicated
//                          cross-engine transfer list
//   liveness analysis   -> def / last-use step per device buffer
//   memory planning     -> static byte offsets with reuse (memory_planner)
//   topological order   -> verified execution order
//
// `Runtime::run(const CompiledGraph&, feeds)` then executes the artifact
// without re-deriving any of this; the per-run loop makes no mapping,
// fusion, or memory-planning decisions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/fusion.hpp"
#include "graph/graph.hpp"
#include "memory/memory_planner.hpp"
#include "sim/chip_config.hpp"

namespace gaudi::graph {

struct CompileOptions {
  /// Apply the element-wise fusion pass (see graph/fusion.hpp).
  bool fuse_elementwise = false;
  /// Enforce the HBM capacity while planning memory: compilation throws
  /// sim::ResourceExhausted where the device would OOM at run time.
  bool enforce_capacity = true;
};

/// Where compile time went and what the passes decided — surfaced by the
/// CLI `--compile-stats` flag.
struct CompileStats {
  struct Pass {
    std::string name;
    double microseconds = 0.0;
  };
  std::vector<Pass> passes;  ///< pipeline order

  /// Structural digest of the compilation input (graph + chip config +
  /// options; see graph/fingerprint.hpp) — the timing-only memo key.
  std::uint64_t fingerprint = 0;
  std::size_t fusion_groups = 0;
  std::size_t fused_nodes = 0;
  std::size_t planned_dmas = 0;
  std::size_t planned_buffers = 0;
  /// Sum of all planned buffer sizes (what a reuse-free layout would need).
  std::size_t total_bytes = 0;
  /// Liveness-weighted occupancy peak; equals the dynamic allocator's peak.
  std::size_t peak_bytes = 0;
  /// Static arena extent (>= peak; the excess is first-fit fragmentation).
  std::size_t arena_bytes = 0;

  [[nodiscard]] std::size_t reuse_saved_bytes() const {
    return total_bytes > arena_bytes ? total_bytes - arena_bytes : 0;
  }
  [[nodiscard]] std::string to_string() const;
};

/// One planned cross-engine transfer: `value` must be copied to `dst`
/// before `first_consumer` executes (deduplicated per value+destination).
struct PlannedDma {
  ValueId value = kInvalidValue;
  Engine dst = Engine::kNone;
  NodeId first_consumer = -1;
  std::size_t bytes = 0;
};

/// Static placement of one value's device bytes.
struct ValuePlacement {
  /// False for values that never own device bytes: fusion-internal chain
  /// links and reshape outputs (aliases).
  bool has_buffer = false;
  std::size_t offset = 0;
  std::size_t bytes = 0;
  /// Liveness interval in node steps (memory::BufferInterval::kPreGraph for
  /// inputs/params, kNeverFreed for buffers that survive the run).
  std::int64_t def = memory::BufferInterval::kPreGraph;
  std::int64_t freed_at = memory::BufferInterval::kNeverFreed;
};

/// The immutable compilation artifact.  Owns a copy of the graph so it can
/// outlive the builder; treat every member as read-only after compile.
struct CompiledGraph {
  Graph graph;
  sim::ChipConfig config;
  CompileOptions options;

  /// Execution order (the IR's program order, verified topological).
  std::vector<NodeId> order;
  /// Post-fusion engine per node: fused non-tail links are demoted to
  /// Engine::kNone, everything else follows engine_of(OpKind).
  std::vector<Engine> node_engine;
  FusionPlan fusion;
  /// One pre-bound chain spec per fusion group (parallel to fusion.groups).
  std::vector<FusedChainSpec> chains;
  /// Per-value bitmask of engines whose buffers back the value (unioned
  /// through metadata nodes); the scheduler consumes this instead of
  /// re-deriving producers.
  std::vector<std::uint8_t> value_sources;
  std::vector<PlannedDma> dmas;
  /// Per-value static memory plan (indexed by ValueId).
  std::vector<ValuePlacement> placements;

  /// Structural digest of (graph, config, options): two artifacts with equal
  /// fingerprints came from identical compilations and schedule identically
  /// in timing mode.  Keys the timing-only memo (graph/timing_memo.hpp).
  std::uint64_t fingerprint = 0;

  CompileStats stats;
};

/// Runs the full pass pipeline.  Throws sim::ResourceExhausted when
/// `opts.enforce_capacity` and the planned peak exceeds the HBM budget.
[[nodiscard]] CompiledGraph compile_graph(const Graph& g,
                                          const sim::ChipConfig& cfg,
                                          const CompileOptions& opts = {});

}  // namespace gaudi::graph

// Per-node execution: dispatches each graph op to its engine's model.
//
// TPC ops instantiate kernels from the kernel library and run them on the
// cluster (functional or timing mode); matmuls run on the MME model.  The
// executor produces, for every node, the simulated duration the scheduler
// places on the engine timeline — and, in functional mode, the output
// tensors.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "mme/mme.hpp"
#include "sim/chip_config.hpp"
#include "sim/numerics.hpp"
#include "tensor/tensor.hpp"
#include "tpc/cluster.hpp"

namespace gaudi::graph {

/// Execution outcome of one node.
struct NodeExec {
  Engine engine = Engine::kNone;
  sim::SimTime duration{};
  std::uint64_t flops = 0;
  /// Global-memory traffic: bytes of all inputs plus outputs (for roofline
  /// analysis); zero for metadata ops.
  std::size_t bytes = 0;
  /// Display label overriding the node's own (used by fused groups).
  std::string label;
  /// Guarded runs only: simulated cost of sweeping/checksumming this node's
  /// retiring outputs (the scheduler nests it as a kGuard span at the tail
  /// of the exec span), and the sweep's results.  All-zero defaults keep
  /// unguarded schedules byte-identical to pre-guard builds.
  sim::SimTime guard_time{};
  bool has_stats = false;
  sim::NumericsStats stats{};
};

/// Makes an output tensor for one node output: real in functional mode
/// (zeroed, or poison-filled with the signaling-NaN pattern when `poison` is
/// set — guarded runs use this so reads-before-writes trip the sweep),
/// phantom in timing mode.
[[nodiscard]] tensor::Tensor make_output_tensor(const ValueInfo& info,
                                                tpc::ExecMode mode,
                                                bool poison);

class NodeExecutor {
 public:
  NodeExecutor(const sim::ChipConfig& cfg, sim::CounterRng rng)
      : cfg_(cfg),
        cluster_(cfg.tpc, rng, cfg.memory.hbm_bandwidth_bytes_per_s),
        mme_(cfg.mme) {}

  /// Executes node `n`.  `tensors` is indexed by ValueId; inputs must be
  /// present (real in functional mode, phantom in timing mode); outputs are
  /// created by this call.  `poison_outputs` pre-fills fresh functional
  /// outputs with the signaling-NaN pattern (guarded runs); kernels that
  /// legitimately accumulate into their own zeroed output (embedding grad)
  /// are exempt.
  NodeExec run(const Graph& g, NodeId n, std::vector<tensor::Tensor>& tensors,
               tpc::ExecMode mode, bool poison_outputs = false) const;

  [[nodiscard]] const tpc::TpcCluster& cluster() const { return cluster_; }
  [[nodiscard]] const mme::MmeEngine& mme() const { return mme_; }

 private:
  sim::ChipConfig cfg_;
  tpc::TpcCluster cluster_;
  mme::MmeEngine mme_;
};

}  // namespace gaudi::graph

#include "graph/executor.hpp"

#include <utility>

#include "tensor/ops.hpp"
#include "tpc/kernels.hpp"

namespace gaudi::graph {

namespace {

using tensor::Tensor;
using tpc::ExecMode;

}  // namespace

Tensor make_output_tensor(const ValueInfo& info, ExecMode mode, bool poison) {
  if (mode == ExecMode::kFunctional) {
    Tensor t = Tensor::zeros(info.shape, info.dtype);
    if (poison) tensor::ops::poison_fill(t);
    return t;
  }
  return Tensor::phantom(info.shape, info.dtype);
}

NodeExec NodeExecutor::run(const Graph& g, NodeId nid,
                           std::vector<tensor::Tensor>& tensors,
                           ExecMode mode, bool poison_outputs) const {
  const Node& n = g.node(nid);
  auto in = [&](std::size_t i) -> const Tensor& {
    const Tensor& t = tensors[static_cast<std::size_t>(n.inputs[i])];
    GAUDI_CHECK(mode == ExecMode::kTiming || t.defined(),
                "functional execution requires a defined input tensor");
    return t;
  };
  auto out_info = [&](std::size_t i) -> const ValueInfo& {
    return g.value(n.outputs[i]);
  };
  auto set_out = [&](std::size_t i, Tensor t) {
    tensors[static_cast<std::size_t>(n.outputs[i])] = std::move(t);
  };
  auto fresh_out = [&](std::size_t i) {
    Tensor t = make_output_tensor(out_info(i), mode, poison_outputs);
    set_out(i, t);
    return t;
  };
  // For kernels that legitimately read-accumulate into their own output
  // (embedding grad scatter-adds rows): poisoning would turn the honest
  // zero-initialized accumulator into NaNs.
  auto fresh_zero_out = [&](std::size_t i) {
    Tensor t = make_output_tensor(out_info(i), mode, /*poison=*/false);
    set_out(i, t);
    return t;
  };

  NodeExec exec;
  exec.engine = engine_of(n.kind);
  if (n.kind != OpKind::kReshape) {
    for (ValueId v : n.inputs) exec.bytes += g.value(v).nbytes();
    for (ValueId v : n.outputs) exec.bytes += g.value(v).nbytes();
  }

  // Helper that runs a TPC kernel and accumulates duration/flops.
  auto run_tpc = [&](const tpc::Kernel& k) {
    const tpc::RunResult r = cluster_.run(k, mode);
    exec.duration += r.duration;
    exec.flops += r.flops;
  };

  switch (n.kind) {
    case OpKind::kMatMul: {
      mme::GemmShape gs = mme::MmeEngine::shape_of(
          g.value(n.inputs[0]).shape, g.value(n.inputs[1]).shape, n.attrs.trans_a,
          n.attrs.trans_b);
      if (g.value(n.inputs[0]).dtype == tensor::DType::BF16 &&
          g.value(n.inputs[1]).dtype == tensor::DType::BF16) {
        gs.dtype = tensor::DType::BF16;
      }
      const mme::MmeRunResult r = mme_.cost(gs);
      exec.duration = r.duration;
      exec.flops = r.flops;
      if (mode == ExecMode::kFunctional) {
        tensor::Tensor y =
            mme_.execute(in(0), in(1), n.attrs.trans_a, n.attrs.trans_b);
        if (n.inputs.size() == 3) {
          // Bias add fused into the MME drain: no extra simulated time.
          const tensor::Tensor& bias = in(2);
          auto yv = y.f32();
          const auto bv = bias.f32();
          const std::int64_t d = bias.shape()[0];
          for (std::int64_t i = 0; i < y.numel(); ++i) {
            yv[static_cast<std::size_t>(i)] += bv[static_cast<std::size_t>(i % d)];
          }
        }
        set_out(0, std::move(y));
      } else {
        set_out(0, make_output_tensor(out_info(0), mode, poison_outputs));
      }
      return exec;
    }

    case OpKind::kReshape: {
      // Metadata only: alias the input storage under the new shape.
      const Tensor& x = in(0);
      if (mode == ExecMode::kFunctional) {
        set_out(0, x.reshape(out_info(0).shape));
      } else {
        set_out(0, Tensor::phantom(out_info(0).shape, out_info(0).dtype));
      }
      exec.engine = Engine::kNone;
      return exec;
    }

    case OpKind::kAdd:
    case OpKind::kSub:
    case OpKind::kMul:
    case OpKind::kDiv:
    case OpKind::kMaxEw: {
      tpc::BinaryKind bk = tpc::BinaryKind::kAdd;
      if (n.kind == OpKind::kSub) bk = tpc::BinaryKind::kSub;
      if (n.kind == OpKind::kMul) bk = tpc::BinaryKind::kMul;
      if (n.kind == OpKind::kDiv) bk = tpc::BinaryKind::kDiv;
      if (n.kind == OpKind::kMaxEw) bk = tpc::BinaryKind::kMax;
      run_tpc(tpc::BinaryEwKernel(bk, in(0), in(1), fresh_out(0)));
      return exec;
    }

    case OpKind::kAddScalar:
    case OpKind::kSubScalar:
    case OpKind::kRsubScalar:
    case OpKind::kMulScalar: {
      tpc::ScalarKind sk = tpc::ScalarKind::kAddS;
      if (n.kind == OpKind::kSubScalar) sk = tpc::ScalarKind::kSubS;
      if (n.kind == OpKind::kRsubScalar) sk = tpc::ScalarKind::kRsubS;
      if (n.kind == OpKind::kMulScalar) sk = tpc::ScalarKind::kMulS;
      run_tpc(tpc::ScalarEwKernel(sk, in(0), n.attrs.scalar, fresh_out(0)));
      return exec;
    }

    case OpKind::kUnary:
      run_tpc(tpc::UnaryEwKernel(n.attrs.unary, in(0), fresh_out(0), n.attrs.alpha));
      return exec;
    case OpKind::kUnaryGrad:
      run_tpc(tpc::UnaryGradKernel(n.attrs.unary, in(0), in(1), fresh_out(0),
                                   n.attrs.alpha));
      return exec;

    case OpKind::kGlu:
      run_tpc(tpc::GluKernel(in(0), fresh_out(0)));
      return exec;
    case OpKind::kGluGrad:
      run_tpc(tpc::GluGradKernel(in(0), in(1), fresh_out(0)));
      return exec;

    case OpKind::kDropout:
      run_tpc(tpc::DropoutKernel(in(0), fresh_out(0), n.attrs.p, n.attrs.seed));
      return exec;

    case OpKind::kSoftmax:
      run_tpc(tpc::SoftmaxKernel(in(0), fresh_out(0)));
      return exec;
    case OpKind::kSoftmaxGrad:
      run_tpc(tpc::SoftmaxGradKernel(in(0), in(1), fresh_out(0)));
      return exec;

    case OpKind::kLayerNorm: {
      Tensor y = fresh_out(0);
      Tensor mean = fresh_out(1);
      Tensor rstd = fresh_out(2);
      run_tpc(tpc::LayerNormKernel(in(0), in(1), in(2), y, mean, rstd, n.attrs.eps));
      return exec;
    }
    case OpKind::kLayerNormInputGrad:
      run_tpc(tpc::LayerNormInputGradKernel(in(0), in(1), in(2), in(3), in(4),
                                            fresh_out(0)));
      return exec;
    case OpKind::kLayerNormParamGrad: {
      Tensor dgamma = fresh_out(0);
      Tensor dbeta = fresh_out(1);
      run_tpc(tpc::LayerNormParamGradKernel(in(0), in(1), in(2), in(3), dgamma,
                                            dbeta));
      return exec;
    }

    case OpKind::kReduceSum:
    case OpKind::kReduceMax:
    case OpKind::kReduceMean: {
      tpc::ReduceKind rk = tpc::ReduceKind::kSum;
      if (n.kind == OpKind::kReduceMax) rk = tpc::ReduceKind::kMax;
      if (n.kind == OpKind::kReduceMean) rk = tpc::ReduceKind::kMean;
      run_tpc(tpc::ReduceLastDimKernel(rk, in(0), fresh_out(0)));
      return exec;
    }

    case OpKind::kBroadcastLast:
      run_tpc(tpc::BroadcastLastKernel(in(0), fresh_out(0)));
      return exec;

    case OpKind::kAddRowvec:
      run_tpc(tpc::RowvecKernel(tpc::RowvecKernel::Op::kAdd, in(0), in(1),
                                fresh_out(0)));
      return exec;
    case OpKind::kMulRowvec:
      run_tpc(tpc::RowvecKernel(tpc::RowvecKernel::Op::kMul, in(0), in(1),
                                fresh_out(0)));
      return exec;

    case OpKind::kColumnSum: {
      // Kernel expects [R, D]; flatten leading dims.
      const ValueInfo& xi = g.value(n.inputs[0]);
      const std::int64_t d = xi.shape[xi.shape.rank() - 1];
      Tensor x2 = in(0).defined()
                      ? in(0).reshape(tensor::Shape{{xi.shape.numel() / d, d}})
                      : Tensor::phantom(tensor::Shape{{xi.shape.numel() / d, d}});
      run_tpc(tpc::ColumnSumKernel(x2, fresh_out(0)));
      return exec;
    }

    case OpKind::kFill:
      run_tpc(tpc::FillKernel(fresh_out(0), n.attrs.scalar));
      return exec;

    case OpKind::kTranspose:
      run_tpc(tpc::TransposeLast2Kernel(in(0), fresh_out(0)));
      return exec;
    case OpKind::kSwapAxes12:
      run_tpc(tpc::SwapAxes12Kernel(in(0), fresh_out(0)));
      return exec;
    case OpKind::kAddMask2D:
      run_tpc(tpc::AddMask2DKernel(in(0), in(1), fresh_out(0)));
      return exec;
    case OpKind::kConcatRows:
      run_tpc(tpc::ConcatRowsKernel(in(0), in(1), fresh_out(0)));
      return exec;
    case OpKind::kSliceRows:
      run_tpc(tpc::SliceRowsKernel(in(0), fresh_out(0), n.attrs.dim));
      return exec;

    case OpKind::kEmbedding:
      run_tpc(tpc::EmbeddingGatherKernel(in(0), in(1), fresh_out(0)));
      return exec;
    case OpKind::kEmbeddingGrad:
      run_tpc(tpc::EmbeddingGradKernel(in(0), in(1), fresh_zero_out(0)));
      return exec;

    case OpKind::kCrossEntropyMean: {
      // Fused: per-row losses then a mean reduction to a scalar.
      const std::int64_t rows = g.value(n.inputs[0]).shape[0];
      Tensor per_row = mode == ExecMode::kFunctional
                           ? Tensor::zeros(tensor::Shape{{1, rows}})
                           : Tensor::phantom(tensor::Shape{{1, rows}});
      run_tpc(tpc::CrossEntropyKernel(in(0), in(1), per_row));
      run_tpc(tpc::ReduceLastDimKernel(tpc::ReduceKind::kMean, per_row,
                                       fresh_out(0)));
      return exec;
    }
    case OpKind::kCrossEntropyGrad:
      run_tpc(tpc::CrossEntropyGradKernel(in(0), in(1), fresh_out(0),
                                          n.attrs.scale));
      return exec;

    case OpKind::kSgdUpdate: {
      const bool with_momentum = n.inputs.size() == 3;
      Tensor param_out = fresh_out(0);
      Tensor vel = with_momentum ? in(2) : Tensor{};
      Tensor vel_out = with_momentum ? fresh_out(1) : Tensor{};
      run_tpc(tpc::SgdUpdateKernel(in(0), in(1), param_out, vel, vel_out,
                                   n.attrs.lr,
                                   with_momentum ? n.attrs.beta1 : 0.0f));
      return exec;
    }
    case OpKind::kCast:
      run_tpc(tpc::CastKernel(in(0), fresh_out(0)));
      return exec;

    case OpKind::kAdamUpdate: {
      Tensor param_out = fresh_out(0);
      Tensor m_out = fresh_out(1);
      Tensor v_out = fresh_out(2);
      run_tpc(tpc::AdamUpdateKernel(in(0), in(1), in(2), in(3), param_out, m_out,
                                    v_out, n.attrs.lr, n.attrs.beta1,
                                    n.attrs.beta2, n.attrs.eps, n.attrs.step));
      return exec;
    }
  }
  throw sim::InternalError("unhandled op kind in executor");
}

}  // namespace gaudi::graph

#include "graph/printer.hpp"

#include <fstream>
#include <sstream>

namespace gaudi::graph {

namespace {

void dot_escape(std::ostream& os, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}

const char* engine_color(Engine e) {
  switch (e) {
    case Engine::kMme: return "#4e79a7";   // blue
    case Engine::kTpc: return "#f28e2b";   // orange
    case Engine::kDma: return "#59a14f";   // green
    case Engine::kHost: return "#e15759";  // red
    case Engine::kNone: return "#bab0ac";  // gray
  }
  return "#000000";
}

}  // namespace

std::string to_text(const Graph& g) {
  std::ostringstream os;
  os << "graph: " << g.num_nodes() << " nodes, " << g.num_values()
     << " values, " << g.param_bytes() << " param bytes\n";
  for (NodeId n = 0; n < static_cast<NodeId>(g.num_nodes()); ++n) {
    const Node& node = g.node(n);
    os << "  %" << n << " [" << engine_name(engine_of(node.kind)) << "] "
       << node.label << " (" << op_kind_name(node.kind) << ")  ";
    os << "(";
    for (std::size_t i = 0; i < node.inputs.size(); ++i) {
      if (i) os << ", ";
      os << "v" << node.inputs[i] << g.value(node.inputs[i]).shape.to_string();
    }
    os << ") -> (";
    for (std::size_t i = 0; i < node.outputs.size(); ++i) {
      if (i) os << ", ";
      os << "v" << node.outputs[i] << g.value(node.outputs[i]).shape.to_string();
    }
    os << ")\n";
  }
  return os.str();
}

std::string to_dot(const Graph& g) {
  std::ostringstream os;
  os << "digraph gaudisim {\n  rankdir=TB;\n"
     << "  node [shape=box, style=filled, fontname=\"monospace\"];\n";

  // Graph inputs/params as distinct shapes.
  for (ValueId v = 0; v < static_cast<ValueId>(g.num_values()); ++v) {
    const ValueInfo& info = g.value(v);
    if (info.role == ValueRole::kIntermediate) continue;
    os << "  v" << v << " [shape="
       << (info.role == ValueRole::kParam ? "ellipse" : "invhouse")
       << ", fillcolor=\"#d3e0ea\", label=\"";
    dot_escape(os, info.name);
    os << "\\n" << info.shape.to_string() << "\"];\n";
  }

  for (NodeId n = 0; n < static_cast<NodeId>(g.num_nodes()); ++n) {
    const Node& node = g.node(n);
    const Engine e = engine_of(node.kind);
    os << "  n" << n << " [fillcolor=\"" << engine_color(e) << "\", label=\"";
    dot_escape(os, node.label);
    os << "\\n[" << engine_name(e) << "]\"];\n";
    for (ValueId v : node.inputs) {
      const ValueInfo& info = g.value(v);
      if (info.producer >= 0) {
        os << "  n" << info.producer << " -> n" << n << " [label=\""
           << info.shape.to_string() << "\"];\n";
      } else {
        os << "  v" << v << " -> n" << n << ";\n";
      }
    }
  }
  os << "}\n";
  return os.str();
}

void write_dot(const Graph& g, const std::string& path) {
  std::ofstream f(path);
  GAUDI_CHECK(f.good(), "cannot open dot output file: " + path);
  f << to_dot(g);
}

}  // namespace gaudi::graph

// Row-structured TPC kernels: softmax (the paper's headline bottleneck),
// layernorm, reductions, broadcasts, column sums, tiled transpose.
#include "tpc/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace gaudi::tpc {

namespace {

struct RowInfo {
  std::int64_t row_len = 0;
  std::int64_t rows = 0;
};

[[nodiscard]] RowInfo row_info(const tensor::Tensor& t) {
  const std::int64_t d = t.shape()[t.shape().rank() - 1];
  return RowInfo{d, t.numel() / d};
}

[[nodiscard]] std::int64_t vectors_per_row(std::int64_t row_len) {
  return (row_len + kLanes - 1) / kLanes;
}

/// Max vectors of a row we are willing to stage in local memory (the 80 KB
/// bank holds 320; leave headroom for other uses).
constexpr std::int64_t kMaxCachedRowVectors = 256;

}  // namespace

// ---------------------------------------------------------------------------
// SoftmaxKernel
// ---------------------------------------------------------------------------

SoftmaxKernel::SoftmaxKernel(tensor::Tensor in, tensor::Tensor out)
    : in_(std::move(in)), out_(std::move(out)) {
  GAUDI_CHECK(in_.shape().numel() == out_.shape().numel(),
              "softmax: element count mismatch");
  const RowInfo ri = row_info(in_);
  row_len_ = ri.row_len;
  rows_ = ri.rows;
  cache_row_ = vectors_per_row(row_len_) <= kMaxCachedRowVectors;
}

IndexSpace SoftmaxKernel::index_space() const { return IndexSpace{{rows_}}; }

std::size_t SoftmaxKernel::local_memory_vectors() const {
  return cache_row_ ? static_cast<std::size_t>(vectors_per_row(row_len_)) : 0;
}

void SoftmaxKernel::execute(KernelContext& ctx, const Member& m) const {
  const auto in = ro(in_);
  auto out = rw(out_);
  const std::int64_t base = m.linear * row_len_;
  const std::int64_t nvec = vectors_per_row(row_len_);
  const float neg_inf = -std::numeric_limits<float>::infinity();

  // Pass 1: row max.  Tail lanes are filled with -inf so they cannot win.
  VecF vmax = ctx.v_mov(neg_inf);
  for (std::int64_t v = 0; v < nvec; ++v) {
    const std::int64_t off = v * kLanes;
    const int count = static_cast<int>(std::min<std::int64_t>(kLanes, row_len_ - off));
    VecF x = ctx.v_ld_g(in, base + off, count, neg_inf);
    if (cache_row_) ctx.v_st_l(v, x);
    vmax = ctx.v_max(vmax, x);
  }
  const float row_max = ctx.v_reduce_max(vmax);
  // Fully-masked row: every logit is -inf (an attention row whose mask
  // blanks all positions), so exp(x - row_max) would be exp(-inf + inf) =
  // NaN.  Subtracting 0 instead makes every exponential exp(-inf) = 0; the
  // guarded reciprocal below then zeroes the row — the defined result (no
  // position receives weight).  Both fixups are compiler-folded scalar
  // selects, so the instruction stream (and the cycle count in both
  // execution modes) is identical to the generic path.
  const float safe_max = row_max == neg_inf ? 0.0f : row_max;

  // Pass 2: exponentials and their sum; exp(x - max) staged back to local
  // memory (or recomputed into output) so pass 3 only rescales.
  VecF vsum = ctx.v_mov(0.0f);
  for (std::int64_t v = 0; v < nvec; ++v) {
    const std::int64_t off = v * kLanes;
    const int count = static_cast<int>(std::min<std::int64_t>(kLanes, row_len_ - off));
    VecF x = cache_row_ ? ctx.v_ld_l(v) : ctx.v_ld_g(in, base + off, count, neg_inf);
    VecF e = ctx.v_exp(ctx.v_add_s(x, -safe_max));
    if (cache_row_) {
      ctx.v_st_l(v, e);
    } else {
      ctx.v_st_g(out, base + off, e, count);
    }
    // Tail lanes hold exp(-inf) = 0 and do not perturb the sum.
    vsum = ctx.v_add(vsum, e);
  }
  const float sum = ctx.v_reduce_add(vsum);
  // sum == 0 only on a fully-masked row (otherwise exp(max - max) = 1
  // contributes); 1/FLT_MIN times the all-zero exponentials keeps the row
  // zero instead of the 0 * inf = NaN a bare reciprocal would produce.
  const float inv_sum =
      ctx.s_recip(std::max(sum, std::numeric_limits<float>::min()));

  // Pass 3: normalize.
  for (std::int64_t v = 0; v < nvec; ++v) {
    const std::int64_t off = v * kLanes;
    const int count = static_cast<int>(std::min<std::int64_t>(kLanes, row_len_ - off));
    VecF e = cache_row_ ? ctx.v_ld_l(v) : ctx.v_ld_g(out, base + off, count);
    ctx.v_st_g(out, base + off, ctx.v_mul_s(e, inv_sum), count);
  }
}

std::uint64_t SoftmaxKernel::flop_count() const {
  // max + sub + exp + add + mul per element (exp counted as one).
  return static_cast<std::uint64_t>(in_.numel()) * 5;
}

// ---------------------------------------------------------------------------
// SoftmaxGradKernel
// ---------------------------------------------------------------------------

SoftmaxGradKernel::SoftmaxGradKernel(tensor::Tensor y, tensor::Tensor dy,
                                     tensor::Tensor dx)
    : y_(std::move(y)), dy_(std::move(dy)), dx_(std::move(dx)) {
  GAUDI_CHECK(y_.shape().numel() == dy_.shape().numel() &&
                  y_.shape().numel() == dx_.shape().numel(),
              "softmax grad: element count mismatch");
  const RowInfo ri = row_info(y_);
  row_len_ = ri.row_len;
  rows_ = ri.rows;
}

IndexSpace SoftmaxGradKernel::index_space() const { return IndexSpace{{rows_}}; }

void SoftmaxGradKernel::execute(KernelContext& ctx, const Member& m) const {
  const auto y = ro(y_);
  const auto dy = ro(dy_);
  auto dx = rw(dx_);
  const std::int64_t base = m.linear * row_len_;

  // Pass 1: s = sum(y * dy).
  VecF vs = ctx.v_mov(0.0f);
  for (std::int64_t off = 0; off < row_len_; off += kLanes) {
    const int count = static_cast<int>(std::min<std::int64_t>(kLanes, row_len_ - off));
    VecF vy = ctx.v_ld_g(y, base + off, count);
    VecF vdy = ctx.v_ld_g(dy, base + off, count);
    vs = ctx.v_madd(vy, vdy, vs);
  }
  const float s = ctx.v_reduce_add(vs);

  // Pass 2: dx = y * (dy - s).
  for (std::int64_t off = 0; off < row_len_; off += kLanes) {
    const int count = static_cast<int>(std::min<std::int64_t>(kLanes, row_len_ - off));
    VecF vy = ctx.v_ld_g(y, base + off, count);
    VecF vdy = ctx.v_ld_g(dy, base + off, count);
    ctx.v_st_g(dx, base + off, ctx.v_mul(vy, ctx.v_add_s(vdy, -s)), count);
  }
}

std::uint64_t SoftmaxGradKernel::flop_count() const {
  return static_cast<std::uint64_t>(y_.numel()) * 4;
}

// ---------------------------------------------------------------------------
// LayerNormKernel
// ---------------------------------------------------------------------------

LayerNormKernel::LayerNormKernel(tensor::Tensor x, tensor::Tensor gamma,
                                 tensor::Tensor beta, tensor::Tensor y,
                                 tensor::Tensor save_mean, tensor::Tensor save_rstd,
                                 float eps)
    : x_(std::move(x)), gamma_(std::move(gamma)), beta_(std::move(beta)),
      y_(std::move(y)), mean_(std::move(save_mean)), rstd_(std::move(save_rstd)),
      eps_(eps) {
  const RowInfo ri = row_info(x_);
  row_len_ = ri.row_len;
  rows_ = ri.rows;
  GAUDI_CHECK(gamma_.shape().rank() == 1 && gamma_.shape()[0] == row_len_,
              "layernorm: gamma must be [D]");
  GAUDI_CHECK(beta_.shape().rank() == 1 && beta_.shape()[0] == row_len_,
              "layernorm: beta must be [D]");
  GAUDI_CHECK(y_.shape().numel() == x_.shape().numel(),
              "layernorm: output shape mismatch");
}

IndexSpace LayerNormKernel::index_space() const { return IndexSpace{{rows_}}; }

void LayerNormKernel::execute(KernelContext& ctx, const Member& m) const {
  const auto x = ro(x_);
  const auto gamma = ro(gamma_);
  const auto beta = ro(beta_);
  auto y = rw(y_);
  auto mean_out = rw(mean_);
  auto rstd_out = rw(rstd_);
  const std::int64_t base = m.linear * row_len_;
  const float inv_d = 1.0f / static_cast<float>(row_len_);

  // Pass 1: mean and mean of squares in one sweep.
  VecF vsum = ctx.v_mov(0.0f);
  VecF vsq = ctx.v_mov(0.0f);
  for (std::int64_t off = 0; off < row_len_; off += kLanes) {
    const int count = static_cast<int>(std::min<std::int64_t>(kLanes, row_len_ - off));
    VecF vx = ctx.v_ld_g(x, base + off, count);
    vsum = ctx.v_add(vsum, vx);
    vsq = ctx.v_madd(vx, vx, vsq);
  }
  const float mean = ctx.s_mul(ctx.v_reduce_add(vsum), inv_d);
  const float ex2 = ctx.s_mul(ctx.v_reduce_add(vsq), inv_d);
  // E[x^2] - mean^2 cancels catastrophically on near-constant rows and can
  // come out slightly negative; if |var| exceeded eps the sqrt would go
  // NaN.  True variance is non-negative, so clamp before adding eps.
  const float var = std::max(0.0f, ctx.s_add(ex2, -mean * mean));
  const float rstd = ctx.s_recip(ctx.s_sqrt(ctx.s_add(var, eps_)));

  if (!mean_out.empty()) ctx.s_st_g(mean_out, m.linear, mean);
  if (!rstd_out.empty()) ctx.s_st_g(rstd_out, m.linear, rstd);

  // Pass 2: normalize, scale, shift.
  for (std::int64_t off = 0; off < row_len_; off += kLanes) {
    const int count = static_cast<int>(std::min<std::int64_t>(kLanes, row_len_ - off));
    VecF vx = ctx.v_ld_g(x, base + off, count);
    VecF vg = ctx.v_ld_g(gamma, off, count);
    VecF vb = ctx.v_ld_g(beta, off, count);
    VecF norm = ctx.v_mul_s(ctx.v_add_s(vx, -mean), rstd);
    ctx.v_st_g(y, base + off, ctx.v_madd(norm, vg, vb), count);
  }
}

std::uint64_t LayerNormKernel::flop_count() const {
  return static_cast<std::uint64_t>(x_.numel()) * 7;
}

// ---------------------------------------------------------------------------
// LayerNormInputGradKernel
// ---------------------------------------------------------------------------

LayerNormInputGradKernel::LayerNormInputGradKernel(
    tensor::Tensor x, tensor::Tensor gamma, tensor::Tensor mean, tensor::Tensor rstd,
    tensor::Tensor dy, tensor::Tensor dx)
    : x_(std::move(x)), gamma_(std::move(gamma)), mean_(std::move(mean)),
      rstd_(std::move(rstd)), dy_(std::move(dy)), dx_(std::move(dx)) {
  const RowInfo ri = row_info(x_);
  row_len_ = ri.row_len;
  rows_ = ri.rows;
}

IndexSpace LayerNormInputGradKernel::index_space() const {
  return IndexSpace{{rows_}};
}

void LayerNormInputGradKernel::execute(KernelContext& ctx, const Member& m) const {
  const auto x = ro(x_);
  const auto gamma = ro(gamma_);
  const auto mean = ro(mean_);
  const auto rstd = ro(rstd_);
  const auto dy = ro(dy_);
  auto dx = rw(dx_);
  const std::int64_t base = m.linear * row_len_;
  const float mu = ctx.s_ld_g(mean, m.linear);
  const float rs = ctx.s_ld_g(rstd, m.linear);
  const float inv_d = 1.0f / static_cast<float>(row_len_);

  // a = sum(dy*gamma), b = sum(dy*gamma*xhat)
  VecF va = ctx.v_mov(0.0f);
  VecF vb = ctx.v_mov(0.0f);
  for (std::int64_t off = 0; off < row_len_; off += kLanes) {
    const int count = static_cast<int>(std::min<std::int64_t>(kLanes, row_len_ - off));
    VecF vdy = ctx.v_ld_g(dy, base + off, count);
    VecF vg = ctx.v_ld_g(gamma, off, count);
    VecF vx = ctx.v_ld_g(x, base + off, count);
    VecF g = ctx.v_mul(vdy, vg);
    VecF xhat = ctx.v_mul_s(ctx.v_add_s(vx, -mu), rs);
    va = ctx.v_add(va, g);
    vb = ctx.v_madd(g, xhat, vb);
  }
  const float a = ctx.s_mul(ctx.v_reduce_add(va), inv_d);
  const float b = ctx.s_mul(ctx.v_reduce_add(vb), inv_d);

  // dx = rstd * (dy*gamma - a - xhat*b)
  for (std::int64_t off = 0; off < row_len_; off += kLanes) {
    const int count = static_cast<int>(std::min<std::int64_t>(kLanes, row_len_ - off));
    VecF vdy = ctx.v_ld_g(dy, base + off, count);
    VecF vg = ctx.v_ld_g(gamma, off, count);
    VecF vx = ctx.v_ld_g(x, base + off, count);
    VecF g = ctx.v_mul(vdy, vg);
    VecF xhat = ctx.v_mul_s(ctx.v_add_s(vx, -mu), rs);
    VecF t = ctx.v_sub(ctx.v_add_s(g, -a), ctx.v_mul_s(xhat, b));
    ctx.v_st_g(dx, base + off, ctx.v_mul_s(t, rs), count);
  }
}

std::uint64_t LayerNormInputGradKernel::flop_count() const {
  return static_cast<std::uint64_t>(x_.numel()) * 11;
}

// ---------------------------------------------------------------------------
// LayerNormParamGradKernel
// ---------------------------------------------------------------------------

LayerNormParamGradKernel::LayerNormParamGradKernel(
    tensor::Tensor x, tensor::Tensor mean, tensor::Tensor rstd, tensor::Tensor dy,
    tensor::Tensor dgamma, tensor::Tensor dbeta)
    : x_(std::move(x)), mean_(std::move(mean)), rstd_(std::move(rstd)),
      dy_(std::move(dy)), dgamma_(std::move(dgamma)), dbeta_(std::move(dbeta)) {
  const RowInfo ri = row_info(x_);
  row_len_ = ri.row_len;
  rows_ = ri.rows;
}

IndexSpace LayerNormParamGradKernel::index_space() const {
  return IndexSpace{{vectors_per_row(row_len_)}};
}

void LayerNormParamGradKernel::execute(KernelContext& ctx, const Member& m) const {
  const auto x = ro(x_);
  const auto mean = ro(mean_);
  const auto rstd = ro(rstd_);
  const auto dy = ro(dy_);
  auto dgamma = rw(dgamma_);
  auto dbeta = rw(dbeta_);
  const std::int64_t off = m.linear * kLanes;
  const int count = static_cast<int>(std::min<std::int64_t>(kLanes, row_len_ - off));

  VecF vg = ctx.v_mov(0.0f);
  VecF vbta = ctx.v_mov(0.0f);
  for (std::int64_t r = 0; r < rows_; ++r) {
    const float mu = ctx.s_ld_g(mean, r);
    const float rs = ctx.s_ld_g(rstd, r);
    VecF vdy = ctx.v_ld_g(dy, r * row_len_ + off, count);
    VecF vx = ctx.v_ld_g(x, r * row_len_ + off, count);
    VecF xhat = ctx.v_mul_s(ctx.v_add_s(vx, -mu), rs);
    vg = ctx.v_madd(vdy, xhat, vg);
    vbta = ctx.v_add(vbta, vdy);
  }
  ctx.v_st_g(dgamma, off, vg, count);
  ctx.v_st_g(dbeta, off, vbta, count);
}

std::uint64_t LayerNormParamGradKernel::flop_count() const {
  return static_cast<std::uint64_t>(x_.numel()) * 6;
}

// ---------------------------------------------------------------------------
// ReduceLastDimKernel
// ---------------------------------------------------------------------------

const char* reduce_kind_name(ReduceKind k) {
  switch (k) {
    case ReduceKind::kSum: return "reduce_sum";
    case ReduceKind::kMax: return "reduce_max";
    case ReduceKind::kMean: return "reduce_mean";
  }
  return "?";
}

ReduceLastDimKernel::ReduceLastDimKernel(ReduceKind kind, tensor::Tensor in,
                                         tensor::Tensor out)
    : kind_(kind), in_(std::move(in)), out_(std::move(out)) {
  const RowInfo ri = row_info(in_);
  row_len_ = ri.row_len;
  rows_ = ri.rows;
  GAUDI_CHECK(out_.shape().numel() == rows_, "reduce: output must be [..., 1]");
}

std::string ReduceLastDimKernel::name() const {
  return std::string("tpc.") + reduce_kind_name(kind_);
}

IndexSpace ReduceLastDimKernel::index_space() const { return IndexSpace{{rows_}}; }

void ReduceLastDimKernel::execute(KernelContext& ctx, const Member& m) const {
  const auto in = ro(in_);
  auto out = rw(out_);
  const std::int64_t base = m.linear * row_len_;
  const bool is_max = kind_ == ReduceKind::kMax;
  const float fill = is_max ? -std::numeric_limits<float>::infinity() : 0.0f;

  VecF acc = ctx.v_mov(fill);
  for (std::int64_t off = 0; off < row_len_; off += kLanes) {
    const int count = static_cast<int>(std::min<std::int64_t>(kLanes, row_len_ - off));
    VecF v = ctx.v_ld_g(in, base + off, count, fill);
    acc = is_max ? ctx.v_max(acc, v) : ctx.v_add(acc, v);
  }
  float r = is_max ? ctx.v_reduce_max(acc) : ctx.v_reduce_add(acc);
  if (kind_ == ReduceKind::kMean) {
    r = ctx.s_mul(r, 1.0f / static_cast<float>(row_len_));
  }
  ctx.s_st_g(out, m.linear, r);
}

std::uint64_t ReduceLastDimKernel::flop_count() const {
  return static_cast<std::uint64_t>(in_.numel());
}

// ---------------------------------------------------------------------------
// BroadcastLastKernel
// ---------------------------------------------------------------------------

BroadcastLastKernel::BroadcastLastKernel(tensor::Tensor in, tensor::Tensor out)
    : in_(std::move(in)), out_(std::move(out)) {
  const RowInfo ri = row_info(out_);
  row_len_ = ri.row_len;
  rows_ = ri.rows;
  GAUDI_CHECK(in_.shape().numel() == rows_, "broadcast: input must be [..., 1]");
}

IndexSpace BroadcastLastKernel::index_space() const { return IndexSpace{{rows_}}; }

void BroadcastLastKernel::execute(KernelContext& ctx, const Member& m) const {
  const auto in = ro(in_);
  auto out = rw(out_);
  const float s = ctx.s_ld_g(in, m.linear);
  const VecF v = ctx.v_mov(s);
  const std::int64_t base = m.linear * row_len_;
  for (std::int64_t off = 0; off < row_len_; off += kLanes) {
    const int count = static_cast<int>(std::min<std::int64_t>(kLanes, row_len_ - off));
    ctx.v_st_g(out, base + off, v, count);
  }
}

// ---------------------------------------------------------------------------
// ColumnSumKernel
// ---------------------------------------------------------------------------

ColumnSumKernel::ColumnSumKernel(tensor::Tensor in, tensor::Tensor out)
    : in_(std::move(in)), out_(std::move(out)) {
  const RowInfo ri = row_info(in_);
  cols_ = ri.row_len;
  rows_ = ri.rows;
  GAUDI_CHECK(out_.shape().rank() == 1 && out_.shape()[0] == cols_,
              "column sum: output must be [D]");
}

IndexSpace ColumnSumKernel::index_space() const {
  return IndexSpace{{vectors_per_row(cols_)}};
}

void ColumnSumKernel::execute(KernelContext& ctx, const Member& m) const {
  const auto in = ro(in_);
  auto out = rw(out_);
  const std::int64_t off = m.linear * kLanes;
  const int count = static_cast<int>(std::min<std::int64_t>(kLanes, cols_ - off));
  VecF acc = ctx.v_mov(0.0f);
  for (std::int64_t r = 0; r < rows_; ++r) {
    acc = ctx.v_add(acc, ctx.v_ld_g(in, r * cols_ + off, count));
  }
  ctx.v_st_g(out, off, acc, count);
}

std::uint64_t ColumnSumKernel::flop_count() const {
  return static_cast<std::uint64_t>(in_.numel());
}

// ---------------------------------------------------------------------------
// ConcatRowsKernel / SliceRowsKernel
// ---------------------------------------------------------------------------

ConcatRowsKernel::ConcatRowsKernel(tensor::Tensor a, tensor::Tensor b,
                                   tensor::Tensor out)
    : a_(std::move(a)), b_(std::move(b)), out_(std::move(out)) {
  GAUDI_CHECK(a_.shape().rank() >= 2 && b_.shape().rank() == a_.shape().rank(),
              "concat_rows: rank mismatch");
  cols_ = a_.shape()[a_.shape().rank() - 1];
  GAUDI_CHECK(b_.shape()[b_.shape().rank() - 1] == cols_,
              "concat_rows: trailing dims must match");
  rows_a_ = a_.shape()[a_.shape().rank() - 2];
  rows_b_ = b_.shape()[b_.shape().rank() - 2];
  batch_ = a_.shape().batch_count(2);
  GAUDI_CHECK(b_.shape().batch_count(2) == batch_,
              "concat_rows: batch dims must match");
  GAUDI_CHECK(out_.shape().numel() == batch_ * (rows_a_ + rows_b_) * cols_,
              "concat_rows: output shape mismatch");
}

IndexSpace ConcatRowsKernel::index_space() const {
  return IndexSpace{{batch_, rows_a_ + rows_b_}};
}

void ConcatRowsKernel::execute(KernelContext& ctx, const Member& m) const {
  const auto a = ro(a_);
  const auto b = ro(b_);
  auto out = rw(out_);
  const std::int64_t batch = m[0];
  const std::int64_t row = m[1];
  const bool from_a = row < rows_a_;
  const auto src = from_a ? a : b;
  const std::int64_t src_base =
      from_a ? (batch * rows_a_ + row) * cols_
             : (batch * rows_b_ + (row - rows_a_)) * cols_;
  const std::int64_t dst_base = (batch * (rows_a_ + rows_b_) + row) * cols_;
  for (std::int64_t j = 0; j < cols_; j += kLanes) {
    const int count = static_cast<int>(std::min<std::int64_t>(kLanes, cols_ - j));
    ctx.v_st_g(out, dst_base + j, ctx.v_ld_g(src, src_base + j, count), count);
  }
}

SliceRowsKernel::SliceRowsKernel(tensor::Tensor in, tensor::Tensor out,
                                 std::int64_t begin)
    : in_(std::move(in)), out_(std::move(out)), begin_(begin) {
  GAUDI_CHECK(in_.shape().rank() >= 2, "slice_rows: rank >= 2 required");
  cols_ = in_.shape()[in_.shape().rank() - 1];
  rows_in_ = in_.shape()[in_.shape().rank() - 2];
  rows_out_ = out_.shape()[out_.shape().rank() - 2];
  batch_ = in_.shape().batch_count(2);
  GAUDI_CHECK(begin_ >= 0 && begin_ + rows_out_ <= rows_in_,
              "slice_rows: range out of bounds");
  GAUDI_CHECK(out_.shape()[out_.shape().rank() - 1] == cols_ &&
                  out_.shape().batch_count(2) == batch_,
              "slice_rows: output shape mismatch");
}

IndexSpace SliceRowsKernel::index_space() const {
  return IndexSpace{{batch_, rows_out_}};
}

void SliceRowsKernel::execute(KernelContext& ctx, const Member& m) const {
  const auto in = ro(in_);
  auto out = rw(out_);
  const std::int64_t batch = m[0];
  const std::int64_t row = m[1];
  const std::int64_t src_base = (batch * rows_in_ + begin_ + row) * cols_;
  const std::int64_t dst_base = (batch * rows_out_ + row) * cols_;
  for (std::int64_t j = 0; j < cols_; j += kLanes) {
    const int count = static_cast<int>(std::min<std::int64_t>(kLanes, cols_ - j));
    ctx.v_st_g(out, dst_base + j, ctx.v_ld_g(in, src_base + j, count), count);
  }
}

// ---------------------------------------------------------------------------
// AddMask2DKernel
// ---------------------------------------------------------------------------

AddMask2DKernel::AddMask2DKernel(tensor::Tensor in, tensor::Tensor mask,
                                 tensor::Tensor out)
    : in_(std::move(in)), mask_(std::move(mask)), out_(std::move(out)) {
  GAUDI_CHECK(in_.shape().rank() >= 2, "add_mask expects rank >= 2 input");
  rows_ = in_.shape()[in_.shape().rank() - 2];
  cols_ = in_.shape()[in_.shape().rank() - 1];
  batch_ = in_.shape().batch_count(2);
  GAUDI_CHECK(mask_.shape().rank() == 2 && mask_.shape()[0] == rows_ &&
                  mask_.shape()[1] == cols_,
              "add_mask mask must be [rows, cols]");
  GAUDI_CHECK(out_.shape().numel() == in_.shape().numel(),
              "add_mask output shape mismatch");
}

IndexSpace AddMask2DKernel::index_space() const {
  return IndexSpace{{batch_, rows_}};
}

void AddMask2DKernel::execute(KernelContext& ctx, const Member& m) const {
  const auto in = ro(in_);
  const auto mask = ro(mask_);
  auto out = rw(out_);
  const std::int64_t base = (m[0] * rows_ + m[1]) * cols_;
  const std::int64_t mask_base = m[1] * cols_;
  for (std::int64_t j = 0; j < cols_; j += kLanes) {
    const int count = static_cast<int>(std::min<std::int64_t>(kLanes, cols_ - j));
    VecF a = ctx.v_ld_g(in, base + j, count);
    VecF b = ctx.v_ld_g(mask, mask_base + j, count);
    ctx.v_st_g(out, base + j, ctx.v_add(a, b), count);
  }
}

std::uint64_t AddMask2DKernel::flop_count() const {
  return static_cast<std::uint64_t>(in_.numel());
}

// ---------------------------------------------------------------------------
// SwapAxes12Kernel
// ---------------------------------------------------------------------------

SwapAxes12Kernel::SwapAxes12Kernel(tensor::Tensor in, tensor::Tensor out)
    : in_(std::move(in)), out_(std::move(out)) {
  GAUDI_CHECK(in_.shape().rank() == 4, "swap_axes12 expects rank-4 input");
  a_ = in_.shape()[0];
  b_ = in_.shape()[1];
  c_ = in_.shape()[2];
  d_ = in_.shape()[3];
  GAUDI_CHECK(out_.shape().rank() == 4 && out_.shape()[0] == a_ &&
                  out_.shape()[1] == c_ && out_.shape()[2] == b_ &&
                  out_.shape()[3] == d_,
              "swap_axes12 output must be [A, C, B, D]");
}

IndexSpace SwapAxes12Kernel::index_space() const {
  return IndexSpace{{a_, c_, b_}};
}

void SwapAxes12Kernel::execute(KernelContext& ctx, const Member& m) const {
  const auto in = ro(in_);
  auto out = rw(out_);
  const std::int64_t a = m[0];
  const std::int64_t c = m[1];
  const std::int64_t b = m[2];
  const std::int64_t src = ((a * b_ + b) * c_ + c) * d_;
  const std::int64_t dst = ((a * c_ + c) * b_ + b) * d_;
  for (std::int64_t j = 0; j < d_; j += kLanes) {
    const int count = static_cast<int>(std::min<std::int64_t>(kLanes, d_ - j));
    ctx.v_st_g(out, dst + j, ctx.v_ld_g(in, src + j, count), count);
  }
}

// ---------------------------------------------------------------------------
// TransposeLast2Kernel
// ---------------------------------------------------------------------------

TransposeLast2Kernel::TransposeLast2Kernel(tensor::Tensor in, tensor::Tensor out)
    : in_(std::move(in)), out_(std::move(out)) {
  GAUDI_CHECK(in_.shape().rank() >= 2, "transpose expects rank >= 2");
  m_ = in_.shape()[in_.shape().rank() - 2];
  n_ = in_.shape()[in_.shape().rank() - 1];
  batch_ = in_.shape().batch_count(2);
  GAUDI_CHECK(out_.shape()[out_.shape().rank() - 2] == n_ &&
                  out_.shape()[out_.shape().rank() - 1] == m_,
              "transpose: output trailing dims must be swapped");
}

IndexSpace TransposeLast2Kernel::index_space() const {
  const std::int64_t mt = (m_ + kLanes - 1) / kLanes;
  const std::int64_t nt = (n_ + kLanes - 1) / kLanes;
  return IndexSpace{{batch_, mt, nt}};
}

void TransposeLast2Kernel::execute(KernelContext& ctx, const Member& m) const {
  const auto in = ro(in_);
  auto out = rw(out_);
  const std::int64_t b = m[0];
  const std::int64_t i0 = m[1] * kLanes;
  const std::int64_t j0 = m[2] * kLanes;
  const std::int64_t rows = std::min<std::int64_t>(kLanes, m_ - i0);
  const std::int64_t cols = std::min<std::int64_t>(kLanes, n_ - j0);
  const std::int64_t in_base = b * m_ * n_;
  const std::int64_t out_base = b * m_ * n_;

  // Stage the 64x64 tile row-by-row into local memory.
  for (std::int64_t i = 0; i < rows; ++i) {
    VecF v = ctx.v_ld_g(in, in_base + (i0 + i) * n_ + j0, static_cast<int>(cols));
    ctx.v_st_l(i, v);
  }
  // In-register transpose network: log2(64) shuffle stages per output vector.
  // We charge the shuffles and materialize columns from local memory.
  for (std::int64_t j = 0; j < cols; ++j) {
    VecF col{};
    if (!ctx.phantom() && !in.empty()) {
      for (std::int64_t i = 0; i < rows; ++i) {
        col.lane[static_cast<std::size_t>(i)] = ctx.s_ld_l(i, static_cast<int>(j));
      }
    } else {
      // Timing mode: charge equivalent local traffic for the gather.
      for (std::int64_t i = 0; i < rows; ++i) ctx.s_ld_l(0, 0);
    }
    ctx.v_st_g(out, out_base + (j0 + j) * m_ + i0, col, static_cast<int>(rows));
  }
}

}  // namespace gaudi::tpc

// TPC kernel interface.
//
// A kernel is the device-side half of a TPC program (paper §2.2: "A TPC
// program is composed of host glue code and a TPC kernel").  Kernels declare
// an index space and implement `execute` for a single member; the cluster
// handles distribution, functional execution and cycle extrapolation.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "tensor/tensor.hpp"
#include "tpc/index_space.hpp"
#include "tpc/kernel_context.hpp"

namespace gaudi::tpc {

/// Read-only f32 view of a tensor; empty for phantom tensors (timing mode).
[[nodiscard]] inline std::span<const float> ro(const tensor::Tensor& t) {
  return t.defined() ? t.f32() : std::span<const float>{};
}
/// Mutable f32 view; empty for phantom tensors.
[[nodiscard]] inline std::span<float> rw(const tensor::Tensor& t) {
  return t.defined() ? t.f32_mut() : std::span<float>{};
}
/// Read-only i32 view; empty for phantom tensors.
[[nodiscard]] inline std::span<const std::int32_t> ro_i32(const tensor::Tensor& t) {
  return t.defined() ? t.i32() : std::span<const std::int32_t>{};
}
/// bf16 views; empty for phantom tensors.
[[nodiscard]] inline std::span<const std::uint16_t> ro_bf16(const tensor::Tensor& t) {
  return t.defined() ? t.bf16() : std::span<const std::uint16_t>{};
}
[[nodiscard]] inline std::span<std::uint16_t> rw_bf16(const tensor::Tensor& t) {
  if (!t.defined()) return {};
  GAUDI_CHECK(t.dtype() == tensor::DType::BF16, "tensor is not bf16");
  // Shared-storage mutability, as with f32_mut().
  return {reinterpret_cast<std::uint16_t*>(const_cast<std::byte*>(t.raw())),
          static_cast<std::size_t>(t.numel())};
}

class Kernel {
 public:
  virtual ~Kernel() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// The index space whose members partition this kernel's work.
  [[nodiscard]] virtual IndexSpace index_space() const = 0;

  /// Vector-local-memory requirement in 2048-bit vectors; the cluster
  /// rejects kernels exceeding the 80 KB bank, as the hardware would.
  [[nodiscard]] virtual std::size_t local_memory_vectors() const { return 0; }

  /// Executes one index-space member.  Must be safe to call concurrently for
  /// distinct members (members write disjoint output regions) and must have
  /// data-independent control flow (required for phantom-mode timing).
  virtual void execute(KernelContext& ctx, const Member& m) const = 0;

  /// FLOPs performed by the whole kernel (for throughput reporting).
  [[nodiscard]] virtual std::uint64_t flop_count() const { return 0; }
};

}  // namespace gaudi::tpc

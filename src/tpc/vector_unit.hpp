// TPC vector datapath types.
//
// The TPC's SIMD mechanism is 2048 bits wide (paper §2.2): 64 f32 lanes.
// `VecF` is the register value type; all operations on it go through the
// KernelContext so that every instruction is charged to its VLIW slot.
#pragma once

#include <array>
#include <cstdint>

namespace gaudi::tpc {

/// SIMD width in f32 lanes (2048-bit vectors).
inline constexpr int kLanes = 64;

/// One 2048-bit vector register holding 64 f32 values.
struct VecF {
  std::array<float, kLanes> lane{};

  [[nodiscard]] static VecF splat(float v) {
    VecF r;
    r.lane.fill(v);
    return r;
  }
};

/// The four functional slots of the TPC VLIW instruction word (paper §2.2).
enum class Slot : std::uint8_t {
  kLoad,   ///< memory loading, value movements/settings
  kSpu,    ///< scalar computations
  kVpu,    ///< vector computations
  kStore,  ///< memory storage, value movements/settings
};

/// Per-slot issued-cycle counters for one stretch of execution.  The VLIW
/// machine issues all four slots each cycle, so with a well-pipelined kernel
/// the elapsed cycles of a member are the max over slots.
struct SlotCycles {
  std::uint64_t load = 0;
  std::uint64_t spu = 0;
  std::uint64_t vpu = 0;
  std::uint64_t store = 0;

  [[nodiscard]] std::uint64_t elapsed() const {
    std::uint64_t m = load;
    if (spu > m) m = spu;
    if (vpu > m) m = vpu;
    if (store > m) m = store;
    return m;
  }
  [[nodiscard]] std::uint64_t total_issued() const { return load + spu + vpu + store; }

  SlotCycles& operator+=(const SlotCycles& o) {
    load += o.load;
    spu += o.spu;
    vpu += o.vpu;
    store += o.store;
    return *this;
  }
};

/// Instruction cost table (cycles).  Simple ALU ops are single-issue; the
/// special functions (exp, log, tanh, ...) are multi-instruction software
/// sequences on the VPU — the paper's observation that "the calculation of
/// the softmax operation itself is relatively complicated, and it involves
/// exponential operations and reduction operations" is a direct consequence
/// of these costs.  Cross-lane reductions cost a log2(kLanes) shuffle+op
/// ladder, which is what makes reductions "not well-suited for SIMD
/// architectures like TPC".
struct IntrinsicCosts {
  std::uint64_t global_access = 4;  ///< per 2048-bit global load/store (paper §2.2)
  std::uint64_t local_access = 1;   ///< local memory is single-cycle (paper §2.2)
  std::uint64_t alu = 1;            ///< add/sub/mul/min/max/fma/select/...
  std::uint64_t special = 16;       ///< exp/log/tanh/sigmoid/erf software sequence
  std::uint64_t fused_act = 10;     ///< fused activation instructions (GELU, ELU)
                                    ///< provided by the TPC special-function
                                    ///< library with pipelined throughput
  std::uint64_t root = 8;           ///< sqrt/rsqrt/recip iterative sequence
  std::uint64_t reduce = 12;        ///< cross-lane reduce: 6 shuffle+op stages
  std::uint64_t rng = 4;            ///< hardware random number production
};

}  // namespace gaudi::tpc

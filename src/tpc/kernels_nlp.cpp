// NLP-specific TPC kernels: embedding gather/scatter and cross-entropy.
#include "tpc/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace gaudi::tpc {

// ---------------------------------------------------------------------------
// EmbeddingGatherKernel
// ---------------------------------------------------------------------------

EmbeddingGatherKernel::EmbeddingGatherKernel(tensor::Tensor table, tensor::Tensor ids,
                                             tensor::Tensor out)
    : table_(std::move(table)), ids_(std::move(ids)), out_(std::move(out)) {
  GAUDI_CHECK(table_.shape().rank() == 2, "embedding table must be [V, D]");
  dim_ = table_.shape()[1];
  tokens_ = ids_.numel();
  GAUDI_CHECK(out_.numel() == tokens_ * dim_, "embedding output shape mismatch");
}

IndexSpace EmbeddingGatherKernel::index_space() const {
  return IndexSpace{{tokens_}};
}

void EmbeddingGatherKernel::execute(KernelContext& ctx, const Member& m) const {
  const auto table = ro(table_);
  const auto ids = ro_i32(ids_);
  auto out = rw(out_);
  const std::int32_t id = ctx.i_ld_g(ids, m.linear);
  const std::int64_t src = static_cast<std::int64_t>(id) * dim_;
  const std::int64_t dst = m.linear * dim_;
  for (std::int64_t j = 0; j < dim_; j += kLanes) {
    const int count = static_cast<int>(std::min<std::int64_t>(kLanes, dim_ - j));
    ctx.v_st_g(out, dst + j, ctx.v_ld_g(table, src + j, count), count);
  }
}

// ---------------------------------------------------------------------------
// EmbeddingGradKernel
// ---------------------------------------------------------------------------

EmbeddingGradKernel::EmbeddingGradKernel(tensor::Tensor ids, tensor::Tensor dy,
                                         tensor::Tensor dtable)
    : ids_(std::move(ids)), dy_(std::move(dy)), dtable_(std::move(dtable)) {
  GAUDI_CHECK(dtable_.shape().rank() == 2, "embedding grad table must be [V, D]");
  dim_ = dtable_.shape()[1];
  tokens_ = ids_.numel();
  GAUDI_CHECK(dy_.numel() == tokens_ * dim_, "embedding grad dy shape mismatch");
}

IndexSpace EmbeddingGradKernel::index_space() const {
  // Members own column chunks: the scatter-add over tokens is race-free.
  return IndexSpace{{(dim_ + kLanes - 1) / kLanes}};
}

void EmbeddingGradKernel::execute(KernelContext& ctx, const Member& m) const {
  const auto ids = ro_i32(ids_);
  const auto dy = ro(dy_);
  auto dtable = rw(dtable_);
  const std::int64_t j = m.linear * kLanes;
  const int count = static_cast<int>(std::min<std::int64_t>(kLanes, dim_ - j));
  for (std::int64_t t = 0; t < tokens_; ++t) {
    const std::int32_t id = ctx.i_ld_g(ids, t);
    const std::int64_t row = static_cast<std::int64_t>(id) * dim_;
    VecF acc = ctx.v_ld_g(dtable, row + j, count);
    VecF g = ctx.v_ld_g(dy, t * dim_ + j, count);
    ctx.v_st_g(dtable, row + j, ctx.v_add(acc, g), count);
  }
}

// ---------------------------------------------------------------------------
// CrossEntropyKernel
// ---------------------------------------------------------------------------

CrossEntropyKernel::CrossEntropyKernel(tensor::Tensor logits, tensor::Tensor targets,
                                       tensor::Tensor loss_per_row)
    : logits_(std::move(logits)), targets_(std::move(targets)),
      loss_(std::move(loss_per_row)) {
  GAUDI_CHECK(logits_.shape().rank() == 2, "cross entropy expects [N, V] logits");
  rows_ = logits_.shape()[0];
  vocab_ = logits_.shape()[1];
  GAUDI_CHECK(targets_.numel() == rows_, "cross entropy target count mismatch");
  GAUDI_CHECK(loss_.numel() == rows_, "cross entropy loss buffer mismatch");
}

IndexSpace CrossEntropyKernel::index_space() const { return IndexSpace{{rows_}}; }

void CrossEntropyKernel::execute(KernelContext& ctx, const Member& m) const {
  const auto logits = ro(logits_);
  const auto targets = ro_i32(targets_);
  auto loss = rw(loss_);
  const std::int64_t base = m.linear * vocab_;
  const float neg_inf = -std::numeric_limits<float>::infinity();

  VecF vmax = ctx.v_mov(neg_inf);
  for (std::int64_t off = 0; off < vocab_; off += kLanes) {
    const int count = static_cast<int>(std::min<std::int64_t>(kLanes, vocab_ - off));
    vmax = ctx.v_max(vmax, ctx.v_ld_g(logits, base + off, count, neg_inf));
  }
  const float mx = ctx.v_reduce_max(vmax);
  // A fully-masked row (every logit -inf) assigns the target probability
  // zero: the defined loss is +inf, not the NaN the generic path's
  // exp(-inf + inf) would produce.  Host-side selects (subtract 0 instead
  // of the max, patch the stored loss) keep the instruction stream — and so
  // the cycle count in both execution modes, where phantom loads splat the
  // -inf fill — identical to the generic path.
  const bool masked = mx == neg_inf;
  const float safe_mx = masked ? 0.0f : mx;

  VecF vsum = ctx.v_mov(0.0f);
  for (std::int64_t off = 0; off < vocab_; off += kLanes) {
    const int count = static_cast<int>(std::min<std::int64_t>(kLanes, vocab_ - off));
    VecF x = ctx.v_ld_g(logits, base + off, count, neg_inf);
    vsum = ctx.v_add(vsum, ctx.v_exp(ctx.v_add_s(x, -safe_mx)));
  }
  const float lse = ctx.s_add(std::log(ctx.v_reduce_add(vsum)), safe_mx);
  ctx.s_bookkeeping();  // the scalar log rides the SPU special path

  const std::int32_t tgt = ctx.i_ld_g(targets, m.linear);
  const float l = ctx.s_add(lse, -ctx.s_ld_g(logits, base + tgt));
  ctx.s_st_g(loss, m.linear,
             masked ? std::numeric_limits<float>::infinity() : l);
}

std::uint64_t CrossEntropyKernel::flop_count() const {
  return static_cast<std::uint64_t>(logits_.numel()) * 4;
}

// ---------------------------------------------------------------------------
// CrossEntropyGradKernel
// ---------------------------------------------------------------------------

CrossEntropyGradKernel::CrossEntropyGradKernel(tensor::Tensor logits,
                                               tensor::Tensor targets,
                                               tensor::Tensor dlogits, float scale)
    : logits_(std::move(logits)), targets_(std::move(targets)),
      dlogits_(std::move(dlogits)), scale_(scale) {
  GAUDI_CHECK(logits_.shape().rank() == 2, "cross entropy grad expects [N, V]");
  rows_ = logits_.shape()[0];
  vocab_ = logits_.shape()[1];
  GAUDI_CHECK(targets_.numel() == rows_, "cross entropy grad target count mismatch");
  GAUDI_CHECK(dlogits_.numel() == logits_.numel(),
              "cross entropy grad output mismatch");
}

IndexSpace CrossEntropyGradKernel::index_space() const { return IndexSpace{{rows_}}; }

void CrossEntropyGradKernel::execute(KernelContext& ctx, const Member& m) const {
  const auto logits = ro(logits_);
  const auto targets = ro_i32(targets_);
  auto dlogits = rw(dlogits_);
  const std::int64_t base = m.linear * vocab_;
  const float neg_inf = -std::numeric_limits<float>::infinity();

  VecF vmax = ctx.v_mov(neg_inf);
  for (std::int64_t off = 0; off < vocab_; off += kLanes) {
    const int count = static_cast<int>(std::min<std::int64_t>(kLanes, vocab_ - off));
    vmax = ctx.v_max(vmax, ctx.v_ld_g(logits, base + off, count, neg_inf));
  }
  const float mx = ctx.v_reduce_max(vmax);
  // Fully-masked row: the softmax (and so its gradient) is undefined; the
  // defined choice is a zero gradient row rather than NaN contamination.
  // Same host-side-select treatment as the forward kernel: exponentials
  // become exp(-inf) = 0, the guarded reciprocal keeps 0 * inv finite, and
  // the one-hot subtraction is skipped — the instruction stream (and the
  // cycle count in both execution modes) matches the generic path.
  const bool masked = mx == neg_inf;
  const float safe_mx = masked ? 0.0f : mx;

  VecF vsum = ctx.v_mov(0.0f);
  for (std::int64_t off = 0; off < vocab_; off += kLanes) {
    const int count = static_cast<int>(std::min<std::int64_t>(kLanes, vocab_ - off));
    VecF x = ctx.v_ld_g(logits, base + off, count, neg_inf);
    vsum = ctx.v_add(vsum, ctx.v_exp(ctx.v_add_s(x, -safe_mx)));
  }
  const float inv_sum = ctx.s_recip(std::max(
      ctx.v_reduce_add(vsum), std::numeric_limits<float>::min()));

  const std::int32_t tgt = ctx.i_ld_g(targets, m.linear);
  for (std::int64_t off = 0; off < vocab_; off += kLanes) {
    const int count = static_cast<int>(std::min<std::int64_t>(kLanes, vocab_ - off));
    VecF x = ctx.v_ld_g(logits, base + off, count, neg_inf);
    VecF p = ctx.v_mul_s(ctx.v_exp(ctx.v_add_s(x, -safe_mx)), inv_sum);
    if (!ctx.phantom() && !dlogits.empty() && !masked) {
      // Subtract the one-hot target lane; branch is on coordinates, not data.
      if (tgt >= off && tgt < off + count) {
        p.lane[static_cast<std::size_t>(tgt - off)] -= 1.0f;
      }
    }
    ctx.s_bookkeeping();  // one-hot lane adjustment
    ctx.v_st_g(dlogits, base + off, ctx.v_mul_s(p, scale_), count);
  }
}

std::uint64_t CrossEntropyGradKernel::flop_count() const {
  return static_cast<std::uint64_t>(logits_.numel()) * 6;
}

}  // namespace gaudi::tpc

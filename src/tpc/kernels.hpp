// TPC kernel library.
//
// Everything SynapseAI maps to the TPC in the paper's Table 1 — plus the
// layer-level kernels (softmax, layernorm, transpose, gather, cross-entropy,
// batched matmul-on-TPC) needed by the Transformer experiments — is
// implemented here against the kernel framework.  Each kernel both computes
// (functional mode) and self-times (its instruction stream charges VLIW
// slots), so observed performance characteristics emerge from kernel
// structure, not from hand-written cost formulas.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "tpc/kernel.hpp"

namespace gaudi::tpc {

// ---------------------------------------------------------------------------
// Element-wise kernels
// ---------------------------------------------------------------------------

enum class UnaryKind : std::uint8_t {
  kExp, kLog, kSqrt, kSquare, kRecip,
  kRelu, kLeakyRelu, kElu, kGelu, kSigmoid, kTanh, kNeg, kAbs,
};
[[nodiscard]] const char* unary_kind_name(UnaryKind k);

/// out[i] = f(in[i]); index space over 512-element chunks.
class UnaryEwKernel final : public Kernel {
 public:
  UnaryEwKernel(UnaryKind kind, tensor::Tensor in, tensor::Tensor out,
                float alpha = 1.0f);
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] IndexSpace index_space() const override;
  void execute(KernelContext& ctx, const Member& m) const override;
  [[nodiscard]] std::uint64_t flop_count() const override;

 private:
  UnaryKind kind_;
  tensor::Tensor in_, out_;
  float alpha_;
};

/// dx[i] = dy[i] * f'(x[i]) — backward of UnaryEwKernel.
class UnaryGradKernel final : public Kernel {
 public:
  UnaryGradKernel(UnaryKind kind, tensor::Tensor x, tensor::Tensor dy,
                  tensor::Tensor dx, float alpha = 1.0f);
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] IndexSpace index_space() const override;
  void execute(KernelContext& ctx, const Member& m) const override;
  [[nodiscard]] std::uint64_t flop_count() const override;

 private:
  UnaryKind kind_;
  tensor::Tensor x_, dy_, dx_;
  float alpha_;
};

enum class BinaryKind : std::uint8_t { kAdd, kSub, kMul, kDiv, kMax };
[[nodiscard]] const char* binary_kind_name(BinaryKind k);

/// out[i] = f(a[i], b[i]) — "tensor +- tensor", torch.mul, ... (Table 1).
class BinaryEwKernel final : public Kernel {
 public:
  BinaryEwKernel(BinaryKind kind, tensor::Tensor a, tensor::Tensor b,
                 tensor::Tensor out);
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] IndexSpace index_space() const override;
  void execute(KernelContext& ctx, const Member& m) const override;
  [[nodiscard]] std::uint64_t flop_count() const override;

 private:
  BinaryKind kind_;
  tensor::Tensor a_, b_, out_;
};

enum class ScalarKind : std::uint8_t { kAddS, kSubS, kRsubS, kMulS };
[[nodiscard]] const char* scalar_kind_name(ScalarKind k);

/// out[i] = f(in[i], s) — "scalar * tensor", "scalar +- tensor" (Table 1).
class ScalarEwKernel final : public Kernel {
 public:
  ScalarEwKernel(ScalarKind kind, tensor::Tensor in, float scalar,
                 tensor::Tensor out);
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] IndexSpace index_space() const override;
  void execute(KernelContext& ctx, const Member& m) const override;
  [[nodiscard]] std::uint64_t flop_count() const override;

 private:
  ScalarKind kind_;
  tensor::Tensor in_, out_;
  float scalar_;
};

/// out[i] = value (torch.ones_like and friends).
class FillKernel final : public Kernel {
 public:
  FillKernel(tensor::Tensor out, float value);
  [[nodiscard]] std::string name() const override { return "tpc.fill"; }
  [[nodiscard]] IndexSpace index_space() const override;
  void execute(KernelContext& ctx, const Member& m) const override;

 private:
  tensor::Tensor out_;
  float value_;
};

/// out[r, :] = in[r, :] (+|*) v[:] — bias add / per-channel scale.
class RowvecKernel final : public Kernel {
 public:
  enum class Op : std::uint8_t { kAdd, kMul };
  RowvecKernel(Op op, tensor::Tensor in, tensor::Tensor vec, tensor::Tensor out);
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] IndexSpace index_space() const override;
  void execute(KernelContext& ctx, const Member& m) const override;
  [[nodiscard]] std::uint64_t flop_count() const override;

 private:
  Op op_;
  tensor::Tensor in_, vec_, out_;
};

/// Gated linear unit over the last dim: in [..., 2D] -> out [..., D],
/// out = a * sigmoid(b).  The paper singles GLU out as the worst-performing
/// activation on TPC (Fig 7).
class GluKernel final : public Kernel {
 public:
  GluKernel(tensor::Tensor in, tensor::Tensor out);
  [[nodiscard]] std::string name() const override { return "tpc.glu"; }
  [[nodiscard]] IndexSpace index_space() const override;
  void execute(KernelContext& ctx, const Member& m) const override;
  [[nodiscard]] std::uint64_t flop_count() const override;

 private:
  tensor::Tensor in_, out_;
};

/// Backward of GLU: din [..., 2D] from dout [..., D] and saved input.
class GluGradKernel final : public Kernel {
 public:
  GluGradKernel(tensor::Tensor in, tensor::Tensor dout, tensor::Tensor din);
  [[nodiscard]] std::string name() const override { return "tpc.glu_grad"; }
  [[nodiscard]] IndexSpace index_space() const override;
  void execute(KernelContext& ctx, const Member& m) const override;
  [[nodiscard]] std::uint64_t flop_count() const override;

 private:
  tensor::Tensor in_, dout_, din_;
};

/// Precision cast between f32 and bf16 (either direction).  bf16 halves the
/// global-memory traffic on its side of the copy.
class CastKernel final : public Kernel {
 public:
  CastKernel(tensor::Tensor in, tensor::Tensor out);
  [[nodiscard]] std::string name() const override { return "tpc.cast"; }
  [[nodiscard]] IndexSpace index_space() const override;
  void execute(KernelContext& ctx, const Member& m) const override;

 private:
  tensor::Tensor in_, out_;
};

/// Inverted dropout using the TPC hardware RNG.
class DropoutKernel final : public Kernel {
 public:
  DropoutKernel(tensor::Tensor in, tensor::Tensor out, float p,
                std::uint64_t seed_offset);
  [[nodiscard]] std::string name() const override { return "tpc.dropout"; }
  [[nodiscard]] IndexSpace index_space() const override;
  void execute(KernelContext& ctx, const Member& m) const override;
  [[nodiscard]] std::uint64_t flop_count() const override;

 private:
  tensor::Tensor in_, out_;
  float p_;
  std::uint64_t seed_offset_;
};

// ---------------------------------------------------------------------------
// Row kernels: softmax / layernorm / reductions (kernels_reduce.cpp)
// ---------------------------------------------------------------------------

/// Row-wise numerically-stable softmax over the last dim.  Caches the row in
/// vector local memory when it fits; the three passes (max-reduce, exp+sum,
/// normalize) are the reduction-heavy structure the paper identifies as the
/// TPC bottleneck.
class SoftmaxKernel final : public Kernel {
 public:
  SoftmaxKernel(tensor::Tensor in, tensor::Tensor out);
  [[nodiscard]] std::string name() const override { return "tpc.softmax"; }
  [[nodiscard]] IndexSpace index_space() const override;
  [[nodiscard]] std::size_t local_memory_vectors() const override;
  void execute(KernelContext& ctx, const Member& m) const override;
  [[nodiscard]] std::uint64_t flop_count() const override;

 private:
  tensor::Tensor in_, out_;
  std::int64_t row_len_, rows_;
  bool cache_row_;
};

/// dx = y ⊙ (dy − sum(y ⊙ dy)) row-wise — backward of softmax.
class SoftmaxGradKernel final : public Kernel {
 public:
  SoftmaxGradKernel(tensor::Tensor y, tensor::Tensor dy, tensor::Tensor dx);
  [[nodiscard]] std::string name() const override { return "tpc.softmax_grad"; }
  [[nodiscard]] IndexSpace index_space() const override;
  void execute(KernelContext& ctx, const Member& m) const override;
  [[nodiscard]] std::uint64_t flop_count() const override;

 private:
  tensor::Tensor y_, dy_, dx_;
  std::int64_t row_len_, rows_;
};

/// Row-wise layer normalization; saves mean and reciprocal stddev for the
/// backward pass when those tensors are provided.
class LayerNormKernel final : public Kernel {
 public:
  LayerNormKernel(tensor::Tensor x, tensor::Tensor gamma, tensor::Tensor beta,
                  tensor::Tensor y, tensor::Tensor save_mean,
                  tensor::Tensor save_rstd, float eps = 1e-5f);
  [[nodiscard]] std::string name() const override { return "tpc.layernorm"; }
  [[nodiscard]] IndexSpace index_space() const override;
  void execute(KernelContext& ctx, const Member& m) const override;
  [[nodiscard]] std::uint64_t flop_count() const override;

 private:
  tensor::Tensor x_, gamma_, beta_, y_, mean_, rstd_;
  std::int64_t row_len_, rows_;
  float eps_;
};

/// Input gradient of layernorm (per-row; uses saved mean/rstd).
class LayerNormInputGradKernel final : public Kernel {
 public:
  LayerNormInputGradKernel(tensor::Tensor x, tensor::Tensor gamma,
                           tensor::Tensor mean, tensor::Tensor rstd,
                           tensor::Tensor dy, tensor::Tensor dx);
  [[nodiscard]] std::string name() const override { return "tpc.layernorm_dx"; }
  [[nodiscard]] IndexSpace index_space() const override;
  void execute(KernelContext& ctx, const Member& m) const override;
  [[nodiscard]] std::uint64_t flop_count() const override;

 private:
  tensor::Tensor x_, gamma_, mean_, rstd_, dy_, dx_;
  std::int64_t row_len_, rows_;
};

/// Parameter gradients of layernorm: members own column chunks so the
/// row-reduction is race-free.
class LayerNormParamGradKernel final : public Kernel {
 public:
  LayerNormParamGradKernel(tensor::Tensor x, tensor::Tensor mean,
                           tensor::Tensor rstd, tensor::Tensor dy,
                           tensor::Tensor dgamma, tensor::Tensor dbeta);
  [[nodiscard]] std::string name() const override { return "tpc.layernorm_dparam"; }
  [[nodiscard]] IndexSpace index_space() const override;
  void execute(KernelContext& ctx, const Member& m) const override;
  [[nodiscard]] std::uint64_t flop_count() const override;

 private:
  tensor::Tensor x_, mean_, rstd_, dy_, dgamma_, dbeta_;
  std::int64_t row_len_, rows_;
};

enum class ReduceKind : std::uint8_t { kSum, kMax, kMean };
[[nodiscard]] const char* reduce_kind_name(ReduceKind k);

/// [..., D] -> [..., 1] reduction over the last dim.
class ReduceLastDimKernel final : public Kernel {
 public:
  ReduceLastDimKernel(ReduceKind kind, tensor::Tensor in, tensor::Tensor out);
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] IndexSpace index_space() const override;
  void execute(KernelContext& ctx, const Member& m) const override;
  [[nodiscard]] std::uint64_t flop_count() const override;

 private:
  ReduceKind kind_;
  tensor::Tensor in_, out_;
  std::int64_t row_len_, rows_;
};

/// [..., 1] -> [..., D]: broadcast a per-row scalar across the last dim.
class BroadcastLastKernel final : public Kernel {
 public:
  BroadcastLastKernel(tensor::Tensor in, tensor::Tensor out);
  [[nodiscard]] std::string name() const override { return "tpc.broadcast_last"; }
  [[nodiscard]] IndexSpace index_space() const override;
  void execute(KernelContext& ctx, const Member& m) const override;

 private:
  tensor::Tensor in_, out_;
  std::int64_t row_len_, rows_;
};

/// [R, D] -> [D]: column sums (bias gradients).  Members own column chunks.
class ColumnSumKernel final : public Kernel {
 public:
  ColumnSumKernel(tensor::Tensor in, tensor::Tensor out);
  [[nodiscard]] std::string name() const override { return "tpc.column_sum"; }
  [[nodiscard]] IndexSpace index_space() const override;
  void execute(KernelContext& ctx, const Member& m) const override;
  [[nodiscard]] std::uint64_t flop_count() const override;

 private:
  tensor::Tensor in_, out_;
  std::int64_t rows_, cols_;
};

/// out[..., i, j] = in[..., i, j] + mask[i, j]: additive attention mask
/// broadcast over the leading (batch*heads) dims — how causal masking
/// reaches the TPC in a GPT-style model.
class AddMask2DKernel final : public Kernel {
 public:
  AddMask2DKernel(tensor::Tensor in, tensor::Tensor mask, tensor::Tensor out);
  [[nodiscard]] std::string name() const override { return "tpc.add_mask"; }
  [[nodiscard]] IndexSpace index_space() const override;
  void execute(KernelContext& ctx, const Member& m) const override;
  [[nodiscard]] std::uint64_t flop_count() const override;

 private:
  tensor::Tensor in_, mask_, out_;
  std::int64_t batch_, rows_, cols_;
};

/// [A, B, C, D] -> [A, C, B, D]: the head-split/merge permutation of
/// multi-head attention (PyTorch's .transpose(1, 2)).  The innermost dim is
/// contiguous on both sides, so this is a vector-copy with strided bases.
class SwapAxes12Kernel final : public Kernel {
 public:
  SwapAxes12Kernel(tensor::Tensor in, tensor::Tensor out);
  [[nodiscard]] std::string name() const override { return "tpc.swap_axes12"; }
  [[nodiscard]] IndexSpace index_space() const override;
  void execute(KernelContext& ctx, const Member& m) const override;

 private:
  tensor::Tensor in_, out_;
  std::int64_t a_, b_, c_, d_;
};

/// Concatenate along the row axis (rank-2): a [.., Ma, D] ++ b [.., Mb, D]
/// -> out [.., Ma+Mb, D].  The KV-cache append of autoregressive decoding.
class ConcatRowsKernel final : public Kernel {
 public:
  ConcatRowsKernel(tensor::Tensor a, tensor::Tensor b, tensor::Tensor out);
  [[nodiscard]] std::string name() const override { return "tpc.concat_rows"; }
  [[nodiscard]] IndexSpace index_space() const override;
  void execute(KernelContext& ctx, const Member& m) const override;

 private:
  tensor::Tensor a_, b_, out_;
  std::int64_t batch_, rows_a_, rows_b_, cols_;
};

/// Slice `count` rows starting at `begin` along the row axis (rank-2).
class SliceRowsKernel final : public Kernel {
 public:
  SliceRowsKernel(tensor::Tensor in, tensor::Tensor out, std::int64_t begin);
  [[nodiscard]] std::string name() const override { return "tpc.slice_rows"; }
  [[nodiscard]] IndexSpace index_space() const override;
  void execute(KernelContext& ctx, const Member& m) const override;

 private:
  tensor::Tensor in_, out_;
  std::int64_t batch_, rows_in_, rows_out_, cols_, begin_;
};

/// Swap the trailing two dims via 64x64 local-memory tiles.
class TransposeLast2Kernel final : public Kernel {
 public:
  TransposeLast2Kernel(tensor::Tensor in, tensor::Tensor out);
  [[nodiscard]] std::string name() const override { return "tpc.transpose"; }
  [[nodiscard]] IndexSpace index_space() const override;
  [[nodiscard]] std::size_t local_memory_vectors() const override { return 64; }
  void execute(KernelContext& ctx, const Member& m) const override;

 private:
  tensor::Tensor in_, out_;
  std::int64_t batch_, m_, n_;
};

// ---------------------------------------------------------------------------
// Batched matmul on TPC (kernels_matmul.cpp) — the Table 2 comparator
// ---------------------------------------------------------------------------

/// C[b] = A[b] @ B[b] computed entirely on the TPC cluster, after the
/// structure of Habana's custom-kernel example: 32-row output tiles, 64-wide
/// k-blocks staged through vector local memory, FMA inner loop.  Exists to
/// quantify the MME/TPC gap (paper §3.2), not to be a good idea.
class BatchedMatMulTpcKernel final : public Kernel {
 public:
  BatchedMatMulTpcKernel(tensor::Tensor a, tensor::Tensor b, tensor::Tensor c);
  [[nodiscard]] std::string name() const override { return "tpc.batched_matmul"; }
  [[nodiscard]] IndexSpace index_space() const override;
  [[nodiscard]] std::size_t local_memory_vectors() const override;
  void execute(KernelContext& ctx, const Member& m) const override;
  [[nodiscard]] std::uint64_t flop_count() const override;

  static constexpr std::int64_t kRowTile = 32;  ///< output rows per member
  static constexpr std::int64_t kKBlock = 64;   ///< k-extent staged in local mem

 private:
  tensor::Tensor a_, b_, c_;
  std::int64_t batch_, m_, k_, n_;
};

// ---------------------------------------------------------------------------
// Optimizer kernels (kernels_optim.cpp) — parameter updates run on-device
// (they are element-wise, so Table 1 routes them to the TPC)
// ---------------------------------------------------------------------------

/// SGD with optional momentum:
///   vel' = mu * vel + grad;  param' = param - lr * vel'
/// With mu == 0 the velocity tensors may be empty and the update is plain
/// param' = param - lr * grad.
class SgdUpdateKernel final : public Kernel {
 public:
  SgdUpdateKernel(tensor::Tensor param, tensor::Tensor grad,
                  tensor::Tensor param_out, tensor::Tensor vel,
                  tensor::Tensor vel_out, float lr, float momentum);
  [[nodiscard]] std::string name() const override { return "tpc.sgd_update"; }
  [[nodiscard]] IndexSpace index_space() const override;
  void execute(KernelContext& ctx, const Member& m) const override;
  [[nodiscard]] std::uint64_t flop_count() const override;

 private:
  tensor::Tensor param_, grad_, param_out_, vel_, vel_out_;
  float lr_, momentum_;
};

/// Adam (Kingma & Ba), with bias correction folded into the step size:
///   m' = b1*m + (1-b1)*g;  v' = b2*v + (1-b2)*g^2
///   param' = param - lr * sqrt(1-b2^t)/(1-b1^t) * m' / (sqrt(v') + eps)
class AdamUpdateKernel final : public Kernel {
 public:
  AdamUpdateKernel(tensor::Tensor param, tensor::Tensor grad, tensor::Tensor m,
                   tensor::Tensor v, tensor::Tensor param_out, tensor::Tensor m_out,
                   tensor::Tensor v_out, float lr, float beta1, float beta2,
                   float eps, std::int64_t step);
  [[nodiscard]] std::string name() const override { return "tpc.adam_update"; }
  [[nodiscard]] IndexSpace index_space() const override;
  void execute(KernelContext& ctx, const Member& m) const override;
  [[nodiscard]] std::uint64_t flop_count() const override;

 private:
  tensor::Tensor param_, grad_, m_, v_, param_out_, m_out_, v_out_;
  float lr_, beta1_, beta2_, eps_;
  std::int64_t step_;
};

// ---------------------------------------------------------------------------
// NLP kernels (kernels_nlp.cpp)
// ---------------------------------------------------------------------------

/// out[t, :] = table[ids[t], :].
class EmbeddingGatherKernel final : public Kernel {
 public:
  EmbeddingGatherKernel(tensor::Tensor table, tensor::Tensor ids, tensor::Tensor out);
  [[nodiscard]] std::string name() const override { return "tpc.embedding"; }
  [[nodiscard]] IndexSpace index_space() const override;
  void execute(KernelContext& ctx, const Member& m) const override;

 private:
  tensor::Tensor table_, ids_, out_;
  std::int64_t tokens_, dim_;
};

/// dtable[ids[t], :] += dy[t, :]; members own column chunks (race-free).
class EmbeddingGradKernel final : public Kernel {
 public:
  EmbeddingGradKernel(tensor::Tensor ids, tensor::Tensor dy, tensor::Tensor dtable);
  [[nodiscard]] std::string name() const override { return "tpc.embedding_grad"; }
  [[nodiscard]] IndexSpace index_space() const override;
  void execute(KernelContext& ctx, const Member& m) const override;

 private:
  tensor::Tensor ids_, dy_, dtable_;
  std::int64_t tokens_, dim_;
};

/// Per-row cross-entropy: loss[r] = logsumexp(logits[r]) - logits[r, tgt[r]].
class CrossEntropyKernel final : public Kernel {
 public:
  CrossEntropyKernel(tensor::Tensor logits, tensor::Tensor targets,
                     tensor::Tensor loss_per_row);
  [[nodiscard]] std::string name() const override { return "tpc.cross_entropy"; }
  [[nodiscard]] IndexSpace index_space() const override;
  void execute(KernelContext& ctx, const Member& m) const override;
  [[nodiscard]] std::uint64_t flop_count() const override;

 private:
  tensor::Tensor logits_, targets_, loss_;
  std::int64_t rows_, vocab_;
};

/// dlogits = (softmax(logits) - onehot(target)) * scale.
class CrossEntropyGradKernel final : public Kernel {
 public:
  CrossEntropyGradKernel(tensor::Tensor logits, tensor::Tensor targets,
                         tensor::Tensor dlogits, float scale);
  [[nodiscard]] std::string name() const override { return "tpc.cross_entropy_grad"; }
  [[nodiscard]] IndexSpace index_space() const override;
  void execute(KernelContext& ctx, const Member& m) const override;
  [[nodiscard]] std::uint64_t flop_count() const override;

 private:
  tensor::Tensor logits_, targets_, dlogits_;
  std::int64_t rows_, vocab_;
  float scale_;
};

}  // namespace gaudi::tpc

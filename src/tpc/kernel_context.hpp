// Per-core execution context handed to TPC kernels.
//
// Kernels express their computation exclusively through these intrinsics;
// the context both performs the arithmetic (functional mode) and charges
// cycles to the issuing VLIW slot (always).  In *phantom* mode loads return
// zeros and stores are discarded: control flow in our kernels is
// data-independent, so the cycle count is exact even without real data —
// this is how paper-scale configurations are timed without allocating
// multi-gigabyte attention matrices on the host.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "sim/chip_config.hpp"
#include "sim/error.hpp"
#include "sim/rng.hpp"
#include "tensor/dtype.hpp"
#include "tpc/vector_unit.hpp"

namespace gaudi::tpc {

class KernelContext {
 public:
  KernelContext(const sim::TpcConfig& cfg, std::uint32_t core_id, bool phantom,
                std::size_t local_vectors, sim::CounterRng rng)
      : cfg_(&cfg),
        core_id_(core_id),
        phantom_(phantom),
        rng_(rng),
        local_mem_(local_vectors * kLanes, 0.0f) {
    GAUDI_CHECK(cfg.f32_lanes() == kLanes,
                "TPC config vector width must match compiled lane count");
    costs_.global_access = cfg.global_access_cycles;
  }

  [[nodiscard]] std::uint32_t core_id() const { return core_id_; }
  [[nodiscard]] bool phantom() const { return phantom_; }
  [[nodiscard]] const SlotCycles& cycles() const { return cycles_; }
  /// Bytes moved to/from global memory (full 2048-bit vectors count 256 B;
  /// the HBM bandwidth bound in the cluster uses this).
  [[nodiscard]] std::uint64_t global_bytes() const { return global_bytes_; }
  void reset_cycles() {
    cycles_ = SlotCycles{};
    global_bytes_ = 0;
  }

  // -- Global memory ---------------------------------------------------------
  // Tensor-based addressing: a span of the backing buffer plus an element
  // offset.  `count` lanes are transferred; remaining lanes take `fill`.

  VecF v_ld_g(std::span<const float> buf, std::int64_t offset, int count = kLanes,
              float fill = 0.0f) {
    charge(Slot::kLoad, costs_.global_access);
    global_bytes_ += kLanes * 4;
    return load_common(buf, offset, count, fill);
  }

  void v_st_g(std::span<float> buf, std::int64_t offset, const VecF& v,
              int count = kLanes) {
    charge(Slot::kStore, costs_.global_access);
    global_bytes_ += kLanes * 4;
    store_common(buf, offset, v, count);
  }

  /// bf16 global accesses: a 2048-bit vector holds 128 bf16 values, so
  /// moving 64 lanes costs half a full vector access.  Conversion to f32
  /// happens in the load path (the datapath widens for free).
  VecF v_ld_g_bf16(std::span<const std::uint16_t> buf, std::int64_t offset,
                   int count = kLanes, float fill = 0.0f) {
    charge(Slot::kLoad, (costs_.global_access + 1) / 2);
    global_bytes_ += kLanes * 2;
    VecF r = VecF::splat(fill);
    if (phantom_ || buf.empty()) {
      return fill == 0.0f ? VecF{} : r;
    }
    GAUDI_ASSERT(count >= 0 && count <= kLanes, "bf16 load lane count out of range");
    GAUDI_ASSERT(offset >= 0 && offset + count <= static_cast<std::int64_t>(buf.size()),
                 "bf16 global load out of bounds");
    for (int l = 0; l < count; ++l) {
      r.lane[l] = tensor::bf16_to_f32(buf[static_cast<std::size_t>(offset) + l]);
    }
    return r;
  }

  void v_st_g_bf16(std::span<std::uint16_t> buf, std::int64_t offset, const VecF& v,
                   int count = kLanes) {
    charge(Slot::kStore, (costs_.global_access + 1) / 2);
    global_bytes_ += kLanes * 2;
    if (phantom_ || buf.empty()) return;
    GAUDI_ASSERT(count >= 0 && count <= kLanes, "bf16 store lane count out of range");
    GAUDI_ASSERT(offset >= 0 && offset + count <= static_cast<std::int64_t>(buf.size()),
                 "bf16 global store out of bounds");
    for (int l = 0; l < count; ++l) {
      buf[static_cast<std::size_t>(offset) + l] = tensor::f32_to_bf16(v.lane[l]);
    }
  }

  /// Scalar global load (one element through the Load slot).
  float s_ld_g(std::span<const float> buf, std::int64_t offset) {
    charge(Slot::kLoad, costs_.global_access);
    global_bytes_ += 4;
    if (phantom_ || buf.empty()) return 0.0f;
    GAUDI_ASSERT(offset >= 0 && offset < static_cast<std::int64_t>(buf.size()),
                 "scalar global load out of bounds");
    return buf[static_cast<std::size_t>(offset)];
  }

  void s_st_g(std::span<float> buf, std::int64_t offset, float v) {
    charge(Slot::kStore, costs_.global_access);
    global_bytes_ += 4;
    if (phantom_ || buf.empty()) return;
    GAUDI_ASSERT(offset >= 0 && offset < static_cast<std::int64_t>(buf.size()),
                 "scalar global store out of bounds");
    buf[static_cast<std::size_t>(offset)] = v;
  }

  /// Integer global load (token ids etc.).
  std::int32_t i_ld_g(std::span<const std::int32_t> buf, std::int64_t offset) {
    charge(Slot::kLoad, costs_.global_access);
    global_bytes_ += 4;
    if (phantom_ || buf.empty()) return 0;
    GAUDI_ASSERT(offset >= 0 && offset < static_cast<std::int64_t>(buf.size()),
                 "int global load out of bounds");
    return buf[static_cast<std::size_t>(offset)];
  }

  // -- Local memory (per-core vector local memory, single-cycle) -------------

  VecF v_ld_l(std::int64_t vec_index) {
    charge(Slot::kLoad, costs_.local_access);
    VecF r;
    const std::size_t base = checked_local(vec_index);
    for (int l = 0; l < kLanes; ++l) r.lane[l] = local_mem_[base + l];
    return r;
  }

  void v_st_l(std::int64_t vec_index, const VecF& v) {
    charge(Slot::kStore, costs_.local_access);
    const std::size_t base = checked_local(vec_index);
    for (int l = 0; l < kLanes; ++l) local_mem_[base + l] = v.lane[l];
  }

  /// Scalar read from vector local memory.
  float s_ld_l(std::int64_t vec_index, int lane) {
    charge(Slot::kLoad, costs_.local_access);
    const std::size_t base = checked_local(vec_index);
    return local_mem_[base + static_cast<std::size_t>(lane)];
  }

  /// Paired scalar read: the 2048-bit local port fetches two 32-bit scalars
  /// in one Load issue — the reuse trick the TPC matmul kernel leans on.
  std::pair<float, float> s_ld_l2(std::int64_t vec_a, int lane_a,
                                  std::int64_t vec_b, int lane_b) {
    charge(Slot::kLoad, costs_.local_access);
    const std::size_t base_a = checked_local(vec_a);
    const std::size_t base_b = checked_local(vec_b);
    return {local_mem_[base_a + static_cast<std::size_t>(lane_a)],
            local_mem_[base_b + static_cast<std::size_t>(lane_b)]};
  }

  // -- Vector ALU (VPU slot) --------------------------------------------------

  VecF v_mov(float s) {
    charge(Slot::kVpu, costs_.alu);
    return VecF::splat(s);
  }
  VecF v_add(const VecF& a, const VecF& b) { return alu2(a, b, [](float x, float y) { return x + y; }); }
  VecF v_sub(const VecF& a, const VecF& b) { return alu2(a, b, [](float x, float y) { return x - y; }); }
  VecF v_mul(const VecF& a, const VecF& b) { return alu2(a, b, [](float x, float y) { return x * y; }); }
  VecF v_max(const VecF& a, const VecF& b) { return alu2(a, b, [](float x, float y) { return x > y ? x : y; }); }
  VecF v_min(const VecF& a, const VecF& b) { return alu2(a, b, [](float x, float y) { return x < y ? x : y; }); }
  /// Fused multiply-add: a*b + c — one VPU issue, two FLOPs/lane.
  VecF v_madd(const VecF& a, const VecF& b, const VecF& c) {
    charge(Slot::kVpu, costs_.alu);
    VecF r;
    for (int l = 0; l < kLanes; ++l) r.lane[l] = a.lane[l] * b.lane[l] + c.lane[l];
    return r;
  }
  /// FMA with a scalar first operand broadcast by the datapath (no extra
  /// splat issue): s*b + c.
  VecF v_madd_s(float s, const VecF& b, const VecF& c) {
    charge(Slot::kVpu, costs_.alu);
    VecF r;
    for (int l = 0; l < kLanes; ++l) r.lane[l] = s * b.lane[l] + c.lane[l];
    return r;
  }
  VecF v_add_s(const VecF& a, float s) { return alu1(a, [s](float x) { return x + s; }); }
  VecF v_mul_s(const VecF& a, float s) { return alu1(a, [s](float x) { return x * s; }); }
  VecF v_abs(const VecF& a) { return alu1(a, [](float x) { return std::fabs(x); }); }
  VecF v_neg(const VecF& a) { return alu1(a, [](float x) { return -x; }); }
  /// select(a > 0 ? b : c) lane-wise.
  VecF v_sel_gtz(const VecF& a, const VecF& b, const VecF& c) {
    charge(Slot::kVpu, costs_.alu);
    VecF r;
    for (int l = 0; l < kLanes; ++l) r.lane[l] = a.lane[l] > 0.0f ? b.lane[l] : c.lane[l];
    return r;
  }

  // -- Special functions (multi-cycle VPU sequences) --------------------------

  VecF v_exp(const VecF& a) { return special(a, [](float x) { return std::exp(x); }); }
  VecF v_log(const VecF& a) { return special(a, [](float x) { return std::log(x); }); }
  VecF v_tanh(const VecF& a) { return special(a, [](float x) { return std::tanh(x); }); }
  VecF v_sigmoid(const VecF& a) {
    return special(a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); });
  }
  /// Fused GELU (tanh approximation) — a single special-function-library
  /// instruction sequence on real TPC, cheaper than composing it from
  /// primitive transcendentals.
  VecF v_gelu(const VecF& a) {
    charge(Slot::kVpu, costs_.fused_act);
    VecF r;
    for (int l = 0; l < kLanes; ++l) {
      const float x = a.lane[l];
      constexpr float c = 0.7978845608f;  // sqrt(2/pi)
      r.lane[l] = 0.5f * x * (1.0f + std::tanh(c * (x + 0.044715f * x * x * x)));
    }
    return r;
  }

  /// Fused ELU — likewise a library-provided sequence.
  VecF v_elu(const VecF& a, float alpha) {
    charge(Slot::kVpu, costs_.fused_act);
    VecF r;
    for (int l = 0; l < kLanes; ++l) {
      const float x = a.lane[l];
      r.lane[l] = x > 0.0f ? x : alpha * (std::exp(x) - 1.0f);
    }
    return r;
  }

  VecF v_sqrt(const VecF& a) { return rootfn(a, [](float x) { return std::sqrt(x); }); }
  VecF v_rsqrt(const VecF& a) { return rootfn(a, [](float x) { return 1.0f / std::sqrt(x); }); }
  VecF v_recip(const VecF& a) { return rootfn(a, [](float x) { return 1.0f / x; }); }

  /// Uniform random vector in [0,1) — TPC hardware RNG (paper §2.2 lists
  /// "random number production" among TPC features).
  VecF v_rng(std::uint64_t counter) {
    charge(Slot::kVpu, costs_.rng);
    VecF r;
    for (int l = 0; l < kLanes; ++l) {
      r.lane[l] = rng_.uniform(counter * kLanes + static_cast<std::uint64_t>(l));
    }
    return r;
  }

  // -- Cross-lane reductions ---------------------------------------------------
  // Implemented in hardware as a log2(kLanes) shuffle ladder; reductions are
  // the structurally expensive part of softmax on this architecture.

  float v_reduce_add(const VecF& a) {
    charge(Slot::kVpu, costs_.reduce);
    double acc = 0.0;
    for (int l = 0; l < kLanes; ++l) acc += static_cast<double>(a.lane[l]);
    return static_cast<float>(acc);
  }
  float v_reduce_max(const VecF& a) {
    charge(Slot::kVpu, costs_.reduce);
    float m = a.lane[0];
    for (int l = 1; l < kLanes; ++l) m = std::max(m, a.lane[l]);
    return m;
  }

  // -- Scalar unit (SPU slot) --------------------------------------------------

  float s_add(float a, float b) { charge(Slot::kSpu, costs_.alu); return a + b; }
  float s_mul(float a, float b) { charge(Slot::kSpu, costs_.alu); return a * b; }
  float s_recip(float a) { charge(Slot::kSpu, costs_.root); return 1.0f / a; }
  float s_sqrt(float a) { charge(Slot::kSpu, costs_.root); return std::sqrt(a); }
  float s_exp(float a) { charge(Slot::kSpu, costs_.special); return std::exp(a); }

  /// Loop bookkeeping (address arithmetic, comparisons) rides the SPU slot.
  void s_bookkeeping(std::uint64_t n = 1) { charge(Slot::kSpu, n * costs_.alu); }

 private:
  template <typename F>
  VecF alu1(const VecF& a, F f) {
    charge(Slot::kVpu, costs_.alu);
    VecF r;
    for (int l = 0; l < kLanes; ++l) r.lane[l] = f(a.lane[l]);
    return r;
  }
  template <typename F>
  VecF alu2(const VecF& a, const VecF& b, F f) {
    charge(Slot::kVpu, costs_.alu);
    VecF r;
    for (int l = 0; l < kLanes; ++l) r.lane[l] = f(a.lane[l], b.lane[l]);
    return r;
  }
  template <typename F>
  VecF special(const VecF& a, F f) {
    charge(Slot::kVpu, costs_.special);
    VecF r;
    for (int l = 0; l < kLanes; ++l) r.lane[l] = f(a.lane[l]);
    return r;
  }
  template <typename F>
  VecF rootfn(const VecF& a, F f) {
    charge(Slot::kVpu, costs_.root);
    VecF r;
    for (int l = 0; l < kLanes; ++l) r.lane[l] = f(a.lane[l]);
    return r;
  }

  void charge(Slot slot, std::uint64_t c) {
    switch (slot) {
      case Slot::kLoad: cycles_.load += c; break;
      case Slot::kSpu: cycles_.spu += c; break;
      case Slot::kVpu: cycles_.vpu += c; break;
      case Slot::kStore: cycles_.store += c; break;
    }
  }

  VecF load_common(std::span<const float> buf, std::int64_t offset, int count,
                   float fill) {
    VecF r = VecF::splat(fill);
    if (phantom_ || buf.empty()) {
      if (fill == 0.0f) return VecF{};  // zeroed
      return r;
    }
    GAUDI_ASSERT(count >= 0 && count <= kLanes, "vector load lane count out of range");
    GAUDI_ASSERT(offset >= 0 &&
                     offset + count <= static_cast<std::int64_t>(buf.size()),
                 "vector global load out of bounds");
    for (int l = 0; l < count; ++l) r.lane[l] = buf[static_cast<std::size_t>(offset) + l];
    return r;
  }

  void store_common(std::span<float> buf, std::int64_t offset, const VecF& v,
                    int count) {
    if (phantom_ || buf.empty()) return;
    GAUDI_ASSERT(count >= 0 && count <= kLanes, "vector store lane count out of range");
    GAUDI_ASSERT(offset >= 0 &&
                     offset + count <= static_cast<std::int64_t>(buf.size()),
                 "vector global store out of bounds");
    for (int l = 0; l < count; ++l) buf[static_cast<std::size_t>(offset) + l] = v.lane[l];
  }

  std::size_t checked_local(std::int64_t vec_index) const {
    const std::size_t base = static_cast<std::size_t>(vec_index) * kLanes;
    GAUDI_CHECK(vec_index >= 0 && base + kLanes <= local_mem_.size(),
                "vector local memory access out of allocated range");
    return base;
  }

  const sim::TpcConfig* cfg_;
  std::uint32_t core_id_;
  bool phantom_;
  sim::CounterRng rng_;
  IntrinsicCosts costs_{};
  SlotCycles cycles_{};
  std::uint64_t global_bytes_ = 0;
  std::vector<float> local_mem_;
};

}  // namespace gaudi::tpc

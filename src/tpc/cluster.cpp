#include "tpc/cluster.hpp"

#include <algorithm>
#include <sstream>

#include "sim/error.hpp"
#include "sim/thread_pool.hpp"

namespace gaudi::tpc {

namespace {

struct CoreOutcome {
  SlotCycles slots{};
  sim::Cycles elapsed = 0;
  std::uint64_t global_bytes = 0;
};

}  // namespace

RunResult TpcCluster::run(const Kernel& kernel, ExecMode mode) const {
  const IndexSpace space = kernel.index_space();
  const std::uint32_t cores = cfg_.num_cores;

  const std::size_t lm_vectors = kernel.local_memory_vectors();
  const std::size_t lm_bytes = lm_vectors * kLanes * sizeof(float);
  if (lm_bytes > cfg_.vector_local_bytes) {
    std::ostringstream os;
    os << "kernel '" << kernel.name() << "' requires " << lm_bytes
       << " bytes of vector local memory; bank is " << cfg_.vector_local_bytes;
    throw sim::ResourceExhausted(os.str());
  }

  std::vector<CoreOutcome> outcomes(cores);

  auto run_core_functional = [&](std::uint32_t core) {
    KernelContext ctx(cfg_, core, /*phantom=*/false, lm_vectors, rng_.stream(core));
    const std::int64_t count = space.members_on_core(core, cores);
    for (std::int64_t k = 0; k < count; ++k) {
      const std::int64_t linear = space.core_member(core, k, cores);
      kernel.execute(ctx, space.member(linear));
      // Per-member loop bookkeeping (index-space iteration) on the SPU.
      ctx.s_bookkeeping();
    }
    outcomes[core].slots = ctx.cycles();
    outcomes[core].elapsed = ctx.cycles().elapsed();
    outcomes[core].global_bytes = ctx.global_bytes();
  };

  auto run_core_timing = [&](std::uint32_t core) {
    const std::int64_t count = space.members_on_core(core, cores);
    if (count == 0) {
      return;
    }
    // Sample first / middle / last member on this core; average and scale.
    std::int64_t sample_ks[kTimingSamples] = {0, count / 2, count - 1};
    std::int64_t samples[kTimingSamples];
    std::int64_t n_samples = 0;
    for (std::int64_t k : sample_ks) {
      bool dup = false;
      for (std::int64_t i = 0; i < n_samples; ++i) dup = dup || samples[i] == k;
      if (!dup) samples[n_samples++] = k;
    }
    KernelContext ctx(cfg_, core, /*phantom=*/true, lm_vectors, rng_.stream(core));
    SlotCycles per_member_sum{};
    std::uint64_t per_member_bytes = 0;
    for (std::int64_t i = 0; i < n_samples; ++i) {
      ctx.reset_cycles();
      kernel.execute(ctx, space.member(space.core_member(core, samples[i], cores)));
      ctx.s_bookkeeping();
      per_member_sum += ctx.cycles();
      per_member_bytes += ctx.global_bytes();
    }
    // Extrapolate: average sampled member, scaled to the member count.
    auto scale = [&](std::uint64_t v) {
      return static_cast<std::uint64_t>(
          static_cast<double>(v) / static_cast<double>(n_samples) *
              static_cast<double>(count) +
          0.5);
    };
    SlotCycles total;
    total.load = scale(per_member_sum.load);
    total.spu = scale(per_member_sum.spu);
    total.vpu = scale(per_member_sum.vpu);
    total.store = scale(per_member_sum.store);
    outcomes[core].slots = total;
    outcomes[core].elapsed = total.elapsed();
    outcomes[core].global_bytes = scale(per_member_bytes);
  };

  if (mode == ExecMode::kFunctional) {
    if (space.size() >= 64) {
      sim::ThreadPool::global().parallel_for(
          cores, [&](std::size_t c) { run_core_functional(static_cast<std::uint32_t>(c)); });
    } else {
      for (std::uint32_t c = 0; c < cores; ++c) run_core_functional(c);
    }
  } else {
    for (std::uint32_t c = 0; c < cores; ++c) run_core_timing(c);
  }

  RunResult r;
  r.members = static_cast<std::uint64_t>(space.size());
  r.flops = kernel.flop_count();
  r.extrapolated = (mode == ExecMode::kTiming);
  sim::Cycles slowest = 0;
  for (const auto& o : outcomes) {
    slowest = std::max(slowest, o.elapsed);
    r.slot_totals += o.slots;
    r.global_bytes += o.global_bytes;
  }
  r.cycles = slowest + cfg_.launch_overhead_cycles;
  r.duration = cfg_.clock().to_time(r.cycles);
  // The cores' aggregate global-access rate can outrun HBM; streaming
  // kernels are then bandwidth-bound.
  const sim::SimTime memory_time = sim::SimTime::from_seconds(
      static_cast<double>(r.global_bytes) / hbm_bandwidth_);
  if (memory_time > r.duration) {
    r.duration = memory_time;
    r.memory_bound = true;
  }
  return r;
}

}  // namespace gaudi::tpc

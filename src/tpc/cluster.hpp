// The TPC cluster: eight cores executing one kernel cooperatively.
//
// Index-space members are distributed cyclically across cores.  Two
// execution modes share the same kernel code:
//
//  * kFunctional — every member executes with real data; cycle counts are
//    exact and outputs are valid.  Host threads parallelize across cores.
//  * kTiming — a small deterministic sample of members per core executes
//    with phantom memory; per-member cycles are extrapolated to the full
//    space.  Outputs are not produced.  This is how paper-scale shapes
//    (3.2-G-element attention matrices) are timed.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/chip_config.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"
#include "tpc/kernel.hpp"

namespace gaudi::tpc {

enum class ExecMode : std::uint8_t { kFunctional, kTiming };

/// Outcome of one kernel launch on the cluster.
struct RunResult {
  sim::Cycles cycles = 0;      ///< elapsed cluster cycles (max over cores, incl. launch)
  sim::SimTime duration{};     ///< max(compute time, HBM streaming time)
  SlotCycles slot_totals{};    ///< issued cycles summed over all cores
  std::uint64_t members = 0;   ///< index-space size
  std::uint64_t flops = 0;     ///< kernel-reported FLOPs
  std::uint64_t global_bytes = 0;  ///< HBM traffic across the cluster
  bool memory_bound = false;   ///< HBM streaming time exceeded compute time
  bool extrapolated = false;   ///< true when produced by kTiming sampling

  [[nodiscard]] double tflops() const {
    const double s = duration.seconds();
    return s > 0 ? static_cast<double>(flops) / s * 1e-12 : 0.0;
  }
};

class TpcCluster {
 public:
  /// `hbm_bandwidth` bounds streaming kernels: the eight cores' aggregate
  /// global-access rate can exceed what HBM sustains, so a kernel's duration
  /// is max(compute cycles, bytes / bandwidth).
  explicit TpcCluster(const sim::TpcConfig& cfg, sim::CounterRng rng = {},
                      double hbm_bandwidth_bytes_per_s = 1.0e12)
      : cfg_(cfg), rng_(rng), hbm_bandwidth_(hbm_bandwidth_bytes_per_s) {}

  [[nodiscard]] const sim::TpcConfig& config() const { return cfg_; }

  /// Launches `kernel` across the cluster.  Throws sim::ResourceExhausted if
  /// the kernel's local-memory requirement exceeds the per-core bank.
  RunResult run(const Kernel& kernel, ExecMode mode) const;

  /// Members sampled per core in kTiming mode (first/middle/last).
  static constexpr std::int64_t kTimingSamples = 3;

 private:
  sim::TpcConfig cfg_;
  sim::CounterRng rng_;
  double hbm_bandwidth_;
};

}  // namespace gaudi::tpc

// Element-wise TPC kernels: unary/binary/scalar ops, activations, GLU,
// dropout, fill, row-vector broadcasts.
#include "tpc/kernels.hpp"

#include <algorithm>
#include <cmath>

namespace gaudi::tpc {

namespace {

/// Vectors handled per index-space member for flat element-wise sweeps; a
/// larger grain amortizes per-member bookkeeping as a real kernel would.
constexpr std::int64_t kVecsPerMember = 8;
constexpr std::int64_t kChunk = kVecsPerMember * kLanes;

[[nodiscard]] IndexSpace flat_space(std::int64_t numel) {
  return IndexSpace{{(numel + kChunk - 1) / kChunk}};
}

/// Iterates the member's vector chunks, invoking fn(offset, count).
template <typename F>
void for_member_vectors(std::int64_t numel, const Member& m, F&& fn) {
  const std::int64_t begin = m.linear * kChunk;
  const std::int64_t end = std::min(numel, begin + kChunk);
  for (std::int64_t off = begin; off < end; off += kLanes) {
    const int count = static_cast<int>(std::min<std::int64_t>(kLanes, end - off));
    fn(off, count);
  }
}

constexpr float kGeluC = 0.7978845608f;  // sqrt(2/pi)

}  // namespace

// ---------------------------------------------------------------------------
// UnaryEwKernel
// ---------------------------------------------------------------------------

const char* unary_kind_name(UnaryKind k) {
  switch (k) {
    case UnaryKind::kExp: return "exp";
    case UnaryKind::kLog: return "log";
    case UnaryKind::kSqrt: return "sqrt";
    case UnaryKind::kSquare: return "square";
    case UnaryKind::kRecip: return "recip";
    case UnaryKind::kRelu: return "relu";
    case UnaryKind::kLeakyRelu: return "leaky_relu";
    case UnaryKind::kElu: return "elu";
    case UnaryKind::kGelu: return "gelu";
    case UnaryKind::kSigmoid: return "sigmoid";
    case UnaryKind::kTanh: return "tanh";
    case UnaryKind::kNeg: return "neg";
    case UnaryKind::kAbs: return "abs";
  }
  return "?";
}

UnaryEwKernel::UnaryEwKernel(UnaryKind kind, tensor::Tensor in, tensor::Tensor out,
                             float alpha)
    : kind_(kind), in_(std::move(in)), out_(std::move(out)), alpha_(alpha) {
  GAUDI_CHECK(in_.shape().numel() == out_.shape().numel(),
              "unary kernel: element count mismatch");
}

std::string UnaryEwKernel::name() const {
  return std::string("tpc.") + unary_kind_name(kind_);
}

IndexSpace UnaryEwKernel::index_space() const { return flat_space(in_.numel()); }

void UnaryEwKernel::execute(KernelContext& ctx, const Member& m) const {
  const auto in = ro(in_);
  auto out = rw(out_);
  const float alpha = alpha_;
  for_member_vectors(in_.numel(), m, [&](std::int64_t off, int count) {
    VecF v = ctx.v_ld_g(in, off, count);
    VecF r;
    switch (kind_) {
      case UnaryKind::kExp: r = ctx.v_exp(v); break;
      case UnaryKind::kLog: r = ctx.v_log(v); break;
      case UnaryKind::kSqrt: r = ctx.v_sqrt(v); break;
      case UnaryKind::kSquare: r = ctx.v_mul(v, v); break;
      case UnaryKind::kRecip: r = ctx.v_recip(v); break;
      case UnaryKind::kRelu: r = ctx.v_max(v, ctx.v_mov(0.0f)); break;
      case UnaryKind::kLeakyRelu:
        r = ctx.v_sel_gtz(v, v, ctx.v_mul_s(v, alpha));
        break;
      case UnaryKind::kElu:
        r = ctx.v_elu(v, alpha);
        break;
      case UnaryKind::kGelu:
        r = ctx.v_gelu(v);
        break;
      case UnaryKind::kSigmoid: r = ctx.v_sigmoid(v); break;
      case UnaryKind::kTanh: r = ctx.v_tanh(v); break;
      case UnaryKind::kNeg: r = ctx.v_neg(v); break;
      case UnaryKind::kAbs: r = ctx.v_abs(v); break;
    }
    ctx.v_st_g(out, off, r, count);
  });
}

std::uint64_t UnaryEwKernel::flop_count() const {
  return static_cast<std::uint64_t>(in_.numel());
}

// ---------------------------------------------------------------------------
// UnaryGradKernel
// ---------------------------------------------------------------------------

UnaryGradKernel::UnaryGradKernel(UnaryKind kind, tensor::Tensor x, tensor::Tensor dy,
                                 tensor::Tensor dx, float alpha)
    : kind_(kind), x_(std::move(x)), dy_(std::move(dy)), dx_(std::move(dx)),
      alpha_(alpha) {
  GAUDI_CHECK(x_.shape().numel() == dy_.shape().numel() &&
                  x_.shape().numel() == dx_.shape().numel(),
              "unary grad kernel: element count mismatch");
}

std::string UnaryGradKernel::name() const {
  return std::string("tpc.") + unary_kind_name(kind_) + "_grad";
}

IndexSpace UnaryGradKernel::index_space() const { return flat_space(x_.numel()); }

void UnaryGradKernel::execute(KernelContext& ctx, const Member& m) const {
  const auto x = ro(x_);
  const auto dy = ro(dy_);
  auto dx = rw(dx_);
  const float alpha = alpha_;
  for_member_vectors(x_.numel(), m, [&](std::int64_t off, int count) {
    VecF vx = ctx.v_ld_g(x, off, count);
    VecF vdy = ctx.v_ld_g(dy, off, count);
    VecF d;  // f'(x)
    switch (kind_) {
      case UnaryKind::kExp: d = ctx.v_exp(vx); break;
      case UnaryKind::kLog: d = ctx.v_recip(vx); break;
      case UnaryKind::kSqrt: d = ctx.v_mul_s(ctx.v_rsqrt(vx), 0.5f); break;
      case UnaryKind::kSquare: d = ctx.v_mul_s(vx, 2.0f); break;
      case UnaryKind::kRecip: {
        const VecF r = ctx.v_recip(vx);
        d = ctx.v_neg(ctx.v_mul(r, r));
        break;
      }
      case UnaryKind::kRelu:
        d = ctx.v_sel_gtz(vx, ctx.v_mov(1.0f), ctx.v_mov(0.0f));
        break;
      case UnaryKind::kLeakyRelu:
        d = ctx.v_sel_gtz(vx, ctx.v_mov(1.0f), ctx.v_mov(alpha));
        break;
      case UnaryKind::kElu:
        d = ctx.v_sel_gtz(vx, ctx.v_mov(1.0f), ctx.v_mul_s(ctx.v_exp(vx), alpha));
        break;
      case UnaryKind::kGelu: {
        // d/dx [0.5x(1+tanh(u))], u = c(x + 0.044715x^3)
        const VecF x2 = ctx.v_mul(vx, vx);
        const VecF u = ctx.v_mul_s(
            ctx.v_madd_s(0.044715f, ctx.v_mul(x2, vx), vx), kGeluC);
        const VecF t = ctx.v_tanh(u);
        const VecF sech2 = ctx.v_sub(ctx.v_mov(1.0f), ctx.v_mul(t, t));
        const VecF du = ctx.v_mul_s(ctx.v_madd_s(3.0f * 0.044715f, x2, ctx.v_mov(1.0f)),
                                    kGeluC);
        const VecF half_x = ctx.v_mul_s(vx, 0.5f);
        d = ctx.v_add(ctx.v_mul_s(ctx.v_add_s(t, 1.0f), 0.5f),
                      ctx.v_mul(half_x, ctx.v_mul(sech2, du)));
        break;
      }
      case UnaryKind::kSigmoid: {
        const VecF s = ctx.v_sigmoid(vx);
        d = ctx.v_mul(s, ctx.v_sub(ctx.v_mov(1.0f), s));
        break;
      }
      case UnaryKind::kTanh: {
        const VecF t = ctx.v_tanh(vx);
        d = ctx.v_sub(ctx.v_mov(1.0f), ctx.v_mul(t, t));
        break;
      }
      case UnaryKind::kNeg: d = ctx.v_mov(-1.0f); break;
      case UnaryKind::kAbs:
        d = ctx.v_sel_gtz(vx, ctx.v_mov(1.0f), ctx.v_mov(-1.0f));
        break;
    }
    ctx.v_st_g(dx, off, ctx.v_mul(vdy, d), count);
  });
}

std::uint64_t UnaryGradKernel::flop_count() const {
  return 2 * static_cast<std::uint64_t>(x_.numel());
}

// ---------------------------------------------------------------------------
// BinaryEwKernel
// ---------------------------------------------------------------------------

const char* binary_kind_name(BinaryKind k) {
  switch (k) {
    case BinaryKind::kAdd: return "add";
    case BinaryKind::kSub: return "sub";
    case BinaryKind::kMul: return "mul";
    case BinaryKind::kDiv: return "div";
    case BinaryKind::kMax: return "max";
  }
  return "?";
}

BinaryEwKernel::BinaryEwKernel(BinaryKind kind, tensor::Tensor a, tensor::Tensor b,
                               tensor::Tensor out)
    : kind_(kind), a_(std::move(a)), b_(std::move(b)), out_(std::move(out)) {
  GAUDI_CHECK(a_.shape().numel() == b_.shape().numel() &&
                  a_.shape().numel() == out_.shape().numel(),
              "binary kernel: element count mismatch");
}

std::string BinaryEwKernel::name() const {
  return std::string("tpc.") + binary_kind_name(kind_);
}

IndexSpace BinaryEwKernel::index_space() const { return flat_space(a_.numel()); }

void BinaryEwKernel::execute(KernelContext& ctx, const Member& m) const {
  const auto a = ro(a_);
  const auto b = ro(b_);
  auto out = rw(out_);
  for_member_vectors(a_.numel(), m, [&](std::int64_t off, int count) {
    VecF va = ctx.v_ld_g(a, off, count);
    VecF vb = ctx.v_ld_g(b, off, count);
    VecF r;
    switch (kind_) {
      case BinaryKind::kAdd: r = ctx.v_add(va, vb); break;
      case BinaryKind::kSub: r = ctx.v_sub(va, vb); break;
      case BinaryKind::kMul: r = ctx.v_mul(va, vb); break;
      case BinaryKind::kDiv: r = ctx.v_mul(va, ctx.v_recip(vb)); break;
      case BinaryKind::kMax: r = ctx.v_max(va, vb); break;
    }
    ctx.v_st_g(out, off, r, count);
  });
}

std::uint64_t BinaryEwKernel::flop_count() const {
  return static_cast<std::uint64_t>(a_.numel());
}

// ---------------------------------------------------------------------------
// ScalarEwKernel
// ---------------------------------------------------------------------------

const char* scalar_kind_name(ScalarKind k) {
  switch (k) {
    case ScalarKind::kAddS: return "add_scalar";
    case ScalarKind::kSubS: return "sub_scalar";
    case ScalarKind::kRsubS: return "rsub_scalar";
    case ScalarKind::kMulS: return "mul_scalar";
  }
  return "?";
}

ScalarEwKernel::ScalarEwKernel(ScalarKind kind, tensor::Tensor in, float scalar,
                               tensor::Tensor out)
    : kind_(kind), in_(std::move(in)), out_(std::move(out)), scalar_(scalar) {
  GAUDI_CHECK(in_.shape().numel() == out_.shape().numel(),
              "scalar kernel: element count mismatch");
}

std::string ScalarEwKernel::name() const {
  return std::string("tpc.") + scalar_kind_name(kind_);
}

IndexSpace ScalarEwKernel::index_space() const { return flat_space(in_.numel()); }

void ScalarEwKernel::execute(KernelContext& ctx, const Member& m) const {
  const auto in = ro(in_);
  auto out = rw(out_);
  const float s = scalar_;
  for_member_vectors(in_.numel(), m, [&](std::int64_t off, int count) {
    VecF v = ctx.v_ld_g(in, off, count);
    VecF r;
    switch (kind_) {
      case ScalarKind::kAddS: r = ctx.v_add_s(v, s); break;
      case ScalarKind::kSubS: r = ctx.v_add_s(v, -s); break;
      case ScalarKind::kRsubS: r = ctx.v_add_s(ctx.v_neg(v), s); break;
      case ScalarKind::kMulS: r = ctx.v_mul_s(v, s); break;
    }
    ctx.v_st_g(out, off, r, count);
  });
}

std::uint64_t ScalarEwKernel::flop_count() const {
  return static_cast<std::uint64_t>(in_.numel());
}

// ---------------------------------------------------------------------------
// FillKernel
// ---------------------------------------------------------------------------

FillKernel::FillKernel(tensor::Tensor out, float value)
    : out_(std::move(out)), value_(value) {}

IndexSpace FillKernel::index_space() const { return flat_space(out_.numel()); }

void FillKernel::execute(KernelContext& ctx, const Member& m) const {
  auto out = rw(out_);
  const VecF v = ctx.v_mov(value_);
  for_member_vectors(out_.numel(), m, [&](std::int64_t off, int count) {
    ctx.v_st_g(out, off, v, count);
  });
}

// ---------------------------------------------------------------------------
// RowvecKernel
// ---------------------------------------------------------------------------

RowvecKernel::RowvecKernel(Op op, tensor::Tensor in, tensor::Tensor vec,
                           tensor::Tensor out)
    : op_(op), in_(std::move(in)), vec_(std::move(vec)), out_(std::move(out)) {
  GAUDI_CHECK(vec_.shape().rank() == 1, "rowvec kernel: vector must be rank-1");
  GAUDI_CHECK(in_.shape()[in_.shape().rank() - 1] == vec_.shape()[0],
              "rowvec kernel: trailing dim mismatch");
  GAUDI_CHECK(in_.shape().numel() == out_.shape().numel(),
              "rowvec kernel: element count mismatch");
}

std::string RowvecKernel::name() const {
  return op_ == Op::kAdd ? "tpc.add_rowvec" : "tpc.mul_rowvec";
}

IndexSpace RowvecKernel::index_space() const {
  const std::int64_t d = vec_.shape()[0];
  return IndexSpace{{in_.numel() / d}};
}

void RowvecKernel::execute(KernelContext& ctx, const Member& m) const {
  const auto in = ro(in_);
  const auto vec = ro(vec_);
  auto out = rw(out_);
  const std::int64_t d = vec_.shape()[0];
  const std::int64_t base = m.linear * d;
  for (std::int64_t j = 0; j < d; j += kLanes) {
    const int count = static_cast<int>(std::min<std::int64_t>(kLanes, d - j));
    VecF vi = ctx.v_ld_g(in, base + j, count);
    VecF vv = ctx.v_ld_g(vec, j, count);
    VecF r = op_ == Op::kAdd ? ctx.v_add(vi, vv) : ctx.v_mul(vi, vv);
    ctx.v_st_g(out, base + j, r, count);
  }
}

std::uint64_t RowvecKernel::flop_count() const {
  return static_cast<std::uint64_t>(in_.numel());
}

// ---------------------------------------------------------------------------
// GluKernel / GluGradKernel
// ---------------------------------------------------------------------------

GluKernel::GluKernel(tensor::Tensor in, tensor::Tensor out)
    : in_(std::move(in)), out_(std::move(out)) {
  const std::int64_t d2 = in_.shape()[in_.shape().rank() - 1];
  GAUDI_CHECK(d2 % 2 == 0, "glu: trailing dim must be even");
  GAUDI_CHECK(out_.shape()[out_.shape().rank() - 1] == d2 / 2 &&
                  out_.shape().numel() == in_.shape().numel() / 2,
              "glu: output must halve the trailing dim");
}

IndexSpace GluKernel::index_space() const {
  const std::int64_t d2 = in_.shape()[in_.shape().rank() - 1];
  return IndexSpace{{in_.numel() / d2}};
}

void GluKernel::execute(KernelContext& ctx, const Member& m) const {
  const auto in = ro(in_);
  auto out = rw(out_);
  const std::int64_t d2 = in_.shape()[in_.shape().rank() - 1];
  const std::int64_t d = d2 / 2;
  const std::int64_t in_base = m.linear * d2;
  const std::int64_t out_base = m.linear * d;
  for (std::int64_t j = 0; j < d; j += kLanes) {
    const int count = static_cast<int>(std::min<std::int64_t>(kLanes, d - j));
    VecF a = ctx.v_ld_g(in, in_base + j, count);
    VecF b = ctx.v_ld_g(in, in_base + d + j, count);
    ctx.v_st_g(out, out_base + j, ctx.v_mul(a, ctx.v_sigmoid(b)), count);
  }
}

std::uint64_t GluKernel::flop_count() const {
  return static_cast<std::uint64_t>(out_.numel()) * 2;
}

GluGradKernel::GluGradKernel(tensor::Tensor in, tensor::Tensor dout,
                             tensor::Tensor din)
    : in_(std::move(in)), dout_(std::move(dout)), din_(std::move(din)) {
  GAUDI_CHECK(in_.shape().numel() == din_.shape().numel(),
              "glu grad: din must match input");
  GAUDI_CHECK(dout_.shape().numel() * 2 == in_.shape().numel(),
              "glu grad: dout must be half of input");
}

IndexSpace GluGradKernel::index_space() const {
  const std::int64_t d2 = in_.shape()[in_.shape().rank() - 1];
  return IndexSpace{{in_.numel() / d2}};
}

void GluGradKernel::execute(KernelContext& ctx, const Member& m) const {
  const auto in = ro(in_);
  const auto dout = ro(dout_);
  auto din = rw(din_);
  const std::int64_t d2 = in_.shape()[in_.shape().rank() - 1];
  const std::int64_t d = d2 / 2;
  const std::int64_t in_base = m.linear * d2;
  const std::int64_t out_base = m.linear * d;
  for (std::int64_t j = 0; j < d; j += kLanes) {
    const int count = static_cast<int>(std::min<std::int64_t>(kLanes, d - j));
    VecF a = ctx.v_ld_g(in, in_base + j, count);
    VecF b = ctx.v_ld_g(in, in_base + d + j, count);
    VecF g = ctx.v_ld_g(dout, out_base + j, count);
    const VecF s = ctx.v_sigmoid(b);
    // da = g * sigmoid(b); db = g * a * s * (1 - s)
    ctx.v_st_g(din, in_base + j, ctx.v_mul(g, s), count);
    const VecF ds = ctx.v_mul(s, ctx.v_sub(ctx.v_mov(1.0f), s));
    ctx.v_st_g(din, in_base + d + j, ctx.v_mul(ctx.v_mul(g, a), ds), count);
  }
}

std::uint64_t GluGradKernel::flop_count() const {
  return static_cast<std::uint64_t>(in_.numel()) * 3;
}

// ---------------------------------------------------------------------------
// CastKernel
// ---------------------------------------------------------------------------

CastKernel::CastKernel(tensor::Tensor in, tensor::Tensor out)
    : in_(std::move(in)), out_(std::move(out)) {
  GAUDI_CHECK(in_.shape().numel() == out_.shape().numel(),
              "cast: element count mismatch");
  GAUDI_CHECK(tensor::is_floating(in_.dtype()) && tensor::is_floating(out_.dtype()),
              "cast supports f32 <-> bf16");
  GAUDI_CHECK(in_.dtype() != out_.dtype(), "cast requires distinct dtypes");
}

IndexSpace CastKernel::index_space() const { return flat_space(in_.numel()); }

void CastKernel::execute(KernelContext& ctx, const Member& m) const {
  const bool in_bf16 = in_.dtype() == tensor::DType::BF16;
  const auto in_f = in_bf16 ? std::span<const float>{} : ro(in_);
  const auto in_b = in_bf16 ? ro_bf16(in_) : std::span<const std::uint16_t>{};
  auto out_f = in_bf16 ? rw(out_) : std::span<float>{};
  auto out_b = in_bf16 ? std::span<std::uint16_t>{} : rw_bf16(out_);
  for_member_vectors(in_.numel(), m, [&](std::int64_t off, int count) {
    if (in_bf16) {
      ctx.v_st_g(out_f, off, ctx.v_ld_g_bf16(in_b, off, count), count);
    } else {
      ctx.v_st_g_bf16(out_b, off, ctx.v_ld_g(in_f, off, count), count);
    }
  });
}

// ---------------------------------------------------------------------------
// DropoutKernel
// ---------------------------------------------------------------------------

DropoutKernel::DropoutKernel(tensor::Tensor in, tensor::Tensor out, float p,
                             std::uint64_t seed_offset)
    : in_(std::move(in)), out_(std::move(out)), p_(p), seed_offset_(seed_offset) {
  GAUDI_CHECK(p >= 0.0f && p < 1.0f, "dropout probability must be in [0, 1)");
  GAUDI_CHECK(in_.shape().numel() == out_.shape().numel(),
              "dropout: element count mismatch");
}

IndexSpace DropoutKernel::index_space() const { return flat_space(in_.numel()); }

void DropoutKernel::execute(KernelContext& ctx, const Member& m) const {
  const auto in = ro(in_);
  auto out = rw(out_);
  const float scale = 1.0f / (1.0f - p_);
  for_member_vectors(in_.numel(), m, [&](std::int64_t off, int count) {
    VecF v = ctx.v_ld_g(in, off, count);
    VecF u = ctx.v_rng(seed_offset_ + static_cast<std::uint64_t>(off) / kLanes);
    // keep-mask: u >= p  →  (u - p) > 0 ? x*scale : 0
    VecF keep = ctx.v_add_s(u, -p_);
    VecF r = ctx.v_sel_gtz(keep, ctx.v_mul_s(v, scale), ctx.v_mov(0.0f));
    ctx.v_st_g(out, off, r, count);
  });
}

std::uint64_t DropoutKernel::flop_count() const {
  return static_cast<std::uint64_t>(in_.numel());
}

}  // namespace gaudi::tpc

// TPC index spaces.
//
// A TPC program divides its work into an up-to-5-dimensional *index space*;
// "each index space member corresponds to an independent unit of work
// executed on a single TPC" (paper §2.2).  The cluster distributes members
// across its cores; cycle accounting and functional execution both iterate
// members through this type.
#pragma once

#include <array>
#include <cstdint>

#include "sim/error.hpp"
#include "tensor/shape.hpp"

namespace gaudi::tpc {

/// Coordinates of one index-space member.
struct Member {
  std::array<std::int64_t, tensor::kMaxRank> coord{};
  std::int64_t linear = 0;

  [[nodiscard]] std::int64_t operator[](std::size_t i) const { return coord[i]; }
};

class IndexSpace {
 public:
  IndexSpace() = default;
  IndexSpace(std::initializer_list<std::int64_t> dims) : shape_{dims} {}
  explicit IndexSpace(tensor::Shape shape) : shape_(std::move(shape)) {}

  [[nodiscard]] const tensor::Shape& shape() const { return shape_; }
  [[nodiscard]] std::int64_t size() const { return shape_.numel(); }

  /// Member for a linear id in [0, size()).
  [[nodiscard]] Member member(std::int64_t linear) const {
    GAUDI_CHECK(linear >= 0 && linear < size(), "index-space member out of range");
    Member m;
    m.linear = linear;
    std::int64_t rem = linear;
    const auto strides = shape_.strides();
    for (std::size_t i = 0; i < shape_.rank(); ++i) {
      m.coord[i] = rem / strides[i];
      rem %= strides[i];
    }
    return m;
  }

  /// Number of members assigned to `core` out of `num_cores` under the
  /// block-cyclic distribution used by the cluster.
  [[nodiscard]] std::int64_t members_on_core(std::uint32_t core,
                                             std::uint32_t num_cores) const {
    const std::int64_t n = size();
    return n / num_cores + ((static_cast<std::int64_t>(core) < n % num_cores) ? 1 : 0);
  }

  /// Linear member id of the k-th member on `core` (cyclic distribution:
  /// member i runs on core i % num_cores, preserving locality of
  /// consecutive members across the cluster).
  [[nodiscard]] std::int64_t core_member(std::uint32_t core, std::int64_t k,
                                         std::uint32_t num_cores) const {
    return static_cast<std::int64_t>(core) + k * static_cast<std::int64_t>(num_cores);
  }

 private:
  tensor::Shape shape_{{1}};
};

}  // namespace gaudi::tpc

// Optimizer update kernels.  Updates are element-wise streams; like every
// other non-matmul op they land on the TPC, which is why optimizer steps
// contribute to the TPC-busy phases of end-to-end training traces.
#include "tpc/kernels.hpp"

#include <algorithm>
#include <cmath>

namespace gaudi::tpc {

namespace {

constexpr std::int64_t kChunk = 8 * kLanes;

[[nodiscard]] IndexSpace flat_space(std::int64_t numel) {
  return IndexSpace{{(numel + kChunk - 1) / kChunk}};
}

template <typename F>
void for_member_vectors(std::int64_t numel, const Member& m, F&& fn) {
  const std::int64_t begin = m.linear * kChunk;
  const std::int64_t end = std::min(numel, begin + kChunk);
  for (std::int64_t off = begin; off < end; off += kLanes) {
    fn(off, static_cast<int>(std::min<std::int64_t>(kLanes, end - off)));
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// SgdUpdateKernel
// ---------------------------------------------------------------------------

SgdUpdateKernel::SgdUpdateKernel(tensor::Tensor param, tensor::Tensor grad,
                                 tensor::Tensor param_out, tensor::Tensor vel,
                                 tensor::Tensor vel_out, float lr, float momentum)
    : param_(std::move(param)), grad_(std::move(grad)),
      param_out_(std::move(param_out)), vel_(std::move(vel)),
      vel_out_(std::move(vel_out)), lr_(lr), momentum_(momentum) {
  GAUDI_CHECK(param_.shape().numel() == grad_.shape().numel() &&
                  param_.shape().numel() == param_out_.shape().numel(),
              "sgd: element count mismatch");
  if (momentum_ != 0.0f) {
    GAUDI_CHECK(vel_.shape().numel() == param_.shape().numel() &&
                    vel_out_.shape().numel() == param_.shape().numel(),
                "sgd with momentum requires velocity tensors");
  }
}

IndexSpace SgdUpdateKernel::index_space() const {
  return flat_space(param_.numel());
}

void SgdUpdateKernel::execute(KernelContext& ctx, const Member& m) const {
  const auto p = ro(param_);
  const auto g = ro(grad_);
  auto po = rw(param_out_);
  const auto vel = ro(vel_);
  auto vo = rw(vel_out_);
  const bool with_momentum = momentum_ != 0.0f;
  for_member_vectors(param_.numel(), m, [&](std::int64_t off, int count) {
    VecF vp = ctx.v_ld_g(p, off, count);
    VecF vg = ctx.v_ld_g(g, off, count);
    if (with_momentum) {
      VecF vv = ctx.v_ld_g(vel, off, count);
      vv = ctx.v_madd_s(momentum_, vv, vg);  // mu*vel + grad
      ctx.v_st_g(vo, off, vv, count);
      vg = vv;
    }
    ctx.v_st_g(po, off, ctx.v_madd_s(-lr_, vg, vp), count);
  });
}

std::uint64_t SgdUpdateKernel::flop_count() const {
  return static_cast<std::uint64_t>(param_.numel()) * (momentum_ != 0.0f ? 4 : 2);
}

// ---------------------------------------------------------------------------
// AdamUpdateKernel
// ---------------------------------------------------------------------------

AdamUpdateKernel::AdamUpdateKernel(tensor::Tensor param, tensor::Tensor grad,
                                   tensor::Tensor m, tensor::Tensor v,
                                   tensor::Tensor param_out, tensor::Tensor m_out,
                                   tensor::Tensor v_out, float lr, float beta1,
                                   float beta2, float eps, std::int64_t step)
    : param_(std::move(param)), grad_(std::move(grad)), m_(std::move(m)),
      v_(std::move(v)), param_out_(std::move(param_out)), m_out_(std::move(m_out)),
      v_out_(std::move(v_out)), lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps),
      step_(step) {
  const std::int64_t n = param_.shape().numel();
  GAUDI_CHECK(grad_.shape().numel() == n && m_.shape().numel() == n &&
                  v_.shape().numel() == n && param_out_.shape().numel() == n &&
                  m_out_.shape().numel() == n && v_out_.shape().numel() == n,
              "adam: element count mismatch");
  GAUDI_CHECK(step_ >= 1, "adam: step count starts at 1");
}

IndexSpace AdamUpdateKernel::index_space() const {
  return flat_space(param_.numel());
}

void AdamUpdateKernel::execute(KernelContext& ctx, const Member& mem) const {
  const auto p = ro(param_);
  const auto g = ro(grad_);
  const auto m_in = ro(m_);
  const auto v_in = ro(v_);
  auto po = rw(param_out_);
  auto mo = rw(m_out_);
  auto vo = rw(v_out_);

  // Bias-corrected step size, computed once per member on the SPU.
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(step_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(step_));
  const float alpha = ctx.s_mul(lr_, ctx.s_mul(ctx.s_sqrt(bc2), ctx.s_recip(bc1)));

  for_member_vectors(param_.numel(), mem, [&](std::int64_t off, int count) {
    VecF vp = ctx.v_ld_g(p, off, count);
    VecF vg = ctx.v_ld_g(g, off, count);
    VecF vm = ctx.v_ld_g(m_in, off, count);
    VecF vv = ctx.v_ld_g(v_in, off, count);

    vm = ctx.v_madd_s(beta1_, vm, ctx.v_mul_s(vg, 1.0f - beta1_));
    vv = ctx.v_madd_s(beta2_, vv, ctx.v_mul_s(ctx.v_mul(vg, vg), 1.0f - beta2_));
    ctx.v_st_g(mo, off, vm, count);
    ctx.v_st_g(vo, off, vv, count);

    const VecF denom = ctx.v_add_s(ctx.v_sqrt(vv), eps_);
    const VecF update = ctx.v_mul(vm, ctx.v_recip(denom));
    ctx.v_st_g(po, off, ctx.v_madd_s(-alpha, update, vp), count);
  });
}

std::uint64_t AdamUpdateKernel::flop_count() const {
  return static_cast<std::uint64_t>(param_.numel()) * 12;
}

}  // namespace gaudi::tpc

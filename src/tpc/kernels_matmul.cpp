// Batched matrix multiplication executed on the TPC cluster.
//
// This is the comparator for the paper's Table 2: how fast can the "wrong"
// engine do GEMM?  The kernel follows the structure of Habana's
// custom-kernel example: each index-space member owns a 32-row x 64-column
// output tile, staging 64-deep k-blocks of both operands through vector
// local memory, with a scalar(A) x vector(B) FMA inner loop.  The VLIW
// machine overlaps the Load and VPU slots; paired scalar loads keep the
// inner loop VPU-bound, which is what lets the cluster approach its ~2.2
// TFLOPS peak on large shapes.
#include "tpc/kernels.hpp"

#include <algorithm>

namespace gaudi::tpc {

BatchedMatMulTpcKernel::BatchedMatMulTpcKernel(tensor::Tensor a, tensor::Tensor b,
                                               tensor::Tensor c)
    : a_(std::move(a)), b_(std::move(b)), c_(std::move(c)) {
  GAUDI_CHECK(a_.shape().rank() >= 2 && b_.shape().rank() >= 2,
              "tpc matmul expects rank >= 2");
  m_ = a_.shape()[a_.shape().rank() - 2];
  k_ = a_.shape()[a_.shape().rank() - 1];
  n_ = b_.shape()[b_.shape().rank() - 1];
  batch_ = a_.shape().batch_count(2);
  GAUDI_CHECK(b_.shape()[b_.shape().rank() - 2] == k_,
              "tpc matmul inner dims mismatch");
  GAUDI_CHECK(b_.shape().batch_count(2) == batch_,
              "tpc matmul batch dims mismatch");
  GAUDI_CHECK(c_.shape().numel() == batch_ * m_ * n_,
              "tpc matmul output shape mismatch");
}

IndexSpace BatchedMatMulTpcKernel::index_space() const {
  const std::int64_t mt = (m_ + kRowTile - 1) / kRowTile;
  const std::int64_t nt = (n_ + kLanes - 1) / kLanes;
  return IndexSpace{{batch_, mt, nt}};
}

std::size_t BatchedMatMulTpcKernel::local_memory_vectors() const {
  // One k-block of B (kKBlock vectors) plus one staged row-chunk per output
  // row (kRowTile vectors of kKBlock <= kLanes elements each).
  return static_cast<std::size_t>(kKBlock + kRowTile);
}

void BatchedMatMulTpcKernel::execute(KernelContext& ctx, const Member& m) const {
  const auto a = ro(a_);
  const auto b = ro(b_);
  auto c = rw(c_);

  const std::int64_t batch = m[0];
  const std::int64_t i0 = m[1] * kRowTile;
  const std::int64_t j0 = m[2] * kLanes;
  const std::int64_t rows = std::min<std::int64_t>(kRowTile, m_ - i0);
  const int cols = static_cast<int>(std::min<std::int64_t>(kLanes, n_ - j0));

  const std::int64_t a_base = batch * m_ * k_;
  const std::int64_t b_base = batch * k_ * n_;
  const std::int64_t c_base = batch * m_ * n_;

  // Local-memory layout: B block at [0, kKBlock), A row chunks after it.
  constexpr std::int64_t kBSlot = 0;
  constexpr std::int64_t kASlot = kKBlock;

  VecF acc[kRowTile];
  for (std::int64_t i = 0; i < rows; ++i) acc[i] = ctx.v_mov(0.0f);

  for (std::int64_t k0 = 0; k0 < k_; k0 += kKBlock) {
    const std::int64_t kb = std::min<std::int64_t>(kKBlock, k_ - k0);

    // Stage B[k0:k0+kb, j0:j0+cols] into local memory, one row per vector.
    for (std::int64_t kk = 0; kk < kb; ++kk) {
      VecF vb = ctx.v_ld_g(b, b_base + (k0 + kk) * n_ + j0, cols);
      ctx.v_st_l(kBSlot + kk, vb);
    }
    // Stage A[i0:i0+rows, k0:k0+kb] — one vector per row chunk.
    for (std::int64_t i = 0; i < rows; ++i) {
      VecF va = ctx.v_ld_g(a, a_base + (i0 + i) * k_ + k0, static_cast<int>(kb));
      ctx.v_st_l(kASlot + i, va);
    }

    // Inner loop: for each k, one B vector feeds FMAs for all staged rows;
    // A scalars are fetched in pairs so the Load slot keeps up with the VPU.
    for (std::int64_t kk = 0; kk < kb; ++kk) {
      const VecF vb = ctx.v_ld_l(kBSlot + kk);
      std::int64_t i = 0;
      for (; i + 1 < rows; i += 2) {
        const auto [a0, a1] = ctx.s_ld_l2(kASlot + i, static_cast<int>(kk),
                                          kASlot + i + 1, static_cast<int>(kk));
        acc[i] = ctx.v_madd_s(a0, vb, acc[i]);
        acc[i + 1] = ctx.v_madd_s(a1, vb, acc[i + 1]);
      }
      if (i < rows) {
        const float a0 = ctx.s_ld_l(kASlot + i, static_cast<int>(kk));
        acc[i] = ctx.v_madd_s(a0, vb, acc[i]);
      }
    }
  }

  for (std::int64_t i = 0; i < rows; ++i) {
    ctx.v_st_g(c, c_base + (i0 + i) * n_ + j0, acc[i], cols);
  }
}

std::uint64_t BatchedMatMulTpcKernel::flop_count() const {
  return 2ull * static_cast<std::uint64_t>(batch_) * m_ * n_ * k_;
}

}  // namespace gaudi::tpc

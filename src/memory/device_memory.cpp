#include "memory/device_memory.hpp"

#include <algorithm>
#include <sstream>

namespace gaudi::memory {

Allocation DeviceAllocator::allocate(std::size_t bytes, const std::string& tag) {
  if (in_use_ + bytes > capacity_) {
    std::ostringstream os;
    os << "HBM out of memory allocating " << bytes << " bytes";
    if (!tag.empty()) os << " for '" << tag << "'";
    os << " (in use " << in_use_ << " of " << capacity_ << ")";
    throw sim::ResourceExhausted(os.str());
  }
  in_use_ += bytes;
  peak_ = std::max(peak_, in_use_);
  const std::uint64_t id = next_id_++;
  live_.emplace(id, bytes);
  return Allocation{id, bytes};
}

Allocation DeviceAllocator::try_allocate(std::size_t bytes,
                                         const std::string& tag) {
  if (in_use_ + bytes > capacity_) return Allocation{};
  return allocate(bytes, tag);
}

void DeviceAllocator::release(const Allocation& a) {
  if (!a.valid()) {
    return;
  }
  auto it = live_.find(a.id);
  GAUDI_CHECK(it != live_.end(), "double free or foreign allocation handle");
  GAUDI_ASSERT(in_use_ >= it->second, "allocator accounting underflow");
  in_use_ -= it->second;
  live_.erase(it);
}

}  // namespace gaudi::memory

// Transfer-time models for HBM and the DMA engine.
//
// The DMA engine "streamlines the data exchange between MME and TPC using
// shared memory" (paper §2.1) and shows up as its own row in the paper's
// hardware traces (Fig 4); the graph runtime schedules DMA ops onto a
// dedicated engine queue using these costs.
#pragma once

#include <cstddef>

#include "sim/chip_config.hpp"
#include "sim/time.hpp"

namespace gaudi::memory {

/// HBM access time for a streaming transfer of `bytes`.
[[nodiscard]] sim::SimTime hbm_transfer_time(const sim::MemoryConfig& cfg,
                                             std::size_t bytes);

/// DMA engine time to move `bytes` between engines through shared memory
/// (setup + streaming at DMA bandwidth).
[[nodiscard]] sim::SimTime dma_transfer_time(const sim::MemoryConfig& cfg,
                                             std::size_t bytes);

/// Effective bandwidth (bytes/s) achieved by a DMA transfer of `bytes`,
/// including setup cost — useful for bandwidth microbenches.
[[nodiscard]] double dma_effective_bandwidth(const sim::MemoryConfig& cfg,
                                             std::size_t bytes);

}  // namespace gaudi::memory

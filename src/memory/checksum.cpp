#include "memory/checksum.hpp"

namespace gaudi::memory {

std::uint64_t fnv1a64(const std::byte* data, std::size_t n) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<std::uint64_t>(data[i]);
    h *= 0x100000001B3ull;
  }
  return h;
}

void ChecksumLedger::record(std::int64_t id, const std::byte* data,
                            std::size_t n) {
  sums_[id] = fnv1a64(data, n);
}

bool ChecksumLedger::verify(std::int64_t id, const std::byte* data,
                            std::size_t n) const {
  const auto it = sums_.find(id);
  if (it == sums_.end()) return true;
  return it->second == fnv1a64(data, n);
}

}  // namespace gaudi::memory

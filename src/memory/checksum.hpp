// Per-buffer integrity checksums for silent-data-corruption detection.
//
// The SDC fault class (sim/fault.hpp kSdcBitFlip) flips a bit in a live HBM
// buffer *between* ops — after the producer retires, before a consumer
// reads.  A sweep of the producer's output cannot see that; what catches it
// is remembering a checksum of every buffer as it retires and re-verifying
// it at each read.  The ledger stores one 64-bit FNV-1a hash per value id;
// guarded runs record on production and verify on consumption, turning a
// silent flip into a localized, attributable anomaly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>

namespace gaudi::memory {

/// 64-bit FNV-1a over a raw byte range.  Not cryptographic — a fast
/// order-sensitive hash with good single-bit diffusion, which is exactly the
/// corruption model the SDC fault class injects.
[[nodiscard]] std::uint64_t fnv1a64(const std::byte* data, std::size_t n);

/// Checksums of live buffers, keyed by the owning value id.
class ChecksumLedger {
 public:
  /// Records (or refreshes) the checksum of `id`'s bytes.
  void record(std::int64_t id, const std::byte* data, std::size_t n);

  [[nodiscard]] bool has(std::int64_t id) const { return sums_.count(id) != 0; }

  /// True when `id` has a recorded checksum and the bytes still match it.
  /// Unrecorded ids verify trivially (nothing to compare against).
  [[nodiscard]] bool verify(std::int64_t id, const std::byte* data,
                            std::size_t n) const;

  void forget(std::int64_t id) { sums_.erase(id); }
  [[nodiscard]] std::size_t size() const { return sums_.size(); }

 private:
  std::unordered_map<std::int64_t, std::uint64_t> sums_;
};

}  // namespace gaudi::memory

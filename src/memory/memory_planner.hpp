// Static (compile-time) HBM planning.
//
// The graph compiler replaces per-run refcounted allocation with a plan
// computed once: every device buffer gets a liveness interval in execution
// steps and a fixed byte offset assigned by a greedy first-fit free list, so
// buffers whose lifetimes do not overlap reuse the same bytes.  The dynamic
// `DeviceAllocator` stays as a run-time cross-check — within each step the
// planner performs allocations before frees, mirroring the allocator's
// per-node order, which makes the planned occupancy peak structurally equal
// to the allocator's observed peak.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "sim/error.hpp"

namespace gaudi::memory {

/// Liveness of one device buffer, in execution-step numbers (the compiler
/// uses node ids; any monotone step numbering works).
struct BufferInterval {
  static constexpr std::int64_t kPreGraph = -1;
  static constexpr std::int64_t kNeverFreed =
      std::numeric_limits<std::int64_t>::max();

  /// Step whose allocations include this buffer; kPreGraph for buffers
  /// resident before the first step (graph inputs and parameters).
  std::int64_t def = 0;
  /// Step whose frees include this buffer; kNeverFreed for buffers that
  /// live to the end of the run (inputs, parameters, graph outputs).
  std::int64_t free = kNeverFreed;
  std::size_t bytes = 0;
  std::string tag;  ///< names the buffer in ResourceExhausted messages

  /// Inclusive-overlap test: a buffer allocated in the same step another is
  /// freed coexists with it momentarily (allocations precede frees).
  [[nodiscard]] bool overlaps_in_time(const BufferInterval& o) const {
    return def <= o.free && o.def <= free;
  }
};

/// One planned buffer: a fixed [offset, offset + bytes) address range.
struct PlannedBuffer {
  std::size_t offset = 0;
  std::size_t bytes = 0;
};

struct MemoryPlan {
  /// Parallel to the intervals handed to plan_memory.
  std::vector<PlannedBuffer> buffers;
  /// Peak liveness-weighted occupancy — equals DeviceAllocator::peak() for
  /// the same allocation/free schedule by construction.
  std::size_t peak_bytes = 0;
  /// Arena extent after offset assignment (>= peak_bytes; the excess is
  /// first-fit fragmentation).
  std::size_t arena_bytes = 0;
  /// Sum of all buffer sizes: what a reuse-free layout would need.
  std::size_t total_bytes = 0;

  [[nodiscard]] std::size_t reuse_saved_bytes() const {
    return total_bytes > arena_bytes ? total_bytes - arena_bytes : 0;
  }
};

/// Assigns a static offset to every interval.  Buffers are placed in the
/// order they appear within each step; bytes freed in *earlier* steps are
/// reusable, bytes freed in the same step are not (allocations precede
/// frees, matching the dynamic allocator).  When `capacity_bytes` is
/// nonzero, throws sim::ResourceExhausted as soon as occupancy would exceed
/// it — the failure the dynamic allocator raises at run time, moved to
/// compile time.
[[nodiscard]] MemoryPlan plan_memory(const std::vector<BufferInterval>& intervals,
                                     std::size_t capacity_bytes = 0);

}  // namespace gaudi::memory

#include "memory/memory_planner.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace gaudi::memory {

namespace {

/// First-fit free-list arena: free blocks keyed by offset, coalesced on
/// release, growing at the end only when no existing block fits.
class Arena {
 public:
  std::size_t acquire(std::size_t bytes) {
    if (bytes == 0) return 0;
    for (auto it = free_.begin(); it != free_.end(); ++it) {
      if (it->second >= bytes) {
        const std::size_t offset = it->first;
        const std::size_t remaining = it->second - bytes;
        free_.erase(it);
        if (remaining > 0) free_.emplace(offset + bytes, remaining);
        return offset;
      }
    }
    const std::size_t offset = end_;
    end_ += bytes;
    return offset;
  }

  void release(std::size_t offset, std::size_t bytes) {
    if (bytes == 0) return;
    const auto [it, inserted] = free_.emplace(offset, bytes);
    GAUDI_ASSERT(inserted, "double free in static memory planner");
    const auto next = std::next(it);
    if (next != free_.end() && it->first + it->second == next->first) {
      it->second += next->second;
      free_.erase(next);
    }
    if (it != free_.begin()) {
      const auto prev = std::prev(it);
      if (prev->first + prev->second == it->first) {
        prev->second += it->second;
        free_.erase(it);
      }
    }
  }

  [[nodiscard]] std::size_t end() const { return end_; }

 private:
  std::map<std::size_t, std::size_t> free_;  // offset -> size
  std::size_t end_ = 0;
};

}  // namespace

MemoryPlan plan_memory(const std::vector<BufferInterval>& intervals,
                       std::size_t capacity_bytes) {
  MemoryPlan plan;
  plan.buffers.resize(intervals.size());

  // Per-step event lists, preserving the callers' within-step order.
  std::map<std::int64_t, std::vector<std::size_t>> allocs;
  std::map<std::int64_t, std::vector<std::size_t>> frees;
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    GAUDI_CHECK(intervals[i].def <= intervals[i].free,
                "buffer freed before it is defined: '" + intervals[i].tag + "'");
    allocs[intervals[i].def].push_back(i);
    if (intervals[i].free != BufferInterval::kNeverFreed) {
      frees[intervals[i].free].push_back(i);
    }
    plan.total_bytes += intervals[i].bytes;
  }

  Arena arena;
  std::size_t in_use = 0;
  auto free_it = frees.begin();
  for (const auto& [step, ids] : allocs) {
    // Bytes freed in strictly earlier steps become reusable; bytes freed in
    // this step do not (allocations precede frees within a step, exactly as
    // the dynamic allocator orders them within a node).
    for (; free_it != frees.end() && free_it->first < step; ++free_it) {
      for (const std::size_t i : free_it->second) {
        arena.release(plan.buffers[i].offset, plan.buffers[i].bytes);
        in_use -= intervals[i].bytes;
      }
    }
    for (const std::size_t i : ids) {
      const std::size_t bytes = intervals[i].bytes;
      if (capacity_bytes != 0 && in_use + bytes > capacity_bytes) {
        std::ostringstream os;
        os << "HBM out of memory allocating " << bytes << " bytes";
        if (!intervals[i].tag.empty()) os << " for '" << intervals[i].tag << "'";
        os << " (planned in use " << in_use << " of " << capacity_bytes << ")";
        throw sim::ResourceExhausted(os.str());
      }
      plan.buffers[i] = PlannedBuffer{arena.acquire(bytes), bytes};
      in_use += bytes;
      plan.peak_bytes = std::max(plan.peak_bytes, in_use);
    }
  }
  plan.arena_bytes = arena.end();
  return plan;
}

}  // namespace gaudi::memory

#include "memory/dma.hpp"

namespace gaudi::memory {

sim::SimTime hbm_transfer_time(const sim::MemoryConfig& cfg, std::size_t bytes) {
  const double stream_s =
      static_cast<double>(bytes) / cfg.hbm_bandwidth_bytes_per_s;
  return cfg.hbm_latency + sim::SimTime::from_seconds(stream_s);
}

sim::SimTime dma_transfer_time(const sim::MemoryConfig& cfg, std::size_t bytes) {
  const double stream_s =
      static_cast<double>(bytes) / cfg.dma_bandwidth_bytes_per_s;
  return cfg.dma_setup + sim::SimTime::from_seconds(stream_s);
}

double dma_effective_bandwidth(const sim::MemoryConfig& cfg, std::size_t bytes) {
  const sim::SimTime t = dma_transfer_time(cfg, bytes);
  if (t <= sim::SimTime::zero()) {
    return 0.0;
  }
  return static_cast<double>(bytes) / t.seconds();
}

}  // namespace gaudi::memory

// Simulated device (HBM) memory accounting.
//
// The paper's end-to-end configs are explicitly memory-limited ("Due to
// limited GAUDI memory, we set ... batch size ... as 8"); enforcing the
// 32 GB HBM budget lets the harness reproduce that constraint instead of
// silently ignoring it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>

#include "sim/chip_config.hpp"
#include "sim/error.hpp"

namespace gaudi::memory {

/// Opaque handle to a device allocation.
struct Allocation {
  std::uint64_t id = 0;
  std::size_t bytes = 0;
  [[nodiscard]] bool valid() const { return id != 0; }
};

/// Bump-counting HBM allocator with capacity enforcement and peak tracking.
///
/// We only model *occupancy*, not placement: fragmentation is not a
/// behaviour the paper measures, capacity exhaustion is.
class DeviceAllocator {
 public:
  explicit DeviceAllocator(const sim::MemoryConfig& cfg) : capacity_(cfg.hbm_bytes) {}
  explicit DeviceAllocator(std::size_t capacity_bytes) : capacity_(capacity_bytes) {}

  /// Throws sim::ResourceExhausted when the allocation would exceed HBM.
  [[nodiscard]] Allocation allocate(std::size_t bytes, const std::string& tag = "");

  /// Non-throwing variant for admission-control callers: returns an invalid
  /// handle (and changes nothing) when the allocation would exceed HBM.
  [[nodiscard]] Allocation try_allocate(std::size_t bytes,
                                        const std::string& tag = "");

  void release(const Allocation& a);

  [[nodiscard]] std::size_t in_use() const { return in_use_; }
  [[nodiscard]] std::size_t peak() const { return peak_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t live_allocations() const { return live_.size(); }

 private:
  std::size_t capacity_;
  std::size_t in_use_ = 0;
  std::size_t peak_ = 0;
  std::uint64_t next_id_ = 1;
  std::unordered_map<std::uint64_t, std::size_t> live_;
};

}  // namespace gaudi::memory

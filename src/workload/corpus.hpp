// Synthetic text workload.
//
// The paper feeds BookCorpus through HuggingFace tokenizers; the profiled
// compute depends only on the resulting token-id streams (sequence length,
// batch size, vocabulary), not on the prose.  SyntheticCorpus produces
// deterministic Zipf-distributed token ids — the empirical shape of natural
// language token frequencies — so functional runs see realistic id skew
// (e.g. embedding-gradient scatter hot rows) without shipping the dataset.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.hpp"
#include "tensor/tensor.hpp"

namespace gaudi::workload {

struct CorpusConfig {
  std::int64_t vocab = 50257;
  double zipf_s = 1.1;         ///< Zipf exponent (≈1.0–1.2 for natural text)
  std::uint64_t seed = 0xB00C; ///< corpus seed
};

class SyntheticCorpus {
 public:
  explicit SyntheticCorpus(CorpusConfig cfg);

  [[nodiscard]] const CorpusConfig& config() const { return cfg_; }

  /// Token id for global position `index` (pure function of seed+index).
  [[nodiscard]] std::int32_t token(std::uint64_t index) const;

  /// A batch of token ids [batch, seq_len], consuming positions starting at
  /// `cursor` (use consecutive cursors for an epoch-style stream).
  [[nodiscard]] tensor::Tensor batch(std::int64_t batch, std::int64_t seq_len,
                                     std::uint64_t cursor = 0) const;

  /// Next-token targets for `ids` [B, N]: the id at the following stream
  /// position, flattened to [B*N] — the causal-LM labels.
  [[nodiscard]] tensor::Tensor next_token_targets(std::int64_t batch,
                                                  std::int64_t seq_len,
                                                  std::uint64_t cursor = 0) const;

  /// Empirical frequency of the most common token over `samples` draws —
  /// used by tests to verify the Zipf skew.
  [[nodiscard]] double top_token_frequency(std::uint64_t samples) const;

 private:
  CorpusConfig cfg_;
  sim::CounterRng rng_;
  std::vector<double> cumulative_;  ///< CDF over ranks
};

}  // namespace gaudi::workload

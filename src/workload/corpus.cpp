#include "workload/corpus.hpp"

#include <algorithm>
#include <cmath>

#include "sim/error.hpp"

namespace gaudi::workload {

SyntheticCorpus::SyntheticCorpus(CorpusConfig cfg)
    : cfg_(cfg), rng_(cfg.seed, /*stream=*/0xC0) {
  GAUDI_CHECK(cfg_.vocab > 1, "corpus vocab must exceed 1");
  cumulative_.resize(static_cast<std::size_t>(cfg_.vocab));
  double acc = 0.0;
  for (std::int64_t r = 0; r < cfg_.vocab; ++r) {
    acc += 1.0 / std::pow(static_cast<double>(r + 1), cfg_.zipf_s);
    cumulative_[static_cast<std::size_t>(r)] = acc;
  }
  for (auto& c : cumulative_) c /= acc;
}

std::int32_t SyntheticCorpus::token(std::uint64_t index) const {
  const double u = static_cast<double>(rng_.uniform(index));
  const auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  const auto rank = static_cast<std::int64_t>(it - cumulative_.begin());
  // Scatter ranks over the id space so frequent tokens are not all low ids
  // (mirrors how real tokenizers assign ids).
  return static_cast<std::int32_t>(
      (rank * 2654435761ull + 17) % static_cast<std::uint64_t>(cfg_.vocab));
}

tensor::Tensor SyntheticCorpus::batch(std::int64_t batch, std::int64_t seq_len,
                                      std::uint64_t cursor) const {
  tensor::Tensor ids =
      tensor::Tensor::zeros(tensor::Shape{{batch, seq_len}}, tensor::DType::I32);
  auto out = ids.i32();
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = token(cursor + i);
  }
  return ids;
}

tensor::Tensor SyntheticCorpus::next_token_targets(std::int64_t batch,
                                                   std::int64_t seq_len,
                                                   std::uint64_t cursor) const {
  tensor::Tensor targets =
      tensor::Tensor::zeros(tensor::Shape{{batch * seq_len}}, tensor::DType::I32);
  auto out = targets.i32();
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = token(cursor + i + 1);
  }
  return targets;
}

double SyntheticCorpus::top_token_frequency(std::uint64_t samples) const {
  GAUDI_CHECK(samples > 0, "need at least one sample");
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(cfg_.vocab), 0);
  for (std::uint64_t i = 0; i < samples; ++i) {
    ++counts[static_cast<std::size_t>(token(i))];
  }
  const std::uint64_t top = *std::max_element(counts.begin(), counts.end());
  return static_cast<double>(top) / static_cast<double>(samples);
}

}  // namespace gaudi::workload

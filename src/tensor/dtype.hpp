// Data types supported by the simulated device.
//
// The TPC ISA supports float, bfloat16, INT32, INT16 and INT8 (paper §2.2);
// we carry the same set.  bf16 values are stored in their true 16-bit
// encoding and converted through round-to-nearest-even, so precision
// behaviour is faithful.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace gaudi::tensor {

enum class DType : std::uint8_t {
  F32,
  BF16,
  I32,
  I16,
  I8,
};

[[nodiscard]] constexpr std::size_t dtype_size(DType d) {
  switch (d) {
    case DType::F32:
    case DType::I32:
      return 4;
    case DType::BF16:
    case DType::I16:
      return 2;
    case DType::I8:
      return 1;
  }
  return 0;
}

[[nodiscard]] constexpr std::string_view dtype_name(DType d) {
  switch (d) {
    case DType::F32: return "f32";
    case DType::BF16: return "bf16";
    case DType::I32: return "i32";
    case DType::I16: return "i16";
    case DType::I8: return "i8";
  }
  return "?";
}

[[nodiscard]] constexpr bool is_floating(DType d) {
  return d == DType::F32 || d == DType::BF16;
}

/// f32 -> bf16 with round-to-nearest-even (hardware behaviour).
[[nodiscard]] std::uint16_t f32_to_bf16(float f);

/// bf16 -> f32 (exact).
[[nodiscard]] float bf16_to_f32(std::uint16_t b);

/// Round-trips a float through bf16 precision.
[[nodiscard]] inline float round_bf16(float f) { return bf16_to_f32(f32_to_bf16(f)); }

}  // namespace gaudi::tensor

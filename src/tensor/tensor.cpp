#include "tensor/tensor.hpp"

#include <algorithm>

namespace gaudi::tensor {

Tensor Tensor::full(Shape shape, float value, DType dtype) {
  Tensor t{std::move(shape), dtype};
  const std::int64_t n = t.numel();
  for (std::int64_t i = 0; i < n; ++i) t.set(i, value);
  return t;
}

Tensor Tensor::from_values(Shape shape, std::span<const float> values) {
  Tensor t{std::move(shape), DType::F32};
  GAUDI_CHECK(static_cast<std::int64_t>(values.size()) == t.numel(),
              "value count does not match shape");
  std::copy(values.begin(), values.end(), t.f32().begin());
  return t;
}

Tensor Tensor::uniform(Shape shape, sim::CounterRng rng, float lo, float hi) {
  Tensor t{std::move(shape), DType::F32};
  auto out = t.f32();
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = rng.uniform(i, lo, hi);
  }
  return t;
}

Tensor Tensor::normal(Shape shape, sim::CounterRng rng, float stddev) {
  Tensor t{std::move(shape), DType::F32};
  auto out = t.f32();
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = rng.normal(i) * stddev;
  }
  return t;
}

Tensor Tensor::random_tokens(Shape shape, sim::CounterRng rng, std::int64_t vocab) {
  GAUDI_CHECK(vocab > 0, "vocab must be positive");
  Tensor t{std::move(shape), DType::I32};
  auto out = t.i32();
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<std::int32_t>(rng.below(i, static_cast<std::uint64_t>(vocab)));
  }
  return t;
}

float Tensor::at(std::int64_t i) const {
  GAUDI_CHECK(defined() && i >= 0 && i < numel(), "tensor index out of range");
  switch (dtype_) {
    case DType::F32:
      return reinterpret_cast<const float*>(storage_->data())[i];
    case DType::BF16:
      return bf16_to_f32(reinterpret_cast<const std::uint16_t*>(storage_->data())[i]);
    case DType::I32:
      return static_cast<float>(
          reinterpret_cast<const std::int32_t*>(storage_->data())[i]);
    case DType::I16:
      return static_cast<float>(
          reinterpret_cast<const std::int16_t*>(storage_->data())[i]);
    case DType::I8:
      return static_cast<float>(
          reinterpret_cast<const std::int8_t*>(storage_->data())[i]);
  }
  return 0.0f;
}

void Tensor::set(std::int64_t i, float value) {
  GAUDI_CHECK(defined() && i >= 0 && i < numel(), "tensor index out of range");
  switch (dtype_) {
    case DType::F32:
      reinterpret_cast<float*>(storage_->data())[i] = value;
      return;
    case DType::BF16:
      reinterpret_cast<std::uint16_t*>(storage_->data())[i] = f32_to_bf16(value);
      return;
    case DType::I32:
      reinterpret_cast<std::int32_t*>(storage_->data())[i] =
          static_cast<std::int32_t>(value);
      return;
    case DType::I16:
      reinterpret_cast<std::int16_t*>(storage_->data())[i] =
          static_cast<std::int16_t>(value);
      return;
    case DType::I8:
      reinterpret_cast<std::int8_t*>(storage_->data())[i] =
          static_cast<std::int8_t>(value);
      return;
  }
}

Tensor Tensor::clone() const {
  GAUDI_CHECK(defined(), "cannot clone an undefined tensor");
  Tensor t{shape_, dtype_};
  std::memcpy(t.storage_->data(), storage_->data(), nbytes());
  return t;
}

Tensor Tensor::to(DType target) const {
  GAUDI_CHECK(defined(), "cannot convert an undefined tensor");
  if (target == dtype_) {
    return clone();
  }
  GAUDI_CHECK(is_floating(dtype_) && is_floating(target),
              "only f32<->bf16 conversions are supported");
  Tensor t{shape_, target};
  const std::int64_t n = numel();
  for (std::int64_t i = 0; i < n; ++i) {
    t.set(i, at(i));
  }
  return t;
}

}  // namespace gaudi::tensor

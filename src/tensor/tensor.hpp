// Host-resident tensor with shared, contiguous, row-major storage.
//
// This is the functional-math substrate under both compute engines: TPC
// kernels and the MME read and write these buffers when the simulator runs
// in functional mode.  Copies are shallow (shared storage) as in frameworks;
// `clone()` deep-copies.
#pragma once

#include <cstring>
#include <memory>
#include <span>
#include <vector>

#include "sim/error.hpp"
#include "sim/rng.hpp"
#include "tensor/dtype.hpp"
#include "tensor/shape.hpp"

namespace gaudi::tensor {

class Tensor {
 public:
  Tensor() = default;

  /// Allocates a zero-initialized tensor.
  Tensor(Shape shape, DType dtype)
      : shape_(std::move(shape)),
        dtype_(dtype),
        storage_(std::make_shared<std::vector<std::byte>>(
            static_cast<std::size_t>(shape_.numel()) * dtype_size(dtype))) {}

  [[nodiscard]] static Tensor zeros(Shape shape, DType dtype = DType::F32) {
    return Tensor{std::move(shape), dtype};
  }
  /// Shape/dtype carrier without storage — used by the timing-only execution
  /// mode, where kernels run with phantom memory and never touch data.
  [[nodiscard]] static Tensor phantom(Shape shape, DType dtype = DType::F32) {
    Tensor t;
    t.shape_ = std::move(shape);
    t.dtype_ = dtype;
    return t;
  }
  [[nodiscard]] static Tensor full(Shape shape, float value, DType dtype = DType::F32);
  [[nodiscard]] static Tensor from_values(Shape shape, std::span<const float> values);
  /// Uniform in [lo, hi) from a counter RNG (deterministic per seed/stream).
  [[nodiscard]] static Tensor uniform(Shape shape, sim::CounterRng rng,
                                      float lo = 0.0f, float hi = 1.0f);
  /// Standard-normal entries scaled by `stddev`.
  [[nodiscard]] static Tensor normal(Shape shape, sim::CounterRng rng,
                                     float stddev = 1.0f);
  /// Integer token ids in [0, vocab) stored as I32.
  [[nodiscard]] static Tensor random_tokens(Shape shape, sim::CounterRng rng,
                                            std::int64_t vocab);

  [[nodiscard]] bool defined() const { return storage_ != nullptr; }
  [[nodiscard]] const Shape& shape() const { return shape_; }
  [[nodiscard]] DType dtype() const { return dtype_; }
  [[nodiscard]] std::int64_t numel() const { return shape_.numel(); }
  [[nodiscard]] std::size_t nbytes() const {
    return static_cast<std::size_t>(numel()) * dtype_size(dtype_);
  }

  /// Typed element access; only valid for the matching dtype.
  [[nodiscard]] std::span<float> f32() {
    GAUDI_CHECK(dtype_ == DType::F32, "tensor is not f32");
    return {reinterpret_cast<float*>(storage_->data()), static_cast<std::size_t>(numel())};
  }
  [[nodiscard]] std::span<const float> f32() const {
    GAUDI_CHECK(dtype_ == DType::F32, "tensor is not f32");
    return {reinterpret_cast<const float*>(storage_->data()),
            static_cast<std::size_t>(numel())};
  }
  [[nodiscard]] std::span<std::int32_t> i32() {
    GAUDI_CHECK(dtype_ == DType::I32, "tensor is not i32");
    return {reinterpret_cast<std::int32_t*>(storage_->data()),
            static_cast<std::size_t>(numel())};
  }
  [[nodiscard]] std::span<const std::int32_t> i32() const {
    GAUDI_CHECK(dtype_ == DType::I32, "tensor is not i32");
    return {reinterpret_cast<const std::int32_t*>(storage_->data()),
            static_cast<std::size_t>(numel())};
  }
  [[nodiscard]] std::span<std::uint16_t> bf16() {
    GAUDI_CHECK(dtype_ == DType::BF16, "tensor is not bf16");
    return {reinterpret_cast<std::uint16_t*>(storage_->data()),
            static_cast<std::size_t>(numel())};
  }
  [[nodiscard]] std::span<const std::uint16_t> bf16() const {
    GAUDI_CHECK(dtype_ == DType::BF16, "tensor is not bf16");
    return {reinterpret_cast<const std::uint16_t*>(storage_->data()),
            static_cast<std::size_t>(numel())};
  }

  /// Mutable access through a const handle: like shared_ptr, constness of
  /// the Tensor handle does not imply constness of the shared buffer.
  [[nodiscard]] std::span<float> f32_mut() const {
    GAUDI_CHECK(dtype_ == DType::F32, "tensor is not f32");
    return {reinterpret_cast<float*>(storage_->data()),
            static_cast<std::size_t>(numel())};
  }
  [[nodiscard]] std::span<std::int32_t> i32_mut() const {
    GAUDI_CHECK(dtype_ == DType::I32, "tensor is not i32");
    return {reinterpret_cast<std::int32_t*>(storage_->data()),
            static_cast<std::size_t>(numel())};
  }

  [[nodiscard]] std::byte* raw() { return storage_->data(); }
  [[nodiscard]] const std::byte* raw() const { return storage_->data(); }

  /// Element read as float regardless of dtype (integers converted).
  [[nodiscard]] float at(std::int64_t linear_index) const;
  void set(std::int64_t linear_index, float value);

  /// Deep copy.
  [[nodiscard]] Tensor clone() const;

  /// Same storage, new shape (element count preserved).
  [[nodiscard]] Tensor reshape(Shape new_shape) const {
    GAUDI_CHECK(new_shape.numel() == numel(), "reshape changes element count");
    Tensor t = *this;
    t.shape_ = std::move(new_shape);
    return t;
  }

  /// Converted copy (f32 <-> bf16 supported; identity otherwise checked).
  [[nodiscard]] Tensor to(DType target) const;

  /// True if storages alias.
  [[nodiscard]] bool aliases(const Tensor& o) const { return storage_ == o.storage_; }

 private:
  Shape shape_{};
  DType dtype_ = DType::F32;
  std::shared_ptr<std::vector<std::byte>> storage_;
};

}  // namespace gaudi::tensor

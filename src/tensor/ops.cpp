#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

#include "sim/thread_pool.hpp"

namespace gaudi::tensor::ops {

namespace {

void check_f32(const Tensor& t, const char* what) {
  GAUDI_CHECK(t.defined() && t.dtype() == DType::F32, std::string(what) + ": f32 tensor required");
}

/// Inner kernel: C[m,n] += A[m,k] @ B[k,n] over a row range, k-blocked so the
/// B panel stays cache-resident.
void gemm_rows(const float* a, const float* b, float* c, std::int64_t row_begin,
               std::int64_t row_end, std::int64_t k, std::int64_t n) {
  constexpr std::int64_t kBlock = 256;
  for (std::int64_t k0 = 0; k0 < k; k0 += kBlock) {
    const std::int64_t k1 = std::min(k, k0 + kBlock);
    for (std::int64_t i = row_begin; i < row_end; ++i) {
      float* ci = c + i * n;
      const float* ai = a + i * k;
      for (std::int64_t kk = k0; kk < k1; ++kk) {
        const float aik = ai[kk];
        if (aik == 0.0f) continue;
        const float* bk = b + kk * n;
        for (std::int64_t j = 0; j < n; ++j) {
          ci[j] += aik * bk[j];
        }
      }
    }
  }
}

}  // namespace

void gemm(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate) {
  check_f32(a, "gemm A");
  check_f32(b, "gemm B");
  check_f32(c, "gemm C");
  GAUDI_CHECK(a.shape().rank() == 2 && b.shape().rank() == 2 && c.shape().rank() == 2,
              "gemm expects rank-2 tensors");
  const std::int64_t m = a.shape()[0];
  const std::int64_t k = a.shape()[1];
  const std::int64_t n = b.shape()[1];
  GAUDI_CHECK(b.shape()[0] == k, "gemm inner dims mismatch");
  GAUDI_CHECK(c.shape()[0] == m && c.shape()[1] == n, "gemm output shape mismatch");

  float* cp = c.f32().data();
  if (!accumulate) {
    std::fill_n(cp, m * n, 0.0f);
  }
  const float* ap = a.f32().data();
  const float* bp = b.f32().data();

  const std::int64_t work = m * n * k;
  if (work < (1 << 18)) {
    gemm_rows(ap, bp, cp, 0, m, k, n);
    return;
  }
  sim::ThreadPool::global().parallel_for_chunks(
      static_cast<std::size_t>(m), [&](std::size_t begin, std::size_t end) {
        gemm_rows(ap, bp, cp, static_cast<std::int64_t>(begin),
                  static_cast<std::int64_t>(end), k, n);
      });
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  check_f32(a, "matmul A");
  check_f32(b, "matmul B");
  GAUDI_CHECK(a.shape().rank() >= 2 && b.shape().rank() >= 2,
              "matmul expects rank >= 2");
  const std::int64_t m = a.shape()[a.shape().rank() - 2];
  const std::int64_t k = a.shape()[a.shape().rank() - 1];
  const std::int64_t kb = b.shape()[b.shape().rank() - 2];
  const std::int64_t n = b.shape()[b.shape().rank() - 1];
  GAUDI_CHECK(k == kb, "matmul inner dims mismatch");

  const std::int64_t batch_a = a.shape().batch_count(2);
  const std::int64_t batch_b = b.shape().batch_count(2);
  GAUDI_CHECK(batch_a == batch_b || batch_b == 1,
              "matmul batch dims must match (or B be unbatched)");

  // Output shape: a's batch dims + [m, n].
  std::vector<std::int64_t> out_dims(a.shape().dims().begin(),
                                     a.shape().dims().end());
  out_dims[out_dims.size() - 2] = m;
  out_dims[out_dims.size() - 1] = n;
  Tensor out{Shape{std::span<const std::int64_t>(out_dims)}, DType::F32};

  const float* ap = a.f32().data();
  const float* bp = b.f32().data();
  float* op = out.f32().data();
  const std::int64_t a_stride = m * k;
  const std::int64_t b_stride = (batch_b == 1) ? 0 : kb * n;
  const std::int64_t o_stride = m * n;

  const std::int64_t work = batch_a * m * n * k;
  auto run_batch = [&](std::int64_t batch) {
    gemm_rows(ap + batch * a_stride, bp + batch * b_stride, op + batch * o_stride,
              0, m, k, n);
  };
  // Output starts zeroed (Tensor ctor), so gemm_rows can accumulate directly.
  if (work < (1 << 18) || batch_a == 1) {
    if (batch_a == 1 && work >= (1 << 18)) {
      sim::ThreadPool::global().parallel_for_chunks(
          static_cast<std::size_t>(m), [&](std::size_t begin, std::size_t end) {
            gemm_rows(ap, bp, op, static_cast<std::int64_t>(begin),
                      static_cast<std::int64_t>(end), k, n);
          });
    } else {
      for (std::int64_t bidx = 0; bidx < batch_a; ++bidx) run_batch(bidx);
    }
  } else {
    sim::ThreadPool::global().parallel_for(
        static_cast<std::size_t>(batch_a),
        [&](std::size_t bidx) { run_batch(static_cast<std::int64_t>(bidx)); });
  }
  return out;
}

Tensor transpose_last2(const Tensor& t) {
  check_f32(t, "transpose");
  GAUDI_CHECK(t.shape().rank() >= 2, "transpose expects rank >= 2");
  const std::int64_t m = t.shape()[t.shape().rank() - 2];
  const std::int64_t n = t.shape()[t.shape().rank() - 1];
  const std::int64_t batch = t.shape().batch_count(2);

  std::vector<std::int64_t> out_dims(t.shape().dims().begin(), t.shape().dims().end());
  std::swap(out_dims[out_dims.size() - 2], out_dims[out_dims.size() - 1]);
  Tensor out{Shape{std::span<const std::int64_t>(out_dims)}, DType::F32};

  const float* ip = t.f32().data();
  float* op = out.f32().data();
  for (std::int64_t b = 0; b < batch; ++b) {
    const float* src = ip + b * m * n;
    float* dst = op + b * m * n;
    for (std::int64_t i = 0; i < m; ++i) {
      for (std::int64_t j = 0; j < n; ++j) {
        dst[j * m + i] = src[i * n + j];
      }
    }
  }
  return out;
}

Tensor unary(const Tensor& t, const std::function<float(float)>& f) {
  check_f32(t, "unary");
  Tensor out{t.shape(), DType::F32};
  auto in = t.f32();
  auto o = out.f32();
  for (std::size_t i = 0; i < in.size(); ++i) o[i] = f(in[i]);
  return out;
}

Tensor exp(const Tensor& t) { return unary(t, [](float x) { return std::exp(x); }); }
Tensor log(const Tensor& t) { return unary(t, [](float x) { return std::log(x); }); }
Tensor sqrt(const Tensor& t) { return unary(t, [](float x) { return std::sqrt(x); }); }
Tensor square(const Tensor& t) { return unary(t, [](float x) { return x * x; }); }
Tensor relu(const Tensor& t) { return unary(t, [](float x) { return x > 0 ? x : 0.0f; }); }
Tensor leaky_relu(const Tensor& t, float slope) {
  return unary(t, [slope](float x) { return x > 0 ? x : slope * x; });
}
Tensor elu(const Tensor& t, float alpha) {
  return unary(t, [alpha](float x) { return x > 0 ? x : alpha * (std::exp(x) - 1.0f); });
}
Tensor gelu(const Tensor& t) {
  return unary(t, [](float x) {
    constexpr float c = 0.7978845608f;  // sqrt(2/pi)
    return 0.5f * x * (1.0f + std::tanh(c * (x + 0.044715f * x * x * x)));
  });
}
Tensor sigmoid(const Tensor& t) {
  return unary(t, [](float x) { return 1.0f / (1.0f + std::exp(-x)); });
}
Tensor tanh(const Tensor& t) { return unary(t, [](float x) { return std::tanh(x); }); }

namespace {
Tensor binary(const Tensor& a, const Tensor& b, const char* what, float (*f)(float, float)) {
  check_f32(a, what);
  check_f32(b, what);
  GAUDI_CHECK(a.shape() == b.shape(), std::string(what) + ": shapes must match");
  Tensor out{a.shape(), DType::F32};
  auto pa = a.f32();
  auto pb = b.f32();
  auto po = out.f32();
  for (std::size_t i = 0; i < pa.size(); ++i) po[i] = f(pa[i], pb[i]);
  return out;
}
}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  return binary(a, b, "add", [](float x, float y) { return x + y; });
}
Tensor sub(const Tensor& a, const Tensor& b) {
  return binary(a, b, "sub", [](float x, float y) { return x - y; });
}
Tensor mul(const Tensor& a, const Tensor& b) {
  return binary(a, b, "mul", [](float x, float y) { return x * y; });
}
Tensor div(const Tensor& a, const Tensor& b) {
  return binary(a, b, "div", [](float x, float y) { return x / y; });
}

Tensor add_scalar(const Tensor& t, float s) {
  return unary(t, [s](float x) { return x + s; });
}
Tensor mul_scalar(const Tensor& t, float s) {
  return unary(t, [s](float x) { return x * s; });
}

namespace {
Tensor rowvec_op(const Tensor& t, const Tensor& v, const char* what,
                 float (*f)(float, float)) {
  check_f32(t, what);
  check_f32(v, what);
  GAUDI_CHECK(v.shape().rank() == 1, std::string(what) + ": vector must be rank-1");
  const std::int64_t d = v.shape()[0];
  GAUDI_CHECK(t.shape()[t.shape().rank() - 1] == d,
              std::string(what) + ": trailing dim must match vector length");
  Tensor out{t.shape(), DType::F32};
  auto pt = t.f32();
  auto pv = v.f32();
  auto po = out.f32();
  const std::int64_t rows = t.numel() / d;
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t j = 0; j < d; ++j) {
      po[r * d + j] = f(pt[r * d + j], pv[j]);
    }
  }
  return out;
}
}  // namespace

Tensor add_rowvec(const Tensor& t, const Tensor& v) {
  return rowvec_op(t, v, "add_rowvec", [](float x, float y) { return x + y; });
}
Tensor mul_rowvec(const Tensor& t, const Tensor& v) {
  return rowvec_op(t, v, "mul_rowvec", [](float x, float y) { return x * y; });
}

namespace {
Tensor reduce_lastdim(const Tensor& t, const char* what, float init,
                      float (*f)(float, float), bool mean) {
  check_f32(t, what);
  const std::int64_t d = t.shape()[t.shape().rank() - 1];
  const std::int64_t rows = t.numel() / d;
  std::vector<std::int64_t> out_dims(t.shape().dims().begin(), t.shape().dims().end());
  out_dims.back() = 1;
  Tensor out{Shape{std::span<const std::int64_t>(out_dims)}, DType::F32};
  auto pt = t.f32();
  auto po = out.f32();
  for (std::int64_t r = 0; r < rows; ++r) {
    float acc = init;
    for (std::int64_t j = 0; j < d; ++j) acc = f(acc, pt[r * d + j]);
    po[r] = mean ? acc / static_cast<float>(d) : acc;
  }
  return out;
}
}  // namespace

Tensor sum_lastdim(const Tensor& t) {
  return reduce_lastdim(t, "sum_lastdim", 0.0f, [](float a, float b) { return a + b; },
                        false);
}
Tensor max_lastdim(const Tensor& t) {
  return reduce_lastdim(t, "max_lastdim", -std::numeric_limits<float>::infinity(),
                        [](float a, float b) { return a > b ? a : b; }, false);
}
Tensor mean_lastdim(const Tensor& t) {
  return reduce_lastdim(t, "mean_lastdim", 0.0f, [](float a, float b) { return a + b; },
                        true);
}

double sum_all(const Tensor& t) {
  check_f32(t, "sum_all");
  double acc = 0.0;
  for (float x : t.f32()) acc += static_cast<double>(x);
  return acc;
}

Tensor softmax_lastdim(const Tensor& t) {
  check_f32(t, "softmax");
  const std::int64_t d = t.shape()[t.shape().rank() - 1];
  const std::int64_t rows = t.numel() / d;
  Tensor out{t.shape(), DType::F32};
  auto pt = t.f32();
  auto po = out.f32();
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* in = pt.data() + r * d;
    float* o = po.data() + r * d;
    float mx = -std::numeric_limits<float>::infinity();
    for (std::int64_t j = 0; j < d; ++j) mx = std::max(mx, in[j]);
    float sum = 0.0f;
    for (std::int64_t j = 0; j < d; ++j) {
      o[j] = std::exp(in[j] - mx);
      sum += o[j];
    }
    const float inv = 1.0f / sum;
    for (std::int64_t j = 0; j < d; ++j) o[j] *= inv;
  }
  return out;
}

Tensor log_softmax_lastdim(const Tensor& t) {
  check_f32(t, "log_softmax");
  const std::int64_t d = t.shape()[t.shape().rank() - 1];
  const std::int64_t rows = t.numel() / d;
  Tensor out{t.shape(), DType::F32};
  auto pt = t.f32();
  auto po = out.f32();
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* in = pt.data() + r * d;
    float* o = po.data() + r * d;
    float mx = -std::numeric_limits<float>::infinity();
    for (std::int64_t j = 0; j < d; ++j) mx = std::max(mx, in[j]);
    double sum = 0.0;
    for (std::int64_t j = 0; j < d; ++j) sum += std::exp(static_cast<double>(in[j] - mx));
    const float lse = mx + static_cast<float>(std::log(sum));
    for (std::int64_t j = 0; j < d; ++j) o[j] = in[j] - lse;
  }
  return out;
}

Tensor layernorm_lastdim(const Tensor& t, const Tensor& gamma, const Tensor& beta,
                         float eps) {
  check_f32(t, "layernorm");
  check_f32(gamma, "layernorm gamma");
  check_f32(beta, "layernorm beta");
  const std::int64_t d = t.shape()[t.shape().rank() - 1];
  GAUDI_CHECK(gamma.shape().rank() == 1 && gamma.shape()[0] == d,
              "layernorm gamma must be [D]");
  GAUDI_CHECK(beta.shape().rank() == 1 && beta.shape()[0] == d,
              "layernorm beta must be [D]");
  const std::int64_t rows = t.numel() / d;
  Tensor out{t.shape(), DType::F32};
  auto pt = t.f32();
  auto pg = gamma.f32();
  auto pb = beta.f32();
  auto po = out.f32();
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* in = pt.data() + r * d;
    float* o = po.data() + r * d;
    double mean = 0.0;
    for (std::int64_t j = 0; j < d; ++j) mean += in[j];
    mean /= static_cast<double>(d);
    double var = 0.0;
    for (std::int64_t j = 0; j < d; ++j) {
      const double diff = in[j] - mean;
      var += diff * diff;
    }
    var /= static_cast<double>(d);
    const float inv = static_cast<float>(1.0 / std::sqrt(var + eps));
    const float m = static_cast<float>(mean);
    for (std::int64_t j = 0; j < d; ++j) {
      o[j] = (in[j] - m) * inv * pg[j] + pb[j];
    }
  }
  return out;
}

Tensor embedding_gather(const Tensor& table, const Tensor& ids) {
  check_f32(table, "embedding table");
  GAUDI_CHECK(ids.dtype() == DType::I32, "embedding ids must be i32");
  GAUDI_CHECK(table.shape().rank() == 2, "embedding table must be [V, D]");
  const std::int64_t v = table.shape()[0];
  const std::int64_t d = table.shape()[1];

  std::vector<std::int64_t> out_dims(ids.shape().dims().begin(),
                                     ids.shape().dims().end());
  out_dims.push_back(d);
  Tensor out{Shape{std::span<const std::int64_t>(out_dims)}, DType::F32};
  auto pt = table.f32();
  auto pid = ids.i32();
  auto po = out.f32();
  for (std::size_t i = 0; i < pid.size(); ++i) {
    const std::int64_t id = pid[i];
    GAUDI_CHECK(id >= 0 && id < v, "embedding id out of vocabulary");
    std::copy_n(pt.data() + id * d, d, po.data() + static_cast<std::int64_t>(i) * d);
  }
  return out;
}

double cross_entropy(const Tensor& logits, const Tensor& targets, Tensor* dlogits) {
  check_f32(logits, "cross_entropy logits");
  GAUDI_CHECK(targets.dtype() == DType::I32, "cross_entropy targets must be i32");
  GAUDI_CHECK(logits.shape().rank() == 2, "cross_entropy expects [N, V] logits");
  const std::int64_t n = logits.shape()[0];
  const std::int64_t v = logits.shape()[1];
  GAUDI_CHECK(targets.numel() == n, "cross_entropy target count mismatch");

  const Tensor lsm = log_softmax_lastdim(logits);
  auto pl = lsm.f32();
  auto pt = targets.i32();
  double loss = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t t = pt[i];
    GAUDI_CHECK(t >= 0 && t < v, "cross_entropy target out of range");
    loss -= pl[i * v + t];
  }
  loss /= static_cast<double>(n);

  if (dlogits != nullptr) {
    *dlogits = Tensor{logits.shape(), DType::F32};
    auto pd = dlogits->f32();
    const float inv_n = 1.0f / static_cast<float>(n);
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t j = 0; j < v; ++j) {
        const float p = std::exp(pl[i * v + j]);
        pd[i * v + j] = (p - (j == pt[i] ? 1.0f : 0.0f)) * inv_n;
      }
    }
  }
  return loss;
}

double max_abs_diff(const Tensor& a, const Tensor& b) {
  GAUDI_CHECK(a.shape() == b.shape(), "max_abs_diff: shapes must match");
  double mx = 0.0;
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    mx = std::max(mx, std::abs(static_cast<double>(a.at(i)) - b.at(i)));
  }
  return mx;
}

double max_rel_diff(const Tensor& a, const Tensor& b, double floor) {
  GAUDI_CHECK(a.shape() == b.shape(), "max_rel_diff: shapes must match");
  double mx = 0.0;
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    const double x = a.at(i);
    const double y = b.at(i);
    const double denom = std::max({std::abs(x), std::abs(y), floor});
    mx = std::max(mx, std::abs(x - y) / denom);
  }
  return mx;
}

sim::NumericsStats numerics_sweep(const Tensor& t) {
  if (!t.defined()) return {};
  switch (t.dtype()) {
    case DType::F32:
      return sim::sweep_f32(t.f32());
    case DType::BF16:
      return sim::sweep_bf16(t.bf16());
    default:
      return {};
  }
}

void poison_fill(Tensor& t) {
  if (!t.defined()) return;
  if (t.dtype() == DType::F32) {
    // Byte-wise copy: assigning a signaling NaN through a float lvalue may
    // quiet it on some FPUs, which would defeat the sentinel pattern.
    const std::uint32_t p = sim::kPoisonBitsF32;
    std::byte* bytes = t.raw();
    for (std::int64_t i = 0; i < t.numel(); ++i) {
      std::memcpy(bytes + i * 4, &p, sizeof(p));
    }
  } else if (t.dtype() == DType::BF16) {
    for (std::uint16_t& b : t.bf16()) b = sim::kPoisonBitsBf16;
  }
}

bool allclose(const Tensor& a, const Tensor& b, double atol, double rtol) {
  if (!(a.shape() == b.shape())) return false;
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    const double x = a.at(i);
    const double y = b.at(i);
    if (std::isnan(x) || std::isnan(y)) return false;
    if (std::abs(x - y) > atol + rtol * std::abs(y)) return false;
  }
  return true;
}

}  // namespace gaudi::tensor::ops

// Reference host math on tensors.
//
// These routines define the *semantics* the simulated engines must match:
// every TPC kernel and the MME functional path is tested against them.  They
// are also the workhorse for model-level gradient checks.  Performance only
// matters enough to keep tests fast (the GEMM is blocked and threaded).
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "sim/numerics.hpp"
#include "tensor/tensor.hpp"

namespace gaudi::tensor::ops {

// ---------------------------------------------------------------------------
// Matrix products
// ---------------------------------------------------------------------------

/// C[m,n] = A[m,k] @ B[k,n] (f32).  `accumulate` adds into existing C.
void gemm(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate = false);

/// Batched matmul over the trailing two dims.  Batch dims of `a` and `b` must
/// match, or `b` may be rank-2 (shared right operand, e.g. weights).
[[nodiscard]] Tensor matmul(const Tensor& a, const Tensor& b);

/// Swap the trailing two dims (copying).
[[nodiscard]] Tensor transpose_last2(const Tensor& t);

// ---------------------------------------------------------------------------
// Element-wise
// ---------------------------------------------------------------------------

[[nodiscard]] Tensor unary(const Tensor& t, const std::function<float(float)>& f);

[[nodiscard]] Tensor exp(const Tensor& t);
[[nodiscard]] Tensor log(const Tensor& t);
[[nodiscard]] Tensor sqrt(const Tensor& t);
[[nodiscard]] Tensor square(const Tensor& t);
[[nodiscard]] Tensor relu(const Tensor& t);
[[nodiscard]] Tensor leaky_relu(const Tensor& t, float slope = 0.01f);
[[nodiscard]] Tensor elu(const Tensor& t, float alpha = 1.0f);
[[nodiscard]] Tensor gelu(const Tensor& t);  ///< tanh approximation, as deployed
[[nodiscard]] Tensor sigmoid(const Tensor& t);
[[nodiscard]] Tensor tanh(const Tensor& t);

[[nodiscard]] Tensor add(const Tensor& a, const Tensor& b);
[[nodiscard]] Tensor sub(const Tensor& a, const Tensor& b);
[[nodiscard]] Tensor mul(const Tensor& a, const Tensor& b);
[[nodiscard]] Tensor div(const Tensor& a, const Tensor& b);

[[nodiscard]] Tensor add_scalar(const Tensor& t, float s);
[[nodiscard]] Tensor mul_scalar(const Tensor& t, float s);

/// rows of `t` ([..., D]) plus vector `v` ([D]).
[[nodiscard]] Tensor add_rowvec(const Tensor& t, const Tensor& v);
[[nodiscard]] Tensor mul_rowvec(const Tensor& t, const Tensor& v);

// ---------------------------------------------------------------------------
// Reductions & normalizations (over the last dim)
// ---------------------------------------------------------------------------

[[nodiscard]] Tensor sum_lastdim(const Tensor& t);   ///< [..., D] -> [..., 1]
[[nodiscard]] Tensor max_lastdim(const Tensor& t);   ///< [..., D] -> [..., 1]
[[nodiscard]] Tensor mean_lastdim(const Tensor& t);  ///< [..., D] -> [..., 1]
[[nodiscard]] double sum_all(const Tensor& t);

[[nodiscard]] Tensor softmax_lastdim(const Tensor& t);
[[nodiscard]] Tensor log_softmax_lastdim(const Tensor& t);
[[nodiscard]] Tensor layernorm_lastdim(const Tensor& t, const Tensor& gamma,
                                       const Tensor& beta, float eps = 1e-5f);

// ---------------------------------------------------------------------------
// NLP helpers
// ---------------------------------------------------------------------------

/// out[i, :] = table[ids[i], :] for flattened ids; result [..., D].
[[nodiscard]] Tensor embedding_gather(const Tensor& table, const Tensor& ids);

/// Mean cross-entropy of logits [N, V] against I32 targets [N]; also returns
/// dLoss/dlogits when `dlogits` is non-null.
[[nodiscard]] double cross_entropy(const Tensor& logits, const Tensor& targets,
                                   Tensor* dlogits = nullptr);

// ---------------------------------------------------------------------------
// Numerics sentinel
// ---------------------------------------------------------------------------

/// Single-pass classification of a tensor's elements (see sim/numerics.hpp).
/// Undefined (phantom) and integer tensors return empty stats — the sweep
/// exists for floating data.
[[nodiscard]] sim::NumericsStats numerics_sweep(const Tensor& t);

/// Fills a floating tensor with the signaling-NaN poison pattern (no-op for
/// integer dtypes): guarded runs pre-fill fresh output buffers so a kernel
/// reading its output before writing it trips the sweep instead of seeing
/// lucky zeros.
void poison_fill(Tensor& t);

// ---------------------------------------------------------------------------
// Comparison utilities
// ---------------------------------------------------------------------------

[[nodiscard]] double max_abs_diff(const Tensor& a, const Tensor& b);
[[nodiscard]] double max_rel_diff(const Tensor& a, const Tensor& b, double floor = 1e-6);
[[nodiscard]] bool allclose(const Tensor& a, const Tensor& b, double atol = 1e-5,
                            double rtol = 1e-5);

}  // namespace gaudi::tensor::ops

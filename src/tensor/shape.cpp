#include "tensor/shape.hpp"

#include <sstream>

namespace gaudi::tensor {

std::string Shape::to_string() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < rank_; ++i) {
    if (i) os << ", ";
    os << dims_[i];
  }
  os << "]";
  return os.str();
}

}  // namespace gaudi::tensor

#include "tensor/dtype.hpp"

#include <bit>
#include <cmath>

namespace gaudi::tensor {

std::uint16_t f32_to_bf16(float f) {
  const std::uint32_t bits = std::bit_cast<std::uint32_t>(f);
  if (std::isnan(f)) {
    return 0x7FC0;  // canonical quiet NaN
  }
  // Round to nearest even on the truncated 16 bits.
  const std::uint32_t rounding_bias = 0x7FFF + ((bits >> 16) & 1);
  return static_cast<std::uint16_t>((bits + rounding_bias) >> 16);
}

float bf16_to_f32(std::uint16_t b) {
  return std::bit_cast<float>(static_cast<std::uint32_t>(b) << 16);
}

}  // namespace gaudi::tensor

// Tensor shapes with the device's rank limit.
//
// The TPC accepts tensors of rank 1..5 (paper §2.2); Shape enforces the same
// bound so invalid networks fail at graph-construction time, as on device.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>

#include "sim/error.hpp"

namespace gaudi::tensor {

/// Maximum tensor rank accepted by the device (TPC limit).
inline constexpr std::size_t kMaxRank = 5;

class Shape {
 public:
  Shape() = default;

  Shape(std::initializer_list<std::int64_t> dims) { assign({dims.begin(), dims.end()}); }
  explicit Shape(std::span<const std::int64_t> dims) { assign(dims); }

  [[nodiscard]] std::size_t rank() const { return rank_; }
  [[nodiscard]] std::int64_t dim(std::size_t i) const {
    GAUDI_CHECK(i < rank_, "shape dim index out of range");
    return dims_[i];
  }
  [[nodiscard]] std::int64_t operator[](std::size_t i) const { return dim(i); }

  [[nodiscard]] std::span<const std::int64_t> dims() const {
    return {dims_.data(), rank_};
  }

  /// Total element count (1 for rank-0 is not representable; rank>=1 always).
  [[nodiscard]] std::int64_t numel() const {
    std::int64_t n = 1;
    for (std::size_t i = 0; i < rank_; ++i) n *= dims_[i];
    return n;
  }

  /// Row-major strides, in elements.
  [[nodiscard]] std::array<std::int64_t, kMaxRank> strides() const {
    std::array<std::int64_t, kMaxRank> s{};
    std::int64_t acc = 1;
    for (std::size_t i = rank_; i-- > 0;) {
      s[i] = acc;
      acc *= dims_[i];
    }
    return s;
  }

  /// Leading dimensions collapsed into a batch count; e.g. [B,H,N,D] with
  /// `trailing`=2 gives batch B*H over [N,D] matrices.
  [[nodiscard]] std::int64_t batch_count(std::size_t trailing) const {
    GAUDI_CHECK(rank_ >= trailing, "rank smaller than trailing dims");
    std::int64_t b = 1;
    for (std::size_t i = 0; i + trailing < rank_; ++i) b *= dims_[i];
    return b;
  }

  /// New shape with the same elements, different dims (checked).
  [[nodiscard]] Shape reshaped(std::initializer_list<std::int64_t> dims) const {
    Shape s{dims};
    GAUDI_CHECK(s.numel() == numel(), "reshape changes element count");
    return s;
  }

  [[nodiscard]] bool operator==(const Shape& o) const {
    if (rank_ != o.rank_) return false;
    for (std::size_t i = 0; i < rank_; ++i) {
      if (dims_[i] != o.dims_[i]) return false;
    }
    return true;
  }

  [[nodiscard]] std::string to_string() const;

 private:
  void assign(std::span<const std::int64_t> dims) {
    GAUDI_CHECK(dims.size() >= 1 && dims.size() <= kMaxRank,
                "tensor rank must be in [1, 5] (TPC limit)");
    rank_ = dims.size();
    for (std::size_t i = 0; i < rank_; ++i) {
      GAUDI_CHECK(dims[i] > 0, "tensor dims must be positive");
      dims_[i] = dims[i];
    }
  }

  std::array<std::int64_t, kMaxRank> dims_{};
  std::size_t rank_ = 0;
};

}  // namespace gaudi::tensor

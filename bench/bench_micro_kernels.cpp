// Kernel-level microbenchmarks (google-benchmark): simulated throughput of
// the TPC kernel library and the MME cost model, plus host-side simulator
// overhead.  These back the Table 2 analysis with per-kernel numbers: the
// reported counters are *simulated* device throughput (bytes/s or FLOP/s of
// the modelled hardware), while the wall-clock column measures the simulator
// itself.
#include <benchmark/benchmark.h>

#include "mme/mme.hpp"
#include "sim/chip_config.hpp"
#include "tensor/tensor.hpp"
#include "tpc/cluster.hpp"
#include "tpc/kernels.hpp"

namespace {

using namespace gaudi;

const sim::ChipConfig& chip() {
  static const sim::ChipConfig cfg = sim::ChipConfig::hls1();
  return cfg;
}

tpc::RunResult run_timing(const tpc::Kernel& kernel) {
  const tpc::TpcCluster cluster(chip().tpc);
  return cluster.run(kernel, tpc::ExecMode::kTiming);
}

void report_simulated(benchmark::State& state, const tpc::RunResult& r,
                      std::int64_t bytes_touched) {
  state.counters["sim_ms"] = r.duration.ms();
  if (r.flops > 0) {
    state.counters["sim_tflops"] = r.tflops();
  }
  if (bytes_touched > 0) {
    state.counters["sim_GBps"] =
        static_cast<double>(bytes_touched) / r.duration.seconds() * 1e-9;
  }
}

void BM_TpcUnary(benchmark::State& state) {
  const auto kind = static_cast<tpc::UnaryKind>(state.range(0));
  const std::int64_t n = state.range(1);
  const tensor::Tensor in = tensor::Tensor::phantom(tensor::Shape{{n}});
  const tensor::Tensor out = tensor::Tensor::phantom(tensor::Shape{{n}});
  tpc::RunResult r;
  for (auto _ : state) {
    r = run_timing(tpc::UnaryEwKernel(kind, in, out));
    benchmark::DoNotOptimize(r.cycles);
  }
  report_simulated(state, r, 2 * n * 4);
  state.SetLabel(tpc::unary_kind_name(kind));
}
BENCHMARK(BM_TpcUnary)
    ->Args({static_cast<int>(tpc::UnaryKind::kRelu), 1 << 24})
    ->Args({static_cast<int>(tpc::UnaryKind::kExp), 1 << 24})
    ->Args({static_cast<int>(tpc::UnaryKind::kGelu), 1 << 24})
    ->Args({static_cast<int>(tpc::UnaryKind::kSqrt), 1 << 24});

void BM_TpcSoftmax(benchmark::State& state) {
  const std::int64_t rows = state.range(0);
  const std::int64_t cols = state.range(1);
  const tensor::Tensor in = tensor::Tensor::phantom(tensor::Shape{{rows, cols}});
  const tensor::Tensor out = tensor::Tensor::phantom(tensor::Shape{{rows, cols}});
  tpc::RunResult r;
  for (auto _ : state) {
    r = run_timing(tpc::SoftmaxKernel(in, out));
    benchmark::DoNotOptimize(r.cycles);
  }
  report_simulated(state, r, 2 * rows * cols * 4);
}
BENCHMARK(BM_TpcSoftmax)->Args({4096, 512})->Args({4096, 2048})->Args({4096, 8192});

void BM_TpcMatmul(benchmark::State& state) {
  const std::int64_t s = state.range(0);
  const tensor::Shape shape{{8, s, s}};
  const tensor::Tensor a = tensor::Tensor::phantom(shape);
  const tensor::Tensor b = tensor::Tensor::phantom(shape);
  const tensor::Tensor c = tensor::Tensor::phantom(shape);
  tpc::RunResult r;
  for (auto _ : state) {
    r = run_timing(tpc::BatchedMatMulTpcKernel(a, b, c));
    benchmark::DoNotOptimize(r.cycles);
  }
  report_simulated(state, r, 0);
}
BENCHMARK(BM_TpcMatmul)->Arg(128)->Arg(512)->Arg(2048);

void BM_MmeGemm(benchmark::State& state) {
  const std::int64_t s = state.range(0);
  const mme::MmeEngine engine(chip().mme);
  mme::MmeRunResult r;
  for (auto _ : state) {
    r = engine.cost(mme::GemmShape{8, s, s, s});
    benchmark::DoNotOptimize(r.cycles);
  }
  state.counters["sim_ms"] = r.duration.ms();
  state.counters["sim_tflops"] = r.tflops();
}
BENCHMARK(BM_MmeGemm)->Arg(128)->Arg(512)->Arg(2048)->Arg(4096);

// Host-side cost of *functional* kernel execution (the simulator itself).
void BM_FunctionalSoftmaxHostCost(benchmark::State& state) {
  const std::int64_t rows = state.range(0);
  const tensor::Tensor in =
      tensor::Tensor::uniform(tensor::Shape{{rows, 256}}, sim::CounterRng{1});
  const tensor::Tensor out = tensor::Tensor::zeros(tensor::Shape{{rows, 256}});
  const tpc::TpcCluster cluster(chip().tpc);
  for (auto _ : state) {
    const auto r = cluster.run(tpc::SoftmaxKernel(in, out), tpc::ExecMode::kFunctional);
    benchmark::DoNotOptimize(r.cycles);
  }
  state.SetItemsProcessed(state.iterations() * rows * 256);
}
BENCHMARK(BM_FunctionalSoftmaxHostCost)->Arg(256)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();

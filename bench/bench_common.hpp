// Shared helpers for the paper-reproduction bench binaries.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>

#include "core/advisor.hpp"
#include "core/analysis.hpp"
#include "core/experiments.hpp"
#include "core/table.hpp"

namespace gaudi::bench {

/// Host wall-clock stopwatch for comparing simulator execution modes.
/// (Simulated time is deterministic; this measures how long the simulator
/// itself takes to produce it.)
class WallClock {
 public:
  WallClock() : start_(std::chrono::steady_clock::now()) {}
  /// Seconds elapsed since construction.
  [[nodiscard]] double seconds() const {
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Achieved-TFLOPS table cell.  Zero-FLOP or zero-duration runs (a phantom
/// op, an empty trace) have no defined rate and render "n/a" instead of
/// "inf"/"nan".
inline std::string tflops_cell(std::uint64_t flops, sim::SimTime duration) {
  if (flops == 0 || duration <= sim::SimTime::zero()) return "n/a";
  return core::TextTable::num(static_cast<double>(flops) /
                              duration.seconds() * 1e-12);
}

/// Prints the standard per-figure report: summary, ASCII timeline, advisor
/// findings; optionally dumps a Chrome trace next to the binary.
inline void print_profile(const std::string& title,
                          const core::TraceSummary& summary,
                          const graph::Trace& trace,
                          const std::string& chrome_trace_path = "") {
  std::fputs(core::to_report(summary, title).c_str(), stdout);
  std::fputs("\n", stdout);
  std::fputs(trace.ascii_timeline().c_str(), stdout);
  std::fputs("\n", stdout);
  core::AdvisorInput advisor_in;
  advisor_in.summary = summary;
  std::fputs(core::format_findings(core::advise(advisor_in)).c_str(), stdout);
  if (!chrome_trace_path.empty()) {
    trace.write_chrome_json(chrome_trace_path);
    std::printf("chrome trace written to %s\n", chrome_trace_path.c_str());
  }
  std::fputs("\n", stdout);
}

}  // namespace gaudi::bench

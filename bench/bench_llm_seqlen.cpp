// Long-sequence LLM training (the paper's §3.3 motivation applied to §3.4's
// end-to-end models): GPT training-step time and memory as the sequence
// grows at constant token count, and where the 32 GB HBM wall is.
#include <cstdio>

#include "core/experiments.hpp"
#include "core/table.hpp"

int main() {
  using namespace gaudi;
  const sim::ChipConfig cfg = sim::ChipConfig::hls1();

  core::TextTable table({"Seq", "Batch", "Step (ms)", "ms per token",
                         "Peak HBM (GB)", "softmax share of TPC"});
  for (const std::int64_t seq : {512, 1024, 2048, 4096, 8192}) {
    nn::LmConfig model_cfg = nn::LmConfig::gpt2_paper();
    model_cfg.seq_len = seq;
    model_cfg.batch = 8 * 2048 / seq;  // constant 16384 tokens per step
    if (model_cfg.batch == 0) model_cfg.batch = 1;
    try {
      const core::LlmProfile p = core::run_llm_profile(
          model_cfg, graph::SchedulePolicy::kBarrier, cfg);
      table.add_row(
          {std::to_string(seq), std::to_string(model_cfg.batch),
           core::TextTable::num(p.summary.makespan.ms()),
           core::TextTable::num(p.summary.makespan.ms() /
                                static_cast<double>(model_cfg.tokens()), 4),
           core::TextTable::num(static_cast<double>(p.hbm_peak_bytes) / (1 << 30),
                                2),
           core::TextTable::num(p.summary.softmax_share_of_tpc * 100.0, 0) + "%"});
    } catch (const sim::ResourceExhausted&) {
      table.add_row({std::to_string(seq), std::to_string(model_cfg.batch), "OOM",
                     "-", "> 32", "-"});
    }
  }
  std::puts("GPT training step vs sequence length (constant 16384 tokens):");
  std::fputs(table.to_string().c_str(), stdout);
  std::puts("(the O(N^2) attention terms grow with N even at fixed token");
  std::puts(" count — the long-sequence cost the paper motivates in §3.3)");
  return 0;
}

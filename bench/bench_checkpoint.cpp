// Crash-consistent checkpointing: measured save/restore cost vs state size,
// cross-checked against the analytic cost model, and a Young/Daly goodput
// sweep driven by a *real* serialized training snapshot instead of the
// model's assumed 8 GB state.
//
// The save/restore rows time scaleout/snapshot.hpp end-to-end (serialize +
// checksum + atomic rename, then parse + verify + materialize) on snapshots
// of growing payload, and report the implied storage bandwidth next to the
// checkpoint_save_time/checkpoint_restore_time prediction for the same
// byte count.  The goodput section trains the tiny LM once with
// checkpointing on, sizes the cost model from the snapshot that lands on
// disk (backed_checkpoint_config), and sweeps recovery policies with it.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/table.hpp"
#include "nn/train.hpp"
#include "scaleout/snapshot.hpp"
#include "sim/fault.hpp"
#include "tensor/tensor.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  using namespace gaudi;
  namespace fs = std::filesystem;

  const std::string dir =
      (fs::temp_directory_path() / "gaudisim-bench-checkpoint").string();
  fs::remove_all(dir);

  // Measured save/restore wall time vs snapshot payload size.
  {
    std::puts("snapshot save/restore wall time vs state size:");
    core::TextTable table({"payload", "save", "restore", "save BW",
                           "model save", "model restore"});
    for (const std::int64_t side : {64, 128, 256, 512, 1024}) {
      scaleout::Snapshot snap;
      snap.step = static_cast<std::uint64_t>(side);
      snap.add_meta("bench.side", static_cast<std::uint64_t>(side));
      snap.add("w", tensor::Tensor::uniform(tensor::Shape{{side, side}},
                                            sim::CounterRng{7, 1}));
      snap.add("m", tensor::Tensor::zeros(tensor::Shape{{side, side}}));
      snap.add("v", tensor::Tensor::zeros(tensor::Shape{{side, side}}));

      const auto t_save = std::chrono::steady_clock::now();
      const std::string manifest = scaleout::save_snapshot(dir, snap);
      const double save_s = seconds_since(t_save);

      const auto t_load = std::chrono::steady_clock::now();
      const scaleout::Snapshot loaded = scaleout::load_snapshot(manifest);
      const double load_s = seconds_since(t_load);

      const scaleout::CheckpointConfig cfg =
          scaleout::backed_checkpoint_config(loaded);
      const double mb =
          static_cast<double>(snap.payload_bytes()) / (1024.0 * 1024.0);
      table.add_row(
          {core::TextTable::num(mb, 2) + " MiB",
           core::TextTable::num(save_s * 1e3, 2) + " ms",
           core::TextTable::num(load_s * 1e3, 2) + " ms",
           core::TextTable::num(mb / (save_s * 1024.0), 2) + " GiB/s",
           sim::to_string(scaleout::checkpoint_save_time(cfg)),
           sim::to_string(scaleout::checkpoint_restore_time(cfg))});
    }
    std::fputs(table.to_string().c_str(), stdout);
    std::puts("(model columns assume the configured 2 GB/s store + 50 ms "
              "commit; the measured columns are this host's disk)\n");
  }

  // A real training snapshot sizes the Young/Daly sweep.
  {
    nn::TrainOptions topts;
    topts.steps = 2;
    topts.optimizer.kind = nn::OptimizerKind::kAdam;
    topts.checkpoint_dir = dir + "/train";
    const nn::TrainResult r = nn::train_language_model(topts);
    const scaleout::SnapshotScan scan =
        scaleout::scan_snapshots(topts.checkpoint_dir);
    if (!scan.found()) {
      std::puts("unexpected: training produced no restorable snapshot");
      return 1;
    }

    scaleout::TrainingRunConfig base;
    base.steps = 2000;
    base.step_time = sim::SimTime::from_ms(300.0);
    base.chips = 8;
    // Real serialized bytes, not the assumed 8 GB.  The tiny LM's state is
    // small, so scale the bandwidth down to keep save costs on the same
    // order as a step and the interval trade-off visible.
    base.checkpoint = scaleout::backed_checkpoint_config(
        *scan.snapshot,
        scaleout::CheckpointConfig{.storage_bandwidth_bytes_per_s = 2.0e6,
                                   .fixed_overhead =
                                       sim::SimTime::from_ms(50.0)});
    const sim::SimTime save = scaleout::checkpoint_save_time(base.checkpoint);
    std::printf("goodput sweep sized from a real snapshot: %zu bytes of "
                "state (tiny gpt2 + adam), save cost %s:\n",
                scan.snapshot->payload_bytes(), sim::to_string(save).c_str());

    core::TextTable table({"MTBF (steps)", "no-checkpoint", "fixed(50)",
                           "young-daly", "YD interval"});
    for (const double mtbf : {50.0, 200.0, 800.0}) {
      const sim::FaultInjector faults{
          0xFA517, sim::FaultProfile::from_mtbf_steps(mtbf, base.chips)};
      scaleout::TrainingRunConfig cfg = base;
      cfg.mtbf_steps = mtbf;
      cfg.policy = scaleout::RecoveryPolicy::kNone;
      const auto none = scaleout::resilient_training_run(cfg, faults);
      cfg.policy = scaleout::RecoveryPolicy::kFixedInterval;
      cfg.checkpoint_interval = 50;
      const auto fixed = scaleout::resilient_training_run(cfg, faults);
      cfg.policy = scaleout::RecoveryPolicy::kYoungDaly;
      const auto yd = scaleout::resilient_training_run(cfg, faults);
      const auto cell = [](const scaleout::TrainingRunReport& rep) {
        return core::TextTable::num(rep.goodput * 100.0, 1) + "%" +
               (rep.finished ? "" : " (dnf)");
      };
      table.add_row({core::TextTable::num(mtbf, 0), cell(none), cell(fixed),
                     cell(yd), std::to_string(yd.interval)});
    }
    std::fputs(table.to_string().c_str(), stdout);
    std::printf("checkpoints written during the sizing run: %llu "
                "(latest manifest: %s)\n",
                static_cast<unsigned long long>(r.checkpoints_saved),
                scan.path.c_str());
  }

  fs::remove_all(dir);
  return 0;
}

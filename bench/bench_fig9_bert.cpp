// Figure 9 reproduction: end-to-end BERT (BertForMaskedLM-style) training
// step at the paper's §3.4 configuration.
//
// Paper claims to reproduce: same observations as Fig 8 — MME idle gaps,
// busy TPC, unbalanced workload with no overlap.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace gaudi;
  const sim::ChipConfig cfg = sim::ChipConfig::hls1();

  const nn::LmConfig model_cfg = nn::LmConfig::bert_paper();
  const core::LlmProfile profile =
      core::run_llm_profile(model_cfg, graph::SchedulePolicy::kBarrier, cfg);

  std::printf("model: BERT-style, %zu parameters, %zu graph nodes\n",
              profile.param_count, profile.node_count);
  std::printf("peak HBM: %.2f GB of 32 GB\n\n",
              static_cast<double>(profile.hbm_peak_bytes) / (1024.0 * 1024 * 1024));
  bench::print_profile("Fig 9: BERT end-to-end training step", profile.summary,
                       profile.trace, "fig9_bert.trace.json");
  return 0;
}

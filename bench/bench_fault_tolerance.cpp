// Fault-tolerant training: goodput under failures, MTBF x checkpoint
// interval x recovery policy.
//
// The paper benchmarks a healthy HLS-1; production runs on such a box
// contend with link flaps, chip losses, and stragglers.  This bench sweeps
// a deterministic fault schedule (sim/fault.hpp) over recovery policies and
// cross-checks the measured optimal checkpoint interval against the
// Young/Daly closed form W_opt = sqrt(2 * delta * MTBF).
#include <cstdio>
#include <vector>

#include "core/table.hpp"
#include "scaleout/checkpoint.hpp"
#include "sim/fault.hpp"

int main() {
  using namespace gaudi;

  scaleout::TrainingRunConfig base;
  base.steps = 2000;
  base.step_time = sim::SimTime::from_ms(300.0);
  base.chips = 8;
  base.checkpoint.state_bytes = 1ull << 30;  // ~0.55 s save: ~2 steps
  base.checkpoint.storage_bandwidth_bytes_per_s = 2.0e9;
  const sim::SimTime save = scaleout::checkpoint_save_time(base.checkpoint);

  std::printf("resilient training: %llu steps x %s on %u chips, "
              "checkpoint save %s\n\n",
              static_cast<unsigned long long>(base.steps),
              sim::to_string(base.step_time).c_str(), base.chips,
              sim::to_string(save).c_str());

  // Goodput vs MTBF for the three recovery policies.
  {
    std::puts("goodput (useful compute / wall-clock) vs MTBF:");
    core::TextTable table({"MTBF (steps)", "no-checkpoint", "fixed(50)",
                           "young-daly", "YD interval", "failures"});
    for (const double mtbf : {50.0, 100.0, 200.0, 400.0, 800.0}) {
      const sim::FaultInjector faults{
          0xFA517, sim::FaultProfile::from_mtbf_steps(mtbf, base.chips)};
      scaleout::TrainingRunConfig cfg = base;
      cfg.mtbf_steps = mtbf;

      cfg.policy = scaleout::RecoveryPolicy::kNone;
      const auto none = scaleout::resilient_training_run(cfg, faults);
      cfg.policy = scaleout::RecoveryPolicy::kFixedInterval;
      cfg.checkpoint_interval = 50;
      const auto fixed = scaleout::resilient_training_run(cfg, faults);
      cfg.policy = scaleout::RecoveryPolicy::kYoungDaly;
      const auto yd = scaleout::resilient_training_run(cfg, faults);

      const auto cell = [](const scaleout::TrainingRunReport& rep) {
        return core::TextTable::num(rep.goodput * 100.0, 1) + "%" +
               (rep.finished ? "" : " (dnf)");
      };
      table.add_row({core::TextTable::num(mtbf, 0), cell(none), cell(fixed),
                     cell(yd), std::to_string(yd.interval),
                     std::to_string(yd.failures)});
    }
    std::fputs(table.to_string().c_str(), stdout);
    std::puts("(no-checkpoint restarts from step 0 on every failure; its"
              " goodput collapses once MTBF << run length)\n");
  }

  // Fixed-interval sweep at one MTBF: the measured optimum should land
  // within 2x of the Young/Daly prediction.
  {
    const double mtbf = 100.0;
    const sim::FaultInjector faults{
        0xFA517, sim::FaultProfile::from_mtbf_steps(mtbf, base.chips)};
    scaleout::TrainingRunConfig cfg = base;
    cfg.mtbf_steps = mtbf;
    cfg.policy = scaleout::RecoveryPolicy::kFixedInterval;

    const std::uint64_t predicted =
        scaleout::young_daly_interval_steps(base.step_time, save, mtbf);
    std::printf("checkpoint-interval sweep at MTBF %.0f steps "
                "(Young/Daly predicts %llu):\n",
                mtbf, static_cast<unsigned long long>(predicted));

    core::TextTable table({"Interval", "Goodput", "Checkpoint ovh",
                           "Recompute", "Failures"});
    std::uint64_t best_interval = 0;
    double best_goodput = -1.0;
    for (const std::uint64_t interval :
         std::vector<std::uint64_t>{2, 5, 10, 20, 40, 80, 160}) {
      cfg.checkpoint_interval = interval;
      const auto rep = scaleout::resilient_training_run(cfg, faults);
      if (rep.goodput > best_goodput) {
        best_goodput = rep.goodput;
        best_interval = interval;
      }
      table.add_row({std::to_string(interval),
                     core::TextTable::num(rep.goodput * 100.0, 1) + "%",
                     sim::to_string(rep.checkpoint_time),
                     sim::to_string(rep.recompute_time),
                     std::to_string(rep.failures)});
    }
    std::fputs(table.to_string().c_str(), stdout);
    const double ratio = best_interval >= predicted
                             ? static_cast<double>(best_interval) /
                                   static_cast<double>(predicted)
                             : static_cast<double>(predicted) /
                                   static_cast<double>(best_interval);
    std::printf("measured optimum: every %llu steps (%.1f%% goodput), "
                "%.2fx the Young/Daly prediction\n",
                static_cast<unsigned long long>(best_interval),
                best_goodput * 100.0, ratio);
  }
  return 0;
}

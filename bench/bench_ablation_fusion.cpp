// Fusion ablation (design-choice callout in DESIGN.md): how much of each
// profile is per-op kernel launch overhead plus element-wise intermediates
// round-tripping through global memory?  Reruns the paper's workloads with
// the element-wise fusion pass enabled.
#include <cstdio>

#include "core/experiments.hpp"
#include "core/table.hpp"
#include "graph/runtime.hpp"
#include "nn/models.hpp"

namespace {

using namespace gaudi;

struct Row {
  double plain_ms;
  double fused_ms;
  std::size_t plain_peak;
  std::size_t fused_peak;
};

Row run_layer(nn::AttentionKind kind, const sim::ChipConfig& cfg) {
  Row row{};
  for (const bool fuse : {false, true}) {
    graph::Graph g;
    nn::ParamStore params(0x1A1E);
    nn::TransformerLayerConfig layer_cfg;
    layer_cfg.d_model = 384;
    layer_cfg.heads = 6;
    layer_cfg.head_dim = 64;
    layer_cfg.attention.kind = kind;
    nn::TransformerLayer layer(g, params, layer_cfg, "layer");
    const graph::ValueId x =
        g.input(tensor::Shape{{128 * 2048, 384}}, tensor::DType::F32, "x");
    g.mark_output(layer(g, params, x, 128, 2048));

    graph::Runtime rt(cfg);
    graph::RunOptions opts;
    opts.mode = tpc::ExecMode::kTiming;
    opts.fuse_elementwise = fuse;
    const auto result = rt.run(g, {}, opts);
    (fuse ? row.fused_ms : row.plain_ms) = result.makespan.ms();
    (fuse ? row.fused_peak : row.plain_peak) = result.hbm_peak_bytes;
  }
  return row;
}

Row run_llm(nn::LmArch arch, const sim::ChipConfig& cfg) {
  Row row{};
  for (const bool fuse : {false, true}) {
    graph::Graph g;
    const nn::LmConfig model_cfg = arch == nn::LmArch::kGpt2
                                       ? nn::LmConfig::gpt2_paper()
                                       : nn::LmConfig::bert_paper();
    (void)nn::build_language_model(g, model_cfg);
    graph::Runtime rt(cfg);
    graph::RunOptions opts;
    opts.mode = tpc::ExecMode::kTiming;
    opts.fuse_elementwise = fuse;
    const auto result = rt.run(g, {}, opts);
    (fuse ? row.fused_ms : row.plain_ms) = result.makespan.ms();
    (fuse ? row.fused_peak : row.plain_peak) = result.hbm_peak_bytes;
  }
  return row;
}

}  // namespace

int main() {
  const sim::ChipConfig cfg = sim::ChipConfig::hls1();
  core::TextTable table({"Workload", "Unfused (ms)", "Fused (ms)", "Saved",
                         "Peak HBM unfused", "fused"});

  auto add = [&](const char* name, const Row& r) {
    table.add_row(
        {name, core::TextTable::num(r.plain_ms), core::TextTable::num(r.fused_ms),
         core::TextTable::num((1.0 - r.fused_ms / r.plain_ms) * 100.0, 1) + "%",
         core::TextTable::num(static_cast<double>(r.plain_peak) / (1 << 30), 2) +
             " GB",
         core::TextTable::num(static_cast<double>(r.fused_peak) / (1 << 30), 2) +
             " GB"});
  };

  add("layer/softmax", run_layer(nn::AttentionKind::kSoftmax, cfg));
  add("layer/linear", run_layer(nn::AttentionKind::kLinear, cfg));
  add("layer/performer", run_layer(nn::AttentionKind::kPerformer, cfg));
  add("gpt2 step", run_llm(nn::LmArch::kGpt2, cfg));
  add("bert step", run_llm(nn::LmArch::kBert, cfg));

  std::puts("Ablation: element-wise fusion pass (launch overhead +");
  std::puts("intermediate global-memory traffic eliminated per chain)");
  std::fputs(table.to_string().c_str(), stdout);
  return 0;
}

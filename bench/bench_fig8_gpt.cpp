// Figure 8 reproduction: end-to-end GPT (GPT2LMHead-style) training-step
// trace at the paper's §3.4 configuration: seq 2048, batch 8, 2 layers, 8
// heads, head size 64, BookCorpus-like input.
//
// Paper claims to reproduce: many blank areas in the MME row (MME idle) with
// an obviously busy TPC — unbalanced workload and no MME/TPC overlap.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace gaudi;
  const sim::ChipConfig cfg = sim::ChipConfig::hls1();

  const nn::LmConfig model_cfg = nn::LmConfig::gpt2_paper();
  const core::LlmProfile profile =
      core::run_llm_profile(model_cfg, graph::SchedulePolicy::kBarrier, cfg);

  std::printf("model: GPT-2-style, %zu parameters, %zu graph nodes\n",
              profile.param_count, profile.node_count);
  std::printf("peak HBM: %.2f GB of 32 GB\n\n",
              static_cast<double>(profile.hbm_peak_bytes) / (1024.0 * 1024 * 1024));
  bench::print_profile("Fig 8: GPT end-to-end training step", profile.summary,
                       profile.trace, "fig8_gpt.trace.json");
  return 0;
}

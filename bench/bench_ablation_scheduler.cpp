// Scheduler ablation (paper §4, insight 1): how much of each profile's
// makespan is the engine-switch serialization the traces exhibit, versus the
// structural critical path?  Reruns every experiment under the
// independence-aware overlap scheduler and reports the recovered time.
#include <cstdio>

#include "core/experiments.hpp"
#include "core/table.hpp"

int main() {
  using namespace gaudi;
  const sim::ChipConfig cfg = sim::ChipConfig::hls1();

  core::TextTable table(
      {"Workload", "Observed (ms)", "Overlapped (ms)", "Recovered"});

  auto layer_case = [&](const char* name, nn::AttentionKind kind) {
    core::LayerExperiment exp;
    exp.attention.kind = kind;
    const auto observed = core::run_layer_profile(exp, cfg);
    exp.policy = graph::SchedulePolicy::kOverlap;
    const auto overlapped = core::run_layer_profile(exp, cfg);
    const double rec = 1.0 - overlapped.summary.makespan.seconds() /
                                 observed.summary.makespan.seconds();
    table.add_row({name, core::TextTable::num(observed.summary.makespan.ms()),
                   core::TextTable::num(overlapped.summary.makespan.ms()),
                   core::TextTable::num(rec * 100.0, 0) + "%"});
  };
  layer_case("layer/softmax", nn::AttentionKind::kSoftmax);
  layer_case("layer/linear", nn::AttentionKind::kLinear);
  layer_case("layer/performer", nn::AttentionKind::kPerformer);

  for (const auto arch : {nn::LmArch::kGpt2, nn::LmArch::kBert}) {
    const nn::LmConfig model_cfg = arch == nn::LmArch::kGpt2
                                       ? nn::LmConfig::gpt2_paper()
                                       : nn::LmConfig::bert_paper();
    const auto observed =
        core::run_llm_profile(model_cfg, graph::SchedulePolicy::kBarrier, cfg);
    const auto overlapped =
        core::run_llm_profile(model_cfg, graph::SchedulePolicy::kOverlap, cfg);
    const double rec = 1.0 - overlapped.summary.makespan.seconds() /
                                 observed.summary.makespan.seconds();
    table.add_row({nn::lm_arch_name(arch),
                   core::TextTable::num(observed.summary.makespan.ms()),
                   core::TextTable::num(overlapped.summary.makespan.ms()),
                   core::TextTable::num(rec * 100.0, 0) + "%"});
  }

  std::puts("Ablation: engine-switch barriers (observed SynapseAI behaviour)");
  std::puts("vs an independence-aware overlap schedule (paper insight #1)");
  std::fputs(table.to_string().c_str(), stdout);
  return 0;
}

// Serving throughput-latency curves — the multi-tenant regime the paper's
// single-job profiles feed into.  A Poisson request stream is pushed
// through the continuous-batching scheduler at increasing arrival rates
// and batch sizes; the interesting output is the *shape* of the curve:
// throughput saturates at the chip's token rate while the TTFT/ITL tails
// grow without bound past the knee — the classic open-loop overload
// signature that batch-size tuning trades against.
//
// Everything here is deterministic: the same (seed, rate, batch) cell
// reproduces byte-identical metrics, which the final self-check asserts by
// rendering one cell twice.
#include <cstdio>
#include <string>
#include <vector>

#include "core/table.hpp"
#include "graph/runtime.hpp"
#include "serve/scheduler.hpp"
#include "serve/workload.hpp"

int main() {
  using namespace gaudi;
  const graph::Runtime rt(sim::ChipConfig::hls1());

  const std::vector<double> rates = {4.0, 8.0, 16.0, 32.0};
  const std::vector<std::int64_t> batches = {4, 8};

  auto run_cell = [&](double rate, std::int64_t max_batch) {
    serve::StreamConfig scfg;
    scfg.arrival_rate_rps = rate;
    scfg.num_requests = 48;
    scfg.prompt = {64, 192};
    scfg.output = {16, 64};
    scfg.deadline = sim::SimTime::from_ms(4000.0);
    serve::ServeConfig cfg;
    cfg.max_batch = max_batch;
    cfg.kv_budget_bytes = 16ull * 1024 * 1024;
    serve::ContinuousBatchScheduler sched(rt, cfg);
    return sched.run(serve::poisson_stream(scfg));
  };

  core::TextTable table({"Rate", "Batch", "Tok/s", "Goodput", "TTFT p50",
                         "TTFT p99", "ITL p50", "ITL p99", "Preempt"});
  for (const std::int64_t batch : batches) {
    for (const double rate : rates) {
      const serve::ServeReport r = run_cell(rate, batch);
      table.add_row({core::TextTable::num(rate, 0) + " req/s",
                     std::to_string(batch),
                     core::TextTable::num(r.summary.throughput_tok_s, 1),
                     core::TextTable::num(r.summary.goodput_tok_s, 1),
                     core::TextTable::num(r.summary.ttft_p50_ms, 1) + " ms",
                     core::TextTable::num(r.summary.ttft_p99_ms, 1) + " ms",
                     core::TextTable::num(r.summary.itl_p50_ms, 2) + " ms",
                     core::TextTable::num(r.summary.itl_p99_ms, 2) + " ms",
                     std::to_string(r.summary.preemptions)});
    }
  }

  std::puts("Serving throughput-latency sweep (GPT-2 decode model, Poisson");
  std::puts("arrivals, 48 requests, prompts 64-192, outputs 16-64, 4 s SLO):");
  std::fputs(table.to_string().c_str(), stdout);
  std::puts("\nPast the saturation knee the offered load outruns the token");
  std::puts("rate: throughput flattens while TTFT tails stretch — adding");
  std::puts("batch slots moves the knee right at the cost of per-token ITL.");

  // Determinism self-check: one cell, rendered twice, must be bytes-equal.
  const std::string a = run_cell(8.0, 4).to_report();
  const std::string b = run_cell(8.0, 4).to_report();
  if (a != b) {
    std::puts("\nFAIL: same-seed serving runs diverged");
    return 1;
  }
  std::puts("\ndeterminism: same-seed rerun is byte-identical");
  return 0;
}

// Serving throughput-latency curves — the multi-tenant regime the paper's
// single-job profiles feed into — run twice: once with full cost
// derivation (every scheduler builds, compiles, and event-schedules each
// decode/prefill bucket graph itself) and once in timing-only mode (step
// costs replayed from the process-wide timing memo).  The two passes must
// agree on every reported number; the interesting output is the host
// wall-clock ratio between them, which is what makes wide batch sweeps
// cheap.
//
// Everything here is deterministic: the same (seed, rate, batch) cell
// reproduces byte-identical metrics, which the final self-check asserts by
// rendering one cell twice.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/table.hpp"
#include "graph/runtime.hpp"
#include "graph/timing_memo.hpp"
#include "serve/cluster.hpp"
#include "serve/scheduler.hpp"
#include "serve/workload.hpp"
#include "sim/error.hpp"

int main() {
  using namespace gaudi;
  const graph::Runtime rt(sim::ChipConfig::hls1());

  const std::vector<double> rates = {2.0,  3.0,  4.0,  6.0,  8.0,  12.0,
                                     16.0, 24.0, 32.0, 48.0, 64.0, 96.0};
  const std::vector<std::int64_t> batches = {4, 8};

  // Streams are generated once up front: both execution modes schedule the
  // exact same requests, so workload generation stays out of the timed
  // region.
  std::vector<std::vector<serve::Request>> streams;
  streams.reserve(rates.size());
  for (const double rate : rates) {
    serve::StreamConfig scfg;
    scfg.arrival_rate_rps = rate;
    scfg.num_requests = 48;
    scfg.prompt = {64, 192};
    scfg.output = {16, 64};
    scfg.deadline = sim::SimTime::from_ms(4000.0);
    streams.push_back(serve::poisson_stream(scfg));
  }

  auto run_cell = [&](std::size_t rate_idx, std::int64_t max_batch,
                      bool timing_only) {
    serve::ServeConfig cfg;
    cfg.max_batch = max_batch;
    cfg.kv_budget_bytes = 16ull * 1024 * 1024;
    cfg.ctx_bucket = 16;  // fine-grained step costs: 16-token context buckets
    cfg.timing_only = timing_only;
    serve::ContinuousBatchScheduler sched(rt, cfg);
    return sched.run(streams[rate_idx]);
  };

  auto run_sweep = [&](bool timing_only) {
    std::vector<std::string> reports;
    reports.reserve(rates.size() * batches.size());
    for (const std::int64_t batch : batches) {
      for (std::size_t i = 0; i < rates.size(); ++i) {
        reports.push_back(run_cell(i, batch, timing_only).to_report());
      }
    }
    return reports;
  };

  graph::TimingMemo::global().clear();
  const bench::WallClock functional_clock;
  const std::vector<std::string> functional = run_sweep(false);
  const double functional_s = functional_clock.seconds();

  graph::TimingMemo::global().clear();
  const bench::WallClock fast_clock;
  const std::vector<std::string> fast = run_sweep(true);
  const double fast_s = fast_clock.seconds();

  // Mode equivalence: the fast path may change how long the *simulator*
  // takes, never what it reports.
  for (std::size_t i = 0; i < functional.size(); ++i) {
    if (functional[i] != fast[i]) {
      std::printf("\nFAIL: timing-only report diverged in cell %zu\n", i);
      std::fputs(functional[i].c_str(), stdout);
      std::fputs(fast[i].c_str(), stdout);
      return 1;
    }
  }

  core::TextTable table({"Rate", "Batch", "Tok/s", "Goodput", "TTFT p50",
                         "TTFT p99", "ITL p50", "ITL p99", "Preempt"});
  for (const std::int64_t batch : batches) {
    for (std::size_t i = 0; i < rates.size(); ++i) {
      const double rate = rates[i];
      const serve::ServeReport r = run_cell(i, batch, true);
      table.add_row({core::TextTable::num(rate, 0) + " req/s",
                     std::to_string(batch),
                     core::TextTable::num(r.summary.throughput_tok_s, 1),
                     core::TextTable::num(r.summary.goodput_tok_s, 1),
                     core::TextTable::num(r.summary.ttft_p50_ms, 1) + " ms",
                     core::TextTable::num(r.summary.ttft_p99_ms, 1) + " ms",
                     core::TextTable::num(r.summary.itl_p50_ms, 2) + " ms",
                     core::TextTable::num(r.summary.itl_p99_ms, 2) + " ms",
                     std::to_string(r.summary.preemptions)});
    }
  }

  std::puts("Serving throughput-latency sweep (GPT-2 decode model, Poisson");
  std::puts("arrivals, 48 requests, prompts 64-192, outputs 16-64, 4 s SLO):");
  std::fputs(table.to_string().c_str(), stdout);
  std::puts("\nPast the saturation knee the offered load outruns the token");
  std::puts("rate: throughput flattens while TTFT tails stretch — adding");
  std::puts("batch slots moves the knee right at the cost of per-token ITL.");

  const graph::TimingMemo& memo = graph::TimingMemo::global();
  const double speedup = functional_s / (fast_s > 0.0 ? fast_s : 1e-9);
  std::printf(
      "\nexecution modes (%zu cells, identical reports):\n"
      "  functional   %8.3f s wall\n"
      "  timing-only  %8.3f s wall  (%.1fx faster)\n"
      "  timing memo: %zu entries, %lld hits, %lld misses\n",
      functional.size(), functional_s, fast_s, speedup, memo.size(),
      static_cast<long long>(memo.hits()),
      static_cast<long long>(memo.misses()));
  if (speedup < 3.0) {
    std::puts("FAIL: timing-only mode is expected to be >=3x faster");
    return 1;
  }

  // Determinism self-check: one cell, rendered twice, must be bytes-equal.
  const std::string a = run_cell(4, 4, true).to_report();
  const std::string b = run_cell(4, 4, true).to_report();
  if (a != b) {
    std::puts("\nFAIL: same-seed serving runs diverged");
    return 1;
  }
  std::puts("\ndeterminism: same-seed rerun is byte-identical");

  // --- Goodput under faults: MTBF x retry-policy sweep ---------------------
  // Chip failures abort in-flight batches and invalidate their KV; the
  // retry budget decides whether the lost work is recomputed (goodput dips,
  // availability holds) or the requests fail terminally.  Every cell runs
  // in both execution modes and must report identical bytes: the fault
  // schedule is a pure function of (fault seed, iteration), not of how step
  // costs were derived.
  serve::StreamConfig fcfg;
  fcfg.arrival_rate_rps = 16.0;
  fcfg.num_requests = 24;
  fcfg.prompt = {64, 192};
  fcfg.output = {16, 64};
  fcfg.deadline = sim::SimTime::from_ms(4000.0);
  const std::vector<serve::Request> fault_stream = serve::poisson_stream(fcfg);
  const std::vector<std::int64_t> mtbfs = {0, 40, 120};  // 0 = faults off
  const std::vector<std::int32_t> retries = {0, 3};

  auto run_fault_cell = [&](std::int64_t mtbf, std::int32_t retry_max,
                            bool timing_only) {
    serve::ServeConfig cfg;
    cfg.max_batch = 4;
    cfg.kv_budget_bytes = 16ull * 1024 * 1024;
    cfg.ctx_bucket = 16;
    cfg.timing_only = timing_only;
    if (mtbf > 0) {
      cfg.faults = sim::FaultInjector{
          0xFA517, sim::FaultProfile::from_mtbf_steps(
                       static_cast<double>(mtbf), /*chips=*/1)};
    }
    cfg.retry_max = retry_max;
    serve::ContinuousBatchScheduler sched(rt, cfg);
    return sched.run(fault_stream);
  };

  core::TextTable fault_table({"MTBF", "Retry", "Goodput", "Avail", "Failed",
                               "Retries", "Wasted tok"});
  for (const std::int64_t mtbf : mtbfs) {
    for (const std::int32_t retry_max : retries) {
      const serve::ServeReport fr = run_fault_cell(mtbf, retry_max, false);
      const serve::ServeReport tr = run_fault_cell(mtbf, retry_max, true);
      if (fr.to_report() != tr.to_report()) {
        std::printf("\nFAIL: fault cell mtbf=%lld retry=%d diverged by mode\n",
                    static_cast<long long>(mtbf), retry_max);
        std::fputs(fr.to_report().c_str(), stdout);
        std::fputs(tr.to_report().c_str(), stdout);
        return 1;
      }
      const double avail = fr.summary.availability;
      fault_table.add_row(
          {mtbf > 0 ? std::to_string(mtbf) + " it" : "off",
           std::to_string(retry_max),
           core::TextTable::num(fr.summary.goodput_tok_s, 1),
           core::TextTable::num(avail * 100.0, 1) + "%",
           std::to_string(fr.summary.failed),
           std::to_string(fr.summary.fault_retries),
           std::to_string(fr.summary.wasted_tokens)});
    }
  }
  std::puts("\nGoodput under chip faults (24 requests, 4 slots; both");
  std::puts("execution modes agree per cell):");
  std::fputs(fault_table.to_string().c_str(), stdout);
  std::puts("\nShorter MTBF wastes more computed KV; a zero retry budget");
  std::puts("converts that waste into terminal failures and lost");
  std::puts("availability, while a small budget recovers it as goodput.");

  // --- Fleet availability: MTBF x replica-count x hedging sweep ------------
  // A single replica rides out every chip failure alone: requests wait for
  // the restart, burn their retry budget against the same chip, and fail.
  // Replicas convert the same per-chip fault stream into failovers — a
  // survivor re-prefills the lost work — and hedging converts slow first
  // tokens into races.  The sweep asserts the headline claim: at the same
  // per-replica MTBF, any N >= 2 fleet has strictly higher availability
  // than N = 1.
  //
  // Cluster cells warm-start from GAUDI_MEMO_FILE when set: a previous
  // process's step-cost tables load here, and this process saves its own
  // tables back at the end.
  if (!graph::memo_file_from_env().empty()) {
    try {
      const std::size_t loaded =
          graph::TimingMemo::global().load_times(graph::memo_file_from_env());
      std::printf("\ntiming memo: warm-started %zu entries from %s\n", loaded,
                  graph::memo_file_from_env().c_str());
    } catch (const sim::CheckpointError&) {
      std::puts("\ntiming memo: no usable GAUDI_MEMO_FILE yet (cold start)");
    }
  }

  serve::StreamConfig ccfg_stream;
  ccfg_stream.arrival_rate_rps = 16.0;
  ccfg_stream.num_requests = 24;
  ccfg_stream.prompt = {64, 192};
  ccfg_stream.output = {16, 64};
  ccfg_stream.deadline = sim::SimTime::from_ms(1000.0);
  const std::vector<serve::Request> cluster_stream =
      serve::poisson_stream(ccfg_stream);
  const std::vector<std::int64_t> cluster_mtbfs = {30, 40};
  const std::vector<std::int64_t> replica_counts = {1, 2, 3};

  auto run_cluster_cell = [&](std::int64_t mtbf, std::int64_t replicas,
                              bool hedging, bool timing_only) {
    serve::ClusterConfig cfg;
    cfg.replica.max_batch = 4;
    cfg.replica.kv_budget_bytes = 16ull * 1024 * 1024;
    cfg.replica.ctx_bucket = 16;
    cfg.replica.timing_only = timing_only;
    cfg.replica.retry_max = 2;
    cfg.replicas = replicas;
    cfg.fault_profile = sim::FaultProfile::from_mtbf_steps(
        static_cast<double>(mtbf), /*chips=*/1);
    if (hedging) cfg.hedge_budget = sim::SimTime::from_ms(8.0);
    serve::ClusterRouter router(rt, cfg);
    return router.run(cluster_stream);
  };

  core::TextTable cluster_table({"MTBF", "Replicas", "Hedge", "Avail",
                                 "Failovers", "Hedge wins", "Wasted tok",
                                 "TTFT p99"});
  for (const std::int64_t mtbf : cluster_mtbfs) {
    for (const bool hedging : {false, true}) {
      double single_avail = 0.0;
      for (const std::int64_t replicas : replica_counts) {
        const serve::ClusterReport cr =
            run_cluster_cell(mtbf, replicas, hedging, true);
        const double avail = cr.summary.availability;
        if (replicas == 1) {
          single_avail = avail;
        } else if (avail <= single_avail) {
          std::printf(
              "\nFAIL: %lld replicas (mtbf=%lld, hedge=%d) availability "
              "%.3f must beat single-replica %.3f\n",
              static_cast<long long>(replicas), static_cast<long long>(mtbf),
              hedging ? 1 : 0, avail, single_avail);
          return 1;
        }
        cluster_table.add_row(
            {std::to_string(mtbf) + " it", std::to_string(replicas),
             hedging ? "8 ms" : "off",
             core::TextTable::num(avail * 100.0, 1) + "%",
             std::to_string(cr.failovers), std::to_string(cr.hedge_wins),
             std::to_string(cr.summary.wasted_tokens),
             core::TextTable::num(cr.summary.ttft_p99_ms, 1) + " ms"});
      }
    }
  }
  std::puts("\nFleet availability under chip faults (24 requests, retry");
  std::puts("budget 2, 1 s SLO; per-replica MTBF, decorrelated streams):");
  std::fputs(cluster_table.to_string().c_str(), stdout);
  std::puts("\nEvery N >= 2 row strictly beats its N = 1 row: failover");
  std::puts("turns chip loss into re-prefill on a survivor instead of");
  std::puts("retry-and-fail against the restarting chip.");

  // Cluster mode equivalence + determinism: one cell in both execution
  // modes and twice in the same mode must render identical bytes.
  {
    const std::string f =
        run_cluster_cell(30, 2, true, false).to_report();
    const std::string t1 = run_cluster_cell(30, 2, true, true).to_report();
    const std::string t2 = run_cluster_cell(30, 2, true, true).to_report();
    if (f != t1 || t1 != t2) {
      std::puts("\nFAIL: cluster cell diverged across modes or reruns");
      std::fputs(f.c_str(), stdout);
      std::fputs(t1.c_str(), stdout);
      return 1;
    }
    std::puts("\ncluster determinism: mode-independent and rerun-stable");
  }

  // --- Live migration vs preempt-and-re-prefill draining ------------------
  // A replica drained for maintenance must hand its work to the survivors.
  // The pre-migration cluster can only preempt: every running request's KV
  // releases on the spot and the full context recomputes on a peer.  Live
  // migration streams the paged KV blocks over the fabric instead and cuts
  // over with zero re-prefill.  The sweep drains replica 0 mid-burst under
  // a degradation-heavy fault mix (stragglers, HBM pressure, link faults —
  // no outright chip deaths, so the two modes face identical degradation)
  // and asserts the tentpole claims per cell: migration-off moves nothing
  // and pays the re-prefill bill, migration-on carries KV rows no preempt
  // could save, goodput with migration never falls below the re-prefill
  // baseline, and every cell is byte-identical across execution modes.
  const std::vector<std::int64_t> degradation_mtbfs = {10, 20, 40};

  serve::StreamConfig dcfg_stream;
  dcfg_stream.arrival_rate_rps = 24.0;
  dcfg_stream.num_requests = 24;
  dcfg_stream.prompt = {64, 192};
  dcfg_stream.output = {16, 64};
  dcfg_stream.deadline = sim::SimTime::from_ms(1000.0);
  const std::vector<serve::Request> drain_stream =
      serve::poisson_stream(dcfg_stream);

  auto run_migration_cell = [&](std::int64_t mtbf, bool migrate,
                                bool timing_only) {
    serve::ClusterConfig cfg;
    cfg.replica.max_batch = 4;
    cfg.replica.kv_budget_bytes = 16ull * 1024 * 1024;
    cfg.replica.ctx_bucket = 16;
    cfg.replica.timing_only = timing_only;
    cfg.replica.retry_max = 2;
    cfg.replicas = 3;
    // Degradation without death: one straggler/stall event every `mtbf`
    // iterations per replica stretches heartbeats, and the KV stream rides
    // links that drop and degrade at the same cadence — but no chip dies,
    // so the goodput delta isolates the drain mechanism itself.
    sim::FaultProfile p;
    p.tpc_straggler_rate = 1.0 / static_cast<double>(mtbf);
    p.hbm_pressure_rate = 1.0 / static_cast<double>(mtbf);
    p.transient_link_rate = 1.0 / static_cast<double>(mtbf);
    p.link_degradation_rate = 0.2 / static_cast<double>(mtbf);
    p.straggler_slowdown = 3.0;
    p.hbm_pressure_stall = sim::SimTime::from_ms(10.0);
    cfg.fault_profile = p;
    cfg.migration.enabled = migrate;
    cfg.degraded_after = 6;
    cfg.drain_replica = 0;
    cfg.drain_at = sim::SimTime::from_ms(150.0);
    serve::ClusterRouter router(rt, cfg);
    return router.run(drain_stream);
  };

  core::TextTable migration_table({"Degr MTBF", "Migrate", "Goodput", "Avail",
                                   "Rows saved", "Recompute", "Wasted tok",
                                   "TTFT p99"});
  for (const std::int64_t mtbf : degradation_mtbfs) {
    double goodput_off = 0.0;
    for (const bool migrate : {false, true}) {
      const serve::ClusterReport fr = run_migration_cell(mtbf, migrate, false);
      const serve::ClusterReport tr = run_migration_cell(mtbf, migrate, true);
      if (fr.to_report() != tr.to_report()) {
        std::printf("\nFAIL: migration cell mtbf=%lld migrate=%d diverged "
                    "by execution mode\n",
                    static_cast<long long>(mtbf), migrate ? 1 : 0);
        std::fputs(fr.to_report().c_str(), stdout);
        std::fputs(tr.to_report().c_str(), stdout);
        return 1;
      }
      if (!fr.drain_completed) {
        std::printf("\nFAIL: drain did not complete (mtbf=%lld migrate=%d)\n",
                    static_cast<long long>(mtbf), migrate ? 1 : 0);
        return 1;
      }
      if (!migrate) {
        goodput_off = fr.summary.goodput_tok_s;
        if (fr.migrations_started != 0 || fr.migrated_rows != 0) {
          std::puts("\nFAIL: migration-off cell moved KV");
          return 1;
        }
        if (fr.summary.recomputed_tokens <= 0) {
          std::printf("\nFAIL: migration-off drain recomputed nothing "
                      "(mtbf=%lld) — the baseline paid no re-prefill bill\n",
                      static_cast<long long>(mtbf));
          return 1;
        }
      } else {
        if (fr.migrated_rows <= 0) {
          std::printf("\nFAIL: migration-on cell (mtbf=%lld) saved no KV "
                      "rows\n",
                      static_cast<long long>(mtbf));
          return 1;
        }
        if (fr.summary.goodput_tok_s < goodput_off) {
          std::printf("\nFAIL: migration-on goodput %.1f tok/s fell below "
                      "the re-prefill baseline %.1f (mtbf=%lld)\n",
                      fr.summary.goodput_tok_s, goodput_off,
                      static_cast<long long>(mtbf));
          return 1;
        }
      }
      migration_table.add_row(
          {std::to_string(mtbf) + " it", migrate ? "on" : "off",
           core::TextTable::num(fr.summary.goodput_tok_s, 1),
           core::TextTable::num(fr.summary.availability * 100.0, 1) + "%",
           std::to_string(fr.migrated_rows),
           std::to_string(fr.summary.recomputed_tokens),
           std::to_string(fr.summary.wasted_tokens),
           core::TextTable::num(fr.summary.ttft_p99_ms, 1) + " ms"});
    }
  }
  std::puts("\nLive migration vs preempt-and-re-prefill draining");
  std::puts("(24 requests, 3 replicas, drain replica 0 at 150 ms,");
  std::puts("degradation-heavy faults, no chip deaths):");
  std::fputs(migration_table.to_string().c_str(), stdout);
  std::puts("\nMigration-on rows ride the fabric instead of re-prefilling:");
  std::puts("the recompute bill drops to zero and goodput holds at or above");
  std::puts("the preempt baseline in every cell.");

  const std::size_t saved = graph::save_memo_to_env_file();
  if (saved > 0) {
    std::printf("timing memo: saved %zu entries to %s\n", saved,
                graph::memo_file_from_env().c_str());
  }
  return 0;
}

// Serving throughput-latency curves — the multi-tenant regime the paper's
// single-job profiles feed into — run twice: once with full cost
// derivation (every scheduler builds, compiles, and event-schedules each
// decode/prefill bucket graph itself) and once in timing-only mode (step
// costs replayed from the process-wide timing memo).  The two passes must
// agree on every reported number; the interesting output is the host
// wall-clock ratio between them, which is what makes wide batch sweeps
// cheap.
//
// Everything here is deterministic: the same (seed, rate, batch) cell
// reproduces byte-identical metrics, which the final self-check asserts by
// rendering one cell twice.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/table.hpp"
#include "graph/runtime.hpp"
#include "graph/timing_memo.hpp"
#include "serve/scheduler.hpp"
#include "serve/workload.hpp"

int main() {
  using namespace gaudi;
  const graph::Runtime rt(sim::ChipConfig::hls1());

  const std::vector<double> rates = {2.0,  3.0,  4.0,  6.0,  8.0,  12.0,
                                     16.0, 24.0, 32.0, 48.0, 64.0, 96.0};
  const std::vector<std::int64_t> batches = {4, 8};

  // Streams are generated once up front: both execution modes schedule the
  // exact same requests, so workload generation stays out of the timed
  // region.
  std::vector<std::vector<serve::Request>> streams;
  streams.reserve(rates.size());
  for (const double rate : rates) {
    serve::StreamConfig scfg;
    scfg.arrival_rate_rps = rate;
    scfg.num_requests = 48;
    scfg.prompt = {64, 192};
    scfg.output = {16, 64};
    scfg.deadline = sim::SimTime::from_ms(4000.0);
    streams.push_back(serve::poisson_stream(scfg));
  }

  auto run_cell = [&](std::size_t rate_idx, std::int64_t max_batch,
                      bool timing_only) {
    serve::ServeConfig cfg;
    cfg.max_batch = max_batch;
    cfg.kv_budget_bytes = 16ull * 1024 * 1024;
    cfg.ctx_bucket = 16;  // fine-grained step costs: 16-token context buckets
    cfg.timing_only = timing_only;
    serve::ContinuousBatchScheduler sched(rt, cfg);
    return sched.run(streams[rate_idx]);
  };

  auto run_sweep = [&](bool timing_only) {
    std::vector<std::string> reports;
    reports.reserve(rates.size() * batches.size());
    for (const std::int64_t batch : batches) {
      for (std::size_t i = 0; i < rates.size(); ++i) {
        reports.push_back(run_cell(i, batch, timing_only).to_report());
      }
    }
    return reports;
  };

  graph::TimingMemo::global().clear();
  const bench::WallClock functional_clock;
  const std::vector<std::string> functional = run_sweep(false);
  const double functional_s = functional_clock.seconds();

  graph::TimingMemo::global().clear();
  const bench::WallClock fast_clock;
  const std::vector<std::string> fast = run_sweep(true);
  const double fast_s = fast_clock.seconds();

  // Mode equivalence: the fast path may change how long the *simulator*
  // takes, never what it reports.
  for (std::size_t i = 0; i < functional.size(); ++i) {
    if (functional[i] != fast[i]) {
      std::printf("\nFAIL: timing-only report diverged in cell %zu\n", i);
      std::fputs(functional[i].c_str(), stdout);
      std::fputs(fast[i].c_str(), stdout);
      return 1;
    }
  }

  core::TextTable table({"Rate", "Batch", "Tok/s", "Goodput", "TTFT p50",
                         "TTFT p99", "ITL p50", "ITL p99", "Preempt"});
  for (const std::int64_t batch : batches) {
    for (std::size_t i = 0; i < rates.size(); ++i) {
      const double rate = rates[i];
      const serve::ServeReport r = run_cell(i, batch, true);
      table.add_row({core::TextTable::num(rate, 0) + " req/s",
                     std::to_string(batch),
                     core::TextTable::num(r.summary.throughput_tok_s, 1),
                     core::TextTable::num(r.summary.goodput_tok_s, 1),
                     core::TextTable::num(r.summary.ttft_p50_ms, 1) + " ms",
                     core::TextTable::num(r.summary.ttft_p99_ms, 1) + " ms",
                     core::TextTable::num(r.summary.itl_p50_ms, 2) + " ms",
                     core::TextTable::num(r.summary.itl_p99_ms, 2) + " ms",
                     std::to_string(r.summary.preemptions)});
    }
  }

  std::puts("Serving throughput-latency sweep (GPT-2 decode model, Poisson");
  std::puts("arrivals, 48 requests, prompts 64-192, outputs 16-64, 4 s SLO):");
  std::fputs(table.to_string().c_str(), stdout);
  std::puts("\nPast the saturation knee the offered load outruns the token");
  std::puts("rate: throughput flattens while TTFT tails stretch — adding");
  std::puts("batch slots moves the knee right at the cost of per-token ITL.");

  const graph::TimingMemo& memo = graph::TimingMemo::global();
  const double speedup = functional_s / (fast_s > 0.0 ? fast_s : 1e-9);
  std::printf(
      "\nexecution modes (%zu cells, identical reports):\n"
      "  functional   %8.3f s wall\n"
      "  timing-only  %8.3f s wall  (%.1fx faster)\n"
      "  timing memo: %zu entries, %lld hits, %lld misses\n",
      functional.size(), functional_s, fast_s, speedup, memo.size(),
      static_cast<long long>(memo.hits()),
      static_cast<long long>(memo.misses()));
  if (speedup < 3.0) {
    std::puts("FAIL: timing-only mode is expected to be >=3x faster");
    return 1;
  }

  // Determinism self-check: one cell, rendered twice, must be bytes-equal.
  const std::string a = run_cell(4, 4, true).to_report();
  const std::string b = run_cell(4, 4, true).to_report();
  if (a != b) {
    std::puts("\nFAIL: same-seed serving runs diverged");
    return 1;
  }
  std::puts("\ndeterminism: same-seed rerun is byte-identical");

  // --- Goodput under faults: MTBF x retry-policy sweep ---------------------
  // Chip failures abort in-flight batches and invalidate their KV; the
  // retry budget decides whether the lost work is recomputed (goodput dips,
  // availability holds) or the requests fail terminally.  Every cell runs
  // in both execution modes and must report identical bytes: the fault
  // schedule is a pure function of (fault seed, iteration), not of how step
  // costs were derived.
  serve::StreamConfig fcfg;
  fcfg.arrival_rate_rps = 16.0;
  fcfg.num_requests = 24;
  fcfg.prompt = {64, 192};
  fcfg.output = {16, 64};
  fcfg.deadline = sim::SimTime::from_ms(4000.0);
  const std::vector<serve::Request> fault_stream = serve::poisson_stream(fcfg);
  const std::vector<std::int64_t> mtbfs = {0, 40, 120};  // 0 = faults off
  const std::vector<std::int32_t> retries = {0, 3};

  auto run_fault_cell = [&](std::int64_t mtbf, std::int32_t retry_max,
                            bool timing_only) {
    serve::ServeConfig cfg;
    cfg.max_batch = 4;
    cfg.kv_budget_bytes = 16ull * 1024 * 1024;
    cfg.ctx_bucket = 16;
    cfg.timing_only = timing_only;
    if (mtbf > 0) {
      cfg.faults = sim::FaultInjector{
          0xFA517, sim::FaultProfile::from_mtbf_steps(
                       static_cast<double>(mtbf), /*chips=*/1)};
    }
    cfg.retry_max = retry_max;
    serve::ContinuousBatchScheduler sched(rt, cfg);
    return sched.run(fault_stream);
  };

  core::TextTable fault_table({"MTBF", "Retry", "Goodput", "Avail", "Failed",
                               "Retries", "Wasted tok"});
  for (const std::int64_t mtbf : mtbfs) {
    for (const std::int32_t retry_max : retries) {
      const serve::ServeReport fr = run_fault_cell(mtbf, retry_max, false);
      const serve::ServeReport tr = run_fault_cell(mtbf, retry_max, true);
      if (fr.to_report() != tr.to_report()) {
        std::printf("\nFAIL: fault cell mtbf=%lld retry=%d diverged by mode\n",
                    static_cast<long long>(mtbf), retry_max);
        std::fputs(fr.to_report().c_str(), stdout);
        std::fputs(tr.to_report().c_str(), stdout);
        return 1;
      }
      const double avail = fr.summary.availability;
      fault_table.add_row(
          {mtbf > 0 ? std::to_string(mtbf) + " it" : "off",
           std::to_string(retry_max),
           core::TextTable::num(fr.summary.goodput_tok_s, 1),
           core::TextTable::num(avail * 100.0, 1) + "%",
           std::to_string(fr.summary.failed),
           std::to_string(fr.summary.fault_retries),
           std::to_string(fr.summary.wasted_tokens)});
    }
  }
  std::puts("\nGoodput under chip faults (24 requests, 4 slots; both");
  std::puts("execution modes agree per cell):");
  std::fputs(fault_table.to_string().c_str(), stdout);
  std::puts("\nShorter MTBF wastes more computed KV; a zero retry budget");
  std::puts("converts that waste into terminal failures and lost");
  std::puts("availability, while a small budget recovers it as goodput.");
  return 0;
}

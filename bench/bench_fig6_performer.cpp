// Figure 6 reproduction: Performer (FAVOR) at the Fig 4 scale.
//
// Paper claims to reproduce: total between linear and softmax attention
// (~2x faster than softmax attention, slower than the Linear Transformer);
// an MME blank area while the TPC computes the exponentials of q'/k'; and
// the diagnosis that the graph compiler does not exploit the q'/k'
// independence — quantified here by rerunning under the overlap scheduler.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace gaudi;
  const sim::ChipConfig cfg = sim::ChipConfig::hls1();

  core::LayerExperiment softmax_exp;
  softmax_exp.attention.kind = nn::AttentionKind::kSoftmax;
  const auto softmax_profile = core::run_layer_profile(softmax_exp, cfg);

  core::LayerExperiment exp;
  exp.attention.kind = nn::AttentionKind::kPerformer;
  exp.attention.performer_features = 256;
  const auto profile = core::run_layer_profile(exp, cfg);

  bench::print_profile("Fig 6: Transformer layer, Performer (FAVOR, m=256)",
                       profile.summary, profile.trace,
                       "fig6_performer.trace.json");

  std::printf("speedup vs softmax attention: %.1fx (paper: ~2x)\n",
              softmax_profile.summary.makespan.seconds() /
                  profile.summary.makespan.seconds());

  // The paper's diagnosis: q'/k' are independent but not overlapped.
  core::LayerExperiment overlap = exp;
  overlap.policy = graph::SchedulePolicy::kOverlap;
  const auto overlapped = core::run_layer_profile(overlap, cfg);
  std::printf(
      "independence-aware schedule: %.3f ms vs %.3f ms observed "
      "(%.0f%% of the blank area recovered)\n",
      overlapped.summary.makespan.ms(), profile.summary.makespan.ms(),
      100.0 * (1.0 - overlapped.summary.makespan.seconds() /
                         profile.summary.makespan.seconds()));
  return 0;
}
